package cataero

import (
	"context"
	"runtime"
)

// The session's shared pool has two layers, both sized once per session:
//
//   - Admission (this file): a FIFO ticket queue of WithWorkers capacity
//     (default GOMAXPROCS) bounding how many submitted runs solve
//     concurrently. Submit always returns immediately; a run's queue
//     position is taken synchronously at submission, so runs beyond the
//     bound wait in RunQueued state and start in submission order as
//     slots free.
//
//   - Compute workers (core.Stack.Pool): one GOMAXPROCS-sized fvm worker
//     pool shared by every finite-volume solve in the session. Before this
//     existed each fvm solver spawned a private NumCPU-wide pool, so a
//     batch of K concurrent NS solves parked K*(NumCPU-1) goroutines and
//     oversubscribed the machine; now the resident worker count is fixed
//     regardless of batch width, and sweeps that find all shared workers
//     busy run inline on their own slot's goroutine instead of queueing.

// ticket is one run's place in the admission queue; it is granted (sent to)
// exactly once, when a slot is handed to the run.
type ticket chan struct{}

// enqueue takes a queue position NOW — called synchronously from Submit, so
// submission order is admission order. A free slot is granted immediately.
func (s *Session) enqueue() ticket {
	t := make(ticket, 1)
	s.admitMu.Lock()
	if s.workers == 0 {
		// Zero-value Session (constructed without NewSession): adopt the
		// default admission width lazily so legacy `var s Session` callers
		// keep working instead of queueing forever.
		s.workers = runtime.GOMAXPROCS(0)
		s.admitFree = s.workers
	}
	if s.admitFree > 0 && len(s.admitQueue) == 0 {
		s.admitFree--
		t <- struct{}{}
	} else {
		s.admitQueue = append(s.admitQueue, t)
	}
	s.admitMu.Unlock()
	return t
}

// await blocks until the ticket is granted or the context is done. On
// cancellation the ticket is withdrawn from the queue; if a slot was
// granted concurrently it is handed straight back.
func (s *Session) await(ctx context.Context, t ticket) error {
	select {
	case <-t:
		return nil
	case <-ctx.Done():
	}
	s.admitMu.Lock()
	for i, q := range s.admitQueue {
		if q == t {
			s.admitQueue = append(s.admitQueue[:i], s.admitQueue[i+1:]...)
			s.admitMu.Unlock()
			return ctx.Err()
		}
	}
	s.admitMu.Unlock()
	// Not in the queue: the slot was granted between Done and the lock —
	// consume the (already buffered) grant and release it for the next run.
	<-t
	s.release()
	return ctx.Err()
}

// release returns a slot: straight to the queue head when runs are waiting,
// back to the free count otherwise.
func (s *Session) release() {
	s.admitMu.Lock()
	if len(s.admitQueue) > 0 {
		t := s.admitQueue[0]
		s.admitQueue = s.admitQueue[1:]
		t <- struct{}{}
	} else {
		s.admitFree++
	}
	s.admitMu.Unlock()
}
