package cataero

import (
	"encoding/json"
	"fmt"
	"os"

	"cataero/internal/core"
)

// CaseSpec is the declarative, JSON-marshalable mirror of a Problem — the
// case-file format behind `catsim run`. See core.CaseSpec for the field
// list and README.md for the schema.
type CaseSpec = core.CaseSpec

// BodySpec names a body shape declaratively ("sphere", "sphere-cone",
// "hyperboloid") with its dimensions; it stands in for the geometry.Body
// interface in case files.
type BodySpec = core.BodySpec

// ParseCase decodes a JSON case file into a Problem. Unknown solver
// classes, chemistries, body kinds or toggle values are errors; fields left
// out of the file keep their zero values and resolve through the session
// defaults exactly like an in-code Problem.
func ParseCase(data []byte) (Problem, error) {
	var p Problem
	if err := json.Unmarshal(data, &p); err != nil {
		return Problem{}, fmt.Errorf("cataero: parse case: %w", err)
	}
	return p, nil
}

// LoadCase reads and decodes a JSON case file.
func LoadCase(path string) (Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Problem{}, fmt.Errorf("cataero: load case: %w", err)
	}
	p, err := ParseCase(data)
	if err != nil {
		return Problem{}, fmt.Errorf("cataero: load case %s: %w", path, err)
	}
	return p, nil
}

// SaveCase writes the problem as an indented JSON case file. Problems whose
// body is not a named geometry shape, or whose configuration lives in
// function fields (Standoff, Mu, K), cannot be saved declaratively; the
// function fields are silently dropped and an unnamed body is an error.
func SaveCase(path string, p Problem) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("cataero: save case: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
