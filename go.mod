module cataero

go 1.24
