// Quickstart: compute the aerothermal environment of a Shuttle-like entry
// point with two members of the solver hierarchy and compare them — the
// sixty-second tour of the cataero public API.
package main

import (
	"fmt"
	"log"

	"cataero"
)

func main() {
	// Shuttle Orbiter entry point: 6.74 km/s at ~71 km altitude.
	base := cataero.Problem{
		Chemistry:  cataero.EquilibriumAir,
		PInf:       4.8,  // Pa
		TInf:       217,  // K
		VInf:       6740, // m/s
		NoseRadius: 0.6,  // m
		TWall:      1200, // K
		NStations:  16,
	}

	fmt.Println("cataero quickstart: Shuttle entry point, equilibrium air")
	fmt.Println()

	for _, class := range []cataero.SolverClass{cataero.VSL, cataero.EBL, cataero.PNS} {
		p := base
		p.Class = class
		if class == cataero.EBL {
			p.GammaW = 1 // fully catalytic wall
		}
		env, err := cataero.Solve(p)
		if err != nil {
			log.Fatalf("%s: %v", class, err)
		}
		fmt.Printf("%-28s q_conv(stag) = %7.1f W/cm^2", class.String()+":", env.QConvStag/1e4)
		if env.Standoff > 0 {
			fmt.Printf("   standoff = %.1f mm", env.Standoff*1000)
		}
		fmt.Println()
	}

	// Surface distribution from the PNS class.
	p := base
	p.Class = cataero.PNS
	env, err := cataero.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPNS windward heating distribution:")
	fmt.Println("    s [m]    q [W/cm^2]   p_e [Pa]")
	for i := 0; i < len(env.Surface); i += 3 {
		sp := env.Surface[i]
		fmt.Printf("  %7.3f   %9.2f   %8.1f\n", sp.S, sp.Q/1e4, sp.P)
	}
}
