// Quickstart: compute the aerothermal environment of a Shuttle-like entry
// point with three members of the solver hierarchy and compare them — the
// sixty-second tour of the cataero Session API. The three solves run as
// one concurrent batch over a shared, cached model stack.
package main

import (
	"context"
	"fmt"
	"log"

	"cataero"
)

func main() {
	// One session for the whole program: model stacks and EOS tables build
	// lazily and are cached across every solve below.
	s := cataero.NewSession(cataero.WithChemistry(cataero.EquilibriumAir))
	ctx := context.Background()

	// Shuttle Orbiter entry point: 6.74 km/s at ~71 km altitude.
	base := cataero.Problem{
		PInf:       4.8,  // Pa
		TInf:       217,  // K
		VInf:       6740, // m/s
		NoseRadius: 0.6,  // m
		TWall:      1200, // K
		NStations:  16,
	}

	fmt.Println("cataero quickstart: Shuttle entry point, equilibrium air")
	fmt.Println()

	// The hierarchy as a batch: one problem per solver class.
	var probs []cataero.Problem
	for _, class := range []cataero.SolverClass{cataero.VSL, cataero.EBL, cataero.PNS} {
		p := base
		p.Class = class
		if class == cataero.EBL {
			p.GammaW = 1 // fully catalytic wall
		}
		probs = append(probs, p)
	}
	results, err := s.SolveBatch(ctx, probs)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Problem.Class, r.Err)
		}
		fmt.Printf("%-28s q_conv(stag) = %7.1f W/cm^2", r.Problem.Class.String()+":", r.Env.QConvStag/1e4)
		if r.Env.Standoff > 0 {
			fmt.Printf("   standoff = %.1f mm", r.Env.Standoff*1000)
		}
		fmt.Println()
	}

	// Surface distribution from the PNS class (cached stack: this re-solve
	// pays no model-construction cost).
	p := base
	p.Class = cataero.PNS
	env, err := s.Solve(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPNS windward heating distribution:")
	fmt.Println("    s [m]    q [W/cm^2]   p_e [Pa]")
	for i := 0; i < len(env.Surface); i += 3 {
		sp := env.Surface[i]
		fmt.Printf("  %7.3f   %9.2f   %8.1f\n", sp.S, sp.Q/1e4, sp.P)
	}
}
