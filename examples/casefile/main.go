// Casefile: the declarative side of the toolkit, end to end. A JSON case
// file (case.json, the same schema `catsim run` consumes) is loaded into a
// Problem, submitted asynchronously, watched live via the Run handle, and
// finally written back out with SaveCase to show that in-code problems and
// case files round-trip.
//
// Run from the repository root:
//
//	go run ./examples/casefile
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"cataero"
)

func main() {
	// Case files live next to the example; fall back to the repo layout
	// when run from the module root.
	path := "case.json"
	if _, err := os.Stat(path); err != nil {
		path = filepath.Join("examples", "casefile", "case.json")
	}

	// 1. Load the declarative case. Named body shapes ("sphere",
	// "sphere-cone", "hyperboloid") stand in for the geometry.Body
	// interface; enumerations are strings; anything omitted resolves
	// through the session defaults exactly like an in-code Problem.
	p, err := cataero.LoadCase(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %s class, %s, grid %dx%d\n", path, p.Class, p.Chemistry, p.NI, p.NJ)

	// 2. Submit it. Submit returns immediately with a Run handle; the
	// solve queues on the session's shared pool and starts right away.
	s := cataero.NewSession()
	run := s.Submit(context.Background(), p)

	// 3. Watch it. Run.Watch delivers latest-value progress snapshots:
	// solver, phase, step count, residual, elapsed time. (Run.Snapshot
	// gives the same view on demand without a channel.)
	last := 0
	for snap := range run.Watch() {
		// Snapshots are latest-value: slow readers skip ahead rather than
		// backlog, so report every ~250 steps of observed progress.
		if snap.State != cataero.RunRunning || snap.Step == 0 || snap.Step-last < 250 {
			continue
		}
		last = snap.Step
		fmt.Printf("  [%s/%s] step %4d/%d  residual %.3e  elapsed %s\n",
			snap.Solver, snap.Phase, snap.Step, snap.MaxSteps, snap.Residual,
			snap.Elapsed.Round(time.Millisecond))
	}

	// 4. Collect the result.
	env, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", env.Description)
	fmt.Printf("  q_conv(stag) = %.2f W/cm^2\n", env.QConvStag/1e4)
	fmt.Printf("  standoff     = %.1f mm\n", env.Standoff*1000)
	fmt.Printf("  solved in %s\n", run.Snapshot().Elapsed.Round(time.Millisecond))

	// 5. Round-trip: any in-code Problem with a named body writes back out
	// as a case file (function-valued fields like Mu/K have no declarative
	// form and are dropped).
	out := filepath.Join(os.TempDir(), "cataero-roundtrip.json")
	if err := cataero.SaveCase(out, p); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped the case to %s\n", out)
}
