// Titan probe entry: the paper's Fig. 2/3 scenario. Integrates a 12 km/s
// ballistic entry into the Titan N2/CH4 atmosphere, runs the stagnation-line
// viscous shock layer with CN radiation at each trajectory point, and prints
// the convective and radiative heating pulses plus the peak-heating species
// profile.
package main

import (
	"fmt"
	"log"

	"cataero"
	"cataero/internal/tps"
)

func main() {
	fmt.Println("Titan probe entry (12 km/s) — stagnation heating pulses")
	fmt.Println()

	pulse, err := cataero.Fig2TitanHeatingPulse()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   t [s]   q_conv [W/cm^2]   q_rad [W/cm^2]")
	for i := 0; i < len(pulse.Time); i++ {
		fmt.Printf("  %6.1f   %15.2f   %14.2f\n", pulse.Time[i], pulse.QConv[i], pulse.QRad[i])
	}
	fmt.Printf("\npeak convective: %.1f W/cm^2 at t=%.1f s\n", pulse.PeakConv, pulse.TPeakConv)
	fmt.Printf("peak radiative:  %.1f W/cm^2 at t=%.1f s\n", pulse.PeakRad, pulse.TPeakRad)

	fmt.Println("\nStagnation-line species profile at peak heating (Fig. 3):")
	prof, err := cataero.Fig3TitanSpeciesProfile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shock standoff delta = %.2f cm\n", prof.Delta*100)
	names := []string{"N2", "H2", "H", "C2H2", "HCN", "CN", "N"}
	fmt.Printf("%8s", "y/delta")
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()
	for i := 0; i < len(prof.YOverDelta); i += 4 {
		fmt.Printf("%8.3f", prof.YOverDelta[i])
		for _, n := range names {
			fmt.Printf(" %9.2e", prof.Species[n][i])
		}
		fmt.Println()
	}

	// TPS sizing from the computed pulse: the design loop the paper
	// motivates ("the ablative TPS for the probe was sized based on
	// computer predictions").
	fmt.Println("\nTPS sizing from the computed environment:")
	qTot := make([]float64, len(pulse.Time))
	for i := range qTot {
		qTot[i] = (pulse.QConv[i] + pulse.QRad[i]) * 1e4 // W/cm^2 -> W/m^2
	}
	load := tps.HeatLoad(pulse.Time, qTot)
	fmt.Printf("total stagnation heat load: %.1f kJ/cm^2\n", load/1e7)
	for _, mat := range []tps.Ablator{tps.CarbonPhenolic(), tps.SilicaPhenolic()} {
		rec := mat.Recession(pulse.Time, qTot)
		th := mat.SizeThickness(pulse.Time, qTot, 0, 0)
		fmt.Printf("  %-16s recession %5.1f mm   sized thickness %5.1f mm\n",
			mat.Name+":", rec*1000, th*1000)
	}
}
