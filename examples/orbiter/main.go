// Orbiter aerothermodynamics: the paper's Fig. 4/5/6 scenarios. Computes
// the pitch-plane bow-shock shape with reacting vs ideal gas, prints the
// discretized geometry, and the windward-centerline heating comparison with
// synthetic STS-3-like flight data.
package main

import (
	"fmt"
	"log"

	"cataero"
)

func main() {
	fmt.Println("Shuttle Orbiter: bow shock shape (Fig. 4), V=6.7 km/s, 65.5 km, alpha=30 deg")
	shock, err := cataero.Fig4OrbiterShockShape(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stagnation standoff: ideal gas %.2f m, equilibrium air %.2f m (ratio %.2f)\n",
		shock.StandoffIdeal, shock.StandoffReacting,
		shock.StandoffReacting/shock.StandoffIdeal)
	fmt.Println("\n  body x [m]   shock x (ideal)   shock x (reacting)")
	n := len(shock.IdealX)
	for i := 0; i < n; i += 3 {
		fmt.Printf("  %9.2f   %15.2f   %18.2f\n", shock.BodyX[i], shock.IdealX[i], shock.ReactingX[i])
	}

	fmt.Println("\nOrbiter geometry sections (Fig. 5):")
	secs := cataero.Fig5OrbiterGeometry(12)
	fmt.Println("    x [m]   half-width [m]   windward depth [m]")
	for _, s := range secs {
		fmt.Printf("  %7.2f   %14.2f   %18.2f\n", s.X, s.HalfWidth, s.WindwardZ)
	}

	fmt.Println("\nWindward centerline heating (Fig. 6), STS-3 point:")
	heat, err := cataero.Fig6WindwardHeating()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("     x/L   q_eq [W/cm^2]   q_ideal(g=1.2)")
	for i := 0; i < len(heat.XOverL); i += 3 {
		fmt.Printf("  %6.3f   %13.2f   %14.2f\n", heat.XOverL[i], heat.QEquilibrium[i], heat.QIdeal[i])
	}
	fmt.Printf("\nsynthetic flight data (finite catalysis, q_flight/q_fc = %.2f):\n", heat.CatalysisFraction)
	for i := range heat.FlightX {
		fmt.Printf("  x/L=%.3f  q=%.2f W/cm^2\n", heat.FlightX[i], heat.FlightQ[i])
	}
}
