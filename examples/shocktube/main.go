// Shock-tube relaxation: the paper's Fig. 7/8 scenario. A 10 km/s normal
// shock into 0.1 torr air with two-temperature dissociating and ionizing
// relaxation, followed by the nonequilibrium emission spectrum through the
// radiating slab.
package main

import (
	"fmt"
	"log"

	"cataero"
)

func main() {
	fmt.Println("Shock tube: V=10 km/s into 0.1 torr air (two-temperature model)")
	fmt.Println()

	r, err := cataero.Fig7ShockRelaxation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frozen post-shock T = %.0f K; relaxed equilibrium T = %.0f K\n\n", r.TFrozen, r.TEq)
	fmt.Println("   x [cm]      T [K]     Tv [K]     x(N2)      x(N)      x(e-)")
	for i := 0; i < len(r.X); i += 6 {
		fmt.Printf("  %8.4f   %8.0f   %8.0f   %7.4f   %7.4f   %9.2e\n",
			r.X[i]*100, r.T[i], r.Tv[i], r.XN2[i], r.XN[i], r.XE[i])
	}

	fmt.Println("\nNonequilibrium emission spectrum (Fig. 8), wall-directed intensity:")
	sp, err := cataero.Fig8NoneqSpectra()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  lambda [nm]   computed [W/m^2/sr/m]   'measured'")
	for i := 0; i < len(sp.LambdaNm); i += 24 {
		fmt.Printf("  %10.1f   %20.4g   %10.4g\n", sp.LambdaNm[i], sp.Computed[i], sp.Measured[i])
	}
}
