// Hemisphere Navier-Stokes: the paper's Fig. 9 scenario. Mach-20
// equilibrium air over a hemisphere at 20 km altitude with the thin-layer
// NS solver; prints the N2 mole-fraction contour positions on the
// stagnation line and the wall heating.
package main

import (
	"fmt"
	"log"
	"sort"

	"cataero"
)

func main() {
	fmt.Println("Hemisphere NS: Mach 20 equilibrium air at 20 km (Fig. 9)")
	r, err := cataero.Fig9HemisphereNS(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shock standoff:        %.1f mm\n", r.Standoff*1000)
	fmt.Printf("stagnation heat flux:  %.1f W/cm^2\n", r.QStag/1e4)
	fmt.Printf("strongest dissociation: min x(N2) = %.3f (freestream 0.79)\n\n", r.MinXN2)

	fmt.Println("N2 mole-fraction contour crossings on the stagnation line:")
	levels := make([]float64, 0, len(r.ContourX))
	for lv := range r.ContourX {
		levels = append(levels, lv)
	}
	sort.Float64s(levels)
	for _, lv := range levels {
		fmt.Printf("  x(N2) = %.2f at x = %7.2f mm ahead of the nose\n", lv, -r.ContourX[lv]*1000)
	}
}
