// Serve: the HTTP solve service and its content-addressed run ledger, end
// to end, in one process. The program starts the same server `catsim serve`
// runs, submits a case over HTTP, then submits it again — the second
// response is a ledger hit answered from disk without a solve — and finally
// restarts the server over the same ledger directory to show the cache
// surviving a process boundary.
//
// Run from the repository root:
//
//	go run ./examples/serve
//
// Against a long-lived server the same conversation is plain curl:
//
//	catsim serve -addr :8080 -ledger /var/tmp/cataero-ledger &
//	curl -X POST --data @examples/casefile/case.json 'localhost:8080/api/runs?wait=1'
//	curl -X POST --data @examples/casefile/case.json 'localhost:8080/api/runs?wait=1'  # cached
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"cataero"
	"cataero/internal/ledger"
	"cataero/internal/serve"
)

// startServer assembles the serve stack over a ledger directory — exactly
// what `catsim serve -ledger dir` does — and exposes it on a loopback
// listener.
func startServer(dir string) (*httptest.Server, *serve.Server, *ledger.Ledger) {
	store, err := ledger.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Session: cataero.NewSession(),
		Ledger:  store,
		// Per-client admission quotas (X-API-Key): 2 solves/s, burst 4.
		QuotaRate:  2,
		QuotaBurst: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return httptest.NewServer(srv.Handler()), srv, store
}

// submit POSTs a case and decodes the response envelope.
func submit(url string, p cataero.Problem) map[string]any {
	body, err := json.Marshal(p)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url+"/api/runs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("submit: HTTP %d: %v", resp.StatusCode, v["error"])
	}
	return v
}

func main() {
	dir := filepath.Join(os.TempDir(), "cataero-serve-example")
	defer os.RemoveAll(dir)

	// 1. Start the service. POST /api/runs?wait=1 is the synchronous form;
	// dropping ?wait returns 202 + a run ID to poll (or stream via
	// /api/runs/{id}/events).
	ts, srv, store := startServer(dir)

	// A Shuttle-entry boundary-layer case; EBL solves in milliseconds.
	p := cataero.Problem{
		Name:      "serve example: Shuttle entry point",
		Class:     cataero.EBL,
		Chemistry: cataero.EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 14,
	}

	// 2. First submission: a ledger miss — the server solves and records
	// the run under the canonical SHA-256 of the case.
	t0 := time.Now()
	first := submit(ts.URL, p)
	fmt.Printf("first submission:  cached=%v  solved in %s\n", first["cached"], time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  content key %.16s…\n", first["key"])

	// 3. Second submission: same physics, so the canonical hash collides
	// and the stored artifact comes back without a solve. Field order,
	// labels and explicitly spelled defaults do not change the key.
	t1 := time.Now()
	p.Name = "same case, different label"
	second := submit(ts.URL, p)
	fmt.Printf("second submission: cached=%v  answered in %s\n", second["cached"], time.Since(t1).Round(time.Millisecond))
	if fmt.Sprint(first["key"]) != fmt.Sprint(second["key"]) {
		log.Fatal("keys diverged")
	}

	// 4. Restart: the ledger is plain files, so a new server over the same
	// directory — or `catsim run -ledger` from a shell — still hits.
	ts.Close()
	srv.Close()
	st := store.Stats()
	fmt.Printf("ledger before restart: %d put, %d hit\n", st.Puts, st.Hits)

	ts2, srv2, _ := startServer(dir)
	defer ts2.Close()
	defer srv2.Close()
	third := submit(ts2.URL, p)
	fmt.Printf("after restart:     cached=%v (served from %s)\n", third["cached"], dir)
}
