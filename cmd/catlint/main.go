// Command catlint runs cataero's domain-specific static analyzers:
//
//	hotpath    //cataero:hotpath functions and their callees must not allocate
//	registry   registered names stay in sync with enumerators, fail-fasts, CaseSpec
//	ctxloop    solver march loops must poll context cancellation
//	physconst  physical-constant literals belong in the property packages
//
// Usage:
//
//	catlint [-analyzers hotpath,registry,...] [-list] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when findings
// were reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cataero/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("catlint", flag.ContinueOnError)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catlint [-analyzers a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var sel []string
	if *names != "" {
		sel = strings.Split(*names, ",")
	}
	analyzers, err := lint.ByName(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catlint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "catlint:", err)
		return 2
	}
	prog, err := lint.Load(wd, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catlint:", err)
		return 2
	}
	n := 0
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			fmt.Println(d)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "catlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
