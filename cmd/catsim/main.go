// catsim is the command-line front end of the toolkit:
//
//	catsim figs -fig 7              # print the Fig. 7 relaxation profile
//	catsim figs -fig 2,4,9 -q 2     # a comma-separated list, finer grids
//	catsim -fig all                 # bare flags still mean 'figs' (back-compat)
//	catsim run case.json            # solve a declarative JSON case file
//	catsim run case.json -progress  # ...with a live residual ticker
//	catsim kernels                  # list the registered flux kernels
//
// Every solver-backed command runs through one cataero.Session, so model
// stacks and EOS tables build once and are shared across the run. An
// unknown -flux name fails fast — before any solve starts — with the
// registered kernel list.
package main

import (
	"fmt"
	"os"
	"strings"

	"cataero"
)

func main() {
	args := os.Args[1:]
	cmd := "figs"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var code int
	switch cmd {
	case "figs":
		code = figsCmd(args)
	case "run":
		code = runCmd(args)
	case "kernels":
		code = kernelsCmd(args)
	case "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "catsim: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		code = 2
	}
	os.Exit(code)
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage: catsim <command> [flags]

commands:
  figs     regenerate the paper's figures (default; bare flags imply it)
  run      solve a declarative JSON case file, optionally with live progress
  kernels  list the registered finite-volume flux kernels
  help     print this message

run 'catsim <command> -h' for the command's flags.
`)
}

// checkFlux fails fast on an unknown flux kernel name, printing the
// registered list, so a bad -flux aborts before any solve starts instead of
// surfacing mid-batch at solve time. Returns false when the name is bad.
func checkFlux(name string) bool {
	if name == "" {
		return true
	}
	kernels := cataero.FluxKernels()
	for _, k := range kernels {
		if k == name {
			return true
		}
	}
	fmt.Fprintf(os.Stderr, "catsim: unknown flux kernel %q; registered kernels:\n", name)
	for _, k := range kernels {
		fmt.Fprintf(os.Stderr, "  %s\n", k)
	}
	return false
}

func kernelsCmd(args []string) int {
	if len(args) > 0 {
		fmt.Fprintln(os.Stderr, "usage: catsim kernels")
		return 2
	}
	for _, k := range cataero.FluxKernels() {
		fmt.Println(k)
	}
	return 0
}
