// catsim is the command-line front end of the toolkit:
//
//	catsim figs -fig 7              # print the Fig. 7 relaxation profile
//	catsim figs -fig 2,4,9 -q 2     # a comma-separated list, finer grids
//	catsim -fig all                 # bare flags still mean 'figs' (back-compat)
//	catsim run case.json            # solve a declarative JSON case file
//	catsim run case.json -progress  # ...with a live residual ticker
//	catsim run case.json -ledger d  # ...reusing a content-addressed run store
//	catsim serve -ledger d          # HTTP solve service over the same store
//	catsim ledger ls -ledger d      # inspect the store
//	catsim kernels                  # list the registered flux kernels
//
// Every solver-backed command runs through one cataero.Session, so model
// stacks and EOS tables build once and are shared across the run. An
// unknown -flux name fails fast — before any solve starts — with the
// registered kernel list.
package main

import (
	"fmt"
	"os"
	"strings"

	"cataero"
)

func main() {
	args := os.Args[1:]
	cmd := "figs"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var code int
	switch cmd {
	case "figs":
		code = figsCmd(args)
	case "run":
		code = runCmd(args)
	case "serve":
		code = serveCmd(args)
	case "ledger":
		code = ledgerCmd(args)
	case "kernels":
		code = kernelsCmd(args)
	case "bench":
		code = benchCmd(args)
	case "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "catsim: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		code = 2
	}
	os.Exit(code)
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage: catsim <command> [flags]

commands:
  figs     regenerate the paper's figures (default; bare flags imply it)
  run      solve a declarative JSON case file, optionally with live progress
  serve    run the HTTP solve service with a persistent run ledger
  ledger   inspect or garbage-collect a run ledger (ls, get, gc)
  kernels  list the registered finite-volume flux kernels
  bench    run the Solve/Step benchmarks and write machine-readable results
  help     print this message

run 'catsim <command> -h' for the command's flags.
`)
}

// checkRegistered fails fast on a name missing from a registry list,
// printing what is registered, so a bad flag aborts before any solve starts
// instead of surfacing mid-batch at solve time. The empty name (defer to
// the default) always passes. Returns false when the name is bad.
func checkRegistered(kind, name string, registered []string) bool {
	if name == "" {
		return true
	}
	for _, r := range registered {
		if r == name {
			return true
		}
	}
	fmt.Fprintf(os.Stderr, "catsim: unknown %s %q; registered:\n", kind, name)
	for _, r := range registered {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	return false
}

// checkFlux validates a flux-kernel name against the registry.
func checkFlux(name string) bool {
	return checkRegistered("flux kernel", name, cataero.FluxKernels())
}

// checkTimeStepping validates a time-integrator name against the registry.
func checkTimeStepping(name string) bool {
	return checkRegistered("time stepping", name, cataero.TimeSteppings())
}

// checkImplicitSweep validates an implicit sweep-pattern name against the
// valid list.
func checkImplicitSweep(name string) bool {
	return checkRegistered("implicit sweep", name, cataero.ImplicitSweeps())
}

// checkLimiter validates a MUSCL slope-limiter name against the registry.
func checkLimiter(name string) bool {
	return checkRegistered("limiter", name, cataero.Limiters())
}

// checkCycle validates a multilevel cycle name against the valid list.
func checkCycle(name string) bool {
	return checkRegistered("multigrid cycle", name, cataero.Cycles())
}

func kernelsCmd(args []string) int {
	if len(args) > 0 {
		fmt.Fprintln(os.Stderr, "usage: catsim kernels")
		return 2
	}
	for _, k := range cataero.FluxKernels() {
		fmt.Println(k)
	}
	return 0
}
