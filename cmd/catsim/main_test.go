package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cataero"
)

func TestRunFigsUnknownFigure(t *testing.T) {
	if code := runFigs("42", 1, 0, "", "", "", "", 0, false); code != 2 {
		t.Errorf("unknown figure exit code %d, want 2", code)
	}
	if code := runFigs("", 1, 0, "", "", "", "", 0, false); code != 2 {
		t.Errorf("empty figure list exit code %d, want 2", code)
	}
}

func TestTrendArrow(t *testing.T) {
	mk := func(rs ...float64) []cataero.HistoryPoint {
		out := make([]cataero.HistoryPoint, len(rs))
		for i, r := range rs {
			out[i] = cataero.HistoryPoint{Step: i + 1, Residual: r}
		}
		return out
	}
	if got := trendArrow(nil); got != "→" {
		t.Errorf("empty history arrow %q", got)
	}
	if got := trendArrow(mk(100, 50, 10)); got != "↓" {
		t.Errorf("falling residual arrow %q", got)
	}
	if got := trendArrow(mk(10, 50, 100)); got != "↑" {
		t.Errorf("rising residual arrow %q", got)
	}
	if got := trendArrow(mk(10, 11, 10.5)); got != "→" {
		t.Errorf("flat residual arrow %q", got)
	}
}

func TestCheckTimeSteppingFailsFast(t *testing.T) {
	if checkTimeStepping("dual-time-o-matic") {
		t.Error("unknown integrator accepted")
	}
	if !checkTimeStepping("") || !checkTimeStepping("implicit") || !checkTimeStepping("explicit") {
		t.Error("valid integrator names rejected")
	}
}

func TestCheckFluxFailsFast(t *testing.T) {
	if checkFlux("upwind-o-matic") {
		t.Error("unknown kernel accepted")
	}
	for _, k := range []string{"", "hlle", "hllc", "ausm+"} {
		if !checkFlux(k) {
			t.Errorf("kernel %q rejected", k)
		}
	}
}

func TestFigsCmdRejectsUnknownFluxBeforeSolving(t *testing.T) {
	// Figure 9 is the slowest solve in the suite; an unknown kernel must
	// abort with a usage error before it ever starts.
	if code := figsCmd([]string{"-fig", "9", "-flux", "nope"}); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestRunCmdSmokeCase(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	if code := runCmd([]string{"testdata/smoke.json", "-progress"}); code != 0 {
		t.Errorf("smoke case exit code %d", code)
	}
	if code := runCmd([]string{"testdata/missing.json"}); code != 1 {
		t.Errorf("missing case exit code %d, want 1", code)
	}
	if code := runCmd([]string{}); code != 2 {
		t.Errorf("no-argument exit code %d, want 2", code)
	}
}

// A bad flux inside the case file itself must fail fast (exit 2, usage
// class) before the session builds anything — not mid-solve.
func TestRunCmdRejectsCaseFileFlux(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	data := []byte(`{"class":"ns","chemistry":"ideal","p_inf":100,"t_inf":250,"v_inf":2000,
		"nose_radius":0.3,"ni":8,"nj":14,"max_steps":50,"flux":"upwind-o-matic"}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCmd([]string{path}); code != 2 {
		t.Errorf("case-file flux exit code %d, want 2", code)
	}
}

func TestCheckLimiterAndCycleFailFast(t *testing.T) {
	if checkLimiter("superbee") {
		t.Error("unknown limiter accepted")
	}
	for _, l := range []string{"", "minmod", "vanalbada"} {
		if !checkLimiter(l) {
			t.Errorf("limiter %q rejected", l)
		}
	}
	if checkCycle("w") {
		t.Error("unknown cycle accepted")
	}
	for _, c := range []string{"", "cascade", "v"} {
		if !checkCycle(c) {
			t.Errorf("cycle %q rejected", c)
		}
	}
}

func TestCheckImplicitSweepFailsFast(t *testing.T) {
	if checkImplicitSweep("zebra") {
		t.Error("unknown sweep accepted")
	}
	for _, s := range []string{"", "jline", "adi"} {
		if !checkImplicitSweep(s) {
			t.Errorf("sweep %q rejected", s)
		}
	}
	if code := runCmd([]string{"testdata/smoke.json", "-implicitsweep", "zebra"}); code != 2 {
		t.Errorf("bad sweep exit code %d, want 2", code)
	}
}

// The baseline diff must fail in both directions: a result with no baseline
// entry (a rename would silently drop its gate) and a baseline entry that no
// longer runs.
func TestDiffBaselineBothDirections(t *testing.T) {
	write := func(results []BenchResult) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "base.json")
		data, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := BenchResult{Name: "StepA", NsPerOp: 100, N: 1}
	b := BenchResult{Name: "StepB", NsPerOp: 100, N: 1}
	if !diffBaseline([]BenchResult{a, b}, write([]BenchResult{a, b}), 0.3) {
		t.Error("matching result sets failed the diff")
	}
	if diffBaseline([]BenchResult{a, b}, write([]BenchResult{a}), 0.3) {
		t.Error("result with no baseline entry passed the diff")
	}
	if diffBaseline([]BenchResult{a}, write([]BenchResult{a, b}), 0.3) {
		t.Error("baseline entry that no longer runs passed the diff")
	}
	renamed := b
	renamed.Name = "StepBRenamed"
	if diffBaseline([]BenchResult{a, renamed}, write([]BenchResult{a, b}), 0.3) {
		t.Error("renamed benchmark passed the diff")
	}
}

// Unknown multilevel flags abort run/figs with a usage error before any
// solve starts, and negative counts are rejected.
func TestRunCmdRejectsBadMultilevelFlags(t *testing.T) {
	if code := runCmd([]string{"testdata/smoke.json", "-cycle", "w"}); code != 2 {
		t.Errorf("bad cycle exit code %d, want 2", code)
	}
	if code := runCmd([]string{"testdata/smoke.json", "-limiter", "superbee"}); code != 2 {
		t.Errorf("bad limiter exit code %d, want 2", code)
	}
	if code := runCmd([]string{"testdata/smoke.json", "-levels", "-3"}); code != 2 {
		t.Errorf("negative levels exit code %d, want 2", code)
	}
	if code := figsCmd([]string{"-fig", "9", "-cycle", "w"}); code != 2 {
		t.Errorf("figs bad cycle exit code %d, want 2", code)
	}
}

// The smoke case solves multilevel end to end through the CLI.
func TestRunCmdSmokeCaseMultilevel(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	if code := runCmd([]string{"testdata/smoke.json", "-timestep", "implicit", "-levels", "3"}); code != 0 {
		t.Errorf("multilevel smoke exit code %d", code)
	}
}

func TestBenchCmdRejectsArgs(t *testing.T) {
	if code := benchCmd([]string{"unexpected"}); code != 2 {
		t.Errorf("bench arg exit code %d, want 2", code)
	}
}
