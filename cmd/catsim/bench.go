package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"

	"cataero/internal/fvm"
)

// benchCmd runs the repository's Solve/Step benchmarks through
// testing.Benchmark and writes the results as machine-readable JSON
// (`catsim bench -out BENCH_pr5.json`), so CI can archive the perf
// trajectory per PR instead of scraping `go test -bench` text output. The
// cases mirror internal/fvm/bench_test.go via the shared
// fvm.ReferenceViscousCase configuration: per-step costs of the explicit,
// viscous and line-implicit paths, and wall-clock solve comparisons of
// explicit vs single-level implicit vs multilevel implicit at two grid
// sizes.
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("catsim bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_pr5.json", "output path for the JSON results")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catsim bench [-out results.json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "catsim bench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	results, err := runBenchmarks()
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d results to %s\n", len(results), *out)
	return 0
}

// BenchResult is one benchmark measurement of the `catsim bench` output.
type BenchResult struct {
	Name string `json:"name"`
	// NsPerOp is the wall-clock nanoseconds per operation (one time step
	// for the Step benchmarks, one converged solve for the Solve ones).
	NsPerOp float64 `json:"ns_per_op"`
	// StepsPerOp is the time-step count one solve took (0 for the Step
	// benchmarks, where the op is the step).
	StepsPerOp float64 `json:"steps_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	N          int     `json:"n"` // iterations the harness settled on
}

// benchStep measures one time step of the reference viscous case with the
// given integrator.
func benchStep(ni, nj int, ts string) (func(b *testing.B), error) {
	g, o, err := fvm.ReferenceViscousCase(ni, nj, ts)
	if err != nil {
		return nil, err
	}
	s, err := fvm.New(g, o)
	if err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := s.Step(); math.IsNaN(r) {
				b.Fatal("NaN residual")
			}
		}
	}, nil
}

// benchSolve measures a full converged solve (fresh solver per op) of the
// reference viscous case; steps receives the per-solve step count.
func benchSolve(ni, nj int, ts string, seq *fvm.SequenceOptions, steps *float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, o, err := fvm.ReferenceViscousCase(ni, nj, ts)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			o.Progress = func(phase string, step, maxSteps int, residual float64) { n++ }
			var s *fvm.Solver
			if seq != nil {
				s, _, err = fvm.SolveMultilevel(context.Background(), g, o, 6000, 5e-4, *seq)
			} else {
				if s, err = fvm.New(g, o); err == nil {
					_, err = s.RunCtx(context.Background(), 6000, 5e-4)
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
			*steps = float64(n)
		}
	}
}

// runBenchmarks executes the benchmark suite once and collects the results.
func runBenchmarks() ([]BenchResult, error) {
	var out []BenchResult
	record := func(name string, r testing.BenchmarkResult, steps float64) {
		out = append(out, BenchResult{
			Name:       name,
			NsPerOp:    float64(r.NsPerOp()),
			StepsPerOp: steps,
			AllocsOp:   r.AllocsPerOp(),
			BytesOp:    r.AllocedBytesPerOp(),
			N:          r.N,
		})
		fmt.Printf("%-28s %14.0f ns/op", name, float64(r.NsPerOp()))
		if steps > 0 {
			fmt.Printf("  %6.0f steps/op", steps)
		}
		fmt.Printf("  %5d allocs/op\n", r.AllocsPerOp())
	}

	// Per-step cost of the hot paths (the Fig. 9 grid size).
	for _, c := range []struct {
		name string
		ts   string
	}{
		{"StepViscousExplicit_20x32", "explicit"},
		{"StepViscousImplicit_20x32", "implicit"},
	} {
		fn, err := benchStep(20, 32, c.ts)
		if err != nil {
			return nil, err
		}
		record(c.name, testing.Benchmark(fn), 0)
	}

	// Converged solves: single-level explicit and implicit, and the
	// multilevel default (3-level cascade, implicit smoothing) at two grid
	// sizes — the multilevel win grows with resolution.
	threeLevel := &fvm.SequenceOptions{Levels: 3}
	var steps float64
	for _, c := range []struct {
		name   string
		ni, nj int
		ts     string
		seq    *fvm.SequenceOptions
	}{
		{"SolveExplicit_20x32", 20, 32, "explicit", nil},
		{"SolveImplicit_20x32", 20, 32, "implicit", nil},
		{"SolveImplicit_40x64", 40, 64, "implicit", nil},
		{"SolveMultigrid_40x64", 40, 64, "implicit", threeLevel},
		{"SolveImplicit_80x128", 80, 128, "implicit", nil},
		{"SolveMultigrid_80x128", 80, 128, "implicit", threeLevel},
	} {
		steps = 0
		r := testing.Benchmark(benchSolve(c.ni, c.nj, c.ts, c.seq, &steps))
		record(c.name, r, steps)
	}
	return out, nil
}
