package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"cataero/internal/fvm"
)

// benchCmd runs the repository's Solve/Step benchmarks through
// testing.Benchmark and writes the results as machine-readable JSON
// (`catsim bench -out BENCH.json`), so CI can archive the perf
// trajectory per PR instead of scraping `go test -bench` text output. The
// cases mirror internal/fvm/bench_test.go via the shared
// fvm.ReferenceViscousCase configuration: per-step costs of the explicit,
// viscous and line-implicit paths, and wall-clock solve comparisons of
// explicit vs single-level implicit vs multilevel implicit at three grid
// sizes.
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("catsim bench", flag.ExitOnError)
	out := fs.String("out", "BENCH.json", "output path for the JSON results")
	baseline := fs.String("baseline", "", "baseline JSON from a previous run; regressions past -tol fail")
	tol := fs.Float64("tol", 0.30, "allowed fractional ns/op and steps/op regression vs -baseline")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catsim bench [-out results.json] [-baseline prev.json] [-tol 0.30]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "catsim bench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	results, err := runBenchmarks()
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d results to %s\n", len(results), *out)
	code := 0
	if !stepAllocsGate(results) {
		code = 1
	}
	if *baseline != "" && !diffBaseline(results, *baseline, *tol) {
		code = 1
	}
	return code
}

// stepAllocsGate enforces the dynamic half of the hotpath contract: the
// per-step benchmarks must hold zero allocations per op. The static half is
// `catlint`'s hotpath analyzer over the //cataero:hotpath closure.
func stepAllocsGate(results []BenchResult) bool {
	ok := true
	for _, r := range results {
		if strings.HasPrefix(r.Name, "Step") && r.AllocsOp > 0 {
			fmt.Fprintf(os.Stderr, "catsim bench: %s allocates %d/op; the per-step paths must stay at 0 allocs/op\n",
				r.Name, r.AllocsOp)
			ok = false
		}
	}
	return ok
}

// diffBaseline compares results against a previous run's JSON by benchmark
// name. ns/op and steps/op may regress by at most the fractional tol (timing
// and convergence jitter); allocs/op must not grow at all. The name sets
// must match exactly in both directions — a benchmark missing from either
// side is a hard failure, so a rename cannot silently drop its gate; adding
// a benchmark means regenerating the baseline in the same change.
func diffBaseline(results []BenchResult, path string, tol float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: baseline: %v\n", err)
		return false
	}
	var base []BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "catsim bench: baseline %s: %v\n", path, err)
		return false
	}
	prev := make(map[string]BenchResult, len(base))
	for _, b := range base {
		prev[b.Name] = b
	}
	ok := true
	for _, r := range results {
		b, found := prev[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "catsim bench: %s has no baseline entry; regenerate the baseline with -out\n", r.Name)
			ok = false
			continue
		}
		delete(prev, r.Name)
		if b.NsPerOp > 0 {
			ratio := r.NsPerOp/b.NsPerOp - 1
			status := "ok"
			if ratio > tol {
				status = "REGRESSION"
				ok = false
			}
			fmt.Printf("%-28s ns/op %+6.1f%% vs baseline (%s)\n", r.Name, 100*ratio, status)
		}
		if b.StepsPerOp > 0 && r.StepsPerOp > b.StepsPerOp*(1+tol) {
			fmt.Fprintf(os.Stderr, "catsim bench: %s takes %.0f steps/op vs %.0f in the baseline\n",
				r.Name, r.StepsPerOp, b.StepsPerOp)
			ok = false
		}
		if r.AllocsOp > b.AllocsOp {
			fmt.Fprintf(os.Stderr, "catsim bench: %s allocates %d/op vs %d in the baseline\n",
				r.Name, r.AllocsOp, b.AllocsOp)
			ok = false
		}
	}
	for name := range prev {
		fmt.Fprintf(os.Stderr, "catsim bench: baseline benchmark %s no longer runs\n", name)
		ok = false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "catsim bench: performance regression vs %s (tol %.0f%%)\n", path, 100*tol)
	}
	return ok
}

// BenchResult is one benchmark measurement of the `catsim bench` output.
type BenchResult struct {
	Name string `json:"name"`
	// NsPerOp is the wall-clock nanoseconds per operation (one time step
	// for the Step benchmarks, one converged solve for the Solve ones).
	NsPerOp float64 `json:"ns_per_op"`
	// StepsPerOp is the time-step count one solve took (0 for the Step
	// benchmarks, where the op is the step).
	StepsPerOp float64 `json:"steps_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	N          int     `json:"n"` // iterations the harness settled on
}

// benchStep measures one time step of the reference viscous case with the
// given integrator and implicit sweep pattern ("" = the jline default).
func benchStep(ni, nj int, ts, sweep string) (func(b *testing.B), error) {
	g, o, err := fvm.ReferenceViscousCase(ni, nj, ts)
	if err != nil {
		return nil, err
	}
	o.ImplicitSweep = sweep
	s, err := fvm.New(g, o)
	if err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := s.Step(); math.IsNaN(r) {
				b.Fatal("NaN residual")
			}
		}
	}, nil
}

// benchSolve measures a full converged solve (fresh solver per op) of the
// reference viscous case; steps receives the per-solve step count.
func benchSolve(ni, nj int, ts string, seq *fvm.SequenceOptions, steps *float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, o, err := fvm.ReferenceViscousCase(ni, nj, ts)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			o.Progress = func(phase string, step, maxSteps int, residual float64, diag fvm.Diag) { n++ }
			var s *fvm.Solver
			if seq != nil {
				s, _, err = fvm.SolveMultilevel(context.Background(), g, o, 6000, 5e-4, *seq)
			} else {
				if s, err = fvm.New(g, o); err == nil {
					_, err = s.RunCtx(context.Background(), 6000, 5e-4)
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
			*steps = float64(n)
		}
	}
}

// runBenchmarks executes the benchmark suite once and collects the results.
func runBenchmarks() ([]BenchResult, error) {
	var out []BenchResult
	record := func(name string, r testing.BenchmarkResult, steps float64) {
		out = append(out, BenchResult{
			Name:       name,
			NsPerOp:    float64(r.NsPerOp()),
			StepsPerOp: steps,
			AllocsOp:   r.AllocsPerOp(),
			BytesOp:    r.AllocedBytesPerOp(),
			N:          r.N,
		})
		fmt.Printf("%-28s %14.0f ns/op", name, float64(r.NsPerOp()))
		if steps > 0 {
			fmt.Printf("  %6.0f steps/op", steps)
		}
		fmt.Printf("  %5d allocs/op\n", r.AllocsPerOp())
	}

	// Per-step cost of the hot paths (the Fig. 9 grid size).
	for _, c := range []struct {
		name      string
		ts, sweep string
	}{
		{"StepViscousExplicit_20x32", fvm.TimeSteppingExplicit, ""},
		{"StepViscousImplicit_20x32", fvm.TimeSteppingImplicit, ""},
		{"StepViscousImplicitADI_20x32", fvm.TimeSteppingImplicit, fvm.ImplicitSweepADI},
	} {
		fn, err := benchStep(20, 32, c.ts, c.sweep)
		if err != nil {
			return nil, err
		}
		record(c.name, testing.Benchmark(fn), 0)
	}

	// Converged solves: single-level explicit and implicit, and the
	// multilevel default (3-level cascade, implicit smoothing) at three
	// grid sizes — the multilevel win grows with resolution, and the
	// 20x32 pairing tracks where the crossover sits on the Fig. 9 grid.
	threeLevel := &fvm.SequenceOptions{Levels: 3}
	var steps float64
	for _, c := range []struct {
		name   string
		ni, nj int
		ts     string
		seq    *fvm.SequenceOptions
	}{
		{"SolveExplicit_20x32", 20, 32, fvm.TimeSteppingExplicit, nil},
		{"SolveImplicit_20x32", 20, 32, fvm.TimeSteppingImplicit, nil},
		{"SolveMultigrid_20x32", 20, 32, fvm.TimeSteppingImplicit, threeLevel},
		{"SolveImplicit_40x64", 40, 64, fvm.TimeSteppingImplicit, nil},
		{"SolveMultigrid_40x64", 40, 64, fvm.TimeSteppingImplicit, threeLevel},
		{"SolveImplicit_80x128", 80, 128, fvm.TimeSteppingImplicit, nil},
		{"SolveMultigrid_80x128", 80, 128, fvm.TimeSteppingImplicit, threeLevel},
	} {
		steps = 0
		r := testing.Benchmark(benchSolve(c.ni, c.nj, c.ts, c.seq, &steps))
		record(c.name, r, steps)
	}

	// The high-aspect-ratio slender case, where the sweep schedule is the
	// whole story: wall-normal-only relaxation stalls against the streamwise
	// coupling and rides the 2000-step cap, while the alternating-direction
	// schedule converges outright — the steps/op gate keeps that win honest.
	for _, c := range []struct {
		name  string
		sweep string
	}{
		{"SolveSlenderJline_64x12", fvm.ImplicitSweepJLine},
		{"SolveSlenderADI_64x12", fvm.ImplicitSweepADI},
	} {
		steps = 0
		r := testing.Benchmark(benchSolveSlender(c.sweep, &steps))
		record(c.name, r, steps)
	}
	return out, nil
}

// benchSolveSlender measures a capped solve of the high-aspect-ratio slender
// case under the given implicit sweep; steps receives the step count (the cap
// of 2000 when the sweep stalls).
func benchSolveSlender(sweep string, steps *float64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, o, err := fvm.ReferenceSlenderCase(64, 12, sweep)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			o.Progress = func(phase string, step, maxSteps int, residual float64, diag fvm.Diag) { n++ }
			s, err := fvm.New(g, o)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.RunCtx(context.Background(), 2000, 5e-4); err != nil {
				b.Fatal(err)
			}
			s.Close()
			*steps = float64(n)
		}
	}
}
