package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"

	"cataero"
)

// figsCmd regenerates the paper's figures: `catsim figs -fig 2,4,9`. Bare
// top-level flags route here too, so pre-subcommand invocations
// (`catsim -fig 7`) keep working.
func figsCmd(args []string) int {
	fs := flag.NewFlagSet("catsim figs", flag.ExitOnError)
	fig := fs.String("fig", "all", "figures to regenerate: comma-separated 1-9, or 'all'")
	quality := fs.Int("q", 1, "grid quality (1 = default, 2 = finer)")
	workers := fs.Int("workers", 0, "concurrent solve bound (0 = GOMAXPROCS)")
	fluxName := fs.String("flux", "", "finite-volume flux kernel (see 'catsim kernels'; empty = solver default)")
	timestep := fs.String("timestep", "", "finite-volume time integrator (explicit, implicit; empty = solver default)")
	limiter := fs.String("limiter", "", "MUSCL slope limiter (minmod, vanalbada; empty = solver default)")
	gridSeq := fs.Bool("gridseq", false, "grid-sequence the NS and shock-shape solves (coarse first, then fine)")
	levels := fs.Int("levels", 0, "multilevel grid-level count for NS/shock solves (2 = two-level, 3+ = deeper; implies -gridseq)")
	cycle := fs.String("cycle", "", "multigrid cycle (cascade, v; implies -gridseq)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "catsim figs: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !checkFlux(*fluxName) || !checkTimeStepping(*timestep) || !checkLimiter(*limiter) || !checkCycle(*cycle) {
		return 2
	}
	if *levels < 0 {
		fmt.Fprintln(os.Stderr, "catsim figs: -levels must be non-negative")
		return 2
	}

	// Profile around the figure runs; runFigs returns instead of exiting so
	// the profile is flushed even when a figure fails.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	code := runFigs(*fig, *quality, *workers, *fluxName, *timestep, *limiter, *cycle, *levels, *gridSeq)
	stopProfile()
	return code
}

// runFigs executes the requested figures and returns the process exit code.
func runFigs(fig string, quality, workers int, fluxName, timestep, limiter, cycle string, levels int, gridSeq bool) int {
	opts := []cataero.Option{cataero.WithQuality(cataero.Quality(quality))}
	if workers > 0 {
		opts = append(opts, cataero.WithWorkers(workers))
	}
	if fluxName != "" {
		opts = append(opts, cataero.WithFlux(fluxName))
	}
	if timestep != "" {
		opts = append(opts, cataero.WithTimeStepping(timestep))
	}
	if limiter != "" {
		opts = append(opts, cataero.WithLimiter(limiter))
	}
	if cycle != "" {
		opts = append(opts, cataero.WithCycle(cycle))
	}
	if levels > 0 {
		opts = append(opts, cataero.WithLevels(levels))
	}
	if gridSeq {
		opts = append(opts, cataero.WithGridSequencing(true))
	}
	s := cataero.NewSession(opts...)
	ctx := context.Background()

	runners := map[string]func() error{
		"1": func() error { return fig1() },
		"2": func() error { return fig2(ctx, s) },
		"3": func() error { return fig3() },
		"4": func() error { return fig4(ctx, s, cataero.Quality(quality)) },
		"5": func() error { return fig5() },
		"6": func() error { return fig6(ctx, s) },
		"7": func() error { return fig7() },
		"8": func() error { return fig8() },
		"9": func() error { return fig9(ctx, s, cataero.Quality(quality)) },
	}

	var keys []string
	if fig == "all" {
		keys = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9"}
	} else {
		for _, k := range strings.Split(fig, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			if _, ok := runners[k]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q (want 1-9, a comma-separated list, or 'all')\n", k)
				return 2
			}
			keys = append(keys, k)
		}
		if len(keys) == 0 {
			fmt.Fprintf(os.Stderr, "no figures requested (want 1-9, a comma-separated list, or 'all')\n")
			return 2
		}
	}

	for _, k := range keys {
		if len(keys) > 1 {
			fmt.Printf("==== Figure %s ====\n", k)
		}
		if err := runners[k](); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", k, err)
			return 1
		}
		if len(keys) > 1 {
			fmt.Println()
		}
	}
	return 0
}

func fig1() error {
	r := cataero.Fig1FlightDomain()
	fmt.Println("Flight domain (Re vs M) and facility envelopes")
	for _, v := range r.Vehicles {
		fmt.Printf("%s:\n", v.Label)
		for i := range v.X {
			fmt.Printf("  M=%6.2f  Re=%10.3e\n", v.X[i], v.Y[i])
		}
	}
	fmt.Println("facilities:")
	for _, f := range r.Facilities {
		fmt.Printf("  %-32s M %4.1f-%4.1f  Re %.1e-%.1e\n",
			f.Name, f.MachMin, f.MachMax, f.ReynoldsMin, f.ReynoldsMax)
	}
	fmt.Printf("AOTV simulation gap: %.0f%% of trajectory uncovered\n", 100*r.GapFraction)
	return nil
}

func fig2(ctx context.Context, s *cataero.Session) error {
	r, err := s.Fig2TitanHeatingPulse(ctx)
	if err != nil {
		return err
	}
	fmt.Println("Titan probe heating pulses (W/cm^2)")
	fmt.Println("   t [s]     q_conv      q_rad")
	for i := range r.Time {
		fmt.Printf("  %6.1f   %8.2f   %8.2f\n", r.Time[i], r.QConv[i], r.QRad[i])
	}
	fmt.Printf("peaks: conv %.1f at %.0fs, rad %.1f at %.0fs\n",
		r.PeakConv, r.TPeakConv, r.PeakRad, r.TPeakRad)
	return nil
}

func fig3() error {
	r, err := cataero.Fig3TitanSpeciesProfile()
	if err != nil {
		return err
	}
	fmt.Printf("Titan stagnation-line species (delta = %.2f cm)\n", r.Delta*100)
	names := []string{"N2", "H2", "H", "C2H2", "HCN", "CN", "C2", "N"}
	fmt.Printf("%8s", "y/delta")
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()
	for i := range r.YOverDelta {
		fmt.Printf("%8.3f", r.YOverDelta[i])
		for _, n := range names {
			fmt.Printf(" %9.2e", r.Species[n][i])
		}
		fmt.Println()
	}
	return nil
}

func fig4(ctx context.Context, s *cataero.Session, q cataero.Quality) error {
	r, err := s.Fig4OrbiterShockShape(ctx, q)
	if err != nil {
		return err
	}
	fmt.Println("Orbiter pitch-plane bow shock (x,y of locus, m)")
	fmt.Println("      ideal x      ideal y   reacting x   reacting y")
	for i := range r.IdealX {
		fmt.Printf("  %10.3f  %10.3f  %10.3f  %10.3f\n",
			r.IdealX[i], r.IdealY[i], r.ReactingX[i], r.ReactingY[i])
	}
	fmt.Printf("standoff: ideal %.3f m, reacting %.3f m (ratio %.2f)\n",
		r.StandoffIdeal, r.StandoffReacting, r.StandoffReacting/r.StandoffIdeal)
	return nil
}

func fig5() error {
	secs := cataero.Fig5OrbiterGeometry(20)
	fmt.Println("Orbiter geometry sections")
	fmt.Println("    x [m]   half-width   windward z")
	for _, sec := range secs {
		fmt.Printf("  %7.2f   %10.2f   %10.2f\n", sec.X, sec.HalfWidth, sec.WindwardZ)
	}
	return nil
}

func fig6(ctx context.Context, s *cataero.Session) error {
	r, err := s.Fig6WindwardHeating(ctx)
	if err != nil {
		return err
	}
	fmt.Println("Windward centerline heating (W/cm^2)")
	fmt.Println("     x/L      q_eq   q_ideal(1.2)")
	for i := range r.XOverL {
		fmt.Printf("  %6.3f  %8.2f  %12.2f\n", r.XOverL[i], r.QEquilibrium[i], r.QIdeal[i])
	}
	fmt.Println("flight data (synthetic, finite catalysis):")
	for i := range r.FlightX {
		fmt.Printf("  x/L=%.3f  q=%.2f\n", r.FlightX[i], r.FlightQ[i])
	}
	fmt.Printf("catalysis fraction: %.2f\n", r.CatalysisFraction)
	return nil
}

func fig7() error {
	r, err := cataero.Fig7ShockRelaxation()
	if err != nil {
		return err
	}
	fmt.Println("Two-temperature relaxation behind a 10 km/s shock (0.1 torr)")
	fmt.Println("   x [cm]      T [K]     Tv [K]    x(N2)     x(N)      x(e-)")
	for i := range r.X {
		fmt.Printf("  %8.4f  %9.0f  %9.0f  %7.4f  %7.4f  %9.2e\n",
			r.X[i]*100, r.T[i], r.Tv[i], r.XN2[i], r.XN[i], r.XE[i])
	}
	fmt.Printf("frozen T %.0f K -> equilibrium %.0f K\n", r.TFrozen, r.TEq)
	return nil
}

func fig8() error {
	r, err := cataero.Fig8NoneqSpectra()
	if err != nil {
		return err
	}
	fmt.Println("Nonequilibrium air spectrum (wall-directed intensity)")
	fmt.Println("  lambda [nm]     computed     'measured'")
	for i := 0; i < len(r.LambdaNm); i += 8 {
		fmt.Printf("  %10.1f  %12.4g  %12.4g\n", r.LambdaNm[i], r.Computed[i], r.Measured[i])
	}
	return nil
}

func fig9(ctx context.Context, s *cataero.Session, q cataero.Quality) error {
	r, err := s.Fig9HemisphereNS(ctx, q)
	if err != nil {
		return err
	}
	fmt.Println("Hemisphere NS: N2 mole-fraction contours (Mach 20, 20 km)")
	levels := make([]float64, 0, len(r.ContourX))
	for lv := range r.ContourX {
		levels = append(levels, lv)
	}
	sort.Float64s(levels)
	for _, lv := range levels {
		fmt.Printf("  x(N2)=%.2f at stagnation-line x = %8.4f m\n", lv, r.ContourX[lv])
	}
	fmt.Printf("min x(N2) = %.3f; q_stag = %.1f W/cm^2; standoff = %.1f mm\n",
		r.MinXN2, r.QStag/1e4, r.Standoff*1000)
	return nil
}
