package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cataero/internal/ledger"
)

// ledgerCmd inspects and maintains a run ledger:
//
//	catsim ledger ls  -ledger DIR            list entries (key, solver, age, cost)
//	catsim ledger get -ledger DIR KEY        print one full entry as JSON
//	catsim ledger gc  -ledger DIR -older 30d remove entries older than a cutoff
func ledgerCmd(args []string) int {
	if len(args) == 0 {
		ledgerUsage(os.Stderr)
		return 2
	}
	sub, args := args[0], args[1:]
	switch sub {
	case "ls":
		return ledgerLs(args)
	case "get":
		return ledgerGet(args)
	case "gc":
		return ledgerGC(args)
	case "help":
		ledgerUsage(os.Stdout)
		return 0
	}
	fmt.Fprintf(os.Stderr, "catsim ledger: unknown subcommand %q\n\n", sub)
	ledgerUsage(os.Stderr)
	return 2
}

func ledgerUsage(w *os.File) {
	fmt.Fprintf(w, `usage: catsim ledger <ls|get|gc> -ledger DIR [args]

subcommands:
  ls   list stored entries: key, solver, age and original solve cost
  get  print one entry (full JSON) by key; KEY may be a unique prefix
  gc   remove entries created before -older ago, plus damaged entries
       and abandoned temp files; -max-bytes then evicts least-recently-
       used files (checkpoints before results) until the ledger fits the
       budget; -dry reports the age sweep without removing
`)
}

// openLedgerFlag parses common flags and opens the store.
func openLedgerFlag(fs *flag.FlagSet, args []string) (*ledger.Ledger, []string, int) {
	dir := fs.String("ledger", "", "run-ledger directory (required)")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintf(os.Stderr, "catsim ledger %s: -ledger DIR is required\n", fs.Name())
		return nil, nil, 2
	}
	l, err := ledger.Open(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger %s: %v\n", fs.Name(), err)
		return nil, nil, 1
	}
	return l, fs.Args(), 0
}

func ledgerLs(args []string) int {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	l, rest, code := openLedgerFlag(fs, args)
	if code != 0 {
		return code
	}
	if len(rest) > 0 {
		fmt.Fprintf(os.Stderr, "catsim ledger ls: unexpected argument %q\n", rest[0])
		return 2
	}
	entries, err := l.Entries()
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger ls: %v\n", err)
		return 1
	}
	if len(entries) == 0 {
		fmt.Println("ledger is empty")
		return 0
	}
	fmt.Printf("%-16s  %-8s  %-12s  %s\n", "KEY", "SOLVER", "AGE", "SOLVED IN")
	for _, e := range entries {
		age := time.Since(e.Created).Round(time.Minute)
		fmt.Printf("%-16s  %-8s  %-12s  %.1f ms\n", e.Key[:16], e.Solver, age, e.ElapsedMS)
	}
	fmt.Printf("%d entries\n", len(entries))
	return 0
}

func ledgerGet(args []string) int {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	l, rest, code := openLedgerFlag(fs, args)
	if code != 0 {
		return code
	}
	if len(rest) != 1 {
		fmt.Fprintln(os.Stderr, "usage: catsim ledger get -ledger DIR KEY")
		return 2
	}
	key, err := resolveKey(l, rest[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger get: %v\n", err)
		return 1
	}
	e, err := l.Get(key)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger get: %v\n", err)
		return 1
	}
	if e == nil {
		fmt.Fprintf(os.Stderr, "catsim ledger get: no entry for %s\n", key)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger get: %v\n", err)
		return 1
	}
	return 0
}

// resolveKey expands a unique key prefix to the full stored key.
func resolveKey(l *ledger.Ledger, prefix string) (string, error) {
	keys, err := l.Keys()
	if err != nil {
		return "", err
	}
	var matches []string
	for _, k := range keys {
		if k == prefix {
			return k, nil
		}
		if len(prefix) >= 4 && len(prefix) < len(k) && k[:len(prefix)] == prefix {
			matches = append(matches, k)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return prefix, nil // let Get report the miss / invalid key
	}
	return "", fmt.Errorf("prefix %q is ambiguous (%d matches)", prefix, len(matches))
}

func ledgerGC(args []string) int {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	older := fs.Duration("older", 0, "remove entries created more than this long ago (0 = only damaged entries)")
	maxBytes := fs.Int64("max-bytes", 0, "evict least-recently-used files (checkpoints first) until the ledger fits this size (0 = no size budget)")
	dry := fs.Bool("dry", false, "report what would be removed without removing")
	l, rest, code := openLedgerFlag(fs, args)
	if code != 0 {
		return code
	}
	if len(rest) > 0 {
		fmt.Fprintf(os.Stderr, "catsim ledger gc: unexpected argument %q\n", rest[0])
		return 2
	}
	var cutoff time.Time
	if *older > 0 {
		cutoff = time.Now().UTC().Add(-*older)
	}
	if *dry {
		entries, err := l.Entries()
		if err != nil {
			fmt.Fprintf(os.Stderr, "catsim ledger gc: %v\n", err)
			return 1
		}
		n := 0
		for _, e := range entries {
			if !cutoff.IsZero() && e.Created.Before(cutoff) {
				fmt.Printf("would remove %s (created %s)\n", e.Key[:16], e.Created.Format(time.RFC3339))
				n++
			}
		}
		fmt.Printf("%d of %d entries past cutoff (damaged entries are counted only by a real gc)\n", n, len(entries))
		return 0
	}
	removed, err := l.GC(cutoff)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim ledger gc: %v\n", err)
		return 1
	}
	fmt.Printf("removed %d entries\n", removed)
	if *maxBytes > 0 {
		evicted, freed, err := l.GCSize(*maxBytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "catsim ledger gc: %v\n", err)
			return 1
		}
		fmt.Printf("evicted %d files (%d bytes) to fit %d bytes\n", evicted, freed, *maxBytes)
	}
	return 0
}
