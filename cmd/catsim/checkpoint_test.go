package main

import (
	"os"
	"path/filepath"
	"testing"

	"cataero/internal/ledger"
)

// Checkpoint flags are ledger-backed; using them without -ledger (or with a
// negative cadence) is a usage error that must fail before any solve starts.
func TestRunCmdCheckpointFlagValidation(t *testing.T) {
	if code := runCmd([]string{"testdata/smoke.json", "-checkpoint", "5"}); code != 2 {
		t.Errorf("-checkpoint without -ledger exit code %d, want 2", code)
	}
	if code := runCmd([]string{"testdata/smoke.json", "-resume"}); code != 2 {
		t.Errorf("-resume without -ledger exit code %d, want 2", code)
	}
	if code := runCmd([]string{"testdata/smoke.json", "-ledger", t.TempDir(), "-checkpoint", "-1"}); code != 2 {
		t.Errorf("negative -checkpoint exit code %d, want 2", code)
	}
}

func TestServeCmdCheckpointFlagValidation(t *testing.T) {
	if code := serveCmd([]string{"-checkpoint", "5"}); code != 2 {
		t.Errorf("serve -checkpoint without -ledger exit code %d, want 2", code)
	}
	if code := serveCmd([]string{"-checkpoint", "-1"}); code != 2 {
		t.Errorf("serve negative -checkpoint exit code %d, want 2", code)
	}
}

// An interrupted `catsim run -checkpoint` leaves a resumable checkpoint in
// the ledger; a second invocation with -resume finishes the solve, files the
// entry, and drops the checkpoint it superseded.
func TestRunCmdCheckpointResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	dir := t.TempDir()
	// A case heavy enough that a short -timeout lands mid-march, not after
	// convergence (the smoke case is too small to interrupt reliably).
	casePath := filepath.Join(t.TempDir(), "slow.json")
	caseJSON := []byte(`{"class":"ns","chemistry":"equilibrium-air",
		"p_inf":5474.9,"t_inf":216.65,"v_inf":1770.4,
		"nose_radius":0.3,"t_wall":1500,"ni":32,"nj":48,"max_steps":4000,
		"time_stepping":"implicit","grid_sequencing":"off"}`)
	if err := os.WriteFile(casePath, caseJSON, 0o644); err != nil {
		t.Fatal(err)
	}

	code := runCmd([]string{casePath, "-ledger", dir, "-checkpoint", "5", "-timeout", "100ms"})
	if code == 0 {
		t.Skip("solve converged inside the interrupt timeout; nothing to resume")
	}
	if code != 1 {
		t.Fatalf("interrupted run exit code %d, want 1", code)
	}
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cks, err := l.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 {
		t.Fatalf("interrupted run left %d checkpoints, want 1", len(cks))
	}
	if cks[0].Step <= 0 {
		t.Errorf("checkpoint step %d, want > 0", cks[0].Step)
	}
	if len(cks[0].Spec) == 0 {
		t.Error("checkpoint stored without a case spec; serve recovery could not re-submit it")
	}

	if code := runCmd([]string{casePath, "-ledger", dir, "-checkpoint", "5", "-resume"}); code != 0 {
		t.Fatalf("resumed run exit code %d, want 0", code)
	}
	entries, err := l.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("resumed run filed %d entries, want 1", len(entries))
	}
	if entries[0].Key != cks[0].Key {
		t.Errorf("entry key %s does not match checkpoint key %s", entries[0].Key, cks[0].Key)
	}
	if cks, err := l.Checkpoints(); err != nil || len(cks) != 0 {
		t.Errorf("result did not supersede the checkpoint: %d left, err %v", len(cks), err)
	}

	// A third invocation is a pure ledger hit — and the size-budget GC can
	// then evict the artifact through the CLI.
	if code := runCmd([]string{casePath, "-ledger", dir}); code != 0 {
		t.Errorf("ledger-hit rerun exit code %d, want 0", code)
	}
	if code := ledgerGC([]string{"-ledger", dir, "-max-bytes", "1"}); code != 0 {
		t.Errorf("ledger gc -max-bytes exit code %d, want 0", code)
	}
	if entries, err := l.Entries(); err != nil || len(entries) != 0 {
		t.Errorf("gc -max-bytes left %d entries, err %v", len(entries), err)
	}
}
