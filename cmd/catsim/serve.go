package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cataero"
	"cataero/internal/ledger"
	"cataero/internal/serve"
)

// serveCmd runs the aerothermal solve service: an HTTP/JSON front end over
// one cataero.Session with a persistent content-addressed run ledger.
// Repeat submissions of a case the ledger already holds are answered from
// disk without re-solving; `catsim run -ledger` shares the same store.
//
// With -checkpoint N, in-flight solves persist resumable checkpoints to the
// ledger every N steps. SIGTERM/SIGINT drains the server — new submissions
// get 503, in-flight runs are checkpointed and cancelled within
// -drain-timeout — and the next `catsim serve` over the same ledger
// re-submits interrupted runs from their checkpoints.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("catsim serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	ledgerDir := fs.String("ledger", "", "run-ledger directory (empty = serve without caching)")
	workers := fs.Int("workers", 0, "concurrent solve bound (0 = GOMAXPROCS)")
	quotaRate := fs.Float64("quota-rate", 0, "per-client solve admissions per second (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 4, "per-client admission burst (token-bucket depth)")
	checkpoint := fs.Int("checkpoint", 0, "checkpoint in-flight solves to the ledger every N steps (0 = off; requires -ledger)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on checkpointing and stopping in-flight runs at shutdown")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catsim serve [-addr :8080] [-ledger DIR] [-workers N] [-quota-rate R] [-quota-burst B] [-checkpoint N] [-drain-timeout D]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "catsim serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *checkpoint < 0 {
		fmt.Fprintln(os.Stderr, "catsim serve: -checkpoint must be non-negative")
		return 2
	}
	if *checkpoint > 0 && *ledgerDir == "" {
		fmt.Fprintln(os.Stderr, "catsim serve: -checkpoint needs -ledger DIR to store checkpoints")
		return 2
	}

	var opts []cataero.Option
	if *workers > 0 {
		opts = append(opts, cataero.WithWorkers(*workers))
	}
	session := cataero.NewSession(opts...)

	var store *ledger.Ledger
	if *ledgerDir != "" {
		var err error
		if store, err = ledger.Open(*ledgerDir); err != nil {
			fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
			return 1
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[%s] %s\n",
			time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
	}
	srv, err := serve.New(serve.Config{
		Session:         session,
		Ledger:          store,
		Workers:         *workers,
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		CheckpointEvery: *checkpoint,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
		return 1
	}
	defer srv.Close()

	// A previous process (drained or crashed) may have left interrupted
	// runs behind; re-submit them from their checkpoints before taking
	// traffic.
	if store != nil {
		if n, err := srv.Recover(); err != nil {
			logf("recover: %v", err)
		} else if n > 0 {
			logf("recovered %d interrupted run(s) from ledger checkpoints", n)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Drain first: reject new admissions, checkpoint and stop in-flight
		// solves; then close the listener. In-flight HTTP responses (e.g.
		// ?wait=1 waiters) get the drain window too.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			logf("drain: %v", err)
		}
		_ = httpSrv.Shutdown(drainCtx)
	}()

	if store != nil {
		logf("serving on %s (ledger %s)", *addr, store.Dir())
	} else {
		logf("serving on %s (no ledger: every submission solves)", *addr)
	}
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
		return 1
	}
	logf("shut down")
	return 0
}
