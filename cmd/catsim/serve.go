package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"cataero"
	"cataero/internal/ledger"
	"cataero/internal/serve"
)

// serveCmd runs the aerothermal solve service: an HTTP/JSON front end over
// one cataero.Session with a persistent content-addressed run ledger.
// Repeat submissions of a case the ledger already holds are answered from
// disk without re-solving; `catsim run -ledger` shares the same store.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("catsim serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	ledgerDir := fs.String("ledger", "", "run-ledger directory (empty = serve without caching)")
	workers := fs.Int("workers", 0, "concurrent solve bound (0 = GOMAXPROCS)")
	quotaRate := fs.Float64("quota-rate", 0, "per-client solve admissions per second (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 4, "per-client admission burst (token-bucket depth)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catsim serve [-addr :8080] [-ledger DIR] [-workers N] [-quota-rate R] [-quota-burst B]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "catsim serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	var opts []cataero.Option
	if *workers > 0 {
		opts = append(opts, cataero.WithWorkers(*workers))
	}
	session := cataero.NewSession(opts...)

	var store *ledger.Ledger
	if *ledgerDir != "" {
		var err error
		if store, err = ledger.Open(*ledgerDir); err != nil {
			fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
			return 1
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[%s] %s\n",
			time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
	}
	srv, err := serve.New(serve.Config{
		Session:    session,
		Ledger:     store,
		Workers:    *workers,
		QuotaRate:  *quotaRate,
		QuotaBurst: *quotaBurst,
		Logf:       logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
		return 1
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	if store != nil {
		logf("serving on %s (ledger %s)", *addr, store.Dir())
	} else {
		logf("serving on %s (no ledger: every submission solves)", *addr)
	}
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "catsim serve: %v\n", err)
		return 1
	}
	logf("shut down")
	return 0
}
