package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cataero"
	"cataero/internal/ledger"
)

// runCmd solves a declarative JSON case file: `catsim run case.json
// [-progress]`. The case is submitted as an asynchronous run; -progress
// follows it with a live residual ticker, and an interrupt cancels the run
// cleanly. Flags may come before or after the case path.
func runCmd(args []string) int {
	fs := flag.NewFlagSet("catsim run", flag.ExitOnError)
	progress := fs.Bool("progress", false, "print a live solver progress/residual ticker")
	fluxName := fs.String("flux", "", "override the case's flux kernel (see 'catsim kernels')")
	timestep := fs.String("timestep", "", "override the case's time integrator (explicit, implicit)")
	sweep := fs.String("implicitsweep", "", "override the case's implicit sweep pattern (jline, adi)")
	limiter := fs.String("limiter", "", "override the case's MUSCL slope limiter (minmod, vanalbada)")
	freezeLim := fs.Float64("freezelimiter", 0, "freeze the MUSCL limiter once the residual has dropped by this factor (0 = case/off)")
	levels := fs.Int("levels", 0, "override the case's multilevel grid-level count (2 = two-level, 3+ = deeper)")
	cycle := fs.String("cycle", "", "override the case's multigrid cycle (cascade, v)")
	refitEvery := fs.Int("refitevery", 0, "re-fit the outer boundary to the shock locus every N fine steps")
	workers := fs.Int("workers", 0, "concurrent solve bound (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
	ledgerDir := fs.String("ledger", "", "consult and update a run ledger (shared with 'catsim serve')")
	checkpoint := fs.Int("checkpoint", 0, "persist a resumable checkpoint to the ledger every N steps (requires -ledger)")
	resume := fs.Bool("resume", false, "resume from the newest valid ledger checkpoint of this case (requires -ledger)")
	outPath := fs.String("out", "", "write the solved environment as JSON to this file (the serve artifact)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: catsim run [flags] case.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	path := rest[0]
	// Accept trailing flags too: `catsim run case.json -progress`.
	if len(rest) > 1 {
		fs.Parse(rest[1:])
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "catsim run: unexpected argument %q\n", fs.Arg(0))
			return 2
		}
	}
	if !checkFlux(*fluxName) || !checkTimeStepping(*timestep) || !checkImplicitSweep(*sweep) || !checkLimiter(*limiter) || !checkCycle(*cycle) {
		return 2
	}
	if *levels < 0 || *refitEvery < 0 {
		fmt.Fprintln(os.Stderr, "catsim run: -levels and -refitevery must be non-negative")
		return 2
	}
	if *freezeLim < 0 || *freezeLim >= 1 {
		fmt.Fprintln(os.Stderr, "catsim run: -freezelimiter must be in [0, 1)")
		return 2
	}
	if *checkpoint < 0 {
		fmt.Fprintln(os.Stderr, "catsim run: -checkpoint must be non-negative")
		return 2
	}
	if (*checkpoint > 0 || *resume) && *ledgerDir == "" {
		fmt.Fprintln(os.Stderr, "catsim run: -checkpoint and -resume need -ledger DIR to store and find checkpoints")
		return 2
	}

	p, err := cataero.LoadCase(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *fluxName != "" {
		p.Flux = *fluxName
	}
	if *timestep != "" {
		p.TimeStepping = *timestep
	}
	if *sweep != "" {
		p.ImplicitSweep = *sweep
	}
	if *limiter != "" {
		p.Limiter = *limiter
	}
	if *freezeLim != 0 {
		p.FreezeLimiterAt = *freezeLim
	}
	if *levels != 0 {
		p.Levels = *levels
	}
	if *cycle != "" {
		p.Cycle = *cycle
	}
	if *refitEvery != 0 {
		p.RefitEvery = *refitEvery
	}
	// The case file's own flux, integrator, sweep, limiter and cycle fields
	// fail fast too — before the session builds models or any solve starts.
	if !checkFlux(p.Flux) || !checkTimeStepping(p.TimeStepping) || !checkImplicitSweep(p.ImplicitSweep) || !checkLimiter(p.Limiter) || !checkCycle(p.Cycle) {
		return 2
	}

	var opts []cataero.Option
	if *workers > 0 {
		opts = append(opts, cataero.WithWorkers(*workers))
	}
	s := cataero.NewSession(opts...)

	// With a ledger, identical cases hash to identical content keys (field
	// order and explicit defaults do not matter), so a prior solve — by this
	// command or by `catsim serve` over the same directory — is reused.
	var store *ledger.Ledger
	var caseKey string
	if *ledgerDir != "" {
		var err error
		if store, err = ledger.Open(*ledgerDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		np, err := s.Normalize(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if caseKey, err = cataero.CaseKey(np); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if e, err := store.Get(caseKey); err == nil && e != nil {
			return reportLedgerHit(path, e, *outPath)
		}
		// Checkpoint sink and resume source share the entry's content key, so
		// an interrupted `catsim run` and a `catsim serve` over the same
		// directory can continue each other's solves.
		if *checkpoint > 0 {
			// The stored spec is the normalized canonical JSON — the same
			// bytes `catsim serve` stores, so its restart recovery can
			// re-submit a run this command left behind.
			spec, _ := cataero.CanonicalJSON(np)
			p.CheckpointEvery = *checkpoint
			p.CheckpointSink = func(cp *cataero.Checkpoint) {
				data, err := cp.AppendBinary(nil)
				if err != nil {
					fmt.Fprintf(os.Stderr, "catsim run: encode checkpoint: %v\n", err)
					return
				}
				err = store.PutCheckpoint(&ledger.Checkpoint{
					Key: caseKey, Spec: spec, Step: cp.Step,
					Version: cataero.Version, Data: data,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "catsim run: checkpoint: %v\n", err)
				}
			}
		}
		if *resume {
			if lc, err := store.GetCheckpoint(caseKey); err == nil && lc != nil {
				if cp, err := cataero.DecodeCheckpoint(lc.Data); err == nil {
					p.Restore = cp
					fmt.Printf("resuming from ledger checkpoint at step %d\n", lc.Step)
				} else {
					fmt.Fprintf(os.Stderr, "catsim run: stored checkpoint unreadable (%v); solving from step 0\n", err)
				}
			} else {
				fmt.Println("no stored checkpoint for this case; solving from step 0")
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	label := path
	if p.Name != "" {
		label = fmt.Sprintf("%s (%q)", path, p.Name)
	}
	fmt.Printf("case %s: %s class, %s\n", label, p.Class, p.Chemistry)
	run := s.Submit(ctx, p)
	if *progress {
		followRun(run)
	}
	env, err := run.Wait()
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim run: %v\n", err)
		return 1
	}
	snap := run.Snapshot()
	printEnvironment(env, snap)

	result, err := json.Marshal(env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "catsim run: marshal result: %v\n", err)
		return 1
	}
	if store != nil {
		entry := &ledger.Entry{
			Key:       caseKey,
			Result:    result,
			Solver:    snap.Solver,
			Version:   cataero.Version,
			ElapsedMS: float64(snap.Elapsed) / float64(time.Millisecond),
		}
		if spec, err := cataero.CanonicalJSON(p); err == nil {
			entry.Spec = spec
		}
		if snapJSON, err := json.Marshal(snap); err == nil {
			entry.Snapshot = snapJSON
		}
		if err := store.Put(entry); err != nil {
			fmt.Fprintf(os.Stderr, "catsim run: ledger: %v\n", err)
		} else {
			fmt.Printf("  ledger       + %s\n", caseKey[:16])
			// The result supersedes any partial-run checkpoint.
			if err := store.DeleteCheckpoint(caseKey); err != nil {
				fmt.Fprintf(os.Stderr, "catsim run: drop checkpoint: %v\n", err)
			}
		}
	}
	if *outPath != "" {
		if err := writeArtifact(*outPath, result); err != nil {
			fmt.Fprintf(os.Stderr, "catsim run: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote        %s\n", *outPath)
	}
	return 0
}

// reportLedgerHit answers a run from a stored entry: no solve happens, the
// stored artifact is printed (and written to -out) exactly as a fresh solve's
// would be.
func reportLedgerHit(path string, e *ledger.Entry, outPath string) int {
	var env cataero.Environment
	if err := json.Unmarshal(e.Result, &env); err != nil {
		fmt.Fprintf(os.Stderr, "catsim run: ledger entry for %s is unreadable: %v\n", path, err)
		return 1
	}
	fmt.Printf("ledger hit %s (solved in %.1f ms by %s, toolkit %s)\n",
		e.Key[:16], e.ElapsedMS, e.Solver, e.Version)
	// Reconstruct what a fresh solve would have reported from the entry's
	// provenance; the stored snapshot is a display artifact, not re-parsed.
	printEnvironment(&env, cataero.Snapshot{
		Solver:  e.Solver,
		Elapsed: time.Duration(e.ElapsedMS * float64(time.Millisecond)),
	})
	if outPath != "" {
		if err := writeArtifact(outPath, e.Result); err != nil {
			fmt.Fprintf(os.Stderr, "catsim run: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote        %s\n", outPath)
	}
	return 0
}

// writeArtifact writes the result JSON with a trailing newline.
func writeArtifact(path string, result []byte) error {
	return os.WriteFile(path, append(result, '\n'), 0o644)
}

// followRun prints a live progress line whenever the run advances, until it
// finishes. Lines print at most every 250 ms so long solves stay readable
// in logs. The residual carries a trend arrow computed from the snapshot's
// retained convergence history.
func followRun(run *cataero.Run) {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	lastStep, lastPhase := -1, ""
	for {
		select {
		case <-run.Done():
			return
		case <-tick.C:
			snap := run.Snapshot()
			if snap.State != cataero.RunRunning || (snap.Step == lastStep && snap.Phase == lastPhase) {
				continue
			}
			lastStep, lastPhase = snap.Step, snap.Phase
			line := fmt.Sprintf("  [%s/%s] step %d", snap.Solver, snap.Phase, snap.Step)
			if snap.MaxSteps > 0 {
				line += fmt.Sprintf("/%d", snap.MaxSteps)
			}
			if snap.Residual > 0 {
				line += fmt.Sprintf("  residual %.3e %s", snap.Residual, trendArrow(snap.History()))
			}
			fmt.Printf("%s  elapsed %s\n", line, snap.Elapsed.Round(time.Millisecond))
		}
	}
}

// trendArrow summarizes a convergence history window: ↓ when the residual
// fell across the window, ↑ when it rose, → when it is holding level (or
// the window is too short to tell).
func trendArrow(hist []cataero.HistoryPoint) string {
	if len(hist) < 2 {
		return "→"
	}
	first, last := hist[0].Residual, hist[len(hist)-1].Residual
	switch {
	case last < 0.7*first:
		return "↓"
	case last > 1.3*first:
		return "↑"
	}
	return "→"
}

// printEnvironment reports the solved aerothermal environment.
func printEnvironment(env *cataero.Environment, snap cataero.Snapshot) {
	fmt.Printf("%s\n", env.Description)
	fmt.Printf("  q_conv(stag) = %.2f W/cm^2\n", env.QConvStag/1e4)
	if env.QRadStag > 0 {
		fmt.Printf("  q_rad(stag)  = %.2f W/cm^2\n", env.QRadStag/1e4)
	}
	if env.Standoff > 0 {
		fmt.Printf("  standoff     = %.2f mm\n", env.Standoff*1000)
	}
	if n := len(env.Surface); n > 0 {
		fmt.Printf("  surface      = %d stations, s = [0, %.3f] m\n", n, env.Surface[n-1].S)
	}
	if snap.Residual > 0 {
		fmt.Printf("  final residual %.3e after %d steps (%s, %s phase)\n",
			snap.Residual, snap.Step, snap.Solver, snap.Phase)
	}
	fmt.Printf("  wall clock   = %s\n", snap.Elapsed.Round(time.Millisecond))
}
