// Package cataero is a computational aerothermodynamics (CAT) toolkit: a Go
// reproduction of the system surveyed in Deiwert & Green, "Computational
// Aerothermodynamics" (NASA TM-89450 / Supercomputing '89). It couples the
// paper's four-solver hierarchy — viscous shock layer (VSL), Euler +
// boundary layer (E+BL), parabolized Navier-Stokes (PNS) and Navier-Stokes
// (NS) — to a shared real-gas model stack: Gibbs equilibrium and finite-rate
// air/Titan chemistry, two-temperature thermodynamic nonequilibrium, and
// tangent-slab spectral radiation.
//
// # Architecture
//
// The primary entry point is the Session: a reusable pipeline constructed
// once via functional options,
//
//	s := cataero.NewSession(cataero.WithChemistry(cataero.EquilibriumAir),
//		cataero.WithWorkers(8))
//	env, err := s.Solve(ctx, cataero.Problem{Class: cataero.VSL, ...})
//	results, err := s.SolveBatch(ctx, problems) // concurrent sweep
//
// A session owns lazily-built, cached model stacks (one per chemistry) and
// a keyed cache of tabulated equilibrium EOS tables, so repeated NS or
// shock-shape solves build each table exactly once. Behind the session,
// every solver class resolves through a registry in internal/core — new
// equation sets register themselves and plug in without touching the
// dispatcher. Contexts are threaded into the solver iteration loops, so
// sweeps cancel promptly.
//
// The public surface also re-exports the core problem/environment types and
// provides one runner per figure of the paper's evaluation (Figs. 1-9); the
// internal packages carry the substrates (thermo, chem, transport, gas,
// radiation, atmosphere, geometry, grid, fvm, shock, shocktube, blayer, vsl,
// pns, euler, ns, freeflight).
package cataero

import (
	"context"

	"cataero/internal/core"
)

// Problem is a complete aerothermal case specification. See core.Problem.
type Problem = core.Problem

// Environment is the aerothermal-environment report of a solve.
type Environment = core.Environment

// SurfacePoint is one station of a surface heating/pressure distribution.
type SurfacePoint = core.SurfacePoint

// ShockEnvelope is the result of an Euler bow-shock solve.
type ShockEnvelope = core.ShockEnvelope

// SolverClass selects one of the paper's four equation sets.
type SolverClass = core.SolverClass

// Solver classes.
const (
	VSL = core.VSL
	EBL = core.EBL
	PNS = core.PNS
	NS  = core.NS
)

// GasChemistry selects the real-gas treatment of a Problem.
type GasChemistry = core.GasChemistry

// Chemistry models. ChemistryUnset defers to the session default (see
// WithChemistry); a problem that leaves Chemistry unset on a session with
// no default resolves to ideal gas.
const (
	ChemistryUnset   = core.ChemistryUnset
	IdealGas         = core.IdealGas
	EquilibriumAir   = core.EquilibriumAir
	EquilibriumTitan = core.EquilibriumTitan
)

// Solve dispatches a problem to its solver class and returns the
// aerothermal environment.
//
// Deprecated: use Session.Solve, which adds cancellation, cached model
// stacks and batch sweeps. This wrapper delegates to a shared default
// session.
func Solve(p Problem) (*Environment, error) {
	return defaultSession().Solve(context.Background(), p)
}

// ShockShape computes an Euler bow-shock locus for a problem (Fig. 4
// machinery): ideal or equilibrium air.
//
// Deprecated: use Session.ShockShape, which returns the full envelope and
// adds cancellation and table caching. This wrapper delegates to a shared
// default session.
func ShockShape(p Problem) (xs, ys []float64, standoff float64, err error) {
	env, err := defaultSession().ShockShape(context.Background(), p)
	if err != nil {
		return nil, nil, 0, err
	}
	return env.X, env.Y, env.Standoff, nil
}
