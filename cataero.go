// Package cataero is a computational aerothermodynamics (CAT) toolkit: a Go
// reproduction of the system surveyed in Deiwert & Green, "Computational
// Aerothermodynamics" (NASA TM-89450 / Supercomputing '89). It couples the
// paper's four-solver hierarchy — viscous shock layer (VSL), Euler +
// boundary layer (E+BL), parabolized Navier-Stokes (PNS) and Navier-Stokes
// (NS) — to a shared real-gas model stack: Gibbs equilibrium and finite-rate
// air/Titan chemistry, two-temperature thermodynamic nonequilibrium, and
// tangent-slab spectral radiation.
//
// The public surface re-exports the core problem/environment types and
// provides one runner per figure of the paper's evaluation (Figs. 1-9); the
// internal packages carry the substrates (thermo, chem, transport, gas,
// radiation, atmosphere, geometry, grid, fvm, shock, shocktube, blayer, vsl,
// pns, euler, ns, freeflight).
package cataero

import (
	"cataero/internal/core"
)

// Problem is a complete aerothermal case specification. See core.Problem.
type Problem = core.Problem

// Environment is the aerothermal-environment report of a solve.
type Environment = core.Environment

// SurfacePoint is one station of a surface heating/pressure distribution.
type SurfacePoint = core.SurfacePoint

// SolverClass selects one of the paper's four equation sets.
type SolverClass = core.SolverClass

// Solver classes.
const (
	VSL = core.VSL
	EBL = core.EBL
	PNS = core.PNS
	NS  = core.NS
)

// GasChemistry selects the real-gas treatment of a Problem.
type GasChemistry = core.GasChemistry

// Chemistry models.
const (
	IdealGas         = core.IdealGas
	EquilibriumAir   = core.EquilibriumAir
	EquilibriumTitan = core.EquilibriumTitan
)

// Solve dispatches a problem to its solver class and returns the
// aerothermal environment.
func Solve(p Problem) (*Environment, error) { return core.Solve(p) }

// ShockShape computes an Euler bow-shock locus for a problem (Fig. 4
// machinery): ideal or equilibrium air.
func ShockShape(p Problem) (xs, ys []float64, standoff float64, err error) {
	return core.ShockShape(p)
}
