// Package cataero is a computational aerothermodynamics (CAT) toolkit: a Go
// reproduction of the system surveyed in Deiwert & Green, "Computational
// Aerothermodynamics" (NASA TM-89450 / Supercomputing '89). It couples the
// paper's four-solver hierarchy — viscous shock layer (VSL), Euler +
// boundary layer (E+BL), parabolized Navier-Stokes (PNS) and Navier-Stokes
// (NS) — to a shared real-gas model stack: Gibbs equilibrium and finite-rate
// air/Titan chemistry, two-temperature thermodynamic nonequilibrium, and
// tangent-slab spectral radiation.
//
// # Architecture
//
// The primary entry point is the Session: a reusable pipeline constructed
// once via functional options,
//
//	s := cataero.NewSession(cataero.WithChemistry(cataero.EquilibriumAir),
//		cataero.WithWorkers(8))
//	run := s.Submit(ctx, cataero.Problem{Class: cataero.NS, ...})
//	snap := run.Snapshot()       // live: phase, step count, residual
//	env, err := run.Wait()       // block for the result
//	results, err := s.SolveBatch(ctx, problems) // concurrent sweep
//
// Submit returns immediately with a Run handle exposing live progress
// (Snapshot/Watch), cancellation (Cancel) and the eventual result (Wait);
// Solve and SolveBatch are thin blocking wrappers over submitted runs. A
// session owns lazily-built, cached model stacks (one per chemistry), a
// keyed cache of tabulated equilibrium EOS tables, and one shared worker
// pool serving every solve, so repeated NS or shock-shape solves build each
// table exactly once and concurrent sweeps keep a fixed resident worker
// count. Behind the session, every solver class resolves through a registry
// in internal/core — new equation sets register themselves and plug in
// without touching the dispatcher. Contexts are threaded into the solver
// iteration loops, so sweeps cancel promptly.
//
// Problems also have a declarative form: a JSON case file (LoadCase,
// SaveCase, CaseSpec) with named body shapes standing in for the
// geometry.Body interface, runnable from the command line via
// `catsim run case.json`.
//
// The public surface also re-exports the core problem/environment types and
// provides one runner per figure of the paper's evaluation (Figs. 1-9); the
// internal packages carry the substrates (thermo, chem, transport, gas,
// radiation, atmosphere, geometry, grid, fvm, shock, shocktube, blayer, vsl,
// pns, euler, ns, freeflight).
package cataero

import (
	"context"

	"cataero/internal/core"
	"cataero/internal/fvm"
)

// Version identifies the toolkit release; ledger entries record it as
// solver-provenance metadata.
const Version = "0.9.0"

// Problem is a complete aerothermal case specification. See core.Problem.
type Problem = core.Problem

// Environment is the aerothermal-environment report of a solve.
type Environment = core.Environment

// SurfacePoint is one station of a surface heating/pressure distribution.
type SurfacePoint = core.SurfacePoint

// ShockEnvelope is the result of an Euler bow-shock solve.
type ShockEnvelope = core.ShockEnvelope

// SolverClass selects one of the paper's four equation sets.
type SolverClass = core.SolverClass

// Solver classes.
const (
	VSL = core.VSL
	EBL = core.EBL
	PNS = core.PNS
	NS  = core.NS
)

// GasChemistry selects the real-gas treatment of a Problem.
type GasChemistry = core.GasChemistry

// Chemistry models. ChemistryUnset defers to the session default (see
// WithChemistry); a problem that leaves Chemistry unset on a session with
// no default resolves to ideal gas.
const (
	ChemistryUnset   = core.ChemistryUnset
	IdealGas         = core.IdealGas
	EquilibriumAir   = core.EquilibriumAir
	EquilibriumTitan = core.EquilibriumTitan
)

// Toggle is a tri-state per-problem switch over a session default (see
// Problem.GridSequencing): the zero value defers to the session, ToggleOn
// and ToggleOff force the feature regardless of the session's setting.
type Toggle = core.Toggle

// Toggle states.
const (
	ToggleDefault = core.ToggleDefault
	ToggleOn      = core.ToggleOn
	ToggleOff     = core.ToggleOff
)

// Monitor observes solver progress (see core.Monitor). Problem.Monitor
// receives every iteration report in addition to the Run handle's own
// snapshot tracking.
type Monitor = core.Monitor

// MonitorFunc adapts a function to the Monitor interface.
type MonitorFunc = core.MonitorFunc

// Progress is one live observation of a running solve.
type Progress = core.Progress

// FluxKernels returns the names of the registered finite-volume flux
// kernels, ascending — the valid values of Problem.Flux and WithFlux, for
// services and CLIs that validate or enumerate kernels up front.
func FluxKernels() []string { return fvm.FluxKernels() }

// TimeSteppings returns the names of the registered finite-volume time
// integrators, ascending — the valid values of Problem.TimeStepping and
// WithTimeStepping ("explicit", "implicit" out of the box).
func TimeSteppings() []string { return fvm.Integrators() }

// ImplicitSweeps returns the valid implicit sweep-pattern names — the
// values of Problem.ImplicitSweep and WithImplicitSweep: "jline"
// (wall-normal line relaxation only, the default) and "adi" (alternating
// wall-normal and streamwise block-tridiagonal passes per step).
func ImplicitSweeps() []string { return fvm.ImplicitSweeps() }

// Limiters returns the names of the registered MUSCL slope limiters,
// ascending — the valid values of Problem.Limiter and WithLimiter
// ("minmod", "vanalbada").
func Limiters() []string { return fvm.Limiters() }

// Cycles returns the valid multilevel schedule names — the values of
// Problem.Cycle and WithCycle: "cascade" (N-level grid sequencing,
// coarsest-first) and "v" (FAS V-cycles with line-implicit smoothing).
func Cycles() []string { return fvm.Cycles() }

// CFLRamp tunes the implicit integrator's CFL schedule (see
// Problem.CFLRamp): start low while the transient establishes the shock,
// grow geometrically while the residual keeps falling, cap at Max.
// Zero-valued fields take the solver defaults (start 2, growth 1.25/step,
// max 200); a Growth below 1 is floored at 1 (hold constant) and a Max
// below Start is floored at Start.
type CFLRamp = fvm.CFLRamp

// Checkpoint is a resumable solver-state snapshot taken at a step boundary
// (see Problem.CheckpointEvery / Problem.CheckpointSink / Problem.Restore):
// the conserved field, grid nodes, implicit ramp state and limiter latch,
// with a stable binary encoding (AppendBinary) and a verifying decoder.
type Checkpoint = fvm.Checkpoint

// CheckpointFormat is the checkpoint schema version understood by this
// build; DecodeCheckpoint refuses other versions.
const CheckpointFormat = fvm.CheckpointFormat

// DecodeCheckpoint parses and verifies an encoded checkpoint; any damage —
// truncation, corruption, a foreign format version — is an error, so a torn
// checkpoint file can never be resumed from.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return fvm.DecodeCheckpoint(data) }

// CanonicalSpec returns the canonical, default-normalized case spec of a
// problem: the label cleared, every default a solve would fill spelled
// explicitly (core normalization plus the finite-volume registry defaults).
// Semantically identical problems produce identical canonical specs — the
// content-addressing basis of the run ledger.
func CanonicalSpec(p Problem) (CaseSpec, error) { return core.Canonical(p) }

// CanonicalJSON returns the canonical JSON encoding of a problem — the
// CanonicalSpec re-marshaled with sorted object keys — the exact bytes
// CaseKey hashes.
func CanonicalJSON(p Problem) ([]byte, error) { return core.CanonicalJSON(p) }

// CaseKey returns a problem's content address: the lowercase hex SHA-256 of
// its canonical JSON. Field-order permutations, explicitly spelled defaults
// and report labels all collide onto the same key; any change that affects
// the solve produces a new one. Hash a problem after Session.Normalize so
// session defaults participate in the address.
func CaseKey(p Problem) (string, error) { return core.CaseKey(p) }

// ClassName returns the case-file name of a solver class ("vsl", "ebl",
// "pns", "ns"), or "" for a class without one — the inverse of the names
// accepted by case files.
func ClassName(c SolverClass) string { return core.ClassName(c) }

// Solve dispatches a problem to its solver class and returns the
// aerothermal environment.
//
// Deprecated: use Session.Solve, which adds cancellation, cached model
// stacks and batch sweeps. This wrapper delegates to a shared default
// session.
func Solve(p Problem) (*Environment, error) {
	return defaultSession().Solve(context.Background(), p)
}

// ShockShape computes an Euler bow-shock locus for a problem (Fig. 4
// machinery): ideal or equilibrium air.
//
// Deprecated: use Session.ShockShape, which returns the full envelope and
// adds cancellation and table caching. This wrapper delegates to a shared
// default session.
func ShockShape(p Problem) (xs, ys []float64, standoff float64, err error) {
	env, err := defaultSession().ShockShape(context.Background(), p)
	if err != nil {
		return nil, nil, 0, err
	}
	return env.X, env.Y, env.Standoff, nil
}
