package cataero

import (
	"encoding/json"
	"sync"
	"time"

	"cataero/internal/core"
)

// RunState is the lifecycle state of a submitted run.
type RunState int

const (
	// RunQueued: submitted, waiting for a session solve slot.
	RunQueued RunState = iota
	// RunRunning: a slot is held and the solver is iterating.
	RunRunning
	// RunDone: finished — successfully, with an error, or canceled.
	RunDone
)

func (s RunState) String() string {
	switch s {
	case RunQueued:
		return "queued"
	case RunRunning:
		return "running"
	case RunDone:
		return "done"
	}
	return "unknown"
}

// HistoryPoint is one retained (step, residual) sample of a run's
// convergence history. The JSON tags are the wire form used by Snapshot
// marshaling, the serve API's progress stream and ledger metadata.
type HistoryPoint struct {
	Step     int     `json:"step"`
	Residual float64 `json:"residual"`
}

// HistoryDepth is how many (step, residual) samples a run retains in its
// snapshot ring buffer — enough to read a convergence trend without a
// Monitor streaming every iteration.
const HistoryDepth = 64

// Snapshot is one consistent observation of a run's progress: the solver
// class and registry name, the schedule phase (e.g. the "coarse" vs "fine"
// grid-sequencing stage), the step count and latest residual, and the
// elapsed wall-clock time since submission. Snapshots are values — reading
// one never blocks the solve.
type Snapshot struct {
	State RunState
	// Class is the problem's solver class. Shock-shape runs (SubmitShock)
	// do not dispatch on Class; identify them by Solver ("euler") instead.
	Class    SolverClass
	Solver   string // registry name of the executing solver ("ns", "vsl", "euler", ...)
	Phase    string // schedule phase ("solve", "coarse", "fine", "march", "profile")
	Step     int    // completed iterations within the phase
	MaxSteps int    // the phase's iteration budget (0 when unknown)
	Residual float64
	// Fallbacks counts implicit-integrator divergence recoveries (line
	// solves that fell back to an explicit update); Refits counts mid-march
	// shock refits; Restarts counts checkpoint resumes this solve chain has
	// been through. All are 0 for solver classes without the machinery.
	Fallbacks int
	Refits    int
	Restarts  int
	Elapsed   time.Duration // since submission; frozen at completion
	Err       error         // terminal error; non-nil only when State == RunDone

	history []HistoryPoint
}

// snapshotJSON is the exported wire view of a Snapshot: every field a
// service needs to report progress, spelled with stable snake_case keys,
// none of them reaching into unexported state. The state is its String form
// ("queued", "running", "done"), the class its case-file name, the elapsed
// time fractional milliseconds, and the error (if any) its message.
type snapshotJSON struct {
	State     string         `json:"state"`
	Class     string         `json:"class,omitempty"`
	Solver    string         `json:"solver,omitempty"`
	Phase     string         `json:"phase,omitempty"`
	Step      int            `json:"step"`
	MaxSteps  int            `json:"max_steps,omitempty"`
	Residual  float64        `json:"residual,omitempty"`
	Fallbacks int            `json:"fallbacks,omitempty"`
	Refits    int            `json:"refits,omitempty"`
	Restarts  int            `json:"restarts,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Error     string         `json:"error,omitempty"`
	History   []HistoryPoint `json:"history,omitempty"`
}

// MarshalJSON encodes the snapshot in its stable wire form (see the field
// list on snapshotJSON), including the retained residual history when the
// snapshot carries one — the encoding behind the serve API's status and SSE
// responses and the ledger's convergence metadata.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	v := snapshotJSON{
		State: s.State.String(),
		// Shock-shape runs do not dispatch on Class (see the Snapshot doc);
		// the solver name identifies them.
		Class:     core.ClassName(s.Class),
		Solver:    s.Solver,
		Phase:     s.Phase,
		Step:      s.Step,
		MaxSteps:  s.MaxSteps,
		Residual:  s.Residual,
		Fallbacks: s.Fallbacks,
		Refits:    s.Refits,
		Restarts:  s.Restarts,
		ElapsedMS: float64(s.Elapsed) / float64(time.Millisecond),
		History:   s.history,
	}
	if s.Err != nil {
		v.Error = s.Err.Error()
	}
	return json.Marshal(v)
}

// History returns the run's most recent (step, residual) samples in
// chronological order — at most HistoryDepth of them, captured atomically
// with the rest of the snapshot. The window covers the current schedule
// phase only (a phase switch, e.g. the coarse→fine grid-sequencing
// transition, restarts it), so steps are strictly increasing and residuals
// are comparable within one window. Classes that do not compute a residual
// (EBL, PNS, VSL) yield an empty history; services can plot a convergence
// trend from it without installing a Monitor. History is materialized on
// snapshots returned by Snapshot() and on the terminal snapshot a Watch
// channel ends with (not on intermediate watcher snapshots, which would
// cost a copy per solver step). The slice is owned by the snapshot and must
// not be mutated.
func (s Snapshot) History() []HistoryPoint { return s.history }

// runHandle is the observable core shared by Run and ShockRun: the live
// snapshot, watcher channels, cancellation and completion signalling.
type runHandle struct {
	cancel func()
	done   chan struct{}
	start  time.Time

	mu       sync.Mutex
	snap     Snapshot
	final    time.Duration // elapsed frozen when the run finishes
	watchers []chan Snapshot
	err      error

	// hist is the residual-history ring: hist[(histStart+k) % HistoryDepth]
	// for k < histLen walks the retained samples oldest-first. histPhase is
	// the schedule phase the window belongs to — a phase switch restarts it
	// so the retained steps stay monotone.
	hist      [HistoryDepth]HistoryPoint
	histStart int
	histLen   int
	histPhase string
}

func (h *runHandle) init(cancel func(), p Problem) {
	h.cancel = cancel
	h.done = make(chan struct{})
	h.start = time.Now()
	h.snap = Snapshot{State: RunQueued, Class: p.Class, MaxSteps: p.MaxSteps}
}

// Cancel aborts the run: a queued run finishes without ever solving, a
// running one stops at its next cancellation poll. Wait returns promptly
// with the context error. Cancel is safe to call at any time, repeatedly.
func (h *runHandle) Cancel() { h.cancel() }

// Done is closed when the run finishes (in any way), so runs compose with
// select loops.
func (h *runHandle) Done() <-chan struct{} { return h.done }

// Snapshot returns the run's current progress, including the retained
// residual history.
func (h *runHandle) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapWithHistoryLocked()
}

func (h *runHandle) snapLocked() Snapshot {
	s := h.snap
	if s.State == RunDone {
		s.Elapsed = h.final
	} else {
		s.Elapsed = time.Since(h.start)
	}
	return s
}

// snapWithHistoryLocked is snapLocked plus a copy of the history ring —
// only for on-demand snapshots and the terminal notification, so the
// per-step observe/notify path never pays the copy.
func (h *runHandle) snapWithHistoryLocked() Snapshot {
	s := h.snapLocked()
	if h.histLen > 0 {
		s.history = make([]HistoryPoint, h.histLen)
		for k := 0; k < h.histLen; k++ {
			s.history[k] = h.hist[(h.histStart+k)%HistoryDepth]
		}
	}
	return s
}

// Watch returns a channel of progress snapshots. The channel always carries
// the latest snapshot — slow receivers see stale intermediate updates
// replaced, never a backlog — and is closed after the terminal snapshot
// when the run finishes. A Watch on a finished run yields exactly the
// terminal snapshot.
func (h *runHandle) Watch() <-chan Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan Snapshot, 1)
	if h.snap.State == RunDone {
		ch <- h.snapWithHistoryLocked()
		close(ch)
		return ch
	}
	h.watchers = append(h.watchers, ch)
	return ch
}

// observe folds one solver progress report into the snapshot. It runs on
// the solving goroutine via the run's Monitor.
func (h *runHandle) observe(p core.Progress) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snap.State = RunRunning
	h.snap.Class = p.Class
	h.snap.Solver = p.Solver
	h.snap.Phase = p.Phase
	h.snap.Step = p.Step
	if p.MaxSteps > 0 {
		h.snap.MaxSteps = p.MaxSteps
	}
	h.snap.Residual = p.Residual
	h.snap.Fallbacks = p.Fallbacks
	h.snap.Refits = p.Refits
	h.snap.Restarts = p.Restarts
	if p.Residual > 0 {
		// Retain the sample in the history ring (classes without a
		// residual never report one, so their history stays empty). A phase
		// switch — e.g. the coarse→fine grid-sequencing transition, whose
		// step counter restarts — begins a fresh window so the retained
		// steps stay monotone and the residuals comparable.
		if p.Phase != h.histPhase {
			h.histPhase = p.Phase
			h.histStart, h.histLen = 0, 0
		}
		idx := (h.histStart + h.histLen) % HistoryDepth
		h.hist[idx] = HistoryPoint{Step: p.Step, Residual: p.Residual}
		if h.histLen < HistoryDepth {
			h.histLen++
		} else {
			h.histStart = (h.histStart + 1) % HistoryDepth
		}
	}
	h.notifyLocked()
}

// running marks the transition out of the queue (a slot was acquired).
func (h *runHandle) running() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snap.State = RunRunning
	h.notifyLocked()
}

// finish records the terminal state, emits the final snapshot, closes the
// watcher channels and unblocks Wait. The caller must have stored the
// result payload before calling finish.
func (h *runHandle) finish(err error) {
	h.mu.Lock()
	h.err = err
	h.snap.State = RunDone
	h.snap.Err = err
	h.final = time.Since(h.start)
	h.notifyLocked()
	for _, ch := range h.watchers {
		close(ch)
	}
	h.watchers = nil
	h.mu.Unlock()
	close(h.done)
}

// notifyLocked pushes the current snapshot to every watcher with
// latest-value semantics: a full buffer is drained and replaced, so
// watchers never block the solve and never read a stale terminal state.
// The terminal notification carries the residual history; intermediate
// ones skip the copy (it would cost an allocation per solver step).
func (h *runHandle) notifyLocked() {
	if len(h.watchers) == 0 {
		return
	}
	s := h.snapLocked()
	if s.State == RunDone {
		s = h.snapWithHistoryLocked()
	}
	for _, ch := range h.watchers {
		select {
		case ch <- s:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- s:
			default:
			}
		}
	}
}

// Run is the handle of an asynchronously submitted solve (Session.Submit):
// a live, watchable view of the solver's progress plus the eventual result.
type Run struct {
	runHandle
	problem Problem
	env     *Environment
}

// Problem returns the problem as submitted, with session defaults applied.
func (r *Run) Problem() Problem { return r.problem }

// Wait blocks until the run finishes and returns its result. Wait is safe
// to call from any number of goroutines, repeatedly; after Cancel it
// returns promptly with the context's error.
func (r *Run) Wait() (*Environment, error) {
	<-r.done
	return r.env, r.err
}

// ShockRun is the handle of an asynchronously submitted Euler bow-shock
// solve (Session.SubmitShock).
type ShockRun struct {
	runHandle
	problem Problem
	env     *ShockEnvelope
}

// Problem returns the problem as submitted, with session defaults applied.
func (r *ShockRun) Problem() Problem { return r.problem }

// Wait blocks until the run finishes and returns its envelope.
func (r *ShockRun) Wait() (*ShockEnvelope, error) {
	<-r.done
	return r.env, r.err
}
