package cataero

import (
	"context"
	"math"

	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/fvm"
	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/radiation"
	"cataero/internal/shocktube"
	"cataero/internal/thermo"
	"cataero/internal/transport"
	"cataero/internal/vsl"
)

// Helpers backing the ablation benchmarks: each isolates one design choice
// called out in DESIGN.md.

func newEquilibriumForBench() *gas.Equilibrium { return gas.NewEquilibriumAir() }

func newTableForBench(base *gas.Equilibrium) (*gas.Table, error) {
	return gas.NewTable(base, 1e-4, 1.0, 2e5, 3e7, 30, 30)
}

// relaxationLengthComparison integrates the Fig. 7 shock-tube case with the
// two-temperature rates and with a one-temperature variant (all rates at T),
// returning the distance for N2 to reach half its total dissociation.
func relaxationLengthComparison() (oneT, twoT float64, err error) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	run := func(twoTemp bool) (float64, error) {
		mech, err := chem.AirMechanism(m)
		if err != nil {
			return 0, err
		}
		if !twoTemp {
			for _, r := range mech.Reactions {
				r.TMode = chem.TTrans
			}
		}
		prof, err := shocktube.Solve(shocktube.Problem{
			Mix: m, Mech: mech,
			P1: 13.0, T1: 300, U1: 10000,
			Y1:   thermo.AirFreestreamMassFractions(m.Species),
			XEnd: 0.05, NOut: 70,
		})
		if err != nil {
			return 0, err
		}
		last := len(prof.X) - 1
		target := 0.5 * (prof.Y[0][thermo.AirN2] + prof.Y[last][thermo.AirN2])
		for i := range prof.X {
			if prof.Y[i][thermo.AirN2] <= target {
				return prof.X[i], nil
			}
		}
		return prof.X[last], nil
	}
	if oneT, err = run(false); err != nil {
		return 0, 0, err
	}
	if twoT, err = run(true); err != nil {
		return 0, 0, err
	}
	return oneT, twoT, nil
}

// catalyticSweep returns the stagnation heating for a sweep of wall
// recombination coefficients at a Shuttle-like condition.
func catalyticSweep(gammaWs []float64) ([]float64, error) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := chem.NewEquilibriumSolver(m)
	tr := transport.NewMixture(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	fs := blayer.FreeStream{P: 4.5, T: 216, Rho: 7.3e-5, V: 6740}
	in, err := blayer.StagnationFromFreestream(eq, y0, fs, 1200, 0.6)
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, gw := range gammaWs {
		sol, err := blayer.SolveStagnation(m, tr, in.Edge, 1200, fs.P, 0.6,
			blayer.SimilarityOptions{GammaW: gw})
		if err != nil {
			return nil, err
		}
		out = append(out, sol.QWall)
	}
	return out, nil
}

// shockWidthComparison measures the captured-shock thickness (in cells
// crossing 10%-90% of the density rise along the stagnation line) with and
// without MUSCL reconstruction.
func shockWidthComparison() (firstOrder, muscl float64, err error) {
	run := func(useMUSCL bool) (float64, error) {
		body := geometry.NewSphere(1.0)
		g, err := grid.NewBlunt(body, body.MaxS(), 10, 40, func(s float64) float64 {
			return 0.35 + 0.3*s
		}, 2.0)
		if err != nil {
			return 0, err
		}
		g.Axisymmetric = true
		aInf := math.Sqrt(thermo.GammaAir * thermo.RAir * 250)
		s, err := fvm.New(g, fvm.Options{
			Gas:          gas.NewIdealAir(),
			FreestreamV:  [2]float64{6 * aInf, 0},
			FreestreamPT: [2]float64{100, 250},
			CFL:          0.5,
			MUSCL:        useMUSCL,
		})
		if err != nil {
			return 0, err
		}
		if _, err := s.Run(2500, 1e-3); err != nil {
			return 0, err
		}
		// Density rise along the stagnation line.
		rhoInf := s.Freestream().Rho
		rhoMax := rhoInf
		for j := 0; j < 40; j++ {
			if r := s.Primitive(0, j).Rho; r > rhoMax {
				rhoMax = r
			}
		}
		lo := rhoInf + 0.1*(rhoMax-rhoInf)
		hi := rhoInf + 0.9*(rhoMax-rhoInf)
		cells := 0
		for j := 39; j >= 0; j-- {
			r := s.Primitive(0, j).Rho
			if r > lo && r < hi {
				cells++
			}
		}
		if cells == 0 {
			cells = 1
		}
		return float64(cells), nil
	}
	if firstOrder, err = run(false); err != nil {
		return 0, 0, err
	}
	if muscl, err = run(true); err != nil {
		return 0, 0, err
	}
	return firstOrder, muscl, nil
}

// radiationLimitComparison compares the optically thin bound with the full
// tangent-slab wall flux for the Titan stagnation layer.
func radiationLimitComparison() (thin, slab float64, err error) {
	in := titanVSLInputs()
	in.PInf, in.TInf, in.VInf = 8.0, 165, 9500
	r, err := vsl.Solve(context.Background(), in)
	if err != nil {
		return 0, 0, err
	}
	m := in.Mix
	var layers []radiation.Layer
	for i := 1; i < len(r.Y); i++ {
		Tm := 0.5 * (r.T[i] + r.T[i-1])
		ymid, rhomid, err := in.Eq.CompositionPT(r.Edge.P, math.Max(Tm, 300), in.Y0)
		if err != nil {
			return 0, 0, err
		}
		layers = append(layers, radiation.Layer{
			Thickness: r.Y[i] - r.Y[i-1],
			T:         Tm, Tex: Tm,
			N: m.NumberDensities(rhomid, ymid),
		})
	}
	thin = in.Rad.OpticallyThinFlux(layers)
	slab = in.Rad.SolveSlab(layers).QWall
	return thin, slab, nil
}
