package cataero

import (
	"context"
	"runtime"
	"sync"

	"cataero/internal/core"
)

// Session is the primary entry point of the toolkit: a reusable, configured
// pipeline over the paper's solver hierarchy. A session owns a shared model
// stack — per-chemistry thermo/chemistry/transport models and a keyed cache
// of tabulated equilibrium EOS tables, all built lazily on first use — so
// repeated solves and parameter sweeps stop paying model-construction cost.
// Sessions are safe for concurrent use.
type Session struct {
	stack   *core.Stack
	chem    GasChemistry
	quality Quality
	workers int
	gamma   float64
	flux    string
	gridSeq bool
}

// Option configures a Session at construction.
type Option func(*Session)

// WithChemistry sets the default gas chemistry stamped onto problems whose
// Chemistry field is left at ChemistryUnset.
func WithChemistry(c GasChemistry) Option {
	return func(s *Session) { s.chem = c }
}

// WithQuality sets the default grid quality: 1 (default) leaves the solver
// defaults; 2 or higher fills finer grids into problems that do not specify
// their own discretization.
func WithQuality(q Quality) Option {
	return func(s *Session) { s.quality = q }
}

// WithWorkers bounds the SolveBatch worker pool (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithGamma sets the default ideal-gas specific-heat ratio for problems
// that leave Gamma at zero (the solver default is 1.4).
func WithGamma(g float64) Option {
	return func(s *Session) {
		if g > 1 {
			s.gamma = g
		}
	}
}

// WithFlux sets the default finite-volume flux kernel ("hlle", "hllc",
// "ausm+") stamped onto problems whose Flux field is left empty. The kernel
// names come from the fvm flux registry; an unknown name fails at solve
// time with the list of registered kernels.
func WithFlux(name string) Option {
	return func(s *Session) { s.flux = name }
}

// WithGridSequencing turns on grid-sequenced NS and Euler shock-shape
// solves by default: each solve converges on a coarsened grid first and
// finishes on the fine grid from the interpolated coarse state, which
// reaches the same residual drop in less wall-clock time.
func WithGridSequencing(on bool) Option {
	return func(s *Session) { s.gridSeq = on }
}

// NewSession builds a session from functional options. The zero
// configuration is useful as-is: solver-default grids, GOMAXPROCS batch
// workers, chemistry taken from each problem.
func NewSession(opts ...Option) *Session {
	s := &Session{
		stack:   core.NewStack(),
		workers: runtime.GOMAXPROCS(0),
		quality: 1,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// apply stamps the session defaults onto a problem specification.
func (s *Session) apply(p Problem) Problem {
	if p.Chemistry == ChemistryUnset && s.chem != ChemistryUnset {
		p.Chemistry = s.chem
	}
	if p.Gamma == 0 && s.gamma != 0 {
		p.Gamma = s.gamma
	}
	if p.Flux == "" && s.flux != "" {
		p.Flux = s.flux
	}
	if s.gridSeq {
		p.GridSequencing = true
	}
	if s.quality >= 2 {
		if p.NStations == 0 {
			p.NStations = 30
		}
		if p.NI == 0 {
			p.NI = 24
		}
		if p.NJ == 0 {
			p.NJ = 40
		}
		if p.MaxSteps == 0 {
			p.MaxSteps = 6000
		}
	}
	return p
}

// Solve dispatches one problem through the solver registry against the
// session's cached model stack. The context is threaded into the solver
// iteration loops; cancellation aborts with ctx.Err().
func (s *Session) Solve(ctx context.Context, p Problem) (*Environment, error) {
	return core.SolveWith(ctx, s.stack, s.apply(p))
}

// ShockShape computes an Euler bow-shock envelope (ideal or equilibrium
// air) against the session's cached model stack.
func (s *Session) ShockShape(ctx context.Context, p Problem) (*ShockEnvelope, error) {
	return core.ShockShapeWith(ctx, s.stack, s.apply(p))
}

// Result is one SolveBatch outcome: the problem it came from, and either an
// environment or that problem's error.
type Result struct {
	Index   int
	Problem Problem
	Env     *Environment
	Err     error
}

// ShockResult is one ShockShapeBatch outcome.
type ShockResult struct {
	Index   int
	Problem Problem
	Env     *ShockEnvelope
	Err     error
}

// SolveBatch runs the problems concurrently on a bounded worker pool (see
// WithWorkers) over the shared model stack — the sweep primitive behind the
// figure runners and catsim. Every problem is attempted and failures are
// reported per-problem in Result.Err, so one bad case does not abort a
// sweep; the returned error is non-nil only when the context is canceled,
// in which case unfinished problems carry ctx.Err().
func (s *Session) SolveBatch(ctx context.Context, problems []Problem) ([]Result, error) {
	out := make([]Result, len(problems))
	s.runPool(ctx, len(problems), func(i int) {
		env, err := s.Solve(ctx, problems[i])
		out[i] = Result{Index: i, Problem: problems[i], Env: env, Err: err}
	})
	return out, ctx.Err()
}

// ShockShapeBatch runs Euler bow-shock solves concurrently on the bounded
// worker pool, with the same partial-failure semantics as SolveBatch.
func (s *Session) ShockShapeBatch(ctx context.Context, problems []Problem) ([]ShockResult, error) {
	out := make([]ShockResult, len(problems))
	s.runPool(ctx, len(problems), func(i int) {
		env, err := s.ShockShape(ctx, problems[i])
		out[i] = ShockResult{Index: i, Problem: problems[i], Env: env, Err: err}
	})
	return out, ctx.Err()
}

// runPool fans n indexed jobs out over the bounded worker pool. Jobs are
// responsible for observing ctx themselves (the solvers poll it), so a
// canceled batch drains quickly instead of deadlocking.
func (s *Session) runPool(ctx context.Context, n int, job func(i int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job(i)
			}
		}()
	}
	wg.Wait()
}

var (
	defaultSessionOnce sync.Once
	defaultSessionVal  *Session
)

// defaultSession backs the deprecated one-shot entry points and the figure
// runners, so even legacy callers share one model-stack cache.
func defaultSession() *Session {
	defaultSessionOnce.Do(func() { defaultSessionVal = NewSession() })
	return defaultSessionVal
}
