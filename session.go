package cataero

import (
	"context"
	"runtime"
	"sync"

	"cataero/internal/core"
)

// Session is the primary entry point of the toolkit: a reusable, configured
// pipeline over the paper's solver hierarchy. A session owns a shared model
// stack — per-chemistry thermo/chemistry/transport models and a keyed cache
// of tabulated equilibrium EOS tables, all built lazily on first use — plus
// one shared worker pool serving every solve (see pool.go), so repeated
// solves and parameter sweeps stop paying model-construction cost and
// concurrent sweeps stop oversubscribing the CPUs. Sessions are safe for
// concurrent use.
//
// Solves run through Run handles: Submit returns immediately with a live,
// watchable view of the solver's progress, and Solve/SolveBatch are thin
// blocking wrappers over submitted runs.
type Session struct {
	stack     *core.Stack
	chem      GasChemistry
	quality   Quality
	workers   int
	gamma     float64
	flux      string
	timestep  string
	sweep     string
	limiter   string
	freezeLim float64
	gridSeq   bool
	levels    int
	cycle     string
	ckptEvery int
	// Solve admission (see pool.go): at most `workers` submitted runs
	// execute concurrently; the rest wait FIFO in admitQueue.
	admitMu    sync.Mutex
	admitFree  int
	admitQueue []ticket
}

// Option configures a Session at construction.
type Option func(*Session)

// WithChemistry sets the default gas chemistry stamped onto problems whose
// Chemistry field is left at ChemistryUnset.
func WithChemistry(c GasChemistry) Option {
	return func(s *Session) { s.chem = c }
}

// WithQuality sets the default grid quality: 1 (default) leaves the solver
// defaults; 2 or higher fills finer grids into problems that do not specify
// their own discretization.
func WithQuality(q Quality) Option {
	return func(s *Session) { s.quality = q }
}

// WithWorkers bounds how many submitted runs solve concurrently — the
// session's admission width, shared by Submit, SolveBatch and
// ShockShapeBatch (default GOMAXPROCS). Runs beyond the bound queue in
// submission order.
func WithWorkers(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithGamma sets the default ideal-gas specific-heat ratio for problems
// that leave Gamma at zero (the solver default is 1.4).
func WithGamma(g float64) Option {
	return func(s *Session) {
		if g > 1 {
			s.gamma = g
		}
	}
}

// WithFlux sets the default finite-volume flux kernel ("hlle", "hlle-ef",
// "hllc", "ausm+") stamped onto problems whose Flux field is left empty. The
// kernel names come from the fvm flux registry; an unknown name fails at
// solve time with the list of registered kernels.
func WithFlux(name string) Option {
	return func(s *Session) { s.flux = name }
}

// WithTimeStepping sets the default finite-volume time integrator
// ("explicit", "implicit") stamped onto problems whose TimeStepping field is
// left empty. The names come from the fvm integrator registry (see
// TimeSteppings); an unknown name fails at solve time with the registered
// list. Implicit (line-implicit, DPLR-style) stepping converges clustered
// viscous NS grids in several-fold fewer steps than the explicit default.
func WithTimeStepping(name string) Option {
	return func(s *Session) { s.timestep = name }
}

// WithImplicitSweep sets the default implicit sweep pattern ("jline",
// "adi" — see ImplicitSweeps) stamped onto problems whose ImplicitSweep
// field is left empty; an unknown name fails at solve time with the valid
// list. The alternating-direction "adi" schedule adds a streamwise
// block-tridiagonal pass after each wall-normal pass, which pays off on
// high-aspect-ratio grids where streamwise coupling limits the wall-normal
// relaxation. Ignored by explicit solves.
func WithImplicitSweep(name string) Option {
	return func(s *Session) { s.sweep = name }
}

// WithGridSequencing turns on grid-sequenced NS and Euler shock-shape
// solves by default: each solve converges on a coarsened grid first and
// finishes on the fine grid from the interpolated coarse state, which
// reaches the same residual drop in less wall-clock time.
func WithGridSequencing(on bool) Option {
	return func(s *Session) { s.gridSeq = on }
}

// WithLevels sets the default multilevel grid-level count stamped onto
// problems that leave Levels at zero: 2 is the classic two-level sequenced
// solve, 3 or more builds a deeper hierarchy by chained coarsening (levels
// the grid cannot reach are dropped automatically). Setting a level count
// turns sequencing on for NS and Euler shock-shape solves unless a problem
// forces GridSequencing off.
func WithLevels(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.levels = n
		}
	}
}

// WithCycle sets the default multilevel schedule ("cascade", "v" — see
// Cycles) stamped onto problems whose Cycle field is left empty; an unknown
// name fails at solve time with the valid list. Like WithLevels, a cycle
// default turns sequencing on for the solves that support it.
func WithCycle(name string) Option {
	return func(s *Session) { s.cycle = name }
}

// WithLimiter sets the default MUSCL slope limiter ("minmod", "vanalbada" —
// see Limiters) stamped onto problems whose Limiter field is left empty; an
// unknown name fails at solve time with the valid list. The smooth van
// Albada limiter lets the implicit CFL ramp climb past the minmod limit
// cycle.
func WithLimiter(name string) Option {
	return func(s *Session) { s.limiter = name }
}

// WithFreezeLimiter sets the default limiter-freeze threshold stamped onto
// problems that leave FreezeLimiterAt at zero: once a finite-volume solve's
// residual has dropped by the threshold (e.g. 1e-2), the MUSCL limiter is
// frozen and its recorded slopes replayed for the rest of the march, cutting
// per-step cost through the long convergence tail. Thresholds outside (0, 1)
// are ignored.
func WithFreezeLimiter(threshold float64) Option {
	return func(s *Session) {
		if threshold > 0 && threshold < 1 {
			s.freezeLim = threshold
		}
	}
}

// WithCheckpoint sets the default checkpoint cadence stamped onto problems
// that leave CheckpointEvery at zero: finite-volume solves emit a resumable
// solver-state checkpoint every `every` steps through the problem's
// CheckpointSink (services install the sink per run — typically a ledger
// write). Non-positive cadences are ignored. Checkpointing never changes a
// case's result or its ledger key.
func WithCheckpoint(every int) Option {
	return func(s *Session) {
		if every > 0 {
			s.ckptEvery = every
		}
	}
}

// NewSession builds a session from functional options. The zero
// configuration is useful as-is: solver-default grids, GOMAXPROCS batch
// workers, chemistry taken from each problem.
func NewSession(opts ...Option) *Session {
	s := &Session{
		stack:   core.NewStack(),
		workers: runtime.GOMAXPROCS(0),
		quality: 1,
	}
	for _, o := range opts {
		o(s)
	}
	s.admitFree = s.workers
	return s
}

// apply stamps the session defaults onto a problem specification.
func (s *Session) apply(p Problem) Problem {
	if p.Chemistry == ChemistryUnset && s.chem != ChemistryUnset {
		p.Chemistry = s.chem
	}
	if p.Gamma == 0 && s.gamma != 0 {
		p.Gamma = s.gamma
	}
	if p.Flux == "" && s.flux != "" {
		p.Flux = s.flux
	}
	if p.TimeStepping == "" && s.timestep != "" {
		p.TimeStepping = s.timestep
	}
	if p.ImplicitSweep == "" && s.sweep != "" {
		p.ImplicitSweep = s.sweep
	}
	if p.Limiter == "" && s.limiter != "" {
		p.Limiter = s.limiter
	}
	if p.FreezeLimiterAt == 0 && s.freezeLim != 0 {
		p.FreezeLimiterAt = s.freezeLim
	}
	if p.Levels == 0 && s.levels != 0 {
		p.Levels = s.levels
	}
	if p.Cycle == "" && s.cycle != "" {
		p.Cycle = s.cycle
	}
	if p.CheckpointEvery == 0 && s.ckptEvery != 0 {
		p.CheckpointEvery = s.ckptEvery
	}
	// Grid sequencing is tri-state: the session default fills only an unset
	// toggle, so a case can force sequencing off on a session that enables
	// it (and vice versa).
	if s.gridSeq && p.GridSequencing == ToggleDefault {
		p.GridSequencing = ToggleOn
	}
	if s.quality >= 2 {
		if p.NStations == 0 {
			p.NStations = 30
		}
		if p.NI == 0 {
			p.NI = 24
		}
		if p.NJ == 0 {
			p.NJ = 40
		}
		if p.MaxSteps == 0 {
			p.MaxSteps = 6000
		}
	}
	return p
}

// Normalize returns the problem exactly as a Submit on this session would
// solve it: session defaults stamped onto unset fields, then the
// solve-independent defaults filled and the specification validated. This
// is the form to hash (CaseKey) when fronting the session with a run
// ledger — two problems that normalize identically on the same session
// produce the same solve.
func (s *Session) Normalize(p Problem) (Problem, error) {
	return core.Normalize(s.apply(p))
}

// Submit starts one problem asynchronously and returns its Run handle
// immediately. The run waits for a session solve slot (WithWorkers),
// executes against the cached model stack, and exposes live progress via
// Run.Snapshot and Run.Watch: solver class, schedule phase (e.g. the coarse
// vs fine grid-sequencing stage), step count, latest residual and elapsed
// time. Cancel the run with Run.Cancel or by canceling ctx; collect the
// result with Run.Wait.
func (s *Session) Submit(ctx context.Context, p Problem) *Run {
	p = s.apply(p)
	r := &Run{problem: p}
	s.start(ctx, p, &r.runHandle, func(ctx context.Context, p Problem) error {
		env, err := core.SolveWith(ctx, s.stack, p)
		r.env = env
		return err
	})
	return r
}

// SubmitShock starts an Euler bow-shock solve asynchronously; the ShockRun
// handle has the same progress, cancellation and wait semantics as Submit's.
func (s *Session) SubmitShock(ctx context.Context, p Problem) *ShockRun {
	p = s.apply(p)
	r := &ShockRun{problem: p}
	s.start(ctx, p, &r.runHandle, func(ctx context.Context, p Problem) error {
		env, err := core.ShockShapeWith(ctx, s.stack, p)
		r.env = env
		return err
	})
	return r
}

// start wires a run handle to the session: it installs the handle as the
// problem's progress monitor (forwarding to any monitor the problem already
// carries), then launches the solve goroutine, which queues on the
// admission slots before executing. The solve closure stores its result
// payload before the handle finishes, so Wait observes it safely.
func (s *Session) start(ctx context.Context, p Problem, h *runHandle, solve func(context.Context, Problem) error) {
	ctx, cancel := context.WithCancel(ctx)
	h.init(cancel, p)
	user := p.Monitor
	p.Monitor = core.MonitorFunc(func(pr core.Progress) {
		h.observe(pr)
		if user != nil {
			user.OnProgress(pr)
		}
	})
	// The queue position is taken here, synchronously, so runs start in
	// submission order.
	t := s.enqueue()
	go func() {
		defer cancel()
		if err := s.await(ctx, t); err != nil {
			h.finish(err)
			return
		}
		defer s.release()
		h.running()
		h.finish(solve(ctx, p))
	}()
}

// Solve dispatches one problem through the solver registry against the
// session's cached model stack and blocks for the result — Submit + Wait.
// The context is threaded into the solver iteration loops; cancellation
// aborts with ctx.Err().
func (s *Session) Solve(ctx context.Context, p Problem) (*Environment, error) {
	return s.Submit(ctx, p).Wait()
}

// ShockShape computes an Euler bow-shock envelope (ideal or equilibrium
// air) against the session's cached model stack — SubmitShock + Wait.
func (s *Session) ShockShape(ctx context.Context, p Problem) (*ShockEnvelope, error) {
	return s.SubmitShock(ctx, p).Wait()
}

// Result is one SolveBatch outcome: the problem it came from, and either an
// environment or that problem's error.
type Result struct {
	Index   int
	Problem Problem
	Env     *Environment
	Err     error
}

// ShockResult is one ShockShapeBatch outcome.
type ShockResult struct {
	Index   int
	Problem Problem
	Env     *ShockEnvelope
	Err     error
}

// SolveBatch submits every problem and waits for all of them — a thin
// wrapper over Submit, so sweeps get per-problem progress for free via
// SubmitAll. Concurrency is bounded by the session's admission slots (see
// WithWorkers). Every problem is attempted and failures are reported
// per-problem in Result.Err, so one bad case does not abort a sweep; the
// returned error is non-nil only when the context is canceled, in which
// case unfinished problems carry ctx.Err() and finished ones keep their
// results.
func (s *Session) SolveBatch(ctx context.Context, problems []Problem) ([]Result, error) {
	runs := s.SubmitAll(ctx, problems)
	out := make([]Result, len(problems))
	for i, r := range runs {
		env, err := r.Wait()
		out[i] = Result{Index: i, Problem: problems[i], Env: env, Err: err}
	}
	return out, ctx.Err()
}

// SubmitAll submits every problem and returns the live run handles without
// waiting — the observable form of SolveBatch.
func (s *Session) SubmitAll(ctx context.Context, problems []Problem) []*Run {
	runs := make([]*Run, len(problems))
	for i, p := range problems {
		runs[i] = s.Submit(ctx, p)
	}
	return runs
}

// ShockShapeBatch runs Euler bow-shock solves as submitted runs, with the
// same admission bound and partial-failure semantics as SolveBatch.
func (s *Session) ShockShapeBatch(ctx context.Context, problems []Problem) ([]ShockResult, error) {
	runs := make([]*ShockRun, len(problems))
	for i, p := range problems {
		runs[i] = s.SubmitShock(ctx, p)
	}
	out := make([]ShockResult, len(problems))
	for i, r := range runs {
		env, err := r.Wait()
		out[i] = ShockResult{Index: i, Problem: problems[i], Env: env, Err: err}
	}
	return out, ctx.Err()
}

var (
	defaultSessionOnce sync.Once
	defaultSessionVal  *Session
)

// defaultSession backs the deprecated one-shot entry points and the figure
// runners, so even legacy callers share one model-stack cache.
func defaultSession() *Session {
	defaultSessionOnce.Do(func() { defaultSessionVal = NewSession() })
	return defaultSessionVal
}
