package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testKey builds a deterministic valid content key from a seed.
func testKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func testEntry(seed string) *Entry {
	return &Entry{
		Key:       testKey(seed),
		Spec:      json.RawMessage(`{"class":"ns","p_inf":100}`),
		Result:    json.RawMessage(fmt.Sprintf(`{"class":"ns","q_conv_stag":%d}`, len(seed))),
		Solver:    "ns",
		Version:   "test",
		ElapsedMS: 12.5,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("roundtrip")
	if err := l.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := l.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("stored entry missed")
	}
	if string(got.Result) != string(e.Result) {
		t.Fatalf("result round-trip: got %s want %s", got.Result, e.Result)
	}
	if got.Solver != e.Solver || got.Version != e.Version || got.ElapsedMS != e.ElapsedMS {
		t.Fatalf("metadata round-trip: got %+v", got)
	}
	if got.Format != FormatVersion {
		t.Fatalf("format not stamped: %d", got.Format)
	}
	if got.Created.IsZero() {
		t.Fatal("created not stamped")
	}
	if st := l.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSurvivesReopen is the restart-persistence acceptance check at the
// store level: a new Ledger over the same directory — a restarted process —
// still hits.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("reopen")
	if err := l.Put(e); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l2.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || string(got.Result) != string(e.Result) {
		t.Fatalf("entry did not survive reopen: %+v", got)
	}
}

func TestMissIsNilNil(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Get(testKey("never stored"))
	if err != nil || got != nil {
		t.Fatalf("miss: got %v, %v", got, err)
	}
	if st := l.Stats(); st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", strings.Repeat("z", 64), strings.Repeat("A", 64)} {
		if _, err := l.Get(key); err == nil {
			t.Errorf("Get(%q): no error", key)
		}
		if err := l.Put(&Entry{Key: key, Result: json.RawMessage(`{}`)}); err == nil {
			t.Errorf("Put(%q): no error", key)
		}
	}
}

// TestHalfWrittenEntryQuarantined: a truncated entry file — the on-disk
// signature of a crash mid-write without the atomic rename, or of file
// damage — must be detected, removed and reported as a miss, never served.
func TestHalfWrittenEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("torn")
	if err := l.Put(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, e.Key[:2], e.Key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-document, as a torn write would.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := l.Get(e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("half-written entry served: %+v", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("half-written entry not quarantined")
	}
	if st := l.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// The quarantined slot accepts a fresh solve.
	if err := l.Put(e); err != nil {
		t.Fatal(err)
	}
	if got, _ := l.Get(e.Key); got == nil {
		t.Fatal("re-put after quarantine missed")
	}
}

// TestTamperedResultQuarantined: a syntactically valid entry whose result
// bytes no longer match the checksum must not be served.
func TestTamperedResultQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("tamper")
	if err := l.Put(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, e.Key[:2], e.Key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"q_conv_stag":6`, `"q_conv_stag":7`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in entry")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Get(e.Key); err != nil || got != nil {
		t.Fatalf("tampered entry served: %v, %v", got, err)
	}
}

func TestForeignFormatIsMissNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("future format")
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	future := fmt.Sprintf(`{"format":%d,"key":%q,"result":{},"checksum":"x"}`, FormatVersion+1, key)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Get(key); err != nil || got != nil {
		t.Fatalf("foreign format: got %v, %v", got, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("foreign-format entry was deleted")
	}
}

func TestKeysAndEntries(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		e := testEntry(fmt.Sprintf("entry %d", i))
		if err := l.Put(e); err != nil {
			t.Fatal(err)
		}
		want = append(want, e.Key)
	}
	keys, err := l.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("keys: got %d want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
	entries, err := l.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("entries: got %d want %d", len(entries), len(want))
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := testEntry("old entry")
	old.Created = time.Now().UTC().Add(-48 * time.Hour)
	fresh := testEntry("fresh entry")
	if err := l.Put(old); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(fresh); err != nil {
		t.Fatal(err)
	}
	// A damaged entry is always collected, whatever its age.
	damaged := testEntry("damaged entry")
	if err := l.Put(damaged); err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, damaged.Key[:2], damaged.Key+".json")
	if err := os.WriteFile(dpath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := l.GC(time.Now().UTC().Add(-24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("gc removed %d, want 2 (expired + damaged)", removed)
	}
	if got, _ := l.Get(old.Key); got != nil {
		t.Fatal("expired entry survived gc")
	}
	if got, _ := l.Get(fresh.Key); got == nil {
		t.Fatal("fresh entry collected")
	}

	// A zero cutoff keeps everything.
	if removed, err := l.GC(time.Time{}); err != nil || removed != 0 {
		t.Fatalf("zero-cutoff gc: removed %d, %v", removed, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := testEntry(fmt.Sprintf("concurrent %d", i%4)) // contended keys
			if err := l.Put(e); err != nil {
				t.Error(err)
				return
			}
			got, err := l.Get(e.Key)
			if err != nil || got == nil {
				t.Errorf("get after put: %v, %v", got, err)
			}
		}(i)
	}
	wg.Wait()
}
