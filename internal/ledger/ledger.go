// Package ledger is the persistent, content-addressed run store behind
// `catsim serve` and `catsim run -ledger`: solved aerothermal environments
// keyed by the canonical SHA-256 of their case (core.CaseKey), so repeat
// traffic for the same flight condition is served from disk instead of
// re-solved, and long campaigns survive process restarts.
//
// # Layout
//
// One directory per ledger, one JSON file per entry, sharded by the first
// two hex digits of the key to keep directory fan-out bounded:
//
//	<root>/ab/abcdef…0123.json
//
// # Crash safety
//
// Entries are written to a temporary file in the destination directory,
// flushed, and atomically renamed into place, so a reader never observes a
// partially written entry under its final name. Defense in depth on the
// read side: every Get re-verifies the entry's format version, key and
// result checksum, and a file that fails any of these (for example a
// half-written file restored from a snapshot, or bit rot) is quarantined —
// removed and reported as a miss — so a corrupt entry is re-solved, never
// served.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cataero/internal/faultinject"
)

// FormatVersion is the on-disk entry schema version. Entries written with a
// different version are treated as misses (and left in place for the
// version that owns them).
const FormatVersion = 1

// keyLen is the length of a lowercase-hex SHA-256 content key.
const keyLen = sha256.Size * 2

// Entry is one stored run: the canonical case, the marshaled result
// artifact, and solver-provenance metadata including the final convergence
// snapshot.
type Entry struct {
	Format int    `json:"format"`
	Key    string `json:"key"`
	// Spec is the canonical case JSON the key was computed from
	// (core.CanonicalJSON), stored so `ledger ls|get` can describe entries
	// without the original case file.
	Spec json.RawMessage `json:"spec"`
	// Result is the marshaled Environment — byte-for-byte the artifact
	// `catsim run -out` writes and the serve API returns.
	Result json.RawMessage `json:"result"`
	// Snapshot is the run's terminal snapshot (state, step count, final
	// residual, retained history), when the producer had one.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	Solver   string          `json:"solver,omitempty"`  // registry name of the executing solver
	Version  string          `json:"version,omitempty"` // toolkit version that produced the result
	Created  time.Time       `json:"created"`
	// ElapsedMS is the wall-clock cost of the original solve — what a hit
	// saves.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Checksum is the hex SHA-256 of Result, verified on every Get.
	Checksum string `json:"checksum"`
}

// Stats are the ledger's monotonic operation counters.
type Stats struct {
	Hits    int64 // Get found a valid entry
	Misses  int64 // Get found nothing
	Corrupt int64 // Get quarantined an invalid entry
	Puts    int64 // entries written
}

// Ledger is a content-addressed store rooted at one directory. All methods
// are safe for concurrent use by any number of processes: writes are
// atomic renames and reads verify integrity, so CLI and server can share
// one ledger.
type Ledger struct {
	dir string

	hits, misses, corrupt, puts atomic.Int64
}

// Open opens (creating if needed) the ledger rooted at dir.
func Open(dir string) (*Ledger, error) {
	if dir == "" {
		return nil, errors.New("ledger: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: open: %w", err)
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger's root directory.
func (l *Ledger) Dir() string { return l.dir }

// Stats returns a snapshot of the operation counters.
func (l *Ledger) Stats() Stats {
	return Stats{
		Hits:    l.hits.Load(),
		Misses:  l.misses.Load(),
		Corrupt: l.corrupt.Load(),
		Puts:    l.puts.Load(),
	}
}

// path maps a key to its entry file, sharded on the leading two hex digits.
func (l *Ledger) path(key string) string {
	return filepath.Join(l.dir, key[:2], key+".json")
}

func validKey(key string) bool {
	if len(key) != keyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checksum is the integrity digest of an entry's result bytes.
func checksum(result []byte) string {
	sum := sha256.Sum256(result)
	return hex.EncodeToString(sum[:])
}

// Get returns the stored entry for a key, or nil when the ledger has none.
// An entry that exists but fails verification — truncated or otherwise
// half-written, wrong key, checksum mismatch — is quarantined: removed,
// counted in Stats.Corrupt, and reported as a miss, so the caller re-solves
// instead of serving a corrupt result. A different format version is a
// plain miss.
func (l *Ledger) Get(key string) (*Entry, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("ledger: invalid key %q", key)
	}
	data, err := os.ReadFile(l.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		l.misses.Add(1)
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: get %s: %w", key, err)
	}
	e, err := decodeEntry(data, key)
	if err != nil {
		// Half-written or damaged: quarantine so the next writer can
		// replace it with a good entry.
		l.corrupt.Add(1)
		_ = os.Remove(l.path(key))
		return nil, nil
	}
	if e == nil {
		// Foreign format version: not ours to serve or to delete.
		l.misses.Add(1)
		return nil, nil
	}
	l.hits.Add(1)
	// Best-effort access bump: GCSize evicts oldest-mtime first, so a hit
	// keeps a hot entry out of the next size-budget sweep.
	now := time.Now()
	_ = os.Chtimes(l.path(key), now, now)
	return e, nil
}

// decodeEntry parses and verifies one entry file. A nil entry with nil
// error means a foreign (newer/older) format version; an error means the
// entry is damaged and should be quarantined.
func decodeEntry(data []byte, wantKey string) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	if e.Format != FormatVersion {
		return nil, nil
	}
	if wantKey != "" && e.Key != wantKey {
		return nil, fmt.Errorf("ledger: entry key %q under file for %q", e.Key, wantKey)
	}
	if len(e.Result) == 0 || e.Checksum != checksum(e.Result) {
		return nil, errors.New("ledger: result checksum mismatch")
	}
	return &e, nil
}

// Put stores an entry, computing its checksum and stamping the format
// version. The write is atomic (temp file + rename): concurrent writers of
// the same key race benignly — both write valid, semantically identical
// entries — and a crash mid-write leaves only a temp file the next GC
// sweeps up, never a damaged entry under the final name.
func (l *Ledger) Put(e *Entry) error {
	if e == nil || !validKey(e.Key) {
		return fmt.Errorf("ledger: put: invalid entry key")
	}
	if len(e.Result) == 0 {
		return errors.New("ledger: put: empty result")
	}
	if err := faultinject.Fire("ledger.put"); err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	stored := *e
	stored.Format = FormatVersion
	stored.Checksum = checksum(stored.Result)
	if stored.Created.IsZero() {
		stored.Created = time.Now().UTC()
	}
	data, err := json.Marshal(&stored)
	if err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}

	dst := l.path(stored.Key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+stored.Key[:8]+".tmp-")
	if err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	// Flush file contents before the rename publishes the name, so a crash
	// cannot leave a published-but-empty entry.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("ledger: put %s: %w", e.Key, err)
	}
	l.puts.Add(1)
	return nil
}

// Delete removes an entry. Deleting an absent key is not an error.
func (l *Ledger) Delete(key string) error {
	if !validKey(key) {
		return fmt.Errorf("ledger: invalid key %q", key)
	}
	err := os.Remove(l.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Keys returns every stored key in sorted order, without decoding entries.
func (l *Ledger) Keys() ([]string, error) {
	var keys []string
	err := l.walk(func(key, _ string) error {
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Entries decodes every valid stored entry, sorted by key. Entries that
// fail verification are skipped (they are quarantined by the next Get that
// addresses them); foreign format versions are skipped silently.
func (l *Ledger) Entries() ([]*Entry, error) {
	var out []*Entry
	err := l.walk(func(key, path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // racing deletion
		}
		if e, err := decodeEntry(data, key); err == nil && e != nil {
			out = append(out, e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// walk visits every plausible entry file as (key, path).
func (l *Ledger) walk(visit func(key, path string) error) error {
	shards, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(l.dir, shard.Name()))
		if err != nil {
			continue // racing removal of an emptied shard
		}
		for _, f := range files {
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !validKey(key) || key[:2] != shard.Name() {
				continue
			}
			if err := visit(key, filepath.Join(l.dir, shard.Name(), f.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// GC removes entries and partial-run checkpoints created before the cutoff
// (a zero cutoff keeps all of them) plus any abandoned temp files from
// crashed writers, and reports how many files it removed. Files that fail
// verification are removed regardless of age — they could never be served
// or resumed from.
func (l *Ledger) GC(before time.Time) (removed int, err error) {
	shards, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, fmt.Errorf("ledger: gc: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		dir := filepath.Join(l.dir, shard.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, f := range files {
			path := filepath.Join(dir, f.Name())
			if strings.Contains(f.Name(), ".tmp-") {
				// A writer that crashed between CreateTemp and rename; any
				// live writer holds its temp open for well under a second,
				// so only clearly abandoned files are swept.
				if info, err := f.Info(); err == nil && time.Since(info.ModTime()) > time.Minute {
					_ = os.Remove(path)
				}
				continue
			}
			if key, ok := strings.CutSuffix(f.Name(), ".ckpt"); ok && validKey(key) {
				data, err := os.ReadFile(path)
				if err != nil {
					continue
				}
				c, derr := decodeCheckpoint(data, key)
				expired := derr == nil && c != nil && !before.IsZero() && c.Created.Before(before)
				if derr != nil || expired {
					if os.Remove(path) == nil {
						removed++
					}
				}
				continue
			}
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !validKey(key) {
				continue
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			e, derr := decodeEntry(data, key)
			expired := derr == nil && e != nil && !before.IsZero() && e.Created.Before(before)
			if derr != nil || expired {
				if os.Remove(path) == nil {
					removed++
				}
			}
		}
	}
	return removed, nil
}
