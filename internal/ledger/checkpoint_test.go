package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cataero/internal/faultinject"
)

func testCheckpoint(seed string, step int) *Checkpoint {
	return &Checkpoint{
		Key:    testKey(seed),
		Spec:   []byte(`{"class":"ns","p_inf":100}`),
		Step:   step,
		Solver: "ns",
		Data:   bytes.Repeat([]byte{0xCA, 0x7C, 0x4B}, 64),
	}
}

func TestCheckpointPutGetRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCheckpoint("ckpt-roundtrip", 120)
	if err := l.PutCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	got, err := l.GetCheckpoint(c.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("stored checkpoint missed")
	}
	if !bytes.Equal(got.Data, c.Data) || got.Step != c.Step || got.Solver != c.Solver {
		t.Fatalf("round-trip: got %+v", got)
	}
	if got.Format != FormatVersion || got.Created.IsZero() || got.Checksum == "" {
		t.Fatalf("metadata not stamped: %+v", got)
	}
	// Replacement: a later checkpoint of the same run overwrites.
	c2 := testCheckpoint("ckpt-roundtrip", 240)
	if err := l.PutCheckpoint(c2); err != nil {
		t.Fatal(err)
	}
	if got, _ = l.GetCheckpoint(c.Key); got == nil || got.Step != 240 {
		t.Fatalf("replacement not visible: %+v", got)
	}
	if err := l.DeleteCheckpoint(c.Key); err != nil {
		t.Fatal(err)
	}
	if got, _ = l.GetCheckpoint(c.Key); got != nil {
		t.Fatal("checkpoint survived delete")
	}
	if err := l.DeleteCheckpoint(c.Key); err != nil {
		t.Fatal("deleting an absent checkpoint errored:", err)
	}
}

// TestCheckpointTornFileQuarantined: a mangled checkpoint file must read as
// a miss and be removed — never resumed from.
func TestCheckpointTornFileQuarantined(t *testing.T) {
	defer faultinject.Reset()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetMangle("ledger.checkpoint-data", func(b []byte) []byte {
		return b[:len(b)/2] // torn write: only half the file made it to disk
	})
	c := testCheckpoint("ckpt-torn", 50)
	if err := l.PutCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	got, err := l.GetCheckpoint(c.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("torn checkpoint was served")
	}
	if l.Stats().Corrupt == 0 {
		t.Fatal("quarantine not counted")
	}
	if _, err := os.Stat(l.ckptPath(c.Key)); !os.IsNotExist(err) {
		t.Fatal("torn checkpoint not removed")
	}
}

// TestCheckpointChecksumMismatchQuarantined flips a payload byte in place.
func TestCheckpointChecksumMismatchQuarantined(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCheckpoint("ckpt-flip", 10)
	if err := l.PutCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	path := l.ckptPath(c.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(`"data":"`)) + len(`"data":"`)
	data[i] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := l.GetCheckpoint(c.Key); got != nil {
		t.Fatal("corrupted checkpoint was served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted checkpoint not removed")
	}
}

func TestCheckpointPutFailureInjection(t *testing.T) {
	defer faultinject.Reset()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	faultinject.Set("ledger.put-checkpoint", func() error { return boom })
	if err := l.PutCheckpoint(testCheckpoint("ckpt-fail", 1)); !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	faultinject.Set("ledger.put", func() error { return boom })
	if err := l.Put(testEntry("entry-fail")); !errors.Is(err, boom) {
		t.Fatalf("injected entry failure not surfaced: %v", err)
	}
	faultinject.Reset()
	if err := l.PutCheckpoint(testCheckpoint("ckpt-fail", 1)); err != nil {
		t.Fatalf("put still failing after reset: %v", err)
	}
}

func TestCheckpointsListAndGC(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range []string{"a", "b", "c"} {
		if err := l.PutCheckpoint(testCheckpoint(seed, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Put(testEntry("result")); err != nil {
		t.Fatal(err)
	}
	cks, err := l.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 3 {
		t.Fatalf("listed %d checkpoints, want 3", len(cks))
	}
	for i := 1; i < len(cks); i++ {
		if cks[i-1].Key >= cks[i].Key {
			t.Fatal("checkpoints not sorted by key")
		}
	}
	// Age-based GC removes expired checkpoints alongside entries.
	removed, err := l.GC(time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("GC removed %d files, want 4", removed)
	}
	if cks, _ = l.Checkpoints(); len(cks) != 0 {
		t.Fatalf("%d checkpoints survived GC", len(cks))
	}
}

// TestGCSizeEvictsCheckpointsFirst: under a size budget, every checkpoint
// goes before any result entry, and within each kind the oldest-accessed
// file goes first.
func TestGCSizeEvictsCheckpointsFirst(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eOld, eNew := testEntry("gc-old"), testEntry("gc-new")
	cA, cB := testCheckpoint("gc-ck-a", 1), testCheckpoint("gc-ck-b", 2)
	for _, put := range []func() error{
		func() error { return l.Put(eOld) },
		func() error { return l.Put(eNew) },
		func() error { return l.PutCheckpoint(cA) },
		func() error { return l.PutCheckpoint(cB) },
	} {
		if err := put(); err != nil {
			t.Fatal(err)
		}
	}
	// Stamp mtimes so the LRU order is deterministic: cA colder than cB,
	// eOld colder than eNew.
	base := time.Now().Add(-time.Hour)
	for i, path := range []string{l.ckptPath(cA.Key), l.ckptPath(cB.Key), l.path(eOld.Key), l.path(eNew.Key)} {
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	size := func(path string) int64 {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}
	total := size(l.ckptPath(cA.Key)) + size(l.ckptPath(cB.Key)) + size(l.path(eOld.Key)) + size(l.path(eNew.Key))

	// Budget that forces out both checkpoints and the older entry.
	budget := size(l.path(eNew.Key))
	removed, freed, err := l.GCSize(budget)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("GCSize removed %d files, want 3", removed)
	}
	if freed != total-budget {
		t.Fatalf("GCSize freed %d bytes, want %d", freed, total-budget)
	}
	for _, gone := range []string{l.ckptPath(cA.Key), l.ckptPath(cB.Key), l.path(eOld.Key)} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("%s survived eviction", filepath.Base(gone))
		}
	}
	if got, _ := l.Get(eNew.Key); got == nil {
		t.Fatal("newest entry was evicted under a budget that fits it")
	}

	// A budget the ledger already fits evicts nothing.
	if removed, _, err = l.GCSize(1 << 30); err != nil || removed != 0 {
		t.Fatalf("GCSize under budget removed %d (err %v), want 0", removed, err)
	}
}

// TestGCSizePartialBudget: eviction stops as soon as the ledger fits.
func TestGCSizePartialBudget(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(testEntry("partial")); err != nil {
		t.Fatal(err)
	}
	if err := l.PutCheckpoint(testCheckpoint("partial-ck", 7)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(l.path(testKey("partial")))
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits the entry alone: only the checkpoint goes.
	removed, _, err := l.GCSize(info.Size())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d, want 1 (the checkpoint)", removed)
	}
	if got, _ := l.Get(testKey("partial")); got == nil {
		t.Fatal("entry evicted although budget fits it")
	}
}
