package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cataero/internal/faultinject"
)

// This file adds partial-run entries to the ledger: the latest resumable
// solver checkpoint of an in-flight (or interrupted) solve, stored beside
// the result it will eventually produce under the same canonical CaseKey —
// `<root>/<shard>/<key>.ckpt` next to `<key>.json`. A restarted server or
// CLI looks the checkpoint up by the same key it would use for the result,
// and resumes the march instead of re-solving from step 0; once the result
// lands, the checkpoint is deleted.
//
// Checkpoint files get the same crash-safety treatment as entries — atomic
// temp+fsync+rename writes, verify-on-read with quarantine — because a torn
// checkpoint must never be resumed from (the solver's own decoder would
// also refuse it; the ledger layer refusing first keeps the corruption
// counters honest).

// Checkpoint is one stored partial run.
type Checkpoint struct {
	Format int    `json:"format"`
	Key    string `json:"key"`
	// Spec is the canonical case JSON of the run (core.CanonicalJSON), so a
	// restarted service can reconstruct and re-submit the problem from the
	// checkpoint alone.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Step is the completed-step count the checkpoint resumes at (display
	// only; the authoritative position travels inside Data).
	Step    int       `json:"step,omitempty"`
	Solver  string    `json:"solver,omitempty"`  // registry name of the executing solver
	Version string    `json:"version,omitempty"` // toolkit version that wrote the checkpoint
	Created time.Time `json:"created"`
	// Data is the encoded solver checkpoint (fvm.Checkpoint.AppendBinary),
	// base64 in the JSON encoding.
	Data []byte `json:"data"`
	// Checksum is the hex SHA-256 of Data, verified on every read.
	Checksum string `json:"checksum"`
}

// ckptPath maps a key to its checkpoint file, sharded like entries.
func (l *Ledger) ckptPath(key string) string {
	return filepath.Join(l.dir, key[:2], key+".ckpt")
}

// PutCheckpoint stores (replacing) the partial-run checkpoint for a key,
// with the same atomic write discipline as Put. Fault-injection points:
// "ledger.put-checkpoint" fails the write, "ledger.checkpoint-data" mangles
// the file bytes (simulating a torn write that the next read must catch).
func (l *Ledger) PutCheckpoint(c *Checkpoint) error {
	if c == nil || !validKey(c.Key) {
		return errors.New("ledger: put checkpoint: invalid key")
	}
	if len(c.Data) == 0 {
		return errors.New("ledger: put checkpoint: empty data")
	}
	if err := faultinject.Fire("ledger.put-checkpoint"); err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	stored := *c
	stored.Format = FormatVersion
	stored.Checksum = checksum(stored.Data)
	if stored.Created.IsZero() {
		stored.Created = time.Now().UTC()
	}
	data, err := json.Marshal(&stored)
	if err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	data = faultinject.Mangle("ledger.checkpoint-data", data)

	dst := l.ckptPath(stored.Key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+stored.Key[:8]+".tmp-")
	if err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("ledger: put checkpoint %s: %w", c.Key, err)
	}
	return nil
}

// GetCheckpoint returns the stored partial-run checkpoint for a key, or nil
// when there is none. Damage — torn file, wrong key, checksum mismatch —
// quarantines the file and reports a miss, exactly like Get: a resumable
// state that cannot be verified is worth less than a cold start. A foreign
// format version is a plain miss.
func (l *Ledger) GetCheckpoint(key string) (*Checkpoint, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("ledger: invalid key %q", key)
	}
	data, err := os.ReadFile(l.ckptPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: get checkpoint %s: %w", key, err)
	}
	c, err := decodeCheckpoint(data, key)
	if err != nil {
		l.corrupt.Add(1)
		_ = os.Remove(l.ckptPath(key))
		return nil, nil
	}
	if c == nil {
		return nil, nil
	}
	// Best-effort access bump so size-budget GC evicts cold checkpoints
	// first (see GCSize).
	now := time.Now()
	_ = os.Chtimes(l.ckptPath(key), now, now)
	return c, nil
}

// decodeCheckpoint parses and verifies one checkpoint file, with the same
// contract as decodeEntry: (nil, nil) for a foreign format, an error for
// damage that warrants quarantine.
func decodeCheckpoint(data []byte, wantKey string) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if c.Format != FormatVersion {
		return nil, nil
	}
	if wantKey != "" && c.Key != wantKey {
		return nil, fmt.Errorf("ledger: checkpoint key %q under file for %q", c.Key, wantKey)
	}
	if len(c.Data) == 0 || c.Checksum != checksum(c.Data) {
		return nil, errors.New("ledger: checkpoint checksum mismatch")
	}
	return &c, nil
}

// DeleteCheckpoint removes the partial-run checkpoint for a key (normally
// called right after the run's result lands). Absent keys are not an error.
func (l *Ledger) DeleteCheckpoint(key string) error {
	if !validKey(key) {
		return fmt.Errorf("ledger: invalid key %q", key)
	}
	err := os.Remove(l.ckptPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Checkpoints decodes every valid stored partial-run checkpoint, sorted by
// key — the restart-recovery scan a server runs to find interrupted work.
// Damaged files are skipped (the next GetCheckpoint quarantines them).
func (l *Ledger) Checkpoints() ([]*Checkpoint, error) {
	var out []*Checkpoint
	err := l.walkCkpt(func(key, path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // racing deletion
		}
		if c, err := decodeCheckpoint(data, key); err == nil && c != nil {
			out = append(out, c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// walkCkpt visits every plausible checkpoint file as (key, path).
func (l *Ledger) walkCkpt(visit func(key, path string) error) error {
	shards, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(l.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			key, ok := strings.CutSuffix(f.Name(), ".ckpt")
			if !ok || !validKey(key) || key[:2] != shard.Name() {
				continue
			}
			if err := visit(key, filepath.Join(l.dir, shard.Name(), f.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// gcFile is one eviction candidate of a size-budget sweep.
type gcFile struct {
	path  string
	size  int64
	mtime time.Time
	ckpt  bool
}

// GCSize evicts stored files until the ledger's total size (entries plus
// checkpoints) fits maxBytes, least-recently-accessed first with every
// checkpoint considered before any result entry — a checkpoint only saves
// part of a solve, a result saves all of it. Reads bump mtimes (see Get /
// GetCheckpoint), so mtime order approximates LRU. Returns how many files
// were removed and the bytes freed. maxBytes <= 0 evicts everything.
func (l *Ledger) GCSize(maxBytes int64) (removed int, freed int64, err error) {
	var files []gcFile
	var total int64
	shards, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("ledger: gc-size: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		dir := filepath.Join(l.dir, shard.Name())
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, f := range ents {
			isJSON := strings.HasSuffix(f.Name(), ".json")
			isCkpt := strings.HasSuffix(f.Name(), ".ckpt")
			if !isJSON && !isCkpt {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			total += info.Size()
			files = append(files, gcFile{
				path: filepath.Join(dir, f.Name()), size: info.Size(),
				mtime: info.ModTime(), ckpt: isCkpt,
			})
		}
	}
	// Checkpoints strictly before entries; oldest access first within each.
	sort.Slice(files, func(i, j int) bool {
		if files[i].ckpt != files[j].ckpt {
			return files[i].ckpt
		}
		return files[i].mtime.Before(files[j].mtime)
	})
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			removed++
			freed += f.size
			total -= f.size
		}
	}
	return removed, freed, nil
}
