package thermo

import (
	"math"
	"testing"
)

func TestMillikanWhiteN2SelfCollision(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	// Classic check: p*tau for N2-N2 at 2000 K should be O(1e-5..1e-4) atm s
	// (Millikan & White 1963 figure range).
	tau := MillikanWhiteTau(n2, n2, 2000, AtmPa)
	if tau < 1e-7 || tau > 1e-3 {
		t.Errorf("tau(N2-N2,2000K,1atm)=%g s outside plausible band", tau)
	}
	// Relaxation gets faster with temperature.
	if MillikanWhiteTau(n2, n2, 4000, AtmPa) >= tau {
		t.Error("tau should decrease with T")
	}
	// And inversely proportional to pressure.
	r := MillikanWhiteTau(n2, n2, 2000, AtmPa) / MillikanWhiteTau(n2, n2, 2000, 2*AtmPa)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("pressure scaling ratio %g want 2", r)
	}
}

func TestMillikanWhiteAtomHasNoTau(t *testing.T) {
	sp := air()
	if !math.IsInf(MillikanWhiteTau(sp[AirN], sp[AirN2], 2000, AtmPa), 1) {
		t.Error("atoms have no vibrational relaxation time")
	}
}

func TestParkCorrectionDominatesAtHighT(t *testing.T) {
	sp := air()
	m := NewMixture(sp)
	y := AirFreestreamMassFractions(sp)
	x := m.MoleFractions(y)
	n2 := sp[AirN2]
	p := 1000.0 // low pressure like a shock tube
	// At very high T Millikan-White alone would collapse to ~0; Park's
	// collision limit keeps tau above the hard floor.
	T := 30000.0
	tau := RelaxationTime(m, n2, T, p, x)
	n := p / (KB * T)
	floor := ParkCollisionTau(n2, T, n)
	if tau < floor {
		t.Errorf("tau=%g below Park floor %g", tau, floor)
	}
	if math.IsInf(tau, 1) || tau <= 0 {
		t.Errorf("tau=%g not finite positive", tau)
	}
}

func TestRelaxationTimeMixtureAveraging(t *testing.T) {
	sp := air()
	m := NewMixture(sp)
	n2 := sp[AirN2]
	// Pure N2.
	x := make([]float64, m.Len())
	x[AirN2] = 1
	tauPure := RelaxationTime(m, n2, 3000, AtmPa, x)
	if tauPure <= 0 || math.IsInf(tauPure, 1) {
		t.Fatalf("tau pure N2 = %g", tauPure)
	}
	// Adding atomic collision partners (more efficient relaxers, smaller
	// reduced mass) should not increase tau by much; typically decreases.
	x[AirN2], x[AirN] = 0.5, 0.5
	tauMix := RelaxationTime(m, n2, 3000, AtmPa, x)
	if tauMix > tauPure*1.5 {
		t.Errorf("mixture tau %g way above pure %g", tauMix, tauPure)
	}
}

func TestRelaxationDefensiveCases(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	if !math.IsInf(MillikanWhiteTau(n2, n2, 0, AtmPa), 1) {
		t.Error("T=0 should give infinite tau")
	}
	if !math.IsInf(MillikanWhiteTau(n2, n2, 300, 0), 1) {
		t.Error("p=0 should give infinite tau")
	}
	if !math.IsInf(ParkCollisionTau(n2, 0, 1e20), 1) {
		t.Error("Park tau with T=0 should be infinite")
	}
}
