package thermo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func airMix() (*Mixture, []float64) {
	m := NewMixture(AirSpecies11())
	return m, AirFreestreamMassFractions(m.Species)
}

func TestMeanWAir(t *testing.T) {
	m, y := airMix()
	// Standard air: ~28.85e-3 kg/mol for the 0.767/0.233 N2/O2 split.
	w := m.MeanW(y)
	if math.Abs(w-28.85e-3) > 0.1e-3 {
		t.Errorf("MeanW=%g want ~28.85e-3", w)
	}
	// R ~ 288 J/(kg K).
	if r := m.R(y); math.Abs(r-288.2) > 1.5 {
		t.Errorf("R=%g want ~288", r)
	}
}

func TestMoleMassFractionRoundTrip(t *testing.T) {
	m, y := airMix()
	x := m.MoleFractions(y)
	y2 := m.MassFractions(x)
	for i := range y {
		if math.Abs(y[i]-y2[i]) > 1e-12 {
			t.Errorf("round trip species %d: %g vs %g", i, y[i], y2[i])
		}
	}
	// Mole fractions sum to 1.
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mole fractions sum %g", sum)
	}
}

// Property: for random compositions, conversions preserve normalization.
func TestFractionConversionProperty(t *testing.T) {
	m, _ := airMix()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		y := make([]float64, m.Len())
		for i := range y {
			y[i] = r.Float64()
		}
		Normalize(y)
		x := m.MoleFractions(y)
		sum := 0.0
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestGammaAirCold(t *testing.T) {
	m, y := airMix()
	// Cold air: gamma = 1.4.
	g := m.GammaFrozen(300, y)
	if math.Abs(g-1.4) > 0.01 {
		t.Errorf("gamma(300K)=%g want 1.4", g)
	}
	// Hot air with vibration: gamma drops toward ~1.3.
	gHot := m.GammaFrozen(3000, y)
	if gHot >= g || gHot < 1.25 {
		t.Errorf("gamma(3000K)=%g should be in (1.25,%g)", gHot, g)
	}
}

func TestSoundSpeedAir(t *testing.T) {
	m, y := airMix()
	a := m.SoundSpeedFrozen(288.15, y)
	if math.Abs(a-340) > 4 {
		t.Errorf("a=%g want ~340 m/s", a)
	}
}

func TestPressureDensityRoundTrip(t *testing.T) {
	m, y := airMix()
	p := m.Pressure(1.225, 288.15, y)
	if math.Abs(p-101325) > 1500 {
		t.Errorf("p=%g want ~101325", p)
	}
	rho := m.Density(p, 288.15, y)
	if math.Abs(rho-1.225) > 1e-9 {
		t.Errorf("rho=%g want 1.225", rho)
	}
}

func TestTemperatureFromEInverse(t *testing.T) {
	m, y := airMix()
	for _, T := range []float64{300, 1500, 6000, 12000} {
		e := m.EInternal(T, y)
		got, err := m.TemperatureFromE(e, y, 0)
		if err != nil {
			t.Fatalf("T=%g: %v", T, err)
		}
		if math.Abs(got-T) > 1e-3*T {
			t.Errorf("TemperatureFromE: got %g want %g", got, T)
		}
	}
}

func TestTemperatureFromHInverse(t *testing.T) {
	m, y := airMix()
	for _, T := range []float64{300, 2500, 9000} {
		h := m.Enthalpy(T, y)
		got, err := m.TemperatureFromH(h, y, 500)
		if err != nil {
			t.Fatalf("T=%g: %v", T, err)
		}
		if math.Abs(got-T) > 1e-3*T {
			t.Errorf("TemperatureFromH: got %g want %g", got, T)
		}
	}
}

func TestVibPoolRoundTrip(t *testing.T) {
	m, _ := airMix()
	// Mixed dissociated composition with molecules present.
	y := make([]float64, m.Len())
	y[AirN2], y[AirO2], y[AirNO], y[AirN], y[AirO] = 0.5, 0.1, 0.05, 0.15, 0.2
	for _, Tv := range []float64{600, 2000, 6000, 12000} {
		ev := m.EVibPool(Tv, y)
		got, err := m.TvFromPool(ev, y, 0)
		if err != nil {
			t.Fatalf("Tv=%g: %v", Tv, err)
		}
		if math.Abs(got-Tv) > 2e-3*Tv {
			t.Errorf("TvFromPool: got %g want %g", got, Tv)
		}
	}
}

func TestTwoTConsistencyWithOneT(t *testing.T) {
	m, y := airMix()
	T := 4000.0
	e1 := m.EInternal(T, y)
	e2 := m.EInternalTwoT(T, T, y)
	if math.Abs(e1-e2) > 1e-8*math.Abs(e1) {
		t.Errorf("EInternalTwoT(T,T) != EInternal(T): %g vs %g", e1, e2)
	}
}

func TestElementsAndIndex(t *testing.T) {
	m, _ := airMix()
	elems := m.Elements()
	if len(elems) != 2 || elems[0] != "N" || elems[1] != "O" {
		t.Errorf("elements: %v", elems)
	}
	if m.Index("NO") != AirNO {
		t.Errorf("Index(NO)=%d", m.Index("NO"))
	}
	if m.Index("Xe") != -1 {
		t.Error("Index of missing species should be -1")
	}
	if !m.HasIons() {
		t.Error("air-11 has ions")
	}
	m5 := NewMixture(AirSpecies5())
	if m5.HasIons() {
		t.Error("air-5 has no ions")
	}
}

func TestTitanMixture(t *testing.T) {
	m := NewMixture(TitanSpecies())
	y := TitanFreestreamMassFractions(m.Species)
	elems := m.Elements()
	if len(elems) != 3 { // C, H, N
		t.Errorf("titan elements: %v", elems)
	}
	w := m.MeanW(y)
	// 95/5 N2/CH4 by mole: W ~ 0.95*28 + 0.05*16 = 27.4 g/mol.
	if math.Abs(w-27.4e-3) > 0.5e-3 {
		t.Errorf("titan MeanW=%g want ~27.4e-3", w)
	}
	// CH4 cv includes rotation 3/2 R.
	ch4 := m.Species[TiCH4]
	if cv := ch4.CvTransRot(); math.Abs(cv-3*ch4.R()) > 1e-9 {
		t.Errorf("CH4 cv_tr=%g want %g", cv, 3*ch4.R())
	}
}

func TestNumberDensities(t *testing.T) {
	m, y := airMix()
	n := m.NumberDensities(1.225, y)
	tot := 0.0
	for _, v := range n {
		tot += v
	}
	// Loschmidt-like: ~2.5e25 /m^3 South at sea level conditions.
	if tot < 2.3e25 || tot > 2.8e25 {
		t.Errorf("total number density %g", tot)
	}
}

func TestNormalize(t *testing.T) {
	y := []float64{2, -1, 2}
	Normalize(y)
	if y[1] != 0 || math.Abs(y[0]-0.5) > 1e-12 || math.Abs(y[2]-0.5) > 1e-12 {
		t.Errorf("normalize: %v", y)
	}
	z := []float64{0, 0}
	Normalize(z) // must not divide by zero
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector normalize changed values")
	}
}
