package thermo

import (
	"math"
	"testing"
)

// Quantitative RRHO checks against handbook values for the Titan species.

func TestCH4HeatCapacity(t *testing.T) {
	ti := TitanSpecies()
	ch4 := ti[TiCH4]
	// CH4 cp at 300 K ~ 2.23 kJ/(kg K) (vibration barely excited).
	cp := ch4.Cp(300)
	if math.Abs(cp-2230) > 150 {
		t.Errorf("cp(CH4,300K)=%g want ~2230", cp)
	}
	// At 1000 K vibration is active: cp ~ 4.5 kJ/(kg K).
	cp = ch4.Cp(1000)
	if cp < 3800 || cp > 5200 {
		t.Errorf("cp(CH4,1000K)=%g want ~4.5e3", cp)
	}
}

func TestH2HeatCapacity(t *testing.T) {
	ti := TitanSpecies()
	h2 := ti[TiH2]
	// H2 cp at 300 K ~ 14.3 kJ/(kg K): 7/2 R/W with vibration frozen.
	cp := h2.Cp(300)
	if math.Abs(cp-14300) > 600 {
		t.Errorf("cp(H2,300K)=%g want ~14300", cp)
	}
}

func TestHCNLinearRotor(t *testing.T) {
	ti := TitanSpecies()
	hcn := ti[TiHCN]
	if hcn.Rotor != Linear {
		t.Fatal("HCN must be a linear rotor")
	}
	// Linear polyatomic: cv_tr+rot = 5/2 R.
	if cv := hcn.CvTransRot(); math.Abs(cv-2.5*hcn.R()) > 1e-9 {
		t.Errorf("HCN cv_tr=%g want %g", cv, 2.5*hcn.R())
	}
	// Three atoms, linear: 3N-5 = 4 vibrational degrees (2 stretches + a
	// doubly degenerate bend).
	n := 0
	for _, v := range hcn.Vib {
		n += v.G
	}
	if n != 4 {
		t.Errorf("HCN vibrational degrees %d want 4", n)
	}
}

func TestC3LowBendingModeActive(t *testing.T) {
	ti := TitanSpecies()
	c3 := ti[TiC3]
	// The 91 K bending mode is classically excited by room temperature:
	// cv_vib(300) should already carry most of 2R from that mode.
	cvv := c3.CvVib(300)
	if cvv < 1.2*c3.R() {
		t.Errorf("C3 bending mode inactive: cv_vib=%g R=%g", cvv, c3.R())
	}
}

func TestCH4NonlinearRotor(t *testing.T) {
	ti := TitanSpecies()
	ch4 := ti[TiCH4]
	if ch4.Rotor != Nonlinear {
		t.Fatal("CH4 is a spherical top (nonlinear)")
	}
	// Nine vibrational degrees for a 5-atom nonlinear molecule (3N-6).
	n := 0
	for _, v := range ch4.Vib {
		n += v.G
	}
	if n != 9 {
		t.Errorf("CH4 vibrational degrees %d want 9", n)
	}
	// Rotational partition function with sigma=12 is T^{3/2}-like.
	q1 := ch4.QRot(300)
	q2 := ch4.QRot(1200)
	if r := q2 / q1; math.Abs(r-8) > 0.1 { // (1200/300)^{3/2} = 8
		t.Errorf("QRot scaling %g want 8", r)
	}
}

func TestTitanFormationEnergyOrdering(t *testing.T) {
	// Atomization energies must order H2 < N2 within the homonuclear pairs
	// and every radical must sit above its stable parents per heavy atom.
	ti := TitanSpecies()
	get := func(i int) float64 { return ti[i].Hf0 * ti[i].W } // J/mol
	// 2H - H2: 436 kJ/mol bond; 2N - N2: 945 kJ/mol bond.
	dH2 := 2*get(TiH) - 0 // Hf(H2)=0
	dN2 := 2 * get(TiN)
	if dH2/1e3 < 380 || dH2/1e3 > 480 {
		t.Errorf("D(H2)=%g kJ/mol want ~436", dH2/1e3)
	}
	if dN2/1e3 < 900 || dN2/1e3 > 990 {
		t.Errorf("D(N2)=%g kJ/mol want ~945", dN2/1e3)
	}
	// CH4 is the most stable carbon carrier (lowest formation enthalpy).
	if get(TiCH4) >= get(TiC2H2) || get(TiCH4) >= get(TiC) {
		t.Error("CH4 should be the most stable C species")
	}
}
