package thermo

import (
	"fmt"
	"math"
)

// Mixture bundles a species list with helpers for mixture-level
// thermodynamics. Mass fractions are passed explicitly to every method so a
// single Mixture can serve many flow states concurrently.
type Mixture struct {
	Species []*Species
	index   map[string]int
}

// NewMixture wraps a species list.
func NewMixture(species []*Species) *Mixture {
	idx := make(map[string]int, len(species))
	for i, s := range species {
		idx[s.Name] = i
	}
	return &Mixture{Species: species, index: idx}
}

// Len returns the number of species.
func (m *Mixture) Len() int { return len(m.Species) }

// Index returns the position of the named species, or -1.
func (m *Mixture) Index(name string) int {
	if i, ok := m.index[name]; ok {
		return i
	}
	return -1
}

// Elements returns the sorted list of chemical elements present.
func (m *Mixture) Elements() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range m.Species {
		for e := range s.Elems {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	// Deterministic order (insertion order depends on map; sort by name).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HasIons reports whether any species carries charge.
func (m *Mixture) HasIons() bool {
	for _, s := range m.Species {
		if s.Charge != 0 {
			return true
		}
	}
	return false
}

// MeanW returns the mixture molar mass (kg/mol) for mass fractions y.
func (m *Mixture) MeanW(y []float64) float64 {
	inv := 0.0
	for i, s := range m.Species {
		inv += y[i] / s.W
	}
	if inv <= 0 {
		return 0
	}
	return 1 / inv
}

// R returns the mixture specific gas constant for mass fractions y.
func (m *Mixture) R(y []float64) float64 { return Ru / m.MeanW(y) }

// MoleFractions converts mass fractions to mole fractions (in place result).
func (m *Mixture) MoleFractions(y []float64) []float64 {
	x := make([]float64, len(y))
	w := m.MeanW(y)
	for i, s := range m.Species {
		x[i] = y[i] * w / s.W
	}
	return x
}

// MassFractions converts mole fractions to mass fractions.
func (m *Mixture) MassFractions(x []float64) []float64 {
	y := make([]float64, len(x))
	wbar := 0.0
	for i, s := range m.Species {
		wbar += x[i] * s.W
	}
	for i, s := range m.Species {
		y[i] = x[i] * s.W / wbar
	}
	return y
}

// Pressure returns p = rho * sum_s (y_s R_s) * T.
func (m *Mixture) Pressure(rho, T float64, y []float64) float64 {
	return rho * m.R(y) * T
}

// Density returns rho from p, T, y.
func (m *Mixture) Density(p, T float64, y []float64) float64 {
	return p / (m.R(y) * T)
}

// Enthalpy returns the mixture specific enthalpy at a single temperature.
func (m *Mixture) Enthalpy(T float64, y []float64) float64 {
	h := 0.0
	for i, s := range m.Species {
		if y[i] != 0 {
			h += y[i] * s.Enthalpy(T)
		}
	}
	return h
}

// EInternal returns the mixture specific internal energy at one temperature.
func (m *Mixture) EInternal(T float64, y []float64) float64 {
	e := 0.0
	for i, s := range m.Species {
		if y[i] != 0 {
			e += y[i] * s.EInternal(T)
		}
	}
	return e
}

// Cp returns the frozen mixture specific heat at constant pressure.
func (m *Mixture) Cp(T float64, y []float64) float64 {
	cp := 0.0
	for i, s := range m.Species {
		if y[i] != 0 {
			cp += y[i] * s.Cp(T)
		}
	}
	return cp
}

// Cv returns the frozen mixture specific heat at constant volume.
func (m *Mixture) Cv(T float64, y []float64) float64 {
	cv := 0.0
	for i, s := range m.Species {
		if y[i] != 0 {
			cv += y[i] * s.Cv(T)
		}
	}
	return cv
}

// GammaFrozen returns the frozen ratio of specific heats.
func (m *Mixture) GammaFrozen(T float64, y []float64) float64 {
	cp := m.Cp(T, y)
	return cp / (cp - m.R(y))
}

// SoundSpeedFrozen returns the frozen speed of sound sqrt(gamma R T).
func (m *Mixture) SoundSpeedFrozen(T float64, y []float64) float64 {
	return math.Sqrt(m.GammaFrozen(T, y) * m.R(y) * T)
}

// TemperatureFromE inverts e(T) = e for the mixture by Newton iteration,
// starting from guess T0 (use 0 for a default). Composition is frozen.
func (m *Mixture) TemperatureFromE(e float64, y []float64, T0 float64) (float64, error) {
	T := T0
	if T <= 0 {
		T = 1000
	}
	for i := 0; i < 100; i++ {
		f := m.EInternal(T, y) - e
		cv := m.Cv(T, y)
		if cv <= 0 {
			return 0, fmt.Errorf("thermo: nonpositive cv at T=%g", T)
		}
		dT := f / cv
		// Limit steps to keep T positive and convergence monotone.
		if dT > 0.5*T {
			dT = 0.5 * T
		}
		if dT < -2*T {
			dT = -2 * T
		}
		T -= dT
		if T < 10 {
			T = 10
		}
		if math.Abs(dT) < 1e-8*T {
			return T, nil
		}
	}
	return T, fmt.Errorf("thermo: TemperatureFromE failed to converge (e=%g)", e)
}

// TemperatureFromH inverts h(T) = h by Newton iteration.
func (m *Mixture) TemperatureFromH(h float64, y []float64, T0 float64) (float64, error) {
	T := T0
	if T <= 0 {
		T = 1000
	}
	for i := 0; i < 100; i++ {
		f := m.Enthalpy(T, y) - h
		cp := m.Cp(T, y)
		if cp <= 0 {
			return 0, fmt.Errorf("thermo: nonpositive cp at T=%g", T)
		}
		dT := f / cp
		if dT > 0.5*T {
			dT = 0.5 * T
		}
		if dT < -2*T {
			dT = -2 * T
		}
		T -= dT
		if T < 10 {
			T = 10
		}
		if math.Abs(dT) < 1e-8*T {
			return T, nil
		}
	}
	return T, fmt.Errorf("thermo: TemperatureFromH failed to converge (h=%g)", h)
}

// Entropy returns the mixture specific entropy at (T, p) including the
// entropy of mixing: s = sum_s y_s s_s(T, x_s p), J/(kg K).
func (m *Mixture) Entropy(T, p float64, y []float64) float64 {
	x := m.MoleFractions(y)
	s := 0.0
	for i, sp := range m.Species {
		if y[i] <= 0 || x[i] <= 0 {
			continue
		}
		s += y[i] * sp.Entropy(T, p*x[i])
	}
	return s
}

// --- Two-temperature bookkeeping ---

// EVibPool returns the vibrational-electronic-electron energy pool at Tv:
// molecular vibration, electronic excitation of all heavy species, and free
// electron translation, per unit mixture mass.
func (m *Mixture) EVibPool(Tv float64, y []float64) float64 {
	e := 0.0
	for i, s := range m.Species {
		if y[i] == 0 {
			continue
		}
		if s.Name == "e-" {
			e += y[i] * 1.5 * s.R() * Tv
			continue
		}
		e += y[i] * (s.EVib(Tv) + s.EElec(Tv))
	}
	return e
}

// CvVibPool returns d(EVibPool)/dTv.
func (m *Mixture) CvVibPool(Tv float64, y []float64) float64 {
	cv := 0.0
	for i, s := range m.Species {
		if y[i] == 0 {
			continue
		}
		if s.Name == "e-" {
			cv += y[i] * 1.5 * s.R()
			continue
		}
		cv += y[i] * (s.CvVib(Tv) + s.CvElec(Tv))
	}
	return cv
}

// CvTransRot returns the frozen translational-rotational cv of heavy
// particles (electron translation excluded: it lives in the Tv pool).
func (m *Mixture) CvTransRot(y []float64) float64 {
	cv := 0.0
	for i, s := range m.Species {
		if y[i] == 0 {
			continue
		}
		if s.Name == "e-" {
			continue
		}
		cv += y[i] * s.CvTransRot()
	}
	return cv
}

// ETransRot returns the heavy-particle translational+rotational energy at T.
func (m *Mixture) ETransRot(T float64, y []float64) float64 {
	return m.CvTransRot(y) * T
}

// HFormation returns the mixture 0 K formation enthalpy.
func (m *Mixture) HFormation(y []float64) float64 {
	h := 0.0
	for i, s := range m.Species {
		h += y[i] * s.Hf0
	}
	return h
}

// EInternalTwoT returns the total internal energy in the two-temperature
// model: heavy trans-rot at T, vibrational pool at Tv, formation enthalpy.
func (m *Mixture) EInternalTwoT(T, Tv float64, y []float64) float64 {
	return m.ETransRot(T, y) + m.EVibPool(Tv, y) + m.HFormation(y)
}

// TvFromPool inverts EVibPool(Tv) = ev by Newton with bisection fallback.
func (m *Mixture) TvFromPool(ev float64, y []float64, Tv0 float64) (float64, error) {
	Tv := Tv0
	if Tv <= 0 {
		Tv = 2000
	}
	for i := 0; i < 80; i++ {
		f := m.EVibPool(Tv, y) - ev
		cv := m.CvVibPool(Tv, y)
		if cv < 1e-12 {
			break
		}
		dT := f / cv
		if dT > 0.5*Tv {
			dT = 0.5 * Tv
		}
		if dT < -0.5*Tv {
			dT = -0.5 * Tv
		}
		Tv -= dT
		if Tv < 10 {
			Tv = 10
		}
		if math.Abs(dT) < 1e-8*Tv {
			return Tv, nil
		}
	}
	// Bisection fallback over a wide range.
	lo, hi := 10.0, 80000.0
	flo := m.EVibPool(lo, y) - ev
	fhi := m.EVibPool(hi, y) - ev
	if flo*fhi > 0 {
		if math.Abs(flo) < math.Abs(fhi) {
			return lo, nil
		}
		return hi, nil
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		fm := m.EVibPool(mid, y) - ev
		if fm*flo <= 0 {
			hi = mid
		} else {
			lo, flo = mid, fm
		}
	}
	return 0.5 * (lo + hi), nil
}

// NumberDensities returns per-species number densities (1/m^3) for density
// rho and mass fractions y.
func (m *Mixture) NumberDensities(rho float64, y []float64) []float64 {
	n := make([]float64, len(y))
	for i, s := range m.Species {
		n[i] = rho * y[i] / s.W * NA
	}
	return n
}

// Normalize scales y so mass fractions sum to one, clipping negatives to 0.
func Normalize(y []float64) {
	sum := 0.0
	for i := range y {
		if y[i] < 0 {
			y[i] = 0
		}
		sum += y[i]
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range y {
			y[i] *= inv
		}
	}
}
