package thermo

import (
	"fmt"
	"math"
)

// RotorKind classifies the rotational structure of a species.
type RotorKind int

const (
	Atom RotorKind = iota // no rotational or vibrational modes
	Linear
	Nonlinear
)

// VibMode is one harmonic vibrational mode with characteristic temperature
// Theta (K) and degeneracy G.
type VibMode struct {
	Theta float64
	G     int
}

// ElecLevel is one electronic level with degeneracy G and excitation
// temperature Theta (K) above the ground state.
type ElecLevel struct {
	G     int
	Theta float64
}

// Species carries the constant data for one chemical species. All
// thermodynamic methods hang off this type; they are pure functions of
// temperature so a Species can be shared freely across goroutines.
type Species struct {
	Name   string
	W      float64 // molar mass, kg/mol
	Charge int     // elementary charges (-1, 0, +1)
	Hf0    float64 // formation enthalpy at 0 K, J/kg
	Rotor  RotorKind
	ThetaR [3]float64 // rotational characteristic temperatures, K (linear uses [0])
	Sigma  float64    // rotational symmetry number
	Vib    []VibMode
	Elec   []ElecLevel
	Elems  map[string]int // elemental composition, e.g. {"N":1,"O":1} for NO

	// LJSigma and LJEps are Lennard-Jones collision parameters used by the
	// kinetic-theory transport fallback: sigma in m, eps/k in K.
	LJSigma float64
	LJEps   float64
}

// R returns the specific gas constant Ru/W, J/(kg K).
func (s *Species) R() float64 { return Ru / s.W }

// Mass returns the particle mass in kg.
func (s *Species) Mass() float64 { return s.W / NA }

// IsMolecule reports whether the species has vibrational modes.
func (s *Species) IsMolecule() bool { return len(s.Vib) > 0 }

// --- Internal energy contributions (per unit mass, J/kg) ---

// ETrans returns the translational energy 3/2 R T.
func (s *Species) ETrans(T float64) float64 { return 1.5 * s.R() * T }

// ERot returns the fully excited rigid-rotor rotational energy.
func (s *Species) ERot(T float64) float64 {
	switch s.Rotor {
	case Linear:
		return s.R() * T
	case Nonlinear:
		return 1.5 * s.R() * T
	default:
		return 0
	}
}

// EVib returns the harmonic-oscillator vibrational energy at temperature Tv.
func (s *Species) EVib(Tv float64) float64 {
	if len(s.Vib) == 0 || Tv <= 0 {
		return 0
	}
	e := 0.0
	for _, m := range s.Vib {
		x := m.Theta / Tv
		if x < 500 {
			e += float64(m.G) * m.Theta / (math.Exp(x) - 1)
		}
	}
	return s.R() * e
}

// EElec returns the electronic excitation energy at temperature Te.
func (s *Species) EElec(Te float64) float64 {
	if len(s.Elec) <= 1 || Te <= 0 {
		return 0
	}
	num, den := 0.0, 0.0
	for _, l := range s.Elec {
		x := l.Theta / Te
		if x > 500 {
			continue
		}
		b := float64(l.G) * math.Exp(-x)
		num += b * l.Theta
		den += b
	}
	if den == 0 {
		return 0
	}
	return s.R() * num / den
}

// EInternal returns the total specific internal energy at a single
// temperature T, including the 0 K formation enthalpy:
// e = e_trans + e_rot + e_vib + e_elec + h_f0.
func (s *Species) EInternal(T float64) float64 {
	return s.ETrans(T) + s.ERot(T) + s.EVib(T) + s.EElec(T) + s.Hf0
}

// Enthalpy returns h = e + R T at a single temperature.
func (s *Species) Enthalpy(T float64) float64 {
	return s.EInternal(T) + s.R()*T
}

// EnthalpyTwoT returns the two-temperature enthalpy with translation and
// rotation at T and vibration/electronic at Tv.
func (s *Species) EnthalpyTwoT(T, Tv float64) float64 {
	return s.ETrans(T) + s.ERot(T) + s.EVib(Tv) + s.EElec(Tv) + s.Hf0 + s.R()*T
}

// --- Specific heats (per unit mass, J/(kg K)) ---

// CvTransRot returns the constant translational+rotational cv.
func (s *Species) CvTransRot() float64 {
	cv := 1.5 * s.R()
	switch s.Rotor {
	case Linear:
		cv += s.R()
	case Nonlinear:
		cv += 1.5 * s.R()
	}
	return cv
}

// CvVib returns the vibrational specific heat at Tv.
func (s *Species) CvVib(Tv float64) float64 {
	if len(s.Vib) == 0 || Tv <= 0 {
		return 0
	}
	cv := 0.0
	for _, m := range s.Vib {
		x := m.Theta / Tv
		if x > 300 {
			continue
		}
		ex := math.Exp(x)
		d := ex - 1
		cv += float64(m.G) * x * x * ex / (d * d)
	}
	return s.R() * cv
}

// CvElec returns the electronic specific heat at Te.
func (s *Species) CvElec(Te float64) float64 {
	if len(s.Elec) <= 1 || Te <= 0 {
		return 0
	}
	q, qt, qtt := 0.0, 0.0, 0.0
	for _, l := range s.Elec {
		x := l.Theta / Te
		if x > 500 {
			continue
		}
		b := float64(l.G) * math.Exp(-x)
		q += b
		qt += b * x
		qtt += b * x * x
	}
	if q == 0 {
		return 0
	}
	m := qt / q
	return s.R() * (qtt/q - m*m)
}

// Cv returns the full single-temperature cv.
func (s *Species) Cv(T float64) float64 {
	return s.CvTransRot() + s.CvVib(T) + s.CvElec(T)
}

// Cp returns the full single-temperature cp = cv + R.
func (s *Species) Cp(T float64) float64 { return s.Cv(T) + s.R() }

// --- Partition functions (per unit volume where noted) ---

// QTransV returns the translational partition function per unit volume,
// (2 pi m k T / h^2)^{3/2}, in 1/m^3.
func (s *Species) QTransV(T float64) float64 {
	m := s.Mass()
	return math.Pow(2*math.Pi*m*KB*T/(Planck*Planck), 1.5)
}

// QRot returns the rigid-rotor rotational partition function.
func (s *Species) QRot(T float64) float64 {
	switch s.Rotor {
	case Linear:
		return T / (s.Sigma * s.ThetaR[0])
	case Nonlinear:
		return math.Sqrt(math.Pi) / s.Sigma *
			math.Sqrt(T*T*T/(s.ThetaR[0]*s.ThetaR[1]*s.ThetaR[2]))
	default:
		return 1
	}
}

// QVib returns the harmonic-oscillator vibrational partition function at Tv
// (energy zero at the vibrational ground state).
func (s *Species) QVib(Tv float64) float64 {
	q := 1.0
	for _, m := range s.Vib {
		x := m.Theta / Tv
		if x > 500 {
			continue
		}
		q *= math.Pow(1-math.Exp(-x), -float64(m.G))
	}
	return q
}

// QElec returns the electronic partition function at Te.
func (s *Species) QElec(Te float64) float64 {
	if len(s.Elec) == 0 {
		return 1
	}
	q := 0.0
	for _, l := range s.Elec {
		x := l.Theta / Te
		if x > 500 {
			continue
		}
		q += float64(l.G) * math.Exp(-x)
	}
	if q == 0 {
		q = float64(s.Elec[0].G)
	}
	return q
}

// LnQEffV returns ln of the effective per-unit-volume partition function
// including the formation-energy Boltzmann factor:
// ln[ QtransV * Qrot * Qvib * Qelec * exp(-eps0/kT) ].
// This is the quantity the Gibbs equilibrium solver and the kinetic
// equilibrium constants are built from, guaranteeing their mutual
// consistency.
func (s *Species) LnQEffV(T float64) float64 {
	eps0 := s.Hf0 * s.W / NA // formation energy per particle, J
	ln := 1.5*math.Log(2*math.Pi*s.Mass()*KB*T/(Planck*Planck)) +
		math.Log(s.QRot(T)) + math.Log(s.QVib(T)) + math.Log(s.QElec(T)) -
		eps0/(KB*T)
	return ln
}

// Entropy returns the specific entropy s(T,p) in J/(kg K) from the RRHO
// partition functions (Sackur-Tetrode plus internal contributions).
func (s *Species) Entropy(T, p float64) float64 {
	if T <= 0 || p <= 0 {
		return 0
	}
	R := s.R()
	// Translational: Sackur-Tetrode with n = p/(kT).
	st := R * (math.Log(s.QTransV(T)*KB*T/p) + 2.5)
	// Rotational.
	sr := 0.0
	switch s.Rotor {
	case Linear:
		sr = R * (math.Log(s.QRot(T)) + 1)
	case Nonlinear:
		sr = R * (math.Log(s.QRot(T)) + 1.5)
	}
	// Vibrational.
	sv := R*math.Log(s.QVib(T)) + s.EVib(T)/T
	// Electronic.
	se := R*math.Log(s.QElec(T)) + s.EElec(T)/T
	return st + sr + sv + se
}

func (s *Species) String() string {
	return fmt.Sprintf("%s (W=%.4f g/mol, q=%+d)", s.Name, s.W*1000, s.Charge)
}
