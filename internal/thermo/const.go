// Package thermo provides the high-temperature thermodynamic substrate of
// cataero: a species database for dissociating and ionizing air and for the
// Titan N2/CH4 atmosphere, rigid-rotor/harmonic-oscillator (RRHO) statistical
// thermodynamics with electronic levels, per-unit-volume partition functions
// (shared by the Gibbs equilibrium solver and kinetic equilibrium constants),
// two-temperature energy bookkeeping, and Millikan-White/Park vibrational
// relaxation times.
//
// Conventions: SI units throughout. Specific (per-mass) quantities are J/kg;
// molar masses are kg/mol; temperatures K; pressures Pa. Formation enthalpies
// are referenced to 0 K.
package thermo

// Physical constants (CODATA-era values; SI).
const (
	Ru      = 8.314462618     // universal gas constant, J/(mol K)
	KB      = 1.380649e-23    // Boltzmann constant, J/K
	NA      = 6.02214076e23   // Avogadro number, 1/mol
	Planck  = 6.62607015e-34  // Planck constant, J s
	LightC  = 2.99792458e8    // speed of light, m/s
	ECharge = 1.602176634e-19 // elementary charge, C (used for eV conversions)
	EVtoK   = 11604.518       // 1 eV expressed as a temperature, K
	AtmPa   = 101325.0        // standard atmosphere, Pa
	SigmaSB = 5.670374419e-8  // Stefan-Boltzmann constant, W/(m^2 K^4)
)

// Cold-air closure constants: the specific gas constant and ratio of
// specific heats of undissociated air, used by the ideal-gas paths (PNS
// ideal closure, NS/Euler ideal EOS defaults, free-flight Mach numbers).
// The catlint physconst analyzer flags the raw numbers outside the property
// packages, so every ideal-air path shares these values.
const (
	RAir     = 287.05 // specific gas constant of air, J/(kg K)
	GammaAir = 1.4    // ratio of specific heats of diatomic air
)
