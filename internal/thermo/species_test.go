package thermo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func air() []*Species { return AirSpecies11() }

func TestSpecificGasConstants(t *testing.T) {
	sp := air()
	// N2: R = 8.314/0.0280134 = 296.8 J/(kg K).
	if r := sp[AirN2].R(); math.Abs(r-296.8) > 0.5 {
		t.Errorf("R(N2)=%g want ~296.8", r)
	}
	if r := sp[AirO2].R(); math.Abs(r-259.8) > 0.5 {
		t.Errorf("R(O2)=%g want ~259.8", r)
	}
}

func TestCvLimitsDiatomic(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	R := n2.R()
	// Low temperature: vibration frozen, cv = 5/2 R.
	if cv := n2.Cv(300); math.Abs(cv-2.5*R) > 0.02*R {
		t.Errorf("cv(N2,300K)=%g want %g", cv, 2.5*R)
	}
	// High temperature: vibration fully excited, cv -> 7/2 R (before
	// electronic terms add a little more).
	cv := n2.CvTransRot() + n2.CvVib(20000)
	if math.Abs(cv-3.5*R) > 0.05*R {
		t.Errorf("cv_tr+vib(N2,20000K)=%g want %g", cv, 3.5*R)
	}
}

func TestCvAtomMonatomic(t *testing.T) {
	sp := air()
	n := sp[AirN]
	R := n.R()
	if cv := n.CvTransRot(); math.Abs(cv-1.5*R) > 1e-9 {
		t.Errorf("cv_tr(N)=%g want %g", cv, 1.5*R)
	}
	if ev := n.EVib(5000); ev != 0 {
		t.Errorf("atom EVib=%g want 0", ev)
	}
	if er := n.ERot(5000); er != 0 {
		t.Errorf("atom ERot=%g want 0", er)
	}
}

func TestDissociationEnergies(t *testing.T) {
	sp := air()
	// 2*Hf0(N)*W(N) - Hf0(N2)*W(N2) should be ~945 kJ/mol (9.76 eV).
	d := 2*sp[AirN].Hf0*sp[AirN].W - sp[AirN2].Hf0*sp[AirN2].W
	if math.Abs(d-945.4e3) > 5e3 {
		t.Errorf("D(N2)=%g J/mol want ~945.4e3", d)
	}
	d = 2*sp[AirO].Hf0*sp[AirO].W - sp[AirO2].Hf0*sp[AirO2].W
	if math.Abs(d-498.3e3) > 5e3 {
		t.Errorf("D(O2)=%g J/mol want ~498.3e3", d)
	}
}

func TestIonizationEnergies(t *testing.T) {
	sp := air()
	// N -> N+ + e-: 14.53 eV.
	dN := sp[AirNp].Hf0*sp[AirNp].W - sp[AirN].Hf0*sp[AirN].W
	eV := dN / (ECharge * NA)
	if math.Abs(eV-14.55) > 0.15 {
		t.Errorf("IE(N)=%g eV want ~14.5", eV)
	}
	dO := sp[AirOp].Hf0*sp[AirOp].W - sp[AirO].Hf0*sp[AirO].W
	eV = dO / (ECharge * NA)
	if math.Abs(eV-13.65) > 0.15 {
		t.Errorf("IE(O)=%g eV want ~13.6", eV)
	}
}

// Property: h(T) = e(T) + R T and e is strictly increasing in T.
func TestEnthalpyEnergyConsistency(t *testing.T) {
	sp := air()
	f := func(u float64) bool {
		T := math.Mod(math.Abs(u), 29000) + 200
		for _, s := range sp {
			h := s.Enthalpy(T)
			e := s.EInternal(T)
			if math.Abs(h-e-s.R()*T) > 1e-6*math.Abs(h) {
				return false
			}
			if s.EInternal(T+100) <= e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: numerical derivative of EVib matches CvVib.
func TestCvVibIsDerivative(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	for _, T := range []float64{500, 1000, 3000, 8000, 15000} {
		dT := 0.1
		num := (n2.EVib(T+dT) - n2.EVib(T-dT)) / (2 * dT)
		ana := n2.CvVib(T)
		if math.Abs(num-ana) > 1e-3*math.Abs(ana)+1e-6 {
			t.Errorf("T=%g: dEvib/dT=%g CvVib=%g", T, num, ana)
		}
	}
}

func TestCvElecIsDerivative(t *testing.T) {
	sp := air()
	o := sp[AirO]
	for _, T := range []float64{300, 1000, 5000, 15000} {
		dT := 0.1
		num := (o.EElec(T+dT) - o.EElec(T-dT)) / (2 * dT)
		ana := o.CvElec(T)
		if math.Abs(num-ana) > 1e-3*math.Abs(ana)+1e-6 {
			t.Errorf("T=%g: dEelec/dT=%g CvElec=%g", T, num, ana)
		}
	}
}

func TestPartitionFunctionMagnitudes(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	// Translational partition function of N2 at 300K ~ 1e32 /m^3 scale.
	q := n2.QTransV(300)
	if q < 1e31 || q > 1e33 {
		t.Errorf("QTransV(N2,300)=%g outside expected magnitude", q)
	}
	// Rotational partition function: T/(sigma*thetaR) = 300/(2*2.88) ~ 52.
	if qr := n2.QRot(300); math.Abs(qr-52.08) > 1 {
		t.Errorf("QRot(N2,300)=%g want ~52", qr)
	}
	// Vibrational partition function ~1 at room temperature.
	if qv := n2.QVib(300); math.Abs(qv-1) > 1e-4 {
		t.Errorf("QVib(N2,300)=%g want ~1", qv)
	}
}

func TestEntropyIncreasesWithT(t *testing.T) {
	sp := air()
	for _, s := range []*Species{sp[AirN2], sp[AirO], sp[AirNO]} {
		prev := s.Entropy(300, AtmPa)
		for _, T := range []float64{600, 1200, 2400, 4800, 9600} {
			cur := s.Entropy(T, AtmPa)
			if cur <= prev {
				t.Errorf("%s: entropy not increasing at T=%g", s.Name, T)
			}
			prev = cur
		}
	}
}

func TestEntropyDecreasesWithP(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	if n2.Entropy(1000, 2*AtmPa) >= n2.Entropy(1000, AtmPa) {
		t.Error("entropy should decrease with pressure")
	}
	// ds = -R ln(p2/p1) exactly for ideal gas at fixed T.
	ds := n2.Entropy(1000, AtmPa) - n2.Entropy(1000, 10*AtmPa)
	if math.Abs(ds-n2.R()*math.Log(10)) > 1e-6*ds {
		t.Errorf("pressure entropy increment wrong: %g", ds)
	}
}

func TestO2EntropyStandard(t *testing.T) {
	// Standard molar entropy of O2 at 298.15 K, 1 atm is 205.15 J/(mol K).
	sp := air()
	o2 := sp[AirO2]
	s := o2.Entropy(298.15, AtmPa) * o2.W
	if math.Abs(s-205.15) > 2 {
		t.Errorf("S(O2,298K)=%g J/mol/K want ~205.15", s)
	}
}

func TestN2EntropyStandard(t *testing.T) {
	// Standard molar entropy of N2 at 298.15 K is 191.6 J/(mol K).
	sp := air()
	n2 := sp[AirN2]
	s := n2.Entropy(298.15, AtmPa) * n2.W
	if math.Abs(s-191.6) > 2 {
		t.Errorf("S(N2,298K)=%g J/mol/K want ~191.6", s)
	}
}

func TestElectronProperties(t *testing.T) {
	sp := air()
	e := sp[AirE]
	if e.Charge != -1 {
		t.Error("electron charge wrong")
	}
	if e.IsMolecule() {
		t.Error("electron is not a molecule")
	}
	// Electron gas constant enormous: R = Ru/5.49e-7 ~ 1.5e7.
	if e.R() < 1e7 {
		t.Errorf("R(e-)=%g suspiciously small", e.R())
	}
}

func TestTwoTemperatureEnthalpy(t *testing.T) {
	sp := air()
	n2 := sp[AirN2]
	// With T == Tv the two-temperature enthalpy equals the one-T value.
	h1 := n2.Enthalpy(5000)
	h2 := n2.EnthalpyTwoT(5000, 5000)
	if math.Abs(h1-h2) > 1e-6*math.Abs(h1) {
		t.Errorf("two-T enthalpy inconsistent: %g vs %g", h1, h2)
	}
	// Cold vibration lowers enthalpy.
	if n2.EnthalpyTwoT(5000, 300) >= h1 {
		t.Error("frozen vibration should reduce enthalpy")
	}
}

func TestSpeciesString(t *testing.T) {
	sp := air()
	if got := sp[AirNOp].String(); got == "" {
		t.Error("empty String()")
	}
}
