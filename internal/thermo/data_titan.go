package thermo

// Titan atmosphere species database: the C/H/N system produced by shock
// heating an N2/CH4 atmosphere (the Titan probe entry of the paper's Fig. 2
// and 3). Thirteen neutral species cover the dominant equilibrium
// composition from ambient conditions to ~20000 K: N2, CH4, H2, H, C, N,
// CN, HCN, C2H2, C2, CH, NH, C3. Characteristic temperatures and formation
// enthalpies are RRHO values assembled from standard spectroscopic constants
// (converted from cm^-1: Theta[K] = 1.4388 * omega[cm^-1]).

// Named indices into the Titan species set returned by TitanSpecies.
const (
	TiN2 = iota
	TiCH4
	TiH2
	TiH
	TiC
	TiN
	TiCN
	TiHCN
	TiC2H2
	TiC2
	TiCH
	TiNH
	TiC3
	NTitan
)

var titanTable = []Species{
	{
		Name: "N2", W: 28.0134e-3, Hf0: 0, Rotor: Linear,
		ThetaR: [3]float64{2.88}, Sigma: 2,
		Vib:     []VibMode{{Theta: 3392, G: 1}},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"N": 2},
		LJSigma: 3.798e-10, LJEps: 71.4,
	},
	{
		Name: "CH4", W: 12.0107e-3 + 4*1.00794e-3, Hf0: -4.153e6, Rotor: Nonlinear,
		ThetaR: [3]float64{7.54, 7.54, 7.54}, Sigma: 12,
		Vib: []VibMode{
			{Theta: 4196, G: 1}, {Theta: 2207, G: 2},
			{Theta: 4343, G: 3}, {Theta: 1879, G: 3},
		},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"C": 1, "H": 4},
		LJSigma: 3.758e-10, LJEps: 148.6,
	},
	{
		Name: "H2", W: 2 * 1.00794e-3, Hf0: 0, Rotor: Linear,
		ThetaR: [3]float64{87.53}, Sigma: 2,
		Vib:     []VibMode{{Theta: 6338, G: 1}},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"H": 2},
		LJSigma: 2.827e-10, LJEps: 59.7,
	},
	{
		Name: "H", W: 1.00794e-3, Hf0: 2.1433e8, Rotor: Atom,
		Elec:    []ElecLevel{{G: 2, Theta: 0}},
		Elems:   map[string]int{"H": 1},
		LJSigma: 2.708e-10, LJEps: 37,
	},
	{
		Name: "C", W: 12.0107e-3, Hf0: 5.9213e7, Rotor: Atom,
		Elec: []ElecLevel{
			{G: 1, Theta: 0}, {G: 3, Theta: 23.6}, {G: 5, Theta: 62.4},
			{G: 5, Theta: 14665}, {G: 1, Theta: 31147},
		},
		Elems:   map[string]int{"C": 1},
		LJSigma: 3.385e-10, LJEps: 30.6,
	},
	{
		Name: "N", W: 14.0067e-3, Hf0: 3.3747e7, Rotor: Atom,
		Elec:    []ElecLevel{{G: 4, Theta: 0}, {G: 10, Theta: 27658}, {G: 6, Theta: 41495}},
		Elems:   map[string]int{"N": 1},
		LJSigma: 3.298e-10, LJEps: 71.4,
	},
	{
		Name: "CN", W: 12.0107e-3 + 14.0067e-3, Hf0: 1.6724e7, Rotor: Linear,
		ThetaR: [3]float64{2.72}, Sigma: 1,
		Vib: []VibMode{{Theta: 2976, G: 1}},
		// B2Sigma+ at 25752 cm^-1 is the CN violet upper state; A2Pi at
		// 9245 cm^-1 the red system upper state.
		Elec:    []ElecLevel{{G: 2, Theta: 0}, {G: 4, Theta: 13300}, {G: 2, Theta: 37050}},
		Elems:   map[string]int{"C": 1, "N": 1},
		LJSigma: 3.856e-10, LJEps: 75,
	},
	{
		Name: "HCN", W: 12.0107e-3 + 1.00794e-3 + 14.0067e-3, Hf0: 4.925e6, Rotor: Linear,
		ThetaR: [3]float64{2.13}, Sigma: 1,
		Vib: []VibMode{
			{Theta: 3017, G: 1}, {Theta: 1026, G: 2}, {Theta: 4764, G: 1},
		},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"C": 1, "H": 1, "N": 1},
		LJSigma: 3.63e-10, LJEps: 569.1,
	},
	{
		Name: "C2H2", W: 2*12.0107e-3 + 2*1.00794e-3, Hf0: 8.787e6, Rotor: Linear,
		ThetaR: [3]float64{1.693}, Sigma: 2,
		Vib: []VibMode{
			{Theta: 4853, G: 1}, {Theta: 2840, G: 1}, {Theta: 4730, G: 1},
			{Theta: 881, G: 2}, {Theta: 1049, G: 2},
		},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"C": 2, "H": 2},
		LJSigma: 4.033e-10, LJEps: 231.8,
	},
	{
		Name: "C2", W: 2 * 12.0107e-3, Hf0: 3.4144e7, Rotor: Linear,
		ThetaR: [3]float64{2.59}, Sigma: 2,
		Vib: []VibMode{{Theta: 2669, G: 1}},
		// a3Pi_u lies only ~1040 K above the ground state; d3Pi_g at
		// ~27900 K is the Swan-band upper state.
		Elec:    []ElecLevel{{G: 1, Theta: 0}, {G: 6, Theta: 1040}, {G: 6, Theta: 27900}},
		Elems:   map[string]int{"C": 2},
		LJSigma: 3.913e-10, LJEps: 78.8,
	},
	{
		Name: "CH", W: 12.0107e-3 + 1.00794e-3, Hf0: 4.5512e7, Rotor: Linear,
		ThetaR: [3]float64{20.8}, Sigma: 1,
		Vib:     []VibMode{{Theta: 4116, G: 1}},
		Elec:    []ElecLevel{{G: 4, Theta: 0}},
		Elems:   map[string]int{"C": 1, "H": 1},
		LJSigma: 3.37e-10, LJEps: 68.6,
	},
	{
		Name: "NH", W: 14.0067e-3 + 1.00794e-3, Hf0: 2.3896e7, Rotor: Linear,
		ThetaR: [3]float64{24.2}, Sigma: 1,
		Vib:     []VibMode{{Theta: 4722, G: 1}},
		Elec:    []ElecLevel{{G: 3, Theta: 0}},
		Elems:   map[string]int{"N": 1, "H": 1},
		LJSigma: 3.312e-10, LJEps: 65.3,
	},
	{
		Name: "C3", W: 3 * 12.0107e-3, Hf0: 2.318e7, Rotor: Linear,
		ThetaR: [3]float64{0.62}, Sigma: 2,
		Vib: []VibMode{
			{Theta: 1761, G: 1}, {Theta: 91, G: 2}, {Theta: 2935, G: 1},
		},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"C": 3},
		LJSigma: 4.2e-10, LJEps: 90,
	},
}

// TitanSpecies returns the 13-species Titan C/H/N set.
func TitanSpecies() []*Species {
	out := make([]*Species, len(titanTable))
	for i := range titanTable {
		s := titanTable[i]
		out[i] = &s
	}
	return out
}

// TitanFreestreamMassFractions returns the ambient Titan atmosphere
// composition by mass for a given species list. The organic-haze era
// estimate used for probe studies: ~95% N2, 5% CH4 by mole, converted to
// mass fractions (N2 0.971, CH4 0.029).
func TitanFreestreamMassFractions(species []*Species) []float64 {
	y := make([]float64, len(species))
	for i, s := range species {
		switch s.Name {
		case "N2":
			y[i] = 0.971
		case "CH4":
			y[i] = 0.029
		}
	}
	return y
}
