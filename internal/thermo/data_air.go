package thermo

// Air species database. Constants are representative of the era's CAT
// databases (Park 1985/1990, Gnoffo-era RRHO tables): characteristic
// rotational/vibrational temperatures, low-lying electronic levels, 0 K
// formation enthalpies, and Lennard-Jones parameters for the kinetic-theory
// transport fallback. Formation enthalpies are chosen so that dissociation
// and ionization energies reproduce the accepted values (N2: 9.76 eV,
// O2: 5.12 eV, N: 14.5 eV, O: 13.6 eV, N2: 15.6 eV ionization, ...).

// Named indices into the 11-species air set returned by AirSpecies11.
const (
	AirN2 = iota
	AirO2
	AirNO
	AirN
	AirO
	AirN2p
	AirO2p
	AirNOp
	AirNp
	AirOp
	AirE
	NAir11
)

// airTable is the canonical air species data. Do not mutate.
var airTable = []Species{
	{
		Name: "N2", W: 28.0134e-3, Hf0: 0, Rotor: Linear,
		ThetaR: [3]float64{2.88}, Sigma: 2,
		Vib:     []VibMode{{Theta: 3392, G: 1}},
		Elec:    []ElecLevel{{G: 1, Theta: 0}, {G: 3, Theta: 71600}, {G: 6, Theta: 85600}},
		Elems:   map[string]int{"N": 2},
		LJSigma: 3.798e-10, LJEps: 71.4,
	},
	{
		Name: "O2", W: 31.9988e-3, Hf0: 0, Rotor: Linear,
		ThetaR: [3]float64{2.08}, Sigma: 2,
		Vib:     []VibMode{{Theta: 2273, G: 1}},
		Elec:    []ElecLevel{{G: 3, Theta: 0}, {G: 2, Theta: 11392}, {G: 1, Theta: 18985}},
		Elems:   map[string]int{"O": 2},
		LJSigma: 3.467e-10, LJEps: 106.7,
	},
	{
		Name: "NO", W: 30.0061e-3, Hf0: 2.996123e6, Rotor: Linear,
		ThetaR: [3]float64{2.45}, Sigma: 1,
		Vib:     []VibMode{{Theta: 2739, G: 1}},
		Elec:    []ElecLevel{{G: 2, Theta: 0}, {G: 2, Theta: 174}, {G: 2, Theta: 63300}},
		Elems:   map[string]int{"N": 1, "O": 1},
		LJSigma: 3.492e-10, LJEps: 116.7,
	},
	{
		Name: "N", W: 14.0067e-3, Hf0: 3.3747e7, Rotor: Atom,
		Elec:    []ElecLevel{{G: 4, Theta: 0}, {G: 10, Theta: 27658}, {G: 6, Theta: 41495}},
		Elems:   map[string]int{"N": 1},
		LJSigma: 3.298e-10, LJEps: 71.4,
	},
	{
		Name: "O", W: 15.9994e-3, Hf0: 1.5574e7, Rotor: Atom,
		Elec: []ElecLevel{
			{G: 5, Theta: 0}, {G: 3, Theta: 228}, {G: 1, Theta: 326},
			{G: 5, Theta: 22830}, {G: 1, Theta: 48620},
		},
		Elems:   map[string]int{"O": 1},
		LJSigma: 3.05e-10, LJEps: 106.7,
	},
	{
		Name: "N2+", W: 28.0134e-3 - 5.48579909e-7, Charge: 1, Hf0: 5.37047e7, Rotor: Linear,
		ThetaR: [3]float64{2.88}, Sigma: 2,
		Vib:     []VibMode{{Theta: 3129, G: 1}},
		Elec:    []ElecLevel{{G: 2, Theta: 0}, {G: 4, Theta: 13189}, {G: 2, Theta: 36633}},
		Elems:   map[string]int{"N": 2},
		LJSigma: 3.798e-10, LJEps: 71.4,
	},
	{
		Name: "O2+", W: 31.9988e-3 - 5.48579909e-7, Charge: 1, Hf0: 3.6398e7, Rotor: Linear,
		ThetaR: [3]float64{2.08}, Sigma: 2,
		Vib:     []VibMode{{Theta: 2741, G: 1}},
		Elec:    []ElecLevel{{G: 4, Theta: 0}},
		Elems:   map[string]int{"O": 2},
		LJSigma: 3.467e-10, LJEps: 106.7,
	},
	{
		Name: "NO+", W: 30.0061e-3 - 5.48579909e-7, Charge: 1, Hf0: 3.28348e7, Rotor: Linear,
		ThetaR: [3]float64{2.45}, Sigma: 1,
		Vib:     []VibMode{{Theta: 3421, G: 1}},
		Elec:    []ElecLevel{{G: 1, Theta: 0}},
		Elems:   map[string]int{"N": 1, "O": 1},
		LJSigma: 3.492e-10, LJEps: 116.7,
	},
	{
		Name: "N+", W: 14.0067e-3 - 5.48579909e-7, Charge: 1, Hf0: 1.34337e8, Rotor: Atom,
		Elec: []ElecLevel{
			{G: 1, Theta: 0}, {G: 3, Theta: 70.1}, {G: 5, Theta: 188.2},
			{G: 5, Theta: 22037}, {G: 1, Theta: 47032},
		},
		Elems:   map[string]int{"N": 1},
		LJSigma: 3.298e-10, LJEps: 71.4,
	},
	{
		Name: "O+", W: 15.9994e-3 - 5.48579909e-7, Charge: 1, Hf0: 9.80594e7, Rotor: Atom,
		Elec:    []ElecLevel{{G: 4, Theta: 0}, {G: 10, Theta: 38575}, {G: 6, Theta: 58226}},
		Elems:   map[string]int{"O": 1},
		LJSigma: 3.05e-10, LJEps: 106.7,
	},
	{
		Name: "e-", W: 5.48579909e-7, Charge: -1, Hf0: 0, Rotor: Atom,
		Elec:    []ElecLevel{{G: 2, Theta: 0}},
		Elems:   map[string]int{},
		LJSigma: 1.0e-10, LJEps: 50,
	},
}

// AirSpecies11 returns the 11-species ionizing-air set
// [N2 O2 NO N O N2+ O2+ NO+ N+ O+ e-] as fresh pointers into a copied table.
func AirSpecies11() []*Species {
	out := make([]*Species, len(airTable))
	for i := range airTable {
		s := airTable[i] // copy
		out[i] = &s
	}
	return out
}

// AirSpecies5 returns the 5-species neutral air set [N2 O2 NO N O], the
// standard set for equilibrium flows below ionization temperatures.
func AirSpecies5() []*Species {
	all := AirSpecies11()
	return []*Species{all[AirN2], all[AirO2], all[AirNO], all[AirN], all[AirO]}
}

// AirFreestreamMassFractions returns the standard undissociated air
// composition by mass for a given species list (0.767 N2 / 0.233 O2,
// zero elsewhere).
func AirFreestreamMassFractions(species []*Species) []float64 {
	y := make([]float64, len(species))
	for i, s := range species {
		switch s.Name {
		case "N2":
			y[i] = 0.767
		case "O2":
			y[i] = 0.233
		}
	}
	return y
}
