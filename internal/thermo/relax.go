package thermo

import "math"

// Vibrational relaxation times: Millikan-White correlation with Park's
// high-temperature collision-limited correction. These set the Landau-Teller
// source term used by the two-temperature nonequilibrium solvers.

// MillikanWhiteTau returns the vibrational relaxation time (s) of molecular
// species s against collision partner r at temperature T (K) and pressure p
// (Pa). The correlation:
//
//	p_atm * tau = exp[ A (T^{-1/3} - 0.015 mu^{1/4}) - 18.42 ]  (atm s)
//	A = 1.16e-3 mu^{1/2} theta_v^{4/3}
//
// with mu the reduced molar mass in g/mol.
func MillikanWhiteTau(s, r *Species, T, p float64) float64 {
	if len(s.Vib) == 0 || T <= 0 || p <= 0 {
		return math.Inf(1)
	}
	mu := s.W * r.W / (s.W + r.W) * 1000 // g/mol
	theta := s.Vib[0].Theta
	A := 1.16e-3 * math.Sqrt(mu) * math.Pow(theta, 4.0/3.0)
	ex := A*(math.Pow(T, -1.0/3.0)-0.015*math.Pow(mu, 0.25)) - 18.42
	if ex > 300 {
		return math.Inf(1)
	}
	return math.Exp(ex) / (p / AtmPa)
}

// ParkCollisionTau returns Park's collision-limited relaxation time,
// tau = 1 / (sigma_v cbar n), with the effective cross section
// sigma_v = 3e-21 (50000/T)^2 m^2, cbar the mean thermal speed of species s
// and n the mixture number density (1/m^3). This prevents the Millikan-White
// extrapolation from underestimating relaxation times above ~8000 K.
func ParkCollisionTau(s *Species, T, n float64) float64 {
	if T <= 0 || n <= 0 {
		return math.Inf(1)
	}
	sigma := 3e-21 * (50000 / T) * (50000 / T)
	cbar := math.Sqrt(8 * KB * T / (math.Pi * s.Mass()))
	return 1 / (sigma * cbar * n)
}

// RelaxationTime returns the mixture-averaged vibrational relaxation time of
// molecule s: mole-fraction average of Millikan-White pair times plus the
// Park correction.
//
//	tau_s = (sum_r x_r) / (sum_r x_r / tau_sr)  +  tau_park
func RelaxationTime(m *Mixture, s *Species, T, p float64, x []float64) float64 {
	num, den := 0.0, 0.0
	for i, r := range m.Species {
		if x[i] <= 0 || r.Name == "e-" {
			continue
		}
		tau := MillikanWhiteTau(s, r, T, p)
		if math.IsInf(tau, 1) {
			continue
		}
		num += x[i]
		den += x[i] / tau
	}
	var tauMW float64
	if den > 0 {
		tauMW = num / den
	} else {
		tauMW = math.Inf(1)
	}
	n := p / (KB * T) // total number density
	return tauMW + ParkCollisionTau(s, T, n)
}
