package freeflight

import (
	"testing"
)

func TestShuttleDomain(t *testing.T) {
	vs := StandardVehicles()
	shuttle := vs[0]
	pts := Domain(shuttle)
	if len(pts) != len(shuttle.Altitudes) {
		t.Fatalf("points %d", len(pts))
	}
	// Entry interface: high Mach, low Re; landing: low Mach, high Re.
	first, last := pts[0], pts[len(pts)-1]
	if first.Mach < 15 {
		t.Errorf("entry Mach %g should exceed 15", first.Mach)
	}
	if last.Mach > 1.2 {
		t.Errorf("landing Mach %g should be subsonic-ish", last.Mach)
	}
	if first.Reynolds >= last.Reynolds {
		t.Errorf("Re should grow during descent: %g -> %g", first.Reynolds, last.Reynolds)
	}
	if last.Reynolds < 1e7 {
		t.Errorf("low-altitude Re %g implausibly small for a 32.8 m vehicle", last.Reynolds)
	}
}

func TestAOTVGapUncovered(t *testing.T) {
	// The paper's point: the AOTV high-altitude hypervelocity regime cannot
	// be reached by ground facilities.
	vs := StandardVehicles()
	fac := StandardFacilities()
	aotv := vs[1]
	pts := Domain(aotv)
	uncovered := 0
	for _, p := range pts {
		if !Covered(p, fac) {
			uncovered++
		}
	}
	if uncovered < len(pts)/2 {
		t.Errorf("only %d of %d AOTV points uncovered; the simulation gap should dominate", uncovered, len(pts))
	}
}

func TestLowSpeedCovered(t *testing.T) {
	// Conversely, the low-altitude portion of the TAV corridor is coverable.
	vs := StandardVehicles()
	fac := StandardFacilities()
	tav := vs[2]
	pts := Domain(tav)
	if !Covered(pts[0], fac) {
		t.Errorf("low-altitude TAV point (M=%g, Re=%g) should be covered", pts[0].Mach, pts[0].Reynolds)
	}
}

func TestVehicleSetSane(t *testing.T) {
	for _, v := range StandardVehicles() {
		if len(v.Altitudes) != len(v.Velocities) {
			t.Errorf("%s: mismatched trajectory arrays", v.Name)
		}
		if v.RefLength <= 0 || v.Atmosphere == nil {
			t.Errorf("%s: bad metadata", v.Name)
		}
		for _, p := range Domain(v) {
			if p.Mach <= 0 || p.Reynolds <= 0 {
				t.Errorf("%s: nonpositive M/Re point", v.Name)
			}
		}
	}
}
