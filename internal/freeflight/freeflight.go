// Package freeflight computes the flight-domain map of the paper's Fig. 1:
// Reynolds number versus Mach number along representative vehicle
// trajectories (Shuttle Orbiter entry, AOTV aeropass, transatmospheric
// vehicle corridor, Titan probe entry), overlaid with the envelopes of
// ground-based facilities (wind tunnels, shock tubes, ballistic ranges) to
// show the simulation gap the paper motivates.
package freeflight

import (
	"math"

	"cataero/internal/atmosphere"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// Point is one (Mach, Reynolds) sample along a vehicle trajectory.
type Point struct {
	Altitude float64 // m
	Velocity float64 // m/s
	Mach     float64
	Reynolds float64 // based on vehicle reference length
}

// Vehicle describes a flight-domain trajectory.
type Vehicle struct {
	Name      string
	RefLength float64 // m
	// Trajectory as altitude (m) and velocity (m/s) pairs.
	Altitudes  []float64
	Velocities []float64
	Atmosphere atmosphere.Model
}

// Facility is a ground-test-capability envelope (a box in M-Re space).
type Facility struct {
	Name                     string
	MachMin, MachMax         float64
	ReynoldsMin, ReynoldsMax float64
}

// Domain computes the M-Re samples of a vehicle trajectory.
func Domain(v Vehicle) []Point {
	out := make([]Point, 0, len(v.Altitudes))
	for i := range v.Altitudes {
		st := v.Atmosphere.AtAltitude(v.Altitudes[i])
		V := v.Velocities[i]
		// Frozen-air sound speed and Sutherland viscosity: adequate for a
		// domain map.
		a := math.Sqrt(thermo.GammaAir * thermo.RAir * st.Temperature)
		mu := transport.Sutherland(st.Temperature)
		out = append(out, Point{
			Altitude: v.Altitudes[i],
			Velocity: V,
			Mach:     V / a,
			Reynolds: st.Density * V * v.RefLength / mu,
		})
	}
	return out
}

// StandardVehicles returns the vehicle set of the Fig. 1 reproduction.
func StandardVehicles() []Vehicle {
	earth := atmosphere.NewEarth()
	titan := atmosphere.NewTitan()
	return []Vehicle{
		{
			Name: "Shuttle Orbiter entry", RefLength: 32.77, Atmosphere: earth,
			Altitudes:  []float64{78e3, 75e3, 71e3, 68e3, 65e3, 60e3, 55e3, 50e3, 45e3, 40e3, 33e3, 25e3, 15e3},
			Velocities: []float64{7500, 7400, 7200, 7000, 6700, 6000, 5000, 4100, 3200, 2400, 1500, 800, 250},
		},
		{
			Name: "AOTV aeropass", RefLength: 14, Atmosphere: earth,
			Altitudes:  []float64{120e3, 110e3, 100e3, 92e3, 85e3, 80e3, 78e3, 80e3, 90e3, 105e3},
			Velocities: []float64{10200, 10100, 10000, 9800, 9500, 9100, 8600, 8200, 8000, 7900},
		},
		{
			Name: "TAV ascent corridor", RefLength: 30, Atmosphere: earth,
			Altitudes:  []float64{12e3, 18e3, 24e3, 30e3, 37e3, 45e3, 52e3, 60e3, 68e3},
			Velocities: []float64{600, 1000, 1600, 2300, 3200, 4400, 5600, 6800, 7600},
		},
		{
			Name: "Titan probe entry", RefLength: 2.7, Atmosphere: titan,
			Altitudes:  []float64{450e3, 400e3, 350e3, 300e3, 260e3, 230e3, 200e3, 170e3},
			Velocities: []float64{12000, 11900, 11500, 10500, 9000, 7000, 4500, 2500},
		},
	}
}

// StandardFacilities returns the ground-facility envelopes of Fig. 1.
func StandardFacilities() []Facility {
	return []Facility{
		{"Hypersonic wind tunnels", 5, 14, 1e5, 5e7},
		{"Transonic/supersonic tunnels", 0.3, 5, 1e6, 1e9},
		{"Shock tubes/tunnels", 6, 25, 1e3, 3e6},
		{"Ballistic ranges", 2, 20, 1e4, 5e7},
		{"Arc jets", 3, 8, 1e3, 1e6},
	}
}

// Covered reports whether the point lies inside any facility envelope:
// the high-altitude hypervelocity points of the AOTV and probe entries
// should NOT be covered (the paper's motivating gap).
func Covered(p Point, facilities []Facility) bool {
	for _, f := range facilities {
		if p.Mach >= f.MachMin && p.Mach <= f.MachMax &&
			p.Reynolds >= f.ReynoldsMin && p.Reynolds <= f.ReynoldsMax {
			return true
		}
	}
	return false
}
