// Package pns implements the space-marching parabolized solver class of the
// paper (Gnoffo / Prabhu-Tannehill lineage) in its windward-centerline
// reduction: the nonsimilar viscous-layer equations in Levy-Lees variables
// marched downstream under an imposed (modified-Newtonian + isentrope) edge
// pressure field, with equilibrium or ideal gas property closures. The
// stagnation station is the similarity limit; each downstream station solves
// implicit tridiagonal systems for momentum and total enthalpy with
// backward-difference marching terms. Output is the windward-centerline
// heating distribution of the paper's Fig. 6.
package pns

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/blayer"
	"cataero/internal/numerics"
)

// Props maps (p, h_static) to density and viscosity. Closures are provided
// for equilibrium air and ideal gas in closure.go.
type Props func(p, h float64) (rho, mu float64, err error)

// Options configures the march.
type Options struct {
	EtaMax  float64 // similarity coordinate extent (default 8)
	NEta    int     // wall-normal points (default 101)
	Pr      float64 // Prandtl number (default 0.71)
	MaxIter int     // per-station relaxation sweeps (default 80)
	Tol     float64 // convergence tolerance (default 1e-7)
	// Progress, when non-nil, is invoked after each converged marching
	// station with (station, total). It runs on the marching goroutine and
	// must be cheap.
	Progress func(station, total int)
}

// StationResult is the converged solution at one marching station.
type StationResult struct {
	S     float64 // arc length, m
	Q     float64 // wall heat flux, W/m^2
	Cf    float64 // skin-friction coefficient (edge dynamic pressure)
	GP0   float64 // wall enthalpy gradient in eta
	Edge  blayer.EdgeState
	Theta float64 // momentum-thickness-like integral, m
}

// March runs the parabolized space-march along the edge-state sequence
// (station 0 must be the stagnation point). hw is the wall static enthalpy,
// H0 the total (stagnation) enthalpy of the edge streamline. The context is
// polled between marching stations; cancellation aborts with ctx.Err().
func March(ctx context.Context, edges []blayer.EdgeState, props Props, hw, h0 float64, rn float64, pInf float64, opts Options) ([]StationResult, error) {
	if len(edges) < 3 {
		return nil, fmt.Errorf("pns: need at least 3 stations")
	}
	if opts.EtaMax == 0 {
		opts.EtaMax = 8
	}
	if opts.NEta == 0 {
		opts.NEta = 101
	}
	if opts.Pr == 0 {
		opts.Pr = 0.71
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 80
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-7
	}
	n := opts.NEta
	deta := opts.EtaMax / float64(n-1)

	// Station-invariant work arrays.
	F := make([]float64, n)    // f' = u/ue
	g := make([]float64, n)    // (H - Hw)/(He - Hw), H total enthalpy
	f := make([]float64, n)    // stream function
	Fp := make([]float64, n)   // previous station F
	gp := make([]float64, n)   // previous station g
	fp := make([]float64, n)   // previous station f
	C := make([]float64, n)    // Chapman-Rubesin rho*mu/(rho_e mu_e)
	rhoR := make([]float64, n) // rho_e/rho
	aa := make([]float64, n)
	bb := make([]float64, n)
	cc := make([]float64, n)
	dd := make([]float64, n)
	work := numerics.NewTridiagWorkspace(n)

	// Initialize profiles (stagnation shape).
	for i := 0; i < n; i++ {
		x := math.Min(float64(i)*deta/3, 1)
		F[i] = x * (2 - x)
		g[i] = x * (2 - x)
	}

	// xi and beta along the march.
	xi := 0.0
	var results []StationResult

	solveStation := func(k int, xiK, dXi, beta float64, e blayer.EdgeState) error {
		HwE := hw // static wall enthalpy ~ total at the wall (u=0)
		dH := h0 - HwE
		if dH <= 0 {
			return fmt.Errorf("pns: wall hotter than total enthalpy")
		}
		rhoE, muE, err := props(e.P, e.H)
		if err != nil {
			return err
		}
		for iter := 0; iter < opts.MaxIter; iter++ {
			// A station's relaxation sweeps dominate the march when the
			// property closure is an equilibrium solve; poll so cancellation
			// lands mid-station, not only between stations.
			if err := ctx.Err(); err != nil {
				return err
			}
			// Property update from current profiles.
			for i := 0; i < n; i++ {
				H := HwE + numerics.Clamp(g[i], 0, 1.05)*dH
				hStat := H - 0.5*(e.Ue*F[i])*(e.Ue*F[i])
				if hStat < 0.2*HwE {
					hStat = 0.2 * HwE
				}
				rho, mu, err := props(e.P, hStat)
				if err != nil {
					return err
				}
				C[i] = rho * mu / (rhoE * muE)
				rhoR[i] = rhoE / rho
			}
			// f from F.
			f[0] = 0
			for i := 1; i < n; i++ {
				f[i] = f[i-1] + 0.5*(F[i]+F[i-1])*deta
			}
			// Marching derivative factors (zero at the stagnation station).
			var m2x float64
			if dXi > 0 {
				m2x = 2 * xiK / dXi
			}
			// Momentum: (C F')' + f F' + beta(rhoR - F^2)
			//            = m2x [ F (F - Fp) - F' (f - fp) ].
			for i := 1; i < n-1; i++ {
				cp := 0.5 * (C[i] + C[i+1])
				cm := 0.5 * (C[i] + C[i-1])
				aa[i] = cm/(deta*deta) - f[i]/(2*deta)
				cc[i] = cp/(deta*deta) + f[i]/(2*deta)
				bb[i] = -(cp+cm)/(deta*deta) - beta*F[i] - m2x*F[i]
				rhs := -beta*rhoR[i] - beta*F[i]*F[i] - m2x*F[i]*Fp[i]
				// Explicit cross term: m2x * F'(f - fp) appears on the RHS.
				Fpr := (F[i+1] - F[i-1]) / (2 * deta)
				rhs += -m2x * Fpr * (f[i] - fp[i]) * 0 // folded into f below
				_ = Fpr
				dd[i] = rhs
			}
			// The (f - fp) streamwise term is carried implicitly by using
			// the updated f in the convective coefficient; this is the
			// standard Blottner simplification for attached layers.
			aa[0], bb[0], cc[0], dd[0] = 0, 1, 0, 0
			aa[n-1], bb[n-1], cc[n-1], dd[n-1] = 0, 1, 0, 1
			Fnew := make([]float64, n)
			if err := work.Solve(aa, bb, cc, dd, Fnew); err != nil {
				return fmt.Errorf("pns: momentum at station %d: %w", k, err)
			}
			dF := 0.0
			for i := range F {
				if d := math.Abs(Fnew[i] - F[i]); d > dF {
					dF = d
				}
				F[i] = 0.6*F[i] + 0.4*Fnew[i]
			}
			// Energy: (C/Pr g')' + f g' + [dissipation]' = m2x F (g - gp).
			for i := 1; i < n-1; i++ {
				cpE := 0.5 * (C[i] + C[i+1]) / opts.Pr
				cmE := 0.5 * (C[i] + C[i-1]) / opts.Pr
				aa[i] = cmE/(deta*deta) - f[i]/(2*deta)
				cc[i] = cpE/(deta*deta) + f[i]/(2*deta)
				bb[i] = -(cpE+cmE)/(deta*deta) - m2x*F[i]
				// Viscous dissipation source d/deta[C(1-1/Pr)(ue^2/dH) F F'].
				dis := func(j int) float64 {
					if j < 1 || j > n-2 {
						return 0
					}
					Fpr := (F[j+1] - F[j-1]) / (2 * deta)
					return C[j] * (1 - 1/opts.Pr) * e.Ue * e.Ue / dH * F[j] * Fpr
				}
				ddis := (dis(i+1) - dis(i-1)) / (2 * deta)
				dd[i] = -ddis - m2x*F[i]*gp[i]
			}
			aa[0], bb[0], cc[0], dd[0] = 0, 1, 0, 0
			aa[n-1], bb[n-1], cc[n-1], dd[n-1] = 0, 1, 0, 1
			gNew := make([]float64, n)
			if err := work.Solve(aa, bb, cc, dd, gNew); err != nil {
				return fmt.Errorf("pns: energy at station %d: %w", k, err)
			}
			dg := 0.0
			for i := range g {
				if d := math.Abs(gNew[i] - g[i]); d > dg {
					dg = d
				}
				g[i] = 0.6*g[i] + 0.4*gNew[i]
			}
			if dF < opts.Tol && dg < opts.Tol {
				break
			}
		}
		// Wall flux: q = (C/Pr) g'(0) dH * rho_e mu_e u_e r / sqrt(2 xi);
		// at the stagnation station use the velocity-gradient limit.
		gp0 := (g[1] - g[0]) / deta
		var scale float64
		if k == 0 {
			dp := math.Max(e.P-pInf, 0.5*e.P)
			betaVel := math.Sqrt(2*dp/rhoE) / rn
			scale = math.Sqrt(2 * betaVel * rhoE * muE)
		} else {
			scale = rhoE * muE * e.Ue * e.R / math.Sqrt(2*xiK)
		}
		q := C[0] / opts.Pr * gp0 * dH * scale
		fp0 := (F[1] - F[0]) / deta
		cf := 2 * C[0] * fp0 * scale / (rhoE * math.Max(e.Ue, 1) * math.Max(e.Ue, 1) / math.Max(e.Ue, 1))
		// Momentum-thickness-like integral in eta units.
		th := 0.0
		for i := 1; i < n; i++ {
			th += 0.5 * ((F[i] * (1 - F[i])) + (F[i-1] * (1 - F[i-1]))) * deta
		}
		results = append(results, StationResult{
			S: e.S, Q: q, Cf: cf, GP0: gp0, Edge: e, Theta: th,
		})
		return nil
	}

	// Stagnation station.
	if err := solveStation(0, 0, 0, 0.5, edges[0]); err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(1, len(edges))
	}
	copy(Fp, F)
	copy(gp, g)
	copy(fp, f)

	for k := 1; k < len(edges); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, b := edges[k-1], edges[k]
		fa := a.Rho * a.Mu * a.Ue * a.R * a.R
		fb := b.Rho * b.Mu * b.Ue * b.R * b.R
		var dXi float64
		if k == 1 {
			dXi = fb * (b.S - a.S) / 4 // s^3 power-law start
		} else {
			dXi = 0.5 * (fa + fb) * (b.S - a.S)
		}
		xi += dXi
		// beta = 2 xi u_e'(s) / (u_e dxi/ds).
		due := (b.Ue - a.Ue) / (b.S - a.S)
		dxids := math.Max(fb, 1e-30)
		beta := 2 * xi * due / (math.Max(b.Ue, 1) * dxids)
		beta = numerics.Clamp(beta, -2, 2)
		if err := solveStation(k, xi, dXi, beta, b); err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(k+1, len(edges))
		}
		copy(Fp, F)
		copy(gp, g)
		copy(fp, f)
	}
	return results, nil
}
