package pns

import (
	"context"
	"math"
	"testing"

	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/geometry"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// STS-3-like case: V=6.74 km/s, h=71.3 km, alpha=40 deg on the equivalent
// axisymmetric body.
func sts3Setup(t *testing.T) (*chem.EquilibriumSolver, *transport.Mixture, []float64, blayer.FreeStream, geometry.Body) {
	t.Helper()
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := chem.NewEquilibriumSolver(m)
	tr := transport.NewMixture(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	fs := blayer.FreeStream{P: 4.8, T: 217, Rho: 7.5e-5, V: 6740}
	body := geometry.NewOrbiter().EquivalentAxisymmetric(40 * math.Pi / 180)
	return eq, tr, y0, fs, body
}

func TestMarchEquilibriumHeating(t *testing.T) {
	eq, tr, y0, fs, body := sts3Setup(t)
	edges, err := blayer.EdgeDistribution(eq, tr, y0, fs, body, 24)
	if err != nil {
		t.Fatal(err)
	}
	h0 := edges[0].H
	hw, err := WallEnthalpyEquilibrium(eq, y0, edges[0].P, 1100)
	if err != nil {
		t.Fatal(err)
	}
	props := EquilibriumProps(eq, tr, y0)
	res, err := March(context.Background(), edges, props, hw, h0, body.NoseRadius(), fs.P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(edges) {
		t.Fatalf("stations %d want %d", len(res), len(edges))
	}
	// Stagnation heating: O(1e5-1e6) W/m^2 at the STS-3 point.
	if res[0].Q < 3e4 || res[0].Q > 3e6 {
		t.Errorf("q(0)=%g W/m^2 outside band", res[0].Q)
	}
	// Heating decays away from the nose (windward centerline shape).
	if res[len(res)-1].Q > 0.8*res[0].Q {
		t.Errorf("aft heating %g not below stagnation %g", res[len(res)-1].Q, res[0].Q)
	}
	// All fluxes positive and finite.
	for i, r := range res {
		if !(r.Q > 0) || math.IsInf(r.Q, 0) {
			t.Fatalf("station %d: q=%g", i, r.Q)
		}
	}
}

func TestMarchAgreesWithLeesShape(t *testing.T) {
	// The marching PNS solution and the Lees local-similarity distribution
	// should agree on the overall heating decay within ~40% pointwise.
	eq, tr, y0, fs, body := sts3Setup(t)
	edges, err := blayer.EdgeDistribution(eq, tr, y0, fs, body, 24)
	if err != nil {
		t.Fatal(err)
	}
	h0 := edges[0].H
	hw, err := WallEnthalpyEquilibrium(eq, y0, edges[0].P, 1100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := March(context.Background(), edges, EquilibriumProps(eq, tr, y0), hw, h0, body.NoseRadius(), fs.P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lees := blayer.LeesDistribution(edges, body.NoseRadius(), fs.P)
	for i := 2; i < len(res); i++ {
		ratio := res[i].Q / res[0].Q
		if lees[i] <= 0 {
			continue
		}
		if ratio/lees[i] > 1.8 || ratio/lees[i] < 0.4 {
			t.Errorf("station %d (s=%.2f): march ratio %.3f vs Lees %.3f",
				i, res[i].S, ratio, lees[i])
		}
	}
}

func TestIdealVsEquilibriumHeating(t *testing.T) {
	// The Fig. 6 comparison: the gamma=1.2 ideal-gas prediction runs hotter
	// than equilibrium air near the nose for a fully catalytic wall...
	// or at minimum the two must differ measurably and have the same shape.
	eq, tr, y0, fs, body := sts3Setup(t)
	edgesE, err := blayer.EdgeDistribution(eq, tr, y0, fs, body, 20)
	if err != nil {
		t.Fatal(err)
	}
	h0 := edgesE[0].H
	hwE, err := WallEnthalpyEquilibrium(eq, y0, edgesE[0].P, 1100)
	if err != nil {
		t.Fatal(err)
	}
	resE, err := March(context.Background(), edgesE, EquilibriumProps(eq, tr, y0), hwE, h0, body.NoseRadius(), fs.P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edgesI, err := IdealEdgeDistribution(1.2, 287.05, fs, body, 20)
	if err != nil {
		t.Fatal(err)
	}
	h0I := edgesI[0].H
	hwI := 1.2 * 287.05 / 0.2 * 1100
	resI, err := March(context.Background(), edgesI, IdealProps(1.2, 287.05), hwI, h0I, body.NoseRadius(), fs.P, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qE, qI := resE[0].Q, resI[0].Q
	if qE <= 0 || qI <= 0 {
		t.Fatalf("nonpositive stagnation heating: %g %g", qE, qI)
	}
	ratio := qI / qE
	if ratio < 0.5 || ratio > 3.5 {
		t.Errorf("ideal/equilibrium stagnation ratio %g outside (0.5,3.5)", ratio)
	}
	// Both decay along the body.
	if resE[len(resE)-1].Q > resE[0].Q || resI[len(resI)-1].Q > resI[0].Q {
		t.Error("heating should decay downstream in both models")
	}
}

func TestIdealEdgeDistribution(t *testing.T) {
	fs := blayer.FreeStream{P: 100, T: 250, Rho: 100 / (287.05 * 250), V: 6 * math.Sqrt(1.4*287.05*250)}
	body := geometry.NewSphere(0.5)
	edges, err := IdealEdgeDistribution(1.4, 287.05, fs, body, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Stagnation pressure matches the Rayleigh pitot value for M=6 (x46.81).
	if math.Abs(edges[0].P/100-46.81) > 0.5 {
		t.Errorf("pitot ratio %g want 46.81", edges[0].P/100)
	}
	// Total enthalpy conserved along the edge.
	h0 := edges[0].H
	for _, e := range edges[1:] {
		tot := e.H + 0.5*e.Ue*e.Ue
		if math.Abs(tot-h0) > 1e-6*h0 {
			t.Errorf("ideal edge total enthalpy drift at s=%g", e.S)
		}
	}
	if _, err := IdealEdgeDistribution(1.4, 287.05, blayer.FreeStream{P: 100, T: 250, Rho: 1, V: 10}, body, 5); err == nil {
		t.Error("subsonic accepted")
	}
}

func TestMarchErrors(t *testing.T) {
	if _, err := March(context.Background(), nil, IdealProps(1.4, 287), 1e5, 1e7, 1, 10, Options{}); err == nil {
		t.Error("empty edges accepted")
	}
}
