package pns

import (
	"fmt"
	"math"

	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/geometry"
	"cataero/internal/numerics"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// EquilibriumProps builds an equilibrium-air property closure with a
// per-pressure enthalpy table (rebuilt lazily when the pressure changes by
// more than 2%), keeping the marching loop cheap.
func EquilibriumProps(eq *chem.EquilibriumSolver, tr *transport.Mixture, y0 []float64) Props {
	type tbl struct {
		p   float64
		h   []float64
		rho []float64
		mu  []float64
	}
	var cache *tbl
	build := func(p, hMax float64) (*tbl, error) {
		m := eq.Mix
		nT := 28
		ts := numerics.Logspace(250, 20000, nT)
		t := &tbl{p: p}
		for _, T := range ts {
			y, rho, err := eq.CompositionPT(p, T, y0)
			if err != nil {
				return nil, err
			}
			h := m.Enthalpy(T, y)
			if len(t.h) > 0 && h <= t.h[len(t.h)-1] {
				continue
			}
			t.h = append(t.h, h)
			t.rho = append(t.rho, rho)
			t.mu = append(t.mu, tr.Viscosity(T, y))
			if h > hMax*1.5 && hMax > 0 {
				break
			}
		}
		if len(t.h) < 4 {
			return nil, fmt.Errorf("pns: degenerate property table at p=%g", p)
		}
		return t, nil
	}
	return func(p, h float64) (float64, float64, error) {
		if p <= 0 {
			return 0, 0, fmt.Errorf("pns: nonpositive pressure %g", p)
		}
		if cache == nil || math.Abs(cache.p-p)/p > 0.02 {
			t, err := build(p, h)
			if err != nil {
				return 0, 0, err
			}
			cache = t
		}
		rho := numerics.LinearInterp(cache.h, cache.rho, h)
		mu := numerics.LinearInterp(cache.h, cache.mu, h)
		if rho <= 0 || mu <= 0 {
			return 0, 0, fmt.Errorf("pns: bad interpolated properties at h=%g", h)
		}
		return rho, mu, nil
	}
}

// IdealProps builds an ideal-gas property closure with ratio of specific
// heats gamma and gas constant r, using Sutherland viscosity.
func IdealProps(gamma, r float64) Props {
	cp := gamma * r / (gamma - 1)
	return func(p, h float64) (float64, float64, error) {
		if p <= 0 || h <= 0 {
			return 0, 0, fmt.Errorf("pns: nonphysical ideal state p=%g h=%g", p, h)
		}
		T := h / cp
		return p / (r * T), transport.Sutherland(T), nil
	}
}

// IdealEdgeDistribution builds ideal-gas boundary-layer edge states along an
// axisymmetric body at freestream (p, T, V): normal-shock pitot stagnation
// state, modified-Newtonian pressures and a closed-form isentrope.
func IdealEdgeDistribution(gamma, r float64, fs blayer.FreeStream, body geometry.Body, ns int) ([]blayer.EdgeState, error) {
	return IdealEdgeDistributionProgress(gamma, r, fs, body, ns, nil)
}

// IdealEdgeDistributionProgress is IdealEdgeDistribution with a per-station
// (station, total) callback, so drivers can surface the setup sweep the same
// way the equilibrium edge distribution does.
func IdealEdgeDistributionProgress(gamma, r float64, fs blayer.FreeStream, body geometry.Body, ns int, progress func(station, total int)) ([]blayer.EdgeState, error) {
	cp := gamma * r / (gamma - 1)
	a1 := math.Sqrt(gamma * r * fs.T)
	m1 := fs.V / a1
	if m1 <= 1 {
		return nil, fmt.Errorf("pns: subsonic freestream")
	}
	_, pR, tR, m2, err := shock.IdealJump(gamma, m1)
	if err != nil {
		return nil, err
	}
	p2 := pR * fs.P
	t2 := tR * fs.T
	// Isentropic compression to the stagnation point.
	pStag := p2 * math.Pow(1+(gamma-1)/2*m2*m2, gamma/(gamma-1))
	tStag := t2 * (1 + (gamma-1)/2*m2*m2)
	h0 := cp * tStag
	cpMax := (pStag - fs.P) / (0.5 * fs.Rho * fs.V * fs.V)
	out := make([]blayer.EdgeState, ns)
	sMax := body.MaxS()
	for i := 0; i < ns; i++ {
		s := sMax * float64(i) / float64(ns-1)
		th := body.Angle(s)
		sinT := math.Sin(th)
		cpl := cpMax * sinT * sinT
		if cpl < 0.04*cpMax {
			cpl = 0.04 * cpMax
		}
		pe := fs.P + 0.5*fs.Rho*fs.V*fs.V*cpl
		Te := tStag * math.Pow(pe/pStag, (gamma-1)/gamma)
		he := cp * Te
		ue2 := 2 * (h0 - he)
		if ue2 < 0 {
			ue2 = 0
		}
		_, rr := body.Point(s)
		out[i] = blayer.EdgeState{
			S: s, P: pe, T: Te, Rho: pe / (r * Te), H: he,
			Ue: math.Sqrt(ue2), Mu: transport.Sutherland(Te), R: rr,
		}
		if progress != nil {
			progress(i+1, ns)
		}
	}
	return out, nil
}

// WallEnthalpyEquilibrium returns the recombined equilibrium wall enthalpy.
func WallEnthalpyEquilibrium(eq *chem.EquilibriumSolver, y0 []float64, p, tw float64) (float64, error) {
	y, _, err := eq.CompositionPT(p, tw, y0)
	if err != nil {
		return 0, err
	}
	return eq.Mix.Enthalpy(tw, y), nil
}

var _ = thermo.Ru // referenced by doc examples
