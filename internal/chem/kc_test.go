package chem

import (
	"math"
	"testing"

	"cataero/internal/thermo"
)

// Dissociation equilibrium constants must grow steeply with temperature and
// reproduce the dissociation energy in their van't Hoff slope.
func TestKcVantHoffSlope(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	var n2diss *Reaction
	for _, r := range mech.Reactions {
		if r.Name == "N2+M=2N+M" {
			n2diss = r
			break
		}
	}
	if n2diss == nil {
		t.Fatal("N2 dissociation missing")
	}
	// d(ln Kc)/d(1/T) = -D/k (per particle). D(N2) = 9.76 eV.
	T1, T2 := 6000.0, 6500.0
	l1 := mech.LnKc(n2diss, T1)
	l2 := mech.LnKc(n2diss, T2)
	slope := (l2 - l1) / (1/T2 - 1/T1)
	dEV := -slope * thermo.KB / thermo.ECharge
	if math.Abs(dEV-9.76) > 0.6 {
		t.Errorf("van't Hoff D(N2) = %g eV want ~9.76", dEV)
	}
	// Kc grows with T for dissociation.
	if l2 <= l1 {
		t.Error("dissociation Kc should grow with T")
	}
}

func TestSahaIonizationConstant(t *testing.T) {
	// The N+N=N2++e- and N+e-=N++2e- equilibria embed ionization energies;
	// spot-check the electron-impact reaction's van't Hoff slope ~14.5 eV.
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	var ion *Reaction
	for _, r := range mech.Reactions {
		if r.Name == "N+e-=N++2e-" {
			ion = r
			break
		}
	}
	T1, T2 := 12000.0, 13000.0
	slope := (mech.LnKc(ion, T2) - mech.LnKc(ion, T1)) / (1/T2 - 1/T1)
	eV := -slope * thermo.KB / thermo.ECharge
	// The van't Hoff slope carries the reaction enthalpy at T: the 14.53 eV
	// ionization energy plus ~3/2 kT (+Qel terms) for the extra free
	// electron, ~1.6 eV at 12.5 kK.
	want := 14.53 + 1.5*thermo.KB*12500/thermo.ECharge
	if math.Abs(eV-want) > 1.0 {
		t.Errorf("Saha slope %g eV want ~%.1f", eV, want)
	}
}

// Exchange reactions have modest Kc temperature dependence compared with
// dissociation (small net bond-energy change).
func TestExchangeVsDissociationSlope(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	slopeOf := func(name string) float64 {
		for _, r := range mech.Reactions {
			if r.Name == name {
				return math.Abs(mech.LnKc(r, 6500) - mech.LnKc(r, 6000))
			}
		}
		t.Fatalf("reaction %s missing", name)
		return 0
	}
	if slopeOf("N2+O=NO+N") >= slopeOf("N2+M=2N+M") {
		t.Error("exchange Kc should vary less than dissociation Kc")
	}
}

// The equilibrium solver's composition should satisfy each reaction's Kc
// directly (law of mass action), tested on the O2 dissociation quotient.
func TestLawOfMassAction(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	eq := NewEquilibriumSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	T := 5000.0
	rho := 0.05
	y, err := eq.CompositionRhoT(rho, T, y0)
	if err != nil {
		t.Fatal(err)
	}
	cO2 := rho * y[thermo.AirO2] / m.Species[thermo.AirO2].W
	cO := rho * y[thermo.AirO] / m.Species[thermo.AirO].W
	var o2diss *Reaction
	for _, r := range mech.Reactions {
		if r.Name == "O2+M=2O+M" {
			o2diss = r
		}
	}
	lnQ := math.Log(cO * cO / cO2)
	lnKc := mech.LnKc(o2diss, T)
	if math.Abs(lnQ-lnKc) > 0.01 {
		t.Errorf("mass-action quotient %g vs Kc %g", lnQ, lnKc)
	}
}
