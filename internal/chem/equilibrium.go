// Package chem provides the chemistry substrate of cataero: a Gibbs
// free-energy equilibrium solver built on the element-potential method, and
// finite-rate reaction mechanisms with two-temperature rate evaluation for
// nonequilibrium flows. Both share the per-unit-volume partition functions of
// the thermo package, so the kinetic steady state coincides with the Gibbs
// minimum by construction.
package chem

import (
	"fmt"
	"math"
	"sync"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// EquilibriumSolver computes equilibrium compositions for a fixed species
// set. It is safe for concurrent use: the solves themselves work on local
// state and the shared warm-start cache is mutex-guarded, so one solver can
// back many simultaneous session solves.
type EquilibriumSolver struct {
	Mix   *thermo.Mixture
	elems []string
	a     [][]float64 // a[e][s]: atoms of element e in species s
	z     []float64   // charge of species s
	ions  bool

	// warm-start element potentials from the previous successful solve,
	// guarded by warmMu (everything else is read-only after construction).
	warmMu sync.Mutex
	warm   []float64
	warmOK bool
}

// NewEquilibriumSolver builds a solver for the mixture's species set.
func NewEquilibriumSolver(m *thermo.Mixture) *EquilibriumSolver {
	elems := m.Elements()
	a := make([][]float64, len(elems))
	for e, name := range elems {
		a[e] = make([]float64, m.Len())
		for s, sp := range m.Species {
			a[e][s] = float64(sp.Elems[name])
		}
	}
	z := make([]float64, m.Len())
	ions := false
	for s, sp := range m.Species {
		z[s] = float64(sp.Charge)
		if sp.Charge != 0 {
			ions = true
		}
	}
	return &EquilibriumSolver{Mix: m, elems: elems, a: a, z: z, ions: ions}
}

// ElementDensities converts a reference composition (mass fractions y0 at
// density rho) into element number densities b_e (1/m^3).
func (eq *EquilibriumSolver) ElementDensities(rho float64, y0 []float64) []float64 {
	b := make([]float64, len(eq.elems))
	for s, sp := range eq.Mix.Species {
		if y0[s] == 0 {
			continue
		}
		ns := rho * y0[s] / sp.W * thermo.NA
		for e := range eq.elems {
			b[e] += eq.a[e][s] * ns
		}
	}
	return b
}

// CompositionRhoT returns equilibrium mass fractions at density rho (kg/m^3)
// and temperature T (K), for the elemental content implied by the reference
// mass fractions y0. The returned slice has one entry per mixture species.
func (eq *EquilibriumSolver) CompositionRhoT(rho, T float64, y0 []float64) ([]float64, error) {
	if rho <= 0 || T <= 0 {
		return nil, fmt.Errorf("chem: nonpositive state rho=%g T=%g", rho, T)
	}
	b := eq.ElementDensities(rho, y0)
	n, err := eq.solve(T, b)
	if err != nil {
		return nil, err
	}
	// Convert number densities to mass fractions.
	y := make([]float64, eq.Mix.Len())
	sum := 0.0
	for s, sp := range eq.Mix.Species {
		y[s] = n[s] * sp.W / thermo.NA
		sum += y[s]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("chem: zero total mass in equilibrium solve")
	}
	for s := range y {
		y[s] /= sum
	}
	return y, nil
}

// solve runs the element-potential Newton iteration at temperature T for
// element number densities b (1/m^3), returning species number densities.
func (eq *EquilibriumSolver) solve(T float64, b []float64) ([]float64, error) {
	ne := len(eq.elems)
	ns := eq.Mix.Len()

	// Active elements: those actually present.
	active := make([]bool, ne)
	bTot := 0.0
	var actIdx []int
	for e := range b {
		if b[e] > 0 {
			active[e] = true
			actIdx = append(actIdx, e)
			bTot += b[e]
		}
	}
	if bTot == 0 {
		return nil, fmt.Errorf("chem: no elements present")
	}
	// Active species: all constituent elements active.
	spActive := make([]bool, ns)
	anyIonActive := false
	for s, sp := range eq.Mix.Species {
		ok := true
		for e := range eq.elems {
			if eq.a[e][s] > 0 && !active[e] {
				ok = false
				break
			}
		}
		spActive[s] = ok
		if ok && sp.Charge > 0 {
			anyIonActive = true
		}
	}
	// The electron only participates when positive ions can form.
	useCharge := false
	for s, sp := range eq.Mix.Species {
		if sp.Name == "e-" {
			spActive[s] = anyIonActive && eq.ions
		}
	}
	useCharge = anyIonActive && eq.ions

	nA := len(actIdx)
	nu := nA
	if useCharge {
		nu++
	}

	lnq := make([]float64, ns)
	for s, sp := range eq.Mix.Species {
		if spActive[s] {
			lnq[s] = sp.LnQEffV(T)
		}
	}
	lnRef := math.Log(bTot)

	// nsOf evaluates species number densities for potentials pi.
	nVals := make([]float64, ns)
	nsOf := func(pi []float64) bool {
		for s := range nVals {
			nVals[s] = 0
			if !spActive[s] {
				continue
			}
			ex := lnq[s] - lnRef
			for k, e := range actIdx {
				ex += eq.a[e][s] * pi[k]
			}
			if useCharge {
				ex += eq.z[s] * pi[nA]
			}
			if ex > 500 {
				return false // overflow: reject this step
			}
			nVals[s] = math.Exp(ex) // in units of bTot
		}
		return true
	}

	resid := func(pi, f []float64) bool {
		if !nsOf(pi) {
			return false
		}
		for k, e := range actIdx {
			sum := 0.0
			for s := 0; s < ns; s++ {
				sum += eq.a[e][s] * nVals[s]
			}
			f[k] = sum - b[e]/bTot
		}
		if useCharge {
			sum := 0.0
			for s := 0; s < ns; s++ {
				sum += eq.z[s] * nVals[s]
			}
			f[nA] = sum
		}
		return true
	}

	// Atomic guess: all of each element in its monatomic neutral species.
	// Exact in the fully dissociated high-temperature limit.
	atomicGuess := func(pi []float64) {
		for k, e := range actIdx {
			atomIdx := -1
			for s, sp := range eq.Mix.Species {
				if !spActive[s] || sp.Charge != 0 {
					continue
				}
				if eq.a[e][s] == 1 && len(sp.Elems) == 1 {
					atomIdx = s
					break
				}
			}
			if atomIdx >= 0 {
				pi[k] = math.Log(b[e]/bTot) - (lnq[atomIdx] - lnRef)
			} else {
				pi[k] = 0
			}
		}
		if useCharge {
			pi[nA] = 0
		}
	}
	// Molecular guess: all of each element in its most stable pure-element
	// species (N2 for N, O2 for O, H2 for H, C3 for C, ...). Exact in the
	// cold undissociated limit for homonuclear carriers.
	molecularGuess := func(pi []float64) {
		for k, e := range actIdx {
			best, bestK := -1, 0.0
			bestE := math.Inf(1)
			for s, sp := range eq.Mix.Species {
				if !spActive[s] || sp.Charge != 0 || len(sp.Elems) != 1 {
					continue
				}
				kAtoms := eq.a[e][s]
				if kAtoms < 1 {
					continue
				}
				perAtom := sp.Hf0 * sp.W / kAtoms
				if perAtom < bestE {
					bestE, best, bestK = perAtom, s, kAtoms
				}
			}
			if best >= 0 {
				pi[k] = (math.Log(b[e]/(bestK*bTot)) - (lnq[best] - lnRef)) / bestK
			} else {
				pi[k] = 0
			}
		}
		if useCharge {
			pi[nA] = 0
		}
	}

	pi := make([]float64, nu)

	f := make([]float64, nu)
	J := make([]float64, nu*nu)
	dpi := make([]float64, nu)
	piT := make([]float64, nu)
	fT := make([]float64, nu)
	piv := make([]int, nu)

	newton := func() error {
		// If the guess overflows, shrink the potentials toward zero until it
		// evaluates; the line search then walks back up safely.
		for try := 0; !resid(pi, f); try++ {
			if try > 60 {
				return fmt.Errorf("chem: initial guess overflows")
			}
			for i := range pi {
				pi[i] *= 0.7
			}
		}
		// Worst-case cold multi-element systems (all of one element bound in
		// a cross-element molecule like CH4) need long potential walks; each
		// iteration is microseconds, so a generous cap is cheap insurance.
		for iter := 0; iter < 2500; iter++ {
			r0 := numerics.NormInf(f)
			if r0 < 1e-12 {
				return nil
			}
			// Analytic Jacobian: J_kl = sum_s a_k[s] a_l[s] n_s.
			for ki := 0; ki < nu; ki++ {
				var ak []float64
				if ki < nA {
					ak = eq.a[actIdx[ki]]
				} else {
					ak = eq.z
				}
				for li := 0; li < nu; li++ {
					var al []float64
					if li < nA {
						al = eq.a[actIdx[li]]
					} else {
						al = eq.z
					}
					sum := 0.0
					for s := 0; s < ns; s++ {
						if nVals[s] != 0 {
							sum += ak[s] * al[s] * nVals[s]
						}
					}
					J[ki*nu+li] = sum
				}
			}
			// Regularize empty rows (e.g. charge row when ions have
			// underflowed to zero) by pinning that potential.
			for k := 0; k < nu; k++ {
				if math.Abs(J[k*nu+k]) < 1e-250 {
					for l := 0; l < nu; l++ {
						J[k*nu+l] = 0
						J[l*nu+k] = 0
					}
					J[k*nu+k] = 1
					f[k] = 0
				}
			}
			copy(dpi, f)
			if err := numerics.SolveDenseInPlace(J, dpi, piv, nu); err != nil {
				return err
			}
			// Clamp the update to keep exponents sane.
			if s := numerics.NormInf(dpi); s > 8 {
				sc := 8 / s
				for i := range dpi {
					dpi[i] *= sc
				}
			}
			lam := 1.0
			ok := false
			for lam >= 1e-4 {
				for i := range pi {
					piT[i] = pi[i] - lam*dpi[i]
				}
				if resid(piT, fT) && numerics.NormInf(fT) < r0 {
					copy(pi, piT)
					copy(f, fT)
					ok = true
					break
				}
				lam *= 0.5
			}
			if !ok {
				// Accept a tiny step to escape flat regions.
				for i := range pi {
					pi[i] -= 1e-4 * dpi[i]
				}
				if !resid(pi, f) {
					return fmt.Errorf("chem: Newton step overflow at iter %d", iter)
				}
			}
		}
		if numerics.NormInf(f) < 1e-8 {
			return nil
		}
		return fmt.Errorf("chem: equilibrium Newton failed (|f|=%.3e, T=%g)", numerics.NormInf(f), T)
	}

	// Try guesses in order of expected quality: warm start from the previous
	// solve, then the molecular (cold-limit) guess, then the atomic
	// (hot-limit) guess.
	var err error
	tried := false
	eq.warmMu.Lock()
	if eq.warmOK && len(eq.warm) == nu {
		copy(pi, eq.warm)
		tried = true
	}
	eq.warmMu.Unlock()
	if tried {
		err = newton()
	}
	if !tried || err != nil {
		molecularGuess(pi)
		err = newton()
	}
	if err != nil {
		atomicGuess(pi)
		err = newton()
	}
	if err != nil {
		eq.warmMu.Lock()
		eq.warmOK = false
		eq.warmMu.Unlock()
		return nil, err
	}
	eq.warmMu.Lock()
	if eq.warm == nil || len(eq.warm) != nu {
		eq.warm = make([]float64, nu)
	}
	copy(eq.warm, pi)
	eq.warmOK = true
	eq.warmMu.Unlock()

	// Return absolute number densities.
	out := make([]float64, ns)
	if !nsOf(pi) {
		return nil, fmt.Errorf("chem: final state overflow")
	}
	for s := range out {
		out[s] = nVals[s] * bTot
	}
	return out, nil
}

// CompositionPT returns equilibrium mass fractions and the mixture density at
// pressure p (Pa) and temperature T (K) for the element content of y0.
func (eq *EquilibriumSolver) CompositionPT(p, T float64, y0 []float64) (y []float64, rho float64, err error) {
	if p <= 0 || T <= 0 {
		return nil, 0, fmt.Errorf("chem: nonpositive state p=%g T=%g", p, T)
	}
	// Initial density guess from the reference composition.
	rho = eq.Mix.Density(p, T, y0)
	for iter := 0; iter < 60; iter++ {
		y, err = eq.CompositionRhoT(rho, T, y0)
		if err != nil {
			return nil, 0, err
		}
		pGot := eq.Mix.Pressure(rho, T, y)
		f := pGot/p - 1
		if math.Abs(f) < 1e-10 {
			return y, rho, nil
		}
		// p is nearly proportional to rho at fixed T; secant-like update
		// with damping handles the composition shift.
		fac := p / pGot
		fac = numerics.Clamp(fac, 0.3, 3)
		rho *= fac
	}
	return y, rho, fmt.Errorf("chem: CompositionPT failed to converge at p=%g T=%g", p, T)
}

// EnthalpyPT returns the equilibrium specific enthalpy at (p, T).
func (eq *EquilibriumSolver) EnthalpyPT(p, T float64, y0 []float64) (float64, error) {
	y, _, err := eq.CompositionPT(p, T, y0)
	if err != nil {
		return 0, err
	}
	return eq.Mix.Enthalpy(T, y), nil
}

// TemperaturePH inverts h_eq(p,T) = h for T by bracketed bisection/secant.
// Returns temperature, composition and density.
func (eq *EquilibriumSolver) TemperaturePH(p, h float64, y0 []float64) (T float64, y []float64, rho float64, err error) {
	lo, hi := 150.0, 40000.0
	f := func(T float64) (float64, []float64, float64, error) {
		yy, r, e := eq.CompositionPT(p, T, y0)
		if e != nil {
			return 0, nil, 0, e
		}
		return eq.Mix.Enthalpy(T, yy) - h, yy, r, nil
	}
	flo, _, _, err := f(lo)
	if err != nil {
		return 0, nil, 0, err
	}
	fhi, _, _, err := f(hi)
	if err != nil {
		return 0, nil, 0, err
	}
	if flo > 0 {
		// Enthalpy below the low bracket: return the bracket edge.
		y, rho, err = eq.CompositionPT(p, lo, y0)
		return lo, y, rho, err
	}
	if fhi < 0 {
		y, rho, err = eq.CompositionPT(p, hi, y0)
		return hi, y, rho, err
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		fm, ym, rm, e := f(mid)
		if e != nil {
			return 0, nil, 0, e
		}
		if math.Abs(fm) < 1e-7*math.Abs(h)+1e-3 {
			return mid, ym, rm, nil
		}
		if fm > 0 {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-3 {
			return mid, ym, rm, nil
		}
	}
	return 0, nil, 0, fmt.Errorf("chem: TemperaturePH failed at p=%g h=%g", p, h)
}

// TemperatureRhoE inverts e_eq(rho,T) = e for T. Returns temperature and the
// equilibrium composition. T0 is an optional starting guess.
func (eq *EquilibriumSolver) TemperatureRhoE(rho, e float64, y0 []float64, T0 float64) (T float64, y []float64, err error) {
	lo, hi := 150.0, 40000.0
	g := func(T float64) (float64, []float64, error) {
		yy, er := eq.CompositionRhoT(rho, T, y0)
		if er != nil {
			return 0, nil, er
		}
		return eq.Mix.EInternal(T, yy) - e, yy, nil
	}
	// Fast path: local secant around T0 when provided.
	if T0 > lo && T0 < hi {
		T1 := T0
		f1, y1, er := g(T1)
		if er == nil {
			if math.Abs(f1) < 1e-9*math.Abs(e)+1e-3 {
				return T1, y1, nil
			}
			T2 := T1 * 1.01
			for i := 0; i < 30; i++ {
				f2, y2, er2 := g(T2)
				if er2 != nil {
					break
				}
				if math.Abs(f2) < 1e-9*math.Abs(e)+1e-3 {
					return T2, y2, nil
				}
				if f2 == f1 {
					break
				}
				T3 := T2 - f2*(T2-T1)/(f2-f1)
				if T3 < lo || T3 > hi || math.IsNaN(T3) {
					break
				}
				T1, f1 = T2, f2
				T2 = T3
				_ = y2
			}
		}
	}
	// Robust path: bisection.
	flo, _, er := g(lo)
	if er != nil {
		return 0, nil, er
	}
	if flo > 0 {
		y, er = eq.CompositionRhoT(rho, lo, y0)
		return lo, y, er
	}
	fhi, _, er := g(hi)
	if er != nil {
		return 0, nil, er
	}
	if fhi < 0 {
		y, er = eq.CompositionRhoT(rho, hi, y0)
		return hi, y, er
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		fm, ym, e2 := g(mid)
		if e2 != nil {
			return 0, nil, e2
		}
		if math.Abs(fm) < 1e-8*math.Abs(e)+1e-3 || hi-lo < 1e-3 {
			return mid, ym, nil
		}
		if fm > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0, nil, fmt.Errorf("chem: TemperatureRhoE failed at rho=%g e=%g", rho, e)
}
