package chem

import "cataero/internal/thermo"

// Park-style 11-species air mechanism (representative of Park 1985/1990).
// Rates are stored in SI molar units: bimolecular A in m^3/(mol s) after the
// 1e-6 conversion from the customary cm^3/(mol s). Dissociation reactions
// use Park's geometric-mean controlling temperature sqrt(T*Tv); electron
// impact ionization uses the electron (vibrational) temperature.

// airEff builds a third-body efficiency table: base 1.0 for molecules, with
// the atom and electron multipliers applied to the matching species.
func airEff(atomFac, eFac float64) []float64 {
	eff := make([]float64, thermo.NAir11)
	for i := range eff {
		eff[i] = 1
	}
	eff[thermo.AirN] = atomFac
	eff[thermo.AirO] = atomFac
	eff[thermo.AirNp] = atomFac
	eff[thermo.AirOp] = atomFac
	eff[thermo.AirE] = eFac
	return eff
}

// AirMechanism returns the two-temperature ionizing-air mechanism for the
// 11-species air mixture (indices must match thermo.AirSpecies11).
func AirMechanism(m *thermo.Mixture) (*Mechanism, error) {
	const c = 1e-6 // cm^3/(mol s) -> m^3/(mol s)
	r := []*Reaction{
		{
			Name: "N2+M=2N+M",
			LHS:  []Stoich{{thermo.AirN2, 1}},
			RHS:  []Stoich{{thermo.AirN, 2}},
			A:    7.0e21 * c, N: -1.6, Theta: 113200, TMode: TaGeom,
			ThirdBody: true, Eff: airEff(4.29, 1700),
		},
		{
			Name: "O2+M=2O+M",
			LHS:  []Stoich{{thermo.AirO2, 1}},
			RHS:  []Stoich{{thermo.AirO, 2}},
			A:    2.0e21 * c, N: -1.5, Theta: 59500, TMode: TaGeom,
			ThirdBody: true, Eff: airEff(5.0, 1),
		},
		{
			Name: "NO+M=N+O+M",
			LHS:  []Stoich{{thermo.AirNO, 1}},
			RHS:  []Stoich{{thermo.AirN, 1}, {thermo.AirO, 1}},
			A:    5.0e15 * c, N: 0, Theta: 75500, TMode: TaGeom,
			ThirdBody: true, Eff: airEff(22.0, 1),
		},
		{
			Name: "N2+O=NO+N",
			LHS:  []Stoich{{thermo.AirN2, 1}, {thermo.AirO, 1}},
			RHS:  []Stoich{{thermo.AirNO, 1}, {thermo.AirN, 1}},
			A:    6.4e17 * c, N: -1.0, Theta: 38400,
		},
		{
			Name: "NO+O=O2+N",
			LHS:  []Stoich{{thermo.AirNO, 1}, {thermo.AirO, 1}},
			RHS:  []Stoich{{thermo.AirO2, 1}, {thermo.AirN, 1}},
			A:    8.4e12 * c, N: 0, Theta: 19450,
		},
		{
			Name: "N+O=NO++e-",
			LHS:  []Stoich{{thermo.AirN, 1}, {thermo.AirO, 1}},
			RHS:  []Stoich{{thermo.AirNOp, 1}, {thermo.AirE, 1}},
			A:    8.8e8 * c, N: 1.0, Theta: 31900,
		},
		{
			Name: "O+O=O2++e-",
			LHS:  []Stoich{{thermo.AirO, 2}},
			RHS:  []Stoich{{thermo.AirO2p, 1}, {thermo.AirE, 1}},
			A:    7.1e2 * c, N: 2.7, Theta: 80600,
		},
		{
			Name: "N+N=N2++e-",
			LHS:  []Stoich{{thermo.AirN, 2}},
			RHS:  []Stoich{{thermo.AirN2p, 1}, {thermo.AirE, 1}},
			A:    4.4e7 * c, N: 1.5, Theta: 67500,
		},
		{
			Name: "N+e-=N++2e-",
			LHS:  []Stoich{{thermo.AirN, 1}, {thermo.AirE, 1}},
			RHS:  []Stoich{{thermo.AirNp, 1}, {thermo.AirE, 2}},
			A:    2.5e34 * c, N: -3.82, Theta: 168600, TMode: TElectron,
		},
		{
			Name: "O+e-=O++2e-",
			LHS:  []Stoich{{thermo.AirO, 1}, {thermo.AirE, 1}},
			RHS:  []Stoich{{thermo.AirOp, 1}, {thermo.AirE, 2}},
			A:    3.9e33 * c, N: -3.78, Theta: 158500, TMode: TElectron,
		},
		{
			Name: "O++N2=N2++O",
			LHS:  []Stoich{{thermo.AirOp, 1}, {thermo.AirN2, 1}},
			RHS:  []Stoich{{thermo.AirN2p, 1}, {thermo.AirO, 1}},
			A:    9.1e11 * c, N: 0.36, Theta: 22800,
		},
		{
			Name: "NO++N=N2++O",
			LHS:  []Stoich{{thermo.AirNOp, 1}, {thermo.AirN, 1}},
			RHS:  []Stoich{{thermo.AirN2p, 1}, {thermo.AirO, 1}},
			A:    7.2e13 * c, N: 0, Theta: 35500,
		},
		{
			Name: "NO++O2=O2++NO",
			LHS:  []Stoich{{thermo.AirNOp, 1}, {thermo.AirO2, 1}},
			RHS:  []Stoich{{thermo.AirO2p, 1}, {thermo.AirNO, 1}},
			A:    2.4e13 * c, N: 0.41, Theta: 32600,
		},
		{
			Name: "NO++N=O++N2",
			LHS:  []Stoich{{thermo.AirNOp, 1}, {thermo.AirN, 1}},
			RHS:  []Stoich{{thermo.AirOp, 1}, {thermo.AirN2, 1}},
			A:    3.4e13 * c, N: -1.08, Theta: 12800,
		},
		{
			Name: "N2++N=N++N2",
			LHS:  []Stoich{{thermo.AirN2p, 1}, {thermo.AirN, 1}},
			RHS:  []Stoich{{thermo.AirNp, 1}, {thermo.AirN2, 1}},
			A:    1.0e12 * c, N: 0.5, Theta: 12200,
		},
		{
			Name: "O2++O=O++O2",
			LHS:  []Stoich{{thermo.AirO2p, 1}, {thermo.AirO, 1}},
			RHS:  []Stoich{{thermo.AirOp, 1}, {thermo.AirO2, 1}},
			A:    4.0e12 * c, N: -0.09, Theta: 18000,
		},
	}
	return NewMechanism(m, r)
}
