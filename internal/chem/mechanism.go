package chem

import (
	"fmt"
	"math"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// RateTMode selects the controlling temperature of a forward rate in the
// two-temperature model.
type RateTMode int

const (
	// TTrans evaluates the rate at the heavy-particle temperature T.
	TTrans RateTMode = iota
	// TaGeom evaluates at Park's geometric mean sqrt(T*Tv) (dissociation).
	TaGeom
	// TElectron evaluates at the electron/vibrational temperature Tv.
	TElectron
)

// Stoich is one species participation in a reaction.
type Stoich struct {
	Sp int     // species index in the mixture
	Nu float64 // stoichiometric coefficient (positive)
}

// Reaction is an elementary reversible reaction with a modified-Arrhenius
// forward rate kf = A T^N exp(-Theta/T) (SI: mol, m^3, s) and a backward
// rate from the partition-function equilibrium constant.
type Reaction struct {
	Name      string
	LHS, RHS  []Stoich
	A         float64 // pre-exponential, m^3/(mol s) per reaction order
	N         float64 // temperature exponent
	Theta     float64 // activation temperature, K
	TMode     RateTMode
	ThirdBody bool
	Eff       []float64 // per-species third-body efficiency (len = n species)
}

// Kf returns the forward rate coefficient at controlling temperature Tc.
func (r *Reaction) Kf(Tc float64) float64 {
	if Tc <= 0 {
		return 0
	}
	return r.A * math.Pow(Tc, r.N) * math.Exp(-r.Theta/Tc)
}

// ControllingT returns the temperature at which the forward rate is
// evaluated in the two-temperature model.
func (r *Reaction) ControllingT(T, Tv float64) float64 {
	switch r.TMode {
	case TaGeom:
		if Tv <= 0 {
			return T
		}
		return math.Sqrt(T * Tv)
	case TElectron:
		if Tv <= 0 {
			return T
		}
		return Tv
	default:
		return T
	}
}

// Mechanism bundles a mixture with its reaction set and provides source-term
// evaluation. Safe for concurrent read-only use after construction.
type Mechanism struct {
	Mix       *thermo.Mixture
	Reactions []*Reaction
}

// NewMechanism validates and wraps a reaction set.
func NewMechanism(m *thermo.Mixture, rxns []*Reaction) (*Mechanism, error) {
	for _, r := range rxns {
		// Element and charge balance check.
		elems := map[string]float64{}
		charge := 0.0
		for _, st := range r.LHS {
			sp := m.Species[st.Sp]
			for e, k := range sp.Elems {
				elems[e] += st.Nu * float64(k)
			}
			charge += st.Nu * float64(sp.Charge)
		}
		for _, st := range r.RHS {
			sp := m.Species[st.Sp]
			for e, k := range sp.Elems {
				elems[e] -= st.Nu * float64(k)
			}
			charge -= st.Nu * float64(sp.Charge)
		}
		for e, v := range elems {
			if math.Abs(v) > 1e-9 {
				return nil, fmt.Errorf("chem: reaction %q unbalanced in element %s (%+g)", r.Name, e, v)
			}
		}
		if math.Abs(charge) > 1e-9 {
			return nil, fmt.Errorf("chem: reaction %q unbalanced in charge (%+g)", r.Name, charge)
		}
		if r.ThirdBody && len(r.Eff) != m.Len() {
			return nil, fmt.Errorf("chem: reaction %q third-body efficiencies length %d != %d", r.Name, len(r.Eff), m.Len())
		}
	}
	return &Mechanism{Mix: m, Reactions: rxns}, nil
}

// LnKc returns ln of the molar equilibrium constant of reaction r at
// temperature T, from per-unit-volume partition functions:
// ln Kc = sum_products nu (ln q - ln NA) - sum_reactants nu (ln q - ln NA).
func (mech *Mechanism) LnKc(r *Reaction, T float64) float64 {
	ln := 0.0
	for _, st := range r.RHS {
		ln += st.Nu * (mech.Mix.Species[st.Sp].LnQEffV(T) - math.Log(thermo.NA))
	}
	for _, st := range r.LHS {
		ln -= st.Nu * (mech.Mix.Species[st.Sp].LnQEffV(T) - math.Log(thermo.NA))
	}
	return ln
}

// Production fills wdot (mol/(m^3 s), one per species) with the net chemical
// production rates at density rho, temperatures (T, Tv) and mass fractions y.
// Returns the molar concentrations used (mol/m^3) for reuse by callers.
func (mech *Mechanism) Production(rho, T, Tv float64, y []float64, wdot []float64) []float64 {
	nsp := mech.Mix.Len()
	c := make([]float64, nsp)
	for s, sp := range mech.Mix.Species {
		if y[s] > 0 {
			c[s] = rho * y[s] / sp.W
		}
	}
	for s := range wdot {
		wdot[s] = 0
	}
	for _, r := range mech.Reactions {
		Tc := r.ControllingT(T, Tv)
		kf := r.Kf(Tc)
		if kf == 0 {
			continue
		}
		lnKc := mech.LnKc(r, T)
		// Clamp the equilibrium constant so kb stays finite; beyond the
		// clamp the reaction is driven overwhelmingly in one direction and
		// the exact magnitude of the reverse rate is irrelevant.
		kb := kf * math.Exp(-numerics.Clamp(lnKc, -250, 600))
		fwd := kf
		for _, st := range r.LHS {
			fwd *= powNu(c[st.Sp], st.Nu)
		}
		bwd := kb
		for _, st := range r.RHS {
			bwd *= powNu(c[st.Sp], st.Nu)
		}
		rate := fwd - bwd
		if r.ThirdBody {
			tb := 0.0
			for s := 0; s < nsp; s++ {
				tb += r.Eff[s] * c[s]
			}
			rate *= tb
		}
		if rate == 0 || math.IsNaN(rate) {
			continue
		}
		for _, st := range r.LHS {
			wdot[st.Sp] -= st.Nu * rate
		}
		for _, st := range r.RHS {
			wdot[st.Sp] += st.Nu * rate
		}
	}
	return c
}

func powNu(c, nu float64) float64 {
	if nu == 1 {
		return c
	}
	if nu == 2 {
		return c * c
	}
	return math.Pow(c, nu)
}

// MassProduction fills dydt with dY_s/dt = wdot_s W_s / rho (1/s).
func (mech *Mechanism) MassProduction(rho, T, Tv float64, y, dydt []float64) {
	wdot := make([]float64, mech.Mix.Len())
	mech.Production(rho, T, Tv, y, wdot)
	for s, sp := range mech.Mix.Species {
		dydt[s] = wdot[s] * sp.W / rho
	}
}

// VibSource returns the vibrational-electronic energy source (W/m^3):
// Landau-Teller translational-vibrational relaxation for molecules,
// collision-limited relaxation of the electronic (and free-electron
// translational) energy toward the heavy-particle temperature, plus the
// pool energy carried by chemical production (non-preferential model).
//
//	Q = sum_s rho_s (epool_s(T) - epool_s(Tv))/tau_s
//	  + sum_s wdot_s W_s epool_s(Tv)
func (mech *Mechanism) VibSource(rho, p, T, Tv float64, y, wdot []float64) float64 {
	m := mech.Mix
	x := m.MoleFractions(y)
	nTot := p / (thermo.KB * T)
	Q := 0.0
	for s, sp := range m.Species {
		if y[s] <= 0 {
			continue
		}
		var poolT, poolTv, tau float64
		switch {
		case sp.Name == "e-":
			poolT = 1.5 * sp.R() * T
			poolTv = 1.5 * sp.R() * Tv
			tau = thermo.ParkCollisionTau(sp, T, nTot)
		case sp.IsMolecule():
			poolT = sp.EVib(T) + sp.EElec(T)
			poolTv = sp.EVib(Tv) + sp.EElec(Tv)
			tau = thermo.RelaxationTime(m, sp, T, p, x)
		default:
			poolT = sp.EElec(T)
			poolTv = sp.EElec(Tv)
			if poolT == 0 && poolTv == 0 {
				continue
			}
			tau = thermo.ParkCollisionTau(sp, T, nTot)
		}
		if !math.IsInf(tau, 1) && tau > 0 {
			Q += rho * y[s] * (poolT - poolTv) / tau
		}
	}
	if wdot != nil {
		for s, sp := range m.Species {
			if wdot[s] == 0 {
				continue
			}
			ev := sp.EVib(Tv) + sp.EElec(Tv)
			if sp.Name == "e-" {
				ev = 1.5 * sp.R() * Tv
			}
			Q += wdot[s] * sp.W * ev
		}
	}
	return Q
}
