package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

func mechSetup(t *testing.T) (*thermo.Mixture, *Mechanism, []float64) {
	t.Helper()
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, mech, thermo.AirFreestreamMassFractions(m.Species)
}

func TestMechanismBalanced(t *testing.T) {
	// NewMechanism validates element/charge balance; construction succeeding
	// is the assertion. Also check a deliberately broken reaction fails.
	m, _, _ := mechSetup(t)
	bad := &Reaction{
		Name: "N2=N", // unbalanced
		LHS:  []Stoich{{thermo.AirN2, 1}},
		RHS:  []Stoich{{thermo.AirN, 1}},
		A:    1,
	}
	if _, err := NewMechanism(m, []*Reaction{bad}); err == nil {
		t.Error("unbalanced reaction accepted")
	}
	badQ := &Reaction{
		Name: "N=N+", // charge unbalanced
		LHS:  []Stoich{{thermo.AirN, 1}},
		RHS:  []Stoich{{thermo.AirNp, 1}},
		A:    1,
	}
	if _, err := NewMechanism(m, []*Reaction{badQ}); err == nil {
		t.Error("charge-unbalanced reaction accepted")
	}
}

// Property: chemical source terms conserve mass exactly:
// sum_s wdot_s W_s = 0 for any state.
func TestProductionConservesMass(t *testing.T) {
	m, mech, _ := mechSetup(t)
	wdot := make([]float64, m.Len())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		y := make([]float64, m.Len())
		for i := range y {
			y[i] = r.Float64()
		}
		thermo.Normalize(y)
		rho := math.Exp(r.Float64()*6 - 5)
		T := 1000 + r.Float64()*19000
		Tv := 1000 + r.Float64()*19000
		mech.Production(rho, T, Tv, y, wdot)
		sum, scale := 0.0, 0.0
		for s, sp := range m.Species {
			sum += wdot[s] * sp.W
			scale += math.Abs(wdot[s]) * sp.W
		}
		if scale == 0 {
			return true
		}
		return math.Abs(sum)/scale < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

// Property: source terms conserve charge: sum_s wdot_s * charge_s = 0.
func TestProductionConservesCharge(t *testing.T) {
	m, mech, _ := mechSetup(t)
	wdot := make([]float64, m.Len())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		y := make([]float64, m.Len())
		for i := range y {
			y[i] = r.Float64()
		}
		thermo.Normalize(y)
		mech.Production(0.01, 9000, 8000, y, wdot)
		sum, scale := 0.0, 0.0
		for s, sp := range m.Species {
			sum += wdot[s] * float64(sp.Charge)
			scale += math.Abs(wdot[s] * float64(sp.Charge))
		}
		if scale == 0 {
			return true
		}
		return math.Abs(sum)/scale < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumIsKineticFixedPoint(t *testing.T) {
	// The central consistency property of the chem package: at the Gibbs
	// equilibrium composition, every reaction's net rate vanishes (relative
	// to its gross forward rate), because kb = kf/Kc uses the same
	// partition functions as the Gibbs solver.
	m, mech, y0 := mechSetup(t)
	eq := NewEquilibriumSolver(m)
	for _, T := range []float64{4000, 8000, 12000} {
		rho := 0.01
		y, err := eq.CompositionRhoT(rho, T, y0)
		if err != nil {
			t.Fatal(err)
		}
		wdot := make([]float64, m.Len())
		c := mech.Production(rho, T, T, y, wdot)
		// Compare the net production of each species with the gross rates.
		for _, r := range mech.Reactions {
			kf := r.Kf(T)
			fwd := kf
			for _, st := range r.LHS {
				fwd *= math.Pow(c[st.Sp], st.Nu)
			}
			kb := kf / math.Exp(mech.LnKc(r, T))
			bwd := kb
			for _, st := range r.RHS {
				bwd *= math.Pow(c[st.Sp], st.Nu)
			}
			gross := math.Max(fwd, bwd)
			if gross < 1e-30 {
				continue
			}
			if math.Abs(fwd-bwd)/gross > 1e-4 {
				t.Errorf("T=%g reaction %s not balanced at equilibrium: fwd=%g bwd=%g",
					T, r.Name, fwd, bwd)
			}
		}
	}
}

func TestKineticRelaxationReachesEquilibrium(t *testing.T) {
	// Integrate dY/dt = S(Y) at fixed rho, T from frozen air and verify the
	// stiff integrator lands on the Gibbs composition.
	m, mech, y0 := mechSetup(t)
	eq := NewEquilibriumSolver(m)
	rho, T := 0.02, 6000.0
	yEq, err := eq.CompositionRhoT(rho, T, y0)
	if err != nil {
		t.Fatal(err)
	}
	y := append([]float64(nil), y0...)
	stepper := numerics.NewStiffStepper(m.Len(), func(y, dydt []float64) {
		yc := make([]float64, len(y))
		copy(yc, y)
		for i := range yc {
			if yc[i] < 0 {
				yc[i] = 0
			}
		}
		mech.MassProduction(rho, T, T, yc, dydt)
	})
	if err := stepper.Integrate(y, 0.05, 1e-5); err != nil {
		t.Fatal(err)
	}
	for i, sp := range m.Species {
		if yEq[i] > 1e-4 {
			if rel := math.Abs(y[i]-yEq[i]) / yEq[i]; rel > 0.05 {
				t.Errorf("species %s: kinetic %g vs Gibbs %g (rel %g)", sp.Name, y[i], yEq[i], rel)
			}
		}
	}
}

func TestDissociationRateIncreasesWithT(t *testing.T) {
	_, mech, _ := mechSetup(t)
	r := mech.Reactions[0] // N2+M
	if r.Kf(4000) >= r.Kf(8000) {
		t.Error("N2 dissociation rate should grow with T")
	}
	if r.Kf(0) != 0 {
		t.Error("rate at T=0 should be 0")
	}
}

func TestControllingTemperature(t *testing.T) {
	_, mech, _ := mechSetup(t)
	var diss, ei *Reaction
	for _, r := range mech.Reactions {
		if r.TMode == TaGeom && diss == nil {
			diss = r
		}
		if r.TMode == TElectron && ei == nil {
			ei = r
		}
	}
	if diss == nil || ei == nil {
		t.Fatal("mechanism missing TaGeom or TElectron reactions")
	}
	if got := diss.ControllingT(10000, 2500); math.Abs(got-5000) > 1e-9 {
		t.Errorf("Ta=%g want 5000", got)
	}
	if got := ei.ControllingT(10000, 2500); got != 2500 {
		t.Errorf("Te=%g want 2500", got)
	}
	// Tv=0 falls back to T.
	if got := diss.ControllingT(10000, 0); got != 10000 {
		t.Errorf("Ta fallback=%g want 10000", got)
	}
}

func TestVibSourceSignAndEquilibrium(t *testing.T) {
	m, mech, y0 := mechSetup(t)
	rho, p := 0.01, 5000.0
	// Tv < T: vibrational pool must be heated (Q > 0).
	Q := mech.VibSource(rho, p, 10000, 2000, y0, nil)
	if Q <= 0 {
		t.Errorf("Q=%g should be positive when Tv<T", Q)
	}
	// Tv > T: pool cools.
	if Q := mech.VibSource(rho, p, 2000, 10000, y0, nil); Q >= 0 {
		t.Errorf("Q=%g should be negative when Tv>T", Q)
	}
	// Tv == T: Landau-Teller term vanishes.
	if Q := mech.VibSource(rho, p, 5000, 5000, y0, nil); math.Abs(Q) > 1e-6 {
		t.Errorf("Q=%g should vanish at Tv=T", Q)
	}
	_ = m
}

func TestVibSourceChemistryCoupling(t *testing.T) {
	// Dissociation (negative wdot for N2) removes vibrational energy.
	m, mech, _ := mechSetup(t)
	y := make([]float64, m.Len())
	y[thermo.AirN2] = 1
	wdot := make([]float64, m.Len())
	wdot[thermo.AirN2] = -1 // mol/m^3/s disappearing
	wdot[thermo.AirN] = 2
	T := 8000.0
	Qchem := mech.VibSource(0.01, 1000, T, T, y, wdot) // Tv=T kills LT term
	if Qchem >= 0 {
		t.Errorf("dissociation should drain the vibrational pool, Q=%g", Qchem)
	}
}
