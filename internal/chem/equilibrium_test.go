package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cataero/internal/thermo"
)

func airSetup() (*thermo.Mixture, *EquilibriumSolver, []float64) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := NewEquilibriumSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	return m, eq, y0
}

func TestEquilibriumColdAirUnchanged(t *testing.T) {
	m, eq, y0 := airSetup()
	y, err := eq.CompositionRhoT(1.2, 300, y0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MoleFractions(y)
	if math.Abs(x[thermo.AirN2]-0.788) > 0.01 {
		t.Errorf("x(N2)=%g want ~0.79", x[thermo.AirN2])
	}
	if math.Abs(x[thermo.AirO2]-0.21) > 0.01 {
		t.Errorf("x(O2)=%g want ~0.21", x[thermo.AirO2])
	}
	for i, v := range x {
		if i != thermo.AirN2 && i != thermo.AirO2 && v > 1e-8 {
			t.Errorf("species %s unexpectedly present: x=%g", m.Species[i].Name, v)
		}
	}
}

func TestEquilibriumO2DissociationAt4000K(t *testing.T) {
	m, eq, y0 := airSetup()
	// 1 atm, 4000 K: O2 mostly dissociated, N2 essentially intact.
	y, _, err := eq.CompositionPT(thermo.AtmPa, 4000, y0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MoleFractions(y)
	if x[thermo.AirO2] > 0.05 {
		t.Errorf("x(O2)=%g should be small at 4000K/1atm", x[thermo.AirO2])
	}
	if x[thermo.AirO] < 0.15 {
		t.Errorf("x(O)=%g should be large at 4000K", x[thermo.AirO])
	}
	if x[thermo.AirN2] < 0.65 {
		t.Errorf("x(N2)=%g should remain large at 4000K", x[thermo.AirN2])
	}
	// NO peaks in this regime at the percent level.
	if x[thermo.AirNO] < 1e-3 || x[thermo.AirNO] > 0.1 {
		t.Errorf("x(NO)=%g outside percent-level band", x[thermo.AirNO])
	}
}

func TestEquilibriumN2DissociationAt8000K(t *testing.T) {
	m, eq, y0 := airSetup()
	y, _, err := eq.CompositionPT(thermo.AtmPa, 8000, y0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MoleFractions(y)
	if x[thermo.AirN2] > 0.35 {
		t.Errorf("x(N2)=%g should be heavily dissociated at 8000K", x[thermo.AirN2])
	}
	if x[thermo.AirN] < 0.4 {
		t.Errorf("x(N)=%g should dominate at 8000K", x[thermo.AirN])
	}
	// Trace ionization begins.
	if x[thermo.AirE] < 1e-6 || x[thermo.AirE] > 0.05 {
		t.Errorf("x(e-)=%g outside trace band at 8000K", x[thermo.AirE])
	}
}

func TestEquilibriumIonizationAt15000K(t *testing.T) {
	m, eq, y0 := airSetup()
	y, _, err := eq.CompositionPT(thermo.AtmPa, 15000, y0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MoleFractions(y)
	if x[thermo.AirE] < 0.02 {
		t.Errorf("x(e-)=%g should be substantial at 15000K", x[thermo.AirE])
	}
	// Molecules essentially gone.
	if x[thermo.AirN2]+x[thermo.AirO2] > 0.02 {
		t.Errorf("molecules remain at 15000K: N2=%g O2=%g", x[thermo.AirN2], x[thermo.AirO2])
	}
}

func TestEquilibriumChargeNeutrality(t *testing.T) {
	m, eq, y0 := airSetup()
	y, _, err := eq.CompositionPT(thermo.AtmPa, 12000, y0)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumberDensities(1, y) // per unit mass; proportional is enough
	net, tot := 0.0, 0.0
	for i, sp := range m.Species {
		net += float64(sp.Charge) * n[i]
		tot += math.Abs(float64(sp.Charge)) * n[i]
	}
	if tot == 0 {
		t.Fatal("no ions at 12000K?")
	}
	if math.Abs(net)/tot > 1e-8 {
		t.Errorf("charge imbalance %g", net/tot)
	}
}

// Property: element mass is conserved by the equilibrium solve for random
// (rho, T) states.
func TestEquilibriumElementConservation(t *testing.T) {
	m, eq, y0 := airSetup()
	elemMass := func(y []float64) (mN, mO float64) {
		for s, sp := range m.Species {
			nMolPerKg := y[s] / sp.W
			mN += float64(sp.Elems["N"]) * nMolPerKg * 14.0067e-3
			mO += float64(sp.Elems["O"]) * nMolPerKg * 15.9994e-3
		}
		return
	}
	mN0, mO0 := elemMass(y0)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rho := math.Exp(r.Float64()*10 - 7) // 1e-3 .. 20 kg/m^3
		T := 300 + r.Float64()*14700
		y, err := eq.CompositionRhoT(rho, T, y0)
		if err != nil {
			return false
		}
		mN, mO := elemMass(y)
		return math.Abs(mN-mN0) < 1e-6*mN0 && math.Abs(mO-mO0) < 1e-6*mO0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

// Property: mass fractions are nonnegative and sum to one.
func TestEquilibriumMassFractionSanity(t *testing.T) {
	_, eq, y0 := airSetup()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rho := math.Exp(r.Float64()*8 - 6)
		T := 250 + r.Float64()*19750
		y, err := eq.CompositionRhoT(rho, T, y0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range y {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}

func TestCompositionPTMatchesPressure(t *testing.T) {
	m, eq, y0 := airSetup()
	for _, T := range []float64{500, 3000, 7000, 12000} {
		p := 5000.0
		y, rho, err := eq.CompositionPT(p, T, y0)
		if err != nil {
			t.Fatalf("T=%g: %v", T, err)
		}
		if got := m.Pressure(rho, T, y); math.Abs(got-p) > 1e-6*p {
			t.Errorf("T=%g: pressure %g want %g", T, got, p)
		}
	}
}

func TestDensityLoweringShiftsDissociation(t *testing.T) {
	// Le Chatelier: at fixed T, lower pressure favors dissociation.
	m, eq, y0 := airSetup()
	yLow, _, err := eq.CompositionPT(100, 5000, y0)
	if err != nil {
		t.Fatal(err)
	}
	yHigh, _, err := eq.CompositionPT(1e6, 5000, y0)
	if err != nil {
		t.Fatal(err)
	}
	xLow := m.MoleFractions(yLow)
	xHigh := m.MoleFractions(yHigh)
	if xLow[thermo.AirN2] >= xHigh[thermo.AirN2] {
		t.Errorf("N2 should dissociate more at low p: low=%g high=%g",
			xLow[thermo.AirN2], xHigh[thermo.AirN2])
	}
}

func TestTemperaturePHRoundTrip(t *testing.T) {
	_, eq, y0 := airSetup()
	p := 2e4
	for _, T := range []float64{2000, 6000, 11000} {
		h, err := eq.EnthalpyPT(p, T, y0)
		if err != nil {
			t.Fatal(err)
		}
		Tgot, _, _, err := eq.TemperaturePH(p, h, y0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(Tgot-T) > 0.01*T {
			t.Errorf("PH inversion: got %g want %g", Tgot, T)
		}
	}
}

func TestTemperatureRhoERoundTrip(t *testing.T) {
	m, eq, y0 := airSetup()
	rho := 0.01
	for _, T := range []float64{1000, 5000, 9000} {
		y, err := eq.CompositionRhoT(rho, T, y0)
		if err != nil {
			t.Fatal(err)
		}
		e := m.EInternal(T, y)
		Tgot, ygot, err := eq.TemperatureRhoE(rho, e, y0, 0.8*T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(Tgot-T) > 0.01*T {
			t.Errorf("RhoE inversion: got %g want %g", Tgot, T)
		}
		if math.Abs(ygot[thermo.AirN2]-y[thermo.AirN2]) > 1e-3 {
			t.Errorf("composition mismatch after inversion")
		}
	}
}

func TestEquilibriumPureN2(t *testing.T) {
	// Pure nitrogen: the O-bearing species must stay exactly zero.
	m, eq, _ := airSetup()
	y0 := make([]float64, m.Len())
	y0[thermo.AirN2] = 1
	y, err := eq.CompositionRhoT(0.1, 7000, y0)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range m.Species {
		if sp.Elems["O"] > 0 && y[i] != 0 {
			t.Errorf("O-bearing species %s present in pure N2: %g", sp.Name, y[i])
		}
	}
	if y[thermo.AirN] < 1e-4 {
		t.Errorf("N2 should partially dissociate at 7000K: y(N)=%g", y[thermo.AirN])
	}
}

func TestEquilibriumTitanComposition(t *testing.T) {
	m := thermo.NewMixture(thermo.TitanSpecies())
	eq := NewEquilibriumSolver(m)
	y0 := thermo.TitanFreestreamMassFractions(m.Species)
	// Cold Titan atmosphere: N2 + CH4 only.
	y, err := eq.CompositionRhoT(1e-3, 200, y0)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MoleFractions(y)
	if x[thermo.TiN2] < 0.9 || x[thermo.TiCH4] < 0.01 {
		t.Errorf("cold Titan composition wrong: N2=%g CH4=%g", x[thermo.TiN2], x[thermo.TiCH4])
	}
	// Shock-layer temperature: CH4 destroyed, H2/H/C2H2/HCN/CN formed.
	y, _, err = eq.CompositionPT(1e4, 6000, y0)
	if err != nil {
		t.Fatal(err)
	}
	x = m.MoleFractions(y)
	if x[thermo.TiCH4] > 1e-4 {
		t.Errorf("CH4 should be destroyed at 6000K: %g", x[thermo.TiCH4])
	}
	if x[thermo.TiH] < 0.01 {
		t.Errorf("atomic H should be abundant at 6000K: %g", x[thermo.TiH])
	}
	// CN is the radiating species for Titan entries; must be present.
	if x[thermo.TiCN] < 1e-6 {
		t.Errorf("CN missing at 6000K: %g", x[thermo.TiCN])
	}
}

func TestEquilibriumErrors(t *testing.T) {
	_, eq, y0 := airSetup()
	if _, err := eq.CompositionRhoT(-1, 300, y0); err == nil {
		t.Error("negative density should error")
	}
	if _, err := eq.CompositionRhoT(1, 0, y0); err == nil {
		t.Error("zero temperature should error")
	}
	if _, _, err := eq.CompositionPT(0, 300, y0); err == nil {
		t.Error("zero pressure should error")
	}
	zero := make([]float64, len(y0))
	if _, err := eq.CompositionRhoT(1, 300, zero); err == nil {
		t.Error("empty composition should error")
	}
}

func TestWarmStartConsistency(t *testing.T) {
	// Sweeping T up then down must give identical results (warm start must
	// not bias the converged answer).
	m, eq, y0 := airSetup()
	up := map[float64][]float64{}
	for _, T := range []float64{2000, 6000, 10000, 14000} {
		y, err := eq.CompositionRhoT(0.02, T, y0)
		if err != nil {
			t.Fatal(err)
		}
		up[T] = y
	}
	for _, T := range []float64{14000, 10000, 6000, 2000} {
		y, err := eq.CompositionRhoT(0.02, T, y0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-up[T][i]) > 1e-8 {
				t.Errorf("T=%g species %s: hysteresis %g vs %g", T, m.Species[i].Name, y[i], up[T][i])
			}
		}
	}
}
