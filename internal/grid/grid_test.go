package grid

import (
	"math"
	"testing"

	"cataero/internal/geometry"
)

func sphereGrid(t *testing.T, ni, nj int) *Grid2D {
	t.Helper()
	b := geometry.NewSphere(1.0)
	g, err := NewBlunt(b, b.MaxS(), ni, nj, func(s float64) float64 { return 0.3 }, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBluntGridShape(t *testing.T) {
	g := sphereGrid(t, 10, 20)
	if len(g.X) != 11 || len(g.X[0]) != 21 {
		t.Fatalf("node array shape %dx%d", len(g.X), len(g.X[0]))
	}
	// Wall nodes lie on the sphere.
	for i := 0; i <= g.NI; i++ {
		r := math.Hypot(g.X[i][0]-1.0, g.Y[i][0])
		if math.Abs(r-1.0) > 1e-9 {
			t.Errorf("wall node %d off sphere: r=%g", i, r)
		}
	}
	// Outer nodes at the prescribed standoff.
	for i := 0; i <= g.NI; i++ {
		if d := g.WallDistance(i); math.Abs(d-0.3) > 1e-9 {
			t.Errorf("standoff at %d: %g want 0.3", i, d)
		}
	}
	// Stagnation line points upstream (outer node has x < wall x).
	if g.X[0][g.NJ] >= g.X[0][0] {
		t.Error("outer boundary not upstream of the nose")
	}
}

func TestBluntGridWallClustering(t *testing.T) {
	g := sphereGrid(t, 6, 30)
	// First wall spacing much smaller than uniform.
	d0 := math.Hypot(g.X[0][1]-g.X[0][0], g.Y[0][1]-g.Y[0][0])
	uniform := 0.3 / 30
	if d0 >= uniform {
		t.Errorf("no wall clustering: d0=%g uniform=%g", d0, uniform)
	}
	if g.MinSpacing() <= 0 {
		t.Error("MinSpacing must be positive")
	}
}

func TestCellAreasPositive(t *testing.T) {
	g := sphereGrid(t, 12, 16)
	for i := 0; i < g.NI; i++ {
		for j := 0; j < g.NJ; j++ {
			if a := g.CellArea(i, j); a <= 0 {
				t.Fatalf("cell (%d,%d) area %g", i, j, a)
			}
			if v := g.CellVolume(i, j); v <= 0 {
				t.Fatalf("cell (%d,%d) volume %g", i, j, v)
			}
		}
	}
}

func TestAxisymmetricVolumeLarger(t *testing.T) {
	g := sphereGrid(t, 8, 8)
	aPlanar := g.CellVolume(4, 4)
	g.Axisymmetric = true
	aAxi := g.CellVolume(4, 4)
	_, yc := g.CellCenter(4, 4)
	if math.Abs(aAxi-aPlanar*yc) > 1e-12*aAxi {
		t.Errorf("axisymmetric volume %g want %g", aAxi, aPlanar*yc)
	}
}

// Divergence-free test: the face vectors of every closed cell sum to zero
// (planar case), the discrete Gauss identity every FV scheme relies on.
func TestFaceVectorsClose(t *testing.T) {
	g := sphereGrid(t, 9, 11)
	for i := 0; i < g.NI; i++ {
		for j := 0; j < g.NJ; j++ {
			// Outward fluxes: +i face minus -i face, +j minus -j.
			sxW, syW := g.FaceI(i, j)
			sxE, syE := g.FaceI(i+1, j)
			sxS, syS := g.FaceJ(i, j)
			sxN, syN := g.FaceJ(i, j+1)
			cx := sxE - sxW + sxN - sxS
			cy := syE - syW + syN - syS
			if math.Abs(cx) > 1e-12 || math.Abs(cy) > 1e-12 {
				t.Fatalf("cell (%d,%d) not closed: (%g,%g)", i, j, cx, cy)
			}
		}
	}
}

func TestGridErrors(t *testing.T) {
	b := geometry.NewSphere(1)
	if _, err := NewBlunt(b, b.MaxS(), 1, 5, func(s float64) float64 { return 0.1 }, 1.2); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := NewBlunt(b, 100, 5, 5, func(s float64) float64 { return 0.1 }, 1.2); err == nil {
		t.Error("sMax beyond body accepted")
	}
	if _, err := NewBlunt(b, b.MaxS(), 5, 5, func(s float64) float64 { return -1 }, 1.2); err == nil {
		t.Error("negative standoff accepted")
	}
}

func TestVariableStandoff(t *testing.T) {
	b := geometry.NewSphere(0.5)
	g, err := NewBlunt(b, b.MaxS(), 8, 8, func(s float64) float64 {
		return 0.1 + 0.2*s // grows along the body like a real shock layer
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if g.WallDistance(8) <= g.WallDistance(0) {
		t.Error("standoff should grow along the body")
	}
}
