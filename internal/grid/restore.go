package grid

import "fmt"

// RestoreNodes overwrites the grid's node coordinates from flattened
// row-major arrays (node (i, j) at index i*(NJ+1)+j) and invalidates the
// cached metrics, so the next Metrics call rebuilds them from the restored
// geometry. It is the checkpoint-restore counterpart of Refit: a march that
// re-fitted its outer boundary mid-solve checkpoints the refitted node
// positions, and a restore must reproduce them exactly — regenerating the
// grid from the stored standoff function would not, because the function is
// not serializable. The generation parameters (body, clustering, arc range)
// are kept, so the restored grid can still be re-fitted or coarsened.
func (g *Grid2D) RestoreNodes(x, y []float64) error {
	want := (g.NI + 1) * (g.NJ + 1)
	if len(x) != want || len(y) != want {
		return fmt.Errorf("grid: RestoreNodes needs %d nodes per coordinate, got %d/%d", want, len(x), len(y))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i <= g.NI; i++ {
		copy(g.X[i], x[i*(g.NJ+1):(i+1)*(g.NJ+1)])
		copy(g.Y[i], y[i*(g.NJ+1):(i+1)*(g.NJ+1)])
	}
	g.metrics = nil
	return nil
}
