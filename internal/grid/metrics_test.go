package grid

import (
	"math"
	"strings"
	"testing"

	"cataero/internal/geometry"
)

// Equivalence: cached metrics must match the on-the-fly geometry queries to
// machine precision, planar and axisymmetric.
func TestMetricsMatchOnTheFly(t *testing.T) {
	for _, axi := range []bool{false, true} {
		g := sphereGrid(t, 11, 13)
		g.Axisymmetric = axi
		m := g.Metrics()
		if m.Axisymmetric != axi {
			t.Fatalf("axi=%v: metrics flag %v", axi, m.Axisymmetric)
		}
		// checkFace asserts one cached (nx, ny, area) triplet reproduces the
		// on-the-fly area vector (sx, sy) to machine precision.
		checkFace := func(label string, i, j, k int, cache []float64, sx, sy float64) {
			t.Helper()
			mag := math.Hypot(sx, sy)
			if math.Abs(cache[k+2]-mag) > 1e-15*mag {
				t.Fatalf("axi=%v %s area (%d,%d): %g want %g", axi, label, i, j, cache[k+2], mag)
			}
			if mag > 0 {
				if math.Abs(cache[k]*mag-sx) > 1e-12*mag || math.Abs(cache[k+1]*mag-sy) > 1e-12*mag {
					t.Fatalf("axi=%v %s normal (%d,%d) inconsistent", axi, label, i, j)
				}
			}
		}
		for i := 0; i <= g.NI; i++ {
			for j := 0; j < g.NJ; j++ {
				sx, sy := g.FaceI(i, j)
				checkFace("FaceIN", i, j, 3*(i*m.NJ+j), m.FaceIN, sx, sy)
			}
		}
		for i := 0; i < g.NI; i++ {
			for j := 0; j <= g.NJ; j++ {
				sx, sy := g.FaceJ(i, j)
				checkFace("FaceJN", i, j, 3*(i*(m.NJ+1)+j), m.FaceJN, sx, sy)
			}
			for j := 0; j < g.NJ; j++ {
				k := i*m.NJ + j
				if v, w := m.Vol[k], g.CellVolume(i, j); v != w {
					t.Fatalf("axi=%v Vol(%d,%d): cached %g want %g", axi, i, j, v, w)
				}
				if a, w := m.Area[k], g.CellArea(i, j); a != w {
					t.Fatalf("axi=%v Area(%d,%d): cached %g want %g", axi, i, j, a, w)
				}
				wx, wy := g.CellCenter(i, j)
				if m.Cx[k] != wx || m.Cy[k] != wy {
					t.Fatalf("axi=%v Centroid(%d,%d): cached (%g,%g) want (%g,%g)", axi, i, j, m.Cx[k], m.Cy[k], wx, wy)
				}
			}
			// Interior J-face centroid spacings.
			for j := 1; j < g.NJ; j++ {
				xm, ym := g.CellCenter(i, j-1)
				xp, yp := g.CellCenter(i, j)
				want := math.Hypot(xp-xm, yp-ym)
				if d := m.JDist[i*(m.NJ+1)+j]; math.Abs(d-want) > 1e-15*want {
					t.Fatalf("axi=%v JDist(%d,%d): %g want %g", axi, i, j, d, want)
				}
			}
			// Wall half heights.
			dx := g.X[i][1] - g.X[i][0]
			dy := g.Y[i][1] - g.Y[i][0]
			if want := 0.5 * math.Hypot(dx, dy); m.WallHalf[i] != want {
				t.Fatalf("axi=%v WallHalf(%d): %g want %g", axi, i, m.WallHalf[i], want)
			}
		}
	}
}

// The cache must rebuild when the axisymmetric flag flips after first use.
func TestMetricsRebuildOnAxisymmetricChange(t *testing.T) {
	g := sphereGrid(t, 6, 6)
	planar := g.Metrics().Vol[3*6+3]
	g.Axisymmetric = true
	axi := g.Metrics().Vol[3*6+3]
	_, yc := g.CellCenter(3, 3)
	if math.Abs(axi-planar*yc) > 1e-12*axi {
		t.Errorf("stale metrics after flag change: %g want %g", axi, planar*yc)
	}
	// Same flag again: cached pointer is reused.
	if g.Metrics() != g.Metrics() {
		t.Error("metrics rebuilt without a flag change")
	}
}

func TestRefit(t *testing.T) {
	g := sphereGrid(t, 8, 10)
	g.Axisymmetric = true
	ng, err := g.Refit(func(s float64) float64 { return 0.15 + 0.1*s })
	if err != nil {
		t.Fatal(err)
	}
	if !ng.Axisymmetric {
		t.Error("Refit dropped the axisymmetric flag")
	}
	if ng.NI != g.NI || ng.NJ != g.NJ {
		t.Fatalf("Refit changed the cell counts: %dx%d", ng.NI, ng.NJ)
	}
	// Wall nodes unchanged, outer boundary moved to the new standoff.
	for i := 0; i <= g.NI; i++ {
		if ng.X[i][0] != g.X[i][0] || ng.Y[i][0] != g.Y[i][0] {
			t.Fatalf("Refit moved wall node %d", i)
		}
	}
	if d := ng.WallDistance(0); math.Abs(d-0.15) > 1e-9 {
		t.Errorf("refit standoff %g want 0.15", d)
	}
	if ng.WallDistance(g.NI) <= ng.WallDistance(0) {
		t.Error("refit standoff should grow along the body")
	}
}

func TestCoarsen(t *testing.T) {
	g := sphereGrid(t, 16, 24)
	g.Axisymmetric = true
	cg, err := g.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	if cg.NI != 8 || cg.NJ != 12 {
		t.Fatalf("coarse counts %dx%d want 8x12", cg.NI, cg.NJ)
	}
	if !cg.Axisymmetric {
		t.Error("Coarsen dropped the axisymmetric flag")
	}
	// Same wall and outer envelope.
	if math.Abs(cg.WallDistance(0)-g.WallDistance(0)) > 1e-9 {
		t.Error("coarse grid standoff differs")
	}
	if _, err := g.Coarsen(1); err == nil {
		t.Error("factor 1 accepted")
	}
	small := sphereGrid(t, 4, 4)
	if _, err := small.Coarsen(2); err == nil {
		t.Error("coarsening a 4x4 grid accepted")
	}
}

// Cell counts that do not divide by the factor must be rejected with a
// descriptive error instead of silently producing misaligned coarse cells.
func TestCoarsenDivisibility(t *testing.T) {
	g := sphereGrid(t, 18, 26)
	if _, err := g.Coarsen(4); err == nil {
		t.Fatal("coarsening 18x26 by 4 accepted")
	} else if !strings.Contains(err.Error(), "divisible") {
		t.Errorf("error %q does not name the divisibility problem", err)
	}
	// Divisible but landing below the 4x4 MUSCL floor is also an error, not
	// a clamp: 16x24 by 8 would leave 2x3 cells.
	g2 := sphereGrid(t, 16, 24)
	if _, err := g2.Coarsen(8); err == nil {
		t.Fatal("coarsening 16x24 by 8 accepted")
	}
	// Chaining: 16x24 -> 8x12 -> 4x6 works; a third halving is unreachable.
	c1, err := g2.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c1.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NI != 4 || c2.NJ != 6 {
		t.Fatalf("chained coarse counts %dx%d want 4x6", c2.NI, c2.NJ)
	}
	if _, err := c2.Coarsen(2); err == nil {
		t.Error("coarsening 4x6 accepted")
	}
}

func TestBetaValidation(t *testing.T) {
	b := geometry.NewSphere(1)
	for _, beta := range []float64{1, 0.5, -2} {
		if _, err := NewBlunt(b, b.MaxS(), 8, 8, func(s float64) float64 { return 0.3 }, beta); err == nil {
			t.Errorf("beta=%g accepted", beta)
		}
	}
	// The doc promises 1.001 is valid strong clustering.
	if _, err := NewBlunt(b, b.MaxS(), 8, 8, func(s float64) float64 { return 0.3 }, 1.001); err != nil {
		t.Errorf("beta=1.001 rejected: %v", err)
	}
}
