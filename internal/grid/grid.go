// Package grid generates the structured computational grids used by the
// finite-volume and marching solvers: Roberts-stretched 1-D distributions
// and body-fitted 2-D grids between a blunt body and an analytically
// prescribed outer boundary that hugs the expected bow shock.
package grid

import (
	"fmt"
	"math"
	"sync"

	"cataero/internal/geometry"
	"cataero/internal/numerics"
)

// Grid2D is a structured body-fitted grid. Nodes are stored as X[i][j],
// Y[i][j] with i = 0..NI along the body (i=0 at the stagnation line) and
// j = 0..NJ from the body surface (j=0) to the outer boundary (j=NJ).
// For axisymmetric use, Y is the radius from the axis.
type Grid2D struct {
	NI, NJ int // number of cells in each direction (nodes are NI+1 x NJ+1)
	X, Y   [][]float64
	// S holds the body arc length of each i-line's wall node.
	S []float64
	// Axisymmetric marks the grid for use with axisymmetric metrics.
	Axisymmetric bool

	// Generation parameters, kept so the grid can be re-fitted to a new
	// outer boundary or coarsened for grid sequencing (see Refit, Coarsen).
	body     geometry.Body
	sMax     float64
	beta     float64
	standoff func(s float64) float64

	mu      sync.Mutex
	metrics *Metrics
}

// NewBlunt builds a body-fitted grid around body b from arc length 0 to
// sMax with ni cells along the body and nj cells normal to it. The outer
// boundary is placed at distance standoff(s) along the local surface normal
// (use a shock-shape estimate); wall clustering uses Roberts stretching with
// parameter beta, which must exceed 1 (1.001 = strong clustering, 2 = mild).
func NewBlunt(b geometry.Body, sMax float64, ni, nj int, standoff func(s float64) float64, beta float64) (*Grid2D, error) {
	if ni < 2 || nj < 2 {
		return nil, fmt.Errorf("grid: need at least 2x2 cells, got %dx%d", ni, nj)
	}
	if sMax <= 0 || sMax > b.MaxS()*1.0001 {
		return nil, fmt.Errorf("grid: sMax=%g outside body range (0,%g]", sMax, b.MaxS())
	}
	if beta <= 1 {
		return nil, fmt.Errorf("grid: Roberts stretching parameter beta=%g must exceed 1", beta)
	}
	g := &Grid2D{NI: ni, NJ: nj, body: b, sMax: sMax, beta: beta, standoff: standoff}
	g.X = make([][]float64, ni+1)
	g.Y = make([][]float64, ni+1)
	g.S = make([]float64, ni+1)
	eta := numerics.Stretch1D(nj+1, beta)
	for i := 0; i <= ni; i++ {
		s := sMax * float64(i) / float64(ni)
		g.S[i] = s
		xw, rw := b.Point(s)
		th := b.Angle(s)
		// Outward surface normal for a body opening toward +x:
		// tangent = (cos th, sin th) pointing downstream; normal points
		// upstream/outboard = (-sin th... ) careful: for a sphere at s=0,
		// normal must point in -x (into the oncoming flow).
		nx := -math.Sin(th)
		ny := math.Cos(th)
		d := standoff(s)
		if d <= 0 {
			return nil, fmt.Errorf("grid: nonpositive standoff %g at s=%g", d, s)
		}
		g.X[i] = make([]float64, nj+1)
		g.Y[i] = make([]float64, nj+1)
		for j := 0; j <= nj; j++ {
			g.X[i][j] = xw + nx*d*eta[j]
			g.Y[i][j] = rw + ny*d*eta[j]
		}
	}
	return g, nil
}

// CellCenter returns the centroid of cell (i,j).
func (g *Grid2D) CellCenter(i, j int) (x, y float64) {
	x = 0.25 * (g.X[i][j] + g.X[i+1][j] + g.X[i][j+1] + g.X[i+1][j+1])
	y = 0.25 * (g.Y[i][j] + g.Y[i+1][j] + g.Y[i][j+1] + g.Y[i+1][j+1])
	return
}

// CellArea returns the planar area of cell (i,j) by the shoelace formula.
func (g *Grid2D) CellArea(i, j int) float64 {
	x1, y1 := g.X[i][j], g.Y[i][j]
	x2, y2 := g.X[i+1][j], g.Y[i+1][j]
	x3, y3 := g.X[i+1][j+1], g.Y[i+1][j+1]
	x4, y4 := g.X[i][j+1], g.Y[i][j+1]
	return 0.5 * math.Abs((x1*y2-x2*y1)+(x2*y3-x3*y2)+(x3*y4-x4*y3)+(x4*y1-x1*y4))
}

// CellVolume returns the cell volume: planar area for 2-D grids, or the
// Pappus volume (area times 2*pi*centroid radius, with the 2*pi dropped as a
// common factor) for axisymmetric grids.
func (g *Grid2D) CellVolume(i, j int) float64 {
	a := g.CellArea(i, j)
	if !g.Axisymmetric {
		return a
	}
	_, yc := g.CellCenter(i, j)
	if yc < 1e-12 {
		yc = 1e-12
	}
	return a * yc
}

// FaceI returns the face between cells (i-1,j) and (i,j): the area vector
// (Sx, Sy) pointing in the +i direction with magnitude equal to the face
// length (times mean radius when axisymmetric).
func (g *Grid2D) FaceI(i, j int) (sx, sy float64) {
	// Face nodes: (i,j) - (i,j+1).
	dx := g.X[i][j+1] - g.X[i][j]
	dy := g.Y[i][j+1] - g.Y[i][j]
	sx, sy = dy, -dx // rotate -90 deg: normal points toward +i
	if g.Axisymmetric {
		rm := 0.5 * (g.Y[i][j+1] + g.Y[i][j])
		if rm < 1e-12 {
			rm = 1e-12
		}
		sx *= rm
		sy *= rm
	}
	return
}

// FaceJ returns the face between cells (i,j-1) and (i,j): the area vector
// pointing in the +j direction.
func (g *Grid2D) FaceJ(i, j int) (sx, sy float64) {
	// Face nodes: (i,j) - (i+1,j).
	dx := g.X[i+1][j] - g.X[i][j]
	dy := g.Y[i+1][j] - g.Y[i][j]
	sx, sy = -dy, dx // rotate +90 deg: normal points toward +j
	if g.Axisymmetric {
		rm := 0.5 * (g.Y[i+1][j] + g.Y[i][j])
		if rm < 1e-12 {
			rm = 1e-12
		}
		sx *= rm
		sy *= rm
	}
	return
}

// WallDistance returns the normal distance from the wall to the outer
// boundary along grid line i.
func (g *Grid2D) WallDistance(i int) float64 {
	dx := g.X[i][g.NJ] - g.X[i][0]
	dy := g.Y[i][g.NJ] - g.Y[i][0]
	return math.Hypot(dx, dy)
}

// MinSpacing returns the smallest wall-normal spacing (first cell height),
// needed for viscous time-step estimates.
func (g *Grid2D) MinSpacing() float64 {
	min := math.Inf(1)
	for i := 0; i <= g.NI; i++ {
		dx := g.X[i][1] - g.X[i][0]
		dy := g.Y[i][1] - g.Y[i][0]
		if d := math.Hypot(dx, dy); d < min {
			min = d
		}
	}
	return min
}
