package grid

import (
	"fmt"
	"math"
)

// Metrics caches every geometric quantity the finite-volume hot loops need,
// in flat row-major arrays: face area vectors for both directions, cell
// volumes, planar areas, centroids and the wall-normal half heights of the
// first cell row. The arrays are built once per grid (and per axisymmetric
// flag) instead of being recomputed from node coordinates on every time
// step.
type Metrics struct {
	NI, NJ       int
	Axisymmetric bool
	// FaceIN holds (nx, ny, area) triplets — unit normal and face area —
	// for the I-direction faces between cells (i-1,j) and (i,j): index
	// 3*(i*NJ+j), i = 0..NI, j = 0..NJ-1. FaceJN does the same for the
	// J-direction faces between cells (i,j-1) and (i,j): index
	// 3*(i*(NJ+1)+j), i = 0..NI-1, j = 0..NJ. Storing the normal pre-split
	// keeps renormalization out of the flux hot loop (the raw area vector
	// is recoverable as nx*area, ny*area); degenerate faces carry a zero
	// area and a zero normal.
	FaceIN, FaceJN []float64
	// JDist holds the centroid-to-centroid distance across each interior
	// J-direction face (index i*(NJ+1)+j, j = 1..NJ-1; boundary entries are
	// zero), the wall-normal spacing the thin-layer viscous flux divides by.
	JDist []float64
	// Vol and Area hold the cell volumes (Pappus when axisymmetric) and
	// planar areas: index i*NJ+j.
	Vol, Area []float64
	// Cx, Cy hold the cell centroids: index i*NJ+j.
	Cx, Cy []float64
	// WallHalf holds the wall-normal half height of cell (i, 0) per i-line.
	WallHalf []float64
}

// Metrics returns the precomputed metric arrays for the grid, building them
// on first use and rebuilding if the Axisymmetric flag changed since the
// last build. Safe for concurrent use.
func (g *Grid2D) Metrics() *Metrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.metrics == nil || g.metrics.Axisymmetric != g.Axisymmetric {
		g.metrics = g.buildMetrics()
	}
	return g.metrics
}

func (g *Grid2D) buildMetrics() *Metrics {
	ni, nj := g.NI, g.NJ
	m := &Metrics{
		NI: ni, NJ: nj, Axisymmetric: g.Axisymmetric,
		FaceIN:   make([]float64, 3*(ni+1)*nj),
		FaceJN:   make([]float64, 3*ni*(nj+1)),
		JDist:    make([]float64, ni*(nj+1)),
		Vol:      make([]float64, ni*nj),
		Area:     make([]float64, ni*nj),
		Cx:       make([]float64, ni*nj),
		Cy:       make([]float64, ni*nj),
		WallHalf: make([]float64, ni),
	}
	for i := 0; i <= ni; i++ {
		for j := 0; j < nj; j++ {
			sx, sy := g.FaceI(i, j)
			k := i*nj + j
			if mag := math.Hypot(sx, sy); mag > 0 {
				m.FaceIN[3*k], m.FaceIN[3*k+1], m.FaceIN[3*k+2] = sx/mag, sy/mag, mag
			}
		}
	}
	for i := 0; i < ni; i++ {
		for j := 0; j <= nj; j++ {
			sx, sy := g.FaceJ(i, j)
			k := i*(nj+1) + j
			if mag := math.Hypot(sx, sy); mag > 0 {
				m.FaceJN[3*k], m.FaceJN[3*k+1], m.FaceJN[3*k+2] = sx/mag, sy/mag, mag
			}
		}
		for j := 0; j < nj; j++ {
			k := i*nj + j
			m.Area[k] = g.CellArea(i, j)
			m.Vol[k] = g.CellVolume(i, j)
			m.Cx[k], m.Cy[k] = g.CellCenter(i, j)
		}
		for j := 1; j < nj; j++ {
			km, kp := i*nj+j-1, i*nj+j
			m.JDist[i*(nj+1)+j] = math.Hypot(m.Cx[kp]-m.Cx[km], m.Cy[kp]-m.Cy[km])
		}
		dx := g.X[i][1] - g.X[i][0]
		dy := g.Y[i][1] - g.Y[i][0]
		m.WallHalf[i] = 0.5 * math.Hypot(dx, dy)
	}
	return m
}

// Refit regenerates the grid between the same body and wall-clustering
// parameters but a new outer-boundary standoff function, so the outer
// boundary can be re-fitted to a computed shock locus (grid sequencing, or
// shrink-wrapping the shock layer after a first solve). The receiver is not
// modified; the axisymmetric flag carries over.
func (g *Grid2D) Refit(standoff func(s float64) float64) (*Grid2D, error) {
	if g.body == nil {
		return nil, fmt.Errorf("grid: Refit requires a grid built by NewBlunt")
	}
	ng, err := NewBlunt(g.body, g.sMax, g.NI, g.NJ, standoff, g.beta)
	if err != nil {
		return nil, err
	}
	ng.Axisymmetric = g.Axisymmetric
	return ng, nil
}

// Coarsen regenerates the grid with the cell counts divided by factor, for
// use as the coarse levels of a sequenced or multilevel solve. Both cell
// counts must divide evenly by the factor — a remainder would misalign the
// coarse cells against the fine ones, breaking index-based state transfer —
// and the coarse grid must keep at least 4 cells per direction so MUSCL
// stencils stay valid. Callers chaining Coarsen for a level hierarchy should
// treat an error as "this level is unreachable" and stop chaining.
func (g *Grid2D) Coarsen(factor int) (*Grid2D, error) {
	if g.body == nil {
		return nil, fmt.Errorf("grid: Coarsen requires a grid built by NewBlunt")
	}
	if factor < 2 {
		return nil, fmt.Errorf("grid: coarsening factor %d below 2", factor)
	}
	if g.NI%factor != 0 || g.NJ%factor != 0 {
		return nil, fmt.Errorf("grid: cell counts %dx%d not divisible by coarsening factor %d (coarse cells would misalign; choose counts divisible by the factor)", g.NI, g.NJ, factor)
	}
	ni := g.NI / factor
	nj := g.NJ / factor
	if ni < 4 || nj < 4 {
		return nil, fmt.Errorf("grid: coarsening %dx%d by %d leaves %dx%d cells, below the 4x4 MUSCL minimum", g.NI, g.NJ, factor, ni, nj)
	}
	ng, err := NewBlunt(g.body, g.sMax, ni, nj, g.standoff, g.beta)
	if err != nil {
		return nil, err
	}
	ng.Axisymmetric = g.Axisymmetric
	return ng, nil
}
