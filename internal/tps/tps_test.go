package tps

import (
	"fmt"
	"math"
	"testing"

	"cataero/internal/thermo"
	"cataero/internal/vsl"
)

func TestRadiativeEquilibriumWallAnalytic(t *testing.T) {
	// Constant incident flux: Tw = (q / (eps sigma))^{1/4}.
	q := 1e6 // 100 W/cm^2
	eps := 0.85
	tw, err := RadiativeEquilibriumWall(func(Tw float64) (float64, error) {
		return q, nil
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(q/(eps*thermo.SigmaSB), 0.25)
	if math.Abs(tw-want) > 1 {
		t.Errorf("Tw=%g want %g", tw, want)
	}
}

func TestRadiativeEquilibriumWallColdWall(t *testing.T) {
	tw, err := RadiativeEquilibriumWall(func(Tw float64) (float64, error) {
		return 10, nil // negligible heating
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tw > 400 {
		t.Errorf("cold-wall Tw=%g", tw)
	}
}

func TestRadiativeEquilibriumWallHotWallFeedback(t *testing.T) {
	// Flux decreasing with Tw (hot-wall correction): the balance still has
	// a unique root and it is below the constant-flux value.
	q0 := 2e6
	twConst, err := RadiativeEquilibriumWall(func(Tw float64) (float64, error) {
		return q0, nil
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	twFeedback, err := RadiativeEquilibriumWall(func(Tw float64) (float64, error) {
		return q0 * (1 - Tw/8000), nil
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if twFeedback >= twConst {
		t.Errorf("feedback wall %g should be cooler than %g", twFeedback, twConst)
	}
}

func TestRadiativeEquilibriumWallErrors(t *testing.T) {
	if _, err := RadiativeEquilibriumWall(func(float64) (float64, error) { return 1, nil }, 0); err == nil {
		t.Error("zero emissivity accepted")
	}
	if _, err := RadiativeEquilibriumWall(func(float64) (float64, error) {
		return 0, fmt.Errorf("boom")
	}, 0.9); err == nil {
		t.Error("failing flux accepted")
	}
	if _, err := RadiativeEquilibriumWall(func(float64) (float64, error) {
		return 1e9, nil // unbalanceable
	}, 0.9); err == nil {
		t.Error("unbalanceable flux accepted")
	}
}

func TestHeatLoadTrapezoid(t *testing.T) {
	// Triangular pulse peaking at 100 over 10 s: load = 500 J/m^2.
	time := []float64{0, 5, 10}
	q := []float64{0, 100, 0}
	if got := HeatLoad(time, q); math.Abs(got-500) > 1e-9 {
		t.Errorf("load %g want 500", got)
	}
	if HeatLoad([]float64{0}, []float64{1}) != 0 {
		t.Error("degenerate input should give 0")
	}
}

func TestPulseLoads(t *testing.T) {
	pulse := []vsl.PulsePoint{
		{Time: 0, QConv: 0, QRad: 0},
		{Time: 10, QConv: 100, QRad: 200},
		{Time: 20, QConv: 0, QRad: 0},
	}
	c, r := PulseLoads(pulse)
	if math.Abs(c-1000) > 1e-9 || math.Abs(r-2000) > 1e-9 {
		t.Errorf("loads %g %g want 1000 2000", c, r)
	}
}

func TestAblatorRecession(t *testing.T) {
	a := CarbonPhenolic()
	// 60 s at 2000 W/cm^2 (2e7 W/m^2): net flux after re-radiation ~1.87e7;
	// recession = net * t / (rho Qstar) ~ 31 mm.
	time := []float64{0, 60}
	q := []float64{2e7, 2e7}
	rec := a.Recession(time, q)
	qRerad := a.Eps * thermo.SigmaSB * math.Pow(a.TAbl, 4)
	want := (2e7 - qRerad) * 60 / (a.Rho * a.QStar)
	if math.Abs(rec-want) > 1e-9 {
		t.Errorf("recession %g want %g", rec, want)
	}
	// Below the re-radiation limit nothing ablates.
	if a.Recession([]float64{0, 60}, []float64{1e5, 1e5}) != 0 {
		t.Error("sub-reradiation flux should not ablate")
	}
}

func TestAblatorOrdering(t *testing.T) {
	// The denser, higher-Q* material recedes less under the same pulse.
	time := []float64{0, 30, 60}
	q := []float64{0, 3e7, 0}
	cp := CarbonPhenolic().Recession(time, q)
	sp := SilicaPhenolic().Recession(time, q)
	if cp >= sp {
		t.Errorf("carbon phenolic %g should beat silica phenolic %g", cp, sp)
	}
}

func TestSizeThickness(t *testing.T) {
	a := CarbonPhenolic()
	time := []float64{0, 30, 60}
	q := []float64{0, 3e7, 0}
	th := a.SizeThickness(time, q, 0, 0)
	rec := a.Recession(time, q)
	if th <= rec {
		t.Errorf("thickness %g must exceed recession %g", th, rec)
	}
	// Longer pulse needs more insulation.
	time2 := []float64{0, 120, 240}
	th2 := a.SizeThickness(time2, q, 0, 0)
	if th2 <= th {
		t.Errorf("longer pulse thickness %g should exceed %g", th2, th)
	}
}
