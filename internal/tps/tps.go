// Package tps closes the design loop the paper motivates: turning computed
// aerothermal environments into thermal-protection-system quantities —
// radiative-equilibrium wall temperatures, integrated heat loads along an
// entry pulse, and first-order ablator sizing (the "TPS for the probe was
// sized based on computer predictions" application of the Galileo/Titan
// probe studies).
package tps

import (
	"fmt"
	"math"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
	"cataero/internal/vsl"
)

// RadiativeEquilibriumWall solves the wall energy balance
//
//	q(Tw) = eps * sigma * Tw^4
//
// for the wall temperature, where q(Tw) is the (decreasing) incident heat
// flux as a function of wall temperature and eps the surface emissivity.
func RadiativeEquilibriumWall(q func(Tw float64) (float64, error), eps float64) (float64, error) {
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("tps: emissivity %g outside (0,1]", eps)
	}
	f := func(Tw float64) float64 {
		qw, err := q(Tw)
		if err != nil {
			return math.NaN()
		}
		return qw - eps*thermo.SigmaSB*Tw*Tw*Tw*Tw
	}
	lo, hi := 300.0, 4500.0
	flo, fhi := f(lo), f(hi)
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return 0, fmt.Errorf("tps: heat-flux evaluation failed")
	}
	if flo < 0 {
		return lo, nil // negligible heating: wall stays cold
	}
	if fhi > 0 {
		return hi, fmt.Errorf("tps: wall exceeds %g K (flux %g W/m^2 unbalanced)", hi, fhi)
	}
	return numerics.Brent(f, lo, hi, 0.1)
}

// HeatLoad integrates a heating pulse q(t) (W/m^2 against seconds) into the
// total heat load (J/m^2) by the trapezoidal rule.
func HeatLoad(time, q []float64) float64 {
	if len(time) != len(q) || len(time) < 2 {
		return 0
	}
	return numerics.TrapzSlice(time, q)
}

// PulseLoads integrates the convective and radiative heat loads of a VSL
// heating pulse.
func PulseLoads(pulse []vsl.PulsePoint) (convective, radiative float64) {
	for i := 1; i < len(pulse); i++ {
		dt := pulse[i].Time - pulse[i-1].Time
		convective += 0.5 * (pulse[i].QConv + pulse[i-1].QConv) * dt
		radiative += 0.5 * (pulse[i].QRad + pulse[i-1].QRad) * dt
	}
	return convective, radiative
}

// Ablator is a first-order charring-ablator model: a material consumes
// QStar joules per kilogram removed, at density Rho, and re-radiates with
// emissivity Eps while ablating at the ablation temperature TAbl.
type Ablator struct {
	Name  string
	Rho   float64 // kg/m^3
	QStar float64 // effective heat of ablation, J/kg
	Eps   float64
	TAbl  float64 // quasi-steady surface temperature while ablating, K
}

// CarbonPhenolic returns a representative dense ablator (Galileo-class).
func CarbonPhenolic() Ablator {
	return Ablator{Name: "carbon phenolic", Rho: 1450, QStar: 2.5e7, Eps: 0.9, TAbl: 3600}
}

// SilicaPhenolic returns a representative mid-density ablator.
func SilicaPhenolic() Ablator {
	return Ablator{Name: "silica phenolic", Rho: 1050, QStar: 1.2e7, Eps: 0.85, TAbl: 2800}
}

// Recession returns the surface recession (m) for a heating pulse: the
// re-radiated fraction is removed at the ablation temperature, and the
// remainder consumes material at QStar.
func (a Ablator) Recession(time, q []float64) float64 {
	if len(time) != len(q) || len(time) < 2 {
		return 0
	}
	qRad := a.Eps * thermo.SigmaSB * math.Pow(a.TAbl, 4)
	rec := 0.0
	for i := 1; i < len(time); i++ {
		qm := 0.5 * (q[i] + q[i-1])
		net := qm - qRad
		if net <= 0 {
			continue
		}
		rec += net / (a.Rho * a.QStar) * (time[i] - time[i-1])
	}
	return rec
}

// SizeThickness returns a TPS thickness estimate: recession plus an
// insulation allowance proportional to the square root of the heated time
// (a one-dimensional conduction-depth scale with diffusivity alpha, m^2/s),
// times a safety factor.
func (a Ablator) SizeThickness(time, q []float64, alpha, safety float64) float64 {
	if alpha <= 0 {
		alpha = 4e-7 // char-layer scale
	}
	if safety <= 0 {
		safety = 1.5
	}
	rec := a.Recession(time, q)
	heated := 0.0
	if n := len(time); n >= 2 {
		heated = time[n-1] - time[0]
	}
	insulation := 2 * math.Sqrt(alpha*heated)
	return safety * (rec + insulation)
}
