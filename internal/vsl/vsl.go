// Package vsl implements the stagnation-line viscous shock layer solver of
// the paper's VSL code class (HYVIS/RASLE/COLTS lineage): an equilibrium
// shock layer between the bow shock and a cool wall, with the viscous inner
// region from the Lees-Dorodnitsyn similarity solution, tangent-slab
// radiative transport across the layer, and the stagnation-line species
// profiles of the paper's Fig. 3. Driven along an entry trajectory it
// produces the convective/radiative heating pulses of Fig. 2.
package vsl

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/atmosphere"
	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/numerics"
	"cataero/internal/radiation"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// Inputs defines a stagnation-line VSL case.
type Inputs struct {
	Mix   *thermo.Mixture
	Eq    *chem.EquilibriumSolver
	Tr    *transport.Mixture
	Rad   *radiation.Model // nil disables radiation
	Y0    []float64        // freestream composition
	PInf  float64
	TInf  float64
	VInf  float64
	Rn    float64 // nose radius
	TWall float64
	NPts  int // stagnation-line output points (default 60)
	// Progress, when non-nil, is invoked after each converged step of the
	// expensive phases with (phase, point, total): phase "profile" covers the
	// NPts stagnation-line re-equilibrations, phase "radiation" the NPts-1
	// tangent-slab layer states (each another equilibrium solve). It runs on
	// the solving goroutine and must be cheap.
	Progress func(phase string, point, total int)
}

// Result is the converged stagnation-line solution.
type Result struct {
	QConv, QRad float64 // wall fluxes, W/m^2
	Standoff    float64 // shock standoff distance, m
	Edge        shock.StagnationState
	// Stagnation-line profiles from the wall (y=0) to the shock (y=Standoff).
	Y       []float64
	T       []float64
	H       []float64
	Species [][]float64 // equilibrium mass fractions at each point
}

// Solve computes the stagnation-line viscous shock layer. The context is
// polled between profile points; cancellation aborts with ctx.Err().
func Solve(ctx context.Context, in Inputs) (*Result, error) {
	if in.NPts == 0 {
		in.NPts = 60
	}
	if in.Rn <= 0 {
		return nil, fmt.Errorf("vsl: nose radius required")
	}
	m := in.Mix
	// Post-shock and stagnation states.
	post, err := shock.EquilibriumJump(in.Eq, in.Y0, in.PInf, in.TInf, in.VInf)
	if err != nil {
		return nil, fmt.Errorf("vsl: shock jump: %w", err)
	}
	stag, err := shock.StagnationEquilibrium(in.Eq, in.Y0, in.PInf, in.TInf, in.VInf)
	if err != nil {
		return nil, fmt.Errorf("vsl: stagnation state: %w", err)
	}
	rho1 := m.Density(in.PInf, in.TInf, in.Y0)
	eps := rho1 / post.Rho
	// Classical correlation for sphere shock standoff (Serbin/Lobb form).
	standoff := 0.78 * eps * in.Rn

	// Viscous inner layer: similarity solution with a fully catalytic wall
	// (equilibrium-flow VSL limit).
	sim, err := blayer.SolveStagnation(m, in.Tr, stag, in.TWall, in.PInf, in.Rn,
		blayer.SimilarityOptions{GammaW: 1})
	if err != nil {
		return nil, fmt.Errorf("vsl: similarity layer: %w", err)
	}
	res := &Result{QConv: sim.QWall, Standoff: standoff, Edge: stag}

	// Stagnation-line enthalpy profile: the similarity solution provides the
	// shape function g(y) in the viscous sublayer; the layer itself is in
	// local equilibrium (the VSL assumption), so the profile runs from the
	// recombined equilibrium wall enthalpy to the stagnation enthalpy and
	// every point is re-equilibrated at (p_stag, h).
	hwEq, err := in.Eq.EnthalpyPT(stag.P, in.TWall, in.Y0)
	if err != nil {
		return nil, fmt.Errorf("vsl: wall state: %w", err)
	}
	ys := numerics.Linspace(0, standoff, in.NPts)
	res.Y = ys
	res.T = make([]float64, in.NPts)
	res.H = make([]float64, in.NPts)
	res.Species = make([][]float64, in.NPts)
	for i, y := range ys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var g float64
		if n := len(sim.YPhys); y <= sim.YPhys[n-1] {
			g = numerics.LinearInterp(sim.YPhys, sim.G, y)
		} else {
			g = 1
		}
		h := hwEq + numerics.Clamp(g, 0, 1)*(stag.H-hwEq)
		res.H[i] = h
		T, yc, _, err := in.Eq.TemperaturePH(stag.P, h, in.Y0)
		if err != nil {
			return nil, fmt.Errorf("vsl: profile point %d: %w", i, err)
		}
		res.T[i] = T
		res.Species[i] = yc
		if in.Progress != nil {
			in.Progress("profile", i+1, in.NPts)
		}
	}

	// Radiative transport across the layer.
	if in.Rad != nil {
		layers := make([]radiation.Layer, 0, in.NPts-1)
		for i := 1; i < in.NPts; i++ {
			// Each layer re-equilibrates the mid-point composition, which is
			// as expensive as a profile point: keep the radiation pass
			// cancellable too.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			Tm := 0.5 * (res.T[i] + res.T[i-1])
			// Composition at the mid temperature and stagnation pressure.
			ymid, rhomid, err := in.Eq.CompositionPT(stag.P, math.Max(Tm, 300), in.Y0)
			if err != nil {
				return nil, err
			}
			layers = append(layers, radiation.Layer{
				Thickness: ys[i] - ys[i-1],
				T:         Tm, Tex: Tm,
				N: m.NumberDensities(rhomid, ymid),
			})
			if in.Progress != nil {
				in.Progress("radiation", i, in.NPts-1)
			}
		}
		slab := in.Rad.SolveSlab(layers)
		res.QRad = slab.QWall
	}
	return res, nil
}

// PulsePoint is one entry-trajectory heating sample.
type PulsePoint struct {
	Time        float64
	Altitude    float64
	Velocity    float64
	QConv, QRad float64 // W/m^2
}

// SignificantHeating reports whether a trajectory point is worth a VSL
// solve: positive density, hypersonic velocity and non-negligible dynamic
// pressure. Shared by HeatingPulse and the batch-mode Fig. 2 runner so the
// two sweeps stay in lockstep.
func SignificantHeating(tp atmosphere.TrajectoryPoint) bool {
	if tp.Density <= 0 || tp.Velocity < 1500 {
		return false
	}
	return 0.5*tp.Density*tp.Velocity*tp.Velocity >= 50 // negligible heating this high up
}

// HeatingPulse runs the stagnation-line VSL along an entry trajectory,
// returning convective and radiative stagnation heating versus time (the
// paper's Fig. 2). Points with negligible dynamic pressure are skipped.
func HeatingPulse(ctx context.Context, in Inputs, atm atmosphere.Model, traj []atmosphere.TrajectoryPoint) ([]PulsePoint, error) {
	var out []PulsePoint
	for _, tp := range traj {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !SignificantHeating(tp) {
			continue
		}
		ci := in
		ci.PInf = tp.Pressure
		ci.TInf = tp.Temp
		ci.VInf = tp.Velocity
		r, err := Solve(ctx, ci)
		if err != nil {
			// Individual trajectory points may sit outside the equilibrium
			// solver's range right at the entry interface; skip them rather
			// than abort the pulse.
			continue
		}
		out = append(out, PulsePoint{
			Time: tp.Time, Altitude: tp.Altitude, Velocity: tp.Velocity,
			QConv: r.QConv, QRad: r.QRad,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vsl: no valid heating points along trajectory")
	}
	return out, nil
}
