package vsl

import (
	"context"
	"math"
	"testing"

	"cataero/internal/atmosphere"
	"cataero/internal/chem"
	"cataero/internal/radiation"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

func titanInputs(t *testing.T) Inputs {
	t.Helper()
	m := thermo.NewMixture(thermo.TitanSpecies())
	return Inputs{
		Mix: m,
		Eq:  chem.NewEquilibriumSolver(m),
		Tr:  transport.NewMixture(m),
		Rad: radiation.NewTitanModel(m, 300),
		Y0:  thermo.TitanFreestreamMassFractions(m.Species),
		// Peak-heating-like point of a 12 km/s Titan entry.
		PInf: 8.0, TInf: 165, VInf: 9500,
		Rn: 1.25, TWall: 1800, NPts: 40,
	}
}

func TestTitanStagnationLine(t *testing.T) {
	in := titanInputs(t)
	r, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Convective heating: tens of W/cm^2 => 1e5-1e7 W/m^2 band.
	if r.QConv < 1e4 || r.QConv > 1e7 {
		t.Errorf("QConv=%g W/m^2 outside band", r.QConv)
	}
	// Radiative heating present (CN violet) and within physical bounds.
	if r.QRad <= 0 {
		t.Error("no radiative heating in a Titan shock layer")
	}
	sbLimit := thermo.SigmaSB * math.Pow(r.Edge.T, 4)
	if r.QRad > sbLimit {
		t.Errorf("QRad=%g exceeds blackbody bound %g", r.QRad, sbLimit)
	}
	// Standoff a few percent of the nose radius.
	if r.Standoff < 0.005*in.Rn || r.Standoff > 0.3*in.Rn {
		t.Errorf("standoff %g m outside band for Rn=%g", r.Standoff, in.Rn)
	}
	// Temperature profile: wall-cold, rising to the shock-layer value.
	if r.T[0] > in.TWall*1.3 {
		t.Errorf("wall temperature %g should be near %g", r.T[0], in.TWall)
	}
	last := len(r.T) - 1
	if r.T[last] < 4000 {
		t.Errorf("shock-layer temperature %g too cold", r.T[last])
	}
	for i := 1; i < len(r.T); i++ {
		if r.T[i] < r.T[i-1]-50 {
			t.Errorf("temperature profile not monotone at %d: %g < %g", i, r.T[i], r.T[i-1])
		}
	}
}

func TestTitanSpeciesProfile(t *testing.T) {
	// The Fig. 3 content: near the wall the gas is recombined (N2, CH4
	// products); in the hot layer CN, H, H2 appear; N2 dominates everywhere.
	in := titanInputs(t)
	r, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Y) - 1
	wall := r.Species[0]
	hot := r.Species[last]
	if wall[thermo.TiN2] < 0.8 {
		t.Errorf("wall N2 fraction %g should dominate", wall[thermo.TiN2])
	}
	if hot[thermo.TiCN] <= wall[thermo.TiCN] {
		t.Errorf("CN should grow toward the shock: wall %g hot %g",
			wall[thermo.TiCN], hot[thermo.TiCN])
	}
	if hot[thermo.TiH] < 1e-5 {
		t.Errorf("atomic H missing in the hot layer: %g", hot[thermo.TiH])
	}
	// Mass fractions normalized at every point.
	for i, ys := range r.Species {
		sum := 0.0
		for _, v := range ys {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("point %d: species sum %g", i, sum)
		}
	}
}

func TestHeatingPulseShape(t *testing.T) {
	// The Fig. 2 content: both pulses rise and fall; the radiative pulse is
	// significant for a 12 km/s Titan entry.
	if testing.Short() {
		t.Skip("trajectory sweep in short mode")
	}
	in := titanInputs(t)
	ti := atmosphere.NewTitan()
	veh := atmosphere.Vehicle{Mass: 2100, RefArea: 5.3, CD: 1.05, NoseRadius: 1.25}
	traj, err := atmosphere.IntegrateEntry(ti, veh, atmosphere.EntryConditions{
		Altitude: 600e3, Velocity: 12000, Gamma: -40 * math.Pi / 180,
	}, 2000, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	pulse, err := HeatingPulse(context.Background(), in, ti, traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(pulse) < 5 {
		t.Fatalf("too few pulse points: %d", len(pulse))
	}
	// Peaks lie strictly inside the pulse.
	icMax, irMax := 0, 0
	for i, p := range pulse {
		if p.QConv > pulse[icMax].QConv {
			icMax = i
		}
		if p.QRad > pulse[irMax].QRad {
			irMax = i
		}
	}
	if icMax == 0 || icMax == len(pulse)-1 {
		t.Errorf("convective peak at pulse endpoint (i=%d of %d)", icMax, len(pulse))
	}
	if pulse[irMax].QRad <= 0 {
		t.Error("no radiative pulse")
	}
}
