package shocktube

import (
	"math"
	"testing"

	"cataero/internal/chem"
	"cataero/internal/thermo"
)

func park10kmCase(t *testing.T) Problem {
	t.Helper()
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := chem.AirMechanism(m)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{
		Mix: m, Mech: mech,
		P1: 13.0, T1: 300, U1: 10000, // 0.1 torr, 10 km/s: the paper's Fig. 7
		Y1:   thermo.AirFreestreamMassFractions(m.Species),
		XEnd: 0.05, NOut: 120,
	}
}

func TestFrozenVibJumpStrongShock(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	y := thermo.AirFreestreamMassFractions(m.Species)
	rho2, u2, p2, T2, err := FrozenVibJump(m, y, 13, 300, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// With only translation+rotation active the frozen temperature is huge:
	// T2 ~ u1^2/(2 cpTR) ~ 5e7/2010 ~ 50000 K scale.
	if T2 < 35000 || T2 > 70000 {
		t.Errorf("frozen T2=%g outside band", T2)
	}
	// Density ratio near the gamma=1.4 strong-shock limit of 6 (rotation
	// fully excited, vibration frozen).
	rho1 := m.Density(13, 300, y)
	if r := rho2 / rho1; r < 5 || r > 7 {
		t.Errorf("frozen density ratio %g want ~6", r)
	}
	// Conservation.
	if math.Abs(rho2*u2-rho1*10000) > 1e-6*rho1*10000 {
		t.Error("mass flux violated")
	}
	mom1 := 13 + rho1*1e8
	mom2 := p2 + rho2*u2*u2
	if math.Abs(mom1-mom2) > 1e-6*mom1 {
		t.Error("momentum violated")
	}
}

func TestRelaxationProfileShape(t *testing.T) {
	// The Fig. 7 physics: T starts very high and falls; Tv starts cold and
	// rises; they meet at a common relaxed value; N2 dissociates.
	prob := park10kmCase(t)
	prof, err := Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	n := len(prof.X)
	if n < 50 {
		t.Fatalf("too few stations: %d", n)
	}
	if prof.T[0] < 35000 {
		t.Errorf("initial T=%g should be the frozen jump", prof.T[0])
	}
	if prof.Tv[0] > 1000 {
		t.Errorf("initial Tv=%g should be cold", prof.Tv[0])
	}
	// Tv must lag T everywhere (within tolerance as they merge).
	for i := 0; i < n; i++ {
		if prof.Tv[i] > prof.T[i]*1.1+200 {
			t.Errorf("Tv=%g overtakes T=%g at x=%g", prof.Tv[i], prof.T[i], prof.X[i])
		}
	}
	// Temperatures converge by the end of the domain.
	last := n - 1
	if math.Abs(prof.T[last]-prof.Tv[last]) > 0.2*prof.T[last] {
		t.Errorf("T=%g and Tv=%g have not merged", prof.T[last], prof.Tv[last])
	}
	// T decays overall, Tv rises overall.
	if prof.T[last] > 0.5*prof.T[0] {
		t.Errorf("T failed to relax: %g -> %g", prof.T[0], prof.T[last])
	}
	if prof.Tv[last] < 4000 {
		t.Errorf("Tv failed to excite: %g", prof.Tv[last])
	}
	// N2 dissociates substantially at 10 km/s.
	iN2 := thermo.AirN2
	if prof.Y[last][iN2] > 0.5*prof.Y[0][iN2] {
		t.Errorf("N2 did not dissociate: %g -> %g", prof.Y[0][iN2], prof.Y[last][iN2])
	}
	// Ionization appears (the 'ionizing air' part of Fig. 7).
	if prof.Y[last][thermo.AirE] <= 0 {
		t.Error("no electrons produced")
	}
}

func TestRelaxationApproachesEquilibrium(t *testing.T) {
	prob := park10kmCase(t)
	prob.XEnd = 0.3 // long domain to let the tail settle
	prob.NOut = 80
	prof, err := Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	eq := chem.NewEquilibriumSolver(prob.Mix)
	Teq, yEq, err := EquilibriumTail(eq, prob)
	if err != nil {
		t.Fatal(err)
	}
	last := len(prof.X) - 1
	if math.Abs(prof.T[last]-Teq) > 0.12*Teq {
		t.Errorf("tail T=%g vs equilibrium %g", prof.T[last], Teq)
	}
	// Major species approach equilibrium.
	for _, idx := range []int{thermo.AirN2, thermo.AirN, thermo.AirO} {
		if yEq[idx] > 0.02 {
			rel := math.Abs(prof.Y[last][idx]-yEq[idx]) / yEq[idx]
			if rel > 0.3 {
				t.Errorf("species %s: tail %g vs equilibrium %g",
					prob.Mix.Species[idx].Name, prof.Y[last][idx], yEq[idx])
			}
		}
	}
}

func TestMassFractionsStaySane(t *testing.T) {
	prob := park10kmCase(t)
	prof, err := Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	for i, ys := range prof.Y {
		sum := 0.0
		for _, v := range ys {
			if v < -1e-6 || math.IsNaN(v) {
				t.Fatalf("station %d: bad mass fraction %g", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("station %d: mass fractions sum %g", i, sum)
		}
	}
}

func TestPressureNearlyConstant(t *testing.T) {
	// Behind a strong shock the relaxation zone is nearly isobaric: p varies
	// by only ~10-20% while T drops by 4x.
	prob := park10kmCase(t)
	prof, err := Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	p0 := prof.P[0]
	for i, p := range prof.P {
		if math.Abs(p-p0) > 0.25*p0 {
			t.Errorf("station %d: p=%g deviates from %g", i, p, p0)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, _ := chem.AirMechanism(m)
	if _, err := Solve(Problem{Mix: m, Mech: mech, P1: 13, T1: 300, U1: 1e4}); err == nil {
		t.Error("missing composition accepted")
	}
	if _, err := Solve(Problem{Mix: m, Mech: mech, P1: 13, T1: 300, U1: 1e4,
		Y1: thermo.AirFreestreamMassFractions(m.Species)}); err == nil {
		t.Error("zero XEnd accepted")
	}
}
