// Package shocktube implements the steady one-dimensional post-shock
// relaxation problem of the paper's Fig. 7/8: a strong normal shock in air
// with translation jumping instantly while vibration and chemistry relax
// downstream, solved with the two-temperature model and finite-rate
// chemistry. This is "approach one" of the paper's NS-code discussion: a
// simple fluid model carrying state-of-the-art real-gas physics.
package shocktube

import (
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// Problem defines the shock-tube case.
type Problem struct {
	Mix  *thermo.Mixture
	Mech *chem.Mechanism
	P1   float64 // upstream pressure, Pa
	T1   float64 // upstream temperature, K
	U1   float64 // shock speed (upstream velocity in shock frame), m/s
	Y1   []float64
	XEnd float64 // integration distance behind the shock, m
	NOut int     // number of output stations (default 200)
}

// Profile is the relaxation-zone solution.
type Profile struct {
	X, T, Tv, P, Rho, U []float64
	Y                   [][]float64 // [station][species]
}

// FrozenVibJump solves the Rankine-Hugoniot jump with chemistry AND
// vibration frozen: only translation and rotation equilibrate across the
// shock front. This is the two-temperature initial condition: T2 is very
// high, Tv2 stays at T1.
func FrozenVibJump(m *thermo.Mixture, y []float64, p1, T1, u1 float64) (rho2, u2, p2, T2 float64, err error) {
	rho1 := m.Density(p1, T1, y)
	mflux := rho1 * u1
	P0 := p1 + rho1*u1*u1
	// Frozen-vibration enthalpy: h = cpTR*T + ev(T1) + eel(T1) + hf.
	cpTR := m.CvTransRot(y) + m.R(y)
	hFroz := m.EVibPool(T1, y) + m.HFormation(y)
	H0 := cpTR*T1 + hFroz + 0.5*u1*u1
	R := m.R(y)
	// Quadratic in u2 (see package docs): a u^2 + b u + c = 0.
	a := mflux*R/(2*cpTR) - mflux
	b := P0
	c := -mflux * R / cpTR * (H0 - hFroz)
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, 0, 0, fmt.Errorf("shocktube: no real jump solution")
	}
	// Subsonic (small-u) root: with a<0, the '+' root is the small one.
	u2 = (-b + math.Sqrt(disc)) / (2 * a)
	if u2 <= 0 || u2 >= u1 {
		u2 = (-b - math.Sqrt(disc)) / (2 * a)
	}
	if u2 <= 0 || u2 >= u1 {
		return 0, 0, 0, 0, fmt.Errorf("shocktube: jump root out of range: %g", u2)
	}
	rho2 = mflux / u2
	p2 = P0 - mflux*u2
	T2 = (H0 - hFroz - 0.5*u2*u2) / cpTR
	return rho2, u2, p2, T2, nil
}

// Solve integrates the steady relaxation equations behind the shock:
//
//	m dY_s/dx = w_s W_s
//	m dev/dx  = Q_v-t + Q_chem
//
// with (rho, u, T, p) recovered algebraically from the conserved mass,
// momentum and energy fluxes at every station.
func Solve(prob Problem) (*Profile, error) {
	m := prob.Mix
	mech := prob.Mech
	if prob.NOut == 0 {
		prob.NOut = 200
	}
	if prob.XEnd <= 0 {
		return nil, fmt.Errorf("shocktube: XEnd must be positive")
	}
	y1 := prob.Y1
	if y1 == nil {
		return nil, fmt.Errorf("shocktube: upstream composition required")
	}
	rho1 := m.Density(prob.P1, prob.T1, y1)
	mflux := rho1 * prob.U1
	P0 := prob.P1 + rho1*prob.U1*prob.U1
	H0 := m.Enthalpy(prob.T1, y1) + 0.5*prob.U1*prob.U1

	rho2, u2, p2, T2, err := FrozenVibJump(m, y1, prob.P1, prob.T1, prob.U1)
	if err != nil {
		return nil, err
	}
	_ = p2

	nsp := m.Len()
	// State: [Y_0..Y_{nsp-1}, ev].
	state := make([]float64, nsp+1)
	copy(state, y1)
	state[nsp] = m.EVibPool(prob.T1, y1)

	// recover computes the algebraic flow state for a given (Y, ev).
	type flow struct {
		rho, u, p, T, Tv float64
	}
	lastTv := prob.T1
	recover := func(st []float64) (flow, error) {
		y := st[:nsp]
		ev := st[nsp]
		cpTR := m.CvTransRot(y) + m.R(y)
		R := m.R(y)
		hOff := ev + m.HFormation(y)
		a := mflux*R/(2*cpTR) - mflux
		b := P0
		c := -mflux * R / cpTR * (H0 - hOff)
		disc := b*b - 4*a*c
		if disc < 0 {
			return flow{}, fmt.Errorf("shocktube: lost jump branch")
		}
		u := (-b + math.Sqrt(disc)) / (2 * a)
		if u <= 0 || u >= prob.U1 {
			u = (-b - math.Sqrt(disc)) / (2 * a)
		}
		if u <= 0 {
			return flow{}, fmt.Errorf("shocktube: nonpositive velocity")
		}
		rho := mflux / u
		p := P0 - mflux*u
		T := (H0 - hOff - 0.5*u*u) / cpTR
		if T <= 0 {
			return flow{}, fmt.Errorf("shocktube: nonpositive temperature")
		}
		Tv, err := m.TvFromPool(ev, y, lastTv)
		if err != nil {
			return flow{}, err
		}
		lastTv = Tv
		return flow{rho: rho, u: u, p: p, T: T, Tv: Tv}, nil
	}

	// Use the post-shock frozen state to seed the recovery (sanity check).
	if _, err := recover(state); err != nil {
		return nil, fmt.Errorf("shocktube: post-shock state: %w", err)
	}
	_ = rho2
	_ = u2
	_ = T2

	wdot := make([]float64, nsp)
	deriv := func(x float64, st, dst []float64) {
		// Clip negative mass fractions for source evaluation.
		yc := make([]float64, nsp)
		copy(yc, st[:nsp])
		for i := range yc {
			if yc[i] < 0 {
				yc[i] = 0
			}
		}
		fl, err := recover(st)
		if err != nil {
			for i := range dst {
				dst[i] = 0
			}
			return
		}
		mech.Production(fl.rho, fl.T, fl.Tv, yc, wdot)
		for s := 0; s < nsp; s++ {
			dst[s] = wdot[s] * m.Species[s].W / mflux
		}
		Q := mech.VibSource(fl.rho, fl.p, fl.T, fl.Tv, yc, wdot)
		dst[nsp] = Q / mflux
	}

	prof := &Profile{}
	push := func(x float64, st []float64) error {
		fl, err := recover(st)
		if err != nil {
			return err
		}
		prof.X = append(prof.X, x)
		prof.T = append(prof.T, fl.T)
		prof.Tv = append(prof.Tv, fl.Tv)
		prof.P = append(prof.P, fl.p)
		prof.Rho = append(prof.Rho, fl.rho)
		prof.U = append(prof.U, fl.u)
		yc := append([]float64(nil), st[:nsp]...)
		thermo.Normalize(yc)
		prof.Y = append(prof.Y, yc)
		return nil
	}
	if err := push(0, state); err != nil {
		return nil, err
	}
	// Integrate between output stations with the adaptive integrator; use a
	// log-spaced output grid (the interesting physics is in the first mm).
	xs := numerics.Logspace(prob.XEnd*1e-5, prob.XEnd, prob.NOut-1)
	xPrev := 0.0
	for _, x := range xs {
		if _, err := numerics.RKF45(deriv, xPrev, x, state, numerics.RKF45Options{
			RelTol: 1e-6, AbsTol: 1e-9, MaxSteps: 400000,
			HInit: (x - xPrev) / 50,
		}); err != nil {
			return prof, fmt.Errorf("shocktube: integration to x=%g: %w", x, err)
		}
		// Renormalize drift.
		thermo.Normalize(state[:nsp])
		if err := push(x, state); err != nil {
			return prof, err
		}
		xPrev = x
	}
	return prof, nil
}

// EquilibriumTail returns the fully relaxed (equilibrium) post-shock state
// for comparison with the end of the integrated profile.
func EquilibriumTail(eq *chem.EquilibriumSolver, prob Problem) (T float64, y []float64, err error) {
	st, err := func() (s struct {
		T float64
		Y []float64
	}, err error) {
		js, err := shockEquil(eq, prob)
		if err != nil {
			return s, err
		}
		s.T = js.T
		s.Y = js.Y
		return s, nil
	}()
	if err != nil {
		return 0, nil, err
	}
	return st.T, st.Y, nil
}

type jumpState struct {
	T float64
	Y []float64
}

func shockEquil(eq *chem.EquilibriumSolver, prob Problem) (jumpState, error) {
	m := prob.Mix
	rho1 := m.Density(prob.P1, prob.T1, prob.Y1)
	mflux := rho1 * prob.U1
	P0 := prob.P1 + rho1*prob.U1*prob.U1
	H0 := m.Enthalpy(prob.T1, prob.Y1) + 0.5*prob.U1*prob.U1
	// Iterate: guess u2, compute p2, h2, equilibrium rho; match mass flux.
	f := func(u2 float64) float64 {
		p2 := P0 - mflux*u2
		h2 := H0 - 0.5*u2*u2
		_, _, rho, err := eq.TemperaturePH(p2, h2, prob.Y1)
		if err != nil {
			return math.NaN()
		}
		return rho*u2 - mflux
	}
	lo, hi := prob.U1*0.005, prob.U1*0.5
	u2, err := numerics.Brent(f, lo, hi, 1e-8*prob.U1)
	if err != nil {
		return jumpState{}, err
	}
	p2 := P0 - mflux*u2
	h2 := H0 - 0.5*u2*u2
	T, y, _, err := eq.TemperaturePH(p2, h2, prob.Y1)
	if err != nil {
		return jumpState{}, err
	}
	return jumpState{T: T, Y: y}, nil
}
