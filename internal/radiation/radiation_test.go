package radiation

import (
	"math"
	"testing"

	"cataero/internal/chem"
	"cataero/internal/thermo"
)

func TestPlanckKnownValues(t *testing.T) {
	// Peak of B_lambda at T=5800K is near 500 nm (Wien: 2898/5800 um).
	peakL := 0.0
	peakB := 0.0
	for l := 200.0; l < 2000; l += 5 {
		if b := PlanckLambda(l*1e-9, 5800); b > peakB {
			peakB, peakL = b, l
		}
	}
	if math.Abs(peakL-500) > 20 {
		t.Errorf("Planck peak at %g nm want ~500", peakL)
	}
	// Stefan-Boltzmann: pi * integral B dl = sigma T^4.
	T := 3000.0
	sum := 0.0
	dl := 2e-9
	for l := 50e-9; l < 60e-6; l += dl {
		sum += PlanckLambda(l, T) * dl
	}
	want := thermo.SigmaSB * math.Pow(T, 4)
	if math.Abs(math.Pi*sum-want) > 0.02*want {
		t.Errorf("Stefan-Boltzmann: pi*int=%g want %g", math.Pi*sum, want)
	}
	if PlanckLambda(500e-9, 0) != 0 {
		t.Error("B(T=0) should be 0")
	}
}

func airRadSetup(t *testing.T) (*thermo.Mixture, *Model, []float64) {
	t.Helper()
	m := thermo.NewMixture(thermo.AirSpecies11())
	md := NewAirModel(m, 400)
	eq := chem.NewEquilibriumSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	y, err := eq.CompositionRhoT(1e-3, 9000, y0)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumberDensities(1e-3, y)
	return m, md, n
}

func TestEmissionFeatures(t *testing.T) {
	_, md, n := airRadSetup(t)
	jl := make([]float64, len(md.LambdaNm))
	md.Emission(n, 9000, 9000, jl)
	// Find local value near the N2+ first negative head (391 nm) and in a
	// featureless gap (still nonzero from continuum but much smaller).
	at := func(lnm float64) float64 {
		best, bd := 0.0, math.Inf(1)
		for i, l := range md.LambdaNm {
			if d := math.Abs(l - lnm); d < bd {
				bd, best = d, jl[i]
			}
		}
		return best
	}
	if at(391.4) <= 0 {
		t.Fatal("no emission at N2+ band head")
	}
	if at(391.4) < 5*at(620) {
		t.Errorf("N2+ head %g not prominent vs gap %g", at(391.4), at(620))
	}
	// O 777 line present.
	if at(777.3) <= at(740) {
		t.Errorf("O 777 line missing: %g vs background %g", at(777.3), at(740))
	}
}

func TestEmissionIncreasesWithTex(t *testing.T) {
	_, md, n := airRadSetup(t)
	jl1 := make([]float64, len(md.LambdaNm))
	jl2 := make([]float64, len(md.LambdaNm))
	md.Emission(n, 9000, 6000, jl1)
	md.Emission(n, 9000, 12000, jl2)
	i1 := md.IntegrateSpectrum(jl1)
	i2 := md.IntegrateSpectrum(jl2)
	if i2 <= i1 {
		t.Errorf("emission should grow with Tex: %g vs %g", i1, i2)
	}
}

func TestSlabThinLimitMatches(t *testing.T) {
	_, md, n := airRadSetup(t)
	// A very thin slab: transport result approaches the optically thin bound.
	layers := UniformSlab(4, 1e-4, 9000, 9000, n)
	res := md.SolveSlab(layers)
	thin := md.OpticallyThinFlux(layers)
	if res.QWall <= 0 {
		t.Fatal("no wall flux")
	}
	if math.Abs(res.QWall-thin)/thin > 0.1 {
		t.Errorf("thin slab: transport %g vs thin limit %g", res.QWall, thin)
	}
}

func TestSlabThickLimitBounded(t *testing.T) {
	_, md, n := airRadSetup(t)
	// Growing the slab cannot push the flux beyond the blackbody bound at
	// the source temperature.
	T := 9000.0
	sigmaT4 := thermo.SigmaSB * math.Pow(T, 4)
	prev := 0.0
	for _, d := range []float64{0.001, 0.01, 0.1, 1, 10} {
		res := md.SolveSlab(UniformSlab(8, d, T, T, n))
		if res.QWall < prev*0.99 {
			t.Errorf("flux should grow with thickness: %g after %g", res.QWall, prev)
		}
		prev = res.QWall
		if res.QWall > sigmaT4 {
			t.Errorf("flux %g exceeds blackbody %g", res.QWall, sigmaT4)
		}
	}
}

func TestTitanModelCNDominates(t *testing.T) {
	m := thermo.NewMixture(thermo.TitanSpecies())
	md := NewTitanModel(m, 400)
	eq := chem.NewEquilibriumSolver(m)
	y0 := thermo.TitanFreestreamMassFractions(m.Species)
	y, _, err := eq.CompositionPT(5e4, 7000, y0)
	if err != nil {
		t.Fatal(err)
	}
	rho := 5e4 / (m.R(y) * 7000)
	n := m.NumberDensities(rho, y)
	jl := make([]float64, len(md.LambdaNm))
	md.Emission(n, 7000, 7000, jl)
	// CN violet (388 nm) should carry a large share of the radiance.
	peak, peakL := 0.0, 0.0
	for i, l := range md.LambdaNm {
		if jl[i] > peak {
			peak, peakL = jl[i], l
		}
	}
	if math.Abs(peakL-388.3) > 12 {
		t.Errorf("Titan spectrum peak at %g nm; expected the CN violet head", peakL)
	}
}

func TestEquilibriumLayersBuilder(t *testing.T) {
	y := []float64{0, 0.01, 0.02}
	T := []float64{1000, 5000, 7000}
	n := []float64{1e20}
	layers := EquilibriumLayers(y, T, func(i int) []float64 { return n })
	if len(layers) != 2 {
		t.Fatalf("layers %d", len(layers))
	}
	if layers[0].T != 3000 || layers[1].T != 6000 {
		t.Errorf("layer temps %g %g", layers[0].T, layers[1].T)
	}
	if math.Abs(layers[0].Thickness-0.01) > 1e-12 {
		t.Error("layer thickness")
	}
}

func TestEmptySlab(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	md := NewAirModel(m, 100)
	res := md.SolveSlab(nil)
	if res.QWall != 0 {
		t.Error("empty slab should radiate nothing")
	}
}
