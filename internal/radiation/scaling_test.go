package radiation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cataero/internal/thermo"
)

// Property: emission is linear in the emitter number density (each band and
// line scales with its species' population).
func TestEmissionLinearInDensity(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	md := NewAirModel(m, 200)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := make([]float64, m.Len())
		for i := range n {
			n[i] = r.Float64() * 1e21
		}
		T := 6000 + r.Float64()*8000
		j1 := make([]float64, len(md.LambdaNm))
		j2 := make([]float64, len(md.LambdaNm))
		md.Emission(n, T, T, j1)
		n2 := make([]float64, len(n))
		for i := range n {
			n2[i] = 3 * n[i]
		}
		md.Emission(n2, T, T, j2)
		for i := range j1 {
			if j1[i] == 0 {
				if j2[i] != 0 {
					return false
				}
				continue
			}
			ratio := j2[i] / j1[i]
			// Bands/lines scale linearly; the continuum term scales with
			// n_e*n_ion (quadratic), so allow the ratio band [3, 9].
			if ratio < 3-1e-9 || ratio > 9+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

func TestSlabOrderIndependenceThin(t *testing.T) {
	// In the optically thin limit the wall flux is independent of the layer
	// ordering (no self-absorption).
	m := thermo.NewMixture(thermo.AirSpecies11())
	md := NewAirModel(m, 150)
	n1 := make([]float64, m.Len())
	n2 := make([]float64, m.Len())
	n1[thermo.AirN2], n1[thermo.AirN] = 1e19, 1e19
	n2[thermo.AirN2], n2[thermo.AirN] = 5e18, 2e19
	a := []Layer{
		{Thickness: 1e-4, T: 8000, Tex: 8000, N: n1},
		{Thickness: 1e-4, T: 10000, Tex: 10000, N: n2},
	}
	b := []Layer{a[1], a[0]}
	qa := md.SolveSlab(a).QWall
	qb := md.SolveSlab(b).QWall
	if math.Abs(qa-qb) > 0.02*qa {
		t.Errorf("thin-limit order dependence: %g vs %g", qa, qb)
	}
}

func TestIntegrateSpectrumAgainstAnalytic(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	md := NewAirModel(m, 500)
	// A single synthetic Gaussian of unit total power per steradian.
	jl := make([]float64, len(md.LambdaNm))
	md.addGaussian(jl, 700, 10, 1.0)
	got := md.IntegrateSpectrum(jl)
	if math.Abs(got-1) > 0.02 {
		t.Errorf("Gaussian power integral %g want 1", got)
	}
}

func TestPlanckWienDisplacement(t *testing.T) {
	// Peak wavelength scales as 1/T.
	peak := func(T float64) float64 {
		best, bl := 0.0, 0.0
		for l := 100e-9; l < 20e-6; l *= 1.01 {
			if b := PlanckLambda(l, T); b > best {
				best, bl = b, l
			}
		}
		return bl
	}
	p1 := peak(3000)
	p2 := peak(6000)
	if math.Abs(p1/p2-2) > 0.1 {
		t.Errorf("Wien scaling %g want 2", p1/p2)
	}
}
