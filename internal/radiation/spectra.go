// Package radiation implements the spectral emission/absorption model and
// tangent-slab radiative transport of cataero: diatomic electronic band
// systems (N2+ first negative, N2 first/second positive, NO beta/gamma, CN
// violet/red, C2 Swan), atomic N/O line groups, a Kramers-like continuum,
// Boltzmann excited-state populations at the excitation temperature (Tv in
// the two-temperature model, the quasi-steady-state shortcut of the era's
// NEQAIR-class codes), and wall-flux evaluation with exponential integrals.
package radiation

import (
	"math"

	"cataero/internal/thermo"
)

// Band is one vibrational band head of an electronic system.
type Band struct {
	LambdaNm float64 // band-head wavelength, nm
	Frac     float64 // fraction of the system's total transition strength
	WidthNm  float64 // smeared band width (Gaussian sigma), nm
}

// BandSystem is a diatomic electronic transition radiating a set of bands.
type BandSystem struct {
	Name    string
	Species string  // emitting species
	AEff    float64 // effective transition probability, 1/s
	GU      float64 // upper-state degeneracy
	ThetaU  float64 // upper-state excitation temperature, K
	Bands   []Band
}

// Line is an atomic line group.
type Line struct {
	Name     string
	Species  string
	LambdaNm float64
	A        float64 // transition probability, 1/s
	GU       float64
	ThetaU   float64 // upper-level excitation temperature, K
	WidthNm  float64
}

// Model is a spectral emission model over a fixed wavelength grid.
type Model struct {
	Mix     *thermo.Mixture
	Systems []BandSystem
	Lines   []Line
	// Continuum strength multiplier (Kramers-like free-bound+free-free).
	ContinuumC float64
	LambdaNm   []float64 // wavelength grid, nm
	spIdx      map[string]int
}

// NewModel builds a model with nl wavelengths between lo and hi nm.
func NewModel(m *thermo.Mixture, systems []BandSystem, lines []Line, lo, hi float64, nl int) *Model {
	grid := make([]float64, nl)
	for i := range grid {
		grid[i] = lo + (hi-lo)*float64(i)/float64(nl-1)
	}
	idx := make(map[string]int)
	for i, s := range m.Species {
		idx[s.Name] = i
	}
	return &Model{
		Mix: m, Systems: systems, Lines: lines,
		ContinuumC: 1, LambdaNm: grid, spIdx: idx,
	}
}

// NewAirModel returns the air radiation model (N2+, N2, NO systems; N, O
// lines) over 200-1400 nm.
func NewAirModel(m *thermo.Mixture, nl int) *Model {
	systems := []BandSystem{
		{
			Name: "N2+ first negative", Species: "N2+",
			AEff: 1.1e7, GU: 2, ThetaU: 36633,
			Bands: []Band{
				{391.4, 0.50, 6}, {427.8, 0.25, 6}, {470.9, 0.12, 7}, {358.2, 0.13, 6},
			},
		},
		{
			Name: "N2 second positive", Species: "N2",
			AEff: 2.0e7, GU: 6, ThetaU: 127700, // C3Pi_u at ~11 eV
			Bands: []Band{
				{337.1, 0.40, 5}, {357.7, 0.25, 5}, {380.5, 0.18, 6}, {315.9, 0.17, 5},
			},
		},
		{
			Name: "N2 first positive", Species: "N2",
			AEff: 1.3e5, GU: 6, ThetaU: 85600, // B3Pi_g at ~7.35 eV
			Bands: []Band{
				{662.4, 0.15, 20}, {775.3, 0.30, 25}, {891.2, 0.30, 30}, {1046.9, 0.25, 35},
			},
		},
		{
			Name: "NO beta+gamma", Species: "NO",
			AEff: 4.0e6, GU: 2, ThetaU: 63300,
			Bands: []Band{
				{226.9, 0.35, 6}, {237.0, 0.25, 6}, {247.9, 0.22, 7}, {259.6, 0.18, 7},
			},
		},
	}
	lines := []Line{
		{"N 746.8 triplet", "N", 746.8, 1.96e7, 6, 137800, 1.2},
		{"N 821.6 group", "N", 821.6, 2.26e7, 10, 134000, 1.2},
		{"N 868.0 group", "N", 868.0, 2.53e7, 10, 133300, 1.2},
		{"O 777.3 triplet", "O", 777.3, 3.69e7, 15, 125300, 1.2},
		{"O 844.6 triplet", "O", 844.6, 3.22e7, 9, 126400, 1.2},
	}
	return NewModel(m, systems, lines, 200, 1400, nl)
}

// NewTitanModel returns the Titan N2/CH4 shock-layer radiation model, where
// CN violet dominates the heating (the paper's Titan probe discussion).
func NewTitanModel(m *thermo.Mixture, nl int) *Model {
	systems := []BandSystem{
		{
			Name: "CN violet", Species: "CN",
			AEff: 1.5e7, GU: 2, ThetaU: 37050,
			Bands: []Band{
				{388.3, 0.55, 5}, {421.6, 0.22, 6}, {359.0, 0.23, 5},
			},
		},
		{
			Name: "CN red", Species: "CN",
			AEff: 5.0e5, GU: 4, ThetaU: 13300,
			Bands: []Band{
				{787.0, 0.35, 20}, {914.0, 0.35, 25}, {1090.0, 0.30, 30},
			},
		},
		{
			Name: "C2 Swan", Species: "C2",
			AEff: 7.0e6, GU: 6, ThetaU: 27900,
			Bands: []Band{
				{516.5, 0.45, 8}, {473.7, 0.25, 8}, {563.5, 0.30, 9},
			},
		},
		{
			Name: "N2 first positive", Species: "N2",
			AEff: 1.3e5, GU: 6, ThetaU: 85600,
			Bands: []Band{
				{775.3, 0.5, 25}, {891.2, 0.5, 30},
			},
		},
	}
	var lines []Line
	return NewModel(m, systems, lines, 200, 1400, nl)
}

// PlanckLambda returns the Planck spectral radiance B_lambda(T) in
// W/(m^2 sr m) for wavelength lambda in meters.
func PlanckLambda(lambdaM, T float64) float64 {
	if T <= 0 || lambdaM <= 0 {
		return 0
	}
	c1 := 2 * thermo.Planck * thermo.LightC * thermo.LightC
	x := thermo.Planck * thermo.LightC / (lambdaM * thermo.KB * T)
	if x > 700 {
		return 0
	}
	return c1 / math.Pow(lambdaM, 5) / (math.Exp(x) - 1)
}

// Emission fills jl (len = len(LambdaNm)) with the spectral emission
// coefficient j_lambda in W/(m^3 sr m) for number densities n (1/m^3, one
// per mixture species), heavy temperature T and excitation temperature Tex
// (equal to T in equilibrium, Tv in the two-temperature model).
func (md *Model) Emission(n []float64, T, Tex float64, jl []float64) {
	for i := range jl {
		jl[i] = 0
	}
	hc := thermo.Planck * thermo.LightC
	for _, sys := range md.Systems {
		si, ok := md.spIdx[sys.Species]
		if !ok || n[si] <= 0 {
			continue
		}
		sp := md.Mix.Species[si]
		qel := sp.QElec(Tex)
		x := sys.ThetaU / Tex
		if x > 400 {
			continue
		}
		nU := n[si] * sys.GU * math.Exp(-x) / qel
		for _, b := range sys.Bands {
			// Total band power per volume: n_u A (hc/lambda) Frac / 4pi,
			// distributed over a Gaussian in wavelength.
			lm := b.LambdaNm * 1e-9
			p := nU * sys.AEff * b.Frac * hc / lm / (4 * math.Pi)
			md.addGaussian(jl, b.LambdaNm, b.WidthNm, p)
		}
	}
	for _, ln := range md.Lines {
		si, ok := md.spIdx[ln.Species]
		if !ok || n[si] <= 0 {
			continue
		}
		sp := md.Mix.Species[si]
		qel := sp.QElec(Tex)
		x := ln.ThetaU / Tex
		if x > 400 {
			continue
		}
		nU := n[si] * ln.GU * math.Exp(-x) / qel
		lm := ln.LambdaNm * 1e-9
		p := nU * ln.A * hc / lm / (4 * math.Pi)
		md.addGaussian(jl, ln.LambdaNm, ln.WidthNm, p)
	}
	// Continuum: Kramers-like recombination/brems with electron-ion pairs
	// (air) or thermal continuum scale (neutral gas): emissivity proportional
	// to n_e * n_ion with exp(-hc/lambda k T) spectral shape.
	if md.ContinuumC > 0 {
		ne := 0.0
		nion := 0.0
		for i, sp := range md.Mix.Species {
			if sp.Name == "e-" {
				ne = n[i]
			} else if sp.Charge > 0 {
				nion += n[i]
			}
		}
		if ne > 0 && nion > 0 && T > 0 {
			cff := 5.4e-52 * md.ContinuumC // tuned Kramers constant
			base := cff * ne * nion / math.Sqrt(T)
			for i, lnm := range md.LambdaNm {
				lm := lnm * 1e-9
				x := hc / (lm * thermo.KB * T)
				if x < 500 {
					jl[i] += base * math.Exp(-x) / (lm * lm)
				}
			}
		}
	}
}

// addGaussian spreads total power p (W/(m^3 sr)) as a Gaussian of center c
// and sigma w (both nm) across the wavelength grid, in per-meter units.
func (md *Model) addGaussian(jl []float64, c, w, p float64) {
	if w <= 0 {
		w = 1
	}
	norm := p / (w * 1e-9 * math.Sqrt(2*math.Pi))
	for i, l := range md.LambdaNm {
		d := (l - c) / w
		if d > 5 || d < -5 {
			continue
		}
		jl[i] += norm * math.Exp(-0.5*d*d)
	}
}

// IntegrateSpectrum returns the wavelength-integrated radiance
// (W/(m^3 sr)) of a spectral distribution on the model grid.
func (md *Model) IntegrateSpectrum(jl []float64) float64 {
	s := 0.0
	for i := 1; i < len(jl); i++ {
		dl := (md.LambdaNm[i] - md.LambdaNm[i-1]) * 1e-9
		s += 0.5 * (jl[i] + jl[i-1]) * dl
	}
	return s
}
