package radiation

import (
	"math"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// Layer is one slice of a radiating plane slab.
type Layer struct {
	Thickness float64   // m
	T         float64   // heavy-particle temperature, K
	Tex       float64   // excitation temperature (Tv), K
	N         []float64 // species number densities, 1/m^3
}

// SlabResult is the tangent-slab transport solution.
type SlabResult struct {
	QWall         float64   // wall-directed radiative flux, W/m^2
	QOut          float64   // outward (shockward) flux, W/m^2
	WallSpectrumI []float64 // wall-directed spectral intensity, W/(m^2 sr m)
	LambdaNm      []float64
}

// SolveSlab performs tangent-slab radiative transport through the layers
// (layer 0 adjacent to the wall) for the model's wavelength grid:
//
//	q-(0) = 2 pi integral_0^tau0 S(t) E2(t) dt
//
// with the source function S = j/kappa and kappa from Kirchhoff's law at the
// local source temperature. Optically thin layers reduce to 2 pi j dz; thick
// slabs saturate at the blackbody flux.
func (md *Model) SolveSlab(layers []Layer) SlabResult {
	nl := len(md.LambdaNm)
	nk := len(layers)
	res := SlabResult{
		WallSpectrumI: make([]float64, nl),
		LambdaNm:      md.LambdaNm,
	}
	if nk == 0 {
		return res
	}
	// Per-layer emission and absorption at each wavelength.
	j := make([][]float64, nk)
	kap := make([][]float64, nk)
	for k, ly := range layers {
		j[k] = make([]float64, nl)
		kap[k] = make([]float64, nl)
		md.Emission(ly.N, ly.T, ly.Tex, j[k])
		for i := range j[k] {
			// Kirchhoff at the excitation temperature that produced the
			// emission; floor kappa to keep the thin limit well-behaved.
			B := PlanckLambda(md.LambdaNm[i]*1e-9, math.Max(ly.Tex, 300))
			if B > 0 {
				kap[k][i] = j[k][i] / B
			}
		}
	}
	// Wall-directed flux wavelength by wavelength.
	qspec := make([]float64, nl)
	for i := 0; i < nl; i++ {
		// Optical depth from the wall outward.
		tau := 0.0
		qw := 0.0
		iw := 0.0
		for k := 0; k < nk; k++ {
			dtau := kap[k][i] * layers[k].Thickness
			var S float64
			if kap[k][i] > 1e-30 {
				S = j[k][i] / kap[k][i]
			}
			if dtau < 1e-8 {
				// Optically thin layer: contribution 2 pi j dz E2(tau).
				qw += 2 * math.Pi * j[k][i] * layers[k].Thickness * numerics.E2(tau)
				iw += j[k][i] * layers[k].Thickness * math.Exp(-tau)
			} else {
				// Constant-S layer between tau and tau+dtau:
				// 2 pi S [E3(tau) - E3(tau+dtau)].
				qw += 2 * math.Pi * S * (numerics.E3(tau) - numerics.E3(tau+dtau))
				iw += S * (1 - math.Exp(-dtau)) * math.Exp(-tau)
			}
			tau += dtau
		}
		res.WallSpectrumI[i] = iw
		qspec[i] = qw
	}
	for i := 1; i < nl; i++ {
		dl := (md.LambdaNm[i] - md.LambdaNm[i-1]) * 1e-9
		res.QWall += 0.5 * (qspec[i] + qspec[i-1]) * dl
	}
	// Symmetric slab: outward flux equals wall flux for a symmetric layer
	// stack; report the same integral (callers with asymmetric stacks can
	// reverse the layers).
	res.QOut = res.QWall
	return res
}

// UniformSlab builds n identical layers of total thickness d.
func UniformSlab(n int, d, T, tex float64, nden []float64) []Layer {
	layers := make([]Layer, n)
	for i := range layers {
		layers[i] = Layer{Thickness: d / float64(n), T: T, Tex: tex, N: nden}
	}
	return layers
}

// OpticallyThinFlux returns the thin-limit wall flux 2 pi sum j dz
// integrated over wavelength; an upper bound and useful cross-check.
func (md *Model) OpticallyThinFlux(layers []Layer) float64 {
	nl := len(md.LambdaNm)
	jl := make([]float64, nl)
	tot := make([]float64, nl)
	for _, ly := range layers {
		md.Emission(ly.N, ly.T, ly.Tex, jl)
		for i := range tot {
			tot[i] += 2 * math.Pi * jl[i] * ly.Thickness
		}
	}
	s := 0.0
	for i := 1; i < nl; i++ {
		dl := (md.LambdaNm[i] - md.LambdaNm[i-1]) * 1e-9
		s += 0.5 * (tot[i] + tot[i-1]) * dl
	}
	return s
}

// EquilibriumLayers builds slab layers from an equilibrium shock-layer
// profile: positions y (from wall), temperatures T(y) and a composition
// closure returning number densities at each point.
func EquilibriumLayers(y []float64, T []float64, nOf func(i int) []float64) []Layer {
	n := len(y)
	layers := make([]Layer, 0, n-1)
	for i := 1; i < n; i++ {
		tm := 0.5 * (T[i] + T[i-1])
		layers = append(layers, Layer{
			Thickness: y[i] - y[i-1],
			T:         tm, Tex: tm,
			N: nOf(i),
		})
	}
	return layers
}

var _ = thermo.KB // keep thermo linked for PlanckLambda constants
