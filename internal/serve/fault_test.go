package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"cataero"
	"cataero/internal/faultinject"
	"cataero/internal/fvm"
	"cataero/internal/ledger"
)

// ckptNSProblem is an NS case slow enough to interrupt mid-march (several
// hundred implicit steps on a 24x32 grid) yet quick enough to solve to
// completion inside a test. Sequencing is forced off so the whole march
// runs in the single "solve" phase.
func ckptNSProblem() cataero.Problem {
	return cataero.Problem{
		Class:     cataero.NS,
		Chemistry: cataero.EquilibriumAir,
		PInf:      5474.9, TInf: 216.65, VInf: 1770.4,
		NoseRadius: 0.3, TWall: 1500,
		NI: 32, NJ: 48, MaxSteps: 4000,
		TimeStepping:   fvm.TimeSteppingImplicit,
		GridSequencing: cataero.ToggleOff,
	}
}

// snapStep extracts the terminal step count from a snapshot document.
func snapStep(t *testing.T, snap json.RawMessage) int {
	t.Helper()
	var v struct {
		Step int `json:"step"`
	}
	if err := json.Unmarshal(snap, &v); err != nil {
		t.Fatalf("parse snapshot: %v", err)
	}
	return v.Step
}

// TestDrainRejectsSubmissions: a draining server answers new work with 503 +
// Retry-After on both the single-run and batch endpoints.
func TestDrainRejectsSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, v := postCase(t, ts.URL+"/api/runs", eblProblem(6600), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d %+v, want 503", resp.StatusCode, v)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if v.Error == "" {
		t.Fatal("503 without error body")
	}

	resp2, err := http.Post(ts.URL+"/api/batch", "application/json",
		strings.NewReader(`[{"class":"ebl","p_inf":4.8,"t_inf":217,"v_inf":6600,"nose_radius":0.6,"t_wall":1200}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: status %d, want 503", resp2.StatusCode)
	}
}

// TestDrainCheckpointsAndRecoverResumes is the crash-safety acceptance path:
// a solve interrupted by Drain leaves a resumable checkpoint in the ledger;
// a new server over the same directory re-submits it via Recover, and the
// resumed run converges to a result byte-identical to an uninterrupted
// solve while marching strictly fewer steps in the resumed process.
func TestDrainCheckpointsAndRecoverResumes(t *testing.T) {
	// Uninterrupted reference solve over its own ledger. Compare stored
	// ledger artifacts, not HTTP bodies — the response encoder re-indents.
	lCold, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, tsCold := newTestServer(t, Config{Ledger: lCold})
	resp, cold := postCase(t, tsCold.URL+"/api/runs?wait=1", ckptNSProblem(), nil)
	if resp.StatusCode != http.StatusOK || cold.Error != "" || len(cold.Result) == 0 {
		t.Fatalf("cold solve failed: status %d %+v", resp.StatusCode, cold)
	}
	coldEntry, err := lCold.Get(cold.Key)
	if err != nil || coldEntry == nil {
		t.Fatalf("cold result not in ledger (err %v)", err)
	}
	coldStep := snapStep(t, cold.Snapshot)
	if coldStep <= 50 {
		t.Fatalf("cold solve finished in %d steps; too fast to interrupt reliably", coldStep)
	}

	// Victim server: checkpoint every few steps, then drain mid-march.
	dir := t.TempDir()
	lA, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sA, tsA := newTestServer(t, Config{Ledger: lA, CheckpointEvery: 5})
	_, victim := postCase(t, tsA.URL+"/api/runs", ckptNSProblem(), nil)
	if victim.ID == "" || victim.Key != cold.Key {
		t.Fatalf("victim submission: %+v (cold key %s)", victim, cold.Key)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if c, err := lA.GetCheckpoint(victim.Key); err == nil && c != nil && c.Step > 0 {
			break
		}
		if e, _ := lA.Get(victim.Key); e != nil {
			t.Fatal("solve finished before the first checkpoint; case too fast for this test")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if e, _ := lA.Get(victim.Key); e != nil {
		t.Fatal("drained run still produced a result entry")
	}
	ck, err := lA.GetCheckpoint(victim.Key)
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint survived the drain (err %v)", err)
	}
	if len(ck.Spec) == 0 {
		t.Fatal("checkpoint stored without its case spec")
	}

	// Restarted server over the same ledger directory resumes the run.
	lB, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sB, _ := newTestServer(t, Config{Ledger: lB, CheckpointEvery: 5})
	n, err := sB.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: %d resumed, err %v; want 1", n, err)
	}

	var entry *ledger.Entry
	deadline = time.Now().Add(120 * time.Second)
	for {
		if entry, _ = lB.Get(victim.Key); entry != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered run never produced a result")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !bytes.Equal(entry.Result, coldEntry.Result) {
		t.Fatalf("resumed result differs from uninterrupted solve (resumed step %d, ckpt step %d, cold step %d):\n%.300s\nvs\n%.300s",
			snapStep(t, entry.Snapshot), ck.Step, coldStep, entry.Result, coldEntry.Result)
	}
	resumedStep := snapStep(t, entry.Snapshot)
	if resumedStep >= coldStep {
		t.Fatalf("resumed run marched %d steps, cold %d; resume saved nothing", resumedStep, coldStep)
	}
	if resumedStep+ck.Step < coldStep {
		t.Fatalf("resumed steps %d + checkpoint step %d fall short of cold %d", resumedStep, ck.Step, coldStep)
	}
	// The landed result supersedes the checkpoint.
	if c, _ := lB.GetCheckpoint(victim.Key); c != nil {
		t.Fatal("checkpoint survived its run's result")
	}
}

// TestRecoverDropsStaleCheckpoint: a checkpoint whose result already landed
// is deleted, not re-submitted.
func TestRecoverDropsStaleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Ledger: l})
	_, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6500), nil)
	if v.Error != "" {
		t.Fatalf("seed solve failed: %+v", v)
	}
	// Plant a leftover checkpoint under the completed run's key.
	err = l.PutCheckpoint(&ledger.Checkpoint{Key: v.Key, Spec: []byte(`{}`), Step: 3, Data: []byte("stale")})
	if err != nil {
		t.Fatal(err)
	}

	l2, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newTestServer(t, Config{Ledger: l2, CheckpointEvery: 5})
	n, err := s2.Recover()
	if err != nil || n != 0 {
		t.Fatalf("recover: %d resumed, err %v; want 0", n, err)
	}
	if c, _ := l2.GetCheckpoint(v.Key); c != nil {
		t.Fatal("stale checkpoint survived recovery")
	}
}

// TestConditionalRequests: cached responses carry an ETag (the result
// checksum) and If-None-Match answers 304 from the ETag cache without
// re-reading the ledger artifact.
func TestConditionalRequests(t *testing.T) {
	l, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Ledger: l})
	_, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6800), nil)
	if v.Error != "" {
		t.Fatalf("seed solve failed: %+v", v)
	}

	// The ledger endpoint serves the entry with its checksum as ETag.
	resp, err := http.Get(ts.URL + "/api/ledger/" + v.Key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("ledger get: status %d etag %q", resp.StatusCode, etag)
	}

	hitsBefore := l.Stats().Hits
	for _, url := range []string{ts.URL + "/api/ledger/" + v.Key, ts.URL + "/api/runs?wait=1"} {
		method, body := http.MethodGet, ""
		if strings.Contains(url, "/api/runs") {
			method = http.MethodPost
			raw, err := json.Marshal(eblProblem(6800))
			if err != nil {
				t.Fatal(err)
			}
			body = string(raw)
		}
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s %s with matching If-None-Match: status %d, want 304", method, url, resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag %q, want %q", got, etag)
		}
	}
	if hits := l.Stats().Hits; hits != hitsBefore {
		t.Fatalf("304 responses read the ledger: hits %d -> %d", hitsBefore, hits)
	}

	// A stale validator gets the full cached response, with the current tag.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/ledger/"+v.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
		t.Fatalf("stale validator: status %d etag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
}

// TestDeadlineCheckpointsThenCancels: a run exceeding its X-Deadline-Ms
// bound fails with a deadline error — after persisting a checkpoint, so the
// work already done survives.
func TestDeadlineCheckpointsThenCancels(t *testing.T) {
	l, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Ledger: l, CheckpointEvery: 5})

	// slowNSProblem marches far past any test-scale deadline, so the bound
	// reliably fires mid-solve.
	resp, v := postCase(t, ts.URL+"/api/runs?wait=1", slowNSProblem(),
		map[string]string{"X-Deadline-Ms": "400"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("deadlined solve: status %d %+v", resp.StatusCode, v)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("deadlined solve error %q", v.Error)
	}
	if len(v.Result) != 0 {
		t.Fatal("deadlined solve carries a result")
	}
	ck, err := l.GetCheckpoint(v.Key)
	if err != nil || ck == nil || ck.Step == 0 {
		t.Fatalf("no checkpoint survived the deadline (ck %+v, err %v)", ck, err)
	}

	// Malformed deadline headers are rejected up front.
	for _, bad := range []string{"0", "-5", "soon", "1.5"} {
		resp, _ := postCase(t, ts.URL+"/api/runs", eblProblem(6400),
			map[string]string{"X-Deadline-Ms": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("X-Deadline-Ms %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestLedgerWriteFailureDegradesToCacheless: a ledger that cannot persist —
// full or read-only disk, simulated by fault injection — must never fail
// the run; the server degrades to cache-less operation.
func TestLedgerWriteFailureDegradesToCacheless(t *testing.T) {
	defer faultinject.Reset()
	l, err := ledger.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Ledger: l, CheckpointEvery: 5})
	boom := errors.New("read-only filesystem")
	faultinject.Set("ledger.put", func() error { return boom })
	faultinject.Set("ledger.put-checkpoint", func() error { return boom })

	resp, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6700), nil)
	if resp.StatusCode != http.StatusOK || v.Error != "" || len(v.Result) == 0 {
		t.Fatalf("solve failed under ledger write failure: status %d %+v", resp.StatusCode, v)
	}
	if v.Cached {
		t.Fatal("first solve reported cached")
	}
	if e, _ := l.Get(v.Key); e != nil {
		t.Fatal("entry landed despite injected write failure")
	}

	// Still write-broken: the same case solves again rather than erroring.
	resp, again := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6700), nil)
	if resp.StatusCode != http.StatusOK || again.Error != "" || again.Cached {
		t.Fatalf("cache-less re-solve: status %d %+v", resp.StatusCode, again)
	}
	if !bytes.Equal(again.Result, v.Result) {
		t.Fatal("re-solved result differs")
	}

	// Ledger heals: the next solve persists normally.
	faultinject.Reset()
	if _, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6700), nil); v.Error != "" {
		t.Fatalf("post-heal solve failed: %+v", v)
	}
	if e, _ := l.Get(v.Key); e == nil {
		t.Fatal("entry missing after ledger healed")
	}
}
