package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// waitQueued polls until the admitter shows n total queued waiters.
func waitQueued(t *testing.T, a *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		q := a.queued()
		if q[prioLow]+q[prioNormal]+q[prioHigh] == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters: %v", n, a.queued())
}

// TestLaneOrdering: with one slot held and one waiter in each lane, freed
// slots go high → normal → low regardless of arrival order.
func TestLaneOrdering(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []priority
	var wg sync.WaitGroup
	// Arrival order low, normal, high — the opposite of admission order.
	for _, lane := range []priority{prioLow, prioNormal, prioHigh} {
		wg.Add(1)
		go func(lane priority) {
			defer wg.Done()
			if err := a.acquire(context.Background(), lane); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, lane)
			mu.Unlock()
			a.release()
		}(lane)
		waitQueued(t, a, int(lane)+1)
	}

	a.release() // free the held slot; the chain drains highest-first
	wg.Wait()
	want := []priority{prioHigh, prioNormal, prioLow}
	for i, lane := range want {
		if order[i] != lane {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

// TestLaneFIFOWithinLane: same-lane waiters are admitted in arrival order.
func TestLaneFIFOWithinLane(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.acquire(context.Background(), prioNormal); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release()
		}(i)
		waitQueued(t, a, i+1)
	}
	a.release()
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-lane admission order %v, want FIFO", order)
		}
	}
}

// TestAcquireCancel: a canceled waiter withdraws from its lane and does not
// leak the slot.
func TestAcquireCancel(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), prioNormal); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, prioHigh) }()
	waitQueued(t, a, 1)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled acquire returned nil")
	}
	if q := a.queued(); q[prioHigh] != 0 {
		t.Fatalf("canceled waiter still queued: %v", q)
	}
	// The held slot still releases cleanly to a fresh waiter.
	a.release()
	if err := a.acquire(context.Background(), prioLow); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaTakeAndRefill drives the token bucket with explicit clocks, so
// the arithmetic is deterministic: burst spends down, an empty bucket
// reports a positive retry delay, and tokens accrue at the configured rate.
func TestQuotaTakeAndRefill(t *testing.T) {
	q := newQuotas(50, 2) // 50 tokens/s, depth 2
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := q.take("alice", t0); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := q.take("alice", t0)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v implausible for 50/s", retry)
	}
	// One token accrues in 20 ms at 50/s.
	if ok, _ := q.take("alice", t0.Add(25*time.Millisecond)); !ok {
		t.Fatal("token did not refill")
	}
	// Quotas are per client: bob is untouched by alice's spending.
	if ok, _ := q.take("bob", t0); !ok {
		t.Fatal("independent client refused")
	}
}

func TestQuotaDisabled(t *testing.T) {
	q := newQuotas(0, 1)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := q.take("anyone", t0); !ok {
			t.Fatal("disabled quota refused a take")
		}
	}
}

func TestParsePriority(t *testing.T) {
	for s, want := range map[string]priority{
		"": prioNormal, "low": prioLow, "normal": prioNormal, "high": prioHigh,
	} {
		got, err := parsePriority(s)
		if err != nil || got != want {
			t.Errorf("parsePriority(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parsePriority("urgent"); err == nil {
		t.Error("unknown priority accepted")
	}
}
