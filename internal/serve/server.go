// Package serve is the HTTP/JSON front end of the toolkit: an aerothermal
// solve service over cataero.Session with a persistent, content-addressed
// run ledger. Millions of reentry-heating queries cluster around a few
// thousand flight conditions; the ledger turns that repeat traffic into
// disk hits, and the admission layer (priority lanes, per-client quotas)
// keeps the solver farm responsive under mixed interactive/bulk load.
//
// # Endpoints
//
//	GET  /healthz                 liveness (also reports ledger stats)
//	POST /api/runs                submit one CaseSpec; ?wait=1 blocks for the
//	                              result. Ledger hits return immediately with
//	                              "cached": true; misses return 202 + run ID
//	                              (in-flight duplicates coalesce onto one run).
//	GET  /api/runs                list known runs, newest first
//	GET  /api/runs/{id}           run status: snapshot, and result when done
//	GET  /api/runs/{id}/events    SSE progress stream (snapshot events, then
//	                              one done event); plain GET is the polling
//	                              fallback
//	DELETE /api/runs/{id}         cancel a queued or running solve
//	POST /api/batch               submit an array of CaseSpecs (the HTTP form
//	                              of Session.SubmitAll); per-case hit/miss
//	GET  /api/ledger              list ledger entries
//	GET  /api/ledger/{key}        fetch one ledger entry
//
// Requests authenticate a client (for quota accounting only) with the
// X-API-Key header, and pick an admission lane with X-Priority: low,
// normal (default) or high. X-Deadline-Ms bounds one solve's wall clock:
// a run that exceeds it is checkpointed and cancelled. Cached submissions
// carry an ETag (the result checksum); If-None-Match returns 304 without
// re-reading the artifact.
//
// # Fault tolerance
//
// With a ledger and a checkpoint cadence configured, in-flight solves
// periodically persist resumable checkpoints under their case key. Drain
// (SIGTERM in `catsim serve`) rejects new admissions with 503 + Retry-After,
// checkpoints and cancels in-flight runs, and Recover on the next start
// re-submits interrupted runs from their checkpoints, so a restarted server
// continues long solves instead of repeating them.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cataero"
	"cataero/internal/ledger"
)

// Config assembles a Server.
type Config struct {
	// Session executes the solves. Required. Its admission width should be
	// at least Workers (cmd/catsim sizes the two together) so the session's
	// FIFO never reorders what the priority lanes decided.
	Session *cataero.Session
	// Ledger is the persistent run store; nil serves without caching.
	Ledger *ledger.Ledger
	// Workers bounds concurrently executing solves (default GOMAXPROCS via
	// the session; the admitter floors at 1).
	Workers int
	// QuotaRate is the per-client solve-admission rate in requests/second;
	// <= 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket depth (default 1 when limiting).
	QuotaBurst int
	// CheckpointEvery, when positive (and a Ledger is configured), makes
	// every executed solve persist a resumable checkpoint to the ledger
	// every CheckpointEvery steps, and makes new solves resume from any
	// valid checkpoint already stored under their case key. A case spec's
	// own checkpoint_every takes precedence over this default.
	CheckpointEvery int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// maxBodyBytes bounds a request body; case specs are small.
const maxBodyBytes = 1 << 20

// maxBatchCases bounds one batch submission.
const maxBatchCases = 256

// maxRetainedRuns bounds the in-memory run registry; the oldest finished
// runs are evicted beyond it (their results live on in the ledger).
const maxRetainedRuns = 4096

// Server is the solve service. Create with New, expose via Handler, stop
// with Close.
type Server struct {
	cfg Config
	adm *admitter
	quo *quotas
	mux *http.ServeMux

	ctx    context.Context // lifetime of background solves
	cancel context.CancelFunc

	// draining rejects new admissions (503 + Retry-After) while the server
	// checkpoints and stops its in-flight runs (see Drain).
	draining atomic.Bool

	mu     sync.Mutex
	runs   map[string]*srvRun // by ID
	byKey  map[string]*srvRun // in-flight only: coalesces duplicate submissions
	order  []*srvRun          // submission order, for listing and eviction
	etags  map[string]string  // case key -> result checksum, for If-None-Match
	nextID uint64
}

// srvRun is one submitted solve tracked by the server. Lifecycle fields are
// published by channel close: run is valid once admitted is closed; result,
// finalSnap and err once done is closed.
type srvRun struct {
	id       string
	key      string
	name     string
	lane     priority
	created  time.Time
	spec     json.RawMessage // canonical case JSON (the hashed bytes)
	problem  cataero.Problem
	cancel   context.CancelFunc
	deadline time.Duration // per-request solve bound (X-Deadline-Ms); 0 = none
	admitted chan struct{}
	done     chan struct{}

	run       *cataero.Run
	result    json.RawMessage
	finalSnap cataero.Snapshot
	err       error
}

// New builds a Server and starts nothing: solves run on demand, each on its
// own goroutine gated by the admitter.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, errors.New("serve: Config.Session is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		adm:    newAdmitter(cfg.Workers),
		quo:    newQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		mux:    http.NewServeMux(),
		ctx:    ctx,
		cancel: cancel,
		runs:   make(map[string]*srvRun),
		byKey:  make(map[string]*srvRun),
		etags:  make(map[string]string),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /api/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/runs", s.handleListRuns)
	s.mux.HandleFunc("GET /api/runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("GET /api/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("DELETE /api/runs/{id}", s.handleRunCancel)
	s.mux.HandleFunc("POST /api/batch", s.handleBatch)
	s.mux.HandleFunc("GET /api/ledger", s.handleLedgerList)
	s.mux.HandleFunc("GET /api/ledger/{key}", s.handleLedgerGet)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every in-flight solve and stops accepting work's effects;
// the HTTP listener (owned by the caller) should be shut down first.
func (s *Server) Close() { s.cancel() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- responses ---

// runView is the wire form of a run: submission metadata, the live
// snapshot, and the result artifact once available. A ledger hit is a
// synthetic view with Cached set and no ID (nothing to poll).
type runView struct {
	ID       string `json:"id,omitempty"`
	Key      string `json:"key"`
	Name     string `json:"name,omitempty"`
	Priority string `json:"priority,omitempty"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	// Coalesced marks a submission that attached to an identical case
	// already in flight instead of starting a new solve.
	Coalesced bool            `json:"coalesced,omitempty"`
	Created   time.Time       `json:"created,omitzero"`
	Snapshot  json.RawMessage `json:"snapshot,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	// SolvedInMS is the wall clock of the solve that produced the result —
	// for a cached response, the original solve this hit avoided.
	SolvedInMS float64 `json:"solved_in_ms,omitempty"`
	Solver     string  `json:"solver,omitempty"`
	Version    string  `json:"version,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok", "version": cataero.Version}
	if s.cfg.Ledger != nil {
		resp["ledger"] = s.cfg.Ledger.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// submission is one parsed, keyed case ready for admission.
type submission struct {
	problem  cataero.Problem
	key      string
	spec     json.RawMessage
	name     string
	deadline time.Duration
}

// prepare normalizes a problem against the session and computes its
// content key.
func (s *Server) prepare(p cataero.Problem) (submission, error) {
	np, err := s.cfg.Session.Normalize(p)
	if err != nil {
		return submission{}, err
	}
	spec, err := cataero.CanonicalJSON(np)
	if err != nil {
		return submission{}, err
	}
	key, err := cataero.CaseKey(np)
	if err != nil {
		return submission{}, err
	}
	return submission{problem: np, key: key, spec: spec, name: p.Name}, nil
}

// lookupLedger returns the cached view for a key, when the ledger holds a
// valid entry, caching the entry checksum as the key's ETag.
func (s *Server) lookupLedger(key string) *runView {
	if s.cfg.Ledger == nil {
		return nil
	}
	e, err := s.cfg.Ledger.Get(key)
	if err != nil || e == nil {
		return nil
	}
	s.setEtag(key, e.Checksum)
	return &runView{
		Key:        e.Key,
		State:      cataero.RunDone.String(),
		Cached:     true,
		Snapshot:   e.Snapshot,
		Result:     e.Result,
		SolvedInMS: e.ElapsedMS,
		Solver:     e.Solver,
		Version:    e.Version,
	}
}

// setEtag records the result checksum serving as a key's ETag.
func (s *Server) setEtag(key, sum string) {
	if sum == "" {
		return
	}
	s.mu.Lock()
	s.etags[key] = sum
	s.mu.Unlock()
}

// etagFor returns the cached ETag for a key ("" when unknown).
func (s *Server) etagFor(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.etags[key]
}

// etagMatches reports whether an If-None-Match header value matches the
// tag: the wildcard, or any member of the comma-separated list (quotes and
// weak-validator prefixes ignored — the checksum identifies the bytes).
func etagMatches(header, tag string) bool {
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		part = strings.Trim(part, `"`)
		if part == tag {
			return true
		}
	}
	return false
}

// notModified answers a conditional request from the ETag cache alone —
// no ledger read — when the client already holds the current result.
func (s *Server) notModified(w http.ResponseWriter, r *http.Request, key string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	tag := s.etagFor(key)
	if tag == "" || !etagMatches(inm, tag) {
		return false
	}
	w.Header().Set("ETag", `"`+tag+`"`)
	w.WriteHeader(http.StatusNotModified)
	return true
}

// rejectDraining answers a submission with 503 + Retry-After while the
// server is shutting down.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "10")
	writeError(w, http.StatusServiceUnavailable, "server is draining; retry shortly")
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	lane, err := parsePriority(r.Header.Get("X-Priority"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := parseDeadline(r.Header.Get("X-Deadline-Ms"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var p cataero.Problem
	if err := json.NewDecoder(body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, "parse case: %v", err)
		return
	}
	sub, err := s.prepare(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sub.deadline = deadline

	if s.notModified(w, r, sub.key) {
		return
	}
	if hit := s.lookupLedger(sub.key); hit != nil {
		if tag := s.etagFor(sub.key); tag != "" {
			w.Header().Set("ETag", `"`+tag+`"`)
		}
		writeJSON(w, http.StatusOK, hit)
		return
	}

	sr, coalesced, retryAfter := s.admit(sub, lane, clientKey(r))
	if sr == nil {
		retryAfterError(w, retryAfter)
		return
	}
	s.respondRun(w, r, sr, coalesced)
}

// parseDeadline parses the X-Deadline-Ms header ("" = no deadline).
func parseDeadline(h string) (time.Duration, error) {
	if h == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("X-Deadline-Ms %q: want a positive integer of milliseconds", h)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// clientKey identifies the quota account of a request.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func retryAfterError(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int(retryAfter/time.Second) + 1
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, http.StatusTooManyRequests,
		"quota exhausted; retry in %ds", secs)
}

// admit registers a new run for the submission — or coalesces onto an
// identical in-flight one — charging the client's quota only for genuinely
// new solves. A nil run means the quota rejected the submission. The empty
// client is the server itself (restart recovery) and is never quota-charged.
func (s *Server) admit(sub submission, lane priority, client string) (sr *srvRun, coalesced bool, retryAfter time.Duration) {
	s.mu.Lock()
	if existing := s.byKey[sub.key]; existing != nil {
		s.mu.Unlock()
		return existing, true, 0
	}
	if client != "" {
		if ok, wait := s.quo.take(client, time.Now()); !ok {
			s.mu.Unlock()
			return nil, false, wait
		}
	}
	ctx, cancel := context.WithCancel(s.ctx)
	s.nextID++
	sr = &srvRun{
		id:       fmt.Sprintf("r%06d", s.nextID),
		key:      sub.key,
		name:     sub.name,
		lane:     lane,
		created:  time.Now().UTC(),
		spec:     sub.spec,
		problem:  sub.problem,
		cancel:   cancel,
		deadline: sub.deadline,
		admitted: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.runs[sr.id] = sr
	s.byKey[sub.key] = sr
	s.order = append(s.order, sr)
	s.evictLocked()
	s.mu.Unlock()

	go s.execute(ctx, sr)
	return sr, false, 0
}

// evictLocked drops the oldest finished runs beyond the retention bound.
func (s *Server) evictLocked() {
	if len(s.order) <= maxRetainedRuns {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - maxRetainedRuns
	for _, sr := range s.order {
		finished := false
		select {
		case <-sr.done:
			finished = true
		default:
		}
		if excess > 0 && finished {
			delete(s.runs, sr.id)
			excess--
			continue
		}
		kept = append(kept, sr)
	}
	s.order = kept
}

// execute runs one admitted solve to completion: lane gate, session
// submission, ledger write-back. With checkpointing configured, the solve
// persists resumable checkpoints under its case key, resumes from a stored
// one when present, and drops the checkpoint once the result lands.
func (s *Server) execute(ctx context.Context, sr *srvRun) {
	defer close(sr.done)
	if err := s.adm.acquire(ctx, sr.lane); err != nil {
		sr.err = err
		s.unkey(sr)
		return
	}
	defer s.adm.release()

	if sr.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sr.deadline)
		defer cancel()
	}
	p := s.installCheckpointing(sr.problem, sr)

	run := s.cfg.Session.Submit(ctx, p)
	sr.run = run
	close(sr.admitted)

	env, err := run.Wait()
	sr.finalSnap = run.Snapshot()
	if err != nil {
		sr.err = err
		s.unkey(sr)
		return
	}
	result, err := json.Marshal(env)
	if err != nil {
		sr.err = fmt.Errorf("marshal result: %w", err)
		s.unkey(sr)
		return
	}
	sr.result = result

	if s.cfg.Ledger != nil {
		snapJSON, err := json.Marshal(sr.finalSnap)
		if err != nil {
			snapJSON = nil
		}
		entry := &ledger.Entry{
			Key:       sr.key,
			Spec:      sr.spec,
			Result:    result,
			Snapshot:  snapJSON,
			Solver:    sr.finalSnap.Solver,
			Version:   cataero.Version,
			ElapsedMS: float64(sr.finalSnap.Elapsed) / float64(time.Millisecond),
		}
		if err := s.cfg.Ledger.Put(entry); err != nil {
			// A failing ledger (full or read-only disk) degrades the server
			// to cache-less operation; the solve itself still succeeded.
			s.logf("serve: ledger put %s: %v", sr.key, err)
		} else {
			s.setEtag(sr.key, hexSum(result))
			// The result supersedes any partial-run checkpoint.
			if err := s.cfg.Ledger.DeleteCheckpoint(sr.key); err != nil {
				s.logf("serve: drop checkpoint %s: %v", sr.key, err)
			}
		}
	}
	// Unkey only after the ledger write: a submission arriving in between
	// either coalesces onto this run or hits the fresh entry — never both
	// misses into a duplicate solve.
	s.unkey(sr)
}

// hexSum is the ledger's result digest (the entry Checksum / ETag).
func hexSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// installCheckpointing wires a run's problem to the ledger's partial-run
// store: a sink persisting each emitted checkpoint under the case key, and
// a restore from the newest valid stored checkpoint. No ledger or no
// cadence leaves the problem untouched. Sink failures are logged and
// dropped — checkpoint persistence must never fail a run.
func (s *Server) installCheckpointing(p cataero.Problem, sr *srvRun) cataero.Problem {
	if s.cfg.Ledger == nil {
		return p
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = s.cfg.CheckpointEvery
	}
	if p.CheckpointEvery <= 0 {
		return p
	}
	lg := s.cfg.Ledger
	p.CheckpointSink = func(cp *cataero.Checkpoint) {
		data, err := cp.AppendBinary(nil)
		if err != nil {
			s.logf("serve: encode checkpoint %s: %v", sr.key, err)
			return
		}
		err = lg.PutCheckpoint(&ledger.Checkpoint{
			Key: sr.key, Spec: sr.spec, Step: cp.Step,
			Version: cataero.Version, Data: data,
		})
		if err != nil {
			s.logf("serve: checkpoint %s: %v", sr.key, err)
		}
	}
	if lc, err := lg.GetCheckpoint(sr.key); err == nil && lc != nil {
		if cp, err := cataero.DecodeCheckpoint(lc.Data); err == nil {
			p.Restore = cp
			s.logf("serve: resuming %s from checkpoint at step %d", sr.key, lc.Step)
		}
	}
	return p
}

// unkey removes a finished run from the in-flight coalescing index.
func (s *Server) unkey(sr *srvRun) {
	s.mu.Lock()
	if s.byKey[sr.key] == sr {
		delete(s.byKey, sr.key)
	}
	s.mu.Unlock()
}

// respondRun answers a submission: synchronously when ?wait is set,
// otherwise 202 with the ID to poll.
func (s *Server) respondRun(w http.ResponseWriter, r *http.Request, sr *srvRun, coalesced bool) {
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-sr.done:
			v := s.view(sr)
			v.Coalesced = coalesced
			code := http.StatusOK
			if v.Error != "" {
				code = http.StatusInternalServerError
			}
			writeJSON(w, code, v)
		case <-r.Context().Done():
			// Client went away; the solve continues for the ledger.
		}
		return
	}
	v := s.view(sr)
	v.Coalesced = coalesced
	writeJSON(w, http.StatusAccepted, v)
}

// view assembles the wire form of a run from its published lifecycle state.
func (s *Server) view(sr *srvRun) runView {
	v := runView{
		ID:       sr.id,
		Key:      sr.key,
		Name:     sr.name,
		Priority: sr.lane.String(),
		Created:  sr.created,
		State:    cataero.RunQueued.String(),
	}
	select {
	case <-sr.done:
		v.State = cataero.RunDone.String()
		// A run canceled before reaching the session has no snapshot or
		// solver provenance to report — only its error.
		if sr.run != nil {
			if snap, err := json.Marshal(sr.finalSnap); err == nil {
				v.Snapshot = snap
			}
			v.SolvedInMS = float64(sr.finalSnap.Elapsed) / float64(time.Millisecond)
			v.Solver = sr.finalSnap.Solver
		}
		v.Result = sr.result
		if sr.err != nil {
			v.Error = sr.err.Error()
		}
		return v
	default:
	}
	select {
	case <-sr.admitted:
		snap := sr.run.Snapshot()
		v.State = snap.State.String()
		if data, err := json.Marshal(snap); err == nil {
			v.Snapshot = data
		}
	default:
	}
	return v
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*srvRun, len(s.order))
	copy(runs, s.order)
	s.mu.Unlock()
	views := make([]runView, 0, len(runs))
	for _, sr := range runs {
		views = append(views, s.view(sr))
	}
	sort.SliceStable(views, func(i, j int) bool { return views[i].Created.After(views[j].Created) })
	if len(views) > 100 {
		views = views[:100]
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) runByID(w http.ResponseWriter, r *http.Request) *srvRun {
	s.mu.Lock()
	sr := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if sr == nil {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
	}
	return sr
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	if sr := s.runByID(w, r); sr != nil {
		writeJSON(w, http.StatusOK, s.view(sr))
	}
}

func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request) {
	sr := s.runByID(w, r)
	if sr == nil {
		return
	}
	sr.cancel()
	writeJSON(w, http.StatusOK, s.view(sr))
}

// handleRunEvents streams run progress as Server-Sent Events: one
// "snapshot" event per observed progress change and a final "done" event
// carrying the full run view (result included). GET /api/runs/{id} is the
// polling fallback for clients without SSE.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	sr := s.runByID(w, r)
	if sr == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// Queued phase: the solve has not reached the session yet (priority
	// lane wait); tick a queued snapshot so clients see liveness.
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	if !emit("snapshot", orQueued(s.view(sr).Snapshot)) {
		return
	}
waitAdmitted:
	for {
		select {
		case <-sr.admitted:
			break waitAdmitted
		case <-sr.done: // canceled while queued
			break waitAdmitted
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !emit("snapshot", orQueued(s.view(sr).Snapshot)) {
				return
			}
		}
	}

	// Running phase: latest-value snapshots until the watch channel closes
	// at the terminal snapshot. sr.run is nil only when the run was
	// canceled before reaching the session.
	admitted := false
	select {
	case <-sr.admitted:
		admitted = true
	default:
	}
	if admitted && sr.run != nil {
		watch := sr.run.Watch()
		for {
			select {
			case snap, ok := <-watch:
				if !ok {
					goto finished
				}
				if !emit("snapshot", snap) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}

finished:
	select {
	case <-sr.done:
	case <-r.Context().Done():
		return
	}
	emit("done", s.view(sr))
}

// orQueued substitutes a minimal queued-state document when a run has no
// snapshot yet.
func orQueued(raw json.RawMessage) json.RawMessage {
	if len(raw) > 0 {
		return raw
	}
	return json.RawMessage(fmt.Sprintf(`{"state":%q,"step":0,"elapsed_ms":0}`, cataero.RunQueued.String()))
}

// handleBatch submits an array of case specs — the HTTP form of
// Session.SubmitAll: every case is attempted, hits come back inline, and
// per-case failures never abort the batch. ?wait=1 blocks for all results.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	lane, err := parsePriority(r.Header.Get("X-Priority"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var problems []cataero.Problem
	if err := json.NewDecoder(body).Decode(&problems); err != nil {
		writeError(w, http.StatusBadRequest, "parse batch: %v", err)
		return
	}
	if len(problems) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(problems) > maxBatchCases {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d cases exceeds the %d-case bound", len(problems), maxBatchCases)
		return
	}

	client := clientKey(r)
	views := make([]runView, len(problems))
	var waits []*srvRun
	waitIdx := make(map[*srvRun][]int)
	for i, p := range problems {
		sub, err := s.prepare(p)
		if err != nil {
			views[i] = runView{State: cataero.RunDone.String(), Error: err.Error()}
			continue
		}
		if hit := s.lookupLedger(sub.key); hit != nil {
			views[i] = *hit
			continue
		}
		sr, coalesced, retryAfter := s.admit(sub, lane, client)
		if sr == nil {
			secs := int(retryAfter/time.Second) + 1
			views[i] = runView{
				Key:   sub.key,
				State: cataero.RunDone.String(),
				Error: fmt.Sprintf("quota exhausted; retry in %ds", secs),
			}
			continue
		}
		v := s.view(sr)
		v.Coalesced = coalesced
		views[i] = v
		if _, seen := waitIdx[sr]; !seen {
			waits = append(waits, sr)
		}
		waitIdx[sr] = append(waitIdx[sr], i)
	}

	if r.URL.Query().Get("wait") != "" {
		for _, sr := range waits {
			select {
			case <-sr.done:
			case <-r.Context().Done():
				return
			}
			for _, i := range waitIdx[sr] {
				coalesced := views[i].Coalesced
				views[i] = s.view(sr)
				views[i].Coalesced = coalesced
			}
		}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleLedgerList(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ledger == nil {
		writeError(w, http.StatusNotFound, "no ledger configured")
		return
	}
	entries, err := s.cfg.Ledger.Entries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type entryMeta struct {
		Key       string    `json:"key"`
		Solver    string    `json:"solver,omitempty"`
		Version   string    `json:"version,omitempty"`
		Created   time.Time `json:"created"`
		ElapsedMS float64   `json:"elapsed_ms,omitempty"`
	}
	metas := make([]entryMeta, 0, len(entries))
	for _, e := range entries {
		metas = append(metas, entryMeta{
			Key: e.Key, Solver: e.Solver, Version: e.Version,
			Created: e.Created, ElapsedMS: e.ElapsedMS,
		})
	}
	writeJSON(w, http.StatusOK, metas)
}

func (s *Server) handleLedgerGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ledger == nil {
		writeError(w, http.StatusNotFound, "no ledger configured")
		return
	}
	key := strings.ToLower(r.PathValue("key"))
	if s.notModified(w, r, key) {
		return
	}
	e, err := s.cfg.Ledger.Get(key)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if e == nil {
		writeError(w, http.StatusNotFound, "no entry for %s", key)
		return
	}
	s.setEtag(key, e.Checksum)
	w.Header().Set("ETag", `"`+e.Checksum+`"`)
	writeJSON(w, http.StatusOK, e)
}
