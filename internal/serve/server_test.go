package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cataero"
	"cataero/internal/ledger"
)

// eblProblem is a fast-solving entry case; vary vinf for distinct keys.
func eblProblem(vinf float64) cataero.Problem {
	return cataero.Problem{
		Class:     cataero.EBL,
		Chemistry: cataero.EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: vinf,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 12,
	}
}

// slowNSProblem holds a worker slot long enough for queueing tests.
func slowNSProblem() cataero.Problem {
	return cataero.Problem{
		Class:     cataero.NS,
		Chemistry: cataero.EquilibriumAir,
		PInf:      5474.9, TInf: 216.65, VInf: 1770.4,
		NoseRadius: 0.3, TWall: 1500,
		NI: 48, NJ: 64, MaxSteps: 500000,
	}
}

// newTestServer builds a Server + httptest front end over a temp ledger.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Session == nil {
		cfg.Session = cataero.NewSession()
	}
	if cfg.Ledger == nil {
		l, err := ledger.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Ledger = l
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postCase(t *testing.T, url string, p cataero.Problem, hdr map[string]string) (*http.Response, runView) {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v runView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, v
}

// TestSubmitSolveThenLedgerHit is the acceptance path end to end: the same
// case submitted twice solves once — the second response is a ledger hit
// with a byte-identical result — and a restarted server over the same
// ledger directory still hits.
func TestSubmitSolveThenLedgerHit(t *testing.T) {
	dir := t.TempDir()
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Ledger: l})

	resp, first := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6740), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d %+v", resp.StatusCode, first)
	}
	if first.Cached {
		t.Fatal("first submit reported cached")
	}
	if first.State != cataero.RunDone.String() || len(first.Result) == 0 || first.Error != "" {
		t.Fatalf("first submit did not finish cleanly: %+v", first)
	}
	if first.Solver == "" || len(first.Snapshot) == 0 {
		t.Fatalf("first submit missing provenance: %+v", first)
	}

	resp, second := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6740), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Fatalf("second submit was not a ledger hit: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Fatalf("cached result differs from solved result:\n%s\nvs\n%s", second.Result, first.Result)
	}
	if st := l.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("ledger stats after hit: %+v", st)
	}

	// "Restart": a fresh session and server over the same directory.
	l2, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Ledger: l2})
	resp, third := postCase(t, ts2.URL+"/api/runs?wait=1", eblProblem(6740), nil)
	if resp.StatusCode != http.StatusOK || !third.Cached {
		t.Fatalf("post-restart submit not served from ledger: status %d %+v", resp.StatusCode, third)
	}
	if !bytes.Equal(third.Result, first.Result) {
		t.Fatal("post-restart cached result differs")
	}
}

// TestFieldOrderSharesKey: the same case spelled with a different JSON field
// order lands on the same ledger entry.
func TestFieldOrderSharesKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, first := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(6900), nil)
	if resp.StatusCode != http.StatusOK || first.Cached {
		t.Fatalf("seed submit: status %d %+v", resp.StatusCode, first)
	}

	// Hand-built JSON with fields in reverse-ish order.
	raw := `{"n_stations":12,"t_wall":1200,"nose_radius":0.6,"v_inf":6900,"t_inf":217,"p_inf":4.8,"chemistry":"equilibrium-air","class":"ebl"}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/runs?wait=1", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var second runView
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Key != first.Key {
		t.Fatalf("permuted spec missed the ledger: %+v (want key %s)", second, first.Key)
	}
}

// TestQuotaExhausted429: beyond the burst, submissions come back 429 with a
// Retry-After header; ledger hits are free and never charged.
func TestQuotaExhausted429(t *testing.T) {
	_, ts := newTestServer(t, Config{QuotaRate: 0.0001, QuotaBurst: 1})

	resp, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(7000), map[string]string{"X-API-Key": "alice"})
	if resp.StatusCode != http.StatusOK || v.Error != "" {
		t.Fatalf("first submit within burst: status %d %+v", resp.StatusCode, v)
	}

	resp, v = postCase(t, ts.URL+"/api/runs", eblProblem(7100), map[string]string{"X-API-Key": "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("beyond burst: status %d %+v, want 429", resp.StatusCode, v)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if v.Error == "" {
		t.Fatal("429 without error body")
	}

	// A ledger hit does not spend quota even for the throttled client.
	resp, v = postCase(t, ts.URL+"/api/runs", eblProblem(7000), map[string]string{"X-API-Key": "alice"})
	if resp.StatusCode != http.StatusOK || !v.Cached {
		t.Fatalf("ledger hit throttled: status %d %+v", resp.StatusCode, v)
	}

	// Quotas are per client: bob is unaffected.
	resp, v = postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(7100), map[string]string{"X-API-Key": "bob"})
	if resp.StatusCode != http.StatusOK || v.Error != "" {
		t.Fatalf("independent client throttled: status %d %+v", resp.StatusCode, v)
	}
}

// TestCoalescing: two concurrent submissions of one case share a single
// solve; the second response is marked coalesced and carries the same run ID.
func TestCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Hold the single worker slot so the coalescing target stays in flight.
	_, blocker := postCase(t, ts.URL+"/api/runs", slowNSProblem(), nil)
	if blocker.ID == "" {
		t.Fatalf("blocker not registered: %+v", blocker)
	}

	_, a := postCase(t, ts.URL+"/api/runs", eblProblem(7200), nil)
	if a.ID == "" || a.Coalesced {
		t.Fatalf("first submission: %+v", a)
	}
	_, b := postCase(t, ts.URL+"/api/runs", eblProblem(7200), nil)
	if !b.Coalesced || b.ID != a.ID {
		t.Fatalf("duplicate did not coalesce: %+v (want id %s)", b, a.ID)
	}

	// Cancel the blocker so the coalesced run can finish.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/runs/"+blocker.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/runs/" + a.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v runView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State == cataero.RunDone.String() {
			if v.Error != "" || len(v.Result) == 0 {
				t.Fatalf("coalesced run failed: %+v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalesced run never finished: %+v", v)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = s
}

// TestCancelQueuedRun: with one worker held, a queued run canceled via
// DELETE finishes with an error and no result.
func TestCancelQueuedRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	_, blocker := postCase(t, ts.URL+"/api/runs", slowNSProblem(), nil)
	_, queued := postCase(t, ts.URL+"/api/runs", eblProblem(7300), nil)
	if queued.State != cataero.RunQueued.String() {
		t.Fatalf("second run not queued behind the single worker: %+v", queued)
	}

	for _, id := range []string{queued.ID, blocker.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/runs/" + queued.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v runView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State == cataero.RunDone.String() {
			if v.Error == "" {
				t.Fatalf("canceled run reported no error: %+v", v)
			}
			if len(v.Result) != 0 {
				t.Fatalf("canceled run carries a result: %+v", v)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled run never settled: %+v", v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEventsStream: the SSE endpoint emits snapshot events and a terminal
// done event carrying the result.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, v := postCase(t, ts.URL+"/api/runs", eblProblem(7400), nil)
	if v.ID == "" {
		t.Fatalf("submission not registered: %+v", v)
	}
	resp, err := http.Get(ts.URL + "/api/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var sawSnapshot, sawDone bool
	var event string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "snapshot":
				sawSnapshot = true
			case "done":
				sawDone = true
				var final runView
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done event payload: %v", err)
				}
				if final.State != cataero.RunDone.String() || len(final.Result) == 0 {
					t.Fatalf("done event incomplete: %+v", final)
				}
			}
		}
		if sawDone {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSnapshot || !sawDone {
		t.Fatalf("stream saw snapshot=%v done=%v", sawSnapshot, sawDone)
	}
}

// TestBatch: the batch endpoint resolves every case, duplicates inside the
// batch coalesce onto one solve, and a repeat batch is all ledger hits.
func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	batch := []cataero.Problem{eblProblem(7500), eblProblem(7500), eblProblem(7600)}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/batch?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []runView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("batch returned %d views", len(views))
	}
	for i, v := range views {
		if v.State != cataero.RunDone.String() || v.Error != "" || len(v.Result) == 0 {
			t.Fatalf("batch case %d did not finish: %+v", i, v)
		}
	}
	if views[0].Key != views[1].Key || !bytes.Equal(views[0].Result, views[1].Result) {
		t.Fatal("duplicate batch cases diverged")
	}
	if views[1].Key == views[2].Key {
		t.Fatal("distinct batch cases collided")
	}

	// Same batch again: everything is now a ledger hit.
	resp2, err := http.Post(ts.URL+"/api/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var again []runView
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	for i, v := range again {
		if !v.Cached {
			t.Fatalf("repeat batch case %d not cached: %+v", i, v)
		}
	}
}

// TestLedgerEndpoints: entries written by solves are visible through the
// ledger API.
func TestLedgerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(7700), nil)
	if v.Error != "" {
		t.Fatalf("seed solve failed: %+v", v)
	}

	resp, err := http.Get(ts.URL + "/api/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metas []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metas); err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0]["key"] != v.Key {
		t.Fatalf("ledger list: %+v (want key %s)", metas, v.Key)
	}

	resp2, err := http.Get(ts.URL + "/api/ledger/" + v.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var entry ledger.Entry
	if err := json.NewDecoder(resp2.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Key != v.Key || len(entry.Result) == 0 || entry.Solver == "" {
		t.Fatalf("ledger get: %+v", entry)
	}
}

// TestRequestValidation covers the 4xx paths.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Unknown run ID.
	resp, err := http.Get(ts.URL + "/api/runs/r999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(ts.URL+"/api/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	// Unphysical case (no velocity) is rejected at normalization.
	resp, err = http.Post(ts.URL+"/api/runs", "application/json", strings.NewReader(`{"class":"ebl"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid case: status %d", resp.StatusCode)
	}

	// Unknown priority lane.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/runs", strings.NewReader("[]"))
	req.Header.Set("X-Priority", "urgent")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: status %d", resp.StatusCode)
	}

	// Empty batch.
	resp, err = http.Post(ts.URL+"/api/batch", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
}

func TestHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["version"] != cataero.Version {
		t.Fatalf("health: %+v", h)
	}
	if _, ok := h["ledger"]; !ok {
		t.Fatal("health missing ledger stats")
	}
}

// TestListRuns: submitted runs appear in the listing.
func TestListRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, v := postCase(t, ts.URL+"/api/runs?wait=1", eblProblem(7800), nil)
	resp, err := http.Get(ts.URL + "/api/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []runView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].ID != v.ID {
		t.Fatalf("run listing: %+v", views)
	}
}
