package serve

import (
	"context"
	"time"

	"cataero"
)

// This file is the server's crash-safety lifecycle: Drain stops the service
// gracefully — new admissions get 503 + Retry-After, in-flight runs are
// checkpointed (via their configured sinks) and cancelled — and Recover,
// called on the next start over the same ledger, re-submits every
// interrupted run from its stored checkpoint. Together they make `catsim
// serve` restartable mid-campaign: a SIGTERM (or a crash, which skips Drain
// but keeps the periodic checkpoints) costs at most CheckpointEvery steps
// per in-flight solve.

// Drain stops accepting new runs and winds down the in-flight ones: each
// run's context is cancelled, which makes its marching loop emit a final
// checkpoint (when checkpointing is configured) before returning. Drain
// blocks until every in-flight run has finished or ctx expires — pass a
// context with the drain deadline. Safe to call once; the server cannot be
// un-drained.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	inflight := make([]*srvRun, 0, len(s.byKey))
	for _, sr := range s.byKey {
		inflight = append(inflight, sr)
	}
	s.mu.Unlock()
	s.logf("serve: draining, %d in-flight run(s)", len(inflight))
	for _, sr := range inflight {
		sr.cancel()
	}
	for _, sr := range inflight {
		select {
		case <-sr.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Recover re-submits every interrupted run found in the ledger: a stored
// partial-run checkpoint whose result has not landed marks a solve a
// previous process left unfinished. Each is re-admitted (quota-free, normal
// lane) and — with checkpointing configured — resumes from its checkpoint
// instead of step 0. Checkpoints whose result already exists are stale and
// dropped. Returns how many runs were re-submitted. Call once, after New,
// before serving traffic.
func (s *Server) Recover() (int, error) {
	if s.cfg.Ledger == nil {
		return 0, nil
	}
	cks, err := s.cfg.Ledger.Checkpoints()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, ck := range cks {
		if e, err := s.cfg.Ledger.Get(ck.Key); err == nil && e != nil {
			// The run finished; the checkpoint just outlived it.
			_ = s.cfg.Ledger.DeleteCheckpoint(ck.Key)
			continue
		}
		if len(ck.Spec) == 0 {
			continue
		}
		var p cataero.Problem
		if err := p.UnmarshalJSON(ck.Spec); err != nil {
			s.logf("serve: recover %s: bad spec: %v", ck.Key, err)
			continue
		}
		sub, err := s.prepare(p)
		if err != nil {
			s.logf("serve: recover %s: %v", ck.Key, err)
			continue
		}
		if sub.key != ck.Key {
			// The spec no longer hashes to the stored key (e.g. a toolkit
			// upgrade changed canonicalization); resuming would file the
			// result under the wrong address.
			s.logf("serve: recover %s: spec re-keys to %s; dropping", ck.Key, sub.key)
			_ = s.cfg.Ledger.DeleteCheckpoint(ck.Key)
			continue
		}
		if sr, coalesced, _ := s.admit(sub, prioNormal, ""); sr != nil && !coalesced {
			resumed++
			s.logf("serve: recovered %s from checkpoint at step %d (created %s)",
				ck.Key, ck.Step, ck.Created.Format(time.RFC3339))
		}
	}
	return resumed, nil
}
