package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// Admission control for the serve layer, layered in front of the session's
// FIFO semaphore:
//
//   - priority lanes (admitter): at most Workers solves execute at once,
//     and when a slot frees it goes to the oldest waiter in the highest
//     non-empty lane — interactive traffic overtakes bulk campaigns without
//     starving them of running slots they already hold;
//   - per-client quotas (quotas): a token bucket per API key bounds the
//     solve-submission rate of any one client; an exhausted bucket turns
//     into HTTP 429 with a Retry-After estimate.
//
// The session behind the server keeps its own admission width; the server
// sizes it to match Workers, so the session's FIFO queue never reorders
// what the lanes decided.

// priority is a request's admission lane. Higher values are admitted first.
type priority int

const (
	prioLow priority = iota
	prioNormal
	prioHigh
	numPriorities
)

// laneNames are the wire names of the priority lanes (X-Priority header).
var laneNames = [numPriorities]string{prioLow: "low", prioNormal: "normal", prioHigh: "high"}

func (p priority) String() string {
	if p >= 0 && int(p) < len(laneNames) {
		return laneNames[p]
	}
	return "unknown"
}

// parsePriority resolves an X-Priority header value; empty means normal.
func parsePriority(s string) (priority, error) {
	if s == "" {
		return prioNormal, nil
	}
	for p, n := range laneNames {
		if n == s {
			return priority(p), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown priority %q (want low, normal or high)", s)
}

// admitter is the priority-laned solve semaphore. The invariant is that a
// slot is free only while every lane is empty: an arrival with no free slot
// queues in its lane, and a released slot is handed to the highest
// non-empty lane's oldest waiter.
type admitter struct {
	mu    sync.Mutex
	slots int
	lanes [numPriorities][]grant
}

// grant is one waiter's slot-delivery channel, granted (sent to) at most
// once.
type grant chan struct{}

func newAdmitter(slots int) *admitter {
	if slots < 1 {
		slots = 1
	}
	return &admitter{slots: slots}
}

// acquire blocks until a solve slot is granted or the context is done. On
// cancellation the waiter withdraws from its lane; a slot granted
// concurrently with the cancellation is handed straight back.
func (a *admitter) acquire(ctx context.Context, lane priority) error {
	a.mu.Lock()
	if a.slots > 0 {
		a.slots--
		a.mu.Unlock()
		return nil
	}
	g := make(grant, 1)
	a.lanes[lane] = append(a.lanes[lane], g)
	a.mu.Unlock()

	select {
	case <-g:
		return nil
	case <-ctx.Done():
	}
	a.mu.Lock()
	for i, q := range a.lanes[lane] {
		if q == g {
			a.lanes[lane] = append(a.lanes[lane][:i], a.lanes[lane][i+1:]...)
			a.mu.Unlock()
			return ctx.Err()
		}
	}
	a.mu.Unlock()
	// Not queued anymore: the slot arrived between Done and the lock —
	// consume the buffered grant and pass it on.
	<-g
	a.release()
	return ctx.Err()
}

// release returns a slot: to the oldest waiter in the highest non-empty
// lane, or back to the free count.
func (a *admitter) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for lane := numPriorities - 1; lane >= 0; lane-- {
		if q := a.lanes[lane]; len(q) > 0 {
			a.lanes[lane] = q[1:]
			q[0] <- struct{}{}
			return
		}
	}
	a.slots++
}

// queued reports how many waiters sit in each lane (for status endpoints
// and tests).
func (a *admitter) queued() [numPriorities]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n [numPriorities]int
	for lane, q := range a.lanes {
		n[lane] = len(q)
	}
	return n
}

// quotas is a per-client token-bucket rate limiter: each client (API key)
// accrues rate tokens per second up to burst, and each solve submission
// costs one. take reports whether the submission is admitted and, when it
// is not, how long until the bucket holds a full token again.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), clients: make(map[string]*bucket)}
}

// take spends one token from the client's bucket. When the bucket is
// empty, retryAfter is the time until one full token accrues — the
// Retry-After a 429 response should carry.
func (q *quotas) take(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.clients[client]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.clients[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / q.rate
	return false, time.Duration(wait * float64(time.Second))
}
