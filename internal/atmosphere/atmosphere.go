// Package atmosphere provides the planetary atmosphere models and the
// ballistic entry trajectory integrator used to drive the aerothermal
// solvers: the US Standard Atmosphere 1976 for Earth, a piecewise
// exponential model for Titan (the paper's Fig. 2 probe entry), and a
// 3-DOF planar entry integrator.
package atmosphere

import (
	"fmt"
	"math"

	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// State is the local atmospheric state.
type State struct {
	Altitude    float64 // m
	Temperature float64 // K
	Pressure    float64 // Pa
	Density     float64 // kg/m^3
}

// Model evaluates atmospheric state versus altitude.
type Model interface {
	Name() string
	AtAltitude(h float64) State
	// SurfaceGravity returns g at the reference surface, m/s^2.
	SurfaceGravity() float64
	// PlanetRadius returns the planet radius, m.
	PlanetRadius() float64
}

// --- Earth: US Standard Atmosphere 1976 ---

// Earth implements the US Standard Atmosphere 1976 up to 86 km geopotential
// altitude, with an exponential extension above (adequate for entry heating
// work up to ~120 km).
type Earth struct{}

// NewEarth returns the US76 model.
func NewEarth() *Earth { return &Earth{} }

// Name implements Model.
func (e *Earth) Name() string { return "US Standard Atmosphere 1976" }

// SurfaceGravity implements Model.
func (e *Earth) SurfaceGravity() float64 { return 9.80665 }

// PlanetRadius implements Model.
func (e *Earth) PlanetRadius() float64 { return 6356.766e3 }

// us76 layer base geopotential altitudes (m), lapse rates (K/m), base
// temperatures (K) and base pressures (Pa).
var us76H = []float64{0, 11000, 20000, 32000, 47000, 51000, 71000, 84852}
var us76L = []float64{-0.0065, 0, 0.001, 0.0028, 0, -0.0028, -0.002}
var us76T = []float64{288.15, 216.65, 216.65, 228.65, 270.65, 270.65, 214.65, 186.946}
var us76P = []float64{thermo.AtmPa, 22632.1, 5474.89, 868.019, 110.906, 66.9389, 3.95642, 0.3734}

const airR = 287.053 // J/(kg K)

// AtAltitude implements Model.
func (e *Earth) AtAltitude(h float64) State {
	// Geometric to geopotential altitude.
	r0 := e.PlanetRadius()
	hg := r0 * h / (r0 + h)
	if hg < 0 {
		hg = 0
	}
	if hg >= us76H[len(us76H)-1] {
		// Exponential extension above 86 km with scale height ~7.2 km at the
		// local kinetic temperature (coarse but adequate for Re/M maps).
		T := 186.946
		p := us76P[len(us76P)-1] * math.Exp(-(hg-us76H[len(us76H)-1])/7200)
		return State{Altitude: h, Temperature: T, Pressure: p, Density: p / (airR * T)}
	}
	g0 := e.SurfaceGravity()
	for i := 0; i < len(us76L); i++ {
		if hg <= us76H[i+1] {
			dh := hg - us76H[i]
			L := us76L[i]
			Tb := us76T[i]
			Pb := us76P[i]
			var T, p float64
			if L == 0 {
				T = Tb
				p = Pb * math.Exp(-g0*dh/(airR*Tb))
			} else {
				T = Tb + L*dh
				p = Pb * math.Pow(T/Tb, -g0/(airR*L))
			}
			return State{Altitude: h, Temperature: T, Pressure: p, Density: p / (airR * T)}
		}
	}
	// Unreachable.
	return State{Altitude: h}
}

// --- Titan ---

// Titan is a piecewise-exponential density model of Titan's N2/CH4
// atmosphere representative of the pre-Cassini engineering models used for
// probe studies: 1.5 bar and 94 K at the surface, ~130-175 K aloft.
type Titan struct{}

// NewTitan returns the Titan model.
func NewTitan() *Titan { return &Titan{} }

// Name implements Model.
func (t *Titan) Name() string { return "Titan engineering atmosphere" }

// SurfaceGravity implements Model.
func (t *Titan) SurfaceGravity() float64 { return 1.352 }

// PlanetRadius implements Model.
func (t *Titan) PlanetRadius() float64 { return 2575e3 }

// Knot altitudes (m), densities (kg/m^3) and temperatures (K).
var titanH = []float64{0, 50e3, 100e3, 200e3, 300e3, 400e3, 600e3, 1000e3}
var titanRho = []float64{5.44, 0.57, 0.0457, 3.2e-4, 6.3e-6, 3.0e-7, 2.2e-9, 3.0e-12}
var titanT = []float64{94, 74, 137, 162, 170, 174, 175, 178}

const titanR = 296.9 * 0.975 // N2-dominated gas constant (5% CH4 by mole)

// AtAltitude implements Model.
func (t *Titan) AtAltitude(h float64) State {
	if h < 0 {
		h = 0
	}
	n := len(titanH)
	var rho, T float64
	if h >= titanH[n-1] {
		// Exponential tail.
		Hs := 90e3
		rho = titanRho[n-1] * math.Exp(-(h-titanH[n-1])/Hs)
		T = titanT[n-1]
	} else {
		i := 0
		for h > titanH[i+1] {
			i++
		}
		// Log-linear density interpolation (piecewise exponential).
		f := (h - titanH[i]) / (titanH[i+1] - titanH[i])
		rho = math.Exp((1-f)*math.Log(titanRho[i]) + f*math.Log(titanRho[i+1]))
		T = (1-f)*titanT[i] + f*titanT[i+1]
	}
	return State{Altitude: h, Temperature: T, Density: rho, Pressure: rho * titanR * T}
}

// --- Entry trajectory ---

// Vehicle holds the entry-vehicle parameters for the 3-DOF integrator.
type Vehicle struct {
	Mass       float64 // kg
	RefArea    float64 // m^2
	CD         float64 // drag coefficient
	CL         float64 // lift coefficient (0 for ballistic probes)
	NoseRadius float64 // m (carried through to heating correlations)
}

// BallisticCoefficient returns m/(CD A), kg/m^2.
func (v Vehicle) BallisticCoefficient() float64 { return v.Mass / (v.CD * v.RefArea) }

// TrajectoryPoint is one integrated state along the entry.
type TrajectoryPoint struct {
	Time     float64 // s
	Altitude float64 // m
	Velocity float64 // m/s
	Gamma    float64 // flight path angle, rad (negative = descending)
	Density  float64 // kg/m^3
	Pressure float64
	Temp     float64
}

// EntryConditions sets the initial state of an entry.
type EntryConditions struct {
	Altitude float64 // m
	Velocity float64 // m/s
	Gamma    float64 // rad, negative downward
}

// IntegrateEntry integrates the planar 3-DOF point-mass entry equations
//
//	dV/dt  = -D/m - g sin(gamma)
//	dgamma/dt = (L/m)/V + (V/(r) - g/V) cos(gamma)
//	dh/dt  = V sin(gamma)
//
// until the velocity drops below vStop or the altitude leaves [0, hTop].
// Points are reported every dtSample seconds.
func IntegrateEntry(atm Model, veh Vehicle, ic EntryConditions, vStop, dtSample float64) ([]TrajectoryPoint, error) {
	if dtSample <= 0 {
		dtSample = 1
	}
	g0 := atm.SurfaceGravity()
	r0 := atm.PlanetRadius()
	state := []float64{ic.Velocity, ic.Gamma, ic.Altitude}
	deriv := func(t float64, y, dy []float64) {
		V, gamma, h := y[0], y[1], y[2]
		if V < 1 {
			V = 1
		}
		st := atm.AtAltitude(h)
		g := g0 * (r0 / (r0 + h)) * (r0 / (r0 + h))
		q := 0.5 * st.Density * V * V
		D := q * veh.CD * veh.RefArea
		L := q * veh.CL * veh.RefArea
		dy[0] = -D/veh.Mass - g*math.Sin(gamma)
		dy[1] = L/(veh.Mass*V) + (V/(r0+h)-g/V)*math.Cos(gamma)
		dy[2] = V * math.Sin(gamma)
	}
	var pts []TrajectoryPoint
	record := func(tm float64, y []float64) {
		st := atm.AtAltitude(y[2])
		pts = append(pts, TrajectoryPoint{
			Time: tm, Altitude: y[2], Velocity: y[0], Gamma: y[1],
			Density: st.Density, Pressure: st.Pressure, Temp: st.Temperature,
		})
	}
	record(0, state)
	tEnd := 3600.0
	for tm := 0.0; tm < tEnd; tm += dtSample {
		_, err := numerics.RKF45(deriv, tm, tm+dtSample, state, numerics.RKF45Options{
			RelTol: 1e-8, AbsTol: 1e-8,
		})
		if err != nil {
			return pts, fmt.Errorf("atmosphere: trajectory integration: %w", err)
		}
		record(tm+dtSample, state)
		if state[0] < vStop || state[2] <= 0 || state[2] > ic.Altitude*2 {
			return pts, nil
		}
	}
	return pts, nil
}
