package atmosphere

import (
	"math"
	"testing"
)

func TestUS76SeaLevel(t *testing.T) {
	e := NewEarth()
	st := e.AtAltitude(0)
	if math.Abs(st.Temperature-288.15) > 0.01 {
		t.Errorf("T0=%g want 288.15", st.Temperature)
	}
	if math.Abs(st.Pressure-101325) > 1 {
		t.Errorf("p0=%g want 101325", st.Pressure)
	}
	if math.Abs(st.Density-1.225) > 0.001 {
		t.Errorf("rho0=%g want 1.225", st.Density)
	}
}

func TestUS76Tropopause(t *testing.T) {
	e := NewEarth()
	st := e.AtAltitude(11000)
	if math.Abs(st.Temperature-216.65) > 0.3 {
		t.Errorf("T(11km)=%g want 216.65", st.Temperature)
	}
	if math.Abs(st.Pressure-22632) > 150 {
		t.Errorf("p(11km)=%g want ~22632", st.Pressure)
	}
}

func TestUS76KnownAltitudes(t *testing.T) {
	e := NewEarth()
	cases := []struct {
		h, rho, tol float64
	}{
		{20000, 0.0889, 0.002},
		{40000, 0.004, 0.0005},
		{65500, 1.57e-4, 3e-5},  // Fig. 4 flight condition
		{71300, 7.3e-5, 2.2e-5}, // Fig. 6 STS-3 point
	}
	for _, c := range cases {
		st := e.AtAltitude(c.h)
		if math.Abs(st.Density-c.rho) > c.tol {
			t.Errorf("rho(%gkm)=%g want ~%g", c.h/1000, st.Density, c.rho)
		}
	}
}

func TestUS76MonotoneDensity(t *testing.T) {
	e := NewEarth()
	prev := e.AtAltitude(0).Density
	for h := 2000.0; h <= 120000; h += 2000 {
		cur := e.AtAltitude(h).Density
		if cur >= prev {
			t.Errorf("density not decreasing at h=%g", h)
		}
		prev = cur
	}
}

func TestTitanSurfaceAndAloft(t *testing.T) {
	ti := NewTitan()
	s0 := ti.AtAltitude(0)
	if math.Abs(s0.Density-5.44) > 0.01 {
		t.Errorf("Titan surface density %g want 5.44", s0.Density)
	}
	if math.Abs(s0.Pressure-1.5e5) > 0.2e5 {
		t.Errorf("Titan surface pressure %g want ~1.5e5", s0.Pressure)
	}
	// Entry-interface altitudes: density must fall smoothly across knots.
	prev := s0.Density
	for h := 10e3; h <= 1200e3; h += 10e3 {
		cur := ti.AtAltitude(h).Density
		if cur >= prev {
			t.Errorf("Titan density not decreasing at h=%g", h)
		}
		prev = cur
	}
}

func TestEntryTrajectoryBallistic(t *testing.T) {
	// Earth entry of a blunt capsule: the vehicle must decelerate and
	// descend, with peak dynamic pressure somewhere in mid-trajectory.
	e := NewEarth()
	veh := Vehicle{Mass: 800, RefArea: 4.5, CD: 1.5, NoseRadius: 1.0}
	pts, err := IntegrateEntry(e, veh, EntryConditions{
		Altitude: 120e3, Velocity: 7500, Gamma: -6 * math.Pi / 180,
	}, 300, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("too few trajectory points: %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Velocity > 2000 {
		t.Errorf("vehicle failed to decelerate: V_end=%g", last.Velocity)
	}
	if last.Altitude >= pts[0].Altitude {
		t.Errorf("vehicle failed to descend")
	}
	// Peak dynamic pressure occurs at neither endpoint.
	qMax, iMax := 0.0, 0
	for i, p := range pts {
		q := 0.5 * p.Density * p.Velocity * p.Velocity
		if q > qMax {
			qMax, iMax = q, i
		}
	}
	if iMax == 0 || iMax == len(pts)-1 {
		t.Errorf("peak dynamic pressure at trajectory endpoint (i=%d)", iMax)
	}
}

func TestEntryTrajectoryTitan(t *testing.T) {
	// 12 km/s Titan probe entry (the paper's Fig. 2 case): the probe must
	// decelerate high in the extended atmosphere.
	ti := NewTitan()
	veh := Vehicle{Mass: 2100, RefArea: 5.3, CD: 1.05, NoseRadius: 1.25}
	// Titan is small: a shallow path from high altitude has its periapsis
	// above the sensible atmosphere, so enter steeper from 600 km.
	pts, err := IntegrateEntry(ti, veh, EntryConditions{
		Altitude: 600e3, Velocity: 12000, Gamma: -40 * math.Pi / 180,
	}, 1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.Velocity > 2000 {
		t.Errorf("Titan probe failed to decelerate: V=%g at h=%g", last.Velocity, last.Altitude)
	}
	if last.Altitude < 50e3 {
		t.Errorf("deceleration occurred too low: h=%g", last.Altitude)
	}
}

func TestVehicleBallisticCoefficient(t *testing.T) {
	v := Vehicle{Mass: 1000, RefArea: 2, CD: 1.25}
	if math.Abs(v.BallisticCoefficient()-400) > 1e-9 {
		t.Errorf("beta=%g want 400", v.BallisticCoefficient())
	}
}

func TestModelMetadata(t *testing.T) {
	for _, m := range []Model{NewEarth(), NewTitan()} {
		if m.Name() == "" || m.SurfaceGravity() <= 0 || m.PlanetRadius() <= 0 {
			t.Errorf("bad metadata for %T", m)
		}
	}
}
