package transport

import (
	"math"
	"testing"

	"cataero/internal/thermo"
)

func TestSutherlandSeaLevel(t *testing.T) {
	// Air at 288.15 K: mu = 1.789e-5 kg/(m s).
	mu := Sutherland(288.15)
	if math.Abs(mu-1.789e-5) > 0.02e-5 {
		t.Errorf("mu=%g want ~1.789e-5", mu)
	}
	// Monotone increasing.
	if Sutherland(600) <= mu {
		t.Error("viscosity should increase with T")
	}
}

func TestBlottnerN2MatchesSutherlandNearAmbient(t *testing.T) {
	sp := thermo.AirSpecies11()
	n2 := sp[thermo.AirN2]
	// N2 viscosity at 300 K ~ 1.78e-5; Blottner fit should be within ~15%.
	mu := SpeciesViscosity(n2, 300)
	if mu < 1.4e-5 || mu > 2.2e-5 {
		t.Errorf("mu(N2,300)=%g implausible", mu)
	}
}

func TestKineticTheoryFallback(t *testing.T) {
	ti := thermo.TitanSpecies()
	ch4 := ti[thermo.TiCH4]
	// CH4 at 300 K: mu ~ 1.1e-5 kg/(m s).
	mu := SpeciesViscosity(ch4, 300)
	if mu < 0.7e-5 || mu > 1.6e-5 {
		t.Errorf("mu(CH4,300)=%g want ~1.1e-5", mu)
	}
	// H2 at 300 K: mu ~ 0.89e-5.
	h2 := ti[thermo.TiH2]
	mu = SpeciesViscosity(h2, 300)
	if mu < 0.6e-5 || mu > 1.3e-5 {
		t.Errorf("mu(H2,300)=%g want ~0.89e-5", mu)
	}
}

func TestOmega22Limits(t *testing.T) {
	// Collision integral decreases with reduced temperature and approaches
	// ~1 at high T*.
	if Omega22(1) <= Omega22(10) {
		t.Error("Omega22 should decrease with T*")
	}
	if v := Omega22(100); v < 0.5 || v > 1.2 {
		t.Errorf("Omega22(100)=%g want ~0.58-1", v)
	}
}

func TestWilkeMixtureViscosityAir(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	tr := NewMixture(m)
	y := thermo.AirFreestreamMassFractions(m.Species)
	mu := tr.Viscosity(300, y)
	// Air at 300 K: 1.85e-5 kg/(m s) +- fit error.
	if mu < 1.5e-5 || mu > 2.2e-5 {
		t.Errorf("mu(air,300)=%g want ~1.85e-5", mu)
	}
	// Pure-species limit: Wilke reduces to the species value.
	yp := make([]float64, m.Len())
	yp[thermo.AirN2] = 1
	muP := tr.Viscosity(500, yp)
	muS := SpeciesViscosity(m.Species[thermo.AirN2], 500)
	if math.Abs(muP-muS) > 1e-9 {
		t.Errorf("pure limit: %g vs %g", muP, muS)
	}
}

func TestConductivityAir(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	tr := NewMixture(m)
	y := thermo.AirFreestreamMassFractions(m.Species)
	k := tr.Conductivity(300, y)
	// Air at 300 K: k ~ 0.026 W/(m K).
	if k < 0.018 || k > 0.038 {
		t.Errorf("k(air,300)=%g want ~0.026", k)
	}
}

func TestPrandtlAir(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	tr := NewMixture(m)
	y := thermo.AirFreestreamMassFractions(m.Species)
	pr := tr.Prandtl(300, y)
	if pr < 0.6 || pr > 0.85 {
		t.Errorf("Pr(air,300)=%g want ~0.7", pr)
	}
}

func TestDiffusionCoefficient(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	tr := NewMixture(m)
	y := thermo.AirFreestreamMassFractions(m.Species)
	D := tr.DiffusionCoefficient(1.2, 300, y, 1.4)
	// Lewis=1.4 air: D ~ 1.4 * alpha ~ 3e-5 m^2/s.
	if D < 1e-5 || D > 8e-5 {
		t.Errorf("D=%g want ~3e-5", D)
	}
	// Default Lewis on nonpositive input.
	if tr.DiffusionCoefficient(1.2, 300, y, 0) != D {
		t.Error("default Lewis should be 1.4")
	}
	if tr.DiffusionCoefficient(0, 300, y, 1.4) != 0 {
		t.Error("zero density should give zero D")
	}
}

func TestViscosityIncreasesWithT(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	tr := NewMixture(m)
	y := thermo.AirFreestreamMassFractions(m.Species)
	prev := tr.Viscosity(300, y)
	for _, T := range []float64{1000, 3000, 6000, 10000} {
		cur := tr.Viscosity(T, y)
		if cur <= prev {
			t.Errorf("viscosity not increasing at T=%g", T)
		}
		prev = cur
	}
}

func TestElectronViscosityNegligible(t *testing.T) {
	sp := thermo.AirSpecies11()
	if mu := SpeciesViscosity(sp[thermo.AirE], 10000); mu > 1e-8 {
		t.Errorf("electron viscosity should be negligible, got %g", mu)
	}
}
