// Package transport provides viscosity, thermal conductivity and diffusion
// models for high-temperature gas mixtures: Blottner-style curve fits for the
// air species, a kinetic-theory Lennard-Jones fallback for everything else,
// the Wilke semi-empirical mixing rule, Eucken conductivities, Sutherland's
// law for ideal-gas solvers, and constant-Lewis-number diffusion.
package transport

import (
	"math"

	"cataero/internal/thermo"
)

// blottner holds the A, B, C coefficients of the Blottner viscosity fits
// mu = 0.1 * exp[(A lnT + B) lnT + C] (kg/(m s)) for the air species.
var blottner = map[string][3]float64{
	"N2":  {0.0268142, 0.3177838, -11.3155513},
	"O2":  {0.0449290, -0.0826158, -9.2019475},
	"NO":  {0.0436378, -0.0335511, -9.5767430},
	"N":   {0.0115572, 0.6031679, -12.4327495},
	"O":   {0.0203144, 0.4294404, -11.6031403},
	"N2+": {0.0268142, 0.3177838, -11.3155513},
	"O2+": {0.0449290, -0.0826158, -9.2019475},
	"NO+": {0.0436378, -0.0335511, -9.5767430},
	"N+":  {0.0115572, 0.6031679, -12.4327495},
	"O+":  {0.0203144, 0.4294404, -11.6031403},
}

// SpeciesViscosity returns the viscosity of one species at temperature T.
// Air species use the Blottner curve fits; everything else falls back to
// first-order Chapman-Enskog kinetic theory with the species'
// Lennard-Jones parameters. Electrons get a negligible placeholder value.
func SpeciesViscosity(s *thermo.Species, T float64) float64 {
	if s.Name == "e-" {
		return 1e-9
	}
	if c, ok := blottner[s.Name]; ok {
		lt := math.Log(T)
		return 0.1 * math.Exp((c[0]*lt+c[1])*lt+c[2])
	}
	return kineticViscosity(s, T)
}

// kineticViscosity is the Chapman-Enskog first approximation:
// mu = 2.6693e-6 sqrt(W_g/mol * T) / (sigma_A^2 Omega22), in kg/(m s).
func kineticViscosity(s *thermo.Species, T float64) float64 {
	sigmaA := s.LJSigma * 1e10 // Angstrom
	if sigmaA <= 0 {
		sigmaA = 3.5
	}
	eps := s.LJEps
	if eps <= 0 {
		eps = 100
	}
	omega := Omega22(T / eps)
	return 2.6693e-6 * math.Sqrt(s.W*1000*T) / (sigmaA * sigmaA * omega)
}

// Omega22 is the Neufeld correlation for the reduced (2,2) collision
// integral as a function of reduced temperature T* = kT/eps.
func Omega22(tStar float64) float64 {
	if tStar < 0.1 {
		tStar = 0.1
	}
	return 1.16145/math.Pow(tStar, 0.14874) +
		0.52487*math.Exp(-0.77320*tStar) +
		2.16178*math.Exp(-2.43787*tStar)
}

// SpeciesConductivity returns the Eucken thermal conductivity of a species:
// k = mu (5/2 cv_trans + cv_rot + cv_vib+elec), W/(m K).
func SpeciesConductivity(s *thermo.Species, T float64) float64 {
	mu := SpeciesViscosity(s, T)
	R := s.R()
	cvTr := 1.5 * R
	cvRot := s.CvTransRot() - cvTr
	cvInt := s.CvVib(T) + s.CvElec(T)
	return mu * (2.5*cvTr + cvRot + cvInt)
}

// Wilke combines species viscosities (or conductivities) phi_s with mole
// fractions x into a mixture value by Wilke's semi-empirical rule.
func Wilke(species []*thermo.Species, x, phi []float64) float64 {
	n := len(species)
	mix := 0.0
	for i := 0; i < n; i++ {
		if x[i] <= 0 {
			continue
		}
		den := 0.0
		for j := 0; j < n; j++ {
			if x[j] <= 0 {
				continue
			}
			wij := phiWilke(phi[i], phi[j], species[i].W, species[j].W)
			den += x[j] * wij
		}
		if den > 0 {
			mix += x[i] * phi[i] / den
		}
	}
	return mix
}

func phiWilke(mi, mj, wi, wj float64) float64 {
	if mj <= 0 {
		return 1
	}
	r := math.Sqrt(mi/mj) * math.Pow(wj/wi, 0.25)
	num := (1 + r) * (1 + r)
	den := math.Sqrt(8 * (1 + wi/wj))
	return num / den
}

// Mixture bundles transport evaluation for a thermo mixture.
type Mixture struct {
	Mix *thermo.Mixture
}

// NewMixture wraps m.
func NewMixture(m *thermo.Mixture) *Mixture { return &Mixture{Mix: m} }

// Viscosity returns the Wilke-mixed viscosity at T for mass fractions y.
func (t *Mixture) Viscosity(T float64, y []float64) float64 {
	x := t.Mix.MoleFractions(y)
	phi := make([]float64, t.Mix.Len())
	for i, s := range t.Mix.Species {
		if x[i] > 0 {
			phi[i] = SpeciesViscosity(s, T)
		}
	}
	return Wilke(t.Mix.Species, x, phi)
}

// Conductivity returns the Wilke-mixed thermal conductivity at T.
func (t *Mixture) Conductivity(T float64, y []float64) float64 {
	x := t.Mix.MoleFractions(y)
	phi := make([]float64, t.Mix.Len())
	for i, s := range t.Mix.Species {
		if x[i] > 0 {
			phi[i] = SpeciesConductivity(s, T)
		}
	}
	return Wilke(t.Mix.Species, x, phi)
}

// Prandtl returns the frozen Prandtl number cp mu / k.
func (t *Mixture) Prandtl(T float64, y []float64) float64 {
	mu := t.Viscosity(T, y)
	k := t.Conductivity(T, y)
	if k <= 0 {
		return 0.72
	}
	return t.Mix.Cp(T, y) * mu / k
}

// DiffusionCoefficient returns the single effective binary diffusion
// coefficient for a constant Lewis number: D = Le k / (rho cp), m^2/s.
func (t *Mixture) DiffusionCoefficient(rho, T float64, y []float64, lewis float64) float64 {
	if lewis <= 0 {
		lewis = 1.4
	}
	k := t.Conductivity(T, y)
	cp := t.Mix.Cp(T, y)
	if rho <= 0 || cp <= 0 {
		return 0
	}
	return lewis * k / (rho * cp)
}

// Sutherland returns the Sutherland-law air viscosity, the standard model
// for the ideal-gas solver paths: mu = 1.458e-6 T^1.5/(T+110.4).
//
//cataero:hotpath
func Sutherland(T float64) float64 {
	return 1.458e-6 * T * math.Sqrt(T) / (T + 110.4)
}

// SutherlandConductivity returns the matching ideal-air conductivity using
// a constant Prandtl number 0.72 and cp = 1004.5 J/(kg K).
//
//cataero:hotpath
func SutherlandConductivity(T float64) float64 {
	return Sutherland(T) * 1004.5 / 0.72
}
