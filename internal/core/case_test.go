package core

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"cataero/internal/fvm"
	"cataero/internal/geometry"
)

func TestProblemJSONRoundTrip(t *testing.T) {
	cases := []Problem{
		{
			Name:  "shuttle entry point",
			Class: VSL, Chemistry: EquilibriumAir,
			PInf: 4.8, TInf: 217, VInf: 6740,
			NoseRadius: 0.6, TWall: 1200, Radiation: true, NStations: 14,
		},
		{
			Class: NS, Chemistry: IdealGas, Gamma: 1.3,
			PInf: 5474.9, TInf: 216.65, VInf: 1770,
			Body: geometry.NewSphere(0.3), NoseRadius: 0.3,
			TWall: 600, NI: 8, NJ: 14, MaxSteps: 120,
			Flux: "hllc", TimeStepping: "implicit",
			CFLRamp:        fvm.CFLRamp{Start: 5, Growth: 1.1, Max: 40},
			Limiter:        "vanalbada",
			GridSequencing: ToggleOff,
		},
		{
			Name:  "multilevel viscous",
			Class: NS, Chemistry: IdealGas,
			PInf: 5474.9, TInf: 216.65, VInf: 1770,
			NoseRadius: 0.3, TWall: 600,
			TimeStepping: "implicit",
			Levels:       3, Cycle: "v", SmoothSteps: 6, RefitEvery: 50,
		},
		{
			Class: PNS, Chemistry: EquilibriumTitan,
			PInf: 100, TInf: 170, VInf: 6000,
			Body:       geometry.NewSphereCone(0.5, 30*math.Pi/180, 1.2),
			NoseRadius: 0.5, TWall: 1500, GammaW: 0.1,
			GridSequencing: ToggleOn,
		},
	}
	for i, p := range cases {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var q Problem
		if err := json.Unmarshal(data, &q); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("case %d: round trip changed the problem:\n got %+v\nwant %+v\njson %s", i, q, p, data)
		}
	}
}

func TestProblemJSONHyperboloidBody(t *testing.T) {
	// The hyperboloid tabulates its profile numerically, so compare shape
	// samples rather than the internal grids.
	p := Problem{
		Class: NS, PInf: 100, TInf: 250, VInf: 2000,
		Body: geometry.NewHyperboloid(0.4, 40*math.Pi/180, 2.0), NoseRadius: 0.4,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Problem
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	hb, ok := q.Body.(*geometry.Hyperboloid)
	if !ok {
		t.Fatalf("body came back as %T", q.Body)
	}
	for _, s := range []float64{0, 0.5, 1.0, 1.9} {
		x0, r0 := p.Body.Point(s)
		x1, r1 := hb.Point(s)
		if math.Abs(x0-x1) > 1e-9 || math.Abs(r0-r1) > 1e-9 {
			t.Fatalf("shape at s=%g: (%g,%g) vs (%g,%g)", s, x0, r0, x1, r1)
		}
	}
}

func TestCaseSpecErrors(t *testing.T) {
	bad := []string{
		`{"class":"warp-drive","p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","chemistry":"unobtainium","p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","body":{"kind":"klein-bottle","nose_radius":1},"p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","grid_sequencing":"maybe","p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","body":{"kind":"sphere"},"p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","levels":-2,"p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","smooth_steps":-1,"p_inf":1,"t_inf":1,"v_inf":1}`,
		`{"class":"ns","refit_every":-3,"p_inf":1,"t_inf":1,"v_inf":1}`,
	}
	for i, s := range bad {
		var p Problem
		if err := json.Unmarshal([]byte(s), &p); err == nil {
			t.Errorf("bad case %d accepted: %s", i, s)
		}
	}
	// A body with no named shape cannot be saved declaratively.
	orb := geometry.NewOrbiter()
	if _, err := json.Marshal(Problem{Class: NS, Body: orbiterBody{orb}, PInf: 1, TInf: 1, VInf: 1}); err == nil {
		t.Error("unnamed body marshaled")
	} else if !strings.Contains(err.Error(), "case-file representation") {
		t.Errorf("wrong error: %v", err)
	}
}

// orbiterBody is a throwaway Body implementation with no case-file name.
type orbiterBody struct{ o *geometry.Orbiter }

func (b orbiterBody) Name() string                   { return "orbiter" }
func (b orbiterBody) Point(s float64) (x, r float64) { return s, s }
func (b orbiterBody) Angle(s float64) float64        { return 0 }
func (b orbiterBody) Curvature(s float64) float64    { return 0 }
func (b orbiterBody) NoseRadius() float64            { return b.o.Rn }
func (b orbiterBody) MaxS() float64                  { return b.o.Length }

func TestToggleEnabled(t *testing.T) {
	if !ToggleOn.Enabled(false) || ToggleOff.Enabled(true) {
		t.Error("explicit toggles must win over the default")
	}
	if ToggleDefault.Enabled(false) || !ToggleDefault.Enabled(true) {
		t.Error("default toggle must follow the default")
	}
}
