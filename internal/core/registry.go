package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Solver is one member of the equation-set hierarchy: it consumes a
// normalized Problem, pulls whatever models it needs from the shared Stack,
// and produces an aerothermal-environment report. Implementations register
// themselves with Register; the dispatcher never hard-codes a class, so new
// equation sets (free-flight/DSMC bridging, shock-tube, ...) plug in
// without touching it.
type Solver interface {
	// Name is a short identifier for reports and registry listings.
	Name() string
	// Solve runs the problem. The context is threaded into the solver's
	// iteration loops; cancellation aborts with ctx.Err().
	Solve(ctx context.Context, st *Stack, p Problem) (*Environment, error)
}

var (
	regMu    sync.RWMutex
	registry = map[SolverClass]Solver{}
)

// Register installs a solver for a class, replacing any previous one.
func Register(class SolverClass, s Solver) {
	if s == nil {
		panic("core: Register with nil solver")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[class] = s
}

// Lookup returns the registered solver for a class.
func Lookup(class SolverClass) (Solver, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[class]
	if !ok {
		return nil, fmt.Errorf("core: no solver registered for class %d (%s)", class, class)
	}
	return s, nil
}

// Registered returns the registered classes in ascending order.
func Registered() []SolverClass {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]SolverClass, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
