package core

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/blayer"
	"cataero/internal/euler"
	"cataero/internal/fvm"
	"cataero/internal/gas"
	"cataero/internal/ns"
	"cataero/internal/pns"
	"cataero/internal/radiation"
	"cataero/internal/thermo"
	"cataero/internal/vsl"
)

// sequenceFor maps the problem-level grid-sequencing toggle and multilevel
// knobs onto the FVM sequencing options (solver defaults otherwise; the
// outer boundary is left where the case put it so sequenced and plain solves
// share a grid). Asking for multilevel machinery — Levels, a Cycle, or
// mid-march refitting — implies sequencing unless GridSequencing is
// ToggleOff; an unresolved ToggleDefault with no multilevel knobs — a plain
// problem solved outside a session — means off.
func sequenceFor(p Problem) *fvm.SequenceOptions {
	multi := p.Levels >= 1 || p.Cycle != "" || p.RefitEvery > 0
	if !p.GridSequencing.Enabled(multi) {
		return nil
	}
	return &fvm.SequenceOptions{
		Levels:      p.Levels,
		Cycle:       p.Cycle,
		SmoothSteps: p.SmoothSteps,
		RefitEvery:  p.RefitEvery,
	}
}

// fvmProgress adapts the problem's Monitor to the finite-volume kernel's
// per-step callback, stamping the solver identity onto every observation.
func fvmProgress(p Problem, solver string) fvm.ProgressFunc {
	if p.Monitor == nil {
		return nil
	}
	mon, class := p.Monitor, p.Class
	return func(phase string, step, maxSteps int, residual float64, diag fvm.Diag) {
		mon.OnProgress(Progress{
			Class: class, Solver: solver, Phase: phase,
			Step: step, MaxSteps: maxSteps, Residual: residual,
			Fallbacks: diag.Fallbacks, Refits: diag.Refits, Restarts: diag.Restarts,
		})
	}
}

// countProgress adapts the problem's Monitor to the (step, total) callbacks
// of the marching and profile solvers, which have no residual to report.
func countProgress(p Problem, solver, phase string) func(step, total int) {
	if p.Monitor == nil {
		return nil
	}
	mon, class := p.Monitor, p.Class
	return func(step, total int) {
		mon.OnProgress(Progress{
			Class: class, Solver: solver, Phase: phase,
			Step: step, MaxSteps: total,
		})
	}
}

// phaseProgress adapts the problem's Monitor to callbacks that report their
// own phase alongside (step, total) — solvers whose coarse stages would
// otherwise run silent (the VSL radiation pass, marching setup sweeps).
func phaseProgress(p Problem, solver string) func(phase string, step, total int) {
	if p.Monitor == nil {
		return nil
	}
	mon, class := p.Monitor, p.Class
	return func(phase string, step, total int) {
		mon.OnProgress(Progress{
			Class: class, Solver: solver, Phase: phase,
			Step: step, MaxSteps: total,
		})
	}
}

// The paper's four equation sets register themselves here; the dispatcher
// in SolveWith only ever consults the registry.
func init() {
	Register(VSL, vslSolver{})
	Register(EBL, eblSolver{})
	Register(PNS, pnsSolver{})
	Register(NS, nsSolver{})
}

// equilibriumModels pulls the cached model set and optional radiation model
// for a problem that requires equilibrium chemistry.
func equilibriumModels(st *Stack, p Problem) (*Models, *radiation.Model, error) {
	m, err := st.Models(p.Chemistry)
	if err != nil {
		return nil, nil, fmt.Errorf("core: solver class %s needs an equilibrium chemistry model: %w", p.Class, err)
	}
	var rad *radiation.Model
	if p.Radiation {
		if rad, err = st.Radiation(p.Chemistry); err != nil {
			return nil, nil, err
		}
	}
	return m, rad, nil
}

// nsTableSpec is the tabulation rectangle for an NS-class equilibrium-air
// solve: bounds derived deterministically from the freestream so repeated
// solves of the same condition share one cached table.
func nsTableSpec(rhoInf, vInf float64) TableSpec {
	return TableSpec{
		RhoMin: rhoInf * 0.05, RhoMax: rhoInf * 40,
		EMin: 1e5, EMax: 2.0 * (0.5*vInf*vInf + 1e6),
		NR: 30, NE: 30,
	}
}

// shockTableSpec is the (wider-density) rectangle for Euler shock-shape
// solves, which see stronger compressions off the stagnation line.
func shockTableSpec(rhoInf, vInf float64) TableSpec {
	return TableSpec{
		RhoMin: rhoInf * 0.05, RhoMax: rhoInf * 60,
		EMin: 1e5, EMax: 2.0 * (0.5*vInf*vInf + 1e6),
		NR: 30, NE: 30,
	}
}

// gasModelFor resolves the (rho, e) EOS for NS/Euler solves: closed-form
// ideal gas, or the cached equilibrium-air table.
func gasModelFor(st *Stack, p Problem, spec func(rhoInf, vInf float64) TableSpec) (gas.Model, error) {
	switch p.Chemistry {
	case IdealGas:
		return gas.NewIdeal(p.Gamma, thermo.RAir), nil
	case EquilibriumAir:
		m, err := st.Models(EquilibriumAir)
		if err != nil {
			return nil, err
		}
		rhoInf := m.Mix.Density(p.PInf, p.TInf, m.Y0)
		return st.Table(spec(rhoInf, p.VInf))
	default:
		return nil, fmt.Errorf("core: %s class supports ideal or equilibrium air", p.Class)
	}
}

// --- VSL: stagnation-line viscous shock layer ---

type vslSolver struct{}

func (vslSolver) Name() string { return "vsl" }

func (vslSolver) Solve(ctx context.Context, st *Stack, p Problem) (*Environment, error) {
	m, rad, err := equilibriumModels(st, p)
	if err != nil {
		return nil, err
	}
	r, err := vsl.Solve(ctx, vsl.Inputs{
		Mix: m.Mix, Eq: m.Eq, Tr: m.Tr, Rad: rad, Y0: m.Y0,
		PInf: p.PInf, TInf: p.TInf, VInf: p.VInf,
		Rn: p.NoseRadius, TWall: p.TWall, NPts: p.NStations,
		Progress: phaseProgress(p, "vsl"),
	})
	if err != nil {
		return nil, err
	}
	return &Environment{
		Class: VSL, QConvStag: r.QConv, QRadStag: r.QRad, Standoff: r.Standoff,
		Description: fmt.Sprintf("VSL stagnation line, %s", m.Mix.Species[0].Name),
		Raw:         r,
	}, nil
}

// --- EBL: Euler (Newtonian) + boundary layer ---

type eblSolver struct{}

func (eblSolver) Name() string { return "ebl" }

func (eblSolver) Solve(ctx context.Context, st *Stack, p Problem) (*Environment, error) {
	m, _, err := equilibriumModels(st, p)
	if err != nil {
		return nil, err
	}
	fs := blayer.FreeStream{P: p.PInf, T: p.TInf, V: p.VInf,
		Rho: m.Mix.Density(p.PInf, p.TInf, m.Y0)}
	// Station-level progress: the per-station equilibrium expansions are the
	// bulk of an E+BL solve, so Run snapshots show live stations like the
	// marching classes do.
	edges, err := blayer.EdgeDistributionProgress(m.Eq, m.Tr, m.Y0, fs, p.Body, stations(p),
		countProgress(p, "ebl", "stations"))
	if err != nil {
		return nil, err
	}
	in, err := blayer.StagnationFromFreestream(m.Eq, m.Y0, fs, p.TWall, p.NoseRadius)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol, err := blayer.SolveStagnation(m.Mix, m.Tr, in.Edge, p.TWall, p.PInf, p.NoseRadius,
		blayer.SimilarityOptions{GammaW: p.GammaW})
	if err != nil {
		return nil, err
	}
	lees := blayer.LeesDistribution(edges, p.NoseRadius, p.PInf)
	env := &Environment{Class: EBL, QConvStag: sol.QWall,
		Description: "Euler(Newtonian)+BL with catalytic wall"}
	for i, e := range edges {
		env.Surface = append(env.Surface, SurfacePoint{S: e.S, Q: sol.QWall * lees[i], P: e.P})
	}
	return env, nil
}

// --- PNS: parabolized space march ---

type pnsSolver struct{}

func (pnsSolver) Name() string { return "pns" }

func (pnsSolver) Solve(ctx context.Context, st *Stack, p Problem) (*Environment, error) {
	var (
		edges []blayer.EdgeState
		props pns.Props
		hw    float64
		err   error
	)
	switch p.Chemistry {
	case IdealGas:
		const R = thermo.RAir
		fs := blayer.FreeStream{P: p.PInf, T: p.TInf, V: p.VInf,
			Rho: p.PInf / (R * p.TInf)}
		edges, err = pns.IdealEdgeDistributionProgress(p.Gamma, R, fs, p.Body, stations(p),
			countProgress(p, "pns", "edges"))
		if err != nil {
			return nil, err
		}
		props = pns.IdealProps(p.Gamma, R)
		hw = p.Gamma * R / (p.Gamma - 1) * p.TWall
	default:
		m, _, err2 := equilibriumModels(st, p)
		if err2 != nil {
			return nil, err2
		}
		fs := blayer.FreeStream{P: p.PInf, T: p.TInf, V: p.VInf,
			Rho: m.Mix.Density(p.PInf, p.TInf, m.Y0)}
		// The per-station equilibrium expansions are the bulk of the setup;
		// report them as their own phase so the march doesn't appear hung.
		edges, err = blayer.EdgeDistributionProgress(m.Eq, m.Tr, m.Y0, fs, p.Body, stations(p),
			countProgress(p, "pns", "edges"))
		if err != nil {
			return nil, err
		}
		props = pns.EquilibriumProps(m.Eq, m.Tr, m.Y0)
		hw, err = pns.WallEnthalpyEquilibrium(m.Eq, m.Y0, edges[0].P, p.TWall)
		if err != nil {
			return nil, err
		}
	}
	res, err := pns.March(ctx, edges, props, hw, edges[0].H, p.NoseRadius, p.PInf,
		pns.Options{Progress: countProgress(p, "pns", "march")})
	if err != nil {
		return nil, err
	}
	env := &Environment{Class: PNS, QConvStag: res[0].Q,
		Description: fmt.Sprintf("PNS space march on the windward equivalent body (%s)", p.Chemistry)}
	for _, r := range res {
		env.Surface = append(env.Surface, SurfacePoint{S: r.S, Q: r.Q, P: r.Edge.P})
	}
	return env, nil
}

// --- NS: thin-layer Navier-Stokes ---

type nsSolver struct{}

func (nsSolver) Name() string { return "ns" }

func (nsSolver) Solve(ctx context.Context, st *Stack, p Problem) (*Environment, error) {
	model, err := gasModelFor(st, p, nsTableSpec)
	if err != nil {
		return nil, err
	}
	r, err := ns.Solve(ctx, ns.Case{
		Gas: model, Rn: p.NoseRadius,
		NI: p.NI, NJ: p.NJ,
		VInf: p.VInf, PInf: p.PInf, TInf: p.TInf,
		TWall: p.TWall, MaxSteps: p.MaxSteps,
		Mu: p.Mu, K: p.K,
		Flux: p.Flux, TimeStepping: p.TimeStepping, ImplicitSweep: p.ImplicitSweep,
		CFLRamp: p.CFLRamp,
		Limiter: p.Limiter, FreezeLimiterAt: p.FreezeLimiterAt,
		Sequence:        sequenceFor(p),
		CheckpointEvery: p.CheckpointEvery, CheckpointSink: p.CheckpointSink, Restore: p.Restore,
		Pool: st.Pool(), Progress: fvmProgress(p, "ns"),
	})
	if err != nil {
		return nil, err
	}
	env := &Environment{Class: NS, QConvStag: r.QWall[0],
		Description: "thin-layer NS, axisymmetric hemisphere",
		Raw:         r,
	}
	for i := range r.QWall {
		q := r.Solver.Primitive(i, 0)
		env.Surface = append(env.Surface, SurfacePoint{S: r.S[i], Q: r.QWall[i], P: q.P})
	}
	// Stagnation standoff from the shock locus.
	xs, ysl := r.Solver.ShockLocus(2.5)
	env.Standoff = math.Hypot(xs[0]-r.Grid.X[0][0], ysl[0]-r.Grid.Y[0][0])
	return env, nil
}

// ShockShapeWith computes an Euler bow-shock envelope (the Fig. 4
// machinery) against the given stack: ideal or equilibrium air, with the
// EOS table cached per freestream condition.
func ShockShapeWith(ctx context.Context, st *Stack, p Problem) (*ShockEnvelope, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st == nil {
		st = DefaultStack()
	}
	p, err := normalize(p)
	if err != nil {
		return nil, err
	}
	model, err := gasModelFor(st, p, shockTableSpec)
	if err != nil {
		return nil, fmt.Errorf("core: shock shape: %w", err)
	}
	res, err := euler.Solve(ctx, euler.Case{
		Gas: model, Body: p.Body,
		NI: p.NI, NJ: p.NJ,
		VInf: p.VInf, PInf: p.PInf, TInf: p.TInf,
		MaxSteps: p.MaxSteps,
		Standoff: p.Standoff,
		Flux:     p.Flux, TimeStepping: p.TimeStepping, ImplicitSweep: p.ImplicitSweep,
		CFLRamp: p.CFLRamp,
		Limiter: p.Limiter, FreezeLimiterAt: p.FreezeLimiterAt,
		Sequence:        sequenceFor(p),
		CheckpointEvery: p.CheckpointEvery, CheckpointSink: p.CheckpointSink, Restore: p.Restore,
		Pool: st.Pool(), Progress: fvmProgress(p, "euler"),
	})
	if err != nil {
		return nil, err
	}
	return &ShockEnvelope{
		X: res.ShockX, Y: res.ShockY,
		BodyX: res.BodyX, BodyY: res.BodyY,
		Standoff: res.Standoff,
	}, nil
}
