// Package core is the computational-aerothermodynamics framework of the
// paper: a single problem specification dispatched to a registry of solver
// classes (VSL, E+BL, PNS, NS) over a shared, cached real-gas model stack,
// producing an aerothermal-environment report (convective and radiative
// heating, shock standoff, surface distributions). This synthesis layer —
// CFD solver hierarchy + high-temperature gas physics + (then-) modern
// computers — is the paper's central contribution.
//
// The architecture has three pieces:
//
//   - Problem/Environment: the case specification and report (this file).
//   - Stack (stack.go): lazily-built, cached model stacks — one per
//     chemistry — plus a keyed cache of tabulated EOS tables, shared by
//     every solve that goes through the same stack.
//   - Solver registry (registry.go, solvers.go): each equation set
//     registers itself at init and the dispatcher resolves classes through
//     the registry, so new solver classes plug in without touching core.
//
// SolveWith/ShockShapeWith are the session-oriented entry points (explicit
// context and stack); Solve/ShockShape are the legacy one-shot wrappers
// over a package-level default stack.
package core

import (
	"context"
	"fmt"

	"cataero/internal/fvm"
	"cataero/internal/geometry"
	"cataero/internal/thermo"
)

// SolverClass selects one of the paper's four equation sets.
type SolverClass int

const (
	// VSL is the viscous-shock-layer class (stagnation-line solution with
	// radiation coupling): the HYVIS/RASLE/COLTS lineage.
	VSL SolverClass = iota
	// EBL is the Euler + boundary-layer class (edge distribution from the
	// inviscid solution, heating from similarity/local-similarity).
	EBL
	// PNS is the parabolized space-marching class.
	PNS
	// NS is the full (thin-layer) Navier-Stokes class.
	NS
)

func (c SolverClass) String() string {
	switch c {
	case VSL:
		return "viscous shock layer"
	case EBL:
		return "Euler + boundary layer"
	case PNS:
		return "parabolized Navier-Stokes"
	case NS:
		return "Navier-Stokes"
	}
	return "unknown"
}

// GasChemistry selects the real-gas treatment.
type GasChemistry int

const (
	// ChemistryUnset lets the session (or the legacy ideal-gas default)
	// choose the chemistry.
	ChemistryUnset GasChemistry = iota
	IdealGas
	EquilibriumAir
	EquilibriumTitan
)

func (c GasChemistry) String() string {
	switch c {
	case ChemistryUnset:
		return "unset"
	case IdealGas:
		return "ideal gas"
	case EquilibriumAir:
		return "equilibrium air"
	case EquilibriumTitan:
		return "equilibrium Titan"
	}
	return "unknown"
}

// Toggle is a tri-state switch for per-problem feature flags that have a
// session-level default: the zero value defers to the session, and a
// problem can force the feature on or off regardless of that default.
type Toggle int

const (
	// ToggleDefault defers to the session (or solver) default.
	ToggleDefault Toggle = iota
	// ToggleOn forces the feature on for this problem.
	ToggleOn
	// ToggleOff forces the feature off, overriding a session that enables
	// it by default.
	ToggleOff
)

func (t Toggle) String() string {
	switch t {
	case ToggleDefault:
		return "default"
	case ToggleOn:
		return "on"
	case ToggleOff:
		return "off"
	}
	return "unknown"
}

// Enabled resolves the toggle against a default.
func (t Toggle) Enabled(def bool) bool {
	switch t {
	case ToggleOn:
		return true
	case ToggleOff:
		return false
	}
	return def
}

// Problem is a complete aerothermal case specification.
type Problem struct {
	// Name is an optional case label for reports and case files; it does
	// not affect the solve.
	Name string

	Class     SolverClass
	Chemistry GasChemistry
	Gamma     float64 // ideal-gas gamma (default 1.4)

	// Freestream.
	PInf, TInf, VInf float64

	// Geometry: either an explicit body or a nose radius for a sphere.
	Body       geometry.Body
	NoseRadius float64

	// Wall.
	TWall  float64
	GammaW float64 // catalytic recombination coefficient (EBL class)

	// Radiation coupling (VSL class).
	Radiation bool

	// Discretization hints.
	NStations int // surface stations (EBL/PNS, default 20); VSL profile points (default 60)
	NI, NJ    int // grid cells (NS)
	MaxSteps  int

	// Flux selects the finite-volume upwind flux kernel by name for the
	// NS and Euler shock-shape classes ("hlle", "hllc", "ausm+"; empty =
	// solver default).
	Flux string

	// TimeStepping selects the finite-volume time integrator by name for
	// the NS and Euler shock-shape classes ("explicit", "implicit"; empty =
	// session or solver default). Implicit (line-implicit, DPLR-style)
	// stepping removes the wall-normal CFL restriction and converges
	// clustered viscous grids in several-fold fewer steps.
	TimeStepping string

	// ImplicitSweep selects the implicit line-relaxation sweep pattern for
	// the NS and Euler shock-shape classes ("jline" = wall-normal lines only,
	// "adi" = alternating wall-normal and streamwise passes; empty = session
	// or solver default — see the fvm.ImplicitSweeps list). Ignored by the
	// explicit integrator.
	ImplicitSweep string

	// CFLRamp tunes the implicit integrator's CFL schedule; zero-valued
	// fields take the fvm.DefaultCFLRamp defaults. Ignored by the explicit
	// integrator.
	CFLRamp fvm.CFLRamp

	// Limiter selects the MUSCL slope limiter by name for the NS and Euler
	// shock-shape classes ("minmod", "vanalbada"; empty = session or solver
	// default). The smooth van Albada limiter lets the implicit CFL ramp
	// climb past the minmod limit cycle.
	Limiter string

	// FreezeLimiterAt freezes the MUSCL limiter for the NS and Euler
	// shock-shape classes once the residual has dropped by this factor
	// (e.g. 1e-2), replaying the recorded slopes for the rest of the march.
	// Must be in (0, 1); 0 disables (or defers to the session default).
	FreezeLimiterAt float64

	// GridSequencing controls grid-sequenced NS and Euler shock-shape
	// solves (converge on a coarsened grid, then finish on the fine grid
	// from the interpolated coarse state). The zero value defers to the
	// session default; ToggleOff disables sequencing even on a session that
	// enables it (including multilevel solves requested via Levels/Cycle).
	GridSequencing Toggle

	// Levels selects the number of grid levels for multilevel NS and Euler
	// shock-shape solves (fine level included): 0 defers to the session
	// default (the classic two-level sequenced solve when sequencing is on),
	// 2 the two-level solve, 3 or more a deeper hierarchy with levels the
	// grid cannot reach dropped automatically. Setting Levels (or Cycle, or
	// RefitEvery) turns sequencing on unless GridSequencing is ToggleOff.
	Levels int

	// Cycle selects the multilevel schedule ("cascade", "v"; empty = session
	// or solver default — see the fvm.Cycles list).
	Cycle string

	// SmoothSteps is the pre/post smoothing step count per V-cycle level
	// (0 = solver default).
	SmoothSteps int

	// RefitEvery, when positive, re-fits the outer boundary to the detected
	// shock locus every RefitEvery steps on the finest level mid-march,
	// transferring the solution onto the refitted grid.
	RefitEvery int

	// Standoff optionally places the outer grid boundary as a function of
	// arc length (Euler shock-shape solves); nil uses the solver default.
	Standoff func(s float64) float64

	// Mu and K optionally override the NS-class transport closures (e.g.
	// equilibrium-composition viscosity/conductivity); nil uses Sutherland.
	Mu, K func(T float64) float64

	// CheckpointEvery, when positive, asks the NS and Euler shock-shape
	// classes to emit a solver-state checkpoint every CheckpointEvery steps
	// through CheckpointSink. It is part of the case specification wire form
	// (CaseSpec) but is cleared by Canonical, so it never perturbs a case's
	// ledger key: a checkpointed solve and a plain solve of the same case
	// produce the same artifact.
	CheckpointEvery int

	// CheckpointSink receives each emitted checkpoint. The *fvm.Checkpoint
	// is scratch owned by the solver — encode it (Checkpoint.AppendBinary)
	// before returning. Runtime-only: dropped by SpecOf/Canonical like
	// Monitor.
	CheckpointSink func(*fvm.Checkpoint)

	// Restore, when non-nil, resumes the solve from a previously captured
	// checkpoint instead of a cold start. A checkpoint that does not match
	// the case (grid size, phase) is ignored and the solve starts cold:
	// restore is an optimization, never a requirement. Runtime-only.
	Restore *fvm.Checkpoint

	// Monitor, when non-nil, observes the solve's iteration loops (see
	// Monitor). The session layer installs its own monitor for Run handles
	// and forwards to this one.
	Monitor Monitor
}

// SurfacePoint is one station of a surface distribution. The JSON tags are
// the wire form used by result artifacts and the run ledger (envjson.go).
type SurfacePoint struct {
	S float64 `json:"s"` // arc length, m
	Q float64 `json:"q"` // heat flux, W/m^2
	P float64 `json:"p"` // surface pressure, Pa
}

// Environment is the aerothermal-environment report.
type Environment struct {
	Class       SolverClass
	QConvStag   float64 // stagnation convective heating, W/m^2
	QRadStag    float64 // stagnation radiative heating, W/m^2
	Standoff    float64 // shock standoff, m
	Surface     []SurfacePoint
	Description string
	// Raw optionally carries the solver-specific result (e.g. *ns.Result
	// for field post-processing); nil when the class has no richer payload.
	Raw any
}

// normalize validates the freestream and geometry and fills defaults.
func normalize(p Problem) (Problem, error) {
	if p.VInf <= 0 || p.PInf <= 0 || p.TInf <= 0 {
		return p, fmt.Errorf("core: freestream required")
	}
	if p.Body == nil {
		if p.NoseRadius <= 0 {
			return p, fmt.Errorf("core: body or nose radius required")
		}
		p.Body = geometry.NewSphere(p.NoseRadius)
	}
	if p.NoseRadius == 0 {
		p.NoseRadius = p.Body.NoseRadius()
	}
	if p.Chemistry == ChemistryUnset {
		p.Chemistry = IdealGas
	}
	if p.TWall == 0 {
		p.TWall = 1200
	}
	if p.Gamma == 0 {
		p.Gamma = thermo.GammaAir
	}
	return p, nil
}

// stations resolves the surface-station count for the EBL/PNS classes.
// (The zero value stays zero through normalize so the VSL class can keep
// its own, finer profile default.)
func stations(p Problem) int {
	if p.NStations > 0 {
		return p.NStations
	}
	return 20
}

// SolveWith dispatches the problem through the solver registry against the
// given model stack. This is the session entry point: the stack's caches
// make repeated and batched solves cheap, and the context is threaded into
// the solver iteration loops.
func SolveWith(ctx context.Context, st *Stack, p Problem) (*Environment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st == nil {
		st = DefaultStack()
	}
	p, err := normalize(p)
	if err != nil {
		return nil, err
	}
	s, err := Lookup(p.Class)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, st, p)
}

// Solve dispatches the problem to its solver class over the package default
// stack.
//
// Deprecated: use SolveWith (or the root package's Session) for explicit
// cancellation and cache control.
func Solve(p Problem) (*Environment, error) {
	return SolveWith(context.Background(), DefaultStack(), p)
}

// ShockEnvelope is the result of an Euler bow-shock solve: the shock locus,
// the wall nodes it envelopes, and the stagnation-line standoff.
type ShockEnvelope struct {
	X, Y         []float64 // bow-shock locus
	BodyX, BodyY []float64 // wall nodes for reference
	Standoff     float64   // stagnation-line standoff, m
}

// ShockShape computes an Euler bow-shock locus for a problem (Fig. 4
// machinery): ideal or equilibrium air.
//
// Deprecated: use ShockShapeWith (or the root package's Session) for
// explicit cancellation and cache control.
func ShockShape(p Problem) (xs, ys []float64, standoff float64, err error) {
	env, err := ShockShapeWith(context.Background(), DefaultStack(), p)
	if err != nil {
		return nil, nil, 0, err
	}
	return env.X, env.Y, env.Standoff, nil
}
