// Package core is the computational-aerothermodynamics framework of the
// paper: a single problem specification dispatched to the four solver
// classes (VSL, E+BL, PNS, NS) over a shared real-gas model stack, producing
// an aerothermal-environment report (convective and radiative heating,
// shock standoff, surface distributions). This synthesis layer — CFD solver
// hierarchy + high-temperature gas physics + (then-) modern computers — is
// the paper's central contribution.
package core

import (
	"fmt"
	"math"

	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/euler"
	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/ns"
	"cataero/internal/pns"
	"cataero/internal/radiation"
	"cataero/internal/thermo"
	"cataero/internal/transport"
	"cataero/internal/vsl"
)

// SolverClass selects one of the paper's four equation sets.
type SolverClass int

const (
	// VSL is the viscous-shock-layer class (stagnation-line solution with
	// radiation coupling): the HYVIS/RASLE/COLTS lineage.
	VSL SolverClass = iota
	// EBL is the Euler + boundary-layer class (edge distribution from the
	// inviscid solution, heating from similarity/local-similarity).
	EBL
	// PNS is the parabolized space-marching class.
	PNS
	// NS is the full (thin-layer) Navier-Stokes class.
	NS
)

func (c SolverClass) String() string {
	switch c {
	case VSL:
		return "viscous shock layer"
	case EBL:
		return "Euler + boundary layer"
	case PNS:
		return "parabolized Navier-Stokes"
	case NS:
		return "Navier-Stokes"
	}
	return "unknown"
}

// GasChemistry selects the real-gas treatment.
type GasChemistry int

const (
	IdealGas GasChemistry = iota
	EquilibriumAir
	EquilibriumTitan
)

// Problem is a complete aerothermal case specification.
type Problem struct {
	Class     SolverClass
	Chemistry GasChemistry
	Gamma     float64 // ideal-gas gamma (default 1.4)

	// Freestream.
	PInf, TInf, VInf float64

	// Geometry: either an explicit body or a nose radius for a sphere.
	Body       geometry.Body
	NoseRadius float64

	// Wall.
	TWall  float64
	GammaW float64 // catalytic recombination coefficient (EBL class)

	// Radiation coupling (VSL class).
	Radiation bool

	// Discretization hints.
	NStations int // surface stations (EBL/PNS)
	NI, NJ    int // grid cells (NS)
	MaxSteps  int
}

// SurfacePoint is one station of a surface distribution.
type SurfacePoint struct {
	S float64 // arc length, m
	Q float64 // heat flux, W/m^2
	P float64 // surface pressure, Pa
}

// Environment is the aerothermal-environment report.
type Environment struct {
	Class       SolverClass
	QConvStag   float64 // stagnation convective heating, W/m^2
	QRadStag    float64 // stagnation radiative heating, W/m^2
	Standoff    float64 // shock standoff, m
	Surface     []SurfacePoint
	Description string
}

// airStack bundles the shared real-gas models for air.
type airStack struct {
	mix *thermo.Mixture
	eq  *chem.EquilibriumSolver
	tr  *transport.Mixture
	y0  []float64
}

func newAirStack() airStack {
	m := thermo.NewMixture(thermo.AirSpecies11())
	return airStack{
		mix: m,
		eq:  chem.NewEquilibriumSolver(m),
		tr:  transport.NewMixture(m),
		y0:  thermo.AirFreestreamMassFractions(m.Species),
	}
}

func newTitanStack() airStack {
	m := thermo.NewMixture(thermo.TitanSpecies())
	return airStack{
		mix: m,
		eq:  chem.NewEquilibriumSolver(m),
		tr:  transport.NewMixture(m),
		y0:  thermo.TitanFreestreamMassFractions(m.Species),
	}
}

// Solve dispatches the problem to its solver class.
func Solve(p Problem) (*Environment, error) {
	if p.VInf <= 0 || p.PInf <= 0 || p.TInf <= 0 {
		return nil, fmt.Errorf("core: freestream required")
	}
	if p.Body == nil {
		if p.NoseRadius <= 0 {
			return nil, fmt.Errorf("core: body or nose radius required")
		}
		p.Body = geometry.NewSphere(p.NoseRadius)
	}
	if p.NoseRadius == 0 {
		p.NoseRadius = p.Body.NoseRadius()
	}
	if p.TWall == 0 {
		p.TWall = 1200
	}
	if p.NStations == 0 {
		p.NStations = 20
	}
	if p.Gamma == 0 {
		p.Gamma = 1.4
	}
	switch p.Class {
	case VSL:
		return solveVSL(p)
	case EBL:
		return solveEBL(p)
	case PNS:
		return solvePNS(p)
	case NS:
		return solveNS(p)
	}
	return nil, fmt.Errorf("core: unknown solver class %d", p.Class)
}

func stackFor(p Problem) (airStack, *radiation.Model, error) {
	switch p.Chemistry {
	case EquilibriumAir:
		st := newAirStack()
		var rad *radiation.Model
		if p.Radiation {
			rad = radiation.NewAirModel(st.mix, 300)
		}
		return st, rad, nil
	case EquilibriumTitan:
		st := newTitanStack()
		var rad *radiation.Model
		if p.Radiation {
			rad = radiation.NewTitanModel(st.mix, 300)
		}
		return st, rad, nil
	default:
		return airStack{}, nil, fmt.Errorf("core: solver class %s needs an equilibrium chemistry model", p.Class)
	}
}

func solveVSL(p Problem) (*Environment, error) {
	st, rad, err := stackFor(p)
	if err != nil {
		return nil, err
	}
	r, err := vsl.Solve(vsl.Inputs{
		Mix: st.mix, Eq: st.eq, Tr: st.tr, Rad: rad, Y0: st.y0,
		PInf: p.PInf, TInf: p.TInf, VInf: p.VInf,
		Rn: p.NoseRadius, TWall: p.TWall,
	})
	if err != nil {
		return nil, err
	}
	return &Environment{
		Class: VSL, QConvStag: r.QConv, QRadStag: r.QRad, Standoff: r.Standoff,
		Description: fmt.Sprintf("VSL stagnation line, %s", st.mix.Species[0].Name),
	}, nil
}

func solveEBL(p Problem) (*Environment, error) {
	st, _, err := stackFor(p)
	if err != nil {
		return nil, err
	}
	fs := blayer.FreeStream{P: p.PInf, T: p.TInf, V: p.VInf,
		Rho: st.mix.Density(p.PInf, p.TInf, st.y0)}
	edges, err := blayer.EdgeDistribution(st.eq, st.tr, st.y0, fs, p.Body, p.NStations)
	if err != nil {
		return nil, err
	}
	in, err := blayer.StagnationFromFreestream(st.eq, st.y0, fs, p.TWall, p.NoseRadius)
	if err != nil {
		return nil, err
	}
	sol, err := blayer.SolveStagnation(st.mix, st.tr, in.Edge, p.TWall, p.PInf, p.NoseRadius,
		blayer.SimilarityOptions{GammaW: p.GammaW})
	if err != nil {
		return nil, err
	}
	lees := blayer.LeesDistribution(edges, p.NoseRadius, p.PInf)
	env := &Environment{Class: EBL, QConvStag: sol.QWall,
		Description: "Euler(Newtonian)+BL with catalytic wall"}
	for i, e := range edges {
		env.Surface = append(env.Surface, SurfacePoint{S: e.S, Q: sol.QWall * lees[i], P: e.P})
	}
	return env, nil
}

func solvePNS(p Problem) (*Environment, error) {
	st, _, err := stackFor(p)
	if err != nil {
		return nil, err
	}
	fs := blayer.FreeStream{P: p.PInf, T: p.TInf, V: p.VInf,
		Rho: st.mix.Density(p.PInf, p.TInf, st.y0)}
	edges, err := blayer.EdgeDistribution(st.eq, st.tr, st.y0, fs, p.Body, p.NStations)
	if err != nil {
		return nil, err
	}
	hw, err := pns.WallEnthalpyEquilibrium(st.eq, st.y0, edges[0].P, p.TWall)
	if err != nil {
		return nil, err
	}
	res, err := pns.March(edges, pns.EquilibriumProps(st.eq, st.tr, st.y0),
		hw, edges[0].H, p.NoseRadius, p.PInf, pns.Options{})
	if err != nil {
		return nil, err
	}
	env := &Environment{Class: PNS, QConvStag: res[0].Q,
		Description: "PNS space march on the windward equivalent body"}
	for _, r := range res {
		env.Surface = append(env.Surface, SurfacePoint{S: r.S, Q: r.Q, P: r.Edge.P})
	}
	return env, nil
}

func solveNS(p Problem) (*Environment, error) {
	var model gas.Model
	switch p.Chemistry {
	case IdealGas:
		model = gas.NewIdeal(p.Gamma, 287.05)
	case EquilibriumAir:
		eqm := gas.NewEquilibriumAir()
		rhoInf := eqm.Mix.Density(p.PInf, p.TInf,
			thermo.AirFreestreamMassFractions(eqm.Mix.Species))
		eMax := 2.0 * (0.5*p.VInf*p.VInf + 1e6)
		tab, err := gas.NewTable(eqm, rhoInf*0.05, rhoInf*40, 1e5, eMax, 30, 30)
		if err != nil {
			return nil, err
		}
		model = tab
	default:
		return nil, fmt.Errorf("core: NS class supports ideal or equilibrium air")
	}
	r, err := ns.Solve(ns.Case{
		Gas: model, Rn: p.NoseRadius,
		NI: p.NI, NJ: p.NJ,
		VInf: p.VInf, PInf: p.PInf, TInf: p.TInf,
		TWall: p.TWall, MaxSteps: p.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	env := &Environment{Class: NS, QConvStag: r.QWall[0],
		Description: "thin-layer NS, axisymmetric hemisphere"}
	for i := range r.QWall {
		q := r.Solver.Primitive(i, 0)
		env.Surface = append(env.Surface, SurfacePoint{S: r.S[i], Q: r.QWall[i], P: q.P})
	}
	// Stagnation standoff from the shock locus.
	xs, ysl := r.Solver.ShockLocus(2.5)
	env.Standoff = math.Hypot(xs[0]-r.Grid.X[0][0], ysl[0]-r.Grid.Y[0][0])
	return env, nil
}

// ShockShape computes an Euler bow-shock locus (the Fig. 4 machinery)
// directly from a problem specification; ideal or equilibrium chemistry.
func ShockShape(p Problem) (xs, ys []float64, standoff float64, err error) {
	if p.Gamma == 0 {
		p.Gamma = 1.4
	}
	var model gas.Model
	switch p.Chemistry {
	case IdealGas:
		model = gas.NewIdeal(p.Gamma, 287.05)
	case EquilibriumAir:
		eqm := gas.NewEquilibriumAir()
		rhoInf := eqm.Mix.Density(p.PInf, p.TInf,
			thermo.AirFreestreamMassFractions(eqm.Mix.Species))
		eMax := 2.0 * (0.5*p.VInf*p.VInf + 1e6)
		tab, e := gas.NewTable(eqm, rhoInf*0.05, rhoInf*60, 1e5, eMax, 30, 30)
		if e != nil {
			return nil, nil, 0, e
		}
		model = tab
	default:
		return nil, nil, 0, fmt.Errorf("core: shock shape needs ideal or equilibrium air")
	}
	if p.Body == nil {
		if p.NoseRadius <= 0 {
			return nil, nil, 0, fmt.Errorf("core: body required")
		}
		p.Body = geometry.NewSphere(p.NoseRadius)
	}
	res, err := euler.Solve(euler.Case{
		Gas: model, Body: p.Body,
		NI: p.NI, NJ: p.NJ,
		VInf: p.VInf, PInf: p.PInf, TInf: p.TInf,
		MaxSteps: p.MaxSteps,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return res.ShockX, res.ShockY, res.Standoff, nil
}
