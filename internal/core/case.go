package core

import (
	"encoding/json"
	"fmt"
	"math"

	"cataero/internal/fvm"
	"cataero/internal/geometry"
)

// CaseSpec is the declarative, JSON-marshalable mirror of a Problem: the
// case-file format of the toolkit. Enumerations are spelled as strings and
// the geometry.Body interface stands behind a named BodySpec, so a spec
// round-trips through JSON and back into an equivalent Problem. Fields a
// Problem carries as functions (Standoff, Mu, K) or live callbacks
// (Monitor) have no declarative form and are dropped by SpecOf.
type CaseSpec struct {
	// Name is an optional label for reports; it does not affect the solve.
	Name      string  `json:"name,omitempty"`
	Class     string  `json:"class"`
	Chemistry string  `json:"chemistry,omitempty"`
	Gamma     float64 `json:"gamma,omitempty"`

	PInf float64 `json:"p_inf"`
	TInf float64 `json:"t_inf"`
	VInf float64 `json:"v_inf"`

	Body       *BodySpec `json:"body,omitempty"`
	NoseRadius float64   `json:"nose_radius,omitempty"`

	TWall  float64 `json:"t_wall,omitempty"`
	GammaW float64 `json:"gamma_w,omitempty"`

	Radiation bool `json:"radiation,omitempty"`

	NStations int `json:"n_stations,omitempty"`
	NI        int `json:"ni,omitempty"`
	NJ        int `json:"nj,omitempty"`
	MaxSteps  int `json:"max_steps,omitempty"`

	Flux string `json:"flux,omitempty"`
	// TimeStepping is the finite-volume time integrator name ("explicit",
	// "implicit"); empty defers to the session or solver default.
	TimeStepping string `json:"time_stepping,omitempty"`
	// ImplicitSweep is the implicit sweep-pattern name ("jline", "adi");
	// empty defers to the session or solver default.
	ImplicitSweep string `json:"implicit_sweep,omitempty"`
	// CFLRamp tunes the implicit integrator's CFL schedule; omitted fields
	// take the solver defaults.
	CFLRamp *CFLRampSpec `json:"cfl_ramp,omitempty"`
	// Limiter is the MUSCL slope-limiter name ("minmod", "vanalbada");
	// empty defers to the session or solver default.
	Limiter string `json:"limiter,omitempty"`
	// FreezeLimiterAt freezes the MUSCL limiter once the residual has
	// dropped by this factor (must be in (0, 1); 0 = off / session default).
	FreezeLimiterAt float64 `json:"freeze_limiter_at,omitempty"`
	// GridSequencing is "" (session default), "on" or "off".
	GridSequencing string `json:"grid_sequencing,omitempty"`
	// Levels is the multilevel grid-level count (0 = session default; 2 =
	// classic two-level; >= 3 = deeper hierarchy). Setting it (or Cycle, or
	// RefitEvery) turns sequencing on unless grid_sequencing is "off".
	Levels int `json:"levels,omitempty"`
	// Cycle is the multilevel schedule name ("cascade", "v").
	Cycle string `json:"cycle,omitempty"`
	// SmoothSteps is the V-cycle pre/post smoothing step count (0 = solver
	// default).
	SmoothSteps int `json:"smooth_steps,omitempty"`
	// RefitEvery re-fits the outer boundary to the detected shock locus
	// every RefitEvery finest-level steps mid-march (0 = off).
	RefitEvery int `json:"refit_every,omitempty"`
	// CheckpointEvery emits a solver-state checkpoint every CheckpointEvery
	// steps (0 = off / session default). Cleared by canonicalization: it
	// never perturbs a case's ledger key.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// CFLRampSpec is the case-file form of the implicit integrator's CFL
// schedule (fvm.CFLRamp): initial CFL, geometric per-step growth factor and
// cap. Zero-valued fields take the solver defaults.
type CFLRampSpec struct {
	Start  float64 `json:"start,omitempty"`
	Growth float64 `json:"growth,omitempty"`
	Max    float64 `json:"max,omitempty"`
}

// BodySpec names a body shape declaratively: a kind from the geometry
// package plus its dimensions. Angles are in degrees (case files are written
// by hand).
type BodySpec struct {
	// Kind is "sphere", "sphere-cone" or "hyperboloid".
	Kind string `json:"kind"`
	// NoseRadius is the stagnation-point radius of curvature, m.
	NoseRadius float64 `json:"nose_radius"`
	// HalfAngleDeg is the cone half angle or hyperboloid asymptotic half
	// angle, degrees.
	HalfAngleDeg float64 `json:"half_angle_deg,omitempty"`
	// BaseRadius is the sphere-cone base radius, m.
	BaseRadius float64 `json:"base_radius,omitempty"`
	// MaxS is the hyperboloid arc-length extent, m.
	MaxS float64 `json:"max_s,omitempty"`
}

// Body instantiates the named shape.
func (b BodySpec) Body() (geometry.Body, error) {
	if b.NoseRadius <= 0 {
		return nil, fmt.Errorf("core: body %q needs a positive nose_radius", b.Kind)
	}
	switch b.Kind {
	case "sphere":
		return geometry.NewSphere(b.NoseRadius), nil
	case "sphere-cone":
		if b.HalfAngleDeg <= 0 || b.BaseRadius <= 0 {
			return nil, fmt.Errorf("core: sphere-cone needs half_angle_deg and base_radius")
		}
		return geometry.NewSphereCone(b.NoseRadius, b.HalfAngleDeg*math.Pi/180, b.BaseRadius), nil
	case "hyperboloid":
		if b.HalfAngleDeg <= 0 || b.MaxS <= 0 {
			return nil, fmt.Errorf("core: hyperboloid needs half_angle_deg and max_s")
		}
		return geometry.NewHyperboloid(b.NoseRadius, b.HalfAngleDeg*math.Pi/180, b.MaxS), nil
	}
	return nil, fmt.Errorf("core: unknown body kind %q (want sphere, sphere-cone or hyperboloid)", b.Kind)
}

// bodySpecOf maps a concrete geometry type back to its named spec.
func bodySpecOf(body geometry.Body) (*BodySpec, error) {
	switch b := body.(type) {
	case nil:
		return nil, nil
	case *geometry.Sphere:
		return &BodySpec{Kind: "sphere", NoseRadius: b.R}, nil
	case *geometry.SphereCone:
		return &BodySpec{Kind: "sphere-cone", NoseRadius: b.Rn,
			HalfAngleDeg: b.ThetaC * 180 / math.Pi, BaseRadius: b.Rb}, nil
	case *geometry.Hyperboloid:
		return &BodySpec{Kind: "hyperboloid", NoseRadius: b.Rn,
			HalfAngleDeg: b.ThetaA * 180 / math.Pi, MaxS: b.MaxS()}, nil
	}
	return nil, fmt.Errorf("core: body %T has no case-file representation", body)
}

// class name table, matching the solver registry names.
var classNames = map[SolverClass]string{VSL: "vsl", EBL: "ebl", PNS: "pns", NS: "ns"}

// ParseClass resolves a case-file class name ("vsl", "ebl", "pns", "ns").
func ParseClass(name string) (SolverClass, error) {
	for c, n := range classNames {
		if n == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: unknown solver class %q (want vsl, ebl, pns or ns)", name)
}

// chemistry name table for case files.
var chemistryNames = map[GasChemistry]string{
	IdealGas:         "ideal",
	EquilibriumAir:   "equilibrium-air",
	EquilibriumTitan: "equilibrium-titan",
}

// ParseChemistry resolves a case-file chemistry name; the empty string is
// ChemistryUnset (session default).
func ParseChemistry(name string) (GasChemistry, error) {
	if name == "" {
		return ChemistryUnset, nil
	}
	for c, n := range chemistryNames {
		if n == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: unknown chemistry %q (want ideal, equilibrium-air or equilibrium-titan)", name)
}

func parseToggle(s string) (Toggle, error) {
	switch s {
	case "":
		return ToggleDefault, nil
	case "on":
		return ToggleOn, nil
	case "off":
		return ToggleOff, nil
	}
	return 0, fmt.Errorf("core: grid_sequencing %q (want \"on\", \"off\" or omitted)", s)
}

func toggleName(t Toggle) string {
	switch t {
	case ToggleOn:
		return "on"
	case ToggleOff:
		return "off"
	}
	return ""
}

// SpecOf converts a Problem to its declarative case spec. Function-valued
// fields (Standoff, Mu, K) and the Monitor are dropped — they have no
// serialized form; a Body with no named shape is an error.
func SpecOf(p Problem) (CaseSpec, error) {
	body, err := bodySpecOf(p.Body)
	if err != nil {
		return CaseSpec{}, err
	}
	class, ok := classNames[p.Class]
	if !ok {
		return CaseSpec{}, fmt.Errorf("core: solver class %d has no case-file name", p.Class)
	}
	chem := ""
	if p.Chemistry != ChemistryUnset {
		if chem, ok = chemistryNames[p.Chemistry]; !ok {
			return CaseSpec{}, fmt.Errorf("core: chemistry %d has no case-file name", p.Chemistry)
		}
	}
	var ramp *CFLRampSpec
	if p.CFLRamp != (fvm.CFLRamp{}) {
		ramp = &CFLRampSpec{Start: p.CFLRamp.Start, Growth: p.CFLRamp.Growth, Max: p.CFLRamp.Max}
	}
	return CaseSpec{
		Name:      p.Name,
		Class:     class,
		Chemistry: chem,
		Gamma:     p.Gamma,
		PInf:      p.PInf, TInf: p.TInf, VInf: p.VInf,
		Body: body, NoseRadius: p.NoseRadius,
		TWall: p.TWall, GammaW: p.GammaW,
		Radiation: p.Radiation,
		NStations: p.NStations, NI: p.NI, NJ: p.NJ, MaxSteps: p.MaxSteps,
		Flux:            p.Flux,
		TimeStepping:    p.TimeStepping,
		ImplicitSweep:   p.ImplicitSweep,
		CFLRamp:         ramp,
		Limiter:         p.Limiter,
		FreezeLimiterAt: p.FreezeLimiterAt,
		GridSequencing:  toggleName(p.GridSequencing),
		Levels:          p.Levels,
		Cycle:           p.Cycle,
		SmoothSteps:     p.SmoothSteps,
		RefitEvery:      p.RefitEvery,
		CheckpointEvery: p.CheckpointEvery,
	}, nil
}

// Problem instantiates the spec: names resolve through the class and
// chemistry tables, the body spec through the geometry package.
func (c CaseSpec) Problem() (Problem, error) {
	class, err := ParseClass(c.Class)
	if err != nil {
		return Problem{}, err
	}
	chem, err := ParseChemistry(c.Chemistry)
	if err != nil {
		return Problem{}, err
	}
	seq, err := parseToggle(c.GridSequencing)
	if err != nil {
		return Problem{}, err
	}
	if c.Levels < 0 {
		return Problem{}, fmt.Errorf("core: levels %d negative", c.Levels)
	}
	if c.SmoothSteps < 0 {
		return Problem{}, fmt.Errorf("core: smooth_steps %d negative", c.SmoothSteps)
	}
	if c.RefitEvery < 0 {
		return Problem{}, fmt.Errorf("core: refit_every %d negative", c.RefitEvery)
	}
	if c.CheckpointEvery < 0 {
		return Problem{}, fmt.Errorf("core: checkpoint_every %d negative", c.CheckpointEvery)
	}
	if c.FreezeLimiterAt < 0 || c.FreezeLimiterAt >= 1 {
		return Problem{}, fmt.Errorf("core: freeze_limiter_at %g outside [0, 1)", c.FreezeLimiterAt)
	}
	p := Problem{
		Name:      c.Name,
		Class:     class,
		Chemistry: chem,
		Gamma:     c.Gamma,
		PInf:      c.PInf, TInf: c.TInf, VInf: c.VInf,
		NoseRadius: c.NoseRadius,
		TWall:      c.TWall, GammaW: c.GammaW,
		Radiation: c.Radiation,
		NStations: c.NStations, NI: c.NI, NJ: c.NJ, MaxSteps: c.MaxSteps,
		Flux:            c.Flux,
		TimeStepping:    c.TimeStepping,
		ImplicitSweep:   c.ImplicitSweep,
		Limiter:         c.Limiter,
		FreezeLimiterAt: c.FreezeLimiterAt,
		GridSequencing:  seq,
		Levels:          c.Levels,
		Cycle:           c.Cycle,
		SmoothSteps:     c.SmoothSteps,
		RefitEvery:      c.RefitEvery,
		CheckpointEvery: c.CheckpointEvery,
	}
	if c.CFLRamp != nil {
		p.CFLRamp = fvm.CFLRamp{Start: c.CFLRamp.Start, Growth: c.CFLRamp.Growth, Max: c.CFLRamp.Max}
	}
	if c.Body != nil {
		if p.Body, err = c.Body.Body(); err != nil {
			return Problem{}, err
		}
	}
	return p, nil
}

// MarshalJSON serializes the problem as its declarative case spec, so a
// Problem built in code can be written out as a case file and reloaded.
// Function-valued fields and the Monitor are dropped; a Body that is not a
// named geometry shape is an error.
func (p Problem) MarshalJSON() ([]byte, error) {
	spec, err := SpecOf(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(spec)
}

// UnmarshalJSON parses a case-file spec into the problem.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var spec CaseSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return err
	}
	q, err := spec.Problem()
	if err != nil {
		return err
	}
	*p = q
	return nil
}
