package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cataero/internal/chem"
	"cataero/internal/fvm"
	"cataero/internal/gas"
	"cataero/internal/radiation"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// Models bundles the shared real-gas substrate for one chemistry: the
// thermodynamic mixture, the Gibbs equilibrium solver, the transport
// closure and the freestream composition. All four are safe for concurrent
// use, so one Models value can back many simultaneous solves.
type Models struct {
	Mix *thermo.Mixture
	Eq  *chem.EquilibriumSolver
	Tr  *transport.Mixture
	Y0  []float64
}

// TableSpec keys one tabulated equilibrium EOS: the (rho, e) rectangle and
// node counts passed to gas.NewTable. Specs derived from the same problem
// parameters are identical, so repeated solves share one table.
type TableSpec struct {
	RhoMin, RhoMax float64
	EMin, EMax     float64
	NR, NE         int
}

type modelsEntry struct {
	once sync.Once
	m    *Models
	err  error
}

type radEntry struct {
	once sync.Once
	rad  *radiation.Model
	err  error
}

type tableEntry struct {
	once sync.Once
	tab  *gas.Table
	err  error
}

// Stack owns the lazily-built, cached model stacks shared by every solver
// in the registry: one Models set per chemistry (built under sync.Once), the
// radiation models, the exact equilibrium-air EOS and a keyed cache of
// tabulated EOS tables. A Stack is safe for concurrent use; sessions hold
// one and hand it to each solve so repeated and batched solves stop paying
// the model-construction cost.
type Stack struct {
	mu     sync.Mutex
	models map[GasChemistry]*modelsEntry
	rads   map[GasChemistry]*radEntry
	tables map[TableSpec]*tableEntry

	eqAirOnce sync.Once
	eqAir     *gas.Equilibrium

	poolOnce sync.Once
	pool     *fvm.Pool

	tableBuilds atomic.Int64
}

// NewStack returns an empty stack; all models build lazily on first use.
func NewStack() *Stack {
	return &Stack{
		models: map[GasChemistry]*modelsEntry{},
		rads:   map[GasChemistry]*radEntry{},
		tables: map[TableSpec]*tableEntry{},
	}
}

// Models returns the cached model set for the chemistry, building it on
// first use. Ideal gas has no model stack (the solvers that accept it use
// closed-form properties) and unset chemistry has nothing to build; both
// return an error.
func (st *Stack) Models(c GasChemistry) (*Models, error) {
	switch c {
	case EquilibriumAir, EquilibriumTitan:
	default:
		return nil, fmt.Errorf("core: chemistry %s has no equilibrium model stack", c)
	}
	st.mu.Lock()
	e, ok := st.models[c]
	if !ok {
		e = &modelsEntry{}
		st.models[c] = e
	}
	st.mu.Unlock()
	e.once.Do(func() {
		var m *thermo.Mixture
		var y0 []float64
		switch c {
		case EquilibriumAir:
			m = thermo.NewMixture(thermo.AirSpecies11())
			y0 = thermo.AirFreestreamMassFractions(m.Species)
		case EquilibriumTitan:
			m = thermo.NewMixture(thermo.TitanSpecies())
			y0 = thermo.TitanFreestreamMassFractions(m.Species)
		}
		e.m = &Models{
			Mix: m,
			Eq:  chem.NewEquilibriumSolver(m),
			Tr:  transport.NewMixture(m),
			Y0:  y0,
		}
	})
	return e.m, e.err
}

// Radiation returns the cached tangent-slab radiation model for the
// chemistry, building it (and the underlying model set) on first use.
func (st *Stack) Radiation(c GasChemistry) (*radiation.Model, error) {
	m, err := st.Models(c)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	e, ok := st.rads[c]
	if !ok {
		e = &radEntry{}
		st.rads[c] = e
	}
	st.mu.Unlock()
	e.once.Do(func() {
		switch c {
		case EquilibriumAir:
			e.rad = radiation.NewAirModel(m.Mix, 300)
		case EquilibriumTitan:
			e.rad = radiation.NewTitanModel(m.Mix, 300)
		}
	})
	return e.rad, e.err
}

// EquilibriumAirGas returns the cached exact equilibrium-air EOS (the table
// base model).
func (st *Stack) EquilibriumAirGas() *gas.Equilibrium {
	st.eqAirOnce.Do(func() { st.eqAir = gas.NewEquilibriumAir() })
	return st.eqAir
}

// Table returns the cached equilibrium-air EOS table for the spec, building
// it on first use. Identical specs — e.g. repeated solves of the same
// problem through one session — share one table and pay the sampling cost
// exactly once.
func (st *Stack) Table(spec TableSpec) (*gas.Table, error) {
	st.mu.Lock()
	e, ok := st.tables[spec]
	if !ok {
		e = &tableEntry{}
		st.tables[spec] = e
	}
	st.mu.Unlock()
	e.once.Do(func() {
		st.tableBuilds.Add(1)
		e.tab, e.err = gas.NewTable(st.EquilibriumAirGas(),
			spec.RhoMin, spec.RhoMax, spec.EMin, spec.EMax, spec.NR, spec.NE)
	})
	return e.tab, e.err
}

// TableBuilds reports how many EOS tables this stack has actually sampled —
// the cache-effectiveness counter asserted by tests and benchmarks.
func (st *Stack) TableBuilds() int { return int(st.tableBuilds.Load()) }

// Pool returns the stack's shared finite-volume worker pool, building it
// GOMAXPROCS-sized on first use. Every NS and Euler solve through this
// stack shares it, so concurrent batch solves keep a fixed resident worker
// count instead of spawning a private pool per solver (the per-solver pools
// oversubscribed the CPUs under SolveBatch). The pool reclaims itself by
// finalizer when the stack is dropped.
func (st *Stack) Pool() *fvm.Pool {
	st.poolOnce.Do(func() { st.pool = fvm.NewPool(0) })
	return st.pool
}

var (
	defaultStackOnce sync.Once
	defaultStack     *Stack
)

// DefaultStack returns the package-level stack behind the legacy one-shot
// entry points, so even pre-session callers share model caches.
func DefaultStack() *Stack {
	defaultStackOnce.Do(func() { defaultStack = NewStack() })
	return defaultStack
}
