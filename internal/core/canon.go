package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cataero/internal/fvm"
)

// This file defines the canonical form of a case — the content address of
// the run ledger. Two problems that would produce the same solve must hash
// to the same key, so canonicalization normalizes everything that does not
// affect the result:
//
//   - the report label (Problem.Name) is cleared;
//   - the solve-independent defaults are filled (normalize: chemistry,
//     gamma, wall temperature, body from nose radius), so a spec that
//     spells a default explicitly collides with one that omits it;
//   - the finite-volume registry choices left empty resolve to the solver
//     defaults (DefaultFlux/DefaultTimeStepping/DefaultLimiter), and the
//     multilevel cycle to DefaultCycle when a sequenced solve would use it;
//   - the spec is re-marshaled through a generic map, so object keys are
//     emitted in sorted order regardless of struct declaration order.
//
// Problems whose configuration lives in function fields (Standoff, Mu, K)
// have no canonical form and are rejected by SpecOf; the Monitor is dropped
// (it never affects the solution).

// Normalize validates the problem and fills the solve-independent defaults
// (freestream checks, sphere body from NoseRadius, ideal-gas chemistry,
// default gamma and wall temperature) — the same normalization every solve
// runs through before dispatch, exported for canonical hashing and serving
// layers.
func Normalize(p Problem) (Problem, error) {
	return normalize(p)
}

// Canonical returns the canonical, default-normalized case spec of a
// problem: the form whose JSON encoding is hashed into the ledger key. The
// label is cleared and every default a solve would fill is made explicit,
// so semantically identical cases produce identical specs.
func Canonical(p Problem) (CaseSpec, error) {
	p.Name = ""
	p.Monitor = nil
	// Checkpointing never changes the converged solution, so it must not
	// change the content address: a resumed run writes its result under the
	// same key a cold solve of the case would.
	p.CheckpointEvery = 0
	p.CheckpointSink = nil
	p.Restore = nil
	np, err := normalize(p)
	if err != nil {
		return CaseSpec{}, err
	}
	if np.Flux == "" {
		np.Flux = fvm.DefaultFlux
	}
	if np.TimeStepping == "" {
		np.TimeStepping = fvm.DefaultTimeStepping
	}
	if np.Limiter == "" {
		np.Limiter = fvm.DefaultLimiter
	}
	// The sweep pattern matters only when the implicit integrator would
	// consult it; an explicit solve keeps the empty sweep rather than
	// spelling a knob it never reads.
	if np.ImplicitSweep == "" && np.TimeStepping == fvm.TimeSteppingImplicit {
		np.ImplicitSweep = fvm.DefaultImplicitSweep
	}
	// The cycle matters only when a multilevel solve would consult it: a
	// requested level hierarchy with no schedule runs the default cycle, so
	// spell it out. A plain single-level solve keeps the empty cycle rather
	// than inventing a knob it never reads.
	if np.Cycle == "" && np.Levels >= 2 {
		np.Cycle = fvm.DefaultCycle
	}
	return SpecOf(np)
}

// CanonicalJSON returns the canonical JSON encoding of a problem: the
// Canonical spec re-marshaled through a generic map so object keys are
// sorted, suitable for hashing and for storing alongside a ledger entry.
func CanonicalJSON(p Problem) ([]byte, error) {
	spec, err := Canonical(p)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	return sortJSON(raw)
}

// CaseKey returns the content address of a problem: the lowercase hex
// SHA-256 of its canonical JSON. Semantically identical cases — field-order
// permutations, explicitly spelled defaults, labels — share a key.
func CaseKey(p Problem) (string, error) {
	canon, err := CanonicalJSON(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// sortJSON re-encodes a JSON document with object keys in sorted order at
// every nesting level (encoding/json sorts map keys), leaving values and
// array order untouched.
func sortJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep numbers byte-for-byte, not float64 round-trips
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: canonical json: %w", err)
	}
	return json.Marshal(doc)
}
