package core

import (
	"encoding/json"
	"fmt"
)

// ClassName returns the case-file name of a solver class ("vsl", "ebl",
// "pns", "ns"), or the empty string for a class with no declarative name —
// the inverse of ParseClass, for JSON views and ledger metadata.
func ClassName(c SolverClass) string {
	return classNames[c]
}

// envJSON is the stable wire form of an Environment: the result artifact
// written by `catsim run -out`, stored in ledger entries and returned by
// the serve API. The solver-specific Raw payload has no portable encoding
// and is dropped; everything else round-trips.
type envJSON struct {
	Class       string         `json:"class"`
	QConvStag   float64        `json:"q_conv_stag"`
	QRadStag    float64        `json:"q_rad_stag,omitempty"`
	Standoff    float64        `json:"standoff,omitempty"`
	Surface     []SurfacePoint `json:"surface,omitempty"`
	Description string         `json:"description,omitempty"`
}

// MarshalJSON encodes the environment in its stable wire form: the class as
// its case-file name, snake_case keys, the solver-specific Raw payload
// dropped (it has no portable encoding).
func (e Environment) MarshalJSON() ([]byte, error) {
	name, ok := classNames[e.Class]
	if !ok {
		return nil, fmt.Errorf("core: environment class %d has no case-file name", e.Class)
	}
	return json.Marshal(envJSON{
		Class:       name,
		QConvStag:   e.QConvStag,
		QRadStag:    e.QRadStag,
		Standoff:    e.Standoff,
		Surface:     e.Surface,
		Description: e.Description,
	})
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON. Raw is left
// nil: a deserialized environment carries the report, not the live solver
// state.
func (e *Environment) UnmarshalJSON(data []byte) error {
	var v envJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	class, err := ParseClass(v.Class)
	if err != nil {
		return err
	}
	*e = Environment{
		Class:       class,
		QConvStag:   v.QConvStag,
		QRadStag:    v.QRadStag,
		Standoff:    v.Standoff,
		Surface:     v.Surface,
		Description: v.Description,
	}
	return nil
}
