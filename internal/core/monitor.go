package core

// Progress is one live observation of a running solve: which solver class
// is executing, which phase of its schedule it is in, how far along it is
// and the latest residual when the class computes one. The paper's workflow
// is long solver campaigns watched by engineers — residual histories and
// step counts are first-class artifacts, so every iteration loop in the
// hierarchy reports them through this type.
type Progress struct {
	// Class is the problem's solver class. Shock-shape solves do not
	// dispatch on Class; identify them by Solver ("euler") instead.
	Class SolverClass
	// Solver is the registry name of the executing solver ("vsl", "ebl",
	// "pns", "ns", "euler" for shock-shape solves).
	Solver string
	// Phase names the stage of the solver's schedule: "solve" for a plain
	// finite-volume march, "coarse"/"fine" for the grid-sequencing stages,
	// "march" for the PNS station march, "profile" for the VSL
	// stagnation-line profile, "stations" for the EBL edge distribution.
	Phase string
	// Step counts completed iterations within the phase: time steps for
	// the finite-volume classes, stations for PNS, profile points for VSL.
	Step int
	// MaxSteps is the phase's iteration budget (0 when open-ended).
	MaxSteps int
	// Residual is the latest RMS density residual for the finite-volume
	// classes; 0 for classes that do not compute one.
	Residual float64
	// Fallbacks counts implicit-integrator divergence recoveries (line
	// solves that fell back to an explicit update after the CFL ramp
	// overshot); 0 for the explicit integrator and non-FVM classes.
	Fallbacks int
	// Refits counts mid-march shock refits completed so far (multilevel
	// solves with RefitEvery); 0 otherwise.
	Refits int
	// Restarts counts checkpoint restores this solve chain has been through
	// (1 for the first resumed run, 0 for a cold solve).
	Restarts int
}

// Monitor observes the progress of a solve. Callbacks run on the solving
// goroutine after every iteration, so implementations must be cheap and
// must not call back into the solve. The session layer's Run handles are
// Monitors; a Problem may also carry its own.
type Monitor interface {
	OnProgress(Progress)
}

// MonitorFunc adapts a function to the Monitor interface.
type MonitorFunc func(Progress)

// OnProgress implements Monitor.
func (f MonitorFunc) OnProgress(p Progress) { f(p) }
