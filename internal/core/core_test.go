package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// A Shuttle-like entry point used across the dispatch tests.
func entryProblem(class SolverClass) Problem {
	return Problem{
		Class:     class,
		Chemistry: EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 14,
	}
}

func TestSolverClassStrings(t *testing.T) {
	for _, c := range []SolverClass{VSL, EBL, PNS, NS} {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	if SolverClass(99).String() != "unknown" {
		t.Error("unknown class should say so")
	}
}

func TestDispatchVSL(t *testing.T) {
	env, err := Solve(entryProblem(VSL))
	if err != nil {
		t.Fatal(err)
	}
	if env.Class != VSL {
		t.Error("wrong class")
	}
	if env.QConvStag < 1e4 || env.QConvStag > 1e7 {
		t.Errorf("VSL stagnation heating %g outside band", env.QConvStag)
	}
	if env.Standoff <= 0 {
		t.Error("no standoff")
	}
}

func TestDispatchEBL(t *testing.T) {
	p := entryProblem(EBL)
	p.GammaW = 1
	env, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Surface) != p.NStations {
		t.Fatalf("surface points %d", len(env.Surface))
	}
	// Surface heating decays from the stagnation value.
	if env.Surface[len(env.Surface)-1].Q > env.Surface[0].Q {
		t.Error("heating should decay along the body")
	}
}

// The EBL class reports station-level progress through the problem Monitor,
// like the marching classes do, so Run snapshots are uniform across solver
// classes.
func TestEBLStationProgress(t *testing.T) {
	p := entryProblem(EBL)
	var stations []int
	total := 0
	p.Monitor = MonitorFunc(func(pr Progress) {
		if pr.Solver != "ebl" || pr.Phase != "stations" {
			t.Errorf("unexpected solver/phase %q/%q", pr.Solver, pr.Phase)
		}
		stations = append(stations, pr.Step)
		total = pr.MaxSteps
	})
	if _, err := Solve(p); err != nil {
		t.Fatal(err)
	}
	if len(stations) != p.NStations || total != p.NStations {
		t.Fatalf("saw %d station reports (total %d), want %d", len(stations), total, p.NStations)
	}
	for i, s := range stations {
		if s != i+1 {
			t.Fatalf("station %d reported as %d", i+1, s)
		}
	}
}

func TestDispatchPNS(t *testing.T) {
	env, err := Solve(entryProblem(PNS))
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no PNS stagnation heating")
	}
	if len(env.Surface) == 0 {
		t.Error("no PNS surface distribution")
	}
}

func TestDispatchNS(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	p := Problem{
		Class:     NS,
		Chemistry: EquilibriumAir,
		PInf:      5474.9, TInf: 216.65,
		VInf:       20 * math.Sqrt(1.4*287.05*216.65),
		NoseRadius: 0.3, TWall: 1500,
		NI: 12, NJ: 22, MaxSteps: 2200,
	}
	env, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no NS wall heating")
	}
	if env.Standoff <= 0 || env.Standoff > 0.3*0.3*10 {
		t.Errorf("NS standoff %g", env.Standoff)
	}
}

func TestCrossClassConsistency(t *testing.T) {
	// The framework claim: different members of the hierarchy agree on the
	// stagnation heating within a factor ~2 for the same problem.
	envV, err := Solve(entryProblem(VSL))
	if err != nil {
		t.Fatal(err)
	}
	p := entryProblem(EBL)
	p.GammaW = 1
	envE, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	envP, err := Solve(entryProblem(PNS))
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{envV.QConvStag, envE.QConvStag, envP.QConvStag}
	for i := 1; i < len(qs); i++ {
		r := qs[i] / qs[0]
		if r < 0.4 || r > 2.5 {
			t.Errorf("class %d stagnation heating %g vs VSL %g (ratio %g)", i, qs[i], qs[0], r)
		}
	}
}

func TestShockShapeReactingCloser(t *testing.T) {
	if testing.Short() {
		t.Skip("Euler solves in short mode")
	}
	base := Problem{
		PInf: 10.9, TInf: 233, VInf: 6700,
		NoseRadius: 1.0, NI: 14, NJ: 24, MaxSteps: 2200,
	}
	pI := base
	pI.Chemistry = IdealGas
	_, _, dI, err := ShockShape(pI)
	if err != nil {
		t.Fatal(err)
	}
	pE := base
	pE.Chemistry = EquilibriumAir
	_, _, dE, err := ShockShape(pE)
	if err != nil {
		t.Fatal(err)
	}
	if dE >= dI {
		t.Errorf("reacting standoff %g should be below ideal %g", dE, dI)
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{PInf: 1, TInf: 1, VInf: 1}); err == nil {
		t.Error("problem without geometry accepted")
	}
	p := entryProblem(VSL)
	p.Chemistry = IdealGas
	if _, err := Solve(p); err == nil {
		t.Error("VSL with ideal gas should demand equilibrium chemistry")
	}
}

func TestDispatchUnknownClass(t *testing.T) {
	p := entryProblem(SolverClass(99))
	if _, err := Solve(p); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestRegistryContents(t *testing.T) {
	got := Registered()
	want := []SolverClass{VSL, EBL, PNS, NS}
	if len(got) != len(want) {
		t.Fatalf("registered classes %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered classes %v, want %v", got, want)
		}
	}
	for _, c := range want {
		s, err := Lookup(c)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() == "" {
			t.Errorf("class %s solver has no name", c)
		}
	}
	if _, err := Lookup(SolverClass(42)); err == nil {
		t.Error("lookup of unregistered class succeeded")
	}
}

func TestDispatchPNSIdealGas(t *testing.T) {
	p := entryProblem(PNS)
	p.Chemistry = IdealGas
	p.Gamma = 1.2
	env, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no ideal-gas PNS stagnation heating")
	}
	if len(env.Surface) != p.NStations {
		t.Errorf("surface points %d", len(env.Surface))
	}
	// Heating decays along the body, as in the equilibrium march.
	if env.Surface[len(env.Surface)-1].Q > env.Surface[0].Q {
		t.Error("ideal-gas heating should decay along the body")
	}
}

func TestStackModelCache(t *testing.T) {
	st := NewStack()
	a, err := st.Models(EquilibriumAir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Models(EquilibriumAir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Models lookups should return the cached pointer")
	}
	ti, err := st.Models(EquilibriumTitan)
	if err != nil {
		t.Fatal(err)
	}
	if ti == a {
		t.Error("distinct chemistries must not share a model set")
	}
	if _, err := st.Models(IdealGas); err == nil {
		t.Error("ideal gas should have no equilibrium model stack")
	}
	if _, err := st.Models(ChemistryUnset); err == nil {
		t.Error("unset chemistry should have no model stack")
	}
	r1, err := st.Radiation(EquilibriumTitan)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st.Radiation(EquilibriumTitan)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated Radiation lookups should return the cached pointer")
	}
}

func TestStackTableCache(t *testing.T) {
	st := NewStack()
	spec := TableSpec{RhoMin: 1e-4, RhoMax: 1.0, EMin: 2e5, EMax: 3e7, NR: 8, NE: 8}
	t1, err := st.Table(spec)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := st.Table(spec)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("identical specs should share one table")
	}
	if n := st.TableBuilds(); n != 1 {
		t.Errorf("table built %d times, want 1", n)
	}
	spec.NR = 9
	if _, err := st.Table(spec); err != nil {
		t.Fatal(err)
	}
	if n := st.TableBuilds(); n != 2 {
		t.Errorf("table built %d times after second spec, want 2", n)
	}
}

func TestSolveWithCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveWith(ctx, NewStack(), entryProblem(VSL))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
