package core

import (
	"math"
	"testing"
)

// A Shuttle-like entry point used across the dispatch tests.
func entryProblem(class SolverClass) Problem {
	return Problem{
		Class:     class,
		Chemistry: EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 14,
	}
}

func TestSolverClassStrings(t *testing.T) {
	for _, c := range []SolverClass{VSL, EBL, PNS, NS} {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	if SolverClass(99).String() != "unknown" {
		t.Error("unknown class should say so")
	}
}

func TestDispatchVSL(t *testing.T) {
	env, err := Solve(entryProblem(VSL))
	if err != nil {
		t.Fatal(err)
	}
	if env.Class != VSL {
		t.Error("wrong class")
	}
	if env.QConvStag < 1e4 || env.QConvStag > 1e7 {
		t.Errorf("VSL stagnation heating %g outside band", env.QConvStag)
	}
	if env.Standoff <= 0 {
		t.Error("no standoff")
	}
}

func TestDispatchEBL(t *testing.T) {
	p := entryProblem(EBL)
	p.GammaW = 1
	env, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Surface) != p.NStations {
		t.Fatalf("surface points %d", len(env.Surface))
	}
	// Surface heating decays from the stagnation value.
	if env.Surface[len(env.Surface)-1].Q > env.Surface[0].Q {
		t.Error("heating should decay along the body")
	}
}

func TestDispatchPNS(t *testing.T) {
	env, err := Solve(entryProblem(PNS))
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no PNS stagnation heating")
	}
	if len(env.Surface) == 0 {
		t.Error("no PNS surface distribution")
	}
}

func TestDispatchNS(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	p := Problem{
		Class:     NS,
		Chemistry: EquilibriumAir,
		PInf:      5474.9, TInf: 216.65,
		VInf:       20 * math.Sqrt(1.4*287.05*216.65),
		NoseRadius: 0.3, TWall: 1500,
		NI: 12, NJ: 22, MaxSteps: 2200,
	}
	env, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no NS wall heating")
	}
	if env.Standoff <= 0 || env.Standoff > 0.3*0.3*10 {
		t.Errorf("NS standoff %g", env.Standoff)
	}
}

func TestCrossClassConsistency(t *testing.T) {
	// The framework claim: different members of the hierarchy agree on the
	// stagnation heating within a factor ~2 for the same problem.
	envV, err := Solve(entryProblem(VSL))
	if err != nil {
		t.Fatal(err)
	}
	p := entryProblem(EBL)
	p.GammaW = 1
	envE, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	envP, err := Solve(entryProblem(PNS))
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{envV.QConvStag, envE.QConvStag, envP.QConvStag}
	for i := 1; i < len(qs); i++ {
		r := qs[i] / qs[0]
		if r < 0.4 || r > 2.5 {
			t.Errorf("class %d stagnation heating %g vs VSL %g (ratio %g)", i, qs[i], qs[0], r)
		}
	}
}

func TestShockShapeReactingCloser(t *testing.T) {
	if testing.Short() {
		t.Skip("Euler solves in short mode")
	}
	base := Problem{
		PInf: 10.9, TInf: 233, VInf: 6700,
		NoseRadius: 1.0, NI: 14, NJ: 24, MaxSteps: 2200,
	}
	pI := base
	pI.Chemistry = IdealGas
	_, _, dI, err := ShockShape(pI)
	if err != nil {
		t.Fatal(err)
	}
	pE := base
	pE.Chemistry = EquilibriumAir
	_, _, dE, err := ShockShape(pE)
	if err != nil {
		t.Fatal(err)
	}
	if dE >= dI {
		t.Errorf("reacting standoff %g should be below ideal %g", dE, dI)
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{PInf: 1, TInf: 1, VInf: 1}); err == nil {
		t.Error("problem without geometry accepted")
	}
	p := entryProblem(VSL)
	p.Chemistry = IdealGas
	if _, err := Solve(p); err == nil {
		t.Error("VSL with ideal gas should demand equilibrium chemistry")
	}
}
