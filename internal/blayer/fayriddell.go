// Package blayer implements the boundary-layer half of the paper's E+BL
// solver class: Fay-Riddell stagnation-point heating, a finite-difference
// stagnation similarity solution with finite-rate catalytic walls, inviscid
// edge-condition construction (modified Newtonian + equilibrium isentrope),
// and the Lees local-similarity heating distribution along blunt bodies.
package blayer

import (
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// FreeStream bundles the upstream conditions for heating analyses.
type FreeStream struct {
	P, T, Rho, V float64
}

// StagnationInputs collects everything Fay-Riddell needs.
type StagnationInputs struct {
	Edge       shock.StagnationState // equilibrium edge (external) state
	WallT      float64               // wall temperature, K
	WallY      []float64             // wall-gas composition (recombined); nil = edge.Y
	NoseRadius float64               // m
	PInf       float64               // freestream pressure (for du_e/ds)
	Lewis      float64               // Lewis number (default 1.4)
}

// VelocityGradient returns the Newtonian stagnation velocity gradient
// du_e/ds = (1/Rn) sqrt(2 (p_e - p_inf)/rho_e).
func VelocityGradient(edge shock.StagnationState, pInf, rn float64) float64 {
	dp := edge.P - pInf
	if dp < 0 {
		dp = edge.P
	}
	return math.Sqrt(2*dp/edge.Rho) / rn
}

// FayRiddell returns the stagnation-point heat flux (W/m^2) from the
// Fay-Riddell correlation for an equilibrium boundary layer with a fully
// catalytic wall:
//
//	q = 0.76 Pr^-0.6 (rho_e mu_e)^0.4 (rho_w mu_w)^0.1 sqrt(du_e/ds)
//	    (h0e - hw) [1 + (Le^0.52 - 1) hD/h0e]
func FayRiddell(m *thermo.Mixture, tr *transport.Mixture, in StagnationInputs) (float64, error) {
	if in.NoseRadius <= 0 {
		return 0, fmt.Errorf("blayer: nonpositive nose radius")
	}
	le := in.Lewis
	if le <= 0 {
		le = 1.4
	}
	edge := in.Edge
	mue := tr.Viscosity(edge.T, edge.Y)
	// Wall properties at edge pressure and wall temperature. The wall gas is
	// recombined (cold equilibrium), so its enthalpy carries no dissociation
	// energy; using the frozen edge composition here would understate the
	// driving enthalpy difference.
	wallY := in.WallY
	if wallY == nil {
		wallY = edge.Y
	}
	rhow := m.Density(edge.P, in.WallT, wallY)
	muw := tr.Viscosity(in.WallT, wallY)
	beta := VelocityGradient(edge, in.PInf, in.NoseRadius)
	hw := m.Enthalpy(in.WallT, wallY)
	// Dissociation enthalpy carried by the edge gas.
	hD := m.HFormation(edge.Y)
	pr := tr.Prandtl(edge.T, edge.Y)
	if pr <= 0 {
		pr = 0.71
	}
	q := 0.76 * math.Pow(pr, -0.6) *
		math.Pow(edge.Rho*mue, 0.4) * math.Pow(rhow*muw, 0.1) *
		math.Sqrt(beta) * (edge.H - hw) *
		(1 + (math.Pow(le, 0.52)-1)*hD/edge.H)
	return q, nil
}

// SuttonGraves returns the classic engineering stagnation heating
// correlation q = k sqrt(rho/Rn) V^3 with k = 1.7415e-4 (SI) for Earth air;
// used as an order-of-magnitude cross-check of the similarity results.
func SuttonGraves(rho, v, rn float64) float64 {
	return 1.7415e-4 * math.Sqrt(rho/rn) * v * v * v
}

// StagnationFromFreestream builds the equilibrium stagnation inputs from
// freestream conditions (helper used by examples and benches).
func StagnationFromFreestream(eq *chem.EquilibriumSolver, y0 []float64, fs FreeStream, wallT, rn float64) (StagnationInputs, error) {
	st, err := shock.StagnationEquilibrium(eq, y0, fs.P, fs.T, fs.V)
	if err != nil {
		return StagnationInputs{}, err
	}
	// Recombined wall gas: equilibrium composition at the (cold) wall.
	wallY, _, err := eq.CompositionPT(st.P, wallT, y0)
	if err != nil {
		wallY = nil // fall back to the frozen edge composition
	}
	return StagnationInputs{Edge: st, WallT: wallT, WallY: wallY, NoseRadius: rn, PInf: fs.P}, nil
}
