package blayer

import (
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/geometry"
	"cataero/internal/numerics"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// EdgeState is the inviscid boundary-layer edge state at one body station.
type EdgeState struct {
	S            float64 // arc length, m
	P, T, Rho, H float64
	Ue           float64 // edge velocity, m/s
	Mu           float64
	R            float64 // body radius from axis
	Y            []float64
}

// EdgeDistribution computes boundary-layer edge conditions along an
// axisymmetric body from the modified-Newtonian pressure distribution and an
// isentropic expansion from the equilibrium stagnation state (the normal-
// shock entropy layer assumption of the era's E+BL codes).
func EdgeDistribution(eq *chem.EquilibriumSolver, tr *transport.Mixture, y0 []float64, fs FreeStream, body geometry.Body, ns int) ([]EdgeState, error) {
	return EdgeDistributionProgress(eq, tr, y0, fs, body, ns, nil)
}

// EdgeDistributionProgress is EdgeDistribution with a per-station progress
// callback: progress(station, total) runs after each station's equilibrium
// expansion (the expensive part of an E+BL solve), so run handles can show
// station-level progress. A nil progress is ignored.
func EdgeDistributionProgress(eq *chem.EquilibriumSolver, tr *transport.Mixture, y0 []float64, fs FreeStream, body geometry.Body, ns int, progress func(station, total int)) ([]EdgeState, error) {
	m := eq.Mix
	stag, err := shock.StagnationEquilibrium(eq, y0, fs.P, fs.T, fs.V)
	if err != nil {
		return nil, err
	}
	sStag := m.Entropy(stag.T, stag.P, stag.Y)
	h0 := stag.H
	cpMax := (stag.P - fs.P) / (0.5 * fs.Rho * fs.V * fs.V)

	out := make([]EdgeState, ns)
	sMax := body.MaxS()
	for i := 0; i < ns; i++ {
		s := sMax * float64(i) / float64(ns-1)
		theta := body.Angle(s) // surface inclination to the freestream
		sinT := math.Sin(theta)
		// Modified Newtonian with the usual aft-body floor: where the
		// surface turns parallel to the flow, sin^2(theta) -> 0 understates
		// the measured pressure (shock-curvature effects); era codes floor
		// the pressure coefficient at a few percent of stagnation.
		cpLocal := cpMax * sinT * sinT
		if cpLocal < 0.04*cpMax {
			cpLocal = 0.04 * cpMax
		}
		pe := fs.P + 0.5*fs.Rho*fs.V*fs.V*cpLocal
		if pe < fs.P {
			pe = fs.P
		}
		// Isentropic expansion from stagnation to pe: find T with
		// s_eq(T, pe) = s_stag.
		Te, ye, rhoe, err := isentropicT(eq, m, y0, pe, sStag, stag.T)
		if err != nil {
			return nil, fmt.Errorf("blayer: edge state at s=%g: %w", s, err)
		}
		he := m.Enthalpy(Te, ye)
		ue2 := 2 * (h0 - he)
		if ue2 < 0 {
			ue2 = 0
		}
		_, r := body.Point(s)
		out[i] = EdgeState{
			S: s, P: pe, T: Te, Rho: rhoe, H: he,
			Ue: math.Sqrt(ue2), Mu: tr.Viscosity(Te, ye), R: r, Y: ye,
		}
		if progress != nil {
			progress(i+1, ns)
		}
	}
	return out, nil
}

// isentropicT finds the equilibrium temperature at pressure p on the
// isentrope of entropy sTarget by bisection, starting below T0.
func isentropicT(eq *chem.EquilibriumSolver, m *thermo.Mixture, y0 []float64, p, sTarget, T0 float64) (float64, []float64, float64, error) {
	f := func(T float64) (float64, []float64, float64, error) {
		y, rho, err := eq.CompositionPT(p, T, y0)
		if err != nil {
			return 0, nil, 0, err
		}
		return m.Entropy(T, p, y) - sTarget, y, rho, nil
	}
	lo, hi := 200.0, T0*1.05+100
	flo, _, _, err := f(lo)
	if err != nil {
		return 0, nil, 0, err
	}
	fhi, yhi, rhohi, err := f(hi)
	if err != nil {
		return 0, nil, 0, err
	}
	if flo > 0 {
		// Entropy everywhere above target: gas fully expanded; return cold end.
		_, ylo, rholo, err := f(lo)
		return lo, ylo, rholo, err
	}
	if fhi < 0 {
		return hi, yhi, rhohi, nil
	}
	var ymid []float64
	var rhomid float64
	for i := 0; i < 70; i++ {
		mid := 0.5 * (lo + hi)
		fm, ym, rm, err := f(mid)
		if err != nil {
			return 0, nil, 0, err
		}
		ymid, rhomid = ym, rm
		if math.Abs(fm) < 1e-6*math.Abs(sTarget) || hi-lo < 0.5 {
			return mid, ym, rm, nil
		}
		if fm > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), ymid, rhomid, nil
}

// LeesDistribution returns the laminar heating ratio q(s)/q(0) along the
// body by Lees' local-similarity result:
//
//	q(s)/q(0) = [rho_e mu_e u_e r^2 / sqrt(2 xi)] / lim_{s->0}[...]
//	xi(s) = int_0^s rho_e mu_e u_e r^2 ds
//
// The edge states must start at the stagnation point (s=0).
func LeesDistribution(edges []EdgeState, rn float64, pInf float64) []float64 {
	n := len(edges)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Stagnation limit: q(0) proportional to sqrt(beta rho_e mu_e) with
	// beta = du_e/ds at s=0 estimated from the first station spacing.
	e0 := edges[0]
	beta := math.Sqrt(2*math.Max(e0.P-pInf, e0.P*0.5)/e0.Rho) / rn
	// Stagnation limit of rho_e mu_e u_e r / sqrt(2 xi): sqrt(2 beta rho mu).
	q0 := math.Sqrt(2 * beta * e0.Rho * e0.Mu)
	out[0] = 1
	xi := 0.0
	for i := 1; i < n; i++ {
		a := edges[i-1]
		b := edges[i]
		// xi integrand carries r^2; the flux numerator carries a single r.
		fa := a.Rho * a.Mu * a.Ue * a.R * a.R
		fb := b.Rho * b.Mu * b.Ue * b.R * b.R
		if i == 1 && a.S == 0 {
			// Near the stagnation point the integrand grows like s^3
			// (u_e ~ beta*s, r ~ s); the exact first-interval integral is
			// f(s) s/4, which a trapezoid would overestimate by 2x.
			xi += fb * (b.S - a.S) / 4
		} else {
			xi += 0.5 * (fa + fb) * (b.S - a.S)
		}
		if xi <= 0 {
			out[i] = 1
			continue
		}
		q := b.Rho * b.Mu * b.Ue * b.R / math.Sqrt(2*xi)
		out[i] = numerics.Clamp(q/q0, 0, 2)
	}
	return out
}
