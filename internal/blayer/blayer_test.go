package blayer

import (
	"math"
	"testing"

	"cataero/internal/chem"
	"cataero/internal/geometry"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

func setup(t *testing.T) (*thermo.Mixture, *chem.EquilibriumSolver, *transport.Mixture, []float64) {
	t.Helper()
	m := thermo.NewMixture(thermo.AirSpecies11())
	return m, chem.NewEquilibriumSolver(m), transport.NewMixture(m), thermo.AirFreestreamMassFractions(m.Species)
}

// Shuttle-entry-like freestream: ~71 km, 6.7 km/s.
func shuttleFS() FreeStream {
	return FreeStream{P: 4.5, T: 216, Rho: 7.3e-5, V: 6740}
}

func TestFayRiddellMagnitude(t *testing.T) {
	m, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	in, err := StagnationFromFreestream(eq, y0, fs, 1200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := FayRiddell(m, tr, in)
	if err != nil {
		t.Fatal(err)
	}
	// Shuttle nose stagnation heating at this condition: O(10^5..10^6) W/m^2
	// (tens of W/cm^2).
	if q < 5e4 || q > 5e6 {
		t.Errorf("q=%g W/m^2 outside plausible band", q)
	}
	// Sutton-Graves cross-check within a factor ~2.5.
	qsg := SuttonGraves(fs.Rho, fs.V, 0.6)
	if q < qsg/2.5 || q > qsg*2.5 {
		t.Errorf("Fay-Riddell %g vs Sutton-Graves %g disagree beyond 2.5x", q, qsg)
	}
}

func TestFayRiddellScalings(t *testing.T) {
	m, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	in, err := StagnationFromFreestream(eq, y0, fs, 1200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := FayRiddell(m, tr, in)
	// Doubling the nose radius reduces q by sqrt(2).
	in.NoseRadius = 1.2
	q2, _ := FayRiddell(m, tr, in)
	if math.Abs(q2/q1-1/math.Sqrt2) > 0.02 {
		t.Errorf("Rn scaling: q2/q1=%g want %g", q2/q1, 1/math.Sqrt2)
	}
	// Hotter wall lowers the heat flux.
	in.NoseRadius = 0.6
	in.WallT = 2000
	q3, _ := FayRiddell(m, tr, in)
	if q3 >= q1 {
		t.Errorf("hot-wall q=%g should fall below %g", q3, q1)
	}
	if _, err := FayRiddell(m, tr, StagnationInputs{NoseRadius: 0}); err == nil {
		t.Error("zero nose radius accepted")
	}
}

func TestSimilarityMatchesFayRiddell(t *testing.T) {
	m, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	in, err := StagnationFromFreestream(eq, y0, fs, 1200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	qFR, err := FayRiddell(m, tr, in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveStagnation(m, tr, in.Edge, 1200, fs.P, 0.6, SimilarityOptions{GammaW: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The similarity solution and the correlation should agree within ~40%
	// (they differ in property models and Lewis-number treatment).
	if sol.QWall < qFR*0.6 || sol.QWall > qFR*1.4 {
		t.Errorf("similarity q=%g vs Fay-Riddell %g beyond 40%%", sol.QWall, qFR)
	}
	// Profiles monotone 0->1.
	for i := 1; i < len(sol.F); i++ {
		if sol.F[i] < sol.F[i-1]-1e-6 {
			t.Fatalf("velocity profile not monotone at %d", i)
		}
	}
	if sol.GPrime0 <= 0 {
		t.Error("wall enthalpy gradient must be positive")
	}
	if sol.Delta <= 0 {
		t.Error("boundary layer thickness must be positive")
	}
}

func TestCatalyticWallOrdering(t *testing.T) {
	// The catalysis story of the paper's Fig. 6: noncatalytic < finite < fully.
	m, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	in, err := StagnationFromFreestream(eq, y0, fs, 1200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	var qs []float64
	for _, gw := range []float64{0, 0.01, 1} {
		sol, err := SolveStagnation(m, tr, in.Edge, 1200, fs.P, 0.6, SimilarityOptions{GammaW: gw})
		if err != nil {
			t.Fatalf("gammaW=%g: %v", gw, err)
		}
		qs = append(qs, sol.QWall)
	}
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Errorf("catalysis ordering broken: %v", qs)
	}
	// The noncatalytic wall should see substantially less heating when the
	// edge is strongly dissociated.
	if qs[0] > 0.9*qs[2] {
		t.Errorf("noncatalytic reduction too weak: %g vs %g", qs[0], qs[2])
	}
}

func TestEdgeDistributionSphere(t *testing.T) {
	_, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	body := geometry.NewSphere(0.6)
	edges, err := EdgeDistribution(eq, tr, y0, fs, body, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Pressure falls monotonically away from the stagnation point.
	for i := 1; i < len(edges); i++ {
		if edges[i].P > edges[i-1].P+1e-9 {
			t.Errorf("edge pressure rising at station %d", i)
		}
	}
	// Edge velocity grows from zero.
	if edges[0].Ue > 50 {
		t.Errorf("stagnation edge velocity %g should be ~0", edges[0].Ue)
	}
	if edges[len(edges)-1].Ue < 500 {
		t.Errorf("downstream edge velocity %g too small", edges[len(edges)-1].Ue)
	}
	// Total enthalpy conserved along the edge: h + u^2/2 = const.
	h0 := edges[0].H
	for _, e := range edges[1:] {
		tot := e.H + 0.5*e.Ue*e.Ue
		if math.Abs(tot-h0) > 0.02*math.Abs(h0) {
			t.Errorf("edge total enthalpy drift at s=%g: %g vs %g", e.S, tot, h0)
		}
	}
}

func TestLeesDistributionShape(t *testing.T) {
	_, eq, tr, y0 := setup(t)
	fs := shuttleFS()
	body := geometry.NewSphere(0.6)
	edges, err := EdgeDistribution(eq, tr, y0, fs, body, 20)
	if err != nil {
		t.Fatal(err)
	}
	qr := LeesDistribution(edges, 0.6, fs.P)
	if qr[0] != 1 {
		t.Errorf("q(0)=%g want 1", qr[0])
	}
	// Heating on a sphere decreases away from the stagnation point; the
	// classic result is q(90deg)/q(0) ~ 0.1-0.6.
	last := qr[len(qr)-1]
	if last > 0.8 || last < 0.02 {
		t.Errorf("q(90deg)/q0=%g outside classic band", last)
	}
	for i := 2; i < len(qr); i++ {
		if qr[i] > qr[i-1]*1.15 {
			t.Errorf("heating rising strongly at station %d: %g > %g", i, qr[i], qr[i-1])
		}
	}
}

func TestVelocityGradientNewtonian(t *testing.T) {
	edge := shock.StagnationState{P: 1000, Rho: 0.01}
	beta := VelocityGradient(edge, 10, 0.5)
	want := math.Sqrt(2*990/0.01) / 0.5
	if math.Abs(beta-want) > 1e-9 {
		t.Errorf("beta=%g want %g", beta, want)
	}
}
