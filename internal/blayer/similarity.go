package blayer

import (
	"fmt"
	"math"

	"cataero/internal/numerics"
	"cataero/internal/shock"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// SimilarityOptions configures the stagnation-point similarity solve.
type SimilarityOptions struct {
	EtaMax  float64 // outer edge of the similarity coordinate (default 8)
	N       int     // grid points (default 121)
	Lewis   float64 // Lewis number (default 1.4)
	GammaW  float64 // wall catalytic recombination coefficient in [0,1]
	MaxIter int     // relaxation sweeps (default 400)
	Tol     float64 // convergence tolerance (default 1e-8)
}

// SimilaritySolution is the converged stagnation boundary layer.
type SimilaritySolution struct {
	Eta            []float64
	YPhys          []float64 // physical wall distance of each eta node, m
	F              []float64 // f' velocity ratio
	G              []float64 // sensible-enthalpy ratio
	Z              []float64 // atom mass-fraction ratio c/c_e
	GPrime0        float64
	ZPrime0        float64
	QWall          float64 // total wall heat flux, W/m^2
	QConduction    float64
	QRecombination float64
	Delta          float64 // physical boundary-layer thickness (99%), m
}

// SolveStagnation solves the Lees-Dorodnitsyn similarity equations at an
// axisymmetric stagnation point with an equilibrium edge and a chemically
// frozen boundary layer whose atoms diffuse to a wall of finite
// catalycity (Goulard's model):
//
//	(C f'')' + f f'' + (rho_e/rho - f'^2)/2 = 0
//	(C/Pr g')' + f g' = 0
//	(C Le/Pr z')' + f z' = 0
//
// with g the sensible-enthalpy ratio and z the atom fraction ratio.
func SolveStagnation(m *thermo.Mixture, tr *transport.Mixture, edge shock.StagnationState, wallT, pInf, rn float64, opts SimilarityOptions) (*SimilaritySolution, error) {
	if opts.EtaMax == 0 {
		opts.EtaMax = 8
	}
	if opts.N == 0 {
		opts.N = 121
	}
	if opts.Lewis == 0 {
		opts.Lewis = 1.4
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 400
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	n := opts.N
	deta := opts.EtaMax / float64(n-1)
	eta := make([]float64, n)
	for i := range eta {
		eta[i] = float64(i) * deta
	}

	// Split edge enthalpy into sensible + chemical parts.
	hf := m.HFormation(edge.Y)
	hse := edge.H - hf // sensible edge enthalpy (includes the kinetic-energy
	// recovery already folded into H at a stagnation point)
	hsw := m.Enthalpy(wallT, edge.Y) - hf
	if hse <= hsw {
		return nil, fmt.Errorf("blayer: edge enthalpy below wall enthalpy")
	}
	// Atom content of the edge gas (mass fraction of dissociated species).
	cAtomE := 0.0
	hDissE := 0.0
	for i, sp := range m.Species {
		if len(sp.Elems) >= 1 && !sp.IsMolecule() && sp.Name != "e-" {
			cAtomE += edge.Y[i]
			hDissE += edge.Y[i] * sp.Hf0
		}
	}

	// Property closure: T, rho, mu from sensible enthalpy at edge pressure
	// with frozen edge composition.
	propAt := func(g float64) (C, rhoRatio, pr float64, err error) {
		hs := hsw + g*(hse-hsw)
		T, err := m.TemperatureFromH(hs+hf, edge.Y, edge.T*math.Max(g, 0.05))
		if err != nil {
			return 0, 0, 0, err
		}
		rho := m.Density(edge.P, T, edge.Y)
		mu := tr.Viscosity(T, edge.Y)
		rhoMuE := edge.Rho * tr.Viscosity(edge.T, edge.Y)
		pr = tr.Prandtl(T, edge.Y)
		if pr <= 0.3 || pr > 2 {
			pr = 0.71
		}
		return rho * mu / rhoMuE, edge.Rho / rho, pr, nil
	}

	// Unknowns.
	F := make([]float64, n) // f'
	g := make([]float64, n)
	z := make([]float64, n)
	f := make([]float64, n)
	for i := range eta {
		x := eta[i] / 3
		if x > 1 {
			x = 1
		}
		F[i] = x * (2 - x) // smooth 0->1
		g[i] = x * (2 - x)
		z[i] = 1.0
	}
	g[0] = 0
	F[0] = 0

	// Wall catalycity: mixed BC z'(0) = B z(0).
	beta := VelocityGradient(edge, pInf, rn)
	rhoMuE := edge.Rho * tr.Viscosity(edge.T, edge.Y)
	rhow := m.Density(edge.P, wallT, edge.Y)
	var B float64
	if opts.GammaW > 0 && cAtomE > 1e-12 {
		// Catalytic speed: kw = gammaW sqrt(kB Tw / (2 pi m_atom)); use an
		// effective atom (N/O blend) mass of 15 g/mol.
		mAtom := 15e-3 / thermo.NA
		kw := opts.GammaW * math.Sqrt(thermo.KB*wallT/(2*math.Pi*mAtom))
		CwApprox := rhow * tr.Viscosity(wallT, edge.Y) / rhoMuE
		B = kw * rhow * 0.71 / (opts.Lewis * CwApprox * math.Sqrt(2*beta*rhoMuE))
	}

	C := make([]float64, n)
	rhoR := make([]float64, n)
	prA := make([]float64, n)
	aa := make([]float64, n)
	bb := make([]float64, n)
	cc := make([]float64, n)
	dd := make([]float64, n)
	work := numerics.NewTridiagWorkspace(n)

	// wallBC selects the wall condition of a transport equation: Dirichlet
	// phi(0)=Val, or mixed phi'(0) = B*phi(0) (B=0 is an insulated/Neumann
	// wall).
	type wallBC struct {
		dirichlet bool
		val       float64
		b         float64
	}
	solveTransport := func(phi []float64, coef []float64, bc wallBC) error {
		// (coef phi')' + f phi' = 0 on the uniform grid; phi(inf)=1.
		for i := 1; i < n-1; i++ {
			cp := 0.5 * (coef[i] + coef[i+1])
			cm := 0.5 * (coef[i] + coef[i-1])
			aa[i] = cm/(deta*deta) - f[i]/(2*deta)
			cc[i] = cp/(deta*deta) + f[i]/(2*deta)
			bb[i] = -(cp + cm) / (deta * deta)
			dd[i] = 0
		}
		if bc.dirichlet {
			bb[0] = 1
			cc[0] = 0
			aa[0] = 0
			dd[0] = bc.val
		} else {
			// (phi[1]-phi[0])/deta = B phi[0].
			bb[0] = -1/deta - bc.b
			cc[0] = 1 / deta
			aa[0] = 0
			dd[0] = 0
		}
		aa[n-1] = 0
		bb[n-1] = 1
		cc[n-1] = 0
		dd[n-1] = 1
		return work.Solve(aa, bb, cc, dd, phi)
	}
	speciesBC := wallBC{dirichlet: true, val: 0} // fully catalytic default
	if opts.GammaW < 1 {
		speciesBC = wallBC{b: B} // mixed; B=0 means noncatalytic
	}

	coefG := make([]float64, n)
	coefZ := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Update properties.
		for i := 0; i < n; i++ {
			var err error
			C[i], rhoR[i], prA[i], err = propAt(numerics.Clamp(g[i], 0, 1.2))
			if err != nil {
				return nil, err
			}
			coefG[i] = C[i] / prA[i]
			coefZ[i] = C[i] * opts.Lewis / prA[i]
		}
		// f from F.
		f[0] = 0
		for i := 1; i < n; i++ {
			f[i] = f[i-1] + 0.5*(F[i]+F[i-1])*deta
		}
		// Momentum: (C F')' + f F' + (rhoR - F^2)/2 = 0, linearized
		// F^2 ~ 2 F_old F - F_old^2.
		for i := 1; i < n-1; i++ {
			cp := 0.5 * (C[i] + C[i+1])
			cm := 0.5 * (C[i] + C[i-1])
			aa[i] = cm/(deta*deta) - f[i]/(2*deta)
			cc[i] = cp/(deta*deta) + f[i]/(2*deta)
			bb[i] = -(cp+cm)/(deta*deta) - F[i]
			dd[i] = -0.5*rhoR[i] - 0.5*F[i]*F[i]
		}
		aa[0], bb[0], cc[0], dd[0] = 0, 1, 0, 0
		aa[n-1], bb[n-1], cc[n-1], dd[n-1] = 0, 1, 0, 1
		Fnew := make([]float64, n)
		if err := work.Solve(aa, bb, cc, dd, Fnew); err != nil {
			return nil, fmt.Errorf("blayer: momentum solve: %w", err)
		}
		dF := 0.0
		for i := range F {
			d := math.Abs(Fnew[i] - F[i])
			if d > dF {
				dF = d
			}
			F[i] = 0.5*F[i] + 0.5*Fnew[i] // under-relax
		}
		// Energy.
		gOld := append([]float64(nil), g...)
		if err := solveTransport(g, coefG, wallBC{dirichlet: true, val: 0}); err != nil {
			return nil, fmt.Errorf("blayer: energy solve: %w", err)
		}
		dg := 0.0
		for i := range g {
			d := math.Abs(g[i] - gOld[i])
			if d > dg {
				dg = d
			}
			g[i] = 0.5*gOld[i] + 0.5*g[i]
		}
		// Species (atoms) with catalytic wall.
		if cAtomE > 1e-12 {
			if err := solveTransport(z, coefZ, speciesBC); err != nil {
				return nil, fmt.Errorf("blayer: species solve: %w", err)
			}
		}
		if dF < opts.Tol && dg < opts.Tol {
			break
		}
	}

	gp0 := (g[1] - g[0]) / deta
	zp0 := (z[1] - z[0]) / deta
	// Wall heat flux: conduction + recombination of diffused atoms.
	Cw := C[0]
	prW := prA[0]
	qCond := Cw / prW * gp0 * (hse - hsw) * math.Sqrt(2*beta*rhoMuE)
	hD := 0.0
	if cAtomE > 1e-12 {
		hD = hDissE // J/kg of mixture carried as dissociation enthalpy
	}
	qRec := Cw * opts.Lewis / prW * zp0 * hD * math.Sqrt(2*beta*rhoMuE)
	// Physical coordinate: dy = (rho_e/rho) deta / sqrt(2 beta rho_e/mu_e).
	scale := 1 / math.Sqrt(2*beta*edge.Rho/(tr.Viscosity(edge.T, edge.Y)))
	yPhys := make([]float64, n)
	delta := 0.0
	deltaSet := false
	for i := 1; i < n; i++ {
		yPhys[i] = yPhys[i-1] + 0.5*(rhoR[i]+rhoR[i-1])*deta*scale
		if !deltaSet && g[i] > 0.99 {
			delta = yPhys[i]
			deltaSet = true
		}
	}
	if !deltaSet {
		delta = yPhys[n-1]
	}
	return &SimilaritySolution{
		Eta: eta, YPhys: yPhys, F: F, G: g, Z: z,
		GPrime0: gp0, ZPrime0: zp0,
		QWall:          qCond + qRec,
		QConduction:    qCond,
		QRecombination: qRec,
		Delta:          delta,
	}, nil
}
