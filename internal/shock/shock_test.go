package shock

import (
	"math"
	"testing"

	"cataero/internal/chem"
	"cataero/internal/thermo"
)

func TestIdealJumpTextbook(t *testing.T) {
	// M=2, gamma=1.4: rho2/rho1=2.6667, p2/p1=4.5, M2=0.5774.
	rhoR, pR, tR, m2, err := IdealJump(1.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rhoR-2.66667) > 1e-4 {
		t.Errorf("rhoR=%g want 2.667", rhoR)
	}
	if math.Abs(pR-4.5) > 1e-9 {
		t.Errorf("pR=%g want 4.5", pR)
	}
	if math.Abs(tR-4.5/2.66667) > 1e-4 {
		t.Errorf("tR=%g", tR)
	}
	if math.Abs(m2-0.57735) > 1e-4 {
		t.Errorf("M2=%g want 0.577", m2)
	}
	// Strong-shock limit: density ratio -> (g+1)/(g-1) = 6.
	rhoR, _, _, _, _ = IdealJump(1.4, 50)
	if math.Abs(rhoR-6) > 0.02 {
		t.Errorf("strong-shock rhoR=%g want ~6", rhoR)
	}
	if _, _, _, _, err := IdealJump(1.4, 0.8); err == nil {
		t.Error("subsonic Mach accepted")
	}
}

func TestFrozenJumpConservation(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	y := thermo.AirFreestreamMassFractions(m.Species)
	p1, T1, u1 := 100.0, 250.0, 5000.0
	st, err := FrozenJump(m, y, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	rho1 := m.Density(p1, T1, y)
	h1 := m.Enthalpy(T1, y)
	// Verify Rankine-Hugoniot conservation.
	if math.Abs(rho1*u1-st.Rho*st.U) > 1e-8*rho1*u1 {
		t.Errorf("mass flux mismatch")
	}
	mom1 := p1 + rho1*u1*u1
	mom2 := st.P + st.Rho*st.U*st.U
	if math.Abs(mom1-mom2) > 1e-6*mom1 {
		t.Errorf("momentum mismatch %g vs %g", mom1, mom2)
	}
	h01 := h1 + 0.5*u1*u1
	h02 := st.H + 0.5*st.U*st.U
	if math.Abs(h01-h02) > 1e-6*math.Abs(h01) {
		t.Errorf("total enthalpy mismatch")
	}
	// Entropy must increase across a shock.
	if st.T <= T1 || st.P <= p1 {
		t.Errorf("downstream not compressed: T=%g p=%g", st.T, st.P)
	}
}

func TestFrozenJumpVsIdealAtLowSpeed(t *testing.T) {
	// At M~2 with cold air, vibration is frozen and the full jump matches
	// the gamma=1.4 ideal result closely.
	m := thermo.NewMixture(thermo.AirSpecies11())
	y := thermo.AirFreestreamMassFractions(m.Species)
	T1, p1 := 250.0, 1000.0
	a1 := m.SoundSpeedFrozen(T1, y)
	u1 := 2 * a1
	st, err := FrozenJump(m, y, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	_, pR, tR, _, _ := IdealJump(1.4, 2)
	if math.Abs(st.P/p1-pR) > 0.05*pR {
		t.Errorf("p ratio %g want ~%g", st.P/p1, pR)
	}
	if math.Abs(st.T/T1-tR) > 0.05*tR {
		t.Errorf("T ratio %g want ~%g", st.T/T1, tR)
	}
}

func TestEquilibriumJumpDensityRatioExceedsFrozen(t *testing.T) {
	// The signature real-gas effect: dissociation absorbs energy, cooling
	// the downstream gas and raising the density ratio far beyond 6.
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := chem.NewEquilibriumSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	p1, T1, u1 := 30.0, 220.0, 7000.0 // ~65 km, 7 km/s
	stF, err := FrozenJump(m, y0, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	stE, err := EquilibriumJump(eq, y0, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	rho1 := m.Density(p1, T1, y0)
	frozenRatio := stF.Rho / rho1
	eqRatio := stE.Rho / rho1
	if eqRatio < frozenRatio*1.2 {
		t.Errorf("equilibrium density ratio %g should exceed frozen %g by >20%%", eqRatio, frozenRatio)
	}
	if eqRatio < 9 || eqRatio > 20 {
		t.Errorf("equilibrium density ratio %g outside hypersonic band (9-20)", eqRatio)
	}
	// Equilibrium temperature well below frozen.
	if stE.T > 0.8*stF.T {
		t.Errorf("equilibrium T=%g not much cooler than frozen %g", stE.T, stF.T)
	}
	// Downstream composition dissociated.
	xN2 := stE.Y[thermo.AirN2]
	if xN2 > 0.6 {
		t.Errorf("N2 mass fraction %g should have dropped", xN2)
	}
}

func TestStagnationStates(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := chem.NewEquilibriumSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	p1, T1, u1 := 30.0, 220.0, 6700.0
	se, err := StagnationEquilibrium(eq, y0, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	// Total enthalpy dominated by kinetic energy.
	h0 := m.Enthalpy(T1, y0) + 0.5*u1*u1
	if math.Abs(se.H-h0) > 1e-6*h0 {
		t.Errorf("stagnation enthalpy %g want %g", se.H, h0)
	}
	// Stagnation pressure close to rho1 u1^2 (hypersonic Newtonian limit).
	rho1 := m.Density(p1, T1, y0)
	if se.P < 0.8*rho1*u1*u1 || se.P > 1.1*rho1*u1*u1 {
		t.Errorf("stagnation pressure %g vs rho1 u1^2 = %g", se.P, rho1*u1*u1)
	}
	// Frozen stagnation temperature far above equilibrium.
	sf, err := StagnationFrozen(m, y0, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	if sf.T < se.T*1.3 {
		t.Errorf("frozen stagnation T=%g should exceed equilibrium %g strongly", sf.T, se.T)
	}
}
