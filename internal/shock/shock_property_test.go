package shock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cataero/internal/chem"
	"cataero/internal/thermo"
)

// Property: across a frozen shock, for random supersonic Mach numbers, the
// entropy increases and the downstream Mach number is subsonic.
func TestFrozenShockSecondLaw(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	y := thermo.AirFreestreamMassFractions(m.Species)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		T1 := 200 + r.Float64()*100
		p1 := 10 + r.Float64()*1e4
		a1 := m.SoundSpeedFrozen(T1, y)
		mach := 1.2 + r.Float64()*15
		u1 := mach * a1
		st, err := FrozenJump(m, y, p1, T1, u1)
		if err != nil {
			return false
		}
		s1 := m.Entropy(T1, p1, y)
		s2 := m.Entropy(st.T, st.P, y)
		if s2 <= s1 {
			return false
		}
		a2 := m.SoundSpeedFrozen(st.T, y)
		return st.U < a2 // subsonic downstream
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Error(err)
	}
}

// Property: ideal-jump ratios are monotone in Mach number.
func TestIdealJumpMonotonicity(t *testing.T) {
	prevP, prevRho := 0.0, 0.0
	for mach := 1.1; mach < 30; mach += 0.7 {
		rhoR, pR, _, m2, err := IdealJump(1.4, mach)
		if err != nil {
			t.Fatal(err)
		}
		if pR <= prevP || rhoR <= prevRho {
			t.Fatalf("ratios not monotone at M=%g", mach)
		}
		if m2 >= 1 {
			t.Fatalf("downstream supersonic at M=%g", mach)
		}
		prevP, prevRho = pR, rhoR
	}
}

// The equilibrium jump conserves mass, momentum and energy exactly.
func TestEquilibriumJumpConservation(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := newEqSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	p1, T1, u1 := 50.0, 230.0, 6000.0
	st, err := EquilibriumJump(eq, y0, p1, T1, u1)
	if err != nil {
		t.Fatal(err)
	}
	rho1 := m.Density(p1, T1, y0)
	if math.Abs(rho1*u1-st.Rho*st.U) > 1e-6*rho1*u1 {
		t.Error("mass flux violated")
	}
	mom1 := p1 + rho1*u1*u1
	mom2 := st.P + st.Rho*st.U*st.U
	if math.Abs(mom1-mom2) > 1e-5*mom1 {
		t.Errorf("momentum violated: %g vs %g", mom1, mom2)
	}
	h1 := m.Enthalpy(T1, y0)
	if math.Abs((h1+0.5*u1*u1)-(st.H+0.5*st.U*st.U)) > 1e-5*(h1+0.5*u1*u1) {
		t.Error("energy violated")
	}
	// Downstream enthalpy is consistent with the downstream composition.
	hGot := m.Enthalpy(st.T, st.Y)
	if math.Abs(hGot-st.H) > 2e-3*math.Abs(st.H) {
		t.Errorf("composition/enthalpy inconsistent: %g vs %g", hGot, st.H)
	}
}

// Equilibrium density ratio grows with flight speed (more dissociation).
func TestEquilibriumRatioGrowsWithSpeed(t *testing.T) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	eq := newEqSolver(m)
	y0 := thermo.AirFreestreamMassFractions(m.Species)
	rho1 := m.Density(30, 220, y0)
	prev := 0.0
	for _, u := range []float64{3000, 5000, 7000, 9000} {
		st, err := EquilibriumJump(eq, y0, 30, 220, u)
		if err != nil {
			t.Fatalf("u=%g: %v", u, err)
		}
		r := st.Rho / rho1
		if r <= prev {
			t.Errorf("density ratio not growing at u=%g: %g after %g", u, r, prev)
		}
		prev = r
	}
}

// newEqSolver is a small helper so property tests read cleanly.
func newEqSolver(m *thermo.Mixture) *chem.EquilibriumSolver {
	return chem.NewEquilibriumSolver(m)
}
