// Package shock provides normal-shock jump relations for ideal, frozen
// (calorically imperfect, fixed composition) and equilibrium gases, plus the
// stagnation-state construction used by the heating modules. These are the
// entry points every solver uses to set post-shock and edge conditions.
package shock

import (
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/numerics"
	"cataero/internal/thermo"
)

// State is a 1-D flow state on either side of a shock.
type State struct {
	Rho, U, P, T, H float64
	Y               []float64 // mass fractions (nil for ideal gas)
}

// IdealJump returns the downstream/upstream ratios across a normal shock in
// a perfect gas: density, pressure, temperature ratios and M2.
func IdealJump(gamma, m1 float64) (rhoR, pR, tR, m2 float64, err error) {
	if m1 <= 1 {
		return 0, 0, 0, 0, fmt.Errorf("shock: upstream Mach %g must exceed 1", m1)
	}
	g := gamma
	m1s := m1 * m1
	rhoR = (g + 1) * m1s / ((g-1)*m1s + 2)
	pR = 1 + 2*g/(g+1)*(m1s-1)
	tR = pR / rhoR
	m2s := ((g-1)*m1s + 2) / (2*g*m1s - (g - 1))
	m2 = math.Sqrt(m2s)
	return rhoR, pR, tR, m2, nil
}

// FrozenJump solves the Rankine-Hugoniot relations for a gas with frozen
// composition y and the full caloric equation of state (vibration excited at
// the local temperature but no chemistry). Upstream state: p1, T1, u1.
func FrozenJump(m *thermo.Mixture, y []float64, p1, T1, u1 float64) (State, error) {
	rho1 := m.Density(p1, T1, y)
	h1 := m.Enthalpy(T1, y)
	up := State{Rho: rho1, U: u1, P: p1, T: T1, H: h1, Y: y}
	return rhJump(up, func(p, h float64) (float64, error) {
		T, err := m.TemperatureFromH(h, y, T1*5)
		if err != nil {
			return 0, err
		}
		return m.Density(p, T, y), nil
	}, func(p, h float64) (float64, error) {
		return m.TemperatureFromH(h, y, T1*5)
	})
}

// EquilibriumJump solves the Rankine-Hugoniot relations with the downstream
// gas in local thermochemical equilibrium (the classical "equilibrium normal
// shock"). y0 defines the elemental composition.
func EquilibriumJump(eq *chem.EquilibriumSolver, y0 []float64, p1, T1, u1 float64) (State, error) {
	m := eq.Mix
	rho1 := m.Density(p1, T1, y0)
	h1 := m.Enthalpy(T1, y0)
	up := State{Rho: rho1, U: u1, P: p1, T: T1, H: h1, Y: y0}
	var lastY []float64
	var lastT float64
	st, err := rhJump(up, func(p, h float64) (float64, error) {
		T, y, rho, err := eq.TemperaturePH(p, h, y0)
		if err != nil {
			return 0, err
		}
		lastY, lastT = y, T
		return rho, nil
	}, func(p, h float64) (float64, error) {
		T, _, _, err := eq.TemperaturePH(p, h, y0)
		return T, err
	})
	if err != nil {
		return st, err
	}
	st.Y = lastY
	st.T = lastT
	return st, nil
}

// rhJump solves mass/momentum/energy conservation across the shock given a
// density closure rho(p,h) and temperature closure T(p,h).
func rhJump(up State, rhoOf func(p, h float64) (float64, error), tOf func(p, h float64) (float64, error)) (State, error) {
	mflux := up.Rho * up.U
	if mflux <= 0 {
		return State{}, fmt.Errorf("shock: nonpositive mass flux")
	}
	h0 := up.H + 0.5*up.U*up.U
	f := func(u2 float64) float64 {
		p2 := up.P + mflux*(up.U-u2)
		h2 := h0 - 0.5*u2*u2
		rho2, err := rhoOf(p2, h2)
		if err != nil {
			return math.NaN()
		}
		return rho2*u2 - mflux
	}
	// Downstream velocity lies between a tiny fraction of u1 (strong,
	// real-gas shock) and u1 (no shock). Bracket from below.
	lo := up.U * 0.01
	hi := up.U * 0.95
	flo, fhi := f(lo), f(hi)
	// Expand the bracket downward if needed (very strong equilibrium shocks
	// can have u2/u1 < 0.01... keep going).
	for i := 0; i < 8 && (math.IsNaN(flo) || flo*fhi > 0); i++ {
		lo *= 0.3
		flo = f(lo)
	}
	if math.IsNaN(flo) || math.IsNaN(fhi) || flo*fhi > 0 {
		return State{}, fmt.Errorf("shock: failed to bracket the jump (f(%g)=%g f(%g)=%g)", lo, flo, hi, fhi)
	}
	u2, err := numerics.Brent(f, lo, hi, 1e-10*up.U)
	if err != nil {
		return State{}, fmt.Errorf("shock: %w", err)
	}
	p2 := up.P + mflux*(up.U-u2)
	h2 := h0 - 0.5*u2*u2
	rho2, err := rhoOf(p2, h2)
	if err != nil {
		return State{}, err
	}
	T2, err := tOf(p2, h2)
	if err != nil {
		return State{}, err
	}
	return State{Rho: rho2, U: u2, P: p2, T: T2, H: h2, Y: up.Y}, nil
}

// Stagnation returns the stagnation-point edge state behind a normal shock:
// total enthalpy conserved, pressure recovered by the near-incompressible
// compression from the low subsonic post-shock state
// (p_e = p2 + rho2 u2^2 / 2). For equilibrium gases the composition and
// temperature are re-equilibrated at (p_e, h0).
type StagnationState struct {
	P, H, T, Rho float64
	Y            []float64
}

// StagnationEquilibrium builds the equilibrium stagnation state from
// freestream conditions.
func StagnationEquilibrium(eq *chem.EquilibriumSolver, y0 []float64, p1, T1, u1 float64) (StagnationState, error) {
	post, err := EquilibriumJump(eq, y0, p1, T1, u1)
	if err != nil {
		return StagnationState{}, err
	}
	pe := post.P + 0.5*post.Rho*post.U*post.U
	h0 := post.H + 0.5*post.U*post.U
	T, y, rho, err := eq.TemperaturePH(pe, h0, y0)
	if err != nil {
		return StagnationState{}, err
	}
	return StagnationState{P: pe, H: h0, T: T, Rho: rho, Y: y}, nil
}

// StagnationFrozen builds the frozen-composition stagnation state.
func StagnationFrozen(m *thermo.Mixture, y []float64, p1, T1, u1 float64) (StagnationState, error) {
	post, err := FrozenJump(m, y, p1, T1, u1)
	if err != nil {
		return StagnationState{}, err
	}
	pe := post.P + 0.5*post.Rho*post.U*post.U
	h0 := post.H + 0.5*post.U*post.U
	T, err := m.TemperatureFromH(h0, y, post.T)
	if err != nil {
		return StagnationState{}, err
	}
	return StagnationState{P: pe, H: h0, T: T, Rho: m.Density(pe, T, y), Y: y}, nil
}
