// Package faultinject is the repository's crash-test harness: named
// injection points compiled into the durability-critical paths (ledger
// writes, checkpoint encoding) that tests arm to simulate the failures a
// production deployment actually sees — a full disk, a torn file from a
// power cut, a process killed between a checkpoint and its result.
//
// The hooks are dormant by default and cost one atomic load on the hot
// side, so shipping them in the real code paths (rather than test doubles)
// keeps the tested path and the production path the same bytes.
//
// Tests arm points with Set/SetMangle and must Reset in cleanup; the
// package-level state is process-global, so tests that arm it cannot run in
// parallel with each other.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	armed    atomic.Bool
	mu       sync.Mutex
	failures map[string]func() error
	manglers map[string]func([]byte) []byte
)

// Set arms an injection point: Fire(point) will invoke f and return its
// error. Passing f == nil disarms the single point.
func Set(point string, f func() error) {
	mu.Lock()
	defer mu.Unlock()
	if failures == nil {
		failures = map[string]func() error{}
	}
	if f == nil {
		delete(failures, point)
	} else {
		failures[point] = f
	}
	armed.Store(len(failures)+len(manglers) > 0)
}

// SetMangle arms a data-corruption point: Mangle(point, b) will pass the
// bytes through f — typically truncating or flipping them to simulate a
// torn write. Passing f == nil disarms the single point.
func SetMangle(point string, f func([]byte) []byte) {
	mu.Lock()
	defer mu.Unlock()
	if manglers == nil {
		manglers = map[string]func([]byte) []byte{}
	}
	if f == nil {
		delete(manglers, point)
	} else {
		manglers[point] = f
	}
	armed.Store(len(failures)+len(manglers) > 0)
}

// Reset disarms every point. Call from test cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	failures, manglers = nil, nil
	armed.Store(false)
}

// Fire triggers the named failure point: nil when unarmed (the production
// case), otherwise whatever the armed hook returns.
func Fire(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	f := failures[point]
	mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// Mangle passes data through the named corruption point, returning it
// unchanged when the point is unarmed (the production case).
func Mangle(point string, data []byte) []byte {
	if !armed.Load() {
		return data
	}
	mu.Lock()
	f := manglers[point]
	mu.Unlock()
	if f == nil {
		return data
	}
	return f(data)
}
