package numerics

import (
	"fmt"
	"math"
)

// ODEFunc evaluates dy/dx into dydx for state y at coordinate x.
type ODEFunc func(x float64, y, dydx []float64)

// RK4Step advances y by one classical Runge-Kutta step of size h.
// work must provide 5 scratch slices of len(y) (use NewRKWork).
func RK4Step(f ODEFunc, x float64, y []float64, h float64, work [][]float64) {
	n := len(y)
	k1, k2, k3, k4, yt := work[0], work[1], work[2], work[3], work[4]
	f(x, y, k1)
	for i := 0; i < n; i++ {
		yt[i] = y[i] + 0.5*h*k1[i]
	}
	f(x+0.5*h, yt, k2)
	for i := 0; i < n; i++ {
		yt[i] = y[i] + 0.5*h*k2[i]
	}
	f(x+0.5*h, yt, k3)
	for i := 0; i < n; i++ {
		yt[i] = y[i] + h*k3[i]
	}
	f(x+h, yt, k4)
	for i := 0; i < n; i++ {
		y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// NewRKWork allocates scratch storage for RK4Step/RKF45 with state size n.
func NewRKWork(n int) [][]float64 {
	w := make([][]float64, 8)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return w
}

// RKF45Options configures the adaptive integrator.
type RKF45Options struct {
	RelTol, AbsTol float64 // default 1e-8, 1e-10
	HInit, HMin    float64
	MaxSteps       int                               // default 100000
	Monitor        func(x float64, y []float64)      // called after each accepted step
	Stop           func(x float64, y []float64) bool // early-exit predicate
}

// RKF45 integrates dy/dx = f from x0 to x1 with adaptive Runge-Kutta-Fehlberg
// 4(5) steps. y is advanced in place. Returns the final x reached.
func RKF45(f ODEFunc, x0, x1 float64, y []float64, opts RKF45Options) (float64, error) {
	n := len(y)
	rel := opts.RelTol
	if rel == 0 {
		rel = 1e-8
	}
	abs := opts.AbsTol
	if abs == 0 {
		abs = 1e-10
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100000
	}
	dir := 1.0
	if x1 < x0 {
		dir = -1.0
	}
	h := opts.HInit
	if h == 0 {
		h = (x1 - x0) / 100
	}
	if h*dir <= 0 {
		h = dir * math.Abs(h)
	}
	hmin := opts.HMin
	if hmin == 0 {
		hmin = math.Abs(x1-x0) * 1e-14
	}

	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	k5 := make([]float64, n)
	k6 := make([]float64, n)
	yt := make([]float64, n)
	y5 := make([]float64, n)

	x := x0
	for step := 0; step < maxSteps; step++ {
		if dir*(x-x1) >= 0 {
			return x, nil
		}
		if dir*(x+h-x1) > 0 {
			h = x1 - x
		}
		f(x, y, k1)
		for i := 0; i < n; i++ {
			yt[i] = y[i] + h*(1.0/4.0)*k1[i]
		}
		f(x+h/4, yt, k2)
		for i := 0; i < n; i++ {
			yt[i] = y[i] + h*(3.0/32.0*k1[i]+9.0/32.0*k2[i])
		}
		f(x+3*h/8, yt, k3)
		for i := 0; i < n; i++ {
			yt[i] = y[i] + h*(1932.0/2197.0*k1[i]-7200.0/2197.0*k2[i]+7296.0/2197.0*k3[i])
		}
		f(x+12*h/13, yt, k4)
		for i := 0; i < n; i++ {
			yt[i] = y[i] + h*(439.0/216.0*k1[i]-8.0*k2[i]+3680.0/513.0*k3[i]-845.0/4104.0*k4[i])
		}
		f(x+h, yt, k5)
		for i := 0; i < n; i++ {
			yt[i] = y[i] + h*(-8.0/27.0*k1[i]+2.0*k2[i]-3544.0/2565.0*k3[i]+1859.0/4104.0*k4[i]-11.0/40.0*k5[i])
		}
		f(x+h/2, yt, k6)

		errNorm := 0.0
		for i := 0; i < n; i++ {
			y4 := y[i] + h*(25.0/216.0*k1[i]+1408.0/2565.0*k3[i]+2197.0/4104.0*k4[i]-1.0/5.0*k5[i])
			y5[i] = y[i] + h*(16.0/135.0*k1[i]+6656.0/12825.0*k3[i]+28561.0/56430.0*k4[i]-9.0/50.0*k5[i]+2.0/55.0*k6[i])
			sc := abs + rel*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := (y5[i] - y4) / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if errNorm <= 1 || math.Abs(h) <= hmin {
			x += h
			copy(y, y5)
			if opts.Monitor != nil {
				opts.Monitor(x, y)
			}
			if opts.Stop != nil && opts.Stop(x, y) {
				return x, nil
			}
		}
		// PI-style step adjustment with safety factor.
		fac := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -0.2)
		fac = math.Min(4, math.Max(0.1, fac))
		h *= fac
		if math.Abs(h) < hmin {
			h = dir * hmin
		}
	}
	return x, fmt.Errorf("numerics: RKF45 exceeded %d steps at x=%g", maxSteps, x)
}

// StiffStepper integrates stiff systems dy/dt = f(y) with a linearly implicit
// (semi-implicit backward Euler) method: (I - h J) dy = h f(y). The Jacobian
// is recomputed by finite differences each step. Intended for chemistry
// source-term relaxation where explicit integrators would need prohibitively
// small steps.
type StiffStepper struct {
	n     int
	f     func(y, dydt []float64)
	J     []float64
	A     []float64
	dy    []float64
	fy    []float64
	ypt   []float64
	fpt   []float64
	piv   []int
	FDRel float64
}

// NewStiffStepper creates a stepper for an n-dimensional autonomous system.
func NewStiffStepper(n int, f func(y, dydt []float64)) *StiffStepper {
	return &StiffStepper{
		n: n, f: f,
		J:     make([]float64, n*n),
		A:     make([]float64, n*n),
		dy:    make([]float64, n),
		fy:    make([]float64, n),
		ypt:   make([]float64, n),
		fpt:   make([]float64, n),
		piv:   make([]int, n),
		FDRel: 1e-7,
	}
}

// Step advances y by one semi-implicit step of size h.
func (s *StiffStepper) Step(y []float64, h float64) error {
	n := s.n
	s.f(y, s.fy)
	// Finite-difference Jacobian J = df/dy.
	for j := 0; j < n; j++ {
		copy(s.ypt, y)
		d := s.FDRel * (math.Abs(y[j]) + 1e-30)
		s.ypt[j] += d
		s.f(s.ypt, s.fpt)
		inv := 1.0 / d
		for i := 0; i < n; i++ {
			s.J[i*n+j] = (s.fpt[i] - s.fy[i]) * inv
		}
	}
	// A = I - h J, rhs = h f(y).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -h * s.J[i*n+j]
			if i == j {
				v += 1
			}
			s.A[i*n+j] = v
		}
		s.dy[i] = h * s.fy[i]
	}
	if err := SolveDenseInPlace(s.A, s.dy, s.piv, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		y[i] += s.dy[i]
	}
	return nil
}

// Integrate advances y from t=0 to t=tEnd with adaptive step doubling:
// a step is accepted when two half steps agree with one full step.
func (s *StiffStepper) Integrate(y []float64, tEnd float64, relTol float64) error {
	if relTol == 0 {
		relTol = 1e-5
	}
	t := 0.0
	h := tEnd / 50
	yFull := make([]float64, s.n)
	yHalf := make([]float64, s.n)
	for iter := 0; iter < 200000 && t < tEnd; iter++ {
		if t+h > tEnd {
			h = tEnd - t
		}
		copy(yFull, y)
		if err := s.Step(yFull, h); err != nil {
			return err
		}
		copy(yHalf, y)
		if err := s.Step(yHalf, h/2); err != nil {
			return err
		}
		if err := s.Step(yHalf, h/2); err != nil {
			return err
		}
		errNorm := 0.0
		for i := 0; i < s.n; i++ {
			sc := math.Abs(yHalf[i]) + 1e-12
			e := math.Abs(yHalf[i]-yFull[i]) / sc
			if e > errNorm {
				errNorm = e
			}
		}
		if errNorm < relTol {
			copy(y, yHalf)
			t += h
			if errNorm < relTol/8 {
				h *= 2
			}
		} else {
			h /= 2
			if h < tEnd*1e-12 {
				return fmt.Errorf("numerics: stiff step underflow at t=%g", t)
			}
		}
	}
	if t < tEnd {
		return fmt.Errorf("numerics: stiff integration incomplete (t=%g of %g)", t, tEnd)
	}
	return nil
}
