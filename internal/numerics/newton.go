package numerics

import (
	"fmt"
	"math"
)

// NewtonOptions configures the damped Newton solver.
type NewtonOptions struct {
	MaxIter  int     // maximum iterations (default 50)
	Tol      float64 // residual infinity-norm tolerance (default 1e-10)
	Damping  float64 // initial step fraction (default 1.0)
	MinLam   float64 // smallest allowed line-search step (default 1e-4)
	FDStep   float64 // finite-difference Jacobian relative step (default 1e-7)
	MaxStep  float64 // max infinity-norm of the Newton update, 0 = unlimited
	Verbose  bool
	Residual func(x, f []float64) error // required: f(x)
	Jacobian func(x, J []float64) error // optional: row-major n×n Jacobian
}

// NewtonSolve solves f(x)=0 for the system described by opts, starting from
// x0 (which is modified in place and returned). If no analytic Jacobian is
// provided a forward finite-difference Jacobian is used. A simple backtracking
// line search on |f| provides globalization.
func NewtonSolve(x []float64, opts NewtonOptions) error {
	n := len(x)
	if opts.Residual == nil {
		return fmt.Errorf("numerics: NewtonSolve requires a Residual function")
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-10
	}
	lam0 := opts.Damping
	if lam0 == 0 {
		lam0 = 1.0
	}
	minLam := opts.MinLam
	if minLam == 0 {
		minLam = 1e-4
	}
	fdStep := opts.FDStep
	if fdStep == 0 {
		fdStep = 1e-7
	}

	f := make([]float64, n)
	ft := make([]float64, n)
	J := make([]float64, n*n)
	dx := make([]float64, n)
	xt := make([]float64, n)
	piv := make([]int, n)

	if err := opts.Residual(x, f); err != nil {
		return fmt.Errorf("numerics: residual at initial guess: %w", err)
	}
	for iter := 0; iter < maxIter; iter++ {
		r0 := NormInf(f)
		if r0 < tol {
			return nil
		}
		if opts.Jacobian != nil {
			if err := opts.Jacobian(x, J); err != nil {
				return err
			}
		} else {
			if err := fdJacobian(opts.Residual, x, f, J, fdStep); err != nil {
				return err
			}
		}
		copy(dx, f)
		if err := SolveDenseInPlace(J, dx, piv, n); err != nil {
			return fmt.Errorf("numerics: Newton Jacobian solve (iter %d): %w", iter, err)
		}
		if opts.MaxStep > 0 {
			if s := NormInf(dx); s > opts.MaxStep {
				scale := opts.MaxStep / s
				for i := range dx {
					dx[i] *= scale
				}
			}
		}
		// Backtracking line search: accept the first step that reduces |f|.
		lam := lam0
		accepted := false
		for lam >= minLam {
			for i := range x {
				xt[i] = x[i] - lam*dx[i]
			}
			if err := opts.Residual(xt, ft); err == nil {
				if NormInf(ft) < r0 || lam == minLam {
					copy(x, xt)
					copy(f, ft)
					accepted = true
					break
				}
			}
			lam *= 0.5
		}
		if !accepted {
			// Take the minimal step anyway to avoid stalling.
			for i := range x {
				xt[i] = x[i] - minLam*dx[i]
			}
			if err := opts.Residual(xt, ft); err != nil {
				return fmt.Errorf("numerics: Newton stalled at iter %d: %w", iter, err)
			}
			copy(x, xt)
			copy(f, ft)
		}
		if opts.Verbose {
			fmt.Printf("newton iter %d: |f|=%.3e lam=%.3g\n", iter, NormInf(f), lam)
		}
	}
	if NormInf(f) < tol*100 {
		return nil // close enough: accept loosely converged solutions
	}
	return fmt.Errorf("numerics: Newton failed to converge (|f|=%.3e after %d iters)", NormInf(f), maxIter)
}

// fdJacobian fills J with a forward finite-difference approximation of df/dx.
func fdJacobian(resid func(x, f []float64) error, x, f0, J []float64, rel float64) error {
	n := len(x)
	f := make([]float64, n)
	for j := 0; j < n; j++ {
		h := rel * (math.Abs(x[j]) + 1)
		old := x[j]
		x[j] = old + h
		if err := resid(x, f); err != nil {
			x[j] = old
			return err
		}
		x[j] = old
		inv := 1.0 / h
		for i := 0; i < n; i++ {
			J[i*n+j] = (f[i] - f0[i]) * inv
		}
	}
	return nil
}

// Brent finds a root of f in [a,b] by Brent's method. f(a) and f(b) must
// bracket a root. tol is the absolute x tolerance.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("numerics: Brent root not bracketed: f(%g)=%g f(%g)=%g", a, fa, b, fb)
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			e = b - a
			d = e
		}
	}
	return b, fmt.Errorf("numerics: Brent exceeded iteration limit")
}

// Bisect finds a root of f in [a,b] by bisection; slower but unconditionally
// robust. Used as a fallback by EOS inversions.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("numerics: bisection root not bracketed")
	}
	for i := 0; i < 200 && b-a > tol; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	return 0.5 * (a + b), nil
}
