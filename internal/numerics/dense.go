package numerics

import "math"

// luFactor performs in-place LU factorization with partial pivoting of the
// m×m row-major matrix a, recording row swaps in piv.
func luFactor(a []float64, piv []int, m int) error {
	for k := 0; k < m; k++ {
		// Pivot search.
		p := k
		max := math.Abs(a[k*m+k])
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a[i*m+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return ErrSingular
		}
		piv[k] = p
		if p != k {
			for j := 0; j < m; j++ {
				a[k*m+j], a[p*m+j] = a[p*m+j], a[k*m+j]
			}
		}
		inv := 1.0 / a[k*m+k]
		for i := k + 1; i < m; i++ {
			l := a[i*m+k] * inv
			a[i*m+k] = l
			for j := k + 1; j < m; j++ {
				a[i*m+j] -= l * a[k*m+j]
			}
		}
	}
	return nil
}

// luSolveVec solves LU x = b in place (b is overwritten with x) using the
// factorization and pivots from luFactor. tmp is scratch of length m.
func luSolveVec(lu []float64, piv []int, b, tmp []float64, m int) {
	_ = tmp
	for k := 0; k < m; k++ {
		if p := piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		for i := k + 1; i < m; i++ {
			b[i] -= lu[i*m+k] * b[k]
		}
	}
	for i := m - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < m; j++ {
			s -= lu[i*m+j] * b[j]
		}
		b[i] = s / lu[i*m+i]
	}
}

// luSolveMat solves LU X = B for an m×m right-hand side B in place.
// tmpM is scratch of length m*m.
func luSolveMat(lu []float64, piv []int, B, tmpM []float64, m int) {
	col := tmpM[:m]
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			col[i] = B[i*m+j]
		}
		luSolveVec(lu, piv, col, nil, m)
		for i := 0; i < m; i++ {
			B[i*m+j] = col[i]
		}
	}
}

// SolveDense solves the dense n×n system A x = b by LU factorization with
// partial pivoting. A and b are not modified; the solution is returned.
func SolveDense(A []float64, b []float64, n int) ([]float64, error) {
	lu := make([]float64, n*n)
	copy(lu, A)
	piv := make([]int, n)
	if err := luFactor(lu, piv, n); err != nil {
		return nil, err
	}
	x := make([]float64, n)
	copy(x, b)
	luSolveVec(lu, piv, x, nil, n)
	return x, nil
}

// SolveDenseInPlace solves A x = b destroying A and overwriting b with the
// solution. piv must have length n. It avoids all allocation.
func SolveDenseInPlace(A, b []float64, piv []int, n int) error {
	if err := luFactor(A, piv, n); err != nil {
		return err
	}
	luSolveVec(A, piv, b, nil, n)
	return nil
}

// MatVec computes y = A x for a dense m×n row-major matrix.
func MatVec(A []float64, x, y []float64, m, n int) {
	for i := 0; i < m; i++ {
		s := 0.0
		row := A[i*n : (i+1)*n]
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
