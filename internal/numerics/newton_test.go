package numerics

import (
	"math"
	"testing"
)

func TestNewtonScalarQuadratic(t *testing.T) {
	// f(x) = x^2 - 4 = 0, start at 3 -> x=2.
	x := []float64{3}
	err := NewtonSolve(x, NewtonOptions{
		Residual: func(x, f []float64) error {
			f[0] = x[0]*x[0] - 4
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 {
		t.Errorf("x=%g want 2", x[0])
	}
}

func TestNewtonSystemWithJacobian(t *testing.T) {
	// x^2 + y^2 = 25, x - y = 1 -> x=4, y=3 (positive branch).
	x := []float64{5, 2}
	err := NewtonSolve(x, NewtonOptions{
		Residual: func(x, f []float64) error {
			f[0] = x[0]*x[0] + x[1]*x[1] - 25
			f[1] = x[0] - x[1] - 1
			return nil
		},
		Jacobian: func(x, J []float64) error {
			J[0] = 2 * x[0]
			J[1] = 2 * x[1]
			J[2] = 1
			J[3] = -1
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-8 || math.Abs(x[1]-3) > 1e-8 {
		t.Errorf("got (%g,%g) want (4,3)", x[0], x[1])
	}
}

func TestNewtonRequiresResidual(t *testing.T) {
	if err := NewtonSolve([]float64{1}, NewtonOptions{}); err == nil {
		t.Fatal("expected error for missing residual")
	}
}

func TestNewtonExponentialStiff(t *testing.T) {
	// exp(x) = 1e6 -> x = ln(1e6); tests damping/line search.
	x := []float64{0}
	err := NewtonSolve(x, NewtonOptions{
		MaxIter: 200,
		Residual: func(x, f []float64) error {
			f[0] = math.Exp(x[0]) - 1e6
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-math.Log(1e6)) > 1e-6 {
		t.Errorf("x=%g want %g", x[0], math.Log(1e6))
	}
}

func TestBrentRoots(t *testing.T) {
	cases := []struct {
		f    func(float64) float64
		a, b float64
		root float64
	}{
		{func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{func(x float64) float64 { return math.Cos(x) }, 0, 3, math.Pi / 2},
		{func(x float64) float64 { return x }, -1, 1, 0},
		{func(x float64) float64 { return math.Exp(x) - 5 }, 0, 4, math.Log(5)},
	}
	for i, c := range cases {
		x, err := Brent(c.f, c.a, c.b, 1e-12)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if math.Abs(x-c.root) > 1e-9 {
			t.Errorf("case %d: got %g want %g", i, x, c.root)
		}
	}
}

func TestBrentNotBracketed(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10); err == nil {
		t.Fatal("expected bracket error")
	}
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if x, err := Brent(f, 1, 2, 1e-12); err != nil || x != 1 {
		t.Errorf("endpoint a root: x=%g err=%v", x, err)
	}
	if x, err := Brent(f, 0, 1, 1e-12); err != nil || x != 1 {
		t.Errorf("endpoint b root: x=%g err=%v", x, err)
	}
}

func TestBisect(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-8 {
		t.Errorf("x=%g want 2", x)
	}
	if _, err := Bisect(func(x float64) float64 { return 1.0 }, 0, 1, 1e-10); err == nil {
		t.Fatal("expected bracket error")
	}
}
