package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return x*x*x - 2*x + 1 }
	got := Simpson(f, 0, 2, 2)
	want := 4.0 - 4.0 + 2.0 // x^4/4 - x^2 + x over [0,2]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %g want %g", got, want)
	}
}

func TestSimpsonOddIntervalsFixed(t *testing.T) {
	got := Simpson(math.Sin, 0, math.Pi, 101) // odd n is bumped to even
	if math.Abs(got-2) > 1e-6 {
		t.Errorf("got %g want 2", got)
	}
}

func TestTrapzSlice(t *testing.T) {
	x := Linspace(0, 1, 1001)
	y := make([]float64, len(x))
	for i, xv := range x {
		y[i] = xv * xv
	}
	got := TrapzSlice(x, y)
	if math.Abs(got-1.0/3.0) > 1e-6 {
		t.Errorf("got %g want 1/3", got)
	}
}

func TestGauss10Exact(t *testing.T) {
	// 10-point Gauss is exact for polynomials up to degree 19.
	f := func(x float64) float64 { return math.Pow(x, 9) + x*x }
	got := Gauss10(f, -1, 3)
	// integral x^9 = (3^10 - 1)/10; integral x^2 = (27+1)/3.
	want := (math.Pow(3, 10)-1)/10 + 28.0/3.0
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("got %g want %g", got, want)
	}
}

func TestE1KnownValues(t *testing.T) {
	// Reference values from Abramowitz & Stegun tables.
	cases := []struct{ x, want, tol float64 }{
		{0.5, 0.559774, 1e-4},
		{1.0, 0.219384, 1e-4},
		{2.0, 0.048901, 1e-4},
		{5.0, 0.001148, 5e-5},
	}
	for _, c := range cases {
		if got := E1(c.x); math.Abs(got-c.want) > c.tol {
			t.Errorf("E1(%g)=%g want %g", c.x, got, c.want)
		}
	}
	if !math.IsInf(E1(0), 1) {
		t.Error("E1(0) should be +Inf")
	}
}

func TestE2E3Limits(t *testing.T) {
	if E2(0) != 1 {
		t.Errorf("E2(0)=%g want 1", E2(0))
	}
	if E3(0) != 0.5 {
		t.Errorf("E3(0)=%g want 0.5", E3(0))
	}
	// Recurrence identity: E_{n+1}(x) = (exp(-x) - x E_n(x)) / n holds by
	// construction; check monotone decay instead.
	prev := math.Inf(1)
	for _, x := range []float64{0.1, 0.5, 1, 2, 4} {
		v := E2(x)
		if v >= prev || v <= 0 {
			t.Errorf("E2 not strictly decreasing positive at %g: %g", x, v)
		}
		prev = v
	}
}

// Property: E2, E3 stay within (0,1] and ordering E3 < E2 < E1 for x>0.
func TestExpIntOrdering(t *testing.T) {
	f := func(u float64) bool {
		x := math.Mod(math.Abs(u), 20) + 1e-3 // map to (0, 20]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		e1, e2, e3 := E1(x), E2(x), E3(x)
		return e3 > 0 && e3 < e2 && e2 < e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestLinspaceLogspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	if len(xs) != 5 || xs[0] != 0 || xs[4] != 1 || math.Abs(xs[2]-0.5) > 1e-15 {
		t.Errorf("linspace wrong: %v", xs)
	}
	if got := Linspace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("single-point linspace wrong: %v", got)
	}
	ls := Logspace(1, 100, 3)
	if math.Abs(ls[1]-10) > 1e-12 {
		t.Errorf("logspace midpoint %g want 10", ls[1])
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}
