package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearInterpBasics(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	if got := LinearInterp(xs, ys, 0.5); got != 5 {
		t.Errorf("got %g want 5", got)
	}
	if got := LinearInterp(xs, ys, 1.5); got != 25 {
		t.Errorf("got %g want 25", got)
	}
	// Linear extrapolation beyond ends.
	if got := LinearInterp(xs, ys, 3); got != 70 {
		t.Errorf("extrapolated got %g want 70", got)
	}
	if got := LinearInterp(xs, ys, -1); got != -10 {
		t.Errorf("extrapolated got %g want -10", got)
	}
	if got := LinearInterp([]float64{2}, []float64{7}, 100); got != 7 {
		t.Errorf("single point got %g want 7", got)
	}
}

func TestSplineReproducesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 2, 5, 4}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("knot %d: got %g want %g", i, got, ys[i])
		}
	}
}

// Property: a natural cubic spline through samples of a straight line
// reproduces the line everywhere (splines are exact for linear data).
func TestSplineExactForLines(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		xs := Linspace(0, 5, 8)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		s, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		for _, x := range []float64{0.3, 1.7, 2.9, 4.2} {
			if math.Abs(s.Eval(x)-(a*x+b)) > 1e-9*(1+math.Abs(a*x+b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestSplineAccuracySmooth(t *testing.T) {
	xs := Linspace(0, math.Pi, 30)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 1.0, 2.0, 3.0} {
		if math.Abs(s.Eval(x)-math.Sin(x)) > 1e-4 {
			t.Errorf("sin spline at %g: err %g", x, s.Eval(x)-math.Sin(x))
		}
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single knot")
	}
	if _, err := NewSpline([]float64{0, 0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for non-increasing knots")
	}
	if _, err := NewSpline([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestSplineClampsOutside(t *testing.T) {
	s, err := NewSpline([]float64{0, 1, 2}, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(-5); got != 0 {
		t.Errorf("left clamp got %g want 0", got)
	}
	if got := s.Eval(99); got != 4 {
		t.Errorf("right clamp got %g want 4", got)
	}
}

func TestStretch1D(t *testing.T) {
	pts := Stretch1D(21, 1.05)
	if pts[0] != 0 || pts[len(pts)-1] != 1 {
		t.Fatalf("endpoints wrong: %g %g", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("not monotone at %d: %g <= %g", i, pts[i], pts[i-1])
		}
	}
	// Clustering near 0: first spacing much smaller than last.
	first := pts[1] - pts[0]
	last := pts[len(pts)-1] - pts[len(pts)-2]
	if first >= last {
		t.Errorf("no wall clustering: first=%g last=%g", first, last)
	}
}
