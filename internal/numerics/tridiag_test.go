package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTridiagKnown(t *testing.T) {
	// System: 2x1 + x2 = 4; x1 + 2x2 + x3 = 8; x2 + 2x3 = 8 -> x = (1,2,3).
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{4, 8, 8}
	x := make([]float64, 3)
	if err := SolveTridiag(a, b, c, d, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d]=%g want %g", i, x[i], want[i])
		}
	}
}

func TestSolveTridiagSizeOne(t *testing.T) {
	x := make([]float64, 1)
	if err := SolveTridiag([]float64{0}, []float64{4}, []float64{0}, []float64{8}, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-14 {
		t.Errorf("x[0]=%g want 2", x[0])
	}
}

func TestSolveTridiagSingular(t *testing.T) {
	x := make([]float64, 2)
	err := SolveTridiag([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}, x)
	if err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveTridiagLengthMismatch(t *testing.T) {
	x := make([]float64, 2)
	if err := SolveTridiag([]float64{0}, []float64{1, 1}, []float64{0, 0}, []float64{1, 1}, x); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

// Property: tridiagonal solve agrees with dense LU on random diagonally
// dominant systems.
func TestTridiagMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		A := make([]float64, n*n)
		for i := 0; i < n; i++ {
			if i > 0 {
				a[i] = r.Float64()*2 - 1
				A[i*n+i-1] = a[i]
			}
			if i < n-1 {
				c[i] = r.Float64()*2 - 1
				A[i*n+i+1] = c[i]
			}
			b[i] = 3 + r.Float64() // diagonally dominant
			A[i*n+i] = b[i]
			d[i] = r.Float64()*10 - 5
		}
		x := make([]float64, n)
		if err := SolveTridiag(a, b, c, d, x); err != nil {
			return false
		}
		ref, err := SolveDense(A, d, n)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTridiagWorkspaceReuse(t *testing.T) {
	w := NewTridiagWorkspace(3)
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{4, 8, 8}
	x := make([]float64, 3)
	for k := 0; k < 3; k++ {
		if err := w.Solve(a, b, c, d, x); err != nil {
			t.Fatal(err)
		}
		if math.Abs(x[1]-2) > 1e-12 {
			t.Fatalf("iteration %d: x[1]=%g want 2", k, x[1])
		}
	}
	// Workspace grows on demand.
	a5 := []float64{0, 1, 1, 1, 1}
	b5 := []float64{4, 4, 4, 4, 4}
	c5 := []float64{1, 1, 1, 1, 0}
	d5 := []float64{1, 1, 1, 1, 1}
	x5 := make([]float64, 5)
	if err := w.Solve(a5, b5, c5, d5, x5); err != nil {
		t.Fatal(err)
	}
}

func TestBlockTridiagMatchesDense(t *testing.T) {
	// 3 block rows of 2x2 blocks, diagonally dominant.
	r := rand.New(rand.NewSource(3))
	n, m := 4, 2
	A := make([][]float64, n)
	B := make([][]float64, n)
	C := make([][]float64, n)
	D := make([][]float64, n)
	full := make([]float64, (n*m)*(n*m))
	rhs := make([]float64, n*m)
	for i := 0; i < n; i++ {
		A[i] = make([]float64, m*m)
		B[i] = make([]float64, m*m)
		C[i] = make([]float64, m*m)
		D[i] = make([]float64, m)
		for j := 0; j < m*m; j++ {
			if i > 0 {
				A[i][j] = r.Float64() - 0.5
			}
			if i < n-1 {
				C[i][j] = r.Float64() - 0.5
			}
			B[i][j] = r.Float64() - 0.5
		}
		for j := 0; j < m; j++ {
			B[i][j*m+j] += 5 // dominance
			D[i][j] = r.Float64() * 4
			rhs[i*m+j] = D[i][j]
		}
		// Assemble dense copy.
		N := n * m
		for bi := 0; bi < m; bi++ {
			for bj := 0; bj < m; bj++ {
				full[(i*m+bi)*N+i*m+bj] = B[i][bi*m+bj]
				if i > 0 {
					full[(i*m+bi)*N+(i-1)*m+bj] = A[i][bi*m+bj]
				}
				if i < n-1 {
					full[(i*m+bi)*N+(i+1)*m+bj] = C[i][bi*m+bj]
				}
			}
		}
	}
	ref, err := SolveDense(full, rhs, n*m)
	if err != nil {
		t.Fatal(err)
	}
	if err := BlockTridiag(A, B, C, D, m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			got, want := D[i][j], ref[i*m+j]
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("block (%d,%d): got %g want %g", i, j, got, want)
			}
		}
	}
}

// Property: the flat workspace solver agrees with dense LU on random
// diagonally dominant block systems, across repeated reuses of one
// workspace (batched line solves) and varying line lengths.
func TestBlockTridiagFlatMatchesDense(t *testing.T) {
	m := 4
	w := NewBlockTridiagWorkspace(m)
	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		n := 2 + r.Intn(12)
		mm := m * m
		A := make([]float64, n*mm)
		B := make([]float64, n*mm)
		C := make([]float64, n*mm)
		D := make([]float64, n*m)
		N := n * m
		full := make([]float64, N*N)
		rhs := make([]float64, N)
		for i := 0; i < n; i++ {
			for j := 0; j < mm; j++ {
				if i > 0 {
					A[i*mm+j] = r.Float64() - 0.5
				}
				if i < n-1 {
					C[i*mm+j] = r.Float64() - 0.5
				}
				B[i*mm+j] = r.Float64() - 0.5
			}
			for j := 0; j < m; j++ {
				B[i*mm+j*m+j] += 6 // dominance
				D[i*m+j] = r.Float64()*4 - 2
				rhs[i*m+j] = D[i*m+j]
			}
			for bi := 0; bi < m; bi++ {
				for bj := 0; bj < m; bj++ {
					full[(i*m+bi)*N+i*m+bj] = B[i*mm+bi*m+bj]
					if i > 0 {
						full[(i*m+bi)*N+(i-1)*m+bj] = A[i*mm+bi*m+bj]
					}
					if i < n-1 {
						full[(i*m+bi)*N+(i+1)*m+bj] = C[i*mm+bi*m+bj]
					}
				}
			}
		}
		ref, err := SolveDense(full, rhs, N)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SolveFlat(A, B, C, D, n); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < N; k++ {
			if math.Abs(D[k]-ref[k]) > 1e-9*(1+math.Abs(ref[k])) {
				t.Fatalf("trial %d entry %d: got %g want %g", trial, k, D[k], ref[k])
			}
		}
	}
}

func TestBlockTridiagFlatLengthMismatch(t *testing.T) {
	w := NewBlockTridiagWorkspace(2)
	if err := w.SolveFlat(make([]float64, 4), make([]float64, 8), make([]float64, 8), make([]float64, 4), 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestSolveDenseIdentityAndRandom(t *testing.T) {
	A := []float64{1, 0, 0, 1}
	x, err := SolveDense(A, []float64{3, -4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Errorf("identity solve wrong: %v", x)
	}
	// Random verification: A x = b -> residual small.
	r := rand.New(rand.NewSource(11))
	n := 8
	Ar := make([]float64, n*n)
	b := make([]float64, n)
	for i := range Ar {
		Ar[i] = r.Float64()*2 - 1
	}
	for i := 0; i < n; i++ {
		Ar[i*n+i] += 4
		b[i] = r.Float64()
	}
	x, err = SolveDense(Ar, b, n)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	MatVec(Ar, x, y, n, n)
	for i := range y {
		if math.Abs(y[i]-b[i]) > 1e-10 {
			t.Errorf("residual %d: %g", i, y[i]-b[i])
		}
	}
}

func TestSolveDenseSingular(t *testing.T) {
	A := []float64{1, 2, 2, 4} // rank 1
	if _, err := SolveDense(A, []float64{1, 1}, 2); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if Norm2(v) != 5 {
		t.Errorf("Norm2 = %g", Norm2(v))
	}
	if NormInf(v) != 4 {
		t.Errorf("NormInf = %g", NormInf(v))
	}
	if Norm2(nil) != 0 || NormInf(nil) != 0 {
		t.Error("empty norms should be zero")
	}
}
