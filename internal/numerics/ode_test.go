package numerics

import (
	"math"
	"testing"
)

func TestRK4ExponentialDecay(t *testing.T) {
	// dy/dx = -y, y(0)=1, y(1)=exp(-1).
	y := []float64{1}
	work := NewRKWork(1)
	f := func(x float64, y, dy []float64) { dy[0] = -y[0] }
	n := 100
	h := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		RK4Step(f, float64(i)*h, y, h, work)
	}
	if math.Abs(y[0]-math.Exp(-1)) > 1e-8 {
		t.Errorf("y(1)=%g want %g", y[0], math.Exp(-1))
	}
}

func TestRK4Order(t *testing.T) {
	// Halving h should reduce error by ~16x (4th order).
	errAt := func(n int) float64 {
		y := []float64{1}
		work := NewRKWork(1)
		f := func(x float64, y, dy []float64) { dy[0] = y[0] * math.Cos(x) }
		h := 2.0 / float64(n)
		for i := 0; i < n; i++ {
			RK4Step(f, float64(i)*h, y, h, work)
		}
		return math.Abs(y[0] - math.Exp(math.Sin(2)))
	}
	e1, e2 := errAt(40), errAt(80)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("convergence ratio %g not ~16 (e1=%g e2=%g)", ratio, e1, e2)
	}
}

func TestRKF45Harmonic(t *testing.T) {
	// y'' = -y as a system; after 2*pi returns to initial state.
	y := []float64{1, 0}
	f := func(x float64, y, dy []float64) {
		dy[0] = y[1]
		dy[1] = -y[0]
	}
	if _, err := RKF45(f, 0, 2*math.Pi, y, RKF45Options{RelTol: 1e-10, AbsTol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-7 || math.Abs(y[1]) > 1e-7 {
		t.Errorf("state after full period: %v", y)
	}
}

func TestRKF45StopPredicate(t *testing.T) {
	y := []float64{0}
	f := func(x float64, y, dy []float64) { dy[0] = 1 }
	xEnd, err := RKF45(f, 0, 10, y, RKF45Options{
		Stop: func(x float64, y []float64) bool { return y[0] >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if xEnd >= 9.99 {
		t.Errorf("stop predicate ignored, reached x=%g", xEnd)
	}
	if y[0] < 2-1e-6 {
		t.Errorf("stopped before condition: y=%g", y[0])
	}
}

func TestRKF45Monitor(t *testing.T) {
	count := 0
	y := []float64{1}
	f := func(x float64, y, dy []float64) { dy[0] = -y[0] }
	_, err := RKF45(f, 0, 1, y, RKF45Options{Monitor: func(x float64, y []float64) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("monitor never called")
	}
}

func TestRKF45Backward(t *testing.T) {
	y := []float64{math.Exp(-1)}
	f := func(x float64, y, dy []float64) { dy[0] = -y[0] }
	if _, err := RKF45(f, 1, 0, y, RKF45Options{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-6 {
		t.Errorf("backward integration y(0)=%g want 1", y[0])
	}
}

func TestStiffStepperDecay(t *testing.T) {
	// Very stiff linear decay: dy/dt = -1e6 (y - 1); solution approaches 1.
	s := NewStiffStepper(1, func(y, dy []float64) {
		dy[0] = -1e6 * (y[0] - 1)
	})
	y := []float64{0}
	if err := s.Integrate(y, 1e-4, 1e-6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-4 {
		t.Errorf("stiff decay y=%g want 1", y[0])
	}
}

func TestStiffStepperRobertsonLike(t *testing.T) {
	// Two-scale system: fast equilibration plus slow drift; checks stability.
	s := NewStiffStepper(2, func(y, dy []float64) {
		dy[0] = -1000*y[0] + 999*y[1]
		dy[1] = y[0] - y[1]
	})
	y := []float64{2, 1}
	if err := s.Integrate(y, 1.0, 1e-5); err != nil {
		t.Fatal(err)
	}
	// Eigenvector structure: fast mode dies, slow mode decays gently; both
	// components must remain finite and converge toward each other.
	if math.IsNaN(y[0]) || math.IsNaN(y[1]) {
		t.Fatal("stiff integration produced NaN")
	}
	if math.Abs(y[0]-y[1]) > 1e-2*(math.Abs(y[1])+1e-9) {
		t.Errorf("fast mode not equilibrated: %v", y)
	}
}
