// Package numerics provides the numerical kernels shared by every solver in
// cataero: banded and dense linear solvers, Newton iteration, explicit and
// stiff ODE integrators, interpolation, quadrature, exponential integrals and
// scalar root finding. All routines operate on float64 slices and are
// allocation-conscious so that inner solver loops can reuse workspaces.
package numerics

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system is detected to be singular or
// numerically indistinguishable from singular.
var ErrSingular = errors.New("numerics: singular matrix")

// SolveTridiag solves the tridiagonal system with sub-diagonal a, diagonal b,
// super-diagonal c and right-hand side d using the Thomas algorithm.
// a[0] and c[n-1] are ignored. The solution is written into x, which may
// alias d. All slices must have length n >= 1.
func SolveTridiag(a, b, c, d, x []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(x) != n {
		return fmt.Errorf("numerics: tridiag length mismatch (n=%d)", n)
	}
	if n == 0 {
		return nil
	}
	// Forward elimination with scratch storage for the modified coefficients.
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// TridiagWorkspace holds reusable scratch arrays for repeated tridiagonal
// solves of the same size, avoiding per-solve allocation in relaxation loops.
type TridiagWorkspace struct {
	cp, dp []float64
}

// NewTridiagWorkspace returns a workspace for systems of size n.
func NewTridiagWorkspace(n int) *TridiagWorkspace {
	return &TridiagWorkspace{cp: make([]float64, n), dp: make([]float64, n)}
}

// Solve solves the tridiagonal system like SolveTridiag but reuses the
// workspace scratch arrays.
func (w *TridiagWorkspace) Solve(a, b, c, d, x []float64) error {
	n := len(b)
	if len(w.cp) < n {
		w.cp = make([]float64, n)
		w.dp = make([]float64, n)
	}
	cp, dp := w.cp[:n], w.dp[:n]
	if n == 0 {
		return nil
	}
	if b[0] == 0 {
		return ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// BlockTridiag solves a block-tridiagonal system with m×m blocks.
// A, B, C are the sub-, main- and super-diagonal block rows stored as
// n slices of m*m row-major matrices; D is the right-hand side of n blocks of
// length m. The solution overwrites D. A[0] and C[n-1] are ignored.
// The blocks are modified during the factorization.
func BlockTridiag(A, B, C [][]float64, D [][]float64, m int) error {
	n := len(B)
	if len(A) != n || len(C) != n || len(D) != n {
		return fmt.Errorf("numerics: block tridiag length mismatch (n=%d)", n)
	}
	w := NewBlockTridiagWorkspace(m)
	for i := 0; i < n; i++ {
		if i > 0 {
			// B[i] -= A[i] * C[i-1]; D[i] -= A[i] * D[i-1]
			matMulSub(B[i], A[i], C[i-1], m)
			matVecSub(D[i], A[i], D[i-1], m)
		}
		copy(w.lu, B[i])
		if err := luFactor(w.lu, w.piv, m); err != nil {
			return err
		}
		// C[i] = B[i]^{-1} C[i], D[i] = B[i]^{-1} D[i]
		if i < n-1 {
			luSolveMat(w.lu, w.piv, C[i], w.tmpM, m)
		}
		luSolveVec(w.lu, w.piv, D[i], w.tmp, m)
	}
	for i := n - 2; i >= 0; i-- {
		matVecSub(D[i], C[i], D[i+1], m)
	}
	return nil
}

// BlockTridiagWorkspace holds the per-solve scratch of a block-tridiagonal
// factorization (one block LU, pivots and temporaries), so batched solves —
// many lines of the same block size in a relaxation sweep — allocate nothing
// per line. Each concurrent solve needs its own workspace.
type BlockTridiagWorkspace struct {
	m    int
	lu   []float64
	tmpM []float64
	piv  []int
	tmp  []float64
}

// NewBlockTridiagWorkspace returns a workspace for m×m block systems.
func NewBlockTridiagWorkspace(m int) *BlockTridiagWorkspace {
	return &BlockTridiagWorkspace{
		m:    m,
		lu:   make([]float64, m*m),
		tmpM: make([]float64, m*m),
		piv:  make([]int, m),
		tmp:  make([]float64, m),
	}
}

// SolveFlat solves a block-tridiagonal system stored flat: A, B, C hold the
// sub-, main- and super-diagonal blocks as n contiguous m*m row-major
// matrices (length n*m*m) and D holds the right-hand side as n contiguous
// length-m blocks (length n*m). The solution overwrites D; the blocks are
// modified during the factorization. A's first block and C's last block are
// ignored. The flat layout keeps a whole line's system contiguous in memory
// and the workspace makes repeated solves allocation-free.
//
//cataero:hotpath
func (w *BlockTridiagWorkspace) SolveFlat(A, B, C, D []float64, n int) error {
	m := w.m
	mm := m * m
	if len(A) < n*mm || len(B) < n*mm || len(C) < n*mm || len(D) < n*m {
		//cataero:allow hotpath cold misuse guard; never taken on a sized workspace
		return fmt.Errorf("numerics: block tridiag flat length mismatch (n=%d, m=%d)", n, m)
	}
	for i := 0; i < n; i++ {
		Bi := B[i*mm : (i+1)*mm]
		Di := D[i*m : (i+1)*m]
		if i > 0 {
			Ai := A[i*mm : (i+1)*mm]
			matMulSub(Bi, Ai, C[(i-1)*mm:i*mm], m)
			matVecSub(Di, Ai, D[(i-1)*m:i*m], m)
		}
		copy(w.lu, Bi)
		if err := luFactor(w.lu, w.piv, m); err != nil {
			return err
		}
		if i < n-1 {
			luSolveMat(w.lu, w.piv, C[i*mm:(i+1)*mm], w.tmpM, m)
		}
		luSolveVec(w.lu, w.piv, Di, w.tmp, m)
	}
	for i := n - 2; i >= 0; i-- {
		matVecSub(D[i*m:(i+1)*m], C[i*mm:(i+1)*mm], D[(i+1)*m:(i+2)*m], m)
	}
	return nil
}

// SolveFlatScaled is SolveFlat with the diagonal equilibration fused into
// the elimination: each block row is scaled entrywise by rat (length m*m,
// rat[r*m+c] = scl[c]/scl[r] for a per-variable scale scl) and its
// right-hand block by 1/scl as the forward pass first touches it, instead
// of in a separate pre-pass over the whole plane. The result is bit-
// identical to scaling every block first and calling SolveFlat, but the
// plane is traversed once instead of twice. The solution overwrites D in
// the SCALED variables — the caller maps back with D[i*m+r] *= scl[r].
// A's first block and C's last block are ignored (and left unscaled).
//
// For 4×4 blocks — the conserved-variable systems of the flow solvers —
// the elimination runs through fully unrolled block kernels (mulSub4,
// lu4Factor, lu4SolveMat/Vec) instead of the generic m-loop LU helpers;
// same pivoting, same operation order, no per-column scratch copies.
//
//cataero:hotpath
func (w *BlockTridiagWorkspace) SolveFlatScaled(A, B, C, D []float64, n int, rat, scl []float64) error {
	m := w.m
	mm := m * m
	if len(A) < n*mm || len(B) < n*mm || len(C) < n*mm || len(D) < n*m || len(rat) < mm || len(scl) < m {
		//cataero:allow hotpath cold misuse guard; never taken on a sized workspace
		return fmt.Errorf("numerics: block tridiag flat length mismatch (n=%d, m=%d)", n, m)
	}
	if m == 4 {
		return w.solveFlatScaled4(A, B, C, D, n, rat, scl)
	}
	for i := 0; i < n; i++ {
		Bi := B[i*mm : (i+1)*mm]
		Di := D[i*m : (i+1)*m]
		for k := 0; k < mm; k++ {
			Bi[k] *= rat[k]
		}
		for r := 0; r < m; r++ {
			Di[r] /= scl[r]
		}
		if i > 0 {
			Ai := A[i*mm : (i+1)*mm]
			for k := 0; k < mm; k++ {
				Ai[k] *= rat[k]
			}
			// C[i-1] was scaled (and then solved against B[i-1]) on the
			// previous iteration, so the products are in the scaled system.
			matMulSub(Bi, Ai, C[(i-1)*mm:i*mm], m)
			matVecSub(Di, Ai, D[(i-1)*m:i*m], m)
		}
		copy(w.lu, Bi)
		if err := luFactor(w.lu, w.piv, m); err != nil {
			return err
		}
		if i < n-1 {
			Ci := C[i*mm : (i+1)*mm]
			for k := 0; k < mm; k++ {
				Ci[k] *= rat[k]
			}
			luSolveMat(w.lu, w.piv, Ci, w.tmpM, m)
		}
		luSolveVec(w.lu, w.piv, Di, w.tmp, m)
	}
	for i := n - 2; i >= 0; i-- {
		matVecSub(D[i*m:(i+1)*m], C[i*mm:(i+1)*mm], D[(i+1)*m:(i+2)*m], m)
	}
	return nil
}

// solveFlatScaled4 is the unrolled 4×4-block elimination behind
// SolveFlatScaled: identical algorithm (scaled Thomas recursion, partial-
// pivoted block LU), with the inner m-loops replaced by straight-line
// 4-wide kernels and the super-diagonal solve running on all four columns
// at once instead of copying them through per-column scratch.
//
//cataero:hotpath
func (w *BlockTridiagWorkspace) solveFlatScaled4(A, B, C, D []float64, n int, rat, scl []float64) error {
	s0, s1, s2, s3 := scl[0], scl[1], scl[2], scl[3]
	for i := 0; i < n; i++ {
		Bi := B[i*16 : i*16+16 : i*16+16]
		Di := D[i*4 : i*4+4 : i*4+4]
		for k := 0; k < 16; k++ {
			Bi[k] *= rat[k]
		}
		Di[0] /= s0
		Di[1] /= s1
		Di[2] /= s2
		Di[3] /= s3
		if i > 0 {
			Ai := A[i*16 : i*16+16 : i*16+16]
			for k := 0; k < 16; k++ {
				Ai[k] *= rat[k]
			}
			mulSub4(Bi, Ai, C[(i-1)*16:i*16])
			vecMulSub4(Di, Ai, D[(i-1)*4:i*4])
		}
		lu := w.lu[:16:16]
		copy(lu, Bi)
		if err := lu4Factor(lu, w.piv); err != nil {
			return err
		}
		if i < n-1 {
			Ci := C[i*16 : i*16+16 : i*16+16]
			for k := 0; k < 16; k++ {
				Ci[k] *= rat[k]
			}
			lu4SolveMat(lu, w.piv, Ci)
		}
		lu4SolveVec(lu, w.piv, Di)
	}
	for i := n - 2; i >= 0; i-- {
		vecMulSub4(D[i*4:i*4+4:i*4+4], C[i*16:i*16+16:i*16+16], D[(i+1)*4:(i+1)*4+4])
	}
	return nil
}

// mulSub4 computes B -= A*C for 4×4 row-major matrices, unrolled.
//
//cataero:hotpath
func mulSub4(B, A, C []float64) {
	B = B[:16:16]
	A = A[:16:16]
	C = C[:16:16]
	for r := 0; r < 4; r++ {
		a0, a1, a2, a3 := A[r*4], A[r*4+1], A[r*4+2], A[r*4+3]
		B[r*4] -= a0*C[0] + a1*C[4] + a2*C[8] + a3*C[12]
		B[r*4+1] -= a0*C[1] + a1*C[5] + a2*C[9] + a3*C[13]
		B[r*4+2] -= a0*C[2] + a1*C[6] + a2*C[10] + a3*C[14]
		B[r*4+3] -= a0*C[3] + a1*C[7] + a2*C[11] + a3*C[15]
	}
}

// vecMulSub4 computes d -= A*e for a 4×4 matrix and 4-vectors, unrolled.
//
//cataero:hotpath
func vecMulSub4(d, A, e []float64) {
	e0, e1, e2, e3 := e[0], e[1], e[2], e[3]
	d[0] -= A[0]*e0 + A[1]*e1 + A[2]*e2 + A[3]*e3
	d[1] -= A[4]*e0 + A[5]*e1 + A[6]*e2 + A[7]*e3
	d[2] -= A[8]*e0 + A[9]*e1 + A[10]*e2 + A[11]*e3
	d[3] -= A[12]*e0 + A[13]*e1 + A[14]*e2 + A[15]*e3
}

// lu4Factor is luFactor for a 4×4 block: in-place LU with partial pivoting,
// same pivot convention (piv[k] = row exchanged with k at step k).
//
//cataero:hotpath
func lu4Factor(lu []float64, piv []int) error {
	lu = lu[:16:16]
	for k := 0; k < 4; k++ {
		p := k
		max := math.Abs(lu[k*4+k])
		for r := k + 1; r < 4; r++ {
			if v := math.Abs(lu[r*4+k]); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			//cataero:allow hotpath cold divergence exit; taken only on a singular line
			return ErrSingular
		}
		piv[k] = p
		if p != k {
			lu[k*4], lu[p*4] = lu[p*4], lu[k*4]
			lu[k*4+1], lu[p*4+1] = lu[p*4+1], lu[k*4+1]
			lu[k*4+2], lu[p*4+2] = lu[p*4+2], lu[k*4+2]
			lu[k*4+3], lu[p*4+3] = lu[p*4+3], lu[k*4+3]
		}
		inv := 1 / lu[k*4+k]
		for r := k + 1; r < 4; r++ {
			f := lu[r*4+k] * inv
			lu[r*4+k] = f
			for c := k + 1; c < 4; c++ {
				lu[r*4+c] -= f * lu[k*4+c]
			}
		}
	}
	return nil
}

// lu4SolveMat overwrites the 4×4 row-major X with B⁻¹X for the factored
// block: permutation and forward/back substitution applied row-wise, so all
// four columns advance together with no per-column scratch.
//
//cataero:hotpath
func lu4SolveMat(lu []float64, piv []int, X []float64) {
	lu = lu[:16:16]
	X = X[:16:16]
	for k := 0; k < 4; k++ {
		if p := piv[k]; p != k {
			X[k*4], X[p*4] = X[p*4], X[k*4]
			X[k*4+1], X[p*4+1] = X[p*4+1], X[k*4+1]
			X[k*4+2], X[p*4+2] = X[p*4+2], X[k*4+2]
			X[k*4+3], X[p*4+3] = X[p*4+3], X[k*4+3]
		}
		x0, x1, x2, x3 := X[k*4], X[k*4+1], X[k*4+2], X[k*4+3]
		for r := k + 1; r < 4; r++ {
			f := lu[r*4+k]
			X[r*4] -= f * x0
			X[r*4+1] -= f * x1
			X[r*4+2] -= f * x2
			X[r*4+3] -= f * x3
		}
	}
	for k := 3; k >= 0; k-- {
		x0, x1, x2, x3 := X[k*4], X[k*4+1], X[k*4+2], X[k*4+3]
		for c := k + 1; c < 4; c++ {
			u := lu[k*4+c]
			x0 -= u * X[c*4]
			x1 -= u * X[c*4+1]
			x2 -= u * X[c*4+2]
			x3 -= u * X[c*4+3]
		}
		d := lu[k*4+k]
		X[k*4], X[k*4+1], X[k*4+2], X[k*4+3] = x0/d, x1/d, x2/d, x3/d
	}
}

// lu4SolveVec overwrites the 4-vector b with B⁻¹b for the factored block.
//
//cataero:hotpath
func lu4SolveVec(lu []float64, piv []int, b []float64) {
	lu = lu[:16:16]
	b = b[:4:4]
	for k := 0; k < 4; k++ {
		if p := piv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
		f := b[k]
		for r := k + 1; r < 4; r++ {
			b[r] -= lu[r*4+k] * f
		}
	}
	b[3] /= lu[15]
	b[2] = (b[2] - lu[11]*b[3]) / lu[10]
	b[1] = (b[1] - lu[6]*b[2] - lu[7]*b[3]) / lu[5]
	b[0] = (b[0] - lu[1]*b[1] - lu[2]*b[2] - lu[3]*b[3]) / lu[0]
}

// matMulSub computes B -= A*C for m×m row-major matrices.
func matMulSub(B, A, C []float64, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s := 0.0
			for k := 0; k < m; k++ {
				s += A[i*m+k] * C[k*m+j]
			}
			B[i*m+j] -= s
		}
	}
}

// matVecSub computes d -= A*e for an m×m matrix and length-m vectors.
func matVecSub(d, A, e []float64, m int) {
	for i := 0; i < m; i++ {
		s := 0.0
		for k := 0; k < m; k++ {
			s += A[i*m+k] * e[k]
		}
		d[i] -= s
	}
}
