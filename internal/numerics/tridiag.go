// Package numerics provides the numerical kernels shared by every solver in
// cataero: banded and dense linear solvers, Newton iteration, explicit and
// stiff ODE integrators, interpolation, quadrature, exponential integrals and
// scalar root finding. All routines operate on float64 slices and are
// allocation-conscious so that inner solver loops can reuse workspaces.
package numerics

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a linear system is detected to be singular or
// numerically indistinguishable from singular.
var ErrSingular = errors.New("numerics: singular matrix")

// SolveTridiag solves the tridiagonal system with sub-diagonal a, diagonal b,
// super-diagonal c and right-hand side d using the Thomas algorithm.
// a[0] and c[n-1] are ignored. The solution is written into x, which may
// alias d. All slices must have length n >= 1.
func SolveTridiag(a, b, c, d, x []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(x) != n {
		return fmt.Errorf("numerics: tridiag length mismatch (n=%d)", n)
	}
	if n == 0 {
		return nil
	}
	// Forward elimination with scratch storage for the modified coefficients.
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// TridiagWorkspace holds reusable scratch arrays for repeated tridiagonal
// solves of the same size, avoiding per-solve allocation in relaxation loops.
type TridiagWorkspace struct {
	cp, dp []float64
}

// NewTridiagWorkspace returns a workspace for systems of size n.
func NewTridiagWorkspace(n int) *TridiagWorkspace {
	return &TridiagWorkspace{cp: make([]float64, n), dp: make([]float64, n)}
}

// Solve solves the tridiagonal system like SolveTridiag but reuses the
// workspace scratch arrays.
func (w *TridiagWorkspace) Solve(a, b, c, d, x []float64) error {
	n := len(b)
	if len(w.cp) < n {
		w.cp = make([]float64, n)
		w.dp = make([]float64, n)
	}
	cp, dp := w.cp[:n], w.dp[:n]
	if n == 0 {
		return nil
	}
	if b[0] == 0 {
		return ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// BlockTridiag solves a block-tridiagonal system with m×m blocks.
// A, B, C are the sub-, main- and super-diagonal block rows stored as
// n slices of m*m row-major matrices; D is the right-hand side of n blocks of
// length m. The solution overwrites D. A[0] and C[n-1] are ignored.
// The blocks are modified during the factorization.
func BlockTridiag(A, B, C [][]float64, D [][]float64, m int) error {
	n := len(B)
	if len(A) != n || len(C) != n || len(D) != n {
		return fmt.Errorf("numerics: block tridiag length mismatch (n=%d)", n)
	}
	w := NewBlockTridiagWorkspace(m)
	for i := 0; i < n; i++ {
		if i > 0 {
			// B[i] -= A[i] * C[i-1]; D[i] -= A[i] * D[i-1]
			matMulSub(B[i], A[i], C[i-1], m)
			matVecSub(D[i], A[i], D[i-1], m)
		}
		copy(w.lu, B[i])
		if err := luFactor(w.lu, w.piv, m); err != nil {
			return err
		}
		// C[i] = B[i]^{-1} C[i], D[i] = B[i]^{-1} D[i]
		if i < n-1 {
			luSolveMat(w.lu, w.piv, C[i], w.tmpM, m)
		}
		luSolveVec(w.lu, w.piv, D[i], w.tmp, m)
	}
	for i := n - 2; i >= 0; i-- {
		matVecSub(D[i], C[i], D[i+1], m)
	}
	return nil
}

// BlockTridiagWorkspace holds the per-solve scratch of a block-tridiagonal
// factorization (one block LU, pivots and temporaries), so batched solves —
// many lines of the same block size in a relaxation sweep — allocate nothing
// per line. Each concurrent solve needs its own workspace.
type BlockTridiagWorkspace struct {
	m    int
	lu   []float64
	tmpM []float64
	piv  []int
	tmp  []float64
}

// NewBlockTridiagWorkspace returns a workspace for m×m block systems.
func NewBlockTridiagWorkspace(m int) *BlockTridiagWorkspace {
	return &BlockTridiagWorkspace{
		m:    m,
		lu:   make([]float64, m*m),
		tmpM: make([]float64, m*m),
		piv:  make([]int, m),
		tmp:  make([]float64, m),
	}
}

// SolveFlat solves a block-tridiagonal system stored flat: A, B, C hold the
// sub-, main- and super-diagonal blocks as n contiguous m*m row-major
// matrices (length n*m*m) and D holds the right-hand side as n contiguous
// length-m blocks (length n*m). The solution overwrites D; the blocks are
// modified during the factorization. A's first block and C's last block are
// ignored. The flat layout keeps a whole line's system contiguous in memory
// and the workspace makes repeated solves allocation-free.
//
//cataero:hotpath
func (w *BlockTridiagWorkspace) SolveFlat(A, B, C, D []float64, n int) error {
	m := w.m
	mm := m * m
	if len(A) < n*mm || len(B) < n*mm || len(C) < n*mm || len(D) < n*m {
		//cataero:allow hotpath cold misuse guard; never taken on a sized workspace
		return fmt.Errorf("numerics: block tridiag flat length mismatch (n=%d, m=%d)", n, m)
	}
	for i := 0; i < n; i++ {
		Bi := B[i*mm : (i+1)*mm]
		Di := D[i*m : (i+1)*m]
		if i > 0 {
			Ai := A[i*mm : (i+1)*mm]
			matMulSub(Bi, Ai, C[(i-1)*mm:i*mm], m)
			matVecSub(Di, Ai, D[(i-1)*m:i*m], m)
		}
		copy(w.lu, Bi)
		if err := luFactor(w.lu, w.piv, m); err != nil {
			return err
		}
		if i < n-1 {
			luSolveMat(w.lu, w.piv, C[i*mm:(i+1)*mm], w.tmpM, m)
		}
		luSolveVec(w.lu, w.piv, Di, w.tmp, m)
	}
	for i := n - 2; i >= 0; i-- {
		matVecSub(D[i*m:(i+1)*m], C[i*mm:(i+1)*mm], D[(i+1)*m:(i+2)*m], m)
	}
	return nil
}

// matMulSub computes B -= A*C for m×m row-major matrices.
func matMulSub(B, A, C []float64, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s := 0.0
			for k := 0; k < m; k++ {
				s += A[i*m+k] * C[k*m+j]
			}
			B[i*m+j] -= s
		}
	}
}

// matVecSub computes d -= A*e for an m×m matrix and length-m vectors.
func matVecSub(d, A, e []float64, m int) {
	for i := 0; i < m; i++ {
		s := 0.0
		for k := 0; k < m; k++ {
			s += A[i*m+k] * e[k]
		}
		d[i] -= s
	}
}
