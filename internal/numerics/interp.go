package numerics

import (
	"fmt"
	"math"
	"sort"
)

// LinearInterp returns f(x) by piecewise-linear interpolation of the sorted
// abscissae xs with ordinates ys. Outside the range the end values are
// extrapolated linearly from the boundary segment.
func LinearInterp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 1 {
		return ys[0]
	}
	i := sort.SearchFloat64s(xs, x)
	if i <= 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y0
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Spline is a natural cubic spline through sorted knots.
type Spline struct {
	xs, ys, y2 []float64
}

// NewSpline builds a natural cubic spline. xs must be strictly increasing.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return nil, fmt.Errorf("numerics: spline needs >=2 matching knots, got %d/%d", n, len(ys))
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("numerics: spline abscissae not increasing at %d", i)
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		y2: make([]float64, n),
	}
	u := make([]float64, n)
	for i := 1; i < n-1; i++ {
		sig := (xs[i] - xs[i-1]) / (xs[i+1] - xs[i-1])
		p := sig*s.y2[i-1] + 2
		s.y2[i] = (sig - 1) / p
		u[i] = (ys[i+1]-ys[i])/(xs[i+1]-xs[i]) - (ys[i]-ys[i-1])/(xs[i]-xs[i-1])
		u[i] = (6*u[i]/(xs[i+1]-xs[i-1]) - sig*u[i-1]) / p
	}
	for k := n - 2; k >= 0; k-- {
		s.y2[k] = s.y2[k]*s.y2[k+1] + u[k]
	}
	return s, nil
}

// Eval evaluates the spline at x (clamped to the knot range).
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		x = s.xs[0]
	}
	if x >= s.xs[n-1] {
		x = s.xs[n-1]
	}
	i := sort.SearchFloat64s(s.xs, x)
	if i <= 0 {
		i = 1
	}
	if i >= n {
		i = n - 1
	}
	h := s.xs[i] - s.xs[i-1]
	a := (s.xs[i] - x) / h
	b := (x - s.xs[i-1]) / h
	return a*s.ys[i-1] + b*s.ys[i] + ((a*a*a-a)*s.y2[i-1]+(b*b*b-b)*s.y2[i])*h*h/6
}

// Stretch1D returns n points in [0,1] clustered toward s=0 with Roberts-type
// stretching. beta>1; beta→1 gives strong clustering, large beta is uniform.
func Stretch1D(n int, beta float64) []float64 {
	pts := make([]float64, n)
	bp := (beta + 1) / (beta - 1)
	for i := 0; i < n; i++ {
		eta := float64(i) / float64(n-1)
		p := math.Pow(bp, 1-eta)
		pts[i] = (beta + 1 - (beta-1)*p) / (p + 1)
	}
	pts[0] = 0
	pts[n-1] = 1
	return pts
}
