package numerics

import "math"

// Simpson integrates f over [a,b] with n (even, >=2) intervals by the
// composite Simpson rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// TrapzSlice integrates tabulated ordinates y over abscissae x by the
// trapezoidal rule. The slices must have equal length >= 2.
func TrapzSlice(x, y []float64) float64 {
	s := 0.0
	for i := 1; i < len(x); i++ {
		s += 0.5 * (y[i] + y[i-1]) * (x[i] - x[i-1])
	}
	return s
}

// gauss10 nodes/weights on [-1,1].
var gauss10X = []float64{
	-0.9739065285171717, -0.8650633666889845, -0.6794095682990244,
	-0.4333953941292472, -0.1488743389816312, 0.1488743389816312,
	0.4333953941292472, 0.6794095682990244, 0.8650633666889845,
	0.9739065285171717,
}
var gauss10W = []float64{
	0.0666713443086881, 0.1494513491505806, 0.2190863625159820,
	0.2692667193099963, 0.2955242247147529, 0.2955242247147529,
	0.2692667193099963, 0.2190863625159820, 0.1494513491505806,
	0.0666713443086881,
}

// Gauss10 integrates f over [a,b] with 10-point Gauss-Legendre quadrature.
func Gauss10(f func(float64) float64, a, b float64) float64 {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	s := 0.0
	for i, x := range gauss10X {
		s += gauss10W[i] * f(c+h*x)
	}
	return s * h
}

// E1 returns the exponential integral E1(x) for x > 0.
// Abramowitz & Stegun 5.1.53/5.1.56 rational approximations.
func E1(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	if x < 1 {
		// Series: E1 = -gamma - ln x + sum (-1)^{n+1} x^n / (n n!)
		const gamma = 0.5772156649015329
		sum := 0.0
		term := 1.0
		for n := 1; n <= 30; n++ {
			term *= -x / float64(n)
			add := -term / float64(n)
			sum += add
			if math.Abs(add) < 1e-16*math.Abs(sum) {
				break
			}
		}
		return -gamma - math.Log(x) + sum
	}
	// Continued-fraction style rational approximation (A&S 5.1.56).
	num := x*x + 2.334733*x + 0.250621
	den := x*x + 3.330657*x + 1.681534
	return num / den * math.Exp(-x) / x
}

// E2 returns the exponential integral E2(x) = exp(-x) - x*E1(x).
func E2(x float64) float64 {
	if x == 0 {
		return 1
	}
	if x < 0 {
		return math.NaN()
	}
	return math.Exp(-x) - x*E1(x)
}

// E3 returns the exponential integral E3(x) = (exp(-x) - x*E2(x)) / 2.
func E3(x float64) float64 {
	if x == 0 {
		return 0.5
	}
	if x < 0 {
		return math.NaN()
	}
	return 0.5 * (math.Exp(-x) - x*E2(x))
}

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n == 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	d := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*d
	}
	out[n-1] = b
	return out
}

// Logspace returns n log-evenly spaced points from a to b inclusive (a,b>0).
func Logspace(a, b float64, n int) []float64 {
	la, lb := math.Log(a), math.Log(b)
	out := Linspace(la, lb, n)
	for i := range out {
		out[i] = math.Exp(out[i])
	}
	return out
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
