package euler

import (
	"context"
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
)

func TestSphereEulerIdeal(t *testing.T) {
	body := geometry.NewSphere(0.5)
	r, err := Solve(context.Background(), Case{
		Gas:  gas.NewIdealAir(),
		Body: body,
		NI:   14, NJ: 22,
		VInf: 5 * math.Sqrt(1.4*287.05*220),
		PInf: 200, TInf: 220,
		Axisym:   true,
		Standoff: func(s float64) float64 { return 0.2 + 0.2*s },
		MaxSteps: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sphere standoff at M=5: ~0.15 R.
	if r.Standoff < 0.03 || r.Standoff > 0.15 {
		t.Errorf("standoff %g m outside band for R=0.5", r.Standoff)
	}
	// Shock locus is monotone in y (opens outward).
	for i := 1; i < len(r.ShockY); i++ {
		if r.ShockY[i] < r.ShockY[i-1]-1e-6 {
			t.Errorf("shock locus not opening at %d", i)
		}
	}
}

func TestOrbiterPitchPlaneBody(t *testing.T) {
	o := geometry.NewOrbiter()
	b := OrbiterPitchPlaneBody(o, 30*math.Pi/180, 12)
	if b.NoseRadius() <= 0 {
		t.Error("no nose radius")
	}
	// Surface inclination downstream ~ alpha.
	th := b.Angle(b.MaxS() * 0.9)
	if math.Abs(th-(30*math.Pi/180+0.015)) > 1e-6 {
		t.Errorf("wedge angle %g", th)
	}
}

func TestEulerErrors(t *testing.T) {
	if _, err := Solve(context.Background(), Case{}); err == nil {
		t.Error("empty case accepted")
	}
}
