// Package euler drives the shared finite-volume kernel as the inviscid
// (Euler) solver class of the paper: time-marching shock capture over blunt
// bodies with ideal or equilibrium gas, used for the pitch-plane bow-shock
// shapes of Fig. 4. The windward pitch plane of a lifting vehicle at angle
// of attack is modeled as a planar blunt body whose surface inclination is
// the local windward inclination plus alpha (the 2-D reduction of the
// paper's Fig. 4 slice).
package euler

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/fvm"
	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
)

// Case defines a blunt-body Euler solve.
type Case struct {
	Gas      gas.Model
	Body     geometry.Body
	SMax     float64                 // arc length to march along the body (default body.MaxS())
	NI, NJ   int                     // grid cells (default 28 x 36)
	Standoff func(s float64) float64 // outer-boundary placement
	VInf     float64
	PInf     float64
	TInf     float64
	Axisym   bool
	MaxSteps int
	CFL      float64
	// Flux selects the upwind flux kernel by name (default fvm.DefaultFlux).
	Flux string
	// TimeStepping selects the time integrator by name ("explicit",
	// "implicit"; default fvm.DefaultTimeStepping). Grid-sequenced solves
	// use the same integrator on both levels.
	TimeStepping string
	// ImplicitSweep selects the implicit sweep pattern ("jline", "adi";
	// default fvm.DefaultImplicitSweep). Ignored by the explicit integrator.
	ImplicitSweep string
	// CFLRamp tunes the implicit integrator's CFL schedule (zero value =
	// fvm.DefaultCFLRamp).
	CFLRamp fvm.CFLRamp
	// Limiter selects the MUSCL slope limiter by name ("minmod",
	// "vanalbada"; default fvm.DefaultLimiter).
	Limiter string
	// FreezeLimiterAt freezes the MUSCL limiter once the residual has
	// dropped by this factor (see fvm.Options.FreezeLimiterAt; 0 = never).
	FreezeLimiterAt float64
	// Sequence, when non-nil, runs the solve grid-sequenced or multilevel:
	// converge coarse grids first, then finish on the fine grid (see
	// fvm.SolveSequenced / fvm.SolveMultilevel and the Levels, Cycle and
	// RefitEvery fields of fvm.SequenceOptions).
	Sequence *fvm.SequenceOptions
	// CheckpointEvery, when positive, emits a solver-state checkpoint every
	// CheckpointEvery steps through CheckpointSink (see
	// fvm.Options.CheckpointEvery).
	CheckpointEvery int
	// CheckpointSink receives each emitted checkpoint; the argument is
	// solver-owned scratch, encode before returning.
	CheckpointSink func(*fvm.Checkpoint)
	// Restore, when non-nil, resumes the solve from a checkpoint captured by
	// an earlier run of the same case; mismatched checkpoints are ignored
	// and the solve starts cold.
	Restore *fvm.Checkpoint
	// Pool, when non-nil, is a shared worker pool for the finite-volume
	// sweeps (see fvm.Options.Pool); nil gives the solve a private pool.
	Pool *fvm.Pool
	// Progress, when non-nil, observes every time step (see
	// fvm.ProgressFunc).
	Progress fvm.ProgressFunc
}

// Result is the converged Euler solution.
type Result struct {
	Solver   *fvm.Solver
	ShockX   []float64 // bow-shock locus
	ShockY   []float64
	BodyX    []float64 // wall nodes for reference
	BodyY    []float64
	Standoff float64 // stagnation-line standoff distance, m
	Residual float64
}

// Solve runs the case to steady state and extracts the shock locus. The
// context is threaded into the time-marching loop; cancellation aborts the
// solve with ctx.Err().
func Solve(ctx context.Context, c Case) (*Result, error) {
	if c.Body == nil || c.Gas == nil {
		return nil, fmt.Errorf("euler: body and gas model required")
	}
	if c.SMax == 0 {
		c.SMax = c.Body.MaxS()
	}
	if c.NI == 0 {
		c.NI = 28
	}
	if c.NJ == 0 {
		c.NJ = 36
	}
	if c.CFL == 0 {
		c.CFL = 0.5
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4000
	}
	if c.Standoff == nil {
		rn := c.Body.NoseRadius()
		c.Standoff = func(s float64) float64 { return 1.2*rn + 0.4*s }
	}
	g, err := grid.NewBlunt(c.Body, c.SMax, c.NI, c.NJ, c.Standoff, 1.5)
	if err != nil {
		return nil, err
	}
	g.Axisymmetric = c.Axisym
	o := fvm.Options{
		Gas:           c.Gas,
		FreestreamV:   [2]float64{c.VInf, 0},
		FreestreamPT:  [2]float64{c.PInf, c.TInf},
		CFL:           c.CFL,
		MUSCL:         true,
		Flux:          c.Flux,
		TimeStepping:  c.TimeStepping,
		CFLRamp:       c.CFLRamp,
		ImplicitSweep: c.ImplicitSweep,
		Limiter:       c.Limiter,
		Pool:          c.Pool,
		Progress:      c.Progress,

		FreezeLimiterAt: c.FreezeLimiterAt,

		CheckpointEvery: c.CheckpointEvery,
		CheckpointSink:  c.CheckpointSink,
		Restore:         c.Restore,
	}
	const dropTol = 5e-4
	var (
		s   *fvm.Solver
		res float64
	)
	if c.Sequence != nil {
		s, res, err = fvm.SolveSequenced(ctx, g, o, c.MaxSteps, dropTol, *c.Sequence)
	} else {
		if s, err = fvm.New(g, o); err == nil {
			res, err = s.RunCtx(ctx, c.MaxSteps, dropTol)
		}
	}
	if err != nil {
		return nil, err
	}
	g = s.G // sequencing may have re-fitted the outer boundary
	xs, ys := s.ShockLocus(2.5)
	out := &Result{Solver: s, ShockX: xs, ShockY: ys, Residual: res}
	out.BodyX = make([]float64, c.NI+1)
	out.BodyY = make([]float64, c.NI+1)
	for i := 0; i <= c.NI; i++ {
		out.BodyX[i] = g.X[i][0]
		out.BodyY[i] = g.Y[i][0]
	}
	// Stagnation standoff: distance from the nose to the shock on line 0.
	out.Standoff = math.Hypot(xs[0]-g.X[0][0], ys[0]-g.Y[0][0])
	return out, nil
}

// OrbiterPitchPlaneBody returns the planar equivalent body for the Orbiter
// windward pitch plane at angle of attack alpha: a blunted wedge with the
// Orbiter nose radius and a surface inclination of alpha plus the windward
// slope. Length lim limits the body extent (m, measured along the surface).
func OrbiterPitchPlaneBody(o *geometry.Orbiter, alpha, lim float64) geometry.Body {
	theta := alpha + 0.015
	if lim <= 0 {
		lim = o.Length
	}
	return geometry.NewSphereCone(o.Rn*1.4, theta, lim*math.Sin(theta))
}
