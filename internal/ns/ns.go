// Package ns drives the shared finite-volume kernel as the Navier-Stokes
// solver class of the paper: thin-layer viscous terms, no-slip isothermal
// wall, upwind shock capture and an equilibrium-air equation of state; the
// configuration of the paper's Fig. 9 (Mach-20 equilibrium air over a
// hemisphere at 20 km, N2 mole-fraction contours).
package ns

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/fvm"
	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// Case defines an axisymmetric blunt-body NS solve.
type Case struct {
	Gas      gas.Model // typically an equilibrium table
	Rn       float64   // hemisphere radius
	NI, NJ   int       // default 20 x 32
	VInf     float64
	PInf     float64
	TInf     float64
	TWall    float64
	MaxSteps int
	CFL      float64
	Mu       func(T float64) float64
	K        func(T float64) float64
	// Flux selects the upwind flux kernel by name (default fvm.DefaultFlux).
	Flux string
	// TimeStepping selects the time integrator by name ("explicit",
	// "implicit"; default fvm.DefaultTimeStepping). The implicit integrator
	// removes the wall-normal CFL restriction, converging clustered viscous
	// grids in several-fold fewer steps.
	TimeStepping string
	// ImplicitSweep selects the implicit sweep pattern ("jline", "adi";
	// default fvm.DefaultImplicitSweep). Ignored by the explicit integrator.
	ImplicitSweep string
	// CFLRamp tunes the implicit integrator's CFL schedule (zero value =
	// fvm.DefaultCFLRamp).
	CFLRamp fvm.CFLRamp
	// Limiter selects the MUSCL slope limiter by name ("minmod",
	// "vanalbada"; default fvm.DefaultLimiter).
	Limiter string
	// FreezeLimiterAt freezes the MUSCL limiter once the residual has
	// dropped by this factor (see fvm.Options.FreezeLimiterAt; 0 = never).
	FreezeLimiterAt float64
	// Sequence, when non-nil, runs the solve grid-sequenced or multilevel:
	// converge coarse grids first, then finish on the fine grid (see
	// fvm.SolveSequenced / fvm.SolveMultilevel and the Levels, Cycle and
	// RefitEvery fields of fvm.SequenceOptions).
	Sequence *fvm.SequenceOptions
	// CheckpointEvery, when positive, emits a solver-state checkpoint every
	// CheckpointEvery steps through CheckpointSink (see
	// fvm.Options.CheckpointEvery).
	CheckpointEvery int
	// CheckpointSink receives each emitted checkpoint; the argument is
	// solver-owned scratch, encode before returning.
	CheckpointSink func(*fvm.Checkpoint)
	// Restore, when non-nil, resumes the solve from a checkpoint captured by
	// an earlier run of the same case; mismatched checkpoints are ignored
	// and the solve starts cold.
	Restore *fvm.Checkpoint
	// Pool, when non-nil, is a shared worker pool for the finite-volume
	// sweeps (see fvm.Options.Pool); nil gives the solve a private pool.
	Pool *fvm.Pool
	// Progress, when non-nil, observes every time step (see
	// fvm.ProgressFunc).
	Progress fvm.ProgressFunc
}

// Result carries the converged field and surface data.
type Result struct {
	Solver *fvm.Solver
	Grid   *grid.Grid2D
	QWall  []float64 // wall heat flux per i-station, W/m^2
	S      []float64 // wall arc length per station
}

// Solve runs the case to steady state. The context is threaded into the
// time-marching loop; cancellation aborts the solve with ctx.Err().
func Solve(ctx context.Context, c Case) (*Result, error) {
	if c.Gas == nil {
		return nil, fmt.Errorf("ns: gas model required")
	}
	if c.Rn <= 0 {
		return nil, fmt.Errorf("ns: nose radius required")
	}
	if c.NI == 0 {
		c.NI = 20
	}
	if c.NJ == 0 {
		c.NJ = 32
	}
	if c.CFL == 0 {
		c.CFL = 0.4
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 6000
	}
	if c.Mu == nil {
		c.Mu = transport.Sutherland
	}
	if c.K == nil {
		c.K = transport.SutherlandConductivity
	}
	body := geometry.NewSphere(c.Rn)
	g, err := grid.NewBlunt(body, body.MaxS(), c.NI, c.NJ, func(s float64) float64 {
		return 0.35*c.Rn + 0.3*s
	}, 1.08) // wall clustering for the viscous layer
	if err != nil {
		return nil, err
	}
	g.Axisymmetric = true
	o := fvm.Options{
		Gas:           c.Gas,
		Viscous:       true,
		Wall:          fvm.NoSlipIsothermal,
		TWall:         c.TWall,
		Mu:            c.Mu,
		K:             c.K,
		FreestreamV:   [2]float64{c.VInf, 0},
		FreestreamPT:  [2]float64{c.PInf, c.TInf},
		CFL:           c.CFL,
		MUSCL:         true,
		Flux:          c.Flux,
		TimeStepping:  c.TimeStepping,
		CFLRamp:       c.CFLRamp,
		ImplicitSweep: c.ImplicitSweep,
		Limiter:       c.Limiter,
		Pool:          c.Pool,
		Progress:      c.Progress,

		FreezeLimiterAt: c.FreezeLimiterAt,

		CheckpointEvery: c.CheckpointEvery,
		CheckpointSink:  c.CheckpointSink,
		Restore:         c.Restore,
	}
	const dropTol = 5e-4
	var s *fvm.Solver
	if c.Sequence != nil {
		s, _, err = fvm.SolveSequenced(ctx, g, o, c.MaxSteps, dropTol, *c.Sequence)
	} else {
		if s, err = fvm.New(g, o); err == nil {
			_, err = s.RunCtx(ctx, c.MaxSteps, dropTol)
		}
	}
	if err != nil {
		return nil, err
	}
	g = s.G // sequencing may have re-fitted the outer boundary
	res := &Result{Solver: s, Grid: g, QWall: s.WallHeatFlux()}
	res.S = make([]float64, c.NI)
	for i := 0; i < c.NI; i++ {
		res.S[i] = 0.5 * (g.S[i] + g.S[i+1])
	}
	return res, nil
}

// N2Field returns the equilibrium N2 mole fraction at every cell of the
// converged field (the contour quantity of Fig. 9), along with cell-center
// coordinates, evaluated by re-equilibrating each cell's (rho, T).
func (r *Result) N2Field(eq *chem.EquilibriumSolver, y0 []float64) (xs, ys, xn2 []float64, err error) {
	m := eq.Mix
	iN2 := m.Index("N2")
	if iN2 < 0 {
		return nil, nil, nil, fmt.Errorf("ns: mixture has no N2")
	}
	ni, nj := r.Grid.NI, r.Grid.NJ
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			q := r.Solver.Primitive(i, j)
			x, y := r.Grid.CellCenter(i, j)
			yc, e := eq.CompositionRhoT(q.Rho, math.Max(q.T, 200), y0)
			if e != nil {
				return nil, nil, nil, e
			}
			xmol := m.MoleFractions(yc)
			xs = append(xs, x)
			ys = append(ys, y)
			xn2 = append(xn2, xmol[iN2])
		}
	}
	return xs, ys, xn2, nil
}

// ContourCrossings returns the stagnation-line positions (x at y~axis)
// where the N2 mole fraction crosses each requested level, scanning the
// i=0 line from the outer boundary to the wall. Mirrors the Fig. 9 contour
// labels along the stagnation streamline.
func (r *Result) ContourCrossings(eq *chem.EquilibriumSolver, y0 []float64, levels []float64) (map[float64]float64, error) {
	m := eq.Mix
	iN2 := m.Index("N2")
	nj := r.Grid.NJ
	xs := make([]float64, nj)
	vals := make([]float64, nj)
	for j := 0; j < nj; j++ {
		q := r.Solver.Primitive(0, j)
		x, _ := r.Grid.CellCenter(0, j)
		yc, err := eq.CompositionRhoT(q.Rho, math.Max(q.T, 200), y0)
		if err != nil {
			return nil, err
		}
		xs[j] = x
		vals[j] = m.MoleFractions(yc)[iN2]
	}
	out := map[float64]float64{}
	for _, lv := range levels {
		for j := nj - 1; j > 0; j-- {
			a, b := vals[j], vals[j-1]
			if (a-lv)*(b-lv) <= 0 && a != b {
				t := (lv - a) / (b - a)
				out[lv] = xs[j] + t*(xs[j-1]-xs[j])
				break
			}
		}
	}
	return out, nil
}

// EquilibriumTransport builds high-temperature Mu/K closures from the
// equilibrium composition at a representative density (transport properties
// are weak functions of density), for use in Case.Mu / Case.K.
func EquilibriumTransport(eqm *gas.Equilibrium, tr *transport.Mixture, rhoRef float64) (muF, kF func(T float64) float64, err error) {
	nT := 40
	ts := make([]float64, nT)
	mus := make([]float64, nT)
	ks := make([]float64, nT)
	for i := 0; i < nT; i++ {
		T := 200 + (14000-200)*float64(i)/float64(nT-1)
		y, e := eqm.Composition(rhoRef, T)
		if e != nil {
			return nil, nil, e
		}
		ts[i] = T
		mus[i] = tr.Viscosity(T, y)
		ks[i] = tr.Conductivity(T, y)
	}
	muF = func(T float64) float64 { return interp(ts, mus, T) }
	kF = func(T float64) float64 { return interp(ts, ks, T) }
	return muF, kF, nil
}

func interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[lo+1] - xs[lo])
	return ys[lo] + t*(ys[lo+1]-ys[lo])
}

var _ = thermo.Ru // doc reference
