package ns

import (
	"context"
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// fig9Case is a reduced-size version of the paper's Fig. 9 configuration:
// Mach 20 at 20 km over a hemisphere, equilibrium air.
func fig9Case(t *testing.T) (Case, *gas.Equilibrium) {
	t.Helper()
	eqm := gas.NewEquilibriumAir()
	tab, err := gas.NewTable(eqm, 5e-3, 3.0, 1e5, 2.2e7, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewMixture(eqm.Mix)
	mu, k, err := EquilibriumTransport(eqm, tr, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	aInf := math.Sqrt(1.4 * 287.05 * 216.65)
	return Case{
		Gas: tab, Rn: 0.3,
		NI: 14, NJ: 26,
		VInf: 20 * aInf, PInf: 5474.9, TInf: 216.65,
		TWall: 1500, MaxSteps: 3000,
		Mu: mu, K: k,
	}, eqm
}

func TestHemisphereNS(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	c, eqm := fig9Case(t)
	r, err := Solve(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// Wall heat flux positive and peaked at the stagnation point region.
	if r.QWall[0] <= 0 {
		t.Errorf("stagnation heat flux %g", r.QWall[0])
	}
	iMax := 0
	for i, q := range r.QWall {
		if q > r.QWall[iMax] {
			iMax = i
		}
	}
	if iMax > len(r.QWall)/2 {
		t.Errorf("heating peak at station %d of %d; expected near the nose", iMax, len(r.QWall))
	}
	// N2 dissociation in the shock layer: the stagnation-line mole fraction
	// must fall from the freestream 0.79 toward the Fig. 9 contour range.
	y0 := thermo.AirFreestreamMassFractions(eqm.Mix.Species)
	cross, err := r.ContourCrossings(eqm.Eq, y0, []float64{0.75, 0.70})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cross[0.75]; !ok {
		t.Error("no 0.75 N2 contour on the stagnation line: shock layer not dissociating")
	}
	// Field query machinery.
	xs, ys, xn2, err := r.N2Field(eqm.Eq, y0)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != len(ys) || len(xs) != len(xn2) || len(xs) == 0 {
		t.Fatal("bad field arrays")
	}
	minX := 1.0
	for _, v := range xn2 {
		if v < minX {
			minX = v
		}
	}
	if minX > 0.78 {
		t.Errorf("no dissociation anywhere: min x(N2) = %g", minX)
	}
	if minX < 0.2 {
		t.Errorf("implausibly strong dissociation at 20 km/M20: min x(N2) = %g", minX)
	}
}

func TestNSErrors(t *testing.T) {
	if _, err := Solve(context.Background(), Case{}); err == nil {
		t.Error("empty case accepted")
	}
	if _, err := Solve(context.Background(), Case{Gas: gas.NewIdealAir()}); err == nil {
		t.Error("missing radius accepted")
	}
}
