package geometry

import (
	"fmt"
	"math"
)

// Orbiter approximates the Space Shuttle Orbiter outer mold line as used by
// the era's PNS/E+BL simulations (the paper's Figs. 4-6): a 32.77 m vehicle
// with a blunt nose (Rn ~ 0.60 m), a windward centerline that is gently
// curved over the first quarter and nearly flat aft, and an elliptical
// planform. Stations are normalized by body length.
type Orbiter struct {
	Length float64 // m
	Rn     float64 // nose radius, m
}

// NewOrbiter returns the standard 32.77 m Orbiter approximation.
func NewOrbiter() *Orbiter { return &Orbiter{Length: 32.77, Rn: 0.60} }

// WindwardZ returns the windward-centerline height z (m, positive down from
// the nose reference) at axial station x (m). The shape is a blunt nose
// followed by a shallow ramp that flattens aft, matching the gross shape of
// the published windward profile.
func (o *Orbiter) WindwardZ(x float64) float64 {
	if x < 0 {
		x = 0
	}
	xi := x / o.Length
	switch {
	case x < o.Rn:
		// Spherical nose cap: circle of radius Rn centered at (Rn, 0), so
		// z(0)=0 at the tip and z(Rn)=Rn where the cap meets the forebody.
		dz := o.Rn*o.Rn - (x-o.Rn)*(x-o.Rn)
		if dz < 0 {
			dz = 0
		}
		return math.Sqrt(dz)
	case xi < 0.25:
		// Shallow curved forebody: continues from the cap with a gentle slope.
		z0 := o.windwardCapEnd()
		return z0 + 0.12*(x-o.Rn)*math.Exp(-3*xi)
	default:
		// Nearly flat aft body.
		z25 := o.windwardAt(0.25 * o.Length)
		return z25 + 0.015*(x-0.25*o.Length)
	}
}

func (o *Orbiter) windwardCapEnd() float64 { return o.Rn }

func (o *Orbiter) windwardAt(x float64) float64 {
	// Evaluate the 0.25L value through the xi<0.25 branch for continuity.
	z0 := o.windwardCapEnd()
	xi := x / o.Length
	return z0 + 0.12*(x-o.Rn)*math.Exp(-3*xi)
}

// PlanformHalfWidth returns the planform half-width y (m) at station x (m):
// an elliptic forebody blending into strake/wing growth aft.
func (o *Orbiter) PlanformHalfWidth(x float64) float64 {
	if x <= 0 {
		return 0
	}
	xi := x / o.Length
	if xi > 1 {
		xi = 1
	}
	// Fuselage half width grows elliptically to ~2.4 m by mid-body.
	fus := 2.4 * math.Sqrt(1-(1-math.Min(xi/0.35, 1))*(1-math.Min(xi/0.35, 1)))
	// Wing adds beyond 55% length up to ~11.9 m total half span.
	wing := 0.0
	if xi > 0.55 {
		t := (xi - 0.55) / 0.45
		wing = (11.9 - 2.4) * t * t
	}
	return fus + wing
}

// Sections returns ns cross-sections, each with axial station x and the
// (half-width, windward depth) pair, for rendering the Fig. 5 geometry.
func (o *Orbiter) Sections(ns int) []OrbiterSection {
	out := make([]OrbiterSection, ns)
	for i := 0; i < ns; i++ {
		x := o.Length * float64(i) / float64(ns-1)
		out[i] = OrbiterSection{
			X:         x,
			HalfWidth: o.PlanformHalfWidth(x),
			WindwardZ: o.WindwardZ(x),
		}
	}
	return out
}

// OrbiterSection is one station of the discretized geometry.
type OrbiterSection struct {
	X         float64
	HalfWidth float64
	WindwardZ float64
}

// EquivalentAxisymmetric builds the equivalent axisymmetric body for
// windward-centerline analysis at angle of attack alpha (rad): the classic
// axisymmetric-analog reduction (paper Ref. 18). The equivalent body is a
// sphere-cone with the Orbiter nose radius and an effective half angle equal
// to the local windward surface inclination plus alpha.
func (o *Orbiter) EquivalentAxisymmetric(alpha float64) *SphereCone {
	// Windward aft slope ~ 0.015 rad built into WindwardZ.
	thetaEff := alpha + 0.015
	if thetaEff > 80*math.Pi/180 {
		thetaEff = 80 * math.Pi / 180
	}
	return NewSphereCone(o.Rn*1.4, thetaEff, o.Length*math.Sin(thetaEff)+2.4)
}

// PitchPlaneProfile returns np points (x, z) of the windward pitch-plane
// contour rotated to angle of attack alpha: the shape seen by a 2-D
// shock-capture solve of the paper's Fig. 4. z is measured perpendicular to
// the freestream direction.
func (o *Orbiter) PitchPlaneProfile(alpha float64, np int) ([]float64, []float64) {
	xs := make([]float64, np)
	zs := make([]float64, np)
	ca, sa := math.Cos(alpha), math.Sin(alpha)
	for i := 0; i < np; i++ {
		x := o.Length * float64(i) / float64(np-1)
		z := -o.WindwardZ(x) // windward side below reference line
		// Rotate by alpha about the nose: freestream along +x'.
		xs[i] = x*ca - z*sa
		zs[i] = x*sa + z*ca
	}
	return xs, zs
}

func (o *Orbiter) String() string {
	return fmt.Sprintf("Shuttle Orbiter (L=%.2f m, Rn=%.2f m)", o.Length, o.Rn)
}
