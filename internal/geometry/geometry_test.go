package geometry

import (
	"math"
	"testing"
)

func TestSphereBasics(t *testing.T) {
	b := NewSphere(0.5)
	x, r := b.Point(0)
	if x != 0 || r != 0 {
		t.Errorf("stagnation point (%g,%g)", x, r)
	}
	// Quarter arc: 45 degrees around.
	s := 0.5 * math.Pi / 4
	x, r = b.Point(s)
	if math.Abs(x-0.5*(1-math.Cos(math.Pi/4))) > 1e-12 {
		t.Errorf("x=%g", x)
	}
	if math.Abs(r-0.5*math.Sin(math.Pi/4)) > 1e-12 {
		t.Errorf("r=%g", r)
	}
	if math.Abs(b.Angle(0)-math.Pi/2) > 1e-12 {
		t.Errorf("angle at nose %g want pi/2", b.Angle(0))
	}
	if b.Curvature(0.1) != 2.0 {
		t.Errorf("curvature %g want 2", b.Curvature(0.1))
	}
	if b.NoseRadius() != 0.5 {
		t.Error("nose radius")
	}
}

func TestSphereConeContinuity(t *testing.T) {
	b := NewSphereCone(0.3, 30*math.Pi/180, 1.2)
	sT := 0.3 * (math.Pi/2 - 30*math.Pi/180)
	// Position and angle continuous across the tangency point.
	x0, r0 := b.Point(sT - 1e-9)
	x1, r1 := b.Point(sT + 1e-9)
	if math.Abs(x1-x0) > 1e-6 || math.Abs(r1-r0) > 1e-6 {
		t.Errorf("tangency discontinuity: (%g,%g) vs (%g,%g)", x0, r0, x1, r1)
	}
	if math.Abs(b.Angle(sT-1e-9)-b.Angle(sT+1e-9)) > 1e-6 {
		t.Error("angle discontinuity at tangency")
	}
	// Radius grows monotonically out to the base.
	sMax := b.MaxS()
	_, rEnd := b.Point(sMax)
	if math.Abs(rEnd-1.2) > 1e-9 {
		t.Errorf("base radius %g want 1.2", rEnd)
	}
}

func TestSphereConeConeRegion(t *testing.T) {
	b := NewSphereCone(0.1, 45*math.Pi/180, 1.0)
	s := b.MaxS() * 0.9
	if b.Angle(s) != 45*math.Pi/180 {
		t.Errorf("cone angle %g", b.Angle(s))
	}
	if b.Curvature(s) != 0 {
		t.Errorf("cone curvature %g want 0", b.Curvature(s))
	}
}

func TestHyperboloidLimits(t *testing.T) {
	b := NewHyperboloid(0.3, 40*math.Pi/180, 3.0)
	// Nose angle ~ pi/2.
	if a := b.Angle(0.001); math.Abs(a-math.Pi/2) > 0.1 {
		t.Errorf("nose angle %g want ~pi/2", a)
	}
	// Far-field angle approaches the asymptote from above.
	aFar := b.Angle(b.MaxS() * 0.98)
	if aFar < 40*math.Pi/180-0.02 || aFar > 75*math.Pi/180 {
		t.Errorf("asymptotic angle %g", aFar)
	}
	// Curvature near the nose ~ 1/Rn.
	if k := b.Curvature(0.01); math.Abs(k-1/0.3) > 0.7 {
		t.Errorf("nose curvature %g want ~%g", k, 1/0.3)
	}
	// Monotone radius.
	_, r1 := b.Point(1.0)
	_, r2 := b.Point(2.0)
	if r2 <= r1 {
		t.Error("radius not growing")
	}
}

func TestOrbiterProfile(t *testing.T) {
	o := NewOrbiter()
	// Windward profile starts at zero depth and is monotone nondecreasing.
	if z := o.WindwardZ(0); z != 0 {
		t.Errorf("z(0)=%g", z)
	}
	prev := -1.0
	for x := 0.0; x <= o.Length; x += 0.5 {
		z := o.WindwardZ(x)
		if z < prev-1e-9 {
			t.Errorf("windward profile decreasing at x=%g", x)
		}
		prev = z
	}
	// Planform: zero at the nose, ~2.4 m mid-body, near full half-span aft.
	if w := o.PlanformHalfWidth(0); w != 0 {
		t.Errorf("w(0)=%g", w)
	}
	if w := o.PlanformHalfWidth(0.4 * o.Length); math.Abs(w-2.4) > 0.3 {
		t.Errorf("mid-body half width %g want ~2.4", w)
	}
	if w := o.PlanformHalfWidth(o.Length); w < 10 || w > 13 {
		t.Errorf("aft half width %g want ~11.9", w)
	}
}

func TestOrbiterSections(t *testing.T) {
	o := NewOrbiter()
	secs := o.Sections(30)
	if len(secs) != 30 {
		t.Fatalf("sections: %d", len(secs))
	}
	if secs[0].X != 0 || math.Abs(secs[29].X-o.Length) > 1e-9 {
		t.Error("section stations wrong")
	}
}

func TestOrbiterEquivalentBody(t *testing.T) {
	o := NewOrbiter()
	eq := o.EquivalentAxisymmetric(40 * math.Pi / 180)
	// The effective cone angle is close to alpha for a flat windward side.
	if math.Abs(eq.ThetaC-40*math.Pi/180) > 0.05 {
		t.Errorf("effective angle %g want ~40 deg", eq.ThetaC*180/math.Pi)
	}
	if eq.Rn <= 0 {
		t.Error("no nose radius")
	}
}

func TestOrbiterPitchPlane(t *testing.T) {
	o := NewOrbiter()
	xs, zs := o.PitchPlaneProfile(30*math.Pi/180, 50)
	if len(xs) != 50 || len(zs) != 50 {
		t.Fatal("wrong point count")
	}
	// At angle of attack the tail sits well above the nose in z.
	if zs[49] < zs[0]+5 {
		t.Errorf("profile rotation looks wrong: z0=%g zN=%g", zs[0], zs[49])
	}
}

func TestBodyNames(t *testing.T) {
	bodies := []Body{
		NewSphere(1),
		NewSphereCone(0.5, 0.7, 2),
		NewHyperboloid(0.4, 0.7, 2),
	}
	for _, b := range bodies {
		if b.Name() == "" || b.MaxS() <= 0 {
			t.Errorf("bad metadata for %T", b)
		}
	}
	if NewOrbiter().String() == "" {
		t.Error("orbiter string")
	}
}
