// Package geometry defines the axisymmetric and planar body shapes used by
// the flow solvers: sphere, sphere-cone, hyperboloid, biconic, and the
// Shuttle-Orbiter windward profile of the paper's Figs. 4-6, plus the
// equivalent-axisymmetric-body construction for angle of attack.
package geometry

import (
	"fmt"
	"math"
)

// Body is an axisymmetric (or planar symmetric) body described by arc length
// s measured along the surface from the stagnation point.
type Body interface {
	Name() string
	// Point returns the axial coordinate x and radius r at arc length s.
	Point(s float64) (x, r float64)
	// Angle returns the local body angle theta (rad) between the surface
	// tangent and the axis at arc length s.
	Angle(s float64) float64
	// Curvature returns the local longitudinal surface curvature (1/m).
	Curvature(s float64) float64
	// NoseRadius returns the stagnation-point radius of curvature.
	NoseRadius() float64
	// MaxS returns the largest meaningful arc length.
	MaxS() float64
}

// --- Sphere ---

// Sphere is a hemisphere of radius R (arc length 0..pi/2*R).
type Sphere struct{ R float64 }

// NewSphere returns a hemisphere of radius r.
func NewSphere(r float64) *Sphere { return &Sphere{R: r} }

// Name implements Body.
func (b *Sphere) Name() string { return fmt.Sprintf("sphere R=%.3g m", b.R) }

// Point implements Body.
func (b *Sphere) Point(s float64) (x, r float64) {
	phi := s / b.R
	return b.R * (1 - math.Cos(phi)), b.R * math.Sin(phi)
}

// Angle implements Body.
func (b *Sphere) Angle(s float64) float64 { return math.Pi/2 - s/b.R }

// Curvature implements Body.
func (b *Sphere) Curvature(s float64) float64 { return 1 / b.R }

// NoseRadius implements Body.
func (b *Sphere) NoseRadius() float64 { return b.R }

// MaxS implements Body.
func (b *Sphere) MaxS() float64 { return b.R * math.Pi / 2 }

// --- Sphere-cone ---

// SphereCone is a spherically blunted cone: nose radius Rn, half angle
// ThetaC (rad), base radius Rb.
type SphereCone struct {
	Rn     float64
	ThetaC float64
	Rb     float64
	sTan   float64 // arc length of the sphere-cone tangency point
}

// NewSphereCone builds a blunted cone.
func NewSphereCone(rn, thetaC, rb float64) *SphereCone {
	return &SphereCone{Rn: rn, ThetaC: thetaC, Rb: rb, sTan: rn * (math.Pi/2 - thetaC)}
}

// Name implements Body.
func (b *SphereCone) Name() string {
	return fmt.Sprintf("sphere-cone Rn=%.3g m, theta=%.1f deg", b.Rn, b.ThetaC*180/math.Pi)
}

// Point implements Body.
func (b *SphereCone) Point(s float64) (x, r float64) {
	if s <= b.sTan {
		phi := s / b.Rn
		return b.Rn * (1 - math.Cos(phi)), b.Rn * math.Sin(phi)
	}
	// Tangency point.
	xt := b.Rn * (1 - math.Sin(b.ThetaC))
	rt := b.Rn * math.Cos(b.ThetaC)
	d := s - b.sTan
	return xt + d*math.Cos(b.ThetaC), rt + d*math.Sin(b.ThetaC)
}

// Angle implements Body.
func (b *SphereCone) Angle(s float64) float64 {
	if s <= b.sTan {
		return math.Pi/2 - s/b.Rn
	}
	return b.ThetaC
}

// Curvature implements Body.
func (b *SphereCone) Curvature(s float64) float64 {
	if s <= b.sTan {
		return 1 / b.Rn
	}
	return 0
}

// NoseRadius implements Body.
func (b *SphereCone) NoseRadius() float64 { return b.Rn }

// MaxS implements Body.
func (b *SphereCone) MaxS() float64 {
	rt := b.Rn * math.Cos(b.ThetaC)
	if b.Rb <= rt {
		return b.sTan
	}
	return b.sTan + (b.Rb-rt)/math.Sin(b.ThetaC)
}

// --- Hyperboloid ---

// Hyperboloid is an axisymmetric hyperboloid with nose radius Rn and
// asymptotic half angle ThetaA, the classic analytic blunt body used by
// era VSL codes. Parametrized numerically by arc length.
type Hyperboloid struct {
	Rn     float64
	ThetaA float64
	sGrid  []float64
	xGrid  []float64
	rGrid  []float64
}

// NewHyperboloid tabulates the hyperboloid x(r) = (sqrt(a^2 (1 + r^2/b^2)) - a)
// with a = Rn/tan^2(theta), b = a tan(theta), out to sMax arc length.
func NewHyperboloid(rn, thetaA, sMax float64) *Hyperboloid {
	h := &Hyperboloid{Rn: rn, ThetaA: thetaA}
	t2 := math.Tan(thetaA) * math.Tan(thetaA)
	a := rn / t2
	b := a * math.Tan(thetaA)
	// March in r, accumulating arc length.
	n := 4000
	h.sGrid = make([]float64, 0, n)
	h.xGrid = make([]float64, 0, n)
	h.rGrid = make([]float64, 0, n)
	s, x, r := 0.0, 0.0, 0.0
	h.sGrid = append(h.sGrid, 0)
	h.xGrid = append(h.xGrid, 0)
	h.rGrid = append(h.rGrid, 0)
	dr := rn / 400
	for s < sMax {
		rNew := r + dr
		xNew := a*math.Sqrt(1+rNew*rNew/(b*b)) - a
		ds := math.Hypot(xNew-x, rNew-r)
		s += ds
		x, r = xNew, rNew
		h.sGrid = append(h.sGrid, s)
		h.xGrid = append(h.xGrid, x)
		h.rGrid = append(h.rGrid, r)
	}
	return h
}

// Name implements Body.
func (b *Hyperboloid) Name() string {
	return fmt.Sprintf("hyperboloid Rn=%.3g m, theta=%.1f deg", b.Rn, b.ThetaA*180/math.Pi)
}

func (b *Hyperboloid) locate(s float64) (int, float64) {
	n := len(b.sGrid)
	if s <= 0 {
		return 0, 0
	}
	if s >= b.sGrid[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if b.sGrid[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, (s - b.sGrid[lo]) / (b.sGrid[lo+1] - b.sGrid[lo])
}

// Point implements Body.
func (b *Hyperboloid) Point(s float64) (x, r float64) {
	i, f := b.locate(s)
	return (1-f)*b.xGrid[i] + f*b.xGrid[i+1], (1-f)*b.rGrid[i] + f*b.rGrid[i+1]
}

// Angle implements Body.
func (b *Hyperboloid) Angle(s float64) float64 {
	i, _ := b.locate(s)
	j := i + 1
	dx := b.xGrid[j] - b.xGrid[i]
	dr := b.rGrid[j] - b.rGrid[i]
	// Tangent angle measured from the axis: pi/2 at the stagnation point,
	// approaching the asymptotic half angle far downstream.
	return math.Atan2(dr, dx)
}

// Curvature implements Body.
func (b *Hyperboloid) Curvature(s float64) float64 {
	ds := b.sGrid[len(b.sGrid)-1] / 2000
	a1 := b.Angle(s + ds)
	a0 := b.Angle(math.Max(s-ds, 0))
	return math.Abs(a1-a0) / (2 * ds)
}

// NoseRadius implements Body.
func (b *Hyperboloid) NoseRadius() float64 { return b.Rn }

// MaxS implements Body.
func (b *Hyperboloid) MaxS() float64 { return b.sGrid[len(b.sGrid)-1] }
