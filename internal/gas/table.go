package gas

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Table is a precomputed equilibrium EOS over a log-log (rho, e) rectangle,
// bilinearly interpolated. It makes the equilibrium model cheap enough for
// finite-volume inner loops (the paper's point about real-gas NS solvers
// needing "approximate but usefully accurate" models).
type Table struct {
	base       Model
	lnRho, lnE []float64
	p, T, a    []float64 // row-major [iRho*ne + iE], stored as ln(p), T, a
	nr, ne     int
	name       string
}

// NewTable samples the given model over rho in [rhoMin, rhoMax] and e in
// [eMin, eMax] (both log-spaced, nr x ne nodes) in parallel and returns the
// interpolating table.
func NewTable(base Model, rhoMin, rhoMax, eMin, eMax float64, nr, ne int) (*Table, error) {
	if nr < 2 || ne < 2 {
		return nil, fmt.Errorf("gas: table needs at least 2x2 nodes")
	}
	if rhoMin <= 0 || eMin <= 0 || rhoMax <= rhoMin || eMax <= eMin {
		return nil, fmt.Errorf("gas: bad table bounds")
	}
	t := &Table{
		base:  base,
		lnRho: logspace(rhoMin, rhoMax, nr),
		lnE:   logspace(eMin, eMax, ne),
		p:     make([]float64, nr*ne),
		T:     make([]float64, nr*ne),
		a:     make([]float64, nr*ne),
		nr:    nr, ne: ne,
		name: base.Name() + " (table)",
	}
	// Fill rows in parallel; each worker owns a private model clone when the
	// base is an *Equilibrium (its warm start is not goroutine safe).
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > nr {
		workers = nr
	}
	errs := make([]error, workers)
	rows := make(chan int, nr)
	for i := 0; i < nr; i++ {
		rows <- i
	}
	close(rows)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := base
			if eqm, ok := base.(*Equilibrium); ok {
				model = NewEquilibrium(eqm.Mix, eqm.Y0)
			}
			for i := range rows {
				rho := math.Exp(t.lnRho[i])
				for j := 0; j < t.ne; j++ {
					e := math.Exp(t.lnE[j])
					p, T, a, err := model.PrimState(rho, e)
					if err != nil {
						errs[w] = fmt.Errorf("gas: table node (%d,%d): %w", i, j, err)
						return
					}
					t.p[i*t.ne+j] = math.Log(p)
					t.T[i*t.ne+j] = T
					t.a[i*t.ne+j] = a
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func logspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	for i := range out {
		out[i] = la + (lb-la)*float64(i)/float64(n-1)
	}
	return out
}

// Name implements Model.
func (t *Table) Name() string { return t.name }

// locate returns the cell index and fraction for value v in the sorted grid.
func locate(grid []float64, v float64) (int, float64) {
	n := len(grid)
	if v <= grid[0] {
		return 0, 0
	}
	if v >= grid[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if grid[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, (v - grid[lo]) / (grid[lo+1] - grid[lo])
}

// PrimState implements Model by bilinear interpolation in (ln rho, ln e).
func (t *Table) PrimState(rho, e float64) (p, T, a float64, err error) {
	if rho <= 0 || e <= 0 {
		return 0, 0, 0, fmt.Errorf("gas: nonphysical table query rho=%g e=%g", rho, e)
	}
	i, fi := locate(t.lnRho, math.Log(rho))
	j, fj := locate(t.lnE, math.Log(e))
	bilin := func(v []float64) float64 {
		v00 := v[i*t.ne+j]
		v01 := v[i*t.ne+j+1]
		v10 := v[(i+1)*t.ne+j]
		v11 := v[(i+1)*t.ne+j+1]
		return (1-fi)*((1-fj)*v00+fj*v01) + fi*((1-fj)*v10+fj*v11)
	}
	p = math.Exp(bilin(t.p))
	T = bilin(t.T)
	a = bilin(t.a)
	return p, T, a, nil
}

// EnergyPT implements Model by delegating to the base model (used only for
// boundary setup, never in inner loops).
func (t *Table) EnergyPT(p, T float64) (rho, e float64, err error) {
	return t.base.EnergyPT(p, T)
}
