// Package gas defines the gas-model abstraction shared by the flow solvers:
// the mapping between conserved quantities (density, specific internal
// energy) and primitive quantities (pressure, temperature, sound speed),
// for a calorically perfect ideal gas and for air in local thermochemical
// equilibrium. The equilibrium model is available in an exact form (a Gibbs
// solve per query) and as a precomputed log-log table for the finite-volume
// solvers' inner loops.
package gas

import (
	"fmt"
	"math"

	"cataero/internal/chem"
	"cataero/internal/thermo"
)

// Model converts between (rho, e) and primitive thermodynamic state.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// PrimState returns pressure, temperature and the sound speed used for
	// wave-speed estimates, given density and specific internal energy.
	PrimState(rho, e float64) (p, T, a float64, err error)
	// EnergyPT returns density and specific internal energy at (p, T);
	// used to set boundary and initial states.
	EnergyPT(p, T float64) (rho, e float64, err error)
}

// Ideal is a calorically perfect gas with ratio of specific heats Gamma and
// specific gas constant R.
type Ideal struct {
	Gamma float64
	Rgas  float64
}

// NewIdealAir returns the standard gamma=1.4 air model.
func NewIdealAir() *Ideal { return &Ideal{Gamma: 1.4, Rgas: 287.05} }

// NewIdeal returns an ideal gas with the given gamma and R.
func NewIdeal(gamma, r float64) *Ideal { return &Ideal{Gamma: gamma, Rgas: r} }

// Name implements Model.
func (g *Ideal) Name() string { return fmt.Sprintf("ideal (gamma=%.3g)", g.Gamma) }

// PrimState implements Model.
//
//cataero:hotpath
func (g *Ideal) PrimState(rho, e float64) (p, T, a float64, err error) {
	if rho <= 0 || e <= 0 {
		//cataero:allow hotpath cold branch: only nonphysical states pay the format
		return 0, 0, 0, fmt.Errorf("gas: nonphysical ideal state rho=%g e=%g", rho, e)
	}
	p = (g.Gamma - 1) * rho * e
	cv := g.Rgas / (g.Gamma - 1)
	T = e / cv
	a = math.Sqrt(g.Gamma * p / rho)
	return p, T, a, nil
}

// EnergyPT implements Model.
func (g *Ideal) EnergyPT(p, T float64) (rho, e float64, err error) {
	if p <= 0 || T <= 0 {
		return 0, 0, fmt.Errorf("gas: nonphysical ideal state p=%g T=%g", p, T)
	}
	rho = p / (g.Rgas * T)
	e = g.Rgas / (g.Gamma - 1) * T
	return rho, e, nil
}

// Equilibrium is air (or any mixture) in local thermochemical equilibrium:
// every query performs a Gibbs equilibrium solve. Exact but relatively
// expensive; use NewTable for solver inner loops.
type Equilibrium struct {
	Mix *thermo.Mixture
	Eq  *chem.EquilibriumSolver
	Y0  []float64 // reference (element-defining) composition
	// EFloor shifts internal energies so they stay positive for cold states
	// (formation-enthalpy zero can make e negative for dissociated mixtures;
	// the solvers carry e relative to 0 K mixture enthalpy).
	lastT float64
}

// NewEquilibriumAir returns the exact equilibrium air model over the
// 11-species set.
func NewEquilibriumAir() *Equilibrium {
	m := thermo.NewMixture(thermo.AirSpecies11())
	return &Equilibrium{
		Mix: m,
		Eq:  chem.NewEquilibriumSolver(m),
		Y0:  thermo.AirFreestreamMassFractions(m.Species),
	}
}

// NewEquilibrium returns an equilibrium model for an arbitrary mixture and
// reference composition.
func NewEquilibrium(m *thermo.Mixture, y0 []float64) *Equilibrium {
	return &Equilibrium{Mix: m, Eq: chem.NewEquilibriumSolver(m), Y0: y0}
}

// Name implements Model.
func (g *Equilibrium) Name() string { return "equilibrium" }

// PrimState implements Model.
func (g *Equilibrium) PrimState(rho, e float64) (p, T, a float64, err error) {
	if rho <= 0 {
		return 0, 0, 0, fmt.Errorf("gas: nonphysical equilibrium state rho=%g", rho)
	}
	T, y, err := g.Eq.TemperatureRhoE(rho, e, g.Y0, g.lastT)
	if err != nil {
		return 0, 0, 0, err
	}
	g.lastT = T
	p = g.Mix.Pressure(rho, T, y)
	a, err = g.soundSpeed(rho, e, p, T, y)
	if err != nil {
		return 0, 0, 0, err
	}
	return p, T, a, nil
}

// soundSpeed returns the equilibrium sound speed from
// a^2 = (dp/drho)_e + (p/rho^2)(dp/de)_rho by centered differences on the
// equilibrium EOS (shifted states reuse the warm start, so this is cheap).
func (g *Equilibrium) soundSpeed(rho, e, p, T float64, y []float64) (float64, error) {
	pOf := func(rho, e float64) (float64, error) {
		Ti, yi, err := g.Eq.TemperatureRhoE(rho, e, g.Y0, T)
		if err != nil {
			return 0, err
		}
		return g.Mix.Pressure(rho, Ti, yi), nil
	}
	dr := 1e-4 * rho
	de := 1e-4 * math.Abs(e)
	if de == 0 {
		de = 1
	}
	pr1, err := pOf(rho+dr, e)
	if err != nil {
		return 0, err
	}
	pr0, err := pOf(rho-dr, e)
	if err != nil {
		return 0, err
	}
	pe1, err := pOf(rho, e+de)
	if err != nil {
		return 0, err
	}
	pe0, err := pOf(rho, e-de)
	if err != nil {
		return 0, err
	}
	dpdr := (pr1 - pr0) / (2 * dr)
	dpde := (pe1 - pe0) / (2 * de)
	a2 := dpdr + p/(rho*rho)*dpde
	if a2 <= 0 {
		// Defensive: fall back to the frozen sound speed.
		return g.Mix.SoundSpeedFrozen(T, y), nil
	}
	return math.Sqrt(a2), nil
}

// EnergyPT implements Model.
func (g *Equilibrium) EnergyPT(p, T float64) (rho, e float64, err error) {
	y, rho, err := g.Eq.CompositionPT(p, T, g.Y0)
	if err != nil {
		return 0, 0, err
	}
	return rho, g.Mix.EInternal(T, y), nil
}

// Composition returns the equilibrium mass fractions at (rho, T).
func (g *Equilibrium) Composition(rho, T float64) ([]float64, error) {
	return g.Eq.CompositionRhoT(rho, T, g.Y0)
}
