package gas

import (
	"math"
	"testing"
)

func TestIdealRoundTrip(t *testing.T) {
	g := NewIdealAir()
	rho, e, err := g.EnergyPT(101325, 288.15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.225) > 0.01 {
		t.Errorf("rho=%g want 1.225", rho)
	}
	p, T, a, err := g.PrimState(rho, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-101325) > 1 || math.Abs(T-288.15) > 0.01 {
		t.Errorf("round trip p=%g T=%g", p, T)
	}
	if math.Abs(a-340.3) > 1 {
		t.Errorf("a=%g want ~340", a)
	}
}

func TestIdealErrors(t *testing.T) {
	g := NewIdealAir()
	if _, _, _, err := g.PrimState(-1, 1); err == nil {
		t.Error("negative rho accepted")
	}
	if _, _, err := g.EnergyPT(0, 300); err == nil {
		t.Error("zero p accepted")
	}
}

func TestEquilibriumColdMatchesIdeal(t *testing.T) {
	// At 300 K equilibrium air is just frozen N2/O2; p and T from the
	// equilibrium model should match the ideal gas closely.
	eqm := NewEquilibriumAir()
	rho, e, err := eqm.EnergyPT(101325, 300)
	if err != nil {
		t.Fatal(err)
	}
	p, T, a, err := eqm.PrimState(rho, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-101325) > 200 {
		t.Errorf("p=%g want ~101325", p)
	}
	if math.Abs(T-300) > 1 {
		t.Errorf("T=%g want 300", T)
	}
	if math.Abs(a-347) > 6 {
		t.Errorf("a=%g want ~347", a)
	}
}

func TestEquilibriumHotDissociated(t *testing.T) {
	eqm := NewEquilibriumAir()
	// A strongly heated state: rho=0.01, T=8000 K.
	rho := 0.01
	y, err := eqm.Composition(rho, 8000)
	if err != nil {
		t.Fatal(err)
	}
	e := eqm.Mix.EInternal(8000, y)
	p, T, a, err := eqm.PrimState(rho, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-8000) > 40 {
		t.Errorf("T=%g want 8000", T)
	}
	// Dissociation raises the particle count: p above frozen-air value.
	pFrozen := rho * 287 * 8000
	if p < 1.2*pFrozen {
		t.Errorf("p=%g should exceed frozen %g by >20%%", p, pFrozen)
	}
	// Equilibrium sound speed is positive and plausible (km/s scale).
	if a < 1000 || a > 4000 {
		t.Errorf("a=%g outside plausible range", a)
	}
}

func TestEquilibriumSoundSpeedBelowFrozen(t *testing.T) {
	// In reacting regions the equilibrium sound speed is typically below
	// the frozen sound speed.
	eqm := NewEquilibriumAir()
	rho := 0.05
	T := 5000.0
	y, err := eqm.Composition(rho, T)
	if err != nil {
		t.Fatal(err)
	}
	e := eqm.Mix.EInternal(T, y)
	_, Tgot, a, err := eqm.PrimState(rho, e)
	if err != nil {
		t.Fatal(err)
	}
	frozen := eqm.Mix.SoundSpeedFrozen(Tgot, y)
	if a > frozen*1.05 {
		t.Errorf("a_eq=%g exceeds frozen %g", a, frozen)
	}
}

func TestTableMatchesExact(t *testing.T) {
	eqm := NewEquilibriumAir()
	tab, err := NewTable(eqm, 1e-4, 1.0, 2e5, 3e7, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at off-node states.
	for _, c := range []struct{ rho, e float64 }{
		{0.001, 1e6}, {0.01, 5e6}, {0.1, 2e7}, {0.3, 8e5},
	} {
		pe, Te, ae, err := eqm.PrimState(c.rho, c.e)
		if err != nil {
			t.Fatal(err)
		}
		pt, Tt, at, err := tab.PrimState(c.rho, c.e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pt-pe)/pe > 0.03 {
			t.Errorf("rho=%g e=%g: table p=%g exact %g", c.rho, c.e, pt, pe)
		}
		if math.Abs(Tt-Te)/Te > 0.03 {
			t.Errorf("rho=%g e=%g: table T=%g exact %g", c.rho, c.e, Tt, Te)
		}
		if math.Abs(at-ae)/ae > 0.05 {
			t.Errorf("rho=%g e=%g: table a=%g exact %g", c.rho, c.e, at, ae)
		}
	}
}

func TestTableClampsOutOfRange(t *testing.T) {
	g := NewIdealAir()
	tab, err := NewTable(g, 1e-3, 1, 1e5, 1e7, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Queries beyond the bounds do not error; they clamp to the edge cell.
	if _, _, _, err := tab.PrimState(10, 1e8); err != nil {
		t.Errorf("clamped query errored: %v", err)
	}
	if _, _, _, err := tab.PrimState(-1, 1e6); err == nil {
		t.Error("negative rho should error")
	}
}

func TestTableBadBounds(t *testing.T) {
	g := NewIdealAir()
	if _, err := NewTable(g, 1, 1e-3, 1e5, 1e7, 8, 8); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewTable(g, 1e-3, 1, 1e5, 1e7, 1, 8); err == nil {
		t.Error("degenerate grid accepted")
	}
}
