package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one whole-program check. Unlike go/analysis passes, Run sees
// the entire loaded program at once: the domain rules here (hot-path call
// closures, registry/enumerator drift) are inherently cross-package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// Directive comments understood by the suite:
//
//	//cataero:hotpath
//	    marks a function as a hot-path root for the hotpath analyzer
//	//cataero:allow <analyzer> [reason]
//	    suppresses <analyzer> diagnostics on the same or next source line
type directive struct {
	line int    // line the directive comment starts on
	verb string // "hotpath", "allow", ...
	args string // remainder after the verb
}

const directivePrefix = "//cataero:"

func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			out = append(out, directive{
				line: fset.Position(c.Pos()).Line,
				verb: verb,
				args: strings.TrimSpace(args),
			})
		}
	}
	return out
}

// Suppressed reports whether an "//cataero:allow <analyzer>" directive covers
// the given position (same line or the line immediately above).
func (pkg *Package) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, d := range pkg.directives {
		if d.verb != "allow" {
			continue
		}
		name, _, _ := strings.Cut(d.args, " ")
		if name != analyzer {
			continue
		}
		if d.line == line || d.line == line-1 {
			return true
		}
	}
	return false
}

// hasDirective reports whether fd's doc comment carries the given
// //cataero:<verb> directive.
func hasDirective(fd *ast.FuncDecl, verb string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directivePrefix) {
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			v, _, _ := strings.Cut(rest, " ")
			if v == verb {
				return true
			}
		}
	}
	return false
}

// report appends a diagnostic unless a suppression directive covers it.
func report(prog *Program, pkg *Package, out *[]Diagnostic, analyzer string, pos token.Pos, format string, args ...any) {
	if pkg.Suppressed(prog.Fset, analyzer, pos) {
		return
	}
	*out = append(*out, Diagnostic{
		Pos:      prog.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the analyzer suite configured for this repository.
func All() []*Analyzer {
	return []*Analyzer{
		HotPath(
			IfaceRoot{Pkg: "internal/fvm", Iface: "BatchFluxKernel", Method: "BatchFlux"},
			// Stepper.Step is the per-time-step unit the integrator registry
			// dispatches to: rooting it keeps the whole batched LHS-assembly
			// closure (assembleLineJ/assembleLineI, jacPlanes, the batched
			// block-tridiagonal factor/solve) covered even if an annotation
			// on an interior function is dropped.
			IfaceRoot{Pkg: "internal/fvm", Iface: "Stepper", Method: "Step"},
		),
		Registry(CataeroFamilies()...),
		CtxLoop("internal/fvm", "internal/vsl", "internal/pns", "internal/ns", "internal/euler", "internal/blayer"),
		PhysConst("internal/thermo", "internal/gas", "internal/transport", "internal/chem"),
	}
}

// ByName returns the named analyzers from All, or an error naming the
// unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}
