// Package lint implements cataero's domain-specific static-analysis suite:
// a small, dependency-free analysis framework in the spirit of
// golang.org/x/tools/go/analysis (which is not vendored here — the module is
// intentionally stdlib-only) plus the four project analyzers described in
// README.md: hotpath, registry, ctxloop and physconst.
//
// The loader shells out to `go list -export -deps -json`, type-checks every
// module package from source (so analyzers share one *types.Package identity
// space and can chase calls across package boundaries), and imports
// out-of-module dependencies from the compiler export data the go command
// already produced into its build cache.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one source-type-checked module package.
type Package struct {
	Path  string // import path, e.g. "cataero/internal/fvm"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives []directive
}

// Program is a loaded, type-checked view of the packages an analyzer run
// covers: the pattern-matched targets plus every in-module dependency.
type Program struct {
	Fset    *token.FileSet
	Pkgs    []*Package // all source-checked packages, dependency order
	Targets []*Package // the subset matched by the load patterns

	byPath map[string]*Package
	decls  map[*types.Func]*FuncDecl
}

// FuncDecl ties a function object to its syntax and owning package.
type FuncDecl struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load runs `go list -export -deps -json patterns...` in dir (a directory
// inside the module) and type-checks every in-module package from source.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,Standard,DepOnly,GoFiles,Imports,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		decls:  make(map[*types.Func]*FuncDecl),
	}
	exports := make(map[string]string) // import path -> export data file
	var module []*listPkg              // in-module packages, already dep-first
	for _, p := range pkgs {
		if p.Error != nil && p.Module != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module != nil && !p.Standard {
			module = append(module, p)
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	imp := &progImporter{prog: prog}
	imp.gc = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	// go list -deps emits dependencies before dependents, so a single pass
	// type-checks the module in topological order.
	for _, lp := range module {
		pkg, err := prog.check(lp, imp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
		if !lp.DepOnly {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	if len(prog.Targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}

func (prog *Program) check(lp *listPkg, imp types.Importer) (*Package, error) {
	pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir}
	for _, name := range lp.GoFiles {
		fn := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(prog.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.directives = append(pkg.directives, fileDirectives(prog.Fset, f)...)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.decls[obj] = &FuncDecl{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return pkg, nil
}

// progImporter resolves module packages to their source-checked types and
// everything else through compiler export data.
type progImporter struct {
	prog *Program
	gc   types.Importer
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.prog.byPath[path]; ok {
		return p.Types, nil
	}
	return im.gc.Import(path)
}

// Package returns the loaded package with the given import path, or whose
// path ends in "/"+suffix, or nil.
func (prog *Program) Package(suffix string) *Package {
	if p, ok := prog.byPath[suffix]; ok {
		return p
	}
	for _, p := range prog.Pkgs {
		if strings.HasSuffix(p.Path, "/"+suffix) {
			return p
		}
	}
	return nil
}

// DeclOf returns the syntax of fn if it was loaded from source, else nil.
func (prog *Program) DeclOf(fn *types.Func) *FuncDecl { return prog.decls[fn] }

// Position resolves a token position against the shared file set.
func (prog *Program) Position(pos token.Pos) token.Position {
	return prog.Fset.Position(pos)
}

// SortDiagnostics orders diagnostics by file, line and column.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Message < ds[j].Message
	})
}
