package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop returns the ctxloop analyzer: in the given packages, march and
// iteration loops inside context-taking functions must poll ctx.Err() or
// ctx.Done(), or pass the context to a callee that does. The rule keeps
// every solve cancellable as new loops are added.
//
// A loop is a candidate when its trip count is not a compile-time constant
// and its body does real work (a call into module code or through a func
// value). A candidate is satisfied when its body — or an enclosing loop's
// body, which re-polls every outer iteration — references any
// context.Context value. Loops that are intentionally uncancellable carry
// `//cataero:allow ctxloop <reason>`.
func CtxLoop(pkgSuffixes ...string) *Analyzer {
	return &Analyzer{
		Name: "ctxloop",
		Doc:  "march/iteration loops in solver packages must poll ctx cancellation",
		Run: func(prog *Program) []Diagnostic {
			var diags []Diagnostic
			for _, pkg := range prog.Pkgs {
				if !pkgMatches(pkg.Path, pkgSuffixes) {
					continue
				}
				for _, file := range pkg.Files {
					for _, d := range file.Decls {
						fd, ok := d.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						if !hasCtxParam(pkg, fd) {
							continue // uncancellable by design (e.g. a single Step)
						}
						w := ctxWalk{prog: prog, pkg: pkg, out: &diags}
						w.stmts(fd.Body.List)
					}
				}
			}
			SortDiagnostics(diags)
			return diags
		},
	}
}

func pkgMatches(path string, suffixes []string) bool {
	if len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if path == s || hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix)+1 && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}

func hasCtxParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if isContextType(pkg.Info.TypeOf(p.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

type ctxWalk struct {
	prog *Program
	pkg  *Package
	out  *[]Diagnostic
}

// stmts walks a statement list, recursing into control flow but treating
// loops specially: a polling loop covers everything inside it, a flagged
// loop is reported once, and anything else is descended into.
func (w *ctxWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		ast.Inspect(s, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup runs once at exit; no polling
			case *ast.ForStmt:
				body = l.Body
				if w.loop(n, l.Cond, body) {
					return false
				}
			case *ast.RangeStmt:
				body = l.Body
				if w.loop(n, nil, body) {
					return false
				}
			default:
				return true
			}
			// Loop neither polls nor is a candidate (e.g. constant-bounded):
			// keep scanning its body for nested loops.
			w.stmts(body.List)
			return false
		})
	}
}

// loop classifies one loop. It returns true when the subtree is fully
// handled (polled and therefore covered, or flagged).
func (w *ctxWalk) loop(n ast.Node, cond ast.Expr, body *ast.BlockStmt) bool {
	if referencesContext(w.pkg, body) {
		return true // polls (or hands ctx to a callee) every iteration
	}
	if constantBound(w.pkg, cond) {
		return false
	}
	if !hasSignificantCall(w.prog, w.pkg, body) {
		return false
	}
	report(w.prog, w.pkg, w.out, "ctxloop", n.Pos(),
		"loop does real work but never polls ctx.Err()/ctx.Done(); poll, pass ctx to a callee, or annotate //cataero:allow ctxloop")
	return true
}

// referencesContext reports whether the body mentions any context.Context
// value (ctx.Err(), select on ctx.Done(), or passing ctx along).
func referencesContext(pkg *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// constantBound reports whether the loop condition compares against a
// compile-time constant (a fixed, finite trip count).
func constantBound(pkg *Package, cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if tv, ok := pkg.Info.Types[side]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// hasSignificantCall reports whether the body calls into module code or
// through a func value — work worth interrupting, as opposed to pure
// arithmetic and stdlib math.
func hasSignificantCall(prog *Program, pkg *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := ast.Unparen(c.Fun).(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fun].(type) {
			case *types.Builtin:
			case *types.Func:
				if inModule(prog, obj) {
					found = true
				}
			case *types.Var:
				found = true // func value: opaque, assume expensive
			case nil:
				// conversion or unresolved: ignore
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fun]; ok {
				switch obj := sel.Obj().(type) {
				case *types.Func:
					if inModule(prog, obj) {
						found = true
					}
				case *types.Var:
					found = true // func-typed field
				}
			} else if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if inModule(prog, obj) {
					found = true
				}
			}
		default:
			found = true // call through an arbitrary expression
		}
		return !found
	})
	return found
}

// inModule reports whether the object is declared in a package loaded from
// source (i.e. inside this module), including interface methods declared on
// module interfaces.
func inModule(prog *Program, obj types.Object) bool {
	p := obj.Pkg()
	return p != nil && prog.byPath[p.Path()] != nil
}
