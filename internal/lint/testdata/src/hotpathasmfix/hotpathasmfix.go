// Package hotpathasmfix exercises the Stepper-rooted half of the hotpath
// analyzer: Step methods on types satisfying Stepper are hot-path roots, and
// the closure must reach the batched assembly helpers they call even when
// those helpers carry no annotation of their own — dropping a directive off
// an interior assembly function must not exempt it from the no-allocation
// rule. The `// want` comments are matched by TestHotPathAssemblyFixture.
package hotpathasmfix

// Stepper mimics fvm.Stepper for the fixture.
type Stepper interface {
	Step() float64
}

// clean is a well-formed stepper: annotated, and its batched assembly
// helper writes only into preallocated planes.
type clean struct {
	a, b, c []float64
}

// Step is the well-formed implementation.
//
//cataero:hotpath
func (s *clean) Step() float64 {
	assembleBatch(s.a, s.b, s.c)
	return s.c[0]
}

// assembleBatch is an unannotated batched assembly helper; it enters the
// closure through clean.Step and must stay silent because it does not
// allocate.
func assembleBatch(a, b, c []float64) {
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

// leaky implements Stepper without the annotation: the analyzer must demand
// the directive at the declaration and still traverse into its unannotated
// assembly helper, whose per-step allocations are flagged.
type leaky struct {
	n int
}

func (s *leaky) Step() float64 { // want "implements src/hotpathasmfix.Stepper and runs inside the per-step sweeps"
	return assembleFresh(s.n)
}

// assembleFresh rebuilds its block planes every call — the exact mistake the
// batched-assembly rules exist to catch.
func assembleFresh(n int) float64 {
	plane := make([]float64, 16*n) // want "make allocates"
	for i := range plane {
		plane[i] = 1
	}
	return plane[0]
}

// narrower has a Step method that does NOT satisfy Stepper (wrong
// signature): it is off the hot path and its make must stay silent.
type narrower struct{}

func (narrower) Step() (float64, error) {
	_ = make([]float64, 4)
	return 0, nil
}

var (
	_ Stepper = &clean{}
	_ Stepper = &leaky{}
)
