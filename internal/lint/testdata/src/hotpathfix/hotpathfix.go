// Package hotpathfix exercises the hotpath analyzer: root trips each
// allocation rule once, root2 pulls helper into the closure through a static
// call, and clean must stay silent. The `// want` comments are matched by
// TestHotPathFixture.
package hotpathfix

import "fmt"

type pair struct{ x, y float64 }

type doer interface{ do() }

type nop struct{}

func (nop) do() {}

// root trips the direct allocation rules.
//
//cataero:hotpath
func root(n int, s string) float64 {
	buf := make([]float64, n)        // want "make allocates"
	ys := []float64{1, 2}            // want "slice literal allocates"
	seen := map[int]bool{}           // want "map literal allocates"
	p := &pair{x: 1}                 // want "&composite literal escapes to the heap"
	f := func() float64 { return 0 } // want "function literal allocates a closure"
	b := []byte(s)                   // want "string to \[\]byte conversion copies"
	s2 := s + "!"                    // want "string concatenation allocates"
	var d doer
	d = nop{}      // want "value boxed into interface"
	d.do()         // dynamic dispatch: not traversed, annotate the impl instead
	fmt.Println(n) // want "call into package fmt allocates" "argument boxed into interface"
	for i := 0; i < n; i++ {
		defer f() // want "defer inside a loop allocates and delays cleanup"
	}
	//cataero:allow hotpath fixture: a proven-cold formatting branch
	extra := fmt.Sprintln(n)
	return buf[0] + ys[0] + float64(len(seen)) + p.x + f() +
		float64(len(b)) + float64(len(s2)) + float64(len(extra))
}

// helper is not annotated; it inherits the contract from root2's static call.
func helper(dst []int, v int) []int {
	return append(dst, v) // want "append may grow its backing array"
}

// root2 pulls helper into the hot closure.
//
//cataero:hotpath
func root2(dst []int) []int {
	return helper(dst, 1)
}

// clean is annotated and allocation-free: array values, plain arithmetic and
// a static call to another clean function produce no diagnostics.
//
//cataero:hotpath
func clean(a, b float64) [4]float64 {
	var out [4]float64
	out[0] = a + b
	out[1] = a * b
	out[2] = square(a)
	out[3] = square(b)
	return out
}

func square(a float64) float64 { return a * a }
