// Package physconstfix exercises the physconst analyzer: unambiguous
// physical constants are flagged anywhere, ambiguous values (1.4, 110.4) only
// with a hinted name or statement co-occurrence. The `// want` comments are
// matched by TestPhysConstFixture.
package physconstfix

// Unambiguous values are flagged wherever they appear.
const rAir = 287.05 // want "magic number 287.05 is the air specific gas constant"

var atm = 101325 // want "magic number 101325 is the standard atmosphere"

// Perfect is the classic p = rho*R*T with the magic R.
func Perfect(rho, t float64) float64 {
	return rho * 287.05 * t // want "use thermo.RAir"
}

// A plain 1.4 with no physical meaning stays exempt.
const refitMargin = 1.4

// A hinted name promotes the ambiguous value to a finding.
const gammaCold = 1.4 // want "ratio of specific heats"

// SoundSpeedSq co-locates 1.4 with 287.05, disambiguating both.
func SoundSpeedSq(t float64) float64 {
	return 1.4 * 287.05 * t // want "ratio of specific heats" "air specific gas constant"
}

// Viscosity uses the Sutherland coefficient, unambiguous at full precision.
func Viscosity(t float64) float64 {
	return 1.458e-6 * t // want "Sutherland viscosity coefficient"
}

// The Sutherland temperature needs a hinted name...
var sutherlandT = 110.4 // want "Sutherland temperature"

// ...and without one it is just a number.
var tJunction = 110.4

func use(a, b float64) float64 { return a + b }

var _ = use(rAir, use(float64(atm), use(refitMargin, use(gammaCold, use(sutherlandT, tJunction)))))
