// Package ok is configured as a property package in TestPhysConstFixture:
// these constants are where they belong and stay unflagged.
package ok

// RAir is the fixture's blessed home for the air gas constant.
const RAir = 287.05

// Sutherland returns the fixture's blessed viscosity law.
func Sutherland(t float64) float64 {
	return 1.458e-6 * t * t / (t + 110.4)
}
