// Package reg is the well-formed registry of the registry-analyzer fixture:
// constant names, an exported enumerator, and implementations whose Name()
// methods return constants. TestRegistryFixture checks it stays silent.
package reg

// Widget is the registered implementation interface.
type Widget interface{ Name() string }

// Exported name constants; consumers must use these instead of bare strings.
const (
	WidgetAlpha = "alpha"
	WidgetBeta  = "beta"
)

var widgets = map[string]Widget{}

// RegisterWidget adds an implementation under its Name().
func RegisterWidget(w Widget) { widgets[w.Name()] = w }

type alphaWidget struct{}

func (alphaWidget) Name() string { return WidgetAlpha }

type betaWidget struct{}

func (betaWidget) Name() string { return WidgetBeta }

func init() {
	RegisterWidget(alphaWidget{})
	RegisterWidget(betaWidget{})
}

// Widgets enumerates the registered names.
func Widgets() []string {
	out := make([]string, 0, len(widgets))
	for k := range widgets {
		out = append(out, k)
	}
	return out
}
