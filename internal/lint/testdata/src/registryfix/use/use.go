// Package use consumes the fixture registries: it wires the fail-fast call
// and the case-spec surface for the well-formed family, and spells two
// registry names as bare literals the analyzer must flag.
package use

import "cataero/internal/lint/testdata/src/registryfix/reg"

// Spec is the fixture case-spec surface.
type Spec struct {
	Widget string `json:"widget"`
}

// Build resolves the spec's widget choice.
func Build(s Spec) string {
	if s.Widget == "" {
		return reg.WidgetAlpha
	}
	return s.Widget
}

// Known wires the fail-fast enumerator call.
func Known() []string { return reg.Widgets() }

// Bad spells registry names as bare literals.
func Bad() (string, string) {
	return "alpha", "gamma" // want "bare widget name .alpha." "bare orphan widget name .gamma."
}
