// Package classes is the class-keyed registry of the registry-analyzer
// fixture: ClassB is registered but missing from the classNames map, so the
// analyzer must flag the drift at the map.
package classes

// Class keys the registry.
type Class int

// The registered classes.
const (
	ClassA Class = iota
	ClassB
)

// Solver is the registered implementation.
type Solver struct{}

var registry = map[Class]Solver{}

// Register adds a solver under its class.
func Register(c Class, s Solver) { registry[c] = s }

var classNames = map[Class]string{ // want "registered solver classes .* disagree"
	ClassA: "a",
}

func init() {
	Register(ClassA, Solver{})
	Register(ClassB, Solver{})
}
