// Package regbad is the ill-formed registry of the registry-analyzer
// fixture: it registers a widget but exports no enumerator, so nothing
// outside the package can discover the name.
package regbad

// Widget is the registered implementation interface.
type Widget interface{ Name() string }

var widgets = map[string]Widget{}

// RegisterWidget adds an implementation under its Name().
func RegisterWidget(w Widget) { widgets[w.Name()] = w }

type gammaWidget struct{}

func (gammaWidget) Name() string { return "gamma" }

func init() {
	RegisterWidget(gammaWidget{}) // want "has no exported enumerator Widgets"
}
