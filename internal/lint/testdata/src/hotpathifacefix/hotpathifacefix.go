// Package hotpathifacefix exercises the interface-rooted half of the
// hotpath analyzer: methods named Batch on types satisfying Batcher are
// hot-path roots whether or not they carry the annotation, and the analyzer
// demands the annotation so the contract stays visible at the declaration.
// The `// want` comments are matched by TestHotPathIfaceFixture.
package hotpathifacefix

// Batcher mimics fvm.BatchFluxKernel for the fixture.
type Batcher interface {
	Batch(dst []float64, n int)
}

// annotated implements Batcher the right way: marked and allocation-free.
type annotated struct{}

// Batch is the well-formed implementation.
//
//cataero:hotpath
func (annotated) Batch(dst []float64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = float64(i)
	}
}

// bare implements Batcher without the annotation: the analyzer must still
// pull Batch into the closure (the make is flagged) and ask for the
// directive at the declaration.
type bare struct{}

func (bare) Batch(dst []float64, n int) { // want "implements src/hotpathifacefix.Batcher and runs inside the per-step sweeps"
	tmp := make([]float64, n) // want "make allocates"
	copy(dst, tmp)
}

// ptr implements Batcher through a pointer receiver; the check must see the
// pointer method set.
type ptr struct{ scratch []float64 }

// Batch is annotated and clean.
//
//cataero:hotpath
func (p *ptr) Batch(dst []float64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = p.scratch[i%len(p.scratch)]
	}
}

// unrelated has a Batch method that does NOT satisfy Batcher (wrong
// signature): it is off the hot path and its append must stay silent.
type unrelated struct{}

func (unrelated) Batch(dst []int) []int { return append(dst, 1) }

var (
	_ Batcher = annotated{}
	_ Batcher = bare{}
	_ Batcher = &ptr{}
)
