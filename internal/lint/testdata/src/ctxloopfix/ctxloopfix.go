// Package ctxloopfix exercises the ctxloop analyzer: Bad must be flagged,
// every other function shows an exemption the analyzer honors. The `// want`
// comments are matched by TestCtxLoopFixture.
package ctxloopfix

import "context"

type closer struct{}

func (closer) close() {}

func work(x float64) float64 { return x * x }

func workCtx(ctx context.Context, x float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return work(x)
}

// Bad marches over its input without ever polling: flagged.
func Bad(ctx context.Context, xs []float64) float64 {
	t := 0.0
	for _, x := range xs { // want "never polls ctx"
		t += work(x)
	}
	return t
}

// Polled is the model loop: an explicit ctx.Err() check every iteration.
func Polled(ctx context.Context, xs []float64) (float64, error) {
	t := 0.0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		t += work(x)
	}
	return t, nil
}

// Delegated hands ctx to the callee, which polls on the loop's behalf.
func Delegated(ctx context.Context, xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += workCtx(ctx, x)
	}
	return t
}

// ConstBound has a compile-time trip count: exempt.
func ConstBound(ctx context.Context, xs []float64) float64 {
	t := 0.0
	for i := 0; i < 4; i++ {
		t += work(xs[i])
	}
	return t
}

// PureMath does no significant work per iteration: exempt.
func PureMath(ctx context.Context, xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x*x + 2*x
	}
	return t
}

// OuterPolled polls in the outer loop, which re-checks every outer iteration
// and therefore covers the inner march.
func OuterPolled(ctx context.Context, grid [][]float64) float64 {
	t := 0.0
	for _, row := range grid {
		if ctx.Err() != nil {
			return t
		}
		for _, x := range row {
			t += work(x)
		}
	}
	return t
}

// DeferredCleanup loops inside a defer: cleanup runs once at exit, exempt.
func DeferredCleanup(ctx context.Context, cs []closer) error {
	defer func() {
		for _, c := range cs {
			c.close()
		}
	}()
	return ctx.Err()
}

// Allowed carries an explicit suppression with its reason.
func Allowed(ctx context.Context, xs []float64) float64 {
	t := 0.0
	//cataero:allow ctxloop one-off setup sweep, cheap per element
	for _, x := range xs {
		t += work(x)
	}
	return t
}

// NoCtx takes no context: uncancellable by design, out of scope.
func NoCtx(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += work(x)
	}
	return t
}
