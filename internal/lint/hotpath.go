package lint

import (
	"go/ast"
	"go/types"
)

// IfaceRoot seeds hot-path roots from interface implementations: every
// method named Method on a type satisfying the Iface interface (declared in
// the loaded package whose import path is or ends with "/"+Pkg) enters the
// hot call closure whether or not it is annotated, and the analyzer
// additionally demands the //cataero:hotpath annotation on each such method
// so the contract stays visible at the declaration. This is how the batched
// flux kernels are covered: implementing fvm.BatchFluxKernel puts a method
// inside the per-step sweeps, so forgetting the annotation must not exempt
// it from the no-allocation rule.
type IfaceRoot struct {
	Pkg    string // package declaring the interface, e.g. "internal/fvm"
	Iface  string // interface name, e.g. "BatchFluxKernel"
	Method string // implementing method to root, e.g. "BatchFlux"
}

// HotPath returns the hotpath analyzer: functions annotated
// //cataero:hotpath, every method rooted through an IfaceRoot, and every
// in-module function statically reachable from one, must not allocate. The
// per-step fvm paths hold 0 allocs/op (enforced dynamically by
// BenchmarkStep*); this is the static half of that contract.
//
// Flagged inside the hot call closure:
//   - append, make, new
//   - slice and map composite literals, &T{} literals
//   - function literals (closure allocation)
//   - implicit or explicit conversions to interface types
//   - calls into package fmt, string concatenation, string<->[]byte/[]rune
//   - defer inside a loop
//
// Dynamic dispatch (interface methods, func values) is not traversed:
// annotate the concrete implementations as roots instead. Individual lines
// are exempted with `//cataero:allow hotpath <reason>`.
func HotPath(ifaces ...IfaceRoot) *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "hot-path functions (//cataero:hotpath) and their static callees must not allocate",
		Run:  func(prog *Program) []Diagnostic { return runHotPath(prog, ifaces) },
	}
}

func runHotPath(prog *Program, ifaces []IfaceRoot) []Diagnostic {
	// Roots: annotated functions anywhere in the loaded source.
	reached := make(map[*types.Func]string) // how the function entered the closure
	var queue []*types.Func
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !hasDirective(fd, "hotpath") {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					reached[obj] = ""
					queue = append(queue, obj)
				}
			}
		}
	}

	var diags []Diagnostic

	// Interface-rooted methods: implementing the interface is what puts the
	// method on the hot path, so the closure does not depend on the author
	// remembering the annotation — but the annotation is still required.
	for _, ir := range ifaces {
		ipkg := prog.Package(ir.Pkg)
		if ipkg == nil {
			continue
		}
		obj := ipkg.Types.Scope().Lookup(ir.Iface)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Recv == nil || fd.Name.Name != ir.Method {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					recv := fn.Type().(*types.Signature).Recv().Type()
					if !types.Implements(recv, iface) && !types.Implements(types.NewPointer(recv), iface) {
						continue
					}
					if !hasDirective(fd, "hotpath") {
						report(prog, pkg, &diags, "hotpath", fd.Name.Pos(),
							"%s implements %s.%s and runs inside the per-step sweeps; annotate it //cataero:hotpath",
							fd.Name.Name, ir.Pkg, ir.Iface)
					}
					if _, seen := reached[fn]; !seen {
						reached[fn] = ""
						queue = append(queue, fn)
					}
				}
			}
		}
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := prog.DeclOf(fn)
		if decl == nil || decl.Decl.Body == nil {
			continue
		}
		hp := &hotPathWalk{prog: prog, pkg: decl.Pkg, fn: fn, via: reached[fn], out: &diags}
		hp.block(decl.Decl.Body, 0)
		for _, callee := range hp.callees {
			if _, ok := reached[callee]; !ok {
				reached[callee] = fn.Name()
				queue = append(queue, callee)
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// hotPathWalk scans one function body, collecting allocation diagnostics and
// the static in-module callees to add to the closure.
type hotPathWalk struct {
	prog    *Program
	pkg     *Package
	fn      *types.Func
	via     string // caller that pulled this function into the closure
	out     *[]Diagnostic
	callees []*types.Func
}

func (h *hotPathWalk) report(pos ast.Node, format string, args ...any) {
	msg := "hot path"
	if h.via != "" {
		msg += " (via " + h.via + ")"
	}
	report(h.prog, h.pkg, h.out, "hotpath", pos.Pos(), "%s must not allocate: "+format, append([]any{h.fn.Name() + " on " + msg}, args...)...)
}

// block walks statements tracking loop depth (for the defer-in-loop rule).
func (h *hotPathWalk) block(n ast.Node, loopDepth int) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				h.block(s.Init, loopDepth)
			}
			if s.Cond != nil {
				h.expr(s.Cond)
			}
			if s.Post != nil {
				h.block(s.Post, loopDepth)
			}
			h.block(s.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			h.expr(s.X)
			h.block(s.Body, loopDepth+1)
			return false
		case *ast.DeferStmt:
			if loopDepth > 0 {
				h.report(s, "defer inside a loop allocates and delays cleanup")
			}
			h.expr(s.Call)
			return false
		case ast.Expr:
			h.expr(s)
			return false
		case *ast.AssignStmt:
			h.assign(s)
			return false
		case *ast.ReturnStmt:
			h.returnStmt(s)
			return false
		}
		return true
	})
}

// expr flags allocating expressions and records static callees.
func (h *hotPathWalk) expr(e ast.Expr) {
	info := h.pkg.Info
	ast.Inspect(e, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			h.call(x)
			return false
		case *ast.FuncLit:
			h.report(x, "function literal allocates a closure")
			return false
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				h.report(x, "slice literal allocates")
			case *types.Map:
				h.report(x, "map literal allocates")
			}
			// Array and struct literals are values; keep walking their
			// elements for nested allocating expressions.
			return true
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					h.report(x, "&composite literal escapes to the heap")
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if t, ok := info.TypeOf(x).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					h.report(x, "string concatenation allocates")
				}
			}
			return true
		}
		return true
	})
}

// call handles builtins, conversions, fmt calls, interface-typed arguments
// and static callee collection.
func (h *hotPathWalk) call(c *ast.CallExpr) {
	info := h.pkg.Info
	fun := ast.Unparen(c.Fun)

	// Conversion T(x)?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		h.conversion(c, tv.Type)
		for _, a := range c.Args {
			h.expr(a)
		}
		return
	}

	var callee types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		callee = info.Uses[f]
	case *ast.SelectorExpr:
		h.expr(f.X)
		if sel, ok := info.Selections[f]; ok {
			callee = sel.Obj()
		} else {
			callee = info.Uses[f.Sel] // package-qualified function
		}
	default:
		h.expr(fun) // dynamic call through an arbitrary expression
	}

	switch obj := callee.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			h.report(c, "append may grow its backing array")
		case "make":
			h.report(c, "make allocates")
		case "new":
			h.report(c, "new allocates")
		}
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		dynamic := sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
		if p := obj.Pkg(); p != nil && p.Path() == "fmt" {
			h.report(c, "call into package fmt allocates")
		} else if !dynamic {
			if decl := h.prog.DeclOf(obj); decl != nil {
				h.callees = append(h.callees, obj)
			}
		}
	}

	// Interface-typed parameters box concrete arguments.
	if sig, ok := info.TypeOf(c.Fun).(*types.Signature); ok {
		h.callArgs(c, sig)
	}
	for _, a := range c.Args {
		h.expr(a)
	}
}

// conversion flags interface boxing and string<->byte/rune copies.
func (h *hotPathWalk) conversion(c *ast.CallExpr, dst types.Type) {
	if len(c.Args) != 1 {
		return
	}
	src := h.pkg.Info.TypeOf(c.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
		h.report(c, "conversion to interface %s allocates", dst.String())
		return
	}
	ds, dOK := dst.Underlying().(*types.Slice)
	sb, sStr := src.Underlying().(*types.Basic)
	if dOK && sStr && sb.Info()&types.IsString != 0 {
		if eb, ok := ds.Elem().Underlying().(*types.Basic); ok && eb.Info()&(types.IsInteger) != 0 {
			h.report(c, "string to %s conversion copies", dst.String())
		}
	}
	if db, ok := dst.Underlying().(*types.Basic); ok && db.Info()&types.IsString != 0 {
		if _, isSlice := src.Underlying().(*types.Slice); isSlice {
			h.report(c, "%s to string conversion copies", src.String())
		}
	}
}

// callArgs flags concrete arguments passed to interface-typed parameters.
func (h *hotPathWalk) callArgs(c *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range c.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if c.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type()
			} else if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt != nil {
			h.ifaceBox(arg, pt, "argument")
		}
	}
}

// ifaceBox flags src being implicitly converted to an interface dst.
func (h *hotPathWalk) ifaceBox(src ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	st := h.pkg.Info.TypeOf(src)
	if st == nil || types.IsInterface(st.Underlying()) {
		return
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	h.report(src, "%s boxed into interface %s", what, dst.String())
}

// assign flags interface boxing on assignment.
func (h *hotPathWalk) assign(s *ast.AssignStmt) {
	info := h.pkg.Info
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			h.ifaceBox(rhs, info.TypeOf(s.Lhs[i]), "value")
		}
	}
	for _, e := range s.Rhs {
		h.expr(e)
	}
	for _, e := range s.Lhs {
		h.expr(e) // index expressions etc. on the left can still call
	}
}

// returnStmt flags concrete values returned as interface results.
func (h *hotPathWalk) returnStmt(s *ast.ReturnStmt) {
	decl := h.prog.DeclOf(h.fn)
	if decl != nil {
		if sig, ok := h.fn.Type().(*types.Signature); ok && sig.Results().Len() == len(s.Results) {
			for i, r := range s.Results {
				h.ifaceBox(r, sig.Results().At(i).Type(), "return value")
			}
		}
	}
	for _, r := range s.Results {
		h.expr(r)
	}
}
