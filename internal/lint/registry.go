package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Family describes one name-string registry the registry analyzer checks.
// Exactly one of RegisterFunc, TableVar or ListFunc identifies how names
// enter the registry.
type Family struct {
	Kind string // human-readable, e.g. "flux kernel"
	Pkg  string // registering package (import-path suffix)

	// Name sources.
	RegisterFunc string // names via RegisterX(impl) where impl.Name() returns a constant
	TableVar     string // names are the keys of this package-level map literal
	ListFunc     string // names via a func returning a []string literal

	// Invariants.
	Enumerator   string            // exported enumerator func in Pkg that must cover every name
	CheckCall    string            // "pkgsuffix.Func" the fail-fast package must call
	CheckPkg     string            // package that must wire the fail-fast (skipped when not loaded)
	SpecPkg      string            // package holding the case-spec struct (skipped when not loaded)
	SpecType     string            // case-spec struct name
	SpecJSON     string            // required json tag on the case-spec struct
	CompareField string            // field whose ==/!= string comparisons must match the name set
	Consts       map[string]string // name -> exported constant; enables the bare-literal check

	// Class-keyed registries (the solver registry): Register(Class, impl)
	// where Class is a named constant; every registered class must appear as
	// a key of the ClassMap map literal (the CaseSpec name mapping).
	ClassKeyed bool
	ClassMap   string
}

// Registry returns the registry analyzer for the given families: every
// registered name must reach the exported enumerator, the catsim fail-fast
// and the CaseSpec surface, and bare name literals outside the registering
// package must use the exported constants.
func Registry(families ...Family) *Analyzer {
	return &Analyzer{
		Name: "registry",
		Doc:  "registered names must stay in sync across enumerators, fail-fast checks and CaseSpec",
		Run: func(prog *Program) []Diagnostic {
			var diags []Diagnostic
			for i := range families {
				checkFamily(prog, &families[i], &diags)
			}
			SortDiagnostics(diags)
			return diags
		},
	}
}

// CataeroFamilies is the repository's registry configuration.
func CataeroFamilies() []Family {
	name := func(m map[string]string) map[string]string { return m }
	return []Family{
		{
			Kind: "flux kernel", Pkg: "internal/fvm", RegisterFunc: "RegisterFlux",
			Enumerator: "FluxKernels", CheckCall: "cataero.FluxKernels", CheckPkg: "cmd/catsim",
			SpecPkg: "internal/core", SpecType: "CaseSpec", SpecJSON: "flux",
			Consts: name(map[string]string{"hlle": "fvm.FluxHLLE", "hlle-ef": "fvm.FluxHLLEEF", "hllc": "fvm.FluxHLLC", "ausm+": "fvm.FluxAUSMPlus", "ausm+up": "fvm.FluxAUSMPlusUp"}),
		},
		{
			Kind: "time stepping", Pkg: "internal/fvm", RegisterFunc: "RegisterIntegrator",
			Enumerator: "Integrators", CheckCall: "cataero.TimeSteppings", CheckPkg: "cmd/catsim",
			SpecPkg: "internal/core", SpecType: "CaseSpec", SpecJSON: "time_stepping",
			Consts: name(map[string]string{"explicit": "fvm.TimeSteppingExplicit", "implicit": "fvm.TimeSteppingImplicit"}),
		},
		{
			Kind: "implicit sweep", Pkg: "internal/fvm", ListFunc: "ImplicitSweeps",
			Enumerator: "ImplicitSweeps", CheckCall: "cataero.ImplicitSweeps", CheckPkg: "cmd/catsim",
			SpecPkg: "internal/core", SpecType: "CaseSpec", SpecJSON: "implicit_sweep",
			CompareField: "ImplicitSweep",
			Consts:       name(map[string]string{"jline": "fvm.ImplicitSweepJLine", "adi": "fvm.ImplicitSweepADI"}),
		},
		{
			Kind: "limiter", Pkg: "internal/fvm", TableVar: "limiterTable",
			Enumerator: "Limiters", CheckCall: "cataero.Limiters", CheckPkg: "cmd/catsim",
			SpecPkg: "internal/core", SpecType: "CaseSpec", SpecJSON: "limiter",
			Consts: name(map[string]string{"minmod": "fvm.LimiterMinmod", "vanalbada": "fvm.LimiterVanAlbada"}),
		},
		{
			Kind: "multilevel cycle", Pkg: "internal/fvm", ListFunc: "Cycles",
			Enumerator: "Cycles", CheckCall: "cataero.Cycles", CheckPkg: "cmd/catsim",
			SpecPkg: "internal/core", SpecType: "CaseSpec", SpecJSON: "cycle",
			CompareField: "Cycle",
			Consts:       name(map[string]string{"cascade": "fvm.CycleCascade", "v": "fvm.CycleV"}),
		},
		{
			Kind: "solver class", Pkg: "internal/core", RegisterFunc: "Register",
			ClassKeyed: true, ClassMap: "classNames",
		},
	}
}

func checkFamily(prog *Program, f *Family, diags *[]Diagnostic) {
	pkg := prog.Package(f.Pkg)
	if pkg == nil {
		return // registering package outside this load; nothing to check
	}
	if f.ClassKeyed {
		checkClassFamily(prog, f, pkg, diags)
		return
	}

	names, anchor := collectNames(prog, f, pkg, diags)
	if len(names) == 0 {
		report(prog, pkg, diags, "registry", pkg.Files[0].Package,
			"%s registry in %s has no statically visible names", f.Kind, f.Pkg)
		return
	}

	// Enumerator exists and (for map/table registries) actually reads the
	// registry storage, so nothing registered can be left unenumerable.
	enum := pkg.Types.Scope().Lookup(f.Enumerator)
	if enum == nil {
		report(prog, pkg, diags, "registry", anchor,
			"%s registry has no exported enumerator %s()", f.Kind, f.Enumerator)
	} else if src := registryStorage(f); src != "" {
		if !funcReferences(prog, pkg, f.Enumerator, src, 2) {
			report(prog, pkg, diags, "registry", prog.DeclPos(pkg, f.Enumerator),
				"enumerator %s() does not read %s; registered %ss would be invisible", f.Enumerator, src, f.Kind)
		}
	}

	// Hand-written comparison chains against the same names must not drift
	// from the enumerator set (e.g. a validate function rejecting a newly
	// registered name).
	if f.CompareField != "" {
		checkComparisons(prog, f, pkg, names, diags)
	}

	// The fail-fast package must consult the exported enumerator.
	checkFailFast(prog, f, pkg, anchor, diags)

	// The case-spec surface must expose the family.
	checkSpec(prog, f, pkg, anchor, diags)

	// Bare name literals outside the registering package.
	if len(f.Consts) > 0 {
		checkBareLiterals(prog, f, pkg, names, diags)
	}
}

func registryStorage(f *Family) string {
	if f.TableVar != "" {
		return f.TableVar
	}
	if f.ListFunc != "" {
		return "" // the enumerator is the storage
	}
	return "" // RegisterFunc-backed maps are found dynamically below
}

// collectNames extracts the statically visible registered names and an
// anchor position for family-level diagnostics.
func collectNames(prog *Program, f *Family, pkg *Package, diags *[]Diagnostic) (map[string]bool, token.Pos) {
	names := make(map[string]bool)
	anchor := pkg.Files[0].Package
	switch {
	case f.RegisterFunc != "":
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				c, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); !ok || id.Name != f.RegisterFunc {
					return true
				}
				if len(c.Args) == 0 {
					return true
				}
				anchor = c.Pos()
				impl := pkg.Info.TypeOf(c.Args[len(c.Args)-1])
				if impl == nil {
					return true
				}
				if name, ok := constNameMethod(prog, impl); ok {
					names[name] = true
				} else {
					report(prog, pkg, diags, "registry", c.Pos(),
						"cannot statically determine the registered %s name: %s must have a Name() method returning a constant", f.Kind, impl.String())
				}
				return true
			})
		}
	case f.TableVar != "":
		lit, pos := packageMapLiteral(pkg, f.TableVar)
		if lit == nil {
			report(prog, pkg, diags, "registry", anchor, "%s registry table %s not found", f.Kind, f.TableVar)
			return names, anchor
		}
		anchor = pos
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if s, ok := constString(pkg, kv.Key); ok {
					names[s] = true
				}
			}
		}
	case f.ListFunc != "":
		lit, pos := funcSliceLiteral(pkg, f.ListFunc)
		if lit == nil {
			report(prog, pkg, diags, "registry", anchor,
				"%s enumerator %s() must return a []string literal the analyzer can read", f.Kind, f.ListFunc)
			return names, anchor
		}
		anchor = pos
		for _, el := range lit.Elts {
			if s, ok := constString(pkg, el); ok {
				names[s] = true
			}
		}
	}
	return names, anchor
}

// constNameMethod resolves impl's Name() method to its constant return.
func constNameMethod(prog *Program, impl types.Type) (string, bool) {
	ms := types.NewMethodSet(impl)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Name" {
			continue
		}
		decl := prog.DeclOf(fn)
		if decl == nil || decl.Decl.Body == nil || len(decl.Decl.Body.List) != 1 {
			return "", false
		}
		ret, ok := decl.Decl.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return "", false
		}
		return constString(decl.Pkg, ret.Results[0])
	}
	return "", false
}

func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// packageMapLiteral finds a package-level `var name = map[...]...{...}`.
func packageMapLiteral(pkg *Package, name string) (*ast.CompositeLit, token.Pos) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, sp := range gd.Specs {
				vs := sp.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if id.Name == name && i < len(vs.Values) {
						if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
							return lit, id.Pos()
						}
					}
				}
			}
		}
	}
	return nil, token.NoPos
}

// funcSliceLiteral finds `func name() []string { return []string{...} }`.
func funcSliceLiteral(pkg *Package, name string) (*ast.CompositeLit, token.Pos) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv != nil || fd.Body == nil {
				continue
			}
			for _, st := range fd.Body.List {
				if ret, ok := st.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
					if lit, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit); ok {
						return lit, fd.Name.Pos()
					}
				}
			}
		}
	}
	return nil, token.NoPos
}

// DeclPos returns the position of a package-scope declaration by name.
func (prog *Program) DeclPos(pkg *Package, name string) token.Pos {
	if obj := pkg.Types.Scope().Lookup(name); obj != nil {
		return obj.Pos()
	}
	return pkg.Files[0].Package
}

// funcReferences reports whether the named function's body mentions ident
// (chasing same-package calls up to depth hops).
func funcReferences(prog *Program, pkg *Package, fn, ident string, depth int) bool {
	obj, ok := pkg.Types.Scope().Lookup(fn).(*types.Func)
	if !ok {
		return false
	}
	return funcObjReferences(prog, obj, ident, depth)
}

func funcObjReferences(prog *Program, fn *types.Func, ident string, depth int) bool {
	decl := prog.DeclOf(fn)
	if decl == nil || decl.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if id.Name == ident {
				found = true
				return false
			}
			if depth > 0 {
				if callee, ok := decl.Pkg.Info.Uses[id].(*types.Func); ok && callee.Pkg() == fn.Pkg() {
					if funcObjReferences(prog, callee, ident, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// checkComparisons verifies hand-written ==/!= chains over the family's
// field agree exactly with the registered name set.
func checkComparisons(prog *Program, f *Family, pkg *Package, names map[string]bool, diags *[]Diagnostic) {
	compared := make(map[string]bool)
	var first token.Pos
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
				s, ok := constString(pkg, pair[1])
				if !ok || s == "" {
					continue // empty means "use the default", not a name
				}
				if fieldName(pair[0]) == f.CompareField {
					compared[s] = true
					if !first.IsValid() {
						first = b.Pos()
					}
				}
			}
			return true
		})
	}
	if len(compared) == 0 {
		return
	}
	if !sameStringSet(compared, names) {
		report(prog, pkg, diags, "registry", first,
			"%s comparison chain over .%s covers %v but the registry enumerates %v; update both together",
			f.Kind, f.CompareField, sortedKeys(compared), sortedKeys(names))
	}
}

func fieldName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

// checkFailFast requires the CheckPkg to call the exported enumerator.
func checkFailFast(prog *Program, f *Family, pkg *Package, anchor token.Pos, diags *[]Diagnostic) {
	if f.CheckPkg == "" || f.CheckCall == "" {
		return
	}
	cp := prog.Package(f.CheckPkg)
	if cp == nil {
		return // fail-fast package not in this load
	}
	dot := strings.LastIndex(f.CheckCall, ".")
	wantPkg, wantFn := f.CheckCall[:dot], f.CheckCall[dot+1:]
	found := false
	for _, file := range cp.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				if obj, ok := cp.Info.Uses[sel.Sel].(*types.Func); ok &&
					obj.Name() == wantFn && obj.Pkg() != nil &&
					(obj.Pkg().Path() == wantPkg || strings.HasSuffix(obj.Pkg().Path(), "/"+wantPkg)) {
					found = true
				}
			}
			return true
		})
	}
	if !found {
		report(prog, pkg, diags, "registry", anchor,
			"%s registry has no fail-fast in %s: nothing there calls %s()", f.Kind, f.CheckPkg, f.CheckCall)
	}
}

// checkSpec requires the case-spec struct to expose the family via a json
// tag and actually read the tagged field.
func checkSpec(prog *Program, f *Family, pkg *Package, anchor token.Pos, diags *[]Diagnostic) {
	if f.SpecPkg == "" {
		return
	}
	sp := prog.Package(f.SpecPkg)
	if sp == nil {
		return
	}
	obj := sp.Types.Scope().Lookup(f.SpecType)
	if obj == nil {
		report(prog, pkg, diags, "registry", anchor, "case-spec type %s.%s not found", f.SpecPkg, f.SpecType)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	var field *types.Var
	for i := 0; i < st.NumFields(); i++ {
		tag := reflect.StructTag(st.Tag(i))
		jsonName, _, _ := strings.Cut(tag.Get("json"), ",")
		if jsonName == f.SpecJSON {
			field = st.Field(i)
			break
		}
	}
	if field == nil {
		report(prog, pkg, diags, "registry", anchor,
			"%s registry is not reachable from %s.%s: no field tagged json:%q", f.Kind, f.SpecPkg, f.SpecType, f.SpecJSON)
		return
	}
	// The field must be read somewhere beyond its declaration, otherwise the
	// tag parses but never reaches a Problem.
	used := false
	for _, file := range sp.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && !used {
				if s, ok := sp.Info.Selections[sel]; ok && s.Obj() == field {
					used = true
				}
			}
			return !used
		})
	}
	if !used {
		report(prog, pkg, diags, "registry", field.Pos(),
			"case-spec field %s (json:%q) is never read; the %s choice cannot reach a Problem", field.Name(), f.SpecJSON, f.Kind)
	}
}

// checkBareLiterals flags registry names spelled as string literals outside
// the registering package.
func checkBareLiterals(prog *Program, f *Family, regPkg *Package, names map[string]bool, diags *[]Diagnostic) {
	for _, pkg := range prog.Pkgs {
		if pkg == regPkg || hasPathSuffix(pkg.Path, "internal/lint") {
			continue // the analyzer's own configuration names every registry
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ImportSpec, *ast.StructType:
					return false // import paths and struct tags are not names
				case *ast.BasicLit:
					if x.Kind != token.STRING {
						return true
					}
					s, err := strconv.Unquote(x.Value)
					if err != nil || !names[s] {
						return true
					}
					suggest := f.Consts[s]
					if suggest == "" {
						suggest = "the exported constant"
					}
					report(prog, pkg, diags, "registry", x.Pos(),
						"bare %s name %q outside %s; use %s", f.Kind, s, f.Pkg, suggest)
				}
				return true
			})
		}
	}
}

// checkClassFamily verifies class-keyed registries: the set of classes
// passed to Register must equal the keys of the ClassMap literal.
func checkClassFamily(prog *Program, f *Family, pkg *Package, diags *[]Diagnostic) {
	registered := make(map[string]bool)
	var anchor token.Pos
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); !ok || id.Name != f.RegisterFunc {
				return true
			}
			if len(c.Args) < 2 {
				return true
			}
			if key, ok := ast.Unparen(c.Args[0]).(*ast.Ident); ok {
				registered[key.Name] = true
				if !anchor.IsValid() {
					anchor = c.Pos()
				}
			}
			return true
		})
	}
	if len(registered) == 0 {
		return
	}
	lit, pos := packageMapLiteral(pkg, f.ClassMap)
	if lit == nil {
		report(prog, pkg, diags, "registry", anchor,
			"solver classes are registered but the name map %s was not found", f.ClassMap)
		return
	}
	mapped := make(map[string]bool)
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := ast.Unparen(kv.Key).(*ast.Ident); ok {
				mapped[id.Name] = true
			}
		}
	}
	if !sameStringSet(registered, mapped) {
		report(prog, pkg, diags, "registry", pos,
			"registered solver classes %v and %s keys %v disagree; a class missing from the map is unreachable from case files",
			sortedKeys(registered), f.ClassMap, sortedKeys(mapped))
	}
}

func sameStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
