package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root (the directory holding go.mod) so
// tests can load real packages regardless of the test working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

func TestLoadTypeChecksModuleFromSource(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./internal/fvm")
	if err != nil {
		t.Fatal(err)
	}
	fvm := prog.Package("internal/fvm")
	if fvm == nil {
		t.Fatal("internal/fvm not loaded")
	}
	if fvm.Types.Scope().Lookup("Solver") == nil {
		t.Error("fvm.Solver not found in type-checked package")
	}
	// Dependencies inside the module must be source-checked too, so the
	// hotpath analyzer can chase calls across package boundaries.
	num := prog.Package("internal/numerics")
	if num == nil {
		t.Fatal("in-module dependency internal/numerics not source-loaded")
	}
	if len(num.Files) == 0 {
		t.Error("internal/numerics loaded without syntax")
	}
	if len(prog.Targets) != 1 || prog.Targets[0] != fvm {
		t.Errorf("Targets = %v, want just internal/fvm", prog.Targets)
	}
}
