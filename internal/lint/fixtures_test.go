package lint

import (
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads testdata fixture packages from the module root.
func loadFixture(t *testing.T, patterns ...string) *Program {
	t.Helper()
	prog, err := Load(moduleRoot(t), patterns...)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	return prog
}

// wantPatternRE extracts the quoted regexes from a `// want "..." "..."`
// comment, honoring escaped quotes.
var wantPatternRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// collectWants gathers the `// want` expectations from every loaded fixture
// file, keyed by position.
func collectWants(t *testing.T, prog *Program) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					for _, m := range wantPatternRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	return wants
}

// checkFixture matches diagnostics against the want expectations both ways:
// every diagnostic needs a want on its line, every want needs a diagnostic.
func checkFixture(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, prog)
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		full := d.Analyzer + ": " + d.Message
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(full) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

func TestHotPathFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/hotpathfix")
	checkFixture(t, prog, HotPath().Run(prog))
}

func TestHotPathIfaceFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/hotpathifacefix")
	a := HotPath(IfaceRoot{Pkg: "src/hotpathifacefix", Iface: "Batcher", Method: "Batch"})
	checkFixture(t, prog, a.Run(prog))
}

func TestHotPathAssemblyFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/hotpathasmfix")
	a := HotPath(IfaceRoot{Pkg: "src/hotpathasmfix", Iface: "Stepper", Method: "Step"})
	checkFixture(t, prog, a.Run(prog))
}

func TestCtxLoopFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/ctxloopfix")
	checkFixture(t, prog, CtxLoop("src/ctxloopfix").Run(prog))
}

func TestPhysConstFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/physconstfix/...")
	checkFixture(t, prog, PhysConst("src/physconstfix/ok").Run(prog))
}

func TestRegistryFixture(t *testing.T) {
	prog := loadFixture(t, "./internal/lint/testdata/src/registryfix/...")
	families := []Family{
		{
			Kind: "widget", Pkg: "src/registryfix/reg", RegisterFunc: "RegisterWidget",
			Enumerator: "Widgets", CheckCall: "reg.Widgets", CheckPkg: "src/registryfix/use",
			SpecPkg: "src/registryfix/use", SpecType: "Spec", SpecJSON: "widget",
			Consts: map[string]string{"alpha": "reg.WidgetAlpha", "beta": "reg.WidgetBeta"},
		},
		{
			Kind: "orphan widget", Pkg: "src/registryfix/regbad", RegisterFunc: "RegisterWidget",
			Enumerator: "Widgets",
			Consts:     map[string]string{"gamma": "regbad.WidgetGamma"},
		},
		{
			Kind: "solver class", Pkg: "src/registryfix/classes", RegisterFunc: "Register",
			ClassKeyed: true, ClassMap: "classNames",
		},
	}
	checkFixture(t, prog, Registry(families...).Run(prog))
}

// TestRepositoryClean runs the full configured suite over the repository:
// the tree must stay lint-clean so CI's catlint gate holds.
func TestRepositoryClean(t *testing.T) {
	prog := loadFixture(t, "./...")
	for _, a := range All() {
		for _, d := range a.Run(prog) {
			t.Errorf("%s", d)
		}
	}
}
