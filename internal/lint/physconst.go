package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// physConstEntry is one known physical constant the physconst analyzer
// recognizes in numeric literals.
type physConstEntry struct {
	value   float64
	what    string
	suggest string
	// Ambiguous values (1.4 could be a relaxation factor, a margin, a
	// gamma) are only flagged when the same statement also contains an
	// unambiguous physical constant, or when the assigned name matches a
	// hint — so `RefitMargin: 1.4` passes while `1.4*287.05*T` and
	// `Gamma: 1.4` are caught.
	ambiguous bool
	hints     []string
}

// physConstTable is keyed by the exact parsed literal value.
//
//cataero:allow physconst the analyzer's own match table
var physConstTable = map[float64]physConstEntry{
	287.05:         {value: 287.05, what: "the air specific gas constant R [J/(kg K)]", suggest: "thermo.RAir"},
	1.4:            {value: 1.4, what: "the diatomic-air ratio of specific heats gamma", suggest: "thermo.GammaAir", ambiguous: true, hints: []string{"gamma"}},
	8.314462618:    {value: 8.314462618, what: "the universal gas constant Ru [J/(mol K)]", suggest: "thermo.Ru"},
	8.314:          {value: 8.314, what: "a truncated universal gas constant Ru", suggest: "thermo.Ru"},
	1.380649e-23:   {value: 1.380649e-23, what: "the Boltzmann constant kB [J/K]", suggest: "thermo.KB"},
	6.02214076e23:  {value: 6.02214076e23, what: "the Avogadro number [1/mol]", suggest: "thermo.NA"},
	6.62607015e-34: {value: 6.62607015e-34, what: "the Planck constant [J s]", suggest: "thermo.Planck"},
	2.99792458e8:   {value: 2.99792458e8, what: "the speed of light [m/s]", suggest: "thermo.LightC"},
	5.670374419e-8: {value: 5.670374419e-8, what: "the Stefan-Boltzmann constant [W/(m^2 K^4)]", suggest: "thermo.SigmaSB"},
	5.67e-8:        {value: 5.67e-8, what: "a truncated Stefan-Boltzmann constant", suggest: "thermo.SigmaSB"},
	101325:         {value: 101325, what: "the standard atmosphere [Pa]", suggest: "thermo.AtmPa"},
	1.458e-6:       {value: 1.458e-6, what: "the Sutherland viscosity coefficient [kg/(m s K^0.5)]", suggest: "transport.Sutherland"},
	110.4:          {value: 110.4, what: "the Sutherland temperature [K]", suggest: "transport.Sutherland", ambiguous: true, hints: []string{"sutherland"}},
}

// PhysConst returns the physconst analyzer: numeric literals matching known
// physical constants outside the given property packages are magic numbers
// and must reference the exported constants instead. internal/lint itself is
// always exempt (it hosts the match table above).
func PhysConst(allowedPkgs ...string) *Analyzer {
	allowed := append([]string{"internal/lint"}, allowedPkgs...)
	return &Analyzer{
		Name: "physconst",
		Doc:  "physical-constant literals outside the property packages are magic numbers",
		Run: func(prog *Program) []Diagnostic {
			var diags []Diagnostic
			for _, pkg := range prog.Pkgs {
				if pkgMatches(pkg.Path, allowed) && len(allowedPkgs) > 0 {
					continue
				}
				for _, file := range pkg.Files {
					physConstFile(prog, pkg, file, &diags)
				}
			}
			SortDiagnostics(diags)
			return diags
		},
	}
}

// physMatch is one literal in a file that matched the table.
type physMatch struct {
	lit   *ast.BasicLit
	entry physConstEntry
	stmt  ast.Node // nearest enclosing statement or spec, for co-occurrence
	named bool     // assigned to a name matching the entry's hints
}

func physConstFile(prog *Program, pkg *Package, file *ast.File, diags *[]Diagnostic) {
	var matches []physMatch
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		lit, ok := n.(*ast.BasicLit)
		if !ok || (lit.Kind != token.FLOAT && lit.Kind != token.INT) {
			return true
		}
		tv, ok := pkg.Info.Types[lit]
		if !ok || tv.Value == nil {
			return true
		}
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		entry, ok := physConstTable[v]
		if !ok {
			return true
		}
		matches = append(matches, physMatch{
			lit:   lit,
			entry: entry,
			stmt:  enclosingStmt(stack),
			named: hintMatch(stack, entry.hints),
		})
		return true
	})

	// Resolve ambiguity by statement-level co-occurrence with a specific
	// constant (the 1.4*287.05*T pattern) or a hinted name.
	specific := make(map[ast.Node]bool)
	for _, m := range matches {
		if !m.entry.ambiguous {
			specific[m.stmt] = true
		}
	}
	for _, m := range matches {
		if m.entry.ambiguous && !specific[m.stmt] && !m.named {
			continue
		}
		report(prog, pkg, diags, "physconst", m.lit.Pos(),
			"magic number %s is %s; use %s", m.lit.Value, m.entry.what, m.entry.suggest)
	}
}

// enclosingStmt returns the innermost statement or declaration spec on the
// ancestor stack (the co-occurrence grouping unit).
func enclosingStmt(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case ast.Stmt, ast.Spec:
			return stack[i]
		}
	}
	return stack[0]
}

// hintMatch reports whether the literal is being bound to a name matching
// one of the hints: an assignment LHS, a composite-literal key, a constant
// or variable name, or a struct field default.
func hintMatch(stack []ast.Node, hints []string) bool {
	if len(hints) == 0 {
		return false
	}
	match := func(names ...string) bool {
		for _, nm := range names {
			lower := strings.ToLower(nm)
			for _, h := range hints {
				if h != "" && strings.Contains(lower, h) {
					return true
				}
			}
		}
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.CallExpr:
			return false // an argument is not bound to a caller-side name
		case *ast.KeyValueExpr:
			if match(fieldName(n.Key)) {
				return true
			}
		case *ast.AssignStmt:
			var names []string
			for _, l := range n.Lhs {
				names = append(names, fieldName(l))
			}
			return match(names...)
		case *ast.ValueSpec:
			var names []string
			for _, id := range n.Names {
				names = append(names, id.Name)
			}
			return match(names...)
		}
	}
	return false
}
