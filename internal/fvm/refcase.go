package fvm

import (
	"math"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/thermo"
	"cataero/internal/transport"
)

// ReferenceViscousCase builds the repository's benchmark reference
// configuration at the given grid size: the Fig. 9-class Mach-6 ideal-air
// hemisphere (Rn = 12.7 mm) with Roberts wall clustering, thin-layer viscous
// terms and an isothermal no-slip wall. It is shared by the fvm benchmarks
// and the `catsim bench` harness so both measure the same solve; ts selects
// the time integrator ("" = explicit).
func ReferenceViscousCase(ni, nj int, ts string) (*grid.Grid2D, Options, error) {
	body := geometry.NewSphere(0.0127)
	g, err := grid.NewBlunt(body, body.MaxS(), ni, nj, func(s float64) float64 {
		return 0.35*0.0127 + 0.3*s
	}, 1.08)
	if err != nil {
		return nil, Options{}, err
	}
	g.Axisymmetric = true
	o := Options{
		Gas:          gas.NewIdealAir(),
		Viscous:      true,
		Wall:         NoSlipIsothermal,
		TWall:        1500,
		Mu:           transport.Sutherland,
		K:            transport.SutherlandConductivity,
		FreestreamV:  [2]float64{6 * math.Sqrt(thermo.GammaAir*thermo.RAir*217), 0},
		FreestreamPT: [2]float64{550, 217},
		CFL:          0.4,
		MUSCL:        true,
		TimeStepping: ts,
	}
	return g, o, nil
}

// ReferenceSlenderCase is the high-aspect-ratio counterpart of
// ReferenceViscousCase: the same Mach-6 hemisphere, but resolved with many
// streamwise stations over few, mildly clustered wall-normal cells, so the
// cell aspect ratio flips — the streamwise spacing is the fine direction
// and streamwise coupling, not wall-normal stiffness, is what limits the
// relaxation. Wall-normal-only ("jline") line relaxation stalls its CFL
// ramp here; the alternating-direction sweep carries the streamwise
// couplings implicitly and keeps climbing. sweep selects the implicit
// schedule ("" = jline default).
func ReferenceSlenderCase(ni, nj int, sweep string) (*grid.Grid2D, Options, error) {
	body := geometry.NewSphere(0.0127)
	g, err := grid.NewBlunt(body, body.MaxS(), ni, nj, func(s float64) float64 {
		return 0.35*0.0127 + 0.3*s
	}, 1.02)
	if err != nil {
		return nil, Options{}, err
	}
	g.Axisymmetric = true
	o := Options{
		Gas:           gas.NewIdealAir(),
		Viscous:       true,
		Wall:          NoSlipIsothermal,
		TWall:         1500,
		Mu:            transport.Sutherland,
		K:             transport.SutherlandConductivity,
		FreestreamV:   [2]float64{6 * math.Sqrt(thermo.GammaAir*thermo.RAir*217), 0},
		FreestreamPT:  [2]float64{550, 217},
		CFL:           0.4,
		MUSCL:         true,
		TimeStepping:  TimeSteppingImplicit,
		ImplicitSweep: sweep,
	}
	return g, o, nil
}
