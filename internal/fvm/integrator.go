package fvm

import (
	"fmt"
	"sort"
	"sync"
)

// Stepper advances a solver one time step and returns the RMS density
// residual — the per-solver instance of a time integrator, carrying any
// workspace the scheme needs (allocated once at New so stepping is
// allocation-free).
type Stepper interface {
	Step() float64
}

// Integrator is a time-integration scheme for the finite-volume relaxation.
// Implementations register themselves with RegisterIntegrator and are
// selected by name via Options.TimeStepping, mirroring the flux-kernel
// registry: new schemes (multigrid smoothers, alternating-direction
// relaxation, ...) plug in without touching the solver loops.
type Integrator interface {
	// Name is the registry key (e.g. "explicit").
	Name() string
	// NewStepper binds the integrator to a solver, allocating its
	// per-solver workspace.
	NewStepper(s *Solver) (Stepper, error)
}

var (
	integMu       sync.RWMutex
	integRegistry = map[string]Integrator{}
)

// DefaultTimeStepping is the integrator used when Options.TimeStepping is
// empty.
const DefaultTimeStepping = TimeSteppingExplicit

func init() {
	RegisterIntegrator(explicitIntegrator{})
	RegisterIntegrator(implicitIntegrator{})
}

// RegisterIntegrator installs a time integrator under its name, replacing
// any previous integrator with the same name.
func RegisterIntegrator(in Integrator) {
	if in == nil {
		panic("fvm: RegisterIntegrator with nil integrator")
	}
	integMu.Lock()
	defer integMu.Unlock()
	integRegistry[in.Name()] = in
}

// IntegratorFor resolves a registered integrator by name; the empty name
// resolves to DefaultTimeStepping.
func IntegratorFor(name string) (Integrator, error) {
	if name == "" {
		name = DefaultTimeStepping
	}
	integMu.RLock()
	defer integMu.RUnlock()
	in, ok := integRegistry[name]
	if !ok {
		return nil, fmt.Errorf("fvm: no time integrator %q (have %v)", name, integratorNamesLocked())
	}
	return in, nil
}

// Integrators returns the registered integrator names in ascending order —
// the valid values of Options.TimeStepping.
func Integrators() []string {
	integMu.RLock()
	defer integMu.RUnlock()
	return integratorNamesLocked()
}

func integratorNamesLocked() []string {
	out := make([]string, 0, len(integRegistry))
	for n := range integRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- explicit: two-stage (Heun) local-time-step relaxation ---

type explicitIntegrator struct{}

func (explicitIntegrator) Name() string { return TimeSteppingExplicit }

func (explicitIntegrator) NewStepper(s *Solver) (Stepper, error) {
	return explicitStepper{s}, nil
}

type explicitStepper struct{ s *Solver }

//cataero:hotpath
func (e explicitStepper) Step() float64 { return e.s.stepExplicit() }
