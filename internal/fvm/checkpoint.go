package fvm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// This file is the durability layer of the finite-volume solver: a stable
// serialization of everything a march needs to resume bit-exactly after a
// process death — the conserved field, the grid nodes (a mid-march refit
// moves them), the implicit integrator's CFL ramp bookkeeping, the
// frozen-limiter latch, and the marching loop's own position (step offset,
// latched first residual or absolute target, multilevel refit state).
//
// Consistency: checkpoints are only taken at step boundaries, by the
// marching loops themselves (RunCtx/RunToCtx/marchFinest) — never from
// another goroutine — so a checkpoint always captures a state the
// uninterrupted march actually passed through. Resuming from it and
// marching to convergence reproduces the uninterrupted run's terminal state
// bit for bit on the same machine (the parallel sweep partition is fixed by
// GOMAXPROCS, and every reduction is ordered).
//
// Allocation: Solver.Checkpoint fills a per-solver scratch Checkpoint that
// is allocated once and reused, so periodic checkpointing adds no per-step
// garbage to a long march. The sink must therefore encode or copy the
// Checkpoint before returning. Encoding and decoding allocate freely — they
// run once per emission in the sink, off the marching hot path.

// CheckpointFormat is the checkpoint schema version. Encoded checkpoints
// carry it in both the binary magic and the JSON header; a decoder refuses
// other versions, so a resumed process never misreads a foreign layout.
// Bump it (and the magic) on any incompatible change — see CONTRIBUTING.md
// for the compatibility policy.
const CheckpointFormat = 1

// checkpointMagic brands an encoded checkpoint; the trailing digit is the
// format version.
const checkpointMagic = "CATCKPT1"

// Checkpoint is a solver state snapshot at a step boundary, sufficient to
// resume the march exactly where it stopped. Scalar fields travel in a JSON
// header; the bulk float arrays travel as raw little-endian payloads (see
// AppendBinary). The zero value of every field is the correct "not
// applicable" marker, so one type serves the plain, sequenced and
// multilevel marches.
type Checkpoint struct {
	Format int
	NI, NJ int
	// Phase names the marching stage that wrote the checkpoint ("solve",
	// "coarse", "fine", "level0"...), which is also how a restore is routed:
	// a checkpoint resumes only the stage that produced it.
	Phase string
	// Step counts completed steps of the phase's marching loop.
	Step int
	// First is RunCtx's latched first-step residual (-1 before the latch);
	// unused by the absolute-target loops.
	First float64
	// Target is the absolute residual target of a RunToCtx or multilevel
	// finest march; 0 for a relative-drop (RunCtx) march.
	Target float64

	// Implicit CFL ramp state (zero when the integrator has no ramp).
	CFL       float64
	RampBest  float64
	RampStall int
	RampCap   float64
	RampLows  int
	Fallbacks int

	// Frozen-limiter latch.
	LimMode  int
	LimFirst float64

	// Multilevel finest-march position (SolveMultilevel): fine-step budget
	// consumed, refits done, steps since the last refit, and the refit
	// stall-out window. MarchBest stores 0 for "no best yet" (+Inf has no
	// JSON form).
	FineSteps    int
	Refits       int
	SinceRefit   int
	MarchBest    float64
	MarchStalled int

	// Restarts counts checkpoint restores already applied to the run this
	// checkpoint continues, so a twice-resumed run reports the full chain.
	Restarts int

	// GridX/GridY are the node coordinates, flattened row-major
	// ((NI+1)*(NJ+1) each) — a mid-march refit moves them, so the grid the
	// state lives on must travel with the state.
	GridX, GridY []float64
	// U is the conserved field, flattened (4*NI*NJ).
	U []float64
	// FrzI/FrzJ are the recorded limiter offsets, present only when the
	// limiter was frozen (LimMode == limFrozen).
	FrzI, FrzJ []float64
}

// ckptHeader is the JSON scalar header of an encoded checkpoint. Payload
// lengths are spelled explicitly so the decoder can bound-check before
// touching the raw floats.
type ckptHeader struct {
	Format       int     `json:"format"`
	NI           int     `json:"ni"`
	NJ           int     `json:"nj"`
	Phase        string  `json:"phase"`
	Step         int     `json:"step"`
	First        float64 `json:"first"`
	Target       float64 `json:"target,omitempty"`
	CFL          float64 `json:"cfl,omitempty"`
	RampBest     float64 `json:"ramp_best,omitempty"`
	RampStall    int     `json:"ramp_stall,omitempty"`
	RampCap      float64 `json:"ramp_cap,omitempty"`
	RampLows     int     `json:"ramp_lows,omitempty"`
	Fallbacks    int     `json:"fallbacks,omitempty"`
	LimMode      int     `json:"lim_mode,omitempty"`
	LimFirst     float64 `json:"lim_first,omitempty"`
	FineSteps    int     `json:"fine_steps,omitempty"`
	Refits       int     `json:"refits,omitempty"`
	SinceRefit   int     `json:"since_refit,omitempty"`
	MarchBest    float64 `json:"march_best,omitempty"`
	MarchStalled int     `json:"march_stalled,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
	NGrid        int     `json:"n_grid"`
	NU           int     `json:"n_u"`
	NFrzI        int     `json:"n_frz_i,omitempty"`
	NFrzJ        int     `json:"n_frz_j,omitempty"`
}

// AppendBinary encodes the checkpoint onto dst and returns the extended
// slice. Layout: the 8-byte magic, a little-endian uint32 header length,
// the JSON scalar header, the raw little-endian float64 payloads (GridX,
// GridY, U, FrzI, FrzJ), and a SHA-256 checksum of everything before it.
// The float payloads round-trip bit-exactly — NaN payloads and signed
// zeros included — which a decimal encoding would not guarantee.
func (cp *Checkpoint) AppendBinary(dst []byte) ([]byte, error) {
	h := ckptHeader{
		Format: CheckpointFormat,
		NI:     cp.NI, NJ: cp.NJ,
		Phase: cp.Phase,
		Step:  cp.Step,
		First: cp.First, Target: cp.Target,
		CFL: cp.CFL, RampBest: cp.RampBest, RampStall: cp.RampStall,
		RampCap: cp.RampCap, RampLows: cp.RampLows, Fallbacks: cp.Fallbacks,
		LimMode: cp.LimMode, LimFirst: cp.LimFirst,
		FineSteps: cp.FineSteps, Refits: cp.Refits, SinceRefit: cp.SinceRefit,
		MarchBest: cp.MarchBest, MarchStalled: cp.MarchStalled,
		Restarts: cp.Restarts,
		NGrid:    len(cp.GridX), NU: len(cp.U),
		NFrzI: len(cp.FrzI), NFrzJ: len(cp.FrzJ),
	}
	if len(cp.GridY) != len(cp.GridX) {
		return nil, fmt.Errorf("fvm: checkpoint grid payloads disagree: %d x, %d y", len(cp.GridX), len(cp.GridY))
	}
	hdr, err := json.Marshal(&h)
	if err != nil {
		return nil, fmt.Errorf("fvm: encode checkpoint header: %w", err)
	}
	start := len(dst)
	dst = append(dst, checkpointMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(hdr)))
	dst = append(dst, hdr...)
	for _, payload := range [][]float64{cp.GridX, cp.GridY, cp.U, cp.FrzI, cp.FrzJ} {
		for _, v := range payload {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	sum := sha256.Sum256(dst[start:])
	return append(dst, sum[:]...), nil
}

// DecodeCheckpoint parses and verifies an encoded checkpoint. Any damage —
// wrong magic, foreign format, truncation, length mismatch, checksum
// failure — is an error; a caller must treat it as "no checkpoint" and
// solve cold rather than resume from a torn file.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	const magicLen = len(checkpointMagic)
	if len(data) < magicLen+4+sha256.Size {
		return nil, fmt.Errorf("fvm: checkpoint truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:magicLen], []byte(checkpointMagic)) {
		return nil, fmt.Errorf("fvm: not a checkpoint (bad magic)")
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("fvm: checkpoint checksum mismatch")
	}
	hlen := int(binary.LittleEndian.Uint32(body[magicLen:]))
	rest := body[magicLen+4:]
	if hlen < 0 || hlen > len(rest) {
		return nil, fmt.Errorf("fvm: checkpoint header length %d exceeds body", hlen)
	}
	var h ckptHeader
	if err := json.Unmarshal(rest[:hlen], &h); err != nil {
		return nil, fmt.Errorf("fvm: decode checkpoint header: %w", err)
	}
	if h.Format != CheckpointFormat {
		return nil, fmt.Errorf("fvm: checkpoint format %d, want %d", h.Format, CheckpointFormat)
	}
	if h.NGrid < 0 || h.NU < 0 || h.NFrzI < 0 || h.NFrzJ < 0 {
		return nil, fmt.Errorf("fvm: checkpoint with negative payload length")
	}
	total := 2*h.NGrid + h.NU + h.NFrzI + h.NFrzJ
	payload := rest[hlen:]
	if len(payload) != 8*total {
		return nil, fmt.Errorf("fvm: checkpoint payload %d bytes, header promises %d", len(payload), 8*total)
	}
	take := func(n int) []float64 {
		if n == 0 {
			return nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		payload = payload[8*n:]
		return out
	}
	cp := &Checkpoint{
		Format: h.Format,
		NI:     h.NI, NJ: h.NJ,
		Phase: h.Phase,
		Step:  h.Step,
		First: h.First, Target: h.Target,
		CFL: h.CFL, RampBest: h.RampBest, RampStall: h.RampStall,
		RampCap: h.RampCap, RampLows: h.RampLows, Fallbacks: h.Fallbacks,
		LimMode: h.LimMode, LimFirst: h.LimFirst,
		FineSteps: h.FineSteps, Refits: h.Refits, SinceRefit: h.SinceRefit,
		MarchBest: h.MarchBest, MarchStalled: h.MarchStalled,
		Restarts: h.Restarts,
		GridX:    take(h.NGrid), GridY: take(h.NGrid),
		U:    take(h.NU),
		FrzI: take(h.NFrzI), FrzJ: take(h.NFrzJ),
	}
	return cp, nil
}

// rampKeeper is the optional integrator hook checkpointing uses to capture
// and restore the CFL ramp's convergence bookkeeping. Integrators without
// ramp state (the explicit scheme) simply do not implement it.
type rampKeeper interface {
	saveRamp() rampSnapshot
	restoreRamp(rampSnapshot)
}

// rampSnapshot mirrors implicitStepper's mutable schedule state.
type rampSnapshot struct {
	cfl, best float64
	stall     int
	cap       float64
	lows      int
	fallbacks int
}

func (st *implicitStepper) saveRamp() rampSnapshot {
	return rampSnapshot{st.cfl, st.best, st.stall, st.cap, st.lows, st.fallbacks}
}

func (st *implicitStepper) restoreRamp(r rampSnapshot) {
	st.cfl, st.best, st.stall, st.cap, st.lows, st.fallbacks = r.cfl, r.best, r.stall, r.cap, r.lows, r.fallbacks
}

// fallbackCounter is the optional integrator hook the divergence-recovery
// diagnostics read (Diag.Fallbacks).
type fallbackCounter interface{ Fallbacks() int }

// Fallbacks returns the cumulative count of implicit lines that fell back
// to the explicit stage over the run.
func (st *implicitStepper) Fallbacks() int { return st.fallbacks }

// diag assembles the solver's divergence-recovery diagnostics for a
// progress callback; refits is supplied by the multilevel driver (a plain
// march never refits).
func (s *Solver) diag(refits int) Diag {
	d := Diag{Refits: refits, Restarts: s.restarts}
	if fc, ok := s.stepper.(fallbackCounter); ok {
		d.Fallbacks = fc.Fallbacks()
	}
	return d
}

// Checkpoint captures the solver's state at the current step boundary into
// a reusable scratch Checkpoint and returns it. Call it only between steps
// on the marching goroutine — the loops in RunCtx/RunToCtx/SolveMultilevel
// do this for Options.CheckpointEvery — and encode or copy the result
// before the next call, which overwrites it. After the first call the fill
// is allocation-free.
func (s *Solver) Checkpoint() *Checkpoint {
	cp := s.ckpt
	if cp == nil {
		cp = &Checkpoint{
			GridX: make([]float64, (s.ni+1)*(s.nj+1)),
			GridY: make([]float64, (s.ni+1)*(s.nj+1)),
			U:     make([]float64, 4*s.ni*s.nj),
		}
		if s.frzI != nil {
			cp.FrzI = make([]float64, len(s.frzI))
			cp.FrzJ = make([]float64, len(s.frzJ))
		}
		s.ckpt = cp
	}
	cp.Format = CheckpointFormat
	cp.NI, cp.NJ = s.ni, s.nj
	cp.Phase = s.phase
	cp.Step, cp.First, cp.Target = 0, -1, 0
	cp.FineSteps, cp.Refits, cp.SinceRefit, cp.MarchBest, cp.MarchStalled = 0, 0, 0, 0, 0
	cp.Restarts = s.restarts
	nj1 := s.nj + 1
	for i := 0; i <= s.ni; i++ {
		copy(cp.GridX[i*nj1:(i+1)*nj1], s.G.X[i])
		copy(cp.GridY[i*nj1:(i+1)*nj1], s.G.Y[i])
	}
	for k := range s.U {
		copy(cp.U[4*k:4*k+4], s.U[k][:])
	}
	cp.CFL, cp.RampBest, cp.RampStall, cp.RampCap, cp.RampLows, cp.Fallbacks = 0, 0, 0, 0, 0, 0
	if rk, ok := s.stepper.(rampKeeper); ok {
		r := rk.saveRamp()
		cp.CFL, cp.RampBest, cp.RampStall = r.cfl, r.best, r.stall
		cp.RampCap, cp.RampLows, cp.Fallbacks = r.cap, r.lows, r.fallbacks
	}
	cp.LimMode, cp.LimFirst = s.limMode, s.limFirst
	if s.limMode == limFrozen && s.frzI != nil {
		cp.FrzI = cp.FrzI[:len(s.frzI)]
		cp.FrzJ = cp.FrzJ[:len(s.frzJ)]
		copy(cp.FrzI, s.frzI)
		copy(cp.FrzJ, s.frzJ)
	} else {
		// Offsets are only meaningful frozen; an un-frozen march re-records
		// them deterministically after restore.
		cp.FrzI = cp.FrzI[:0]
		cp.FrzJ = cp.FrzJ[:0]
	}
	return cp
}

// Restore overwrites the solver's state from a checkpoint taken by a solver
// of identical shape and configuration: grid nodes (rebuilding the metrics,
// so refitted geometry survives), the conserved field, the integrator's
// ramp state and the limiter latch. The marching loop that runs next picks
// up the step offset and latched residual via takeResume, continuing the
// march exactly where the checkpoint left it.
func (s *Solver) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("fvm: restore from nil checkpoint")
	}
	if cp.Format != CheckpointFormat {
		return fmt.Errorf("fvm: restore checkpoint format %d, want %d", cp.Format, CheckpointFormat)
	}
	if cp.NI != s.ni || cp.NJ != s.nj {
		return fmt.Errorf("fvm: restore checkpoint for %dx%d grid onto %dx%d solver", cp.NI, cp.NJ, s.ni, s.nj)
	}
	if len(cp.U) != 4*s.ni*s.nj {
		return fmt.Errorf("fvm: restore checkpoint with %d state floats, want %d", len(cp.U), 4*s.ni*s.nj)
	}
	if cp.LimMode == limFrozen {
		if s.frzI == nil || len(cp.FrzI) != len(s.frzI) || len(cp.FrzJ) != len(s.frzJ) {
			return fmt.Errorf("fvm: restore frozen-limiter checkpoint without matching offset arrays")
		}
	}
	if len(cp.GridX) > 0 {
		if err := s.G.RestoreNodes(cp.GridX, cp.GridY); err != nil {
			return err
		}
		s.met = s.G.Metrics()
	}
	for k := range s.U {
		copy(s.U[k][:], cp.U[4*k:4*k+4])
	}
	if rk, ok := s.stepper.(rampKeeper); ok && cp.CFL > 0 {
		rk.restoreRamp(rampSnapshot{cp.CFL, cp.RampBest, cp.RampStall, cp.RampCap, cp.RampLows, cp.Fallbacks})
	}
	if s.frzI != nil {
		s.limFirst = cp.LimFirst
		s.limMode = cp.LimMode
		if cp.LimMode == limFrozen {
			copy(s.frzI, cp.FrzI)
			copy(s.frzJ, cp.FrzJ)
		}
	}
	s.resumeStep = cp.Step
	s.resumeFirst = cp.First
	s.restarts = cp.Restarts + 1
	return nil
}

// takeResume consumes the marching-loop offset a Restore installed: the
// completed-step count to continue from and the latched first residual.
// Returns (0, -1) when no restore is pending.
func (s *Solver) takeResume() (start int, first float64) {
	start, first = s.resumeStep, s.resumeFirst
	if start == 0 && first == 0 {
		first = -1
	}
	s.resumeStep, s.resumeFirst = 0, 0
	return start, first
}

// restoreForPhase applies Options.Restore when it targets the solver's
// current phase, consuming it so a later loop on the same options cannot
// re-apply it. Used by the relative-drop marching loops, whose resume needs
// no external target; the absolute-target paths route restores explicitly
// (SolveSequenced, SolveMultilevel). A shape or content mismatch falls back
// to a cold start rather than failing the solve: a checkpoint is an
// optimization, never a correctness requirement.
func (s *Solver) restoreForPhase() {
	cp := s.Opts.Restore
	if cp == nil || cp.Phase != s.phase {
		return
	}
	s.Opts.Restore = nil
	_ = s.Restore(cp)
}

// checkpointNow fills the scratch checkpoint with the loop position and
// hands it to the sink.
func (s *Solver) checkpointNow(step int, first, target float64) {
	cp := s.Checkpoint()
	cp.Step, cp.First, cp.Target = step, first, target
	s.Opts.CheckpointSink(cp)
}

// wantCheckpoints reports whether the marching loops should emit
// checkpoints at all.
func (s *Solver) wantCheckpoints() bool {
	return s.Opts.CheckpointEvery > 0 && s.Opts.CheckpointSink != nil
}
