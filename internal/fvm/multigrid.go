package fvm

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/grid"
)

// DefaultCycle is the multilevel schedule used when SequenceOptions.Cycle is
// empty.
const DefaultCycle = CycleCascade

// Cycles returns the valid multilevel schedule names
// (SequenceOptions.Cycle): "cascade" converges the hierarchy coarsest-first
// and injects downward (N-level grid sequencing); "v" runs FAS V-cycles —
// pre-smooth, restrict the state conservatively, relax the defect-corrected
// coarse problem, prolongate the correction, post-smooth — after a cascade
// initialization.
func Cycles() []string { return []string{CycleCascade, CycleV} }

// SolveMultilevel runs a multilevel solve to steady state: a level hierarchy
// built from chained grid.Coarsen calls (each level with its own cached
// metrics and a Solver sharing Options.Pool), marched by the configured
// cycle. Unreachable levels (cell counts not divisible by the factor, or
// below the MUSCL floor) are dropped. The finest level stops at the same
// absolute residual a freestream-started fine solve would reach after
// dropping by dropTol; with RefitEvery set, the finest march periodically
// re-fits the outer boundary to the detected shock locus and transfers the
// solution onto the refitted grid. Progress phases are labeled "level0"
// (finest) through "levelN" (coarsest). Returns the finest solver (which the
// caller owns) and its final residual.
func SolveMultilevel(ctx context.Context, g *grid.Grid2D, o Options, maxSteps int, dropTol float64, sq SequenceOptions) (*Solver, float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	sq = sq.withDefaults(maxSteps)
	if sq.Levels == 0 {
		sq.Levels = 2
	}
	if sq.SmoothSteps == 0 {
		sq.SmoothSteps = 4
	}
	if sq.Cycle == "" {
		sq.Cycle = DefaultCycle
	}
	if err := validateMultilevel(sq); err != nil {
		return nil, 0, err
	}

	// A finest-level checkpoint carries the absolute target and the refit
	// bookkeeping, so the entire coarse cascade is skipped on resume: build
	// only the finest solver, restore it (refitted grid nodes included) and
	// continue the march. Any restore failure falls through to a cold solve.
	if cp := o.Restore; cp != nil && cp.Phase == "level0" && cp.NI == g.NI && cp.NJ == g.NJ && cp.Target > 0 {
		o.Restore = nil
		if s, res, err, ok := resumeMultilevel(ctx, g, o, maxSteps, dropTol, sq, cp); ok {
			return s, res, err
		}
	}

	// Build the grid hierarchy by chained coarsening, dropping levels the
	// grid cannot reach.
	grids := []*grid.Grid2D{g}
	//cataero:allow ctxloop bounded by Levels (a handful of coarsenings)
	for len(grids) < sq.Levels {
		cg, err := grids[len(grids)-1].Coarsen(sq.Coarsen)
		if err != nil {
			break
		}
		grids = append(grids, cg)
	}

	m := &multilevel{o: o, sq: sq, maxSteps: maxSteps, dropTol: dropTol}
	solvers := make([]*Solver, len(grids))
	//cataero:allow ctxloop one solver allocation per level, setup only
	for l, lg := range grids {
		s, err := New(lg, o)
		if err != nil {
			for _, built := range solvers[:l] {
				built.Close()
			}
			return nil, 0, err
		}
		s.phase = fmt.Sprintf("level%d", l)
		solvers[l] = s
	}
	m.solvers = solvers
	m.steps = make([]int, len(solvers))
	defer func() {
		for _, s := range m.solvers[1:] {
			s.Close()
		}
	}()

	res, err := m.run(ctx)
	if err != nil {
		m.solvers[0].Close()
		return nil, 0, err
	}
	return m.solvers[0], res, nil
}

// resumeMultilevel continues a multilevel solve from a finest-level
// checkpoint: only the finest solver exists (the coarse hierarchy already
// did its work before the checkpoint), and the march picks up the saved
// refit bookkeeping. A V-cycle solve resumes as a pure finest-level march —
// the cycles' coarse corrections have largely converged by the time
// checkpoints are being cut, and rebuilding the hierarchy mid-state would
// risk diverging from the uninterrupted trajectory. ok reports whether the
// checkpoint was applied; on false the caller solves cold.
func resumeMultilevel(ctx context.Context, g *grid.Grid2D, o Options, maxSteps int, dropTol float64, sq SequenceOptions, cp *Checkpoint) (*Solver, float64, error, bool) {
	s, err := New(g, o)
	if err != nil {
		return nil, 0, nil, false
	}
	s.phase = "level0"
	if err := s.Restore(cp); err != nil {
		s.Close()
		return nil, 0, nil, false
	}
	s.takeResume() // marchFinest tracks position via fineSteps, not a loop offset
	m := &multilevel{
		o: o, sq: sq, maxSteps: maxSteps, dropTol: dropTol,
		solvers:   []*Solver{s},
		steps:     []int{0},
		fineSteps: cp.FineSteps,
		refits:    cp.Refits,
	}
	best := math.Inf(1)
	if cp.MarchBest > 0 {
		best = cp.MarchBest
	}
	res, err := m.marchFinestFrom(ctx, cp.Target, -1, cp.SinceRefit, best, cp.MarchStalled)
	if err != nil {
		s.Close()
		return nil, 0, err, true
	}
	return s, res, nil, true
}

// validateMultilevel fail-fast checks the multilevel knobs.
func validateMultilevel(sq SequenceOptions) error {
	if sq.Levels < 1 {
		return fmt.Errorf("fvm: multilevel solve: Levels %d below 1", sq.Levels)
	}
	if sq.Cycle != CycleCascade && sq.Cycle != CycleV {
		return fmt.Errorf("fvm: multilevel solve: no cycle %q (have %v)", sq.Cycle, Cycles())
	}
	if sq.SmoothSteps < 0 {
		return fmt.Errorf("fvm: multilevel solve: SmoothSteps %d negative", sq.SmoothSteps)
	}
	if sq.RefitEvery < 0 {
		return fmt.Errorf("fvm: multilevel solve: RefitEvery %d negative", sq.RefitEvery)
	}
	return nil
}

// cflCarrier is the optional integrator hook a multilevel transition uses to
// seed a finer level's CFL schedule from the coarser level that just
// converged (see implicitStepper.carryCFL).
type cflCarrier interface{ carryCFL(from Stepper) }

// rampResetter is the optional integrator hook a mid-march refit uses to
// re-latch convergence bookkeeping after the grid (and thus the residual
// landscape) changes under the integrator.
type rampResetter interface{ resetRamp() }

// multilevel is the state of one multilevel solve: the per-level solvers
// (index 0 = finest), per-level step counters for progress reporting, and
// the V-cycle scratch (restriction volumes and the pre-correction coarse
// states).
type multilevel struct {
	o        Options
	sq       SequenceOptions
	maxSteps int
	dropTol  float64

	solvers   []*Solver
	steps     []int // per-level completed steps (progress phase counters)
	fineSteps int   // finest-level steps consumed (the solve budget)
	refits    int   // mid-march refits performed (capped at maxRefits per solve)

	saved [][]Cons // per-level pre-correction coarse state (V-cycle)
}

// run executes the configured cycle and returns the finest residual.
func (m *multilevel) run(ctx context.Context) (float64, error) {
	target, err := m.cascade(ctx)
	if err != nil {
		return 0, err
	}
	if m.sq.Cycle == CycleV && len(m.solvers) > 1 {
		return m.vcycles(ctx, target)
	}
	return m.marchFinest(ctx, target, -1)
}

// levelTol is the per-level relative drop tolerance of the cascade,
// interpolated geometrically between CoarseDropTol on the coarsest level
// (which only has to establish the shock from freestream) and the fine
// dropTol. Driving the intermediate levels well past CoarseDropTol pays off:
// their steps cost a fraction of a fine step (a quarter per halving), and
// every decade they converge is a decade the finest level does not have to
// grind at full resolution.
func (m *multilevel) levelTol(l int) float64 {
	last := len(m.solvers) - 1
	if l >= last {
		return m.sq.CoarseDropTol
	}
	t := float64(l) / float64(last)
	return math.Exp(t*math.Log(m.sq.CoarseDropTol) + (1-t)*math.Log(m.dropTol))
}

// cascade converges the hierarchy coarsest-first, injecting each converged
// level onto the next finer one (optionally re-fitting the finer outer
// boundary to the coarser shock locus), and returns the finest level's
// absolute residual target. The finest level itself is not marched — run
// finishes it — except for the single calibration step that latches the
// target scale.
func (m *multilevel) cascade(ctx context.Context) (float64, error) {
	L := len(m.solvers)
	abs := 0.0 // coarsest level anchors to its own freestream-started first step
	for l := L - 1; l >= 1; l-- {
		s := m.solvers[l]
		if _, err := m.relax(ctx, l, m.sq.CoarseMaxSteps, m.levelTol(l), abs); err != nil {
			return 0, err
		}
		finer := m.solvers[l-1]
		if m.sq.Refit {
			ng, err := refitToShock(s, finer.G, m.sq.RefitMargin)
			if err != nil {
				return 0, fmt.Errorf("fvm: multilevel solve: refit level %d to level %d shock locus: %w", l-1, l, err)
			}
			if err := finer.RefitTo(ng); err != nil {
				return 0, err
			}
		}
		// Calibrate the finer level's absolute target from its freestream
		// state before injecting, exactly like the two-level path: one
		// freestream-started step gives the residual scale a plain solve on
		// that level would have latched onto. A drop tolerance measured
		// after injection instead would punish the good initial guess — the
		// bilinear prolongation hands the finer level a first residual that
		// is already low, and a further relative drop from there can sit
		// below the level's limit-cycle floor, grinding away the whole
		// coarse budget.
		r0 := finer.Step()
		if math.IsNaN(r0) || r0 <= 0 {
			return 0, errNaNCalibration
		}
		finer.injectFrom(s)
		if cc, ok := finer.stepper.(cflCarrier); ok {
			cc.carryCFL(s.stepper)
		}
		if l-1 == 0 {
			return r0 * m.dropTol, nil
		}
		abs = r0 * m.levelTol(l-1)
	}
	// Single reachable level: latch the target from the first real step.
	// The step counts toward the fine budget; its residual cannot be below
	// the target it just defined (dropTol < 1), so marchFinest simply
	// continues from the next step.
	fine := m.solvers[0]
	r0 := fine.Step()
	m.fineSteps++
	m.steps[0]++
	m.progress(0, r0)
	if math.IsNaN(r0) || r0 <= 0 {
		return 0, errNaNCalibration
	}
	return r0 * m.dropTol, nil
}

// relax marches level l until its residual reaches the absolute target abs
// (when abs > 0: the freestream-calibrated target of an injected level), or
// drops by tol relative to the level's first-step residual (abs == 0: the
// coarsest level, which starts from freestream anyway), bounded by budget
// steps.
func (m *multilevel) relax(ctx context.Context, l, budget int, tol, abs float64) (float64, error) {
	s := m.solvers[l]
	first := -1.0
	res := 0.0
	for n := 0; n < budget; n++ {
		if n%16 == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		res = s.Step()
		m.steps[l]++
		m.progress(l, res)
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: multilevel solve: residual NaN on level %d step %d", l, m.steps[l])
		}
		if abs > 0 {
			if res < abs {
				return res, nil
			}
			continue
		}
		if first < 0 && res > 0 {
			first = res
		}
		if first > 0 && res < first*tol {
			return res, nil
		}
	}
	return res, nil
}

// maxRefits bounds the mid-march refits of one solve: the first one or two
// do the shrink-wrapping; further locus re-detections only jitter by a cell
// and would keep perturbing the march.
const maxRefits = 3

// refitStallOut ends a refit-mode march that has gone this many fine steps
// without improving its best residual by refitStallDrop: a refitted grid's
// limit-cycle floor can sit just above the freestream-calibrated absolute
// target (its shock-layer cells are smaller, so the volume-normalized floor
// is higher), and grinding thousands of steps at the floor converges
// nothing further.
const (
	refitStallOut  = 120
	refitStallDrop = 0.99
)

// marchFinest runs the finest level to the absolute target, re-fitting the
// grid every RefitEvery steps when configured. lastRes is the residual of a
// step already taken by the caller (-1 when none).
func (m *multilevel) marchFinest(ctx context.Context, target, lastRes float64) (float64, error) {
	return m.marchFinestFrom(ctx, target, lastRes, 0, math.Inf(1), 0)
}

// marchFinestFrom is marchFinest continuing from saved refit bookkeeping —
// the checkpoint-resume entry point (resumeMultilevel); the cold march
// starts it at the zero position. With checkpointing configured it emits a
// finest-level checkpoint every CheckpointEvery fine steps, plus a final
// one when the context cancels the march mid-flight.
func (m *multilevel) marchFinestFrom(ctx context.Context, target, lastRes float64, sinceRefit int, best float64, stalled int) (float64, error) {
	s := m.solvers[0]
	res := lastRes
	if res >= 0 && res < target {
		return res, nil
	}
	ckpt := m.o.CheckpointEvery > 0 && m.o.CheckpointSink != nil
	for m.fineSteps < m.maxSteps {
		if m.fineSteps%16 == 0 {
			if err := ctx.Err(); err != nil {
				if ckpt {
					m.checkpointFinest(target, sinceRefit, best, stalled)
				}
				return res, err
			}
		}
		res = s.Step()
		m.fineSteps++
		m.steps[0]++
		sinceRefit++
		m.progress(0, res)
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: multilevel solve: residual NaN at fine step %d", m.fineSteps)
		}
		if res < target {
			return res, nil
		}
		if ckpt && m.fineSteps%m.o.CheckpointEvery == 0 {
			m.checkpointFinest(target, sinceRefit, best, stalled)
		}
		if m.sq.RefitEvery > 0 {
			if res < refitStallDrop*best {
				best = res
				stalled = 0
			} else if stalled++; stalled >= refitStallOut {
				// Converged to the refitted grid's own floor.
				return res, nil
			}
			if m.refits < maxRefits && sinceRefit >= m.sq.RefitEvery && m.fineSteps < m.maxSteps {
				did, err := m.refitFinest()
				if err != nil {
					return res, err
				}
				if did {
					m.refits++
					best, stalled = math.Inf(1), 0
				}
				sinceRefit = 0
			}
		}
	}
	return res, nil
}

// vcycles runs FAS V-cycles until the finest residual reaches the target or
// the fine-step budget is exhausted, with the same mid-march refitting as
// the cascade march.
func (m *multilevel) vcycles(ctx context.Context, target float64) (float64, error) {
	m.saved = make([][]Cons, len(m.solvers))
	for l := 1; l < len(m.solvers); l++ {
		s := m.solvers[l]
		m.saved[l] = make([]Cons, s.ni*s.nj)
		if s.forcing == nil {
			s.forcing = make([]Cons, s.ni*s.nj)
		}
	}
	// The last measured fine residual, seeded from the cascade's calibration
	// step (target = r0 * dropTol), so even a budget too small for one full
	// cycle reports a real value instead of a sentinel.
	res := target / m.dropTol
	sinceRefit := 0
	best := math.Inf(1)
	stalled := 0
	for m.fineSteps < m.maxSteps {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		r, err := m.vcycle(ctx, 0)
		if err != nil {
			return r, err
		}
		// A cycle whose finest smoothing took no steps (budget exhausted
		// mid-cycle) measures nothing: keep the last real residual instead
		// of mistaking the sentinel for convergence.
		if r < 0 {
			continue
		}
		res = r
		if res < target {
			return res, nil
		}
		// The coarse-grid corrections stop paying once only high-frequency
		// fine-grid error is left (injection prolongation re-seeds a little
		// of it every cycle): when the cycles stop making new lows, finish
		// with pure fine-level relaxation instead of cycling the budget away.
		if res < 0.95*best {
			best = res
			stalled = 0
		} else if stalled++; stalled >= 3 {
			return m.marchFinest(ctx, target, res)
		}
		sinceRefit += 2 * m.sq.SmoothSteps
		if m.sq.RefitEvery > 0 && m.refits < maxRefits && sinceRefit >= m.sq.RefitEvery && m.fineSteps < m.maxSteps {
			did, err := m.refitFinest()
			if err != nil {
				return res, err
			}
			if did {
				m.refits++
				best, stalled = math.Inf(1), 0
			}
			sinceRefit = 0
		}
	}
	return res, nil
}

// vcycle recursively descends one V from level l: pre-smooth, restrict the
// state and install the FAS defect correction on the next coarser level,
// recurse, prolongate the coarse correction, post-smooth. Returns the last
// smoothing residual of level l.
func (m *multilevel) vcycle(ctx context.Context, l int) (float64, error) {
	s := m.solvers[l]
	if l == len(m.solvers)-1 {
		// Coarsest level: relax harder — it is nearly free and anchors the
		// long-wavelength error of the whole hierarchy.
		return m.smooth(ctx, l, 4*m.sq.SmoothSteps)
	}
	pre, err := m.smooth(ctx, l, m.sq.SmoothSteps)
	if err != nil {
		return pre, err
	}
	c := m.solvers[l+1]
	m.restrictFAS(s, c)
	copy(m.saved[l+1], c.U)
	if _, err := m.vcycle(ctx, l+1); err != nil {
		return 0, err
	}
	s.correctFrom(c, m.saved[l+1])
	post, err := m.smooth(ctx, l, m.sq.SmoothSteps)
	if err != nil || post >= 0 {
		return post, err
	}
	// Budget died between the smoothing sweeps: the pre-smooth residual is
	// the last real measurement of this level.
	return pre, nil
}

// smooth advances level l by n time steps and returns the last residual, or
// -1 when it could not take a single step (finest-level budget exhausted) —
// a sentinel callers must not compare against a convergence target.
func (m *multilevel) smooth(ctx context.Context, l, n int) (float64, error) {
	s := m.solvers[l]
	res := -1.0
	for k := 0; k < n; k++ {
		if k%16 == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		if l == 0 && m.fineSteps >= m.maxSteps {
			return res, nil
		}
		res = s.Step()
		m.steps[l]++
		if l == 0 {
			m.fineSteps++
		}
		m.progress(l, res)
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: multilevel solve: residual NaN on level %d step %d", l, m.steps[l])
		}
	}
	return res, nil
}

// progress reports a level's step to the configured Progress callback.
func (m *multilevel) progress(l int, res float64) {
	if m.o.Progress == nil {
		return
	}
	budget := m.sq.CoarseMaxSteps
	if l == 0 {
		budget = m.maxSteps
	}
	m.o.Progress(m.solvers[l].phase, m.steps[l], budget, res, m.solvers[l].diag(m.refits))
}

// checkpointFinest emits a finest-level checkpoint carrying the march's
// absolute target and refit bookkeeping, so resumeMultilevel can continue
// the march without re-running the cascade.
func (m *multilevel) checkpointFinest(target float64, sinceRefit int, best float64, stalled int) {
	s := m.solvers[0]
	cp := s.Checkpoint()
	cp.Step = m.fineSteps
	cp.Target = target
	cp.FineSteps = m.fineSteps
	cp.Refits = m.refits
	cp.SinceRefit = sinceRefit
	if !math.IsInf(best, 1) {
		cp.MarchBest = best
	}
	cp.MarchStalled = stalled
	m.o.CheckpointSink(cp)
}

// restrictFAS restricts the fine state onto the coarse level and installs
// the FAS defect correction: forcing = R_H(restrict u_h) - restrict(R_h(u_h)),
// so the coarse level's effective residual starts at the restricted fine
// residual and its fixed point maps back onto the fine solution. Both
// residual evaluations see their own level's forcing (nil on the finest), so
// the construction telescopes down a deeper hierarchy.
func (m *multilevel) restrictFAS(f, c *Solver) {
	f.updatePrimitives()
	f.computeResidual()
	restrictState(f, c)
	// Aggregate the fine (effective) residuals over the same index partition
	// the state restriction used.
	for k := range c.forcing {
		c.forcing[k] = Cons{}
	}
	for i := 0; i < f.ni; i++ {
		ic := i * c.ni / f.ni
		for j := 0; j < f.nj; j++ {
			jc := j * c.nj / f.nj
			kc := c.idx(ic, jc)
			for cc := 0; cc < 4; cc++ {
				c.forcing[kc][cc] -= f.res[f.idx(i, j)][cc]
			}
		}
	}
	// Raw coarse residual at the restricted state (forcing must not apply to
	// its own construction).
	fc := c.forcing
	c.forcing = nil
	c.updatePrimitives()
	c.computeResidual()
	c.forcing = fc
	for k := range c.forcing {
		for cc := 0; cc < 4; cc++ {
			c.forcing[k][cc] += c.res[k][cc]
		}
	}
}

// restrictState sets the coarse solver's conserved field to the
// volume-weighted average of the fine cells in each coarse cell's index
// partition (fine cell i maps to coarse cell i*cni/fni, likewise j). The
// averaging is conservative over the partition: the total conserved content
// computed with the agglomerated partition volumes equals the fine total to
// roundoff.
func restrictState(f, c *Solver) {
	acc := c.u0 // stage storage doubles as the accumulator between steps
	vol := c.dt // likewise the local-time-step array (rebuilt every step)
	for k := range acc {
		acc[k] = Cons{}
		vol[k] = 0
	}
	fmet := f.met
	for i := 0; i < f.ni; i++ {
		ic := i * c.ni / f.ni
		for j := 0; j < f.nj; j++ {
			jc := j * c.nj / f.nj
			kc := c.idx(ic, jc)
			kf := f.idx(i, j)
			v := fmet.Vol[kf]
			for cc := 0; cc < 4; cc++ {
				acc[kc][cc] += v * f.U[kf][cc]
			}
			vol[kc] += v
		}
	}
	for k := range acc {
		if vol[k] <= 0 {
			continue
		}
		for cc := 0; cc < 4; cc++ {
			c.U[k][cc] = acc[k][cc] / vol[k]
		}
	}
}

// correctFrom applies the prolongated coarse-grid correction
// U_h += P(U_H - saved) with the same bilinear prolongation the cascade's
// injectFrom uses (nearest-cell injection re-seeded blocky high-frequency
// error every cycle, which the post-smoothing then had to burn down),
// skipping any fine cell the raw correction would drive out of the physical
// state space (negative density or internal energy) — the next smoothing
// sweeps repair those cells instead.
func (s *Solver) correctFrom(c *Solver, saved []Cons) {
	for i := 0; i < s.ni; i++ {
		i0, ti := prolongWeights(i, s.ni, c.ni)
		for j := 0; j < s.nj; j++ {
			j0, tj := prolongWeights(j, s.nj, c.nj)
			du := c.bilinearDelta(saved, i0, j0, ti, tj)
			k := s.idx(i, j)
			var cand Cons
			for cc := 0; cc < 4; cc++ {
				cand[cc] = s.U[k][cc] + du[cc]
			}
			if s.physicalState(cand) {
				s.U[k] = cand
			}
		}
	}
}

// bilinearDelta blends the coarse correction U - saved around fractional
// cell-center index (i0+ti, j0+tj).
func (c *Solver) bilinearDelta(saved []Cons, i0, j0 int, ti, tj float64) Cons {
	i1, j1 := i0+1, j0+1
	if i1 > c.ni-1 {
		i1 = c.ni - 1
	}
	if j1 > c.nj-1 {
		j1 = c.nj - 1
	}
	w00 := (1 - ti) * (1 - tj)
	w01 := (1 - ti) * tj
	w10 := ti * (1 - tj)
	w11 := ti * tj
	k00 := c.idx(i0, j0)
	k01 := c.idx(i0, j1)
	k10 := c.idx(i1, j0)
	k11 := c.idx(i1, j1)
	var out Cons
	for cc := 0; cc < 4; cc++ {
		out[cc] = w00*(c.U[k00][cc]-saved[k00][cc]) +
			w01*(c.U[k01][cc]-saved[k01][cc]) +
			w10*(c.U[k10][cc]-saved[k10][cc]) +
			w11*(c.U[k11][cc]-saved[k11][cc])
	}
	return out
}

// refitFinest re-detects the shock locus on the finest level, re-fits the
// outer boundary with the configured margin and transfers the solution onto
// the refitted grid, reporting whether a refit actually happened. A refit
// that would move the boundary by less than 5% everywhere is skipped — the
// grid has already shrink-wrapped the shock, and locus re-detection only
// jitters by a cell.
func (m *multilevel) refitFinest() (bool, error) {
	s := m.solvers[0]
	ng, err := refitToShock(s, s.G, m.sq.RefitMargin)
	if err != nil {
		return false, fmt.Errorf("fvm: multilevel solve: mid-march refit: %w", err)
	}
	moved := 0.0
	for i := 0; i <= s.ni; i++ {
		d0, d1 := s.G.WallDistance(i), ng.WallDistance(i)
		if d0 > 0 {
			if rel := math.Abs(d1-d0) / d0; rel > moved {
				moved = rel
			}
		}
	}
	if moved < 0.05 {
		return false, nil
	}
	if err := s.RefitTo(ng); err != nil {
		return false, err
	}
	if rr, ok := s.stepper.(rampResetter); ok {
		rr.resetRamp()
	}
	// The coarse hierarchy must track the finest geometry for the V-cycle's
	// restriction to stay meaningful; rebuild it from the refitted grid.
	if m.sq.Cycle == CycleV && len(m.solvers) > 1 {
		g := s.G
		for l := 1; l < len(m.solvers); l++ {
			cg, err := g.Coarsen(m.sq.Coarsen)
			if err != nil {
				// The refitted grid lost a level (cannot happen with equal
				// cell counts, but stay defensive): drop the tail.
				m.closeTail(l)
				break
			}
			old := m.solvers[l]
			ns, err := New(cg, m.o)
			if err != nil {
				return true, err
			}
			ns.phase = old.phase
			ns.forcing = make([]Cons, ns.ni*ns.nj)
			copy(ns.U, old.U)
			old.Close()
			m.solvers[l] = ns
			g = cg
		}
	}
	return true, nil
}

// closeTail closes and drops levels l.. of the hierarchy.
func (m *multilevel) closeTail(l int) {
	for _, s := range m.solvers[l:] {
		s.Close()
	}
	m.solvers = m.solvers[:l]
	m.steps = m.steps[:l]
	if m.saved != nil {
		m.saved = m.saved[:l]
	}
}

// RefitTo moves the solver onto a re-fitted grid with identical cell counts
// (same body and wall, new outer-boundary standoff), transferring the
// conserved field by linear interpolation in wall-normal distance along each
// i-line: the mid-march shock-refitting transfer. New cell centers outside
// the old line's span clamp to its end states.
func (s *Solver) RefitTo(ng *grid.Grid2D) error {
	if ng.NI != s.ni || ng.NJ != s.nj {
		return fmt.Errorf("fvm: RefitTo needs matching cell counts, got %dx%d want %dx%d", ng.NI, ng.NJ, s.ni, s.nj)
	}
	nm := ng.Metrics()
	nj := s.nj
	dOld := make([]float64, nj)
	uOld := make([]Cons, nj)
	for i := 0; i < s.ni; i++ {
		// Wall midpoint of the i-line (identical on both grids: Refit keeps
		// the wall nodes).
		xw := 0.5 * (s.G.X[i][0] + s.G.X[i+1][0])
		yw := 0.5 * (s.G.Y[i][0] + s.G.Y[i+1][0])
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			dOld[j] = math.Hypot(s.met.Cx[k]-xw, s.met.Cy[k]-yw)
			uOld[j] = s.U[k]
		}
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			d := math.Hypot(nm.Cx[k]-xw, nm.Cy[k]-yw)
			s.U[k] = interpCons(dOld, uOld, d)
		}
	}
	s.G = ng
	s.met = nm
	// Recorded limiter offsets refer to the old grid's faces: drop back to
	// live limiting until the freeze threshold latches again.
	s.limMode = limLive
	return nil
}

// interpCons linearly interpolates a conserved-state profile at distance d,
// clamping outside the sample span.
func interpCons(ds []float64, us []Cons, d float64) Cons {
	n := len(ds)
	if d <= ds[0] {
		return us[0]
	}
	if d >= ds[n-1] {
		return us[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ds[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (d - ds[lo]) / (ds[hi] - ds[lo])
	var out Cons
	for c := 0; c < 4; c++ {
		out[c] = us[lo][c] + t*(us[hi][c]-us[lo][c])
	}
	return out
}
