package fvm

import (
	"context"
	"math"
	"testing"
)

// TestCheckpointEncodeDecodeRoundTrip encodes a live solver checkpoint and
// verifies every field — float payloads bit for bit — survives the binary
// round trip.
func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	g, o, err := ReferenceViscousCase(8, 12, TimeSteppingImplicit)
	if err != nil {
		t.Fatal(err)
	}
	o.FreezeLimiterAt = 1e-2
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Step()
	}
	cp := s.Checkpoint()
	cp.Step, cp.First, cp.Target = 20, 1.25, 3.5e-3
	enc, err := cp.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Format != CheckpointFormat || dec.NI != cp.NI || dec.NJ != cp.NJ {
		t.Fatalf("shape: got format %d %dx%d, want %d %dx%d", dec.Format, dec.NI, dec.NJ, CheckpointFormat, cp.NI, cp.NJ)
	}
	if dec.Phase != cp.Phase || dec.Step != cp.Step || dec.First != cp.First || dec.Target != cp.Target {
		t.Fatalf("loop position: got %q %d %g %g, want %q %d %g %g",
			dec.Phase, dec.Step, dec.First, dec.Target, cp.Phase, cp.Step, cp.First, cp.Target)
	}
	if dec.CFL != cp.CFL || dec.RampBest != cp.RampBest || dec.RampStall != cp.RampStall ||
		dec.RampCap != cp.RampCap || dec.RampLows != cp.RampLows || dec.Fallbacks != cp.Fallbacks {
		t.Fatalf("ramp state did not round-trip: %+v vs %+v", dec, cp)
	}
	if dec.LimMode != cp.LimMode || dec.LimFirst != cp.LimFirst {
		t.Fatalf("limiter latch: got (%d, %g), want (%d, %g)", dec.LimMode, dec.LimFirst, cp.LimMode, cp.LimFirst)
	}
	bitEqual := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d floats, want %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %x != %x", name, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
	bitEqual("GridX", dec.GridX, cp.GridX)
	bitEqual("GridY", dec.GridY, cp.GridY)
	bitEqual("U", dec.U, cp.U)
	bitEqual("FrzI", dec.FrzI, cp.FrzI)
	bitEqual("FrzJ", dec.FrzJ, cp.FrzJ)
}

// TestDecodeCheckpointRejectsDamage exercises the torn-file paths: any
// corruption must fail decoding, never yield a checkpoint.
func TestDecodeCheckpointRejectsDamage(t *testing.T) {
	g, o, err := ReferenceViscousCase(8, 12, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Step()
	enc, err := s.Checkpoint().AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(enc); err != nil {
		t.Fatalf("pristine checkpoint failed to decode: %v", err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"truncated":   enc[:len(enc)/2],
		"bad magic":   append([]byte("NOTCKPT0"), enc[8:]...),
		"flipped bit": flipByte(enc, len(enc)/2),
		"torn tail":   enc[:len(enc)-7],
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("%s: decode succeeded on damaged data", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

// TestRestoreRejectsMismatch: a checkpoint from a different grid shape must
// be refused, not silently misapplied.
func TestRestoreRejectsMismatch(t *testing.T) {
	g, o, err := ReferenceViscousCase(8, 12, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Step()
	cp := s.Checkpoint()
	cp.NI++
	g2, o2, err := ReferenceViscousCase(8, 12, "")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(g2, o2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Restore(cp); err == nil {
		t.Fatal("restore accepted a checkpoint for a different grid shape")
	}
	bad := &Checkpoint{Format: CheckpointFormat + 1}
	if err := s2.Restore(bad); err == nil {
		t.Fatal("restore accepted a foreign format version")
	}
}

// TestResumeBitExact is the crash/resume equivalence property: a march
// cancelled mid-run and resumed from its last checkpoint must reach the
// terminal state of the uninterrupted march bit for bit (same machine),
// while reporting strictly fewer process-local steps.
func TestResumeBitExact(t *testing.T) {
	const (
		maxSteps = 4000
		dropTol  = 5e-5
		cancelAt = 15
	)
	build := func() (*Solver, error) {
		g, o, err := ReferenceViscousCase(8, 12, TimeSteppingImplicit)
		if err != nil {
			return nil, err
		}
		o.FreezeLimiterAt = 1e-1
		return New(g, o)
	}

	// Uninterrupted reference march.
	cold, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldSteps := 0
	cold.Opts.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { coldSteps = step }
	coldRes, err := cold.RunCtx(context.Background(), maxSteps, dropTol)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted march: periodic checkpoints, context cancelled mid-run;
	// the cancellation branch emits a final checkpoint before returning.
	victim, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var latest []byte
	victim.Opts.CheckpointEvery = 10
	victim.Opts.CheckpointSink = func(cp *Checkpoint) {
		enc, err := cp.AppendBinary(nil)
		if err != nil {
			t.Errorf("encode checkpoint: %v", err)
			return
		}
		latest = enc
	}
	victim.Opts.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) {
		if step >= cancelAt {
			cancel()
		}
	}
	if _, err := victim.RunCtx(ctx, maxSteps, dropTol); err == nil {
		t.Fatal("cancelled march returned no error (converged before the cancel point?)")
	}
	if latest == nil {
		t.Fatal("cancelled march emitted no checkpoint")
	}
	cp, err := DecodeCheckpoint(latest)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step == 0 {
		t.Fatal("checkpoint carries no step offset")
	}

	// Resume in a fresh solver and march to convergence.
	resumed, err := build()
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	resumedSteps, restarts := 0, 0
	resumed.Opts.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) {
		resumedSteps = step
		restarts = diag.Restarts
	}
	resumed.Opts.Restore = cp
	warmRes, err := resumed.RunCtx(context.Background(), maxSteps, dropTol)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(warmRes) != math.Float64bits(coldRes) {
		t.Fatalf("terminal residual differs: resumed %v, cold %v", warmRes, coldRes)
	}
	for k := range cold.U {
		for c := 0; c < 4; c++ {
			if math.Float64bits(resumed.U[k][c]) != math.Float64bits(cold.U[k][c]) {
				t.Fatalf("U[%d][%d] differs after resume: %v vs %v", k, c, resumed.U[k][c], cold.U[k][c])
			}
		}
	}
	if resumedSteps >= coldSteps {
		t.Fatalf("resumed march reported %d process-local steps, cold march %d — resume saved nothing", resumedSteps, coldSteps)
	}
	if restarts != 1 {
		t.Fatalf("resumed march reported %d restarts, want 1", restarts)
	}
}

// TestCheckpointScratchReuse: after the first emission, Checkpoint() must
// fill the same scratch object (the allocation-free contract for the
// marching loop).
func TestCheckpointScratchReuse(t *testing.T) {
	g, o, err := ReferenceViscousCase(8, 12, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Step()
	a := s.Checkpoint()
	s.Step()
	b := s.Checkpoint()
	if a != b {
		t.Fatal("Checkpoint allocated a fresh object on the second call")
	}
	allocs := testing.AllocsPerRun(10, func() { s.Checkpoint() })
	if allocs != 0 {
		t.Fatalf("Checkpoint allocates %.0f objects per call after warm-up, want 0", allocs)
	}
}
