package fvm

import "math"

// FaceStates is a structure-of-arrays pencil of reconstructed face states:
// one slice per primitive component, indexed by face. The batched flux
// sweeps fill a pencil per grid line from the AoS primitive cache and hand
// it to BatchFlux, so the kernel inner loop streams contiguous float64
// slices instead of chasing Prim structs through an interface call per
// face.
type FaceStates struct {
	Rho, U, V, P, T, A, E []float64
}

// newFaceStates allocates a pencil holding n faces.
func newFaceStates(n int) FaceStates {
	return FaceStates{
		Rho: make([]float64, n),
		U:   make([]float64, n),
		V:   make([]float64, n),
		P:   make([]float64, n),
		T:   make([]float64, n),
		A:   make([]float64, n),
		E:   make([]float64, n),
	}
}

// prim returns face f of the pencil as a Prim value — the bridge back to
// the scalar kernel API, used by the non-batched fallback and the
// equivalence tests.
func (fs *FaceStates) prim(f int) Prim {
	return Prim{Rho: fs.Rho[f], U: fs.U[f], V: fs.V[f], P: fs.P[f], T: fs.T[f], A: fs.A[f], E: fs.E[f]}
}

// setPrim stores q as face f of the pencil.
func (fs *FaceStates) setPrim(f int, q Prim) {
	fs.Rho[f] = q.Rho
	fs.U[f] = q.U
	fs.V[f] = q.V
	fs.P[f] = q.P
	fs.T[f] = q.T
	fs.A[f] = q.A
	fs.E[f] = q.E
}

// BatchFluxKernel is the batched fast path of a flux kernel. BatchFlux
// computes n face fluxes in one straight-line loop with no per-face
// interface dispatch: dst is face-major (components dst[4*f..4*f+3]), L
// and R hold the left/right states of face f at slice index f, and nrm
// packs (nx, ny, area) triplets — exactly the layout of the cached
// grid.Metrics face arrays, so metric subslices pass through without a
// gather. Implementations must reproduce the scalar Flux arithmetic (the
// two paths are cross-checked to a few ulp by the kernel equivalence
// tests); the scalar Flux remains the reference path and serves the
// boundary faces. The solver type-asserts its kernel once at construction
// and falls back to per-face scalar calls for kernels without a batched
// form.
type BatchFluxKernel interface {
	FluxKernel
	BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int)
}

// BatchFlux is the batched HLLE sweep: the same arithmetic as Flux with
// the physical fluxes and conserved states expanded into scalars, so each
// face stays register-resident and the loop carries no interface calls.
//
//cataero:hotpath
func (hlleKernel) BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lRho, lU, lV, lP, lA, lE := L.Rho[f], L.U[f], L.V[f], L.P[f], L.A[f], L.E[f]
		rRho, rU, rV, rP, rA, rE := R.Rho[f], R.U[f], R.V[f], R.P[f], R.A[f], R.E[f]
		unL := lU*nx + lV*ny
		unR := rU*nx + rV*ny
		sl := math.Min(unL-lA, unR-rA)
		sr := math.Max(unL+lA, unR+rA)
		var f0, f1, f2, f3 float64
		switch {
		case sl >= 0:
			H := lE + lP/lRho + 0.5*(lU*lU+lV*lV)
			f0 = lRho * unL
			f1 = lRho*lU*unL + lP*nx
			f2 = lRho*lV*unL + lP*ny
			f3 = lRho * unL * H
		case sr <= 0:
			H := rE + rP/rRho + 0.5*(rU*rU+rV*rV)
			f0 = rRho * unR
			f1 = rRho*rU*unR + rP*nx
			f2 = rRho*rV*unR + rP*ny
			f3 = rRho * unR * H
		default:
			f0, f1, f2, f3 = hllMid(lRho, lU, lV, lP, lE, rRho, rU, rV, rP, rE, unL, unR, sl, sr, nx, ny)
		}
		k := 4 * f
		dst[k] = f0 * area
		dst[k+1] = f1 * area
		dst[k+2] = f2 * area
		dst[k+3] = f3 * area
	}
}

// hllMid is the HLL middle-state flux on expanded scalars, shared by the
// batched HLLE/HLLE-EF loops and the batched HLLC degenerate fallback.
// The expression order matches the scalar kernels exactly.
//
//cataero:hotpath
func hllMid(lRho, lU, lV, lP, lE, rRho, rU, rV, rP, rE, unL, unR, sl, sr, nx, ny float64) (f0, f1, f2, f3 float64) {
	HL := lE + lP/lRho + 0.5*(lU*lU+lV*lV)
	HR := rE + rP/rRho + 0.5*(rU*rU+rV*rV)
	fL0 := lRho * unL
	fL1 := lRho*lU*unL + lP*nx
	fL2 := lRho*lV*unL + lP*ny
	fL3 := lRho * unL * HL
	fR0 := rRho * unR
	fR1 := rRho*rU*unR + rP*nx
	fR2 := rRho*rV*unR + rP*ny
	fR3 := rRho * unR * HR
	uL0 := lRho
	uL1 := lRho * lU
	uL2 := lRho * lV
	uL3 := lRho * (lE + 0.5*(lU*lU+lV*lV))
	uR0 := rRho
	uR1 := rRho * rU
	uR2 := rRho * rV
	uR3 := rRho * (rE + 0.5*(rU*rU+rV*rV))
	inv := 1 / (sr - sl)
	f0 = (sr*fL0 - sl*fR0 + sl*sr*(uR0-uL0)) * inv
	f1 = (sr*fL1 - sl*fR1 + sl*sr*(uR1-uL1)) * inv
	f2 = (sr*fL2 - sl*fR2 + sl*sr*(uR2-uL2)) * inv
	f3 = (sr*fL3 - sl*fR3 + sl*sr*(uR3-uL3)) * inv
	return f0, f1, f2, f3
}

// BatchFlux is the batched HLLE-EF sweep: HLLE wave speeds pushed past the
// dissipation floor, always through the HLL average (see the scalar Flux).
//
//cataero:hotpath
func (hlleEFKernel) BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lRho, lU, lV, lP, lA, lE := L.Rho[f], L.U[f], L.V[f], L.P[f], L.A[f], L.E[f]
		rRho, rU, rV, rP, rA, rE := R.Rho[f], R.U[f], R.V[f], R.P[f], R.A[f], R.E[f]
		unL := lU*nx + lV*ny
		unR := rU*nx + rV*ny
		sl := math.Min(unL-lA, unR-rA)
		sr := math.Max(unL+lA, unR+rA)
		d := entropyFixFrac * 0.5 * (lA + rA)
		if sl > -d {
			sl = -d
		}
		if sr < d {
			sr = d
		}
		f0, f1, f2, f3 := hllMid(lRho, lU, lV, lP, lE, rRho, rU, rV, rP, rE, unL, unR, sl, sr, nx, ny)
		k := 4 * f
		dst[k] = f0 * area
		dst[k+1] = f1 * area
		dst[k+2] = f2 * area
		dst[k+3] = f3 * area
	}
}

// BatchFlux is the batched HLLC sweep, mirroring the scalar Flux branch
// for branch: pure upwind outside the wave fan, the left or right star
// state inside it, and the HLL average on a degenerate contact.
//
//cataero:hotpath
func (hllcKernel) BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lRho, lU, lV, lP, lA, lE := L.Rho[f], L.U[f], L.V[f], L.P[f], L.A[f], L.E[f]
		rRho, rU, rV, rP, rA, rE := R.Rho[f], R.U[f], R.V[f], R.P[f], R.A[f], R.E[f]
		unL := lU*nx + lV*ny
		unR := rU*nx + rV*ny
		sl := math.Min(unL-lA, unR-rA)
		sr := math.Max(unL+lA, unR+rA)
		var f0, f1, f2, f3 float64
		switch {
		case sl >= 0:
			H := lE + lP/lRho + 0.5*(lU*lU+lV*lV)
			f0 = lRho * unL
			f1 = lRho*lU*unL + lP*nx
			f2 = lRho*lV*unL + lP*ny
			f3 = lRho * unL * H
		case sr <= 0:
			H := rE + rP/rRho + 0.5*(rU*rU+rV*rV)
			f0 = rRho * unR
			f1 = rRho*rU*unR + rP*nx
			f2 = rRho*rV*unR + rP*ny
			f3 = rRho * unR * H
		default:
			den := lRho*(sl-unL) - rRho*(sr-unR)
			if math.Abs(den) < 1e-300 {
				f0, f1, f2, f3 = hllMid(lRho, lU, lV, lP, lE, rRho, rU, rV, rP, rE, unL, unR, sl, sr, nx, ny)
				break
			}
			sm := (rP - lP + lRho*unL*(sl-unL) - rRho*unR*(sr-unR)) / den
			if sm >= 0 {
				H := lE + lP/lRho + 0.5*(lU*lU+lV*lV)
				fL0 := lRho * unL
				fL1 := lRho*lU*unL + lP*nx
				fL2 := lRho*lV*unL + lP*ny
				fL3 := lRho * unL * H
				uL0 := lRho
				uL1 := lRho * lU
				uL2 := lRho * lV
				uL3 := lRho * (lE + 0.5*(lU*lU+lV*lV))
				fac := lRho * (sl - unL) / (sl - sm)
				et := lE + 0.5*(lU*lU+lV*lV)
				eStar := et + (sm-unL)*(sm+lP/(lRho*(sl-unL)))
				f0 = fL0 + sl*(fac-uL0)
				f1 = fL1 + sl*(fac*(lU+(sm-unL)*nx)-uL1)
				f2 = fL2 + sl*(fac*(lV+(sm-unL)*ny)-uL2)
				f3 = fL3 + sl*(fac*eStar-uL3)
			} else {
				H := rE + rP/rRho + 0.5*(rU*rU+rV*rV)
				fR0 := rRho * unR
				fR1 := rRho*rU*unR + rP*nx
				fR2 := rRho*rV*unR + rP*ny
				fR3 := rRho * unR * H
				uR0 := rRho
				uR1 := rRho * rU
				uR2 := rRho * rV
				uR3 := rRho * (rE + 0.5*(rU*rU+rV*rV))
				fac := rRho * (sr - unR) / (sr - sm)
				et := rE + 0.5*(rU*rU+rV*rV)
				eStar := et + (sm-unR)*(sm+rP/(rRho*(sr-unR)))
				f0 = fR0 + sr*(fac-uR0)
				f1 = fR1 + sr*(fac*(rU+(sm-unR)*nx)-uR1)
				f2 = fR2 + sr*(fac*(rV+(sm-unR)*ny)-uR2)
				f3 = fR3 + sr*(fac*eStar-uR3)
			}
		}
		k := 4 * f
		dst[k] = f0 * area
		dst[k+1] = f1 * area
		dst[k+2] = f2 * area
		dst[k+3] = f3 * area
	}
}

// BatchFlux is the batched AUSM+ sweep: Liou's Mach and pressure
// splittings on expanded scalars, identical expression order to Flux.
//
//cataero:hotpath
func (ausmKernel) BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	const alpha = 3.0 / 16.0
	const beta = 1.0 / 8.0
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lRho, lU, lV, lP, lA, lE := L.Rho[f], L.U[f], L.V[f], L.P[f], L.A[f], L.E[f]
		rRho, rU, rV, rP, rA, rE := R.Rho[f], R.U[f], R.V[f], R.P[f], R.A[f], R.E[f]
		k := 4 * f
		a := 0.5 * (lA + rA)
		if a <= 0 {
			dst[k], dst[k+1], dst[k+2], dst[k+3] = 0, 0, 0, 0
			continue
		}
		mL := (lU*nx + lV*ny) / a
		mR := (rU*nx + rV*ny) / a
		var mPlus, pPlus float64
		if math.Abs(mL) >= 1 {
			mPlus = 0.5 * (mL + math.Abs(mL))
			pPlus = mPlus / mL
		} else {
			mPlus = 0.25*(mL+1)*(mL+1) + beta*(mL*mL-1)*(mL*mL-1)
			pPlus = 0.25*(mL+1)*(mL+1)*(2-mL) + alpha*mL*(mL*mL-1)*(mL*mL-1)
		}
		var mMinus, pMinus float64
		if math.Abs(mR) >= 1 {
			mMinus = 0.5 * (mR - math.Abs(mR))
			pMinus = mMinus / mR
		} else {
			mMinus = -0.25*(mR-1)*(mR-1) - beta*(mR*mR-1)*(mR*mR-1)
			pMinus = 0.25*(mR-1)*(mR-1)*(2+mR) - alpha*mR*(mR*mR-1)*(mR*mR-1)
		}
		m12 := mPlus + mMinus
		p12 := pPlus*lP + pMinus*rP
		// Upwind the convected vector (rho, rho u, rho v, rho H) by m12.
		qRho, qU, qV, qP, qE := lRho, lU, lV, lP, lE
		if m12 < 0 {
			qRho, qU, qV, qP, qE = rRho, rU, rV, rP, rE
		}
		H := qE + qP/qRho + 0.5*(qU*qU+qV*qV)
		mass := a * m12 * qRho
		dst[k] = mass * area
		dst[k+1] = (mass*qU + p12*nx) * area
		dst[k+2] = (mass*qV + p12*ny) * area
		dst[k+3] = mass * H * area
	}
}

// BatchFlux is the batched AUSM+up sweep: the AUSM+ splittings plus the
// low-Mach pressure/velocity diffusion terms on expanded scalars, identical
// expression order to the scalar Flux.
//
//cataero:hotpath
func (ausmUpKernel) BatchFlux(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	const alpha = 3.0 / 16.0
	const beta = 1.0 / 8.0
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lRho, lU, lV, lP, lA, lE := L.Rho[f], L.U[f], L.V[f], L.P[f], L.A[f], L.E[f]
		rRho, rU, rV, rP, rA, rE := R.Rho[f], R.U[f], R.V[f], R.P[f], R.A[f], R.E[f]
		k := 4 * f
		a := 0.5 * (lA + rA)
		if a <= 0 {
			dst[k], dst[k+1], dst[k+2], dst[k+3] = 0, 0, 0, 0
			continue
		}
		unL := lU*nx + lV*ny
		unR := rU*nx + rV*ny
		mL := unL / a
		mR := unR / a
		var mPlus, pPlus float64
		if math.Abs(mL) >= 1 {
			mPlus = 0.5 * (mL + math.Abs(mL))
			pPlus = mPlus / mL
		} else {
			mPlus = 0.25*(mL+1)*(mL+1) + beta*(mL*mL-1)*(mL*mL-1)
			pPlus = 0.25*(mL+1)*(mL+1)*(2-mL) + alpha*mL*(mL*mL-1)*(mL*mL-1)
		}
		var mMinus, pMinus float64
		if math.Abs(mR) >= 1 {
			mMinus = 0.5 * (mR - math.Abs(mR))
			pMinus = mMinus / mR
		} else {
			mMinus = -0.25*(mR-1)*(mR-1) - beta*(mR*mR-1)*(mR*mR-1)
			pMinus = 0.25*(mR-1)*(mR-1)*(2+mR) - alpha*mR*(mR*mR-1)*(mR*mR-1)
		}
		mBar2 := 0.5 * (mL*mL + mR*mR)
		mo2 := mBar2
		if mo2 < ausmUpMco*ausmUpMco {
			mo2 = ausmUpMco * ausmUpMco
		}
		if mo2 > 1 {
			mo2 = 1
		}
		mo := math.Sqrt(mo2)
		fa := mo * (2 - mo)
		rhoBar := 0.5 * (lRho + rRho)
		mp := 0.0
		if w := 1 - ausmUpSigma*mBar2; w > 0 {
			mp = -(ausmUpKp / fa) * w * (rP - lP) / (rhoBar * a * a)
			if mp > 0.05 {
				mp = 0.05
			} else if mp < -0.05 {
				mp = -0.05
			}
		}
		m12 := mPlus + mMinus + mp
		pu := -ausmUpKu * pPlus * pMinus * (lRho + rRho) * (fa * a) * (unR - unL)
		p12 := pPlus*lP + pMinus*rP + pu
		qRho, qU, qV, qP, qE := lRho, lU, lV, lP, lE
		if m12 < 0 {
			qRho, qU, qV, qP, qE = rRho, rU, rV, rP, rE
		}
		H := qE + qP/qRho + 0.5*(qU*qU+qV*qV)
		mass := a * m12 * qRho
		dst[k] = mass * area
		dst[k+1] = (mass*qU + p12*nx) * area
		dst[k+2] = (mass*qV + p12*ny) * area
		dst[k+3] = mass * H * area
	}
}
