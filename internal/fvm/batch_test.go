package fvm

import (
	"math"
	"math/rand"
	"testing"

	"cataero/internal/gas"
)

// harshPrim draws states from the regimes that stress a flux kernel's
// branches: ordinary flow, near-vacuum, and strong-shock (large pressure
// and density ratio) states, with A and E kept thermodynamically
// consistent (ideal gamma = 1.4) like the solver's primitive cache.
func harshPrim(r *rand.Rand) Prim {
	var rho, p float64
	switch r.Intn(4) {
	case 0: // near-vacuum
		rho = 1e-9 * (1 + r.Float64())
		p = 1e-7 * (1 + r.Float64())
	case 1: // post-strong-shock
		rho = 2 + r.Float64()*6
		p = 1e6 + r.Float64()*5e7
	default:
		rho = 0.05 + r.Float64()*2
		p = 1e3 + r.Float64()*2e5
	}
	a := math.Sqrt(1.4 * p / rho)
	return Prim{
		Rho: rho,
		U:   (r.Float64()*8 - 4) * a, // up to ~M 4 either way
		V:   (r.Float64()*4 - 2) * a,
		P:   p,
		T:   200 + r.Float64()*5000,
		A:   a,
		E:   p / (0.4 * rho),
	}
}

// TestBatchFluxMatchesScalar cross-checks every batched kernel against its
// scalar reference over randomized pencils: the batched sweep mirrors the
// scalar arithmetic expression-for-expression, so the two paths must agree
// to within a few ulp on every component, including the near-vacuum and
// strong-shock states that exercise the wave-fan branches.
func TestBatchFluxMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const n = 64
	for _, name := range FluxKernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := FluxKernelFor(name)
			if err != nil {
				t.Fatal(err)
			}
			bk, ok := k.(BatchFluxKernel)
			if !ok {
				t.Fatalf("kernel %q has no batched form", name)
			}
			L, R := newFaceStates(n), newFaceStates(n)
			nrm := make([]float64, 3*n)
			dst := make([]float64, 4*n)
			for trial := 0; trial < 40; trial++ {
				for f := 0; f < n; f++ {
					L.setPrim(f, harshPrim(r))
					R.setPrim(f, harshPrim(r))
					th := r.Float64() * 2 * math.Pi
					nrm[3*f] = math.Cos(th)
					nrm[3*f+1] = math.Sin(th)
					nrm[3*f+2] = 0.1 + r.Float64()*3
				}
				bk.BatchFlux(dst, &L, &R, nrm, n)
				for f := 0; f < n; f++ {
					want := k.Flux(L.prim(f), R.prim(f), nrm[3*f], nrm[3*f+1], nrm[3*f+2])
					scale := 0.0
					for c := 0; c < 4; c++ {
						if m := math.Abs(want[c]); m > scale {
							scale = m
						}
					}
					for c := 0; c < 4; c++ {
						if d := math.Abs(dst[4*f+c] - want[c]); d > 1e-13*(scale+1e-300) {
							t.Fatalf("trial %d face %d component %d: batched %g scalar %g (diff %g)",
								trial, f, c, dst[4*f+c], want[c], d)
						}
					}
				}
			}
		})
	}
}

// primRUP builds a thermodynamically consistent ideal-air state.
func primRUP(rho, u, p float64) Prim {
	return Prim{Rho: rho, U: u, P: p, T: p / (287.05 * rho),
		A: math.Sqrt(1.4 * p / rho), E: p / (0.4 * rho)}
}

// TestExpansionShockDecays is the entropy regression every registered
// kernel must pass: an entropy-violating stationary expansion shock — the
// time-reverse of a Mach-2 normal shock, whose left and right physical
// fluxes agree exactly — must break up into the physical rarefaction
// instead of persisting. A kernel whose dissipation vanishes at the jump
// (the failure hlle-ef exists to rule out) keeps the discontinuity glued
// in place forever; it must also not replace it with an oscillatory fan
// (the 1-D face of the carbuncle family of pathologies).
func TestExpansionShockDecays(t *testing.T) {
	// Mach-2 stationary normal shock in units a1 = 1: upstream (1.4, 2, 1),
	// downstream (56/15, 3/4, 9/2). Reversed — dense subsonic on the left
	// expanding through the jump to supersonic — is the entropy-violating
	// steady state.
	const gamma = 1.4
	up := primRUP(1.4, 2, 1)
	down := primRUP(1.4*8.0/3.0, 0.75, 4.5)
	jump0 := down.Rho - up.Rho

	for _, name := range FluxKernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := FluxKernelFor(name)
			if err != nil {
				t.Fatal(err)
			}
			// 400 steps: long enough for the start-up wave the breaking jump
			// sheds (speed u1+a1) to exit the supersonic outflow end, while
			// the fan edges stay interior.
			const ncell, mid, steps = 200, 100, 400
			const dx = 1.0
			dt := 0.4 * dx / (up.U + up.A) // fastest wave is u1 + a1 = 3
			cells := make([]Prim, ncell)
			for i := range cells {
				if i < mid {
					cells[i] = down
				} else {
					cells[i] = up
				}
			}
			u := make([]Cons, ncell)
			fl := make([]Cons, ncell+1)
			for i := range cells {
				u[i] = consOf(cells[i])
			}
			for step := 0; step < steps; step++ {
				for i := 1; i < ncell; i++ {
					fl[i] = k.Flux(cells[i-1], cells[i], 1, 0, 1)
				}
				fl[0] = k.Flux(cells[0], cells[0], 1, 0, 1)
				fl[ncell] = k.Flux(cells[ncell-1], cells[ncell-1], 1, 0, 1)
				for i := 0; i < ncell; i++ {
					for c := 0; c < 4; c++ {
						u[i][c] -= dt / dx * (fl[i+1][c] - fl[i][c])
					}
					rho := u[i][0]
					vx, vy := u[i][1]/rho, u[i][2]/rho
					p := (gamma - 1) * (u[i][3] - 0.5*rho*(vx*vx+vy*vy))
					if !(rho > 0) || !(p > 0) || math.IsNaN(p) {
						t.Fatalf("step %d cell %d: unphysical state rho=%g p=%g", step, i, rho, p)
					}
					cells[i] = primRUP(rho, vx, p)
					cells[i].V = vy
				}
			}
			// The initial jump must have smeared into a fan: no adjacent pair
			// may retain more than half the original discontinuity.
			maxJump := 0.0
			for i := 5; i < ncell-5; i++ {
				if d := math.Abs(cells[i+1].Rho - cells[i].Rho); d > maxJump {
					maxJump = d
				}
				// Gross-ringing band: the fan must stay near the two states,
				// not oscillate. The 10% slack admits the sonic-point glitch
				// and the start-up wave every first-order scheme sheds from
				// the breaking jump; a carbuncle-class instability rings far
				// outside it.
				if cells[i].Rho > down.Rho*1.10 || cells[i].Rho < up.Rho*0.90 {
					t.Fatalf("cell %d: density %g outside [%g, %g] band", i, cells[i].Rho, up.Rho, down.Rho)
				}
			}
			if maxJump > 0.5*jump0 {
				t.Errorf("expansion shock persists: max adjacent density jump %g, initial %g", maxJump, jump0)
			}
		})
	}
}

// TestFrozenLimiterConvergence verifies the frozen-limiter endgame is a
// pure optimization: a solve that freezes the limiter partway down the
// residual history must actually reach the frozen state and converge to
// the same wall pressure distribution as the always-live reference.
func TestFrozenLimiterConvergence(t *testing.T) {
	base := bluntSolver(t, gas.NewIdealAir(), 6, true)
	g, o := base.G, base.Opts
	base.Close()
	// Deep implicit convergence with the smooth limiter: the freeze latches
	// once the shock has settled, so the recorded slopes are the converged
	// ones and the frozen fixed point coincides with the live one.
	o.TimeStepping = TimeSteppingImplicit
	o.Limiter = LimiterVanAlbada
	ref, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(4000, 1e-5); err != nil {
		t.Fatal(err)
	}

	o.FreezeLimiterAt = 1e-3
	frz, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer frz.Close()
	if _, err := frz.Run(4000, 1e-5); err != nil {
		t.Fatal(err)
	}
	if frz.limMode != limFrozen {
		t.Fatalf("limiter never froze: limMode %d (threshold %g)", frz.limMode, o.FreezeLimiterAt)
	}

	pRef, pFrz := ref.WallPressure(), frz.WallPressure()
	for i := range pRef {
		if rel := math.Abs(pFrz[i]-pRef[i]) / pRef[i]; rel > 0.01 {
			t.Errorf("wall station %d: frozen-limiter pressure %g vs live %g (%.2f%%)",
				i, pFrz[i], pRef[i], 100*rel)
		}
	}
}

// TestFreezeLimiterValidation pins the Options range check and the refit
// reset: out-of-range thresholds fail construction, and a grid transfer
// drops a frozen solver back to live limiting (the recorded slopes belong
// to the old grid).
func TestFreezeLimiterValidation(t *testing.T) {
	s := bluntSolver(t, gas.NewIdealAir(), 6, true)
	g, o := s.G, s.Opts
	s.Close()
	for _, bad := range []float64{-0.1, 1, 1.5} {
		o.FreezeLimiterAt = bad
		if _, err := New(g, o); err == nil {
			t.Errorf("FreezeLimiterAt=%g accepted", bad)
		}
	}
}
