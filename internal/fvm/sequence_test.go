package fvm

import (
	"context"
	"math"
	"sync"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
)

func seqCase(t *testing.T) (*grid.Grid2D, Options) {
	t.Helper()
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	g.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 250)
	return g, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * aInf, 0},
		FreestreamPT: [2]float64{100, 250},
		CFL:          0.6,
		MUSCL:        true,
	}
}

// A grid-sequenced solve must land on the same physics as a fine-grid-only
// solve: same pitot pressure, same standoff band.
func TestSolveSequencedMatchesFine(t *testing.T) {
	g, o := seqCase(t)
	fine, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer fine.Close()
	if _, err := fine.Run(4000, 1e-3); err != nil {
		t.Fatal(err)
	}
	seq, res, err := SolveSequenced(context.Background(), g, o, 4000, 1e-3, SequenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if math.IsNaN(res) || res <= 0 {
		t.Fatalf("sequenced residual %g", res)
	}
	qf := fine.Primitive(0, 0)
	qs := seq.Primitive(0, 0)
	if math.Abs(qs.P-qf.P)/qf.P > 0.05 {
		t.Errorf("sequenced stagnation pressure %g vs fine %g", qs.P, qf.P)
	}
	xf, _ := fine.ShockLocus(2)
	xs, _ := seq.ShockLocus(2)
	if math.Abs(xs[0]-xf[0]) > 0.06 {
		t.Errorf("sequenced standoff %g vs fine %g", -xs[0], -xf[0])
	}
}

// With Refit, the fine grid's outer boundary shrink-wraps the coarse shock
// locus and the solve still captures the right shock.
func TestSolveSequencedRefit(t *testing.T) {
	g, o := seqCase(t)
	seq, _, err := SolveSequenced(context.Background(), g, o, 4000, 1e-3,
		SequenceOptions{Refit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if seq.G == g {
		t.Fatal("Refit did not rebuild the fine grid")
	}
	// The re-fitted outer boundary lies inside the original one but outside
	// the shock (otherwise the pitot pressure collapses).
	if d, d0 := seq.G.WallDistance(0), g.WallDistance(0); d >= d0 {
		t.Errorf("refit standoff %g not inside original %g", d, d0)
	}
	q := seq.Primitive(0, 0)
	if math.Abs(q.P/100-46.81) > 6 {
		t.Errorf("refit stagnation pressure ratio %g want ~46.8", q.P/100)
	}
}

// Sequencing falls back to a plain fine solve when the grid is too small
// to coarsen.
func TestSolveSequencedFallback(t *testing.T) {
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 4, 4, func(s float64) float64 { return 0.4 }, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	_, o := seqCase(t)
	s, res, err := SolveSequenced(context.Background(), g, o, 200, 1e-3, SequenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.G != g {
		t.Error("fallback should solve on the original grid")
	}
	if math.IsNaN(res) {
		t.Error("NaN residual")
	}
}

func TestWorkerPoolSweep(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			// Per-chunk partial sums through sweep, the hot-loop reduction
			// pattern: every chunk writes its ci slot, chunks tile [0, n).
			var wg sync.WaitGroup
			partial := make([]float64, p.chunkCount(n))
			p.sweep(n, &wg, func(ci, lo, hi int) {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += float64(i)
				}
				partial[ci] = s
			})
			got := 0.0
			for _, s := range partial {
				got += s
			}
			want := float64(n*(n-1)) / 2
			if got != want {
				t.Errorf("workers=%d n=%d: sum %g want %g", workers, n, got, want)
			}
			// Every index is visited exactly once across the chunks.
			hits := make([]int, n)
			p.sweep(n, &wg, func(ci, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}
