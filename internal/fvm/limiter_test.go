package fvm

import (
	"math"
	"strings"
	"testing"
)

// Limiter algebra: both limiters vanish at extrema (opposite-sign slopes),
// reproduce the common slope when the differences agree, and stay bounded by
// the larger one-sided difference; van Albada is smooth — a small slope
// perturbation moves the limited slope a little, never discontinuously.
func TestLimiterProperties(t *testing.T) {
	for name, lim := range map[string]LimiterFunc{"minmod": minmod, "vanalbada": vanAlbada} {
		if got := lim(1, -1); got != 0 {
			t.Errorf("%s(1,-1) = %g, want 0", name, got)
		}
		if got := lim(0, 2); got != 0 {
			t.Errorf("%s(0,2) = %g, want 0", name, got)
		}
		if got := lim(3, 3); math.Abs(got-3) > 1e-12 {
			t.Errorf("%s(3,3) = %g, want 3", name, got)
		}
		for _, ab := range [][2]float64{{1, 2}, {2, 1}, {0.1, 5}, {-1, -4}} {
			got := lim(ab[0], ab[1])
			bound := math.Max(math.Abs(ab[0]), math.Abs(ab[1]))
			if math.Abs(got) > bound+1e-12 {
				t.Errorf("%s(%g,%g) = %g exceeds the slope bound %g", name, ab[0], ab[1], got, bound)
			}
			if got*ab[0] < 0 {
				t.Errorf("%s(%g,%g) = %g flips sign", name, ab[0], ab[1], got)
			}
		}
	}
	// Smoothness: van Albada has no branch jump around a == b.
	a, b := 1.0, 1.0
	base := vanAlbada(a, b)
	if step := math.Abs(vanAlbada(a, b+1e-6) - base); step > 1e-5 {
		t.Errorf("vanAlbada jumps by %g across a tiny slope perturbation", step)
	}
}

// An unknown limiter name fails at solver construction with the registered
// list, mirroring the flux-kernel and integrator registries.
func TestLimiterValidation(t *testing.T) {
	if names := Limiters(); len(names) != 2 || names[0] != "minmod" || names[1] != "vanalbada" {
		t.Fatalf("Limiters() = %v", names)
	}
	g, o := seqCase(t)
	o.Limiter = "superbee"
	if _, err := New(g, o); err == nil || !strings.Contains(err.Error(), "vanalbada") {
		t.Errorf("unknown limiter error %v, want the registered list", err)
	}
}

// The smooth van Albada limiter must let the implicit CFL ramp climb higher
// than minmod on the reference viscous case: minmod's branch switching makes
// the defect-correction residual limit-cycle, which the convergence-gated
// ramp reads as a stall and answers by halving and dynamically capping the
// CFL. With the smooth limiter the limited slopes vary continuously, the
// limit cycle weakens, and the ramp's dynamic cap settles higher (ROADMAP
// PR 4 follow-on).
func TestVanAlbadaLiftsRampCap(t *testing.T) {
	caps := map[string]float64{}
	for _, lim := range []string{"minmod", "vanalbada"} {
		g, o, err := ReferenceViscousCase(20, 32, "implicit")
		if err != nil {
			t.Fatal(err)
		}
		o.Limiter = lim
		o.Pool = NewPool(1) // deterministic reduction order
		s, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(6000, 5e-4); err != nil {
			t.Fatal(err)
		}
		st, ok := s.stepper.(*implicitStepper)
		if !ok {
			t.Fatal("implicit stepper expected")
		}
		caps[lim] = st.cap
		s.Close()
		o.Pool.Close()
	}
	if caps["vanalbada"] <= caps["minmod"] {
		t.Errorf("van Albada dynamic cap %.2f did not rise above minmod's %.2f",
			caps["vanalbada"], caps["minmod"])
	}
}

// Both limiters converge the case to the same physics: the limiter shapes
// the path to steady state, not the captured shock.
func TestLimitersAgreeOnPhysics(t *testing.T) {
	g, o := seqCase(t)
	var pstag [2]float64
	for i, lim := range []string{"minmod", "vanalbada"} {
		o.Limiter = lim
		s, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(4000, 1e-3); err != nil {
			t.Fatal(err)
		}
		pstag[i] = s.Primitive(0, 0).P
		s.Close()
	}
	if math.Abs(pstag[1]-pstag[0])/pstag[0] > 0.02 {
		t.Errorf("limiters disagree on stagnation pressure: %g vs %g", pstag[0], pstag[1])
	}
}
