package fvm

import (
	"context"
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/transport"
)

// viscousCase builds the reference Fig. 9-class viscous solver (clustered
// axisymmetric hemisphere, Mach 6 ideal air) with the given integrator.
func viscousCase(t testing.TB, ts string, ramp CFLRamp) *Solver {
	t.Helper()
	body := geometry.NewSphere(0.0127)
	g, err := grid.NewBlunt(body, body.MaxS(), 20, 32, func(s float64) float64 {
		return 0.35*0.0127 + 0.3*s
	}, 1.08)
	if err != nil {
		t.Fatal(err)
	}
	g.Axisymmetric = true
	s, err := New(g, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * math.Sqrt(1.4*287.05*217), 0},
		FreestreamPT: [2]float64{550, 217},
		CFL:          0.4,
		MUSCL:        true,
		Viscous:      true,
		Wall:         NoSlipIsothermal,
		TWall:        1500,
		Mu:           transport.Sutherland,
		K:            transport.SutherlandConductivity,
		TimeStepping: ts,
		CFLRamp:      ramp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// inviscidCase builds a small Mach 6 inviscid sphere solver.
func inviscidCase(t testing.TB, ts string) *Solver {
	t.Helper()
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	g.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 250)
	s, err := New(g, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * aInf, 0},
		FreestreamPT: [2]float64{100, 250},
		CFL:          0.6,
		MUSCL:        true,
		TimeStepping: ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntegratorRegistry(t *testing.T) {
	names := Integrators()
	want := map[string]bool{"explicit": false, "implicit": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("integrator %q not registered (have %v)", n, names)
		}
	}
	if _, err := IntegratorFor(""); err != nil {
		t.Errorf("empty name should resolve to the default: %v", err)
	}
	if _, err := IntegratorFor("no-such-scheme"); err == nil {
		t.Error("unknown integrator name should fail")
	}
	g, _ := grid.NewBlunt(geometry.NewSphere(1), geometry.NewSphere(1).MaxS(), 6, 8,
		func(s float64) float64 { return 0.5 + 0.4*s }, 1.3)
	if _, err := New(g, Options{Gas: gas.NewIdealAir(), FreestreamV: [2]float64{600, 0},
		FreestreamPT: [2]float64{100, 250}, TimeStepping: "bogus"}); err == nil {
		t.Error("New should reject an unknown TimeStepping name")
	}
}

func TestCFLRampDefaults(t *testing.T) {
	r := CFLRamp{}.withDefaults()
	if r != DefaultCFLRamp {
		t.Errorf("zero ramp = %+v, want %+v", r, DefaultCFLRamp)
	}
	r = CFLRamp{Start: 5, Growth: 1.1, Max: 40}.withDefaults()
	if r.Start != 5 || r.Growth != 1.1 || r.Max != 40 {
		t.Errorf("explicit ramp altered: %+v", r)
	}
	// A Max below Start is floored at Start.
	r = CFLRamp{Start: 500, Growth: 1.1}.withDefaults()
	if r.Max < r.Start {
		t.Errorf("Max %g below Start %g", r.Max, r.Start)
	}
	// An explicitly conservative Max is respected (floored at Start, not
	// replaced by the default), and Growth 1 means hold constant.
	r = CFLRamp{Max: 1.5, Growth: 1}.withDefaults()
	if r.Max != r.Start || r.Max > 2 {
		t.Errorf("explicit low Max rewritten: %+v", r)
	}
	if r.Growth != 1 {
		t.Errorf("Growth 1 (hold) rewritten to %g", r.Growth)
	}
}

// idealDecode converts a conserved state to primitives through the ideal-gas
// EOS, for finite-difference probes.
func idealDecode(g *gas.Ideal, u Cons) Prim {
	rho := u[0]
	vx, vy := u[1]/rho, u[2]/rho
	e := u[3]/rho - 0.5*(vx*vx+vy*vy)
	p, T, a, err := g.PrimState(rho, e)
	if err != nil {
		panic(err)
	}
	return Prim{Rho: rho, U: vx, V: vy, P: p, T: T, A: a, E: e}
}

// jacStates are the representative states the Jacobian probes run at:
// subsonic boundary-layer-like and supersonic post-shock-like.
func jacStates() []Prim {
	g := gas.NewIdealAir()
	out := []Prim{}
	for _, v := range [][2]float64{{240, 300}, {1400, -350}, {0, 0}} {
		q := Prim{Rho: 0.034, U: v[0], V: v[1]}
		q.E = 287.05 / 0.4 * 1561
		q.P, q.T, q.A, _ = g.PrimState(q.Rho, q.E)
		out = append(out, q)
	}
	return out
}

// TestJacobianMatchesPhysFluxFD verifies the analytic flux Jacobian the
// implicit LHS is assembled from against central finite differences of the
// physical flux, component by component.
func TestJacobianMatchesPhysFluxFD(t *testing.T) {
	g := gas.NewIdealAir()
	nx, ny := -0.787, 0.617
	for _, q := range jacStates() {
		u0 := consOf(q)
		var jac [16]float64
		jacN(jac[:], q, nx, ny, 1.0)
		fluxScale := q.Rho * (q.A + math.Hypot(q.U, q.V))
		for col := 0; col < 4; col++ {
			h := 1e-6 * (math.Abs(u0[col]) + 1e-6*fluxScale)
			up, um := u0, u0
			up[col] += h
			um[col] -= h
			fp := physFlux(idealDecode(g, up), nx, ny)
			fm := physFlux(idealDecode(g, um), nx, ny)
			for row := 0; row < 4; row++ {
				fd := (fp[row] - fm[row]) / (2 * h)
				an := jac[row*4+col]
				// Scale rows into comparable units before comparing.
				scale := (math.Abs(q.U) + math.Abs(q.V) + q.A) * rowScale(q, row) / colScale(q, col)
				if math.Abs(fd-an) > 1e-4*scale {
					t.Errorf("state u=%g v=%g: jac[%d][%d] = %g, FD %g", q.U, q.V, row, col, an, fd)
				}
			}
		}
	}
}

func rowScale(q Prim, r int) float64 {
	v := q.A + math.Hypot(q.U, q.V)
	switch r {
	case 0:
		return 1
	case 3:
		return v * v
	}
	return v
}

func colScale(q Prim, c int) float64 { return rowScale(q, c) }

// TestImplicitLHSConsistencyPerKernel verifies, for every registered flux
// kernel, that the implicit LHS linearization is consistent with the kernel:
// at a smooth state (L = R = q) the kernel flux is the physical flux, so the
// sum of the two one-sided LHS Jacobians ½(S·A+λI) + ½(S·A−λI) = S·A must
// equal the finite-difference derivative of q → Flux(q, q).
func TestImplicitLHSConsistencyPerKernel(t *testing.T) {
	g := gas.NewIdealAir()
	nx, ny := 0.6, 0.8
	const area = 2.5
	for _, name := range FluxKernels() {
		k, err := FluxKernelFor(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range jacStates() {
			u0 := consOf(q)
			var jac [16]float64
			jacN(jac[:], q, nx, ny, area)
			fluxScale := q.Rho * (q.A + math.Hypot(q.U, q.V))
			for col := 0; col < 4; col++ {
				h := 1e-6 * (math.Abs(u0[col]) + 1e-6*fluxScale)
				up, um := u0, u0
				up[col] += h
				um[col] -= h
				qp, qm := idealDecode(g, up), idealDecode(g, um)
				fp := k.Flux(qp, qp, nx, ny, area)
				fm := k.Flux(qm, qm, nx, ny, area)
				for row := 0; row < 4; row++ {
					fd := (fp[row] - fm[row]) / (2 * h)
					an := jac[row*4+col]
					scale := area * (math.Abs(q.U) + math.Abs(q.V) + q.A) * rowScale(q, row) / colScale(q, col)
					if math.Abs(fd-an) > 2e-3*scale {
						t.Errorf("%s state u=%g v=%g: dF[%d]/dU[%d] = %g, LHS Jacobian %g",
							name, q.U, q.V, row, col, fd, an)
					}
				}
			}
		}
	}
}

// TestExplicitImplicitEquivalence drives the same inviscid case to the same
// absolute residual target with both integrators and requires the converged
// wall states to agree: the integrators share one discrete steady problem,
// so the answers must match within the leftover-transient tolerance.
func TestExplicitImplicitEquivalence(t *testing.T) {
	ref := inviscidCase(t, "explicit")
	r0 := ref.Step()
	ref.Close()
	if math.IsNaN(r0) || r0 <= 0 {
		t.Fatalf("calibration residual %g", r0)
	}
	target := r0 * 1e-3

	ctx := context.Background()
	se := inviscidCase(t, "explicit")
	defer se.Close()
	if res, err := se.RunToCtx(ctx, 8000, target); err != nil || res > target {
		t.Fatalf("explicit: res=%g err=%v", res, err)
	}
	si := inviscidCase(t, "implicit")
	defer si.Close()
	if res, err := si.RunToCtx(ctx, 8000, target); err != nil || res > target {
		t.Fatalf("implicit: res=%g err=%v", res, err)
	}

	pe := se.WallPressure()
	pi := si.WallPressure()
	for i := range pe {
		if rel := math.Abs(pe[i]-pi[i]) / pe[i]; rel > 0.02 {
			t.Errorf("wall pressure station %d: explicit %g, implicit %g (rel %.3f)", i, pe[i], pi[i], rel)
		}
	}
	xe, ye := se.ShockLocus(2.5)
	xi, yi := si.ShockLocus(2.5)
	de := math.Hypot(xe[0]-se.G.X[0][0], ye[0]-se.G.Y[0][0])
	di := math.Hypot(xi[0]-si.G.X[0][0], yi[0]-si.G.Y[0][0])
	if rel := math.Abs(de-di) / de; rel > 0.05 {
		t.Errorf("standoff: explicit %g, implicit %g", de, di)
	}
}

// TestImplicitStepCountAdvantage requires the line-implicit integrator to
// converge the reference viscous case in at most a fifth of the explicit
// step count — the headline acceptance criterion of the scheme.
func TestImplicitStepCountAdvantage(t *testing.T) {
	run := func(ts string) int {
		s := viscousCase(t, ts, CFLRamp{})
		defer s.Close()
		steps := 0
		s.Opts.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { steps = step }
		if _, err := s.Run(6000, 5e-4); err != nil {
			t.Fatalf("%s: %v", ts, err)
		}
		return steps
	}
	exp := run("explicit")
	imp := run("implicit")
	t.Logf("explicit %d steps, implicit %d steps (%.1fx)", exp, imp, float64(exp)/float64(imp))
	if imp*5 > exp {
		t.Errorf("implicit took %d steps, want <= explicit/5 = %d", imp, exp/5)
	}
}

// TestImplicitDivergenceFallback pins the ramp at an absurd CFL so the line
// updates leave the physical state space: every line must fall back to the
// explicit stage, the march must stay finite, and the fallback counter must
// record the events.
func TestImplicitDivergenceFallback(t *testing.T) {
	s := viscousCase(t, "implicit", CFLRamp{Start: 1e12, Growth: 1.0000001, Max: 1e12})
	defer s.Close()
	st := s.stepper.(*implicitStepper)
	for n := 0; n < 5; n++ {
		if r := s.Step(); math.IsNaN(r) {
			t.Fatalf("residual NaN at step %d", n)
		}
	}
	if st.fallbacks == 0 {
		t.Error("expected diverging lines to fall back to the explicit stage")
	}
	// The fallback halves the working CFL; it must stay within the ramp.
	if st.cfl < st.ramp.Start/2 {
		t.Errorf("working CFL %g fell below the ramp start", st.cfl)
	}
	for i := 0; i < s.ni; i++ {
		for j := 0; j < s.nj; j++ {
			q := s.Primitive(i, j)
			if math.IsNaN(q.Rho) || math.IsNaN(q.P) {
				t.Fatalf("state NaN at (%d,%d) after fallback steps", i, j)
			}
		}
	}
}

// TestStepZeroAlloc verifies the hot loop allocates nothing per step for
// either integrator — scratch slices, sweep closures and block-tridiagonal
// workspaces are all hoisted to construction time.
func TestStepZeroAlloc(t *testing.T) {
	for _, ts := range []string{"explicit", "implicit"} {
		s := viscousCase(t, ts, CFLRamp{})
		s.Step() // warm up (lazy growth inside gas tables etc.)
		allocs := testing.AllocsPerRun(10, func() {
			if r := s.Step(); math.IsNaN(r) {
				t.Fatal("NaN residual")
			}
		})
		if allocs > 0.5 {
			t.Errorf("%s Step: %.1f allocs/op, want 0", ts, allocs)
		}
		s.Close()
	}
}

// TestSolveSequencedImplicit runs a grid-sequenced solve with implicit
// stepping on both levels and checks it reaches the equivalent residual.
func TestSolveSequencedImplicit(t *testing.T) {
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	g.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 250)
	o := Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * aInf, 0},
		FreestreamPT: [2]float64{100, 250},
		CFL:          0.6,
		MUSCL:        true,
		TimeStepping: "implicit",
	}
	s, res, err := SolveSequenced(context.Background(), g, o, 6000, 1e-3, SequenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if math.IsNaN(res) || res <= 0 {
		t.Fatalf("sequenced implicit residual %g", res)
	}
	p := s.WallPressure()
	// Stagnation pressure should be near the Rayleigh pitot value.
	pInf, M := 100.0, 6.0
	pt2 := pInf * math.Pow(1.2*M*M, 3.5) * math.Pow(2.4/(2.8*M*M-0.4), 2.5)
	if rel := math.Abs(p[0]-pt2) / pt2; rel > 0.08 {
		t.Errorf("stagnation pressure %g, Rayleigh pitot %g (rel %.3f)", p[0], pt2, rel)
	}
}
