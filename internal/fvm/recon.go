package fvm

import "math"

// batchWS is one sweep chunk's face-state workspace: the left/right SoA
// pencils the batched reconstruction fills and BatchFlux consumes. One
// workspace per pool chunk, allocated in New, so stepping allocates
// nothing and concurrent chunks never share a pencil.
type batchWS struct {
	L, R FaceStates
}

// Limiter specialization for the batched reconstruction: the registered
// limiters are small pure functions, so dispatching on an enum inside
// `limited` (a predictable branch) is far cheaper than the eight
// LimiterFunc indirect calls per face the scalar path pays.
const (
	limKindGeneric = iota // fall back to the s.lim func value
	limKindMinmod
	limKindVanAlbada
)

// Frozen-limiter state machine (Options.FreezeLimiterAt): live limiting
// until the residual has dropped past the threshold, one recording step
// that stores every interior face's applied reconstruction offsets, then
// frozen replay of those offsets — the shock is stationary, so locking the
// limiter removes its branch-and-min tree (and the outer-neighbor gathers)
// from the last decades of convergence.
const (
	limLive = iota
	limRecord
	limFrozen
)

// limited applies the configured slope limiter, specialized by limKind so
// the common limiters inline into the reconstruction loop.
//
//cataero:hotpath
func (s *Solver) limited(a, b float64) float64 {
	switch s.limKind {
	case limKindMinmod:
		if a*b <= 0 {
			return 0
		}
		if math.Abs(a) < math.Abs(b) {
			return a
		}
		return b
	case limKindVanAlbada:
		if a*b <= 0 {
			return 0
		}
		const eps = 1e-32
		return a * b * (a + b) / (a*a + b*b + eps)
	default:
		return s.lim(a, b)
	}
}

// reconFace MUSCL-reconstructs the left/right states of one face from its
// four-cell stencil into pencil slot f, mirroring the scalar reconstruct
// (including the positivity revert and the derived A/E recompute). Missing
// outer neighbors are passed as qmm==qm / qpp==qp: the one-sided
// difference is then exactly zero, which reproduces the scalar path's
// unextrapolated state bitwise.
//
//cataero:hotpath
func (s *Solver) reconFace(ws *batchWS, f int, qmm, qm, qp, qpp *Prim) {
	d1Rho := qp.Rho - qm.Rho
	d1U := qp.U - qm.U
	d1V := qp.V - qm.V
	d1P := qp.P - qm.P
	lRho := qm.Rho + 0.5*s.limited(qm.Rho-qmm.Rho, d1Rho)
	lU := qm.U + 0.5*s.limited(qm.U-qmm.U, d1U)
	lV := qm.V + 0.5*s.limited(qm.V-qmm.V, d1V)
	lP := qm.P + 0.5*s.limited(qm.P-qmm.P, d1P)
	rRho := qp.Rho - 0.5*s.limited(d1Rho, qpp.Rho-qp.Rho)
	rU := qp.U - 0.5*s.limited(d1U, qpp.U-qp.U)
	rV := qp.V - 0.5*s.limited(d1V, qpp.V-qp.V)
	rP := qp.P - 0.5*s.limited(d1P, qpp.P-qp.P)
	if lRho <= 0 || lP <= 0 {
		lRho, lU, lV, lP = qm.Rho, qm.U, qm.V, qm.P
	}
	if rRho <= 0 || rP <= 0 {
		rRho, rU, rV, rP = qp.Rho, qp.U, qp.V, qp.P
	}
	s.storeFace(ws, f, qm, qp, lRho, lU, lV, lP, rRho, rU, rV, rP)
}

// reconFaceRecord is reconFace plus recording the applied offsets
// (post-guard, relative to the straddling cell states) into
// frz[8*f..8*f+7], so frozen steps can replay them without the stencil.
//
//cataero:hotpath
func (s *Solver) reconFaceRecord(ws *batchWS, f int, qmm, qm, qp, qpp *Prim, frz []float64) {
	s.reconFace(ws, f, qmm, qm, qp, qpp)
	k := 8 * f
	frz[k] = ws.L.Rho[f] - qm.Rho
	frz[k+1] = ws.L.U[f] - qm.U
	frz[k+2] = ws.L.V[f] - qm.V
	frz[k+3] = ws.L.P[f] - qm.P
	frz[k+4] = ws.R.Rho[f] - qp.Rho
	frz[k+5] = ws.R.U[f] - qp.U
	frz[k+6] = ws.R.V[f] - qp.V
	frz[k+7] = ws.R.P[f] - qp.P
}

// frozenFace rebuilds the face states from the recorded limiter offsets —
// no outer-neighbor gathers, no limiter evaluations. The positivity revert
// still applies: the state has drifted since the offsets were recorded.
//
//cataero:hotpath
func (s *Solver) frozenFace(ws *batchWS, f int, qm, qp *Prim, frz []float64) {
	k := 8 * f
	lRho := qm.Rho + frz[k]
	lU := qm.U + frz[k+1]
	lV := qm.V + frz[k+2]
	lP := qm.P + frz[k+3]
	rRho := qp.Rho + frz[k+4]
	rU := qp.U + frz[k+5]
	rV := qp.V + frz[k+6]
	rP := qp.P + frz[k+7]
	if lRho <= 0 || lP <= 0 {
		lRho, lU, lV, lP = qm.Rho, qm.U, qm.V, qm.P
	}
	if rRho <= 0 || rP <= 0 {
		rRho, rU, rV, rP = qp.Rho, qp.U, qp.V, qp.P
	}
	s.storeFace(ws, f, qm, qp, lRho, lU, lV, lP, rRho, rU, rV, rP)
}

// storeFace writes a reconstructed face into pencil slot f, recomputing
// the derived sound speed and internal energy exactly like the scalar
// reconstruct (for an unextrapolated state the factors are exactly 1, so
// the cell values pass through bitwise).
//
//cataero:hotpath
func (s *Solver) storeFace(ws *batchWS, f int, qm, qp *Prim, lRho, lU, lV, lP, rRho, rU, rV, rP float64) {
	ws.L.Rho[f] = lRho
	ws.L.U[f] = lU
	ws.L.V[f] = lV
	ws.L.P[f] = lP
	ws.L.T[f] = qm.T
	ws.L.A[f] = qm.A * math.Sqrt((lP/qm.P)*(qm.Rho/lRho))
	ws.L.E[f] = qm.E * (lP / qm.P) * (qm.Rho / lRho)
	ws.R.Rho[f] = rRho
	ws.R.U[f] = rU
	ws.R.V[f] = rV
	ws.R.P[f] = rP
	ws.R.T[f] = qp.T
	ws.R.A[f] = qp.A * math.Sqrt((rP/qp.P)*(qp.Rho/rRho))
	ws.R.E[f] = qp.E * (rP / qp.P) * (qp.Rho / rRho)
}

// copyFace stores the unreconstructed cell states as the face states — the
// MUSCL-off (first-order) path.
//
//cataero:hotpath
func copyFace(ws *batchWS, f int, qm, qp *Prim) {
	ws.L.setPrim(f, *qm)
	ws.R.setPrim(f, *qp)
}

// reconColI fills the chunk workspace with the face states of interior
// I-face column i (faces (i, j), j = 0..nj-1, between cell rows i-1 and
// i). The four stencil rows are contiguous prim runs sharing the face
// index, so the gathers stream. Missing outer rows at the i boundaries
// alias the inner row (zero one-sided difference — see reconFace).
func (s *Solver) reconColI(ws *batchWS, i int) {
	nj := s.nj
	rowM := s.prim[(i-1)*nj : i*nj]
	rowP := s.prim[i*nj : (i+1)*nj]
	if !s.Opts.MUSCL {
		for f := 0; f < nj; f++ {
			copyFace(ws, f, &rowM[f], &rowP[f])
		}
		return
	}
	if s.limMode == limFrozen {
		frz := s.frzI[8*i*nj : 8*(i+1)*nj]
		for f := 0; f < nj; f++ {
			s.frozenFace(ws, f, &rowM[f], &rowP[f], frz)
		}
		return
	}
	rowMM := rowM
	if i >= 2 {
		rowMM = s.prim[(i-2)*nj : (i-1)*nj]
	}
	rowPP := rowP
	if i+1 <= s.ni-1 {
		rowPP = s.prim[(i+1)*nj : (i+2)*nj]
	}
	if s.limMode == limRecord {
		frz := s.frzI[8*i*nj : 8*(i+1)*nj]
		for f := 0; f < nj; f++ {
			s.reconFaceRecord(ws, f, &rowMM[f], &rowM[f], &rowP[f], &rowPP[f], frz)
		}
		return
	}
	for f := 0; f < nj; f++ {
		s.reconFace(ws, f, &rowMM[f], &rowM[f], &rowP[f], &rowPP[f])
	}
}

// reconLineJ fills the chunk workspace with the face states of the
// interior J-faces of i-line i (faces (i, j), j = 1..nj-1, pencil slot
// f = j-1). The whole stencil lives in one contiguous prim run; the
// neighbor indices clamp at the line ends, which zeroes the one-sided
// difference exactly like a missing scalar-path neighbor.
func (s *Solver) reconLineJ(ws *batchWS, i int) {
	nj := s.nj
	cells := s.prim[i*nj : (i+1)*nj]
	n := nj - 1
	if !s.Opts.MUSCL {
		for f := 0; f < n; f++ {
			copyFace(ws, f, &cells[f], &cells[f+1])
		}
		return
	}
	if s.limMode == limFrozen {
		frz := s.frzJ[8*(i*(nj+1)+1) : 8*(i*(nj+1)+nj)]
		for f := 0; f < n; f++ {
			s.frozenFace(ws, f, &cells[f], &cells[f+1], frz)
		}
		return
	}
	var frz []float64
	if s.limMode == limRecord {
		frz = s.frzJ[8*(i*(nj+1)+1) : 8*(i*(nj+1)+nj)]
	}
	for f := 0; f < n; f++ {
		im := f - 1
		if im < 0 {
			im = 0
		}
		ip := f + 2
		if ip > n {
			ip = n
		}
		if frz != nil {
			s.reconFaceRecord(ws, f, &cells[im], &cells[f], &cells[f+1], &cells[ip], frz)
		} else {
			s.reconFace(ws, f, &cells[im], &cells[f], &cells[f+1], &cells[ip])
		}
	}
}

// scalarFluxPencil is the reference fallback for kernels without a batched
// form: per-face scalar Flux calls over the assembled pencils.
func (s *Solver) scalarFluxPencil(dst []float64, L, R *FaceStates, nrm []float64, n int) {
	for f := 0; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		k := 4 * f
		if area == 0 {
			dst[k], dst[k+1], dst[k+2], dst[k+3] = 0, 0, 0, 0
			continue
		}
		fc := s.flux.Flux(L.prim(f), R.prim(f), nx, ny, area)
		dst[k] = fc[0]
		dst[k+1] = fc[1]
		dst[k+2] = fc[2]
		dst[k+3] = fc[3]
	}
}
