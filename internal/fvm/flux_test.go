package fvm

import (
	"math"
	"math/rand"
	"testing"

	"cataero/internal/gas"
)

func randPrim(r *rand.Rand) Prim {
	rho := 0.05 + r.Float64()*2
	p := 1e3 + r.Float64()*2e5
	return Prim{
		Rho: rho,
		U:   r.Float64()*4000 - 2000,
		V:   r.Float64()*2000 - 1000,
		P:   p,
		T:   200 + r.Float64()*5000,
		A:   math.Sqrt(1.4 * p / rho),
		E:   p / (0.4 * rho),
	}
}

// Every registered kernel must be consistent: F(q, q, n) equals the
// area-scaled physical flux.
func TestFluxKernelsConsistency(t *testing.T) {
	names := FluxKernels()
	if len(names) < 2 {
		t.Fatalf("want at least two registered kernels, have %v", names)
	}
	r := rand.New(rand.NewSource(7))
	for _, name := range names {
		k, err := FluxKernelFor(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			q := randPrim(r)
			th := r.Float64() * 2 * math.Pi
			nx, ny := math.Cos(th), math.Sin(th)
			area := 0.1 + r.Float64()*3
			f := k.Flux(q, q, nx, ny, area)
			want := physFlux(q, nx, ny)
			for c := 0; c < 4; c++ {
				if math.Abs(f[c]-area*want[c]) > 1e-8*(math.Abs(area*want[c])+1) {
					t.Fatalf("%s consistency, component %d: %g want %g", name, c, f[c], area*want[c])
				}
			}
		}
	}
}

// Every registered kernel must be conservative across a face:
// F(L, R, n) == -F(R, L, -n), so the flux leaving one cell is exactly the
// flux entering its neighbor regardless of which side assembles it.
func TestFluxKernelsSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, name := range FluxKernels() {
		k, err := FluxKernelFor(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			L, R := randPrim(r), randPrim(r)
			th := r.Float64() * 2 * math.Pi
			nx, ny := math.Cos(th), math.Sin(th)
			area := 0.1 + r.Float64()*3
			f := k.Flux(L, R, nx, ny, area)
			g := k.Flux(R, L, -nx, -ny, area)
			for c := 0; c < 4; c++ {
				scale := math.Abs(f[c]) + math.Abs(g[c]) + 1
				if math.Abs(f[c]+g[c]) > 1e-8*scale {
					t.Fatalf("%s symmetry, trial %d component %d: F=%g -F'=%g", name, trial, c, f[c], -g[c])
				}
			}
		}
	}
}

func TestFluxKernelRegistry(t *testing.T) {
	for _, want := range []string{"hlle", "hlle-ef", "hllc", "ausm+", "ausm+up"} {
		if _, err := FluxKernelFor(want); err != nil {
			t.Errorf("kernel %q missing: %v", want, err)
		}
	}
	if k, err := FluxKernelFor(""); err != nil || k.Name() != DefaultFlux {
		t.Errorf("empty name should resolve to %q, got %v, %v", DefaultFlux, k, err)
	}
	if _, err := FluxKernelFor("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := New(nil, Options{Gas: gas.NewIdealAir(), Flux: "nope"}); err == nil {
		t.Error("solver accepted unknown kernel")
	}
}

// Every kernel must capture the M=6 sphere shock with the right pitot
// pressure — the end-to-end guarantee that kernels are interchangeable.
func TestFluxKernelsShockCapture(t *testing.T) {
	for _, name := range FluxKernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := bluntSolverFlux(t, name)
			defer s.Close()
			if _, err := s.Run(3000, 1e-3); err != nil {
				t.Fatal(err)
			}
			// Rayleigh pitot pressure for M=6, gamma=1.4: p02/p1 = 46.81.
			q := s.Primitive(0, 0)
			if math.Abs(q.P/100-46.81) > 6 {
				t.Errorf("stagnation pressure ratio %g want ~46.8", q.P/100)
			}
		})
	}
}

func bluntSolverFlux(t *testing.T, flux string) *Solver {
	t.Helper()
	s := bluntSolver(t, gas.NewIdealAir(), 6, true)
	s.Close()
	ns, err := New(s.G, func() Options { o := s.Opts; o.Flux = flux; return o }())
	if err != nil {
		t.Fatal(err)
	}
	return ns
}
