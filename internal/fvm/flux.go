package fvm

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// FluxKernel computes the numerical flux through a face with unit normal
// (nx, ny) and the given area, from left state L to right state R, scaled
// by the face area. Taking the normal pre-split keeps renormalization out
// of the per-face hot loop (the metrics cache stores unit normals).
// Kernels must be conservative and symmetric:
// Flux(L, R, n, area) == -Flux(R, L, -n, area).
// Implementations register themselves with RegisterFlux and are selected by
// name via Options.Flux, mirroring the core.Solver registry: new upwind
// schemes plug in without touching the solver loops.
type FluxKernel interface {
	// Name is the registry key (e.g. "hlle").
	Name() string
	// Flux returns the area-scaled numerical flux through the face.
	Flux(L, R Prim, nx, ny, area float64) Cons
}

var (
	fluxMu       sync.RWMutex
	fluxRegistry = map[string]FluxKernel{}
)

// DefaultFlux is the kernel used when Options.Flux is empty.
const DefaultFlux = FluxHLLE

func init() {
	RegisterFlux(hlleKernel{})
	RegisterFlux(hlleEFKernel{})
	RegisterFlux(hllcKernel{})
	RegisterFlux(ausmKernel{})
	RegisterFlux(ausmUpKernel{})
}

// RegisterFlux installs a flux kernel under its name, replacing any
// previous kernel with the same name.
func RegisterFlux(k FluxKernel) {
	if k == nil {
		panic("fvm: RegisterFlux with nil kernel")
	}
	fluxMu.Lock()
	defer fluxMu.Unlock()
	fluxRegistry[k.Name()] = k
}

// FluxKernelFor resolves a registered kernel by name; the empty name
// resolves to DefaultFlux.
func FluxKernelFor(name string) (FluxKernel, error) {
	if name == "" {
		name = DefaultFlux
	}
	fluxMu.RLock()
	defer fluxMu.RUnlock()
	k, ok := fluxRegistry[name]
	if !ok {
		return nil, fmt.Errorf("fvm: no flux kernel %q (have %v)", name, fluxNamesLocked())
	}
	return k, nil
}

// FluxKernels returns the registered kernel names in ascending order.
func FluxKernels() []string {
	fluxMu.RLock()
	defer fluxMu.RUnlock()
	return fluxNamesLocked()
}

func fluxNamesLocked() []string {
	out := make([]string, 0, len(fluxRegistry))
	for n := range fluxRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// kernelFluxVec applies a kernel to a face given as a raw area vector
// (sx, sy) — the convenience form used by tests and one-off callers; the
// solver hot loops use the cached unit normals instead.
func kernelFluxVec(k FluxKernel, L, R Prim, sx, sy float64) Cons {
	area := math.Hypot(sx, sy)
	if area == 0 {
		return Cons{}
	}
	return k.Flux(L, R, sx/area, sy/area, area)
}

// --- HLLE ---

type hlleKernel struct{}

func (hlleKernel) Name() string { return FluxHLLE }

// Flux is the HLLE flux: pure upwind outside the estimated wave fan and
// the integral average of the Riemann fan inside it.
//
//cataero:hotpath
func (hlleKernel) Flux(L, R Prim, nx, ny, area float64) Cons {
	unL := L.U*nx + L.V*ny
	unR := R.U*nx + R.V*ny
	sl := math.Min(unL-L.A, unR-R.A)
	sr := math.Max(unL+L.A, unR+R.A)
	var f Cons
	switch {
	case sl >= 0:
		f = physFlux(L, nx, ny)
	case sr <= 0:
		f = physFlux(R, nx, ny)
	default:
		fL := physFlux(L, nx, ny)
		fR := physFlux(R, nx, ny)
		uL := consOf(L)
		uR := consOf(R)
		inv := 1 / (sr - sl)
		for k := 0; k < 4; k++ {
			f[k] = (sr*fL[k] - sl*fR[k] + sl*sr*(uR[k]-uL[k])) * inv
		}
	}
	for k := 0; k < 4; k++ {
		f[k] *= area
	}
	return f
}

// hlle computes the HLLE flux through a face with area vector (sx, sy) from
// left state L to right state R.
func hlle(L, R Prim, sx, sy float64) Cons {
	return kernelFluxVec(hlleKernel{}, L, R, sx, sy)
}

// --- HLLE with entropy fix ---

type hlleEFKernel struct{}

func (hlleEFKernel) Name() string { return FluxHLLEEF }

// entropyFixFrac scales the hlle-ef dissipation floor: the left and right
// wave-speed estimates are pushed at least entropyFixFrac times the mean
// face sound speed away from zero. 0.1 is the customary Harten-style
// choice — wide enough to break an expansion shock, narrow enough to leave
// captured shocks crisp.
const entropyFixFrac = 0.1

// Flux is the HLLE flux with an entropy fix: the wave-speed estimates are
// floored away from zero by a fraction of the mean sound speed, so the
// scheme never collapses onto the pure-upwind branch at a sonic point.
// Plain HLLE can lock in an entropy-violating expansion shock exactly
// there (the left and right fluxes agree across the jump and the
// dissipation vanishes); the floor keeps the fan averaged and smears the
// jump into the physical rarefaction at the cost of O(delta) extra
// dissipation everywhere.
//
//cataero:hotpath
func (hlleEFKernel) Flux(L, R Prim, nx, ny, area float64) Cons {
	unL := L.U*nx + L.V*ny
	unR := R.U*nx + R.V*ny
	sl := math.Min(unL-L.A, unR-R.A)
	sr := math.Max(unL+L.A, unR+R.A)
	d := entropyFixFrac * 0.5 * (L.A + R.A)
	if sl > -d {
		sl = -d
	}
	if sr < d {
		sr = d
	}
	fL := physFlux(L, nx, ny)
	fR := physFlux(R, nx, ny)
	uL := consOf(L)
	uR := consOf(R)
	inv := 1 / (sr - sl)
	var f Cons
	for k := 0; k < 4; k++ {
		f[k] = (sr*fL[k] - sl*fR[k] + sl*sr*(uR[k]-uL[k])) * inv
	}
	for k := 0; k < 4; k++ {
		f[k] *= area
	}
	return f
}

// --- HLLC ---

type hllcKernel struct{}

func (hllcKernel) Name() string { return FluxHLLC }

// Flux is the HLLC flux (Toro's restoration of the contact wave missing
// from HLLE), written against wave-speed estimates that only use the local
// sound speeds so it stays valid for a general equation of state.
//
//cataero:hotpath
func (hllcKernel) Flux(L, R Prim, nx, ny, area float64) Cons {
	unL := L.U*nx + L.V*ny
	unR := R.U*nx + R.V*ny
	sl := math.Min(unL-L.A, unR-R.A)
	sr := math.Max(unL+L.A, unR+R.A)
	var f Cons
	switch {
	case sl >= 0:
		f = physFlux(L, nx, ny)
	case sr <= 0:
		f = physFlux(R, nx, ny)
	default:
		den := L.Rho*(sl-unL) - R.Rho*(sr-unR)
		if math.Abs(den) < 1e-300 {
			return hlleKernel{}.Flux(L, R, nx, ny, area)
		}
		sm := (R.P - L.P + L.Rho*unL*(sl-unL) - R.Rho*unR*(sr-unR)) / den
		if sm >= 0 {
			fL := physFlux(L, nx, ny)
			uL := consOf(L)
			us := hllcStar(L, unL, sl, sm, nx, ny)
			for k := 0; k < 4; k++ {
				f[k] = fL[k] + sl*(us[k]-uL[k])
			}
		} else {
			fR := physFlux(R, nx, ny)
			uR := consOf(R)
			us := hllcStar(R, unR, sr, sm, nx, ny)
			for k := 0; k < 4; k++ {
				f[k] = fR[k] + sr*(us[k]-uR[k])
			}
		}
	}
	for k := 0; k < 4; k++ {
		f[k] *= area
	}
	return f
}

// --- AUSM+ ---

type ausmKernel struct{}

// hllcStar is the HLLC star-region conserved state on side q between wave sq
// and the contact sm, already folded with the q.Rho(sq-un)/(sq-sm) factor.
//
//cataero:hotpath
func hllcStar(q Prim, un, sq, sm, nx, ny float64) Cons {
	fac := q.Rho * (sq - un) / (sq - sm)
	et := q.E + 0.5*(q.U*q.U+q.V*q.V)
	eStar := et + (sm-un)*(sm+q.P/(q.Rho*(sq-un)))
	return Cons{
		fac,
		fac * (q.U + (sm-un)*nx),
		fac * (q.V + (sm-un)*ny),
		fac * eStar,
	}
}

func (ausmKernel) Name() string { return FluxAUSMPlus }

// Flux is Liou's AUSM+ flux: Mach-number and pressure splittings about a
// common interface sound speed, with the convected vector upwinded by the
// interface Mach number. The splittings satisfy M±(M) = -M∓(-M) and
// P±(M) = P∓(-M), which gives the required symmetry under (L,R,n) ->
// (R,L,-n).
//
//cataero:hotpath
func (ausmKernel) Flux(L, R Prim, nx, ny, area float64) Cons {
	a := 0.5 * (L.A + R.A)
	if a <= 0 {
		return Cons{}
	}
	mL := (L.U*nx + L.V*ny) / a
	mR := (R.U*nx + R.V*ny) / a
	const alpha = 3.0 / 16.0
	const beta = 1.0 / 8.0
	var mPlus, pPlus float64
	if math.Abs(mL) >= 1 {
		mPlus = 0.5 * (mL + math.Abs(mL))
		pPlus = mPlus / mL
	} else {
		mPlus = 0.25*(mL+1)*(mL+1) + beta*(mL*mL-1)*(mL*mL-1)
		pPlus = 0.25*(mL+1)*(mL+1)*(2-mL) + alpha*mL*(mL*mL-1)*(mL*mL-1)
	}
	var mMinus, pMinus float64
	if math.Abs(mR) >= 1 {
		mMinus = 0.5 * (mR - math.Abs(mR))
		pMinus = mMinus / mR
	} else {
		mMinus = -0.25*(mR-1)*(mR-1) - beta*(mR*mR-1)*(mR*mR-1)
		pMinus = 0.25*(mR-1)*(mR-1)*(2+mR) - alpha*mR*(mR*mR-1)*(mR*mR-1)
	}
	m12 := mPlus + mMinus
	p12 := pPlus*L.P + pMinus*R.P
	// Upwind the convected vector (rho, rho u, rho v, rho H) by m12.
	q := L
	if m12 < 0 {
		q = R
	}
	H := q.E + q.P/q.Rho + 0.5*(q.U*q.U+q.V*q.V)
	mass := a * m12 * q.Rho
	f := Cons{
		mass,
		mass*q.U + p12*nx,
		mass*q.V + p12*ny,
		mass * H,
	}
	for k := 0; k < 4; k++ {
		f[k] *= area
	}
	return f
}

// --- AUSM+up ---

type ausmUpKernel struct{}

func (ausmUpKernel) Name() string { return FluxAUSMPlusUp }

// AUSM+up low-Mach coefficients (Liou 2006): Kp and Ku weight the pressure-
// and velocity-diffusion terms, sigma bounds the pressure term's Mach
// window, and ausmUpMco is the cutoff Mach number that floors the scaling
// function fa so both terms stay active as the local Mach number vanishes.
const (
	ausmUpKp    = 0.25
	ausmUpKu    = 0.75
	ausmUpSigma = 1.0
	ausmUpMco   = 0.1
)

// Flux is Liou's AUSM+up flux: the AUSM+ Mach and pressure splittings
// augmented with a pressure-diffusion term in the interface Mach number and
// a velocity-diffusion term in the interface pressure. Plain AUSM+ loses
// pressure-velocity coupling as M -> 0 (the pressure flux decouples and
// checkerboards in near-incompressible regions — boundary layers, the
// stagnation region ahead of a blunt body); the +up terms restore it with
// O(M) diffusion scaled by fa so they vanish at transonic and supersonic
// Mach numbers and leave captured shocks as crisp as AUSM+. Both terms are
// antisymmetric under (L,R,n) -> (R,L,-n) and vanish at L == R, so the
// kernel keeps the registry's symmetry and consistency contracts.
//
//cataero:hotpath
func (ausmUpKernel) Flux(L, R Prim, nx, ny, area float64) Cons {
	a := 0.5 * (L.A + R.A)
	if a <= 0 {
		return Cons{}
	}
	unL := L.U*nx + L.V*ny
	unR := R.U*nx + R.V*ny
	mL := unL / a
	mR := unR / a
	const alpha = 3.0 / 16.0
	const beta = 1.0 / 8.0
	var mPlus, pPlus float64
	if math.Abs(mL) >= 1 {
		mPlus = 0.5 * (mL + math.Abs(mL))
		pPlus = mPlus / mL
	} else {
		mPlus = 0.25*(mL+1)*(mL+1) + beta*(mL*mL-1)*(mL*mL-1)
		pPlus = 0.25*(mL+1)*(mL+1)*(2-mL) + alpha*mL*(mL*mL-1)*(mL*mL-1)
	}
	var mMinus, pMinus float64
	if math.Abs(mR) >= 1 {
		mMinus = 0.5 * (mR - math.Abs(mR))
		pMinus = mMinus / mR
	} else {
		mMinus = -0.25*(mR-1)*(mR-1) - beta*(mR*mR-1)*(mR*mR-1)
		pMinus = 0.25*(mR-1)*(mR-1)*(2+mR) - alpha*mR*(mR*mR-1)*(mR*mR-1)
	}
	// Scaling function fa in [fa(Mco), 1]: the mean Mach number squared,
	// floored at the cutoff, mapped through Mo(2-Mo).
	mBar2 := 0.5 * (mL*mL + mR*mR)
	mo2 := mBar2
	if mo2 < ausmUpMco*ausmUpMco {
		mo2 = ausmUpMco * ausmUpMco
	}
	if mo2 > 1 {
		mo2 = 1
	}
	mo := math.Sqrt(mo2)
	fa := mo * (2 - mo)
	rhoBar := 0.5 * (L.Rho + R.Rho)
	// Pressure diffusion in the interface Mach number, clamped to a twentieth
	// of a Mach unit: the correction targets O(M) pressure odd-even
	// decoupling, but in a raw startup transient (near-vacuum cell against a
	// fresh shock) the p-jump over rho*a^2 can reach thousands and the
	// unclamped term then drives an unphysical mass flux — enough to reverse
	// the interface Mach near a stagnation point — that diverges the solve.
	// Converged
	// low-Mach fields sit far inside the clamp.
	mp := 0.0
	if w := 1 - ausmUpSigma*mBar2; w > 0 {
		mp = -(ausmUpKp / fa) * w * (R.P - L.P) / (rhoBar * a * a)
		if mp > 0.05 {
			mp = 0.05
		} else if mp < -0.05 {
			mp = -0.05
		}
	}
	m12 := mPlus + mMinus + mp
	// Velocity diffusion in the interface pressure.
	pu := -ausmUpKu * pPlus * pMinus * (L.Rho + R.Rho) * (fa * a) * (unR - unL)
	p12 := pPlus*L.P + pMinus*R.P + pu
	// Upwind the convected vector (rho, rho u, rho v, rho H) by m12.
	q := L
	if m12 < 0 {
		q = R
	}
	H := q.E + q.P/q.Rho + 0.5*(q.U*q.U+q.V*q.V)
	mass := a * m12 * q.Rho
	f := Cons{
		mass,
		mass*q.U + p12*nx,
		mass*q.V + p12*ny,
		mass * H,
	}
	for k := 0; k < 4; k++ {
		f[k] *= area
	}
	return f
}
