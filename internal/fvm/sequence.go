package fvm

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/grid"
)

// SequenceOptions configures a grid-sequenced or multilevel solve
// (SolveSequenced / SolveMultilevel).
type SequenceOptions struct {
	// Coarsen divides the cell counts between adjacent levels (default 2).
	Coarsen int
	// CoarseDropTol is the relative residual drop for the coarsest level
	// (default 1e-2: the coarse stage only has to establish the shock).
	// Intermediate levels of a deeper hierarchy interpolate geometrically
	// between CoarseDropTol and the fine drop tolerance.
	CoarseDropTol float64
	// CoarseMaxSteps bounds each coarse level (default maxSteps).
	CoarseMaxSteps int
	// Refit re-fits each finer grid's outer boundary to the coarser level's
	// shock locus at the level transition, shrink-wrapping the shock layer.
	Refit bool
	// RefitMargin is the outer-boundary margin over the detected standoff
	// (default 1.4); used with Refit and RefitEvery.
	RefitMargin float64

	// Levels is the number of grid levels, fine level included: 0 and 2 run
	// the classic two-level sequenced solve, 1 solves single-level, and 3 or
	// more build a deeper hierarchy by chained Coarsen calls. Levels the
	// grid cannot reach (cell counts not divisible by the factor, or below
	// the 4x4 MUSCL floor) are dropped automatically.
	Levels int
	// Cycle selects the multilevel schedule (see Cycles): "cascade" (the
	// default — converge coarsest-first, inject downward, finish fine) or
	// "v" (FAS V-cycles with pre/post smoothing sweeps after a cascade
	// initialization). Setting Cycle routes the solve through the
	// multilevel driver even at two levels.
	Cycle string
	// SmoothSteps is the number of pre- and post-smoothing time steps per
	// level of a V-cycle (default 4). Ignored by the cascade.
	SmoothSteps int
	// RefitEvery, when positive, re-detects the shock locus every RefitEvery
	// steps on the finest level mid-march, re-fits the outer boundary with
	// RefitMargin and transfers the solution onto the refitted grid, so
	// late-march cells concentrate in the shock layer.
	RefitEvery int
}

// multilevel reports whether the options request the multilevel driver
// rather than the classic two-level sequenced path.
func (sq SequenceOptions) multilevel() bool {
	return sq.Levels == 1 || sq.Levels >= 3 || sq.Cycle != "" || sq.RefitEvery > 0
}

// withDefaults fills the zero-valued fields shared by the two-level and
// multilevel paths, so the defaults cannot drift between them.
func (sq SequenceOptions) withDefaults(maxSteps int) SequenceOptions {
	if sq.Coarsen < 2 {
		sq.Coarsen = 2
	}
	if sq.CoarseDropTol == 0 {
		sq.CoarseDropTol = 1e-2
	}
	if sq.CoarseMaxSteps == 0 {
		sq.CoarseMaxSteps = maxSteps
	}
	if sq.RefitMargin <= 1 {
		sq.RefitMargin = 1.4
	}
	return sq
}

// SolveSequenced runs a grid-sequenced solve to steady state: converge on a
// coarsened grid, interpolate the coarse state onto the fine grid as the
// initial condition (optionally re-fitting the fine outer boundary to the
// coarse shock locus), then finish on the fine grid. The fine stage stops
// at the same absolute residual a freestream-started fine solve would reach
// after dropping by dropTol. Returns the fine solver (which the caller owns)
// and its final residual. Falls back to a plain fine-grid solve when the
// grid cannot be coarsened.
func SolveSequenced(ctx context.Context, g *grid.Grid2D, o Options, maxSteps int, dropTol float64, sq SequenceOptions) (*Solver, float64, error) {
	if sq.multilevel() {
		return SolveMultilevel(ctx, g, o, maxSteps, dropTol, sq)
	}
	sq = sq.withDefaults(maxSteps)
	// A fine-phase checkpoint carries its own absolute target, so the whole
	// coarse stage and the calibration step are skipped: restore the fine
	// state (refitted grid nodes included) and continue the march. Any
	// restore failure falls through to a cold solve.
	if cp := o.Restore; cp != nil && cp.Phase == "fine" && cp.NI == g.NI && cp.NJ == g.NJ {
		o.Restore = nil
		if fine, err := New(g, o); err == nil {
			fine.phase = "fine"
			if err := fine.Restore(cp); err == nil {
				res, err := fine.RunToCtx(ctx, maxSteps, cp.Target)
				if err != nil {
					fine.Close()
					return nil, 0, err
				}
				return fine, res, nil
			}
			fine.Close()
		}
	}
	cg, err := g.Coarsen(sq.Coarsen)
	if err != nil {
		// Grid too small (or hand-built): sequencing buys nothing, solve fine.
		s, err := New(g, o)
		if err != nil {
			return nil, 0, err
		}
		res, err := s.RunCtx(ctx, maxSteps, dropTol)
		return s, res, err
	}
	coarse, err := New(cg, o)
	if err != nil {
		return nil, 0, err
	}
	coarse.phase = "coarse"
	defer coarse.Close()
	if _, err := coarse.RunCtx(ctx, sq.CoarseMaxSteps, sq.CoarseDropTol); err != nil {
		return nil, 0, err
	}
	fineGrid := g
	if sq.Refit {
		rg, err := refitToShock(coarse, g, sq.RefitMargin)
		if err != nil {
			return nil, 0, fmt.Errorf("fvm: sequenced solve: refit to coarse shock locus: %w", err)
		}
		fineGrid = rg
	}
	fine, err := New(fineGrid, o)
	if err != nil {
		return nil, 0, err
	}
	fine.phase = "fine"
	// Calibrate the absolute target: one freestream-started step gives the
	// same initial residual scale RunCtx would have latched onto, then the
	// injected coarse state replaces the stepped one.
	r0 := fine.Step()
	if math.IsNaN(r0) || r0 <= 0 {
		fine.Close()
		return nil, 0, errNaNCalibration
	}
	fine.injectFrom(coarse)
	res, err := fine.RunToCtx(ctx, maxSteps, r0*dropTol)
	if err != nil {
		fine.Close()
		return nil, 0, err
	}
	return fine, res, nil
}

var errNaNCalibration = &calibrationError{}

type calibrationError struct{}

func (*calibrationError) Error() string {
	return "fvm: sequenced solve: fine-grid calibration step produced no usable residual"
}

// injectFrom initializes the solver's conserved field from a coarse
// solution by bilinear interpolation in cell-center index space. The old
// nearest-cell injection seeded a blocky field whose high-frequency error
// the fine level had to smooth away before converging anything else — on
// small grids that smoothing cost ate the whole sequencing win; the
// bilinear prolongation hands the fine level a field that is already
// smooth at the coarse scale.
func (s *Solver) injectFrom(c *Solver) {
	for i := 0; i < s.ni; i++ {
		i0, ti := prolongWeights(i, s.ni, c.ni)
		for j := 0; j < s.nj; j++ {
			j0, tj := prolongWeights(j, s.nj, c.nj)
			s.U[s.idx(i, j)] = c.bilinear(i0, j0, ti, tj)
		}
	}
}

// prolongWeights maps fine cell center i (of fn cells) into the coarse
// cell-center index space (of cn cells) for a bilinear prolongation:
// returns the lower coarse index and the blend factor toward index+1,
// clamped where the stencil leaves the grid (the boundary half-cells
// extrapolate constantly, matching the coarse boundary treatment).
func prolongWeights(i, fn, cn int) (int, float64) {
	if cn < 2 {
		return 0, 0
	}
	x := (float64(i)+0.5)*float64(cn)/float64(fn) - 0.5
	if x <= 0 {
		return 0, 0
	}
	if x >= float64(cn-1) {
		return cn - 2, 1
	}
	i0 := int(x)
	return i0, x - float64(i0)
}

// bilinear blends the four coarse cells around fractional cell-center
// index (i0+ti, j0+tj).
func (c *Solver) bilinear(i0, j0 int, ti, tj float64) Cons {
	i1, j1 := i0+1, j0+1
	if i1 > c.ni-1 {
		i1 = c.ni - 1
	}
	if j1 > c.nj-1 {
		j1 = c.nj - 1
	}
	w00 := (1 - ti) * (1 - tj)
	w01 := (1 - ti) * tj
	w10 := ti * (1 - tj)
	w11 := ti * tj
	u00 := c.U[c.idx(i0, j0)]
	u01 := c.U[c.idx(i0, j1)]
	u10 := c.U[c.idx(i1, j0)]
	u11 := c.U[c.idx(i1, j1)]
	var out Cons
	for cc := 0; cc < 4; cc++ {
		out[cc] = w00*u00[cc] + w01*u01[cc] + w10*u10[cc] + w11*u11[cc]
	}
	return out
}

// refitToShock rebuilds the fine grid with its outer boundary placed at
// margin times the coarse solver's shock standoff, interpolated in wall arc
// length across the coarse i-lines.
func refitToShock(coarse *Solver, fine *grid.Grid2D, margin float64) (*grid.Grid2D, error) {
	xs, ys := coarse.ShockLocus(2.5)
	cg := coarse.G
	n := len(xs)
	sMid := make([]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		sMid[i] = 0.5 * (cg.S[i] + cg.S[i+1])
		xw := 0.5 * (cg.X[i][0] + cg.X[i+1][0])
		yw := 0.5 * (cg.Y[i][0] + cg.Y[i+1][0])
		d[i] = margin * math.Hypot(xs[i]-xw, ys[i]-yw)
	}
	// A locus hugging the wall (no shock found, or a collapsed line) would
	// produce a degenerate grid; floor at a quarter of the original standoff.
	for i := range d {
		if floor := 0.25 * cg.WallDistance(i); d[i] < floor {
			d[i] = floor
		}
	}
	standoff := func(s float64) float64 {
		if s <= sMid[0] {
			return d[0]
		}
		if s >= sMid[n-1] {
			return d[n-1]
		}
		lo, hi := 0, n-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if sMid[mid] <= s {
				lo = mid
			} else {
				hi = mid
			}
		}
		t := (s - sMid[lo]) / (sMid[lo+1] - sMid[lo])
		return d[lo] + t*(d[lo+1]-d[lo])
	}
	return fine.Refit(standoff)
}
