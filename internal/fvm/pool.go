package fvm

import (
	"runtime"
	"sync"
)

// Pool is a persistent set of worker goroutines for the per-step parallel
// sweeps. A Pool is safe for concurrent use by many solvers at once: sweep
// chunks are handed to a worker only when one is parked waiting (help-first
// semantics — see runRanges), so solvers sharing one pool can never
// deadlock, and the resident goroutine count stays fixed no matter how many
// solves run concurrently. Sessions create one GOMAXPROCS-sized pool and
// thread it through every finite-volume solve (Options.Pool); a solver
// built without a shared pool owns a private one and releases it on Close.
type Pool struct {
	workers int
	tasks   chan poolTask
	once    sync.Once
}

// poolTask is one contiguous index range of a parallel sweep.
type poolTask struct {
	lo, hi int
	run    func(lo, hi int)
	wg     *sync.WaitGroup
}

// NewPool builds a pool with the given worker count; workers < 1 sizes the
// pool to GOMAXPROCS. The pool parks workers-1 goroutines (the goroutine
// calling into the pool always participates in its own sweep). The
// goroutines hold only the task channel, never the Pool itself, so an
// abandoned pool is reclaimed by its finalizer; call Close to release it
// deterministically.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan poolTask)
		for w := 0; w < workers-1; w++ {
			go poolWorker(p.tasks)
		}
		runtime.SetFinalizer(p, (*Pool).Close)
	}
	return p
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		t.run(t.lo, t.hi)
		t.wg.Done()
	}
}

// Workers reports the pool's sizing (parallel width, including the caller).
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's goroutines. No sweep may be in flight or issued
// after Close; calling Close more than once is safe.
func (p *Pool) Close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

// run executes f(i) for every i in [0, n), split into one chunk per worker.
func (p *Pool) run(n int, f func(i int)) {
	p.runRanges(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// runSum executes f(i) for every i in [0, n) and returns the sum of the
// results, accumulating per-chunk partials so the reduction parallelizes
// without atomics in the inner loop.
func (p *Pool) runSum(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunk := p.chunkSize(n)
	partial := make([]float64, (n+chunk-1)/chunk)
	p.runRanges(n, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[lo/chunk] = s
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

// chunkSize returns the per-chunk index count used to split a sweep of n.
func (p *Pool) chunkSize(n int) int {
	w := p.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return (n + w - 1) / w
}

// runRanges splits [0, n) into one range per worker and executes run on
// each. A chunk is handed off only when a worker is parked ready to take it
// (non-blocking send); otherwise the caller runs the chunk inline. Under a
// shared pool this is what makes concurrent solves safe: a sweep never
// waits on workers occupied by other solves — it degrades to inline
// execution on its own goroutine instead of queueing behind them.
func (p *Pool) runRanges(n int, run func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.tasks == nil || n == 1 {
		run(0, n)
		return
	}
	chunk := p.chunkSize(n)
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case p.tasks <- poolTask{lo: lo, hi: hi, run: run, wg: &wg}:
		default:
			run(lo, hi)
			wg.Done()
		}
	}
	run(0, chunk)
	wg.Wait()
}
