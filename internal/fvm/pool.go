package fvm

import (
	"runtime"
	"sync"
)

// Pool is a persistent set of worker goroutines for the per-step parallel
// sweeps. A Pool is safe for concurrent use by many solvers at once: sweep
// chunks are handed to a worker only when one is parked waiting (help-first
// semantics — see sweep), so solvers sharing one pool can never
// deadlock, and the resident goroutine count stays fixed no matter how many
// solves run concurrently. Sessions create one GOMAXPROCS-sized pool and
// thread it through every finite-volume solve (Options.Pool); a solver
// built without a shared pool owns a private one and releases it on Close.
type Pool struct {
	workers int
	tasks   chan poolTask
	once    sync.Once
}

// poolTask is one contiguous index range of a parallel sweep.
type poolTask struct {
	ci     int // chunk ordinal within the sweep
	lo, hi int
	run    func(ci, lo, hi int)
	wg     *sync.WaitGroup
}

// NewPool builds a pool with the given worker count; workers < 1 sizes the
// pool to GOMAXPROCS. The pool parks workers-1 goroutines (the goroutine
// calling into the pool always participates in its own sweep). The
// goroutines hold only the task channel, never the Pool itself, so an
// abandoned pool is reclaimed by its finalizer; call Close to release it
// deterministically.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan poolTask)
		for w := 0; w < workers-1; w++ {
			go poolWorker(p.tasks)
		}
		runtime.SetFinalizer(p, (*Pool).Close)
	}
	return p
}

func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		t.run(t.ci, t.lo, t.hi)
		t.wg.Done()
	}
}

// Workers reports the pool's sizing (parallel width, including the caller).
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's goroutines. No sweep may be in flight or issued
// after Close; calling Close more than once is safe.
func (p *Pool) Close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

// sweep splits [0, n) into one range per worker and executes run on each,
// passing the chunk ordinal ci (0 <= ci < chunkCount(n)) so reductions can
// write per-chunk scratch slots without re-deriving the split. A chunk is
// handed off only when a worker is parked ready to take it (non-blocking
// send); otherwise the caller runs the chunk inline. Under a shared pool
// this is what makes concurrent solves safe: a sweep never waits on workers
// occupied by other solves — it degrades to inline execution on its own
// goroutine instead of queueing behind them. The caller supplies the range
// closure and the WaitGroup to reuse across sweeps, so a steady-state sweep
// with a prebuilt closure (e.g. a method value stored on the solver) costs
// zero heap allocations. The WaitGroup must not be shared by concurrent
// sweeps.
func (p *Pool) sweep(n int, wg *sync.WaitGroup, run func(ci, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.tasks == nil || n == 1 {
		run(0, 0, n)
		return
	}
	chunk := p.chunkSize(n)
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case p.tasks <- poolTask{ci: lo / chunk, lo: lo, hi: hi, run: run, wg: wg}:
		default:
			run(lo/chunk, lo, hi)
			wg.Done()
		}
	}
	run(0, 0, chunk)
	wg.Wait()
}

// chunkSize returns the per-chunk index count used to split a sweep of n.
func (p *Pool) chunkSize(n int) int {
	w := p.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return (n + w - 1) / w
}

// chunkCount returns how many chunks a sweep of n splits into — the size a
// per-chunk scratch array must have for sweep's ci to index it.
func (p *Pool) chunkCount(n int) int {
	if n <= 0 {
		return 0
	}
	c := p.chunkSize(n)
	return (n + c - 1) / c
}
