package fvm

import (
	"runtime"
	"sync"
)

// workerPool is a persistent pool of goroutines for the per-step parallel
// sweeps. The seed spawned a fresh goroutine set for every sweep (~6 sweeps
// per time step, ~2000 steps per solve); the pool spawns its workers once
// per solver and feeds them index ranges over a channel instead.
type workerPool struct {
	workers int
	tasks   chan poolTask
}

// poolTask is one contiguous index range of a parallel sweep.
type poolTask struct {
	lo, hi int
	run    func(lo, hi int)
	wg     *sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	p := &workerPool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan poolTask)
		for w := 0; w < workers-1; w++ {
			go func() {
				for t := range p.tasks {
					t.run(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	}
	return p
}

// close releases the pool's goroutines. The pool must not be used after.
func (p *workerPool) close() {
	if p.tasks != nil {
		close(p.tasks)
	}
}

// run executes f(i) for every i in [0, n), split into one chunk per worker.
// The calling goroutine participates by running the first chunk itself, so
// a pool of W workers keeps W CPUs busy with W-1 resident goroutines.
func (p *workerPool) run(n int, f func(i int)) {
	p.runRanges(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// runSum executes f(i) for every i in [0, n) and returns the sum of the
// results, accumulating per-chunk partials so the reduction parallelizes
// without atomics in the inner loop.
func (p *workerPool) runSum(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunk := p.chunkSize(n)
	partial := make([]float64, (n+chunk-1)/chunk)
	p.runRanges(n, func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[lo/chunk] = s
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

// chunkSize returns the per-chunk index count used to split a sweep of n.
func (p *workerPool) chunkSize(n int) int {
	w := p.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return (n + w - 1) / w
}

// runRanges splits [0, n) into one range per worker and executes run on
// each, inline when the pool is serial and on the resident workers
// otherwise.
func (p *workerPool) runRanges(n int, run func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.tasks == nil || n == 1 {
		run(0, n)
		return
	}
	chunk := p.chunkSize(n)
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.tasks <- poolTask{lo: lo, hi: hi, run: run, wg: &wg}
	}
	run(0, chunk)
	wg.Wait()
}
