package fvm

import (
	"context"
	"math"
	"sync"
	"testing"
)

// Two solvers sharing one pool must both converge, concurrently, and one
// solver's Close must not tear the shared pool down under the other.
func TestSharedPoolConcurrentSolvers(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	g1, o1 := seqCase(t)
	o1.Pool = pool
	g2, o2 := seqCase(t)
	o2.Pool = pool

	s1, err := New(g1, o1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(g2, o2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	res := make([]float64, 2)
	errs := make([]error, 2)
	for i, s := range []*Solver{s1, s2} {
		wg.Add(1)
		go func(i int, s *Solver) {
			defer wg.Done()
			res[i], errs[i] = s.RunCtx(context.Background(), 600, 1e-2)
		}(i, s)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("solver %d: %v", i, errs[i])
		}
		if math.IsNaN(res[i]) || res[i] <= 0 {
			t.Fatalf("solver %d residual %g", i, res[i])
		}
	}
	// Closing one solver must leave the shared pool alive for the other.
	s1.Close()
	if _, err := s2.RunCtx(context.Background(), 4, 0); err != nil {
		t.Fatalf("solve after sibling Close: %v", err)
	}
	s2.Close()
	// Identical configurations through one pool should land on the same
	// physics.
	q1, q2 := s1.Primitive(0, 0), s2.Primitive(0, 0)
	if math.Abs(q1.P-q2.P)/q1.P > 0.05 {
		t.Errorf("shared-pool twins diverged: p %g vs %g", q1.P, q2.P)
	}
}

// The Progress callback must see every step exactly once, in order, with
// the phase label and step budget.
func TestRunProgressCallback(t *testing.T) {
	g, o := seqCase(t)
	var steps []int
	var phases []string
	var lastRes float64
	o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) {
		if maxSteps != 50 {
			t.Fatalf("maxSteps %d want 50", maxSteps)
		}
		steps = append(steps, step)
		phases = append(phases, phase)
		lastRes = residual
	}
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunCtx(context.Background(), 50, 0); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 50 {
		t.Fatalf("got %d progress reports, want 50", len(steps))
	}
	for i, n := range steps {
		if n != i+1 {
			t.Fatalf("report %d has step %d", i, n)
		}
		if phases[i] != "solve" {
			t.Fatalf("report %d phase %q", i, phases[i])
		}
	}
	if lastRes <= 0 || math.IsNaN(lastRes) {
		t.Fatalf("final reported residual %g", lastRes)
	}
}

// A grid-sequenced solve reports its stages as "coarse" then "fine", never
// interleaved.
func TestSequencedProgressPhases(t *testing.T) {
	g, o := seqCase(t)
	var phases []string
	o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) {
		phases = append(phases, phase)
	}
	s, _, err := SolveSequenced(context.Background(), g, o, 2000, 1e-2, SequenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sawFine := false
	for _, ph := range phases {
		switch ph {
		case "coarse":
			if sawFine {
				t.Fatal("coarse phase after fine began")
			}
		case "fine":
			sawFine = true
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if !sawFine || phases[0] != "coarse" {
		t.Fatalf("phases %v: want coarse stage then fine stage", phases)
	}
}
