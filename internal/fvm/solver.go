package fvm

import (
	"context"
	"fmt"
	"math"
)

// computeResidual assembles the flux balance of every cell into s.res
// (d(U V)/dt = -res). Boundary conditions are applied at the flux level.
// All geometry comes from the precomputed metric arrays. Assembly is three
// cache-blocked passes on prebuilt range closures: the I- and J-face flux
// planes (one grid line per block, reconstructed into the chunk's SoA
// pencil and swept by the kernel's batched loop), then a gather pass that
// differences the planes into cell residuals and folds in the
// axisymmetric source and FAS forcing. A block's pencil, metrics and flux
// writes stay resident while it runs, and no two chunks ever write the
// same cell, so there is no scatter contention and no zeroing pre-pass.
func (s *Solver) computeResidual() {
	// I-direction faces: i = 0..ni, between cells (i-1,j) and (i,j).
	s.pool.sweep(s.ni+1, &s.sweepWG, s.swFluxI)
	// J-direction faces: j = 0..nj, between cells (i,j-1) and (i,j).
	s.pool.sweep(s.ni, &s.sweepWG, s.swFluxJ)
	// Difference the face planes into cell residuals.
	s.pool.sweep(s.ni, &s.sweepWG, s.swAccum)
}

// fluxIRange fills the I-face flux plane for face columns [lo, hi): column
// i holds faces (i, j), j = 0..nj-1, contiguously in both the plane and
// the FaceIN metrics. Boundary columns (symmetry mirror at i=0, zero-
// gradient outflow at i=ni) go through the scalar reference kernel;
// interior columns are reconstructed into the chunk pencil and swept by
// the batched kernel.
//
//cataero:hotpath
func (s *Solver) fluxIRange(ci, lo, hi int) {
	ni, nj := s.ni, s.nj
	met := s.met
	for i := lo; i < hi; i++ {
		col := s.fluxI[4*i*nj : 4*(i+1)*nj]
		nrm := met.FaceIN[3*i*nj : 3*(i+1)*nj]
		switch {
		case i == 0:
			for j := 0; j < nj; j++ {
				nx, ny, area := nrm[3*j], nrm[3*j+1], nrm[3*j+2]
				k := 4 * j
				if area == 0 {
					col[k], col[k+1], col[k+2], col[k+3] = 0, 0, 0, 0
					continue
				}
				// Symmetry plane (stagnation line): mirror the first cell.
				in := s.prim[j]
				f := s.flux.Flux(mirror(in, nx, ny), in, nx, ny, area)
				col[k], col[k+1], col[k+2], col[k+3] = f[0], f[1], f[2], f[3]
			}
		case i == ni:
			for j := 0; j < nj; j++ {
				nx, ny, area := nrm[3*j], nrm[3*j+1], nrm[3*j+2]
				k := 4 * j
				if area == 0 {
					col[k], col[k+1], col[k+2], col[k+3] = 0, 0, 0, 0
					continue
				}
				// Outflow: zero-gradient ghost.
				in := s.prim[(ni-1)*nj+j]
				f := s.flux.Flux(in, in, nx, ny, area)
				col[k], col[k+1], col[k+2], col[k+3] = f[0], f[1], f[2], f[3]
			}
		default:
			ws := &s.bws[ci]
			s.reconColI(ws, i)
			if s.batch != nil {
				s.batch.BatchFlux(col, &ws.L, &ws.R, nrm, nj)
			} else {
				s.scalarFluxPencil(col, &ws.L, &ws.R, nrm, nj)
			}
		}
	}
}

// fluxJRange fills the J-face flux plane for i-lines [lo, hi): line i
// holds faces (i, j), j = 0..nj, contiguously in both the plane and the
// FaceJN metrics. The wall (j=0) and freestream-ghost (j=nj) faces go
// through the scalar reference kernel; the interior faces are
// reconstructed from the line's contiguous cell run and swept by the
// batched kernel, with the thin-layer viscous flux added scalar per face.
//
//cataero:hotpath
func (s *Solver) fluxJRange(ci, lo, hi int) {
	nj := s.nj
	met := s.met
	for i := lo; i < hi; i++ {
		row := s.fluxJ[4*i*(nj+1) : 4*(i+1)*(nj+1)]
		nrm := met.FaceJN[3*i*(nj+1) : 3*(i+1)*(nj+1)]
		// Wall face j=0.
		if nx, ny, area := nrm[0], nrm[1], nrm[2]; area == 0 {
			row[0], row[1], row[2], row[3] = 0, 0, 0, 0
		} else {
			f := s.wallFlux(i, nx, ny, area)
			row[0], row[1], row[2], row[3] = f[0], f[1], f[2], f[3]
		}
		// Interior faces j = 1..nj-1 (pencil slot j-1).
		n := nj - 1
		ws := &s.bws[ci]
		s.reconLineJ(ws, i)
		if s.batch != nil {
			s.batch.BatchFlux(row[4:4+4*n], &ws.L, &ws.R, nrm[3:3+3*n], n)
		} else {
			s.scalarFluxPencil(row[4:4+4*n], &ws.L, &ws.R, nrm[3:3+3*n], n)
		}
		if s.Opts.Viscous {
			for j := 1; j < nj; j++ {
				area := nrm[3*j+2]
				if area == 0 {
					continue
				}
				fv := s.viscousFluxJ(i, j, area)
				k := 4 * j
				row[k+1] += fv[1]
				row[k+2] += fv[2]
				row[k+3] += fv[3]
			}
		}
		// Outer boundary j=nj: freestream ghost (supersonic inflow).
		k := 4 * nj
		if nx, ny, area := nrm[3*nj], nrm[3*nj+1], nrm[3*nj+2]; area == 0 {
			row[k], row[k+1], row[k+2], row[k+3] = 0, 0, 0, 0
		} else {
			in := s.prim[i*nj+nj-1]
			f := s.flux.Flux(in, s.pInf, nx, ny, area)
			row[k], row[k+1], row[k+2], row[k+3] = f[0], f[1], f[2], f[3]
		}
	}
}

// accumRange differences the face flux planes into the cell residuals for
// i-lines [lo, hi), folding in the axisymmetric hoop-pressure source and
// the FAS defect correction. It writes every residual exactly once, so
// computeResidual needs no zeroing pre-pass.
//
//cataero:hotpath
func (s *Solver) accumRange(ci, lo, hi int) {
	nj := s.nj
	met := s.met
	axi := s.G.Axisymmetric
	forcing := s.forcing
	for i := lo; i < hi; i++ {
		for j := 0; j < nj; j++ {
			k := i*nj + j
			iw := 4 * k
			ie := 4 * (k + nj)
			js := 4 * (i*(nj+1) + j)
			jn := js + 4
			for c := 0; c < 4; c++ {
				s.res[k][c] = s.fluxI[ie+c] - s.fluxI[iw+c] + s.fluxJ[jn+c] - s.fluxJ[js+c]
			}
			if axi {
				// Axisymmetric hoop-pressure source in the radial momentum
				// equation.
				s.res[k][2] -= s.prim[k].P * met.Area[k]
			}
			if forcing != nil {
				// FAS defect correction: the level relaxes R(U) - forcing = 0
				// (see multigrid.go).
				for c := 0; c < 4; c++ {
					s.res[k][c] -= forcing[k][c]
				}
			}
		}
	}
}

// mirror reflects a primitive state across a face with unit normal (nx, ny).
func mirror(q Prim, nx, ny float64) Prim {
	un := q.U*nx + q.V*ny
	out := q
	out.U = q.U - 2*un*nx
	out.V = q.V - 2*un*ny
	return out
}

// wallFlux returns the j=0 wall flux for column i through a face with unit
// normal (nx, ny) and the given area.
func (s *Solver) wallFlux(i int, nx, ny, area float64) Cons {
	q := s.prim[s.idx(i, 0)]
	// Inviscid part: pressure only (tangency). Use the mirrored-state upwind
	// flux for robustness at strong transients.
	g := mirror(q, nx, ny)
	f := s.flux.Flux(g, q, nx, ny, area)
	if !s.Opts.Viscous || s.Opts.Wall != NoSlipIsothermal {
		return f
	}
	// Viscous no-slip isothermal wall: shear from the half-cell gradient and
	// conduction against the fixed wall temperature.
	dn := s.met.WallHalf[i]
	mu := s.Opts.Mu(0.5 * (q.T + s.Opts.TWall))
	kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
	f[1] -= mu * q.U / dn * area
	f[2] -= mu * q.V / dn * area
	f[3] -= kth * (q.T - s.Opts.TWall) / dn * area
	return f
}

// viscousFluxJ returns the thin-layer viscous flux through interior j-face
// (i, j) of the given area, pointing toward +j. Sign convention: returned
// flux is added to the +j-directed total flux.
func (s *Solver) viscousFluxJ(i, j int, area float64) Cons {
	m := s.prim[s.idx(i, j-1)]
	p := s.prim[s.idx(i, j)]
	// Cached distance between the straddling cell centers.
	dn := s.met.JDist[i*(s.nj+1)+j]
	if dn == 0 {
		return Cons{}
	}
	Tf := 0.5 * (m.T + p.T)
	mu := s.Opts.Mu(Tf)
	kth := s.Opts.K(Tf)
	dudn := (p.U - m.U) / dn
	dvdn := (p.V - m.V) / dn
	dTdn := (p.T - m.T) / dn
	uf := 0.5 * (m.U + p.U)
	vf := 0.5 * (m.V + p.V)
	return Cons{
		0,
		-mu * dudn * area,
		-mu * dvdn * area,
		-(mu*(uf*dudn+vf*dvdn) + kth*dTdn) * area,
	}
}

// timeSteps fills the local time-step array from the cached metrics, at the
// solver's current CFL number (s.cfl: Opts.CFL for the explicit integrator,
// the ramped value for the implicit one).
func (s *Solver) timeSteps() {
	s.pool.sweep(s.ni, &s.sweepWG, s.swDT)
}

// dtRange fills the local time steps for i-lines [lo, hi).
//
//cataero:hotpath
func (s *Solver) dtRange(ci, lo, hi int) {
	met := s.met
	nj := s.nj
	for i := lo; i < hi; i++ {
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			q := s.prim[k]
			vol := met.Vol[k]
			// Spectral radius estimate over the four faces, from the cached
			// unit normals and areas, with the face loop unrolled so nothing
			// is staged through a temporary array.
			lam := 0.0
			sMax := 0.0
			fw := 3 * (i*nj + j)
			fe := 3 * ((i+1)*nj + j)
			fs := 3 * (i*(nj+1) + j)
			fn := fs + 3
			if mag := met.FaceIN[fw+2]; mag > 0 {
				if un := (math.Abs(q.U*met.FaceIN[fw]+q.V*met.FaceIN[fw+1]) + q.A) * mag; un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if mag := met.FaceIN[fe+2]; mag > 0 {
				if un := (math.Abs(q.U*met.FaceIN[fe]+q.V*met.FaceIN[fe+1]) + q.A) * mag; un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if mag := met.FaceJN[fs+2]; mag > 0 {
				if un := (math.Abs(q.U*met.FaceJN[fs]+q.V*met.FaceJN[fs+1]) + q.A) * mag; un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if mag := met.FaceJN[fn+2]; mag > 0 {
				if un := (math.Abs(q.U*met.FaceJN[fn]+q.V*met.FaceJN[fn+1]) + q.A) * mag; un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if s.Opts.Viscous {
				// Diffusive spectral radius 2 mu S^2 / (rho V).
				lam += 2 * s.Opts.Mu(q.T) * sMax * sMax / (q.Rho * vol)
			}
			if lam <= 0 {
				lam = 1
			}
			s.dt[k] = s.cfl * vol / lam
		}
	}
}

// Step advances one time step of the configured integrator
// (Options.TimeStepping) and returns the RMS density residual. With
// Options.FreezeLimiterAt set it also drives the frozen-limiter state
// machine on the returned residual.
//
//cataero:hotpath
func (s *Solver) Step() float64 {
	r := s.stepper.Step()
	if s.frzI != nil {
		s.freezeLatch(r)
	}
	return r
}

// freezeLatch advances the frozen-limiter state machine after a step
// returning residual r: latch the first residual, switch to one recording
// step once the residual has dropped past FreezeLimiterAt times the first
// value (the shock is stationary by then), and freeze after the recording
// step has stored every interior face's limiter offsets.
func (s *Solver) freezeLatch(r float64) {
	switch s.limMode {
	case limRecord:
		// The recording step just completed: every interior face holds its
		// applied offsets, so replay them from here on.
		s.limMode = limFrozen
	case limLive:
		if math.IsNaN(r) {
			return
		}
		if s.limFirst <= 0 {
			if r > 0 {
				s.limFirst = r
			}
			return
		}
		if r < s.limFirst*s.Opts.FreezeLimiterAt {
			s.limMode = limRecord
		}
	}
}

// stepExplicit advances one explicit two-stage (Heun) local-time step and
// returns the RMS density residual. Both stages, including the stage-2
// combine and residual reduction, run on the worker pool.
//
//cataero:hotpath
func (s *Solver) stepExplicit() float64 {
	s.updatePrimitives()
	s.timeSteps()
	copy(s.u0, s.U)
	// Stage 1.
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, s.swStage1)
	// Stage 2.
	s.updatePrimitives()
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, s.swStage2)
	return math.Sqrt(s.partialSum() / float64(s.ni*s.nj))
}

// partialSum folds the per-chunk partial sums the last reduction sweep left
// in s.partial (sized by chunkCount(ni); every chunk of an ni-sweep writes
// its ci slot).
func (s *Solver) partialSum() float64 {
	sum := 0.0
	for _, v := range s.partial {
		sum += v
	}
	return sum
}

// stage1Range applies the full forward-Euler stage-1 update for i-lines
// [lo, hi).
//
//cataero:hotpath
func (s *Solver) stage1Range(ci, lo, hi int) {
	met := s.met
	for i := lo; i < hi; i++ {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			dtv := s.dt[k] / met.Vol[k]
			for c := 0; c < 4; c++ {
				s.U[k][c] -= dtv * s.res[k][c]
			}
		}
	}
}

// stage2Range combines the Heun stages and accumulates the chunk's share of
// the squared density residual into s.partial.
//
//cataero:hotpath
func (s *Solver) stage2Range(ci, lo, hi int) {
	met := s.met
	nj := s.nj
	line := 0.0
	for i := lo; i < hi; i++ {
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			dtv := s.dt[k] / met.Vol[k]
			for c := 0; c < 4; c++ {
				s.U[k][c] = 0.5*s.u0[k][c] + 0.5*(s.U[k][c]-dtv*s.res[k][c])
			}
			r := s.res[k][0] / met.Vol[k]
			line += r * r
		}
	}
	s.partial[ci] = line
}

// Run iterates until the density residual falls by dropTol relative to its
// initial value or maxSteps is reached. Returns the final residual.
func (s *Solver) Run(maxSteps int, dropTol float64) (float64, error) {
	return s.RunCtx(context.Background(), maxSteps, dropTol)
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// few time steps and a cancellation aborts the march with ctx.Err() —
// after emitting a final checkpoint when checkpointing is configured, so a
// drained or deadlined solve resumes instead of restarting. A pending
// Options.Restore whose phase matches resumes the march at its saved step.
func (s *Solver) RunCtx(ctx context.Context, maxSteps int, dropTol float64) (float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	s.restoreForPhase()
	start, first := s.takeResume()
	ckpt := s.wantCheckpoints()
	res := 0.0
	for n := start; n < maxSteps; n++ {
		if n%16 == 0 {
			select {
			case <-ctx.Done():
				if ckpt && n > start {
					s.checkpointNow(n, first, 0)
				}
				return res, ctx.Err()
			default:
			}
		}
		res = s.Step()
		if s.Opts.Progress != nil {
			s.Opts.Progress(s.phase, n+1-start, maxSteps, res, s.diag(0))
		}
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: residual NaN at step %d", n)
		}
		if first < 0 && res > 0 {
			first = res
		}
		if first > 0 && res < first*dropTol {
			return res, nil
		}
		if ckpt && (n+1)%s.Opts.CheckpointEvery == 0 {
			s.checkpointNow(n+1, first, 0)
		}
	}
	return res, nil
}

// RunToCtx iterates until the RMS density residual falls below the absolute
// target or maxSteps is reached — the fine-stage entry point of a
// grid-sequenced solve, where the relative-drop criterion of RunCtx would
// be meaningless for an already-good initial state.
func (s *Solver) RunToCtx(ctx context.Context, maxSteps int, target float64) (float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	start, _ := s.takeResume()
	ckpt := s.wantCheckpoints()
	res := 0.0
	for n := start; n < maxSteps; n++ {
		if n%16 == 0 {
			select {
			case <-ctx.Done():
				if ckpt && n > start {
					s.checkpointNow(n, -1, target)
				}
				return res, ctx.Err()
			default:
			}
		}
		res = s.Step()
		if s.Opts.Progress != nil {
			s.Opts.Progress(s.phase, n+1-start, maxSteps, res, s.diag(0))
		}
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: residual NaN at step %d", n)
		}
		if res < target {
			return res, nil
		}
		if ckpt && (n+1)%s.Opts.CheckpointEvery == 0 {
			s.checkpointNow(n+1, -1, target)
		}
	}
	return res, nil
}

// Primitive returns the primitive state of cell (i, j). It is a pure read:
// the conserved state is decoded into a local, without touching the shared
// primitive cache (which step stages own).
func (s *Solver) Primitive(i, j int) Prim {
	return s.decode(s.U[s.idx(i, j)])
}

// Freestream returns the freestream primitive state.
func (s *Solver) Freestream() Prim { return s.pInf }

// ShockLocus returns, for each i-line, the (x, y) position where the
// pressure first exceeds threshold*pInf marching inward from the outer
// boundary, or the outer node when no shock is found on that line.
func (s *Solver) ShockLocus(threshold float64) (xs, ys []float64) {
	s.updatePrimitives()
	xs = make([]float64, s.ni)
	ys = make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		xs[i] = s.G.X[i][s.nj]
		ys[i] = s.G.Y[i][s.nj]
		for j := s.nj - 1; j >= 0; j-- {
			if s.prim[s.idx(i, j)].P > threshold*s.pInf.P {
				k := s.idx(i, j)
				xs[i], ys[i] = s.met.Cx[k], s.met.Cy[k]
				break
			}
		}
	}
	return xs, ys
}

// WallPressure returns p along the wall (cell row j=0).
func (s *Solver) WallPressure() []float64 {
	out := make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		out[i] = s.Primitive(i, 0).P
	}
	return out
}

// WallHeatFlux returns the wall heat flux (W/m^2) for viscous runs.
func (s *Solver) WallHeatFlux() []float64 {
	out := make([]float64, s.ni)
	if !s.Opts.Viscous {
		return out
	}
	for i := 0; i < s.ni; i++ {
		q := s.Primitive(i, 0)
		dn := s.met.WallHalf[i]
		kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
		out[i] = kth * (q.T - s.Opts.TWall) / dn
	}
	return out
}
