package fvm

import (
	"context"
	"fmt"
	"math"
)

// computeResidual assembles the flux balance of every cell into s.res
// (d(U V)/dt = -res). Boundary conditions are applied at the flux level.
func (s *Solver) computeResidual() {
	ni, nj := s.ni, s.nj
	for k := range s.res {
		s.res[k] = Cons{}
	}
	// I-direction faces: i = 0..ni, between cells (i-1,j) and (i,j).
	parallelFor(nj, func(j int) {
		for i := 0; i <= ni; i++ {
			sx, sy := s.G.FaceI(i, j)
			var L, R Prim
			switch {
			case i == 0:
				// Symmetry plane (stagnation line): mirror the first cell.
				in := s.prim[s.idx(0, j)]
				L = mirror(in, sx, sy)
				R = in
			case i == ni:
				// Outflow: zero-gradient ghost.
				in := s.prim[s.idx(ni-1, j)]
				L = in
				R = in
			default:
				m := s.prim[s.idx(i-1, j)]
				p := s.prim[s.idx(i, j)]
				if s.Opts.MUSCL {
					var mm, pp Prim
					hasMM, hasPP := i-2 >= 0, i+1 <= ni-1
					if hasMM {
						mm = s.prim[s.idx(i-2, j)]
					}
					if hasPP {
						pp = s.prim[s.idx(i+1, j)]
					}
					L, R = reconstruct(mm, m, p, pp, hasMM, hasPP)
				} else {
					L, R = m, p
				}
			}
			f := hlle(L, R, sx, sy)
			if i > 0 {
				k := s.idx(i-1, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] += f[c]
				}
			}
			if i < ni {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] -= f[c]
				}
			}
		}
	})
	// J-direction faces: j = 0..nj, between cells (i,j-1) and (i,j).
	parallelFor(ni, func(i int) {
		for j := 0; j <= nj; j++ {
			sx, sy := s.G.FaceJ(i, j)
			var f Cons
			switch {
			case j == 0:
				f = s.wallFlux(i, sx, sy)
			case j == nj:
				// Outer boundary: freestream ghost (supersonic inflow).
				in := s.prim[s.idx(i, nj-1)]
				f = hlle(in, s.pInf, sx, sy)
			default:
				m := s.prim[s.idx(i, j-1)]
				p := s.prim[s.idx(i, j)]
				var L, R Prim
				if s.Opts.MUSCL {
					var mm, pp Prim
					hasMM, hasPP := j-2 >= 0, j+1 <= nj-1
					if hasMM {
						mm = s.prim[s.idx(i, j-2)]
					}
					if hasPP {
						pp = s.prim[s.idx(i, j+1)]
					}
					L, R = reconstruct(mm, m, p, pp, hasMM, hasPP)
				} else {
					L, R = m, p
				}
				f = hlle(L, R, sx, sy)
				if s.Opts.Viscous {
					fv := s.viscousFluxJ(i, j, sx, sy)
					for c := 0; c < 4; c++ {
						f[c] += fv[c]
					}
				}
			}
			if j > 0 {
				k := s.idx(i, j-1)
				for c := 0; c < 4; c++ {
					s.res[k][c] += f[c]
				}
			}
			if j < nj {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] -= f[c]
				}
			}
		}
	})
	// Axisymmetric hoop-pressure source in the radial momentum equation.
	if s.G.Axisymmetric {
		parallelFor(ni, func(i int) {
			for j := 0; j < nj; j++ {
				k := s.idx(i, j)
				s.res[k][2] -= s.prim[k].P * s.G.CellArea(i, j)
			}
		})
	}
}

// mirror reflects a primitive state across a face with area vector (sx, sy).
func mirror(q Prim, sx, sy float64) Prim {
	area := math.Hypot(sx, sy)
	if area == 0 {
		return q
	}
	nx, ny := sx/area, sy/area
	un := q.U*nx + q.V*ny
	out := q
	out.U = q.U - 2*un*nx
	out.V = q.V - 2*un*ny
	return out
}

// wallFlux returns the j=0 wall flux for column i.
func (s *Solver) wallFlux(i int, sx, sy float64) Cons {
	q := s.prim[s.idx(i, 0)]
	area := math.Hypot(sx, sy)
	if area == 0 {
		return Cons{}
	}
	// Inviscid part: pressure only (tangency). Use the mirrored-state HLLE
	// for robustness at strong transients.
	g := mirror(q, sx, sy)
	f := hlle(g, q, sx, sy)
	if !s.Opts.Viscous || s.Opts.Wall != NoSlipIsothermal {
		return f
	}
	// Viscous no-slip isothermal wall: shear from the half-cell gradient and
	// conduction against the fixed wall temperature.
	dn := s.halfHeight(i)
	mu := s.Opts.Mu(0.5 * (q.T + s.Opts.TWall))
	kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
	f[1] -= mu * q.U / dn * area
	f[2] -= mu * q.V / dn * area
	f[3] -= kth * (q.T - s.Opts.TWall) / dn * area
	return f
}

// halfHeight returns the wall-normal half height of cell (i, 0).
func (s *Solver) halfHeight(i int) float64 {
	dx := s.G.X[i][1] - s.G.X[i][0]
	dy := s.G.Y[i][1] - s.G.Y[i][0]
	return 0.5 * math.Hypot(dx, dy)
}

// viscousFluxJ returns the thin-layer viscous flux through interior j-face
// (i, j) with area vector (sx, sy), pointing toward +j. Sign convention:
// returned flux is added to the +j-directed total flux.
func (s *Solver) viscousFluxJ(i, j int, sx, sy float64) Cons {
	m := s.prim[s.idx(i, j-1)]
	p := s.prim[s.idx(i, j)]
	area := math.Hypot(sx, sy)
	// Distance between cell centers.
	xm, ym := s.G.CellCenter(i, j-1)
	xp, yp := s.G.CellCenter(i, j)
	dn := math.Hypot(xp-xm, yp-ym)
	if dn == 0 {
		return Cons{}
	}
	Tf := 0.5 * (m.T + p.T)
	mu := s.Opts.Mu(Tf)
	kth := s.Opts.K(Tf)
	dudn := (p.U - m.U) / dn
	dvdn := (p.V - m.V) / dn
	dTdn := (p.T - m.T) / dn
	uf := 0.5 * (m.U + p.U)
	vf := 0.5 * (m.V + p.V)
	return Cons{
		0,
		-mu * dudn * area,
		-mu * dvdn * area,
		-(mu*(uf*dudn+vf*dvdn) + kth*dTdn) * area,
	}
}

// timeSteps fills the local time-step array.
func (s *Solver) timeSteps() {
	parallelFor(s.ni, func(i int) {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			q := s.prim[k]
			vol := s.G.CellVolume(i, j)
			// Spectral radius estimate over the four faces.
			lam := 0.0
			sMax := 0.0
			for _, face := range [][2]float64{
				faceVec(s.G.FaceI(i, j)), faceVec(s.G.FaceI(i+1, j)),
				faceVec(s.G.FaceJ(i, j)), faceVec(s.G.FaceJ(i, j+1)),
			} {
				mag := math.Hypot(face[0], face[1])
				un := math.Abs(q.U*face[0]+q.V*face[1]) + q.A*mag
				if un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if s.Opts.Viscous {
				// Diffusive spectral radius 2 mu S^2 / (rho V).
				lam += 2 * s.Opts.Mu(q.T) * sMax * sMax / (q.Rho * vol)
			}
			if lam <= 0 {
				lam = 1
			}
			s.dt[k] = s.Opts.CFL * vol / lam
		}
	})
}

func faceVec(sx, sy float64) [2]float64 { return [2]float64{sx, sy} }

// Step advances one explicit two-stage (Heun) local-time step and returns
// the RMS density residual.
func (s *Solver) Step() float64 {
	s.updatePrimitives()
	s.timeSteps()
	copy(s.u0, s.U)
	// Stage 1.
	s.computeResidual()
	s.applyUpdate(1.0)
	// Stage 2.
	s.updatePrimitives()
	s.computeResidual()
	rms := 0.0
	n := 0
	for i := 0; i < s.ni; i++ {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			vol := s.G.CellVolume(i, j)
			dtv := s.dt[k] / vol
			for c := 0; c < 4; c++ {
				s.U[k][c] = 0.5*s.u0[k][c] + 0.5*(s.U[k][c]-dtv*s.res[k][c])
			}
			r := s.res[k][0] / vol
			rms += r * r
			n++
		}
	}
	return math.Sqrt(rms / float64(n))
}

func (s *Solver) applyUpdate(frac float64) {
	parallelFor(s.ni, func(i int) {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			dtv := frac * s.dt[k] / s.G.CellVolume(i, j)
			for c := 0; c < 4; c++ {
				s.U[k][c] -= dtv * s.res[k][c]
			}
		}
	})
}

// Run iterates until the density residual falls by dropTol relative to its
// initial value or maxSteps is reached. Returns the final residual.
func (s *Solver) Run(maxSteps int, dropTol float64) (float64, error) {
	return s.RunCtx(context.Background(), maxSteps, dropTol)
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// few time steps and a cancellation aborts the march with ctx.Err().
func (s *Solver) RunCtx(ctx context.Context, maxSteps int, dropTol float64) (float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	first := -1.0
	res := 0.0
	for n := 0; n < maxSteps; n++ {
		if n%16 == 0 {
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			default:
			}
		}
		res = s.Step()
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: residual NaN at step %d", n)
		}
		if first < 0 && res > 0 {
			first = res
		}
		if first > 0 && res < first*dropTol {
			return res, nil
		}
	}
	return res, nil
}

// Primitive returns the converged primitive state of cell (i, j).
func (s *Solver) Primitive(i, j int) Prim {
	s.prim[s.idx(i, j)] = s.decode(s.U[s.idx(i, j)])
	return s.prim[s.idx(i, j)]
}

// Freestream returns the freestream primitive state.
func (s *Solver) Freestream() Prim { return s.pInf }

// ShockLocus returns, for each i-line, the (x, y) position where the
// pressure first exceeds threshold*pInf marching inward from the outer
// boundary, or the outer node when no shock is found on that line.
func (s *Solver) ShockLocus(threshold float64) (xs, ys []float64) {
	s.updatePrimitives()
	xs = make([]float64, s.ni)
	ys = make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		xs[i] = s.G.X[i][s.nj]
		ys[i] = s.G.Y[i][s.nj]
		for j := s.nj - 1; j >= 0; j-- {
			if s.prim[s.idx(i, j)].P > threshold*s.pInf.P {
				xc, yc := s.G.CellCenter(i, j)
				xs[i], ys[i] = xc, yc
				break
			}
		}
	}
	return xs, ys
}

// WallPressure returns p along the wall (cell row j=0).
func (s *Solver) WallPressure() []float64 {
	s.updatePrimitives()
	out := make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		out[i] = s.prim[s.idx(i, 0)].P
	}
	return out
}

// WallHeatFlux returns the wall heat flux (W/m^2) for viscous runs.
func (s *Solver) WallHeatFlux() []float64 {
	s.updatePrimitives()
	out := make([]float64, s.ni)
	if !s.Opts.Viscous {
		return out
	}
	for i := 0; i < s.ni; i++ {
		q := s.prim[s.idx(i, 0)]
		dn := s.halfHeight(i)
		kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
		out[i] = kth * (q.T - s.Opts.TWall) / dn
	}
	return out
}
