package fvm

import (
	"context"
	"fmt"
	"math"
)

// computeResidual assembles the flux balance of every cell into s.res
// (d(U V)/dt = -res). Boundary conditions are applied at the flux level.
// All geometry comes from the precomputed metric arrays. The sweeps run on
// prebuilt range closures so the per-step cost is allocation-free.
func (s *Solver) computeResidual() {
	for k := range s.res {
		s.res[k] = Cons{}
	}
	// I-direction faces: i = 0..ni, between cells (i-1,j) and (i,j).
	s.pool.sweep(s.nj, &s.sweepWG, s.swResI)
	// J-direction faces: j = 0..nj, between cells (i,j-1) and (i,j).
	s.pool.sweep(s.ni, &s.sweepWG, s.swResJ)
	// Axisymmetric hoop-pressure source in the radial momentum equation.
	if s.G.Axisymmetric {
		s.pool.sweep(s.ni, &s.sweepWG, s.swAxi)
	}
	// FAS defect correction: a coarse multigrid level relaxes the forced
	// system R(U) - forcing = 0 (see multigrid.go). Coarse grids are small,
	// so the subtraction is not worth a pool sweep.
	if s.forcing != nil {
		for k := range s.res {
			for c := 0; c < 4; c++ {
				s.res[k][c] -= s.forcing[k][c]
			}
		}
	}
}

// resIRange accumulates the I-direction face fluxes for j-rows [lo, hi).
//
//cataero:hotpath
func (s *Solver) resIRange(ci, lo, hi int) {
	ni, nj := s.ni, s.nj
	met := s.met
	for j := lo; j < hi; j++ {
		for i := 0; i <= ni; i++ {
			fk := 3 * (i*nj + j)
			nx, ny, area := met.FaceIN[fk], met.FaceIN[fk+1], met.FaceIN[fk+2]
			if area == 0 {
				continue
			}
			var L, R Prim
			switch {
			case i == 0:
				// Symmetry plane (stagnation line): mirror the first cell.
				in := s.prim[s.idx(0, j)]
				L = mirror(in, nx, ny)
				R = in
			case i == ni:
				// Outflow: zero-gradient ghost.
				in := s.prim[s.idx(ni-1, j)]
				L = in
				R = in
			default:
				m := s.prim[s.idx(i-1, j)]
				p := s.prim[s.idx(i, j)]
				if s.Opts.MUSCL {
					var mm, pp Prim
					hasMM, hasPP := i-2 >= 0, i+1 <= ni-1
					if hasMM {
						mm = s.prim[s.idx(i-2, j)]
					}
					if hasPP {
						pp = s.prim[s.idx(i+1, j)]
					}
					L, R = reconstruct(s.lim, mm, m, p, pp, hasMM, hasPP)
				} else {
					L, R = m, p
				}
			}
			f := s.flux.Flux(L, R, nx, ny, area)
			if i > 0 {
				k := s.idx(i-1, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] += f[c]
				}
			}
			if i < ni {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] -= f[c]
				}
			}
		}
	}
}

// resJRange accumulates the J-direction face fluxes for i-lines [lo, hi).
//
//cataero:hotpath
func (s *Solver) resJRange(ci, lo, hi int) {
	nj := s.nj
	met := s.met
	for i := lo; i < hi; i++ {
		for j := 0; j <= nj; j++ {
			fk := 3 * (i*(nj+1) + j)
			nx, ny, area := met.FaceJN[fk], met.FaceJN[fk+1], met.FaceJN[fk+2]
			if area == 0 {
				continue
			}
			var f Cons
			switch {
			case j == 0:
				f = s.wallFlux(i, nx, ny, area)
			case j == nj:
				// Outer boundary: freestream ghost (supersonic inflow).
				in := s.prim[s.idx(i, nj-1)]
				f = s.flux.Flux(in, s.pInf, nx, ny, area)
			default:
				m := s.prim[s.idx(i, j-1)]
				p := s.prim[s.idx(i, j)]
				var L, R Prim
				if s.Opts.MUSCL {
					var mm, pp Prim
					hasMM, hasPP := j-2 >= 0, j+1 <= nj-1
					if hasMM {
						mm = s.prim[s.idx(i, j-2)]
					}
					if hasPP {
						pp = s.prim[s.idx(i, j+1)]
					}
					L, R = reconstruct(s.lim, mm, m, p, pp, hasMM, hasPP)
				} else {
					L, R = m, p
				}
				f = s.flux.Flux(L, R, nx, ny, area)
				if s.Opts.Viscous {
					fv := s.viscousFluxJ(i, j, area)
					for c := 0; c < 4; c++ {
						f[c] += fv[c]
					}
				}
			}
			if j > 0 {
				k := s.idx(i, j-1)
				for c := 0; c < 4; c++ {
					s.res[k][c] += f[c]
				}
			}
			if j < nj {
				k := s.idx(i, j)
				for c := 0; c < 4; c++ {
					s.res[k][c] -= f[c]
				}
			}
		}
	}
}

// axiRange applies the axisymmetric hoop-pressure source for i-lines
// [lo, hi).
//
//cataero:hotpath
func (s *Solver) axiRange(ci, lo, hi int) {
	met := s.met
	for i := lo; i < hi; i++ {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			s.res[k][2] -= s.prim[k].P * met.Area[k]
		}
	}
}

// mirror reflects a primitive state across a face with unit normal (nx, ny).
func mirror(q Prim, nx, ny float64) Prim {
	un := q.U*nx + q.V*ny
	out := q
	out.U = q.U - 2*un*nx
	out.V = q.V - 2*un*ny
	return out
}

// wallFlux returns the j=0 wall flux for column i through a face with unit
// normal (nx, ny) and the given area.
func (s *Solver) wallFlux(i int, nx, ny, area float64) Cons {
	q := s.prim[s.idx(i, 0)]
	// Inviscid part: pressure only (tangency). Use the mirrored-state upwind
	// flux for robustness at strong transients.
	g := mirror(q, nx, ny)
	f := s.flux.Flux(g, q, nx, ny, area)
	if !s.Opts.Viscous || s.Opts.Wall != NoSlipIsothermal {
		return f
	}
	// Viscous no-slip isothermal wall: shear from the half-cell gradient and
	// conduction against the fixed wall temperature.
	dn := s.met.WallHalf[i]
	mu := s.Opts.Mu(0.5 * (q.T + s.Opts.TWall))
	kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
	f[1] -= mu * q.U / dn * area
	f[2] -= mu * q.V / dn * area
	f[3] -= kth * (q.T - s.Opts.TWall) / dn * area
	return f
}

// viscousFluxJ returns the thin-layer viscous flux through interior j-face
// (i, j) of the given area, pointing toward +j. Sign convention: returned
// flux is added to the +j-directed total flux.
func (s *Solver) viscousFluxJ(i, j int, area float64) Cons {
	m := s.prim[s.idx(i, j-1)]
	p := s.prim[s.idx(i, j)]
	// Cached distance between the straddling cell centers.
	dn := s.met.JDist[i*(s.nj+1)+j]
	if dn == 0 {
		return Cons{}
	}
	Tf := 0.5 * (m.T + p.T)
	mu := s.Opts.Mu(Tf)
	kth := s.Opts.K(Tf)
	dudn := (p.U - m.U) / dn
	dvdn := (p.V - m.V) / dn
	dTdn := (p.T - m.T) / dn
	uf := 0.5 * (m.U + p.U)
	vf := 0.5 * (m.V + p.V)
	return Cons{
		0,
		-mu * dudn * area,
		-mu * dvdn * area,
		-(mu*(uf*dudn+vf*dvdn) + kth*dTdn) * area,
	}
}

// timeSteps fills the local time-step array from the cached metrics, at the
// solver's current CFL number (s.cfl: Opts.CFL for the explicit integrator,
// the ramped value for the implicit one).
func (s *Solver) timeSteps() {
	s.pool.sweep(s.ni, &s.sweepWG, s.swDT)
}

// dtRange fills the local time steps for i-lines [lo, hi).
//
//cataero:hotpath
func (s *Solver) dtRange(ci, lo, hi int) {
	met := s.met
	nj := s.nj
	for i := lo; i < hi; i++ {
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			q := s.prim[k]
			vol := met.Vol[k]
			// Spectral radius estimate over the four faces, from the cached
			// unit normals and areas.
			lam := 0.0
			sMax := 0.0
			fw := 3 * (i*nj + j)
			fe := 3 * ((i+1)*nj + j)
			fs := 3 * (i*(nj+1) + j)
			fn := 3 * (i*(nj+1) + j + 1)
			for _, face := range [4][3]float64{
				{met.FaceIN[fw], met.FaceIN[fw+1], met.FaceIN[fw+2]},
				{met.FaceIN[fe], met.FaceIN[fe+1], met.FaceIN[fe+2]},
				{met.FaceJN[fs], met.FaceJN[fs+1], met.FaceJN[fs+2]},
				{met.FaceJN[fn], met.FaceJN[fn+1], met.FaceJN[fn+2]},
			} {
				mag := face[2]
				un := (math.Abs(q.U*face[0]+q.V*face[1]) + q.A) * mag
				if un > lam {
					lam = un
				}
				if mag > sMax {
					sMax = mag
				}
			}
			if s.Opts.Viscous {
				// Diffusive spectral radius 2 mu S^2 / (rho V).
				lam += 2 * s.Opts.Mu(q.T) * sMax * sMax / (q.Rho * vol)
			}
			if lam <= 0 {
				lam = 1
			}
			s.dt[k] = s.cfl * vol / lam
		}
	}
}

// Step advances one time step of the configured integrator
// (Options.TimeStepping) and returns the RMS density residual.
func (s *Solver) Step() float64 {
	return s.stepper.Step()
}

// stepExplicit advances one explicit two-stage (Heun) local-time step and
// returns the RMS density residual. Both stages, including the stage-2
// combine and residual reduction, run on the worker pool.
//
//cataero:hotpath
func (s *Solver) stepExplicit() float64 {
	s.updatePrimitives()
	s.timeSteps()
	copy(s.u0, s.U)
	// Stage 1.
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, s.swStage1)
	// Stage 2.
	s.updatePrimitives()
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, s.swStage2)
	return math.Sqrt(s.partialSum() / float64(s.ni*s.nj))
}

// partialSum folds the per-chunk partial sums the last reduction sweep left
// in s.partial (sized by chunkCount(ni); every chunk of an ni-sweep writes
// its ci slot).
func (s *Solver) partialSum() float64 {
	sum := 0.0
	for _, v := range s.partial {
		sum += v
	}
	return sum
}

// stage1Range applies the full forward-Euler stage-1 update for i-lines
// [lo, hi).
//
//cataero:hotpath
func (s *Solver) stage1Range(ci, lo, hi int) {
	met := s.met
	for i := lo; i < hi; i++ {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			dtv := s.dt[k] / met.Vol[k]
			for c := 0; c < 4; c++ {
				s.U[k][c] -= dtv * s.res[k][c]
			}
		}
	}
}

// stage2Range combines the Heun stages and accumulates the chunk's share of
// the squared density residual into s.partial.
//
//cataero:hotpath
func (s *Solver) stage2Range(ci, lo, hi int) {
	met := s.met
	nj := s.nj
	line := 0.0
	for i := lo; i < hi; i++ {
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			dtv := s.dt[k] / met.Vol[k]
			for c := 0; c < 4; c++ {
				s.U[k][c] = 0.5*s.u0[k][c] + 0.5*(s.U[k][c]-dtv*s.res[k][c])
			}
			r := s.res[k][0] / met.Vol[k]
			line += r * r
		}
	}
	s.partial[ci] = line
}

// Run iterates until the density residual falls by dropTol relative to its
// initial value or maxSteps is reached. Returns the final residual.
func (s *Solver) Run(maxSteps int, dropTol float64) (float64, error) {
	return s.RunCtx(context.Background(), maxSteps, dropTol)
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// few time steps and a cancellation aborts the march with ctx.Err().
func (s *Solver) RunCtx(ctx context.Context, maxSteps int, dropTol float64) (float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	first := -1.0
	res := 0.0
	for n := 0; n < maxSteps; n++ {
		if n%16 == 0 {
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			default:
			}
		}
		res = s.Step()
		if s.Opts.Progress != nil {
			s.Opts.Progress(s.phase, n+1, maxSteps, res)
		}
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: residual NaN at step %d", n)
		}
		if first < 0 && res > 0 {
			first = res
		}
		if first > 0 && res < first*dropTol {
			return res, nil
		}
	}
	return res, nil
}

// RunToCtx iterates until the RMS density residual falls below the absolute
// target or maxSteps is reached — the fine-stage entry point of a
// grid-sequenced solve, where the relative-drop criterion of RunCtx would
// be meaningless for an already-good initial state.
func (s *Solver) RunToCtx(ctx context.Context, maxSteps int, target float64) (float64, error) {
	if maxSteps <= 0 {
		maxSteps = 2000
	}
	res := 0.0
	for n := 0; n < maxSteps; n++ {
		if n%16 == 0 {
			select {
			case <-ctx.Done():
				return res, ctx.Err()
			default:
			}
		}
		res = s.Step()
		if s.Opts.Progress != nil {
			s.Opts.Progress(s.phase, n+1, maxSteps, res)
		}
		if math.IsNaN(res) {
			return res, fmt.Errorf("fvm: residual NaN at step %d", n)
		}
		if res < target {
			return res, nil
		}
	}
	return res, nil
}

// Primitive returns the primitive state of cell (i, j). It is a pure read:
// the conserved state is decoded into a local, without touching the shared
// primitive cache (which step stages own).
func (s *Solver) Primitive(i, j int) Prim {
	return s.decode(s.U[s.idx(i, j)])
}

// Freestream returns the freestream primitive state.
func (s *Solver) Freestream() Prim { return s.pInf }

// ShockLocus returns, for each i-line, the (x, y) position where the
// pressure first exceeds threshold*pInf marching inward from the outer
// boundary, or the outer node when no shock is found on that line.
func (s *Solver) ShockLocus(threshold float64) (xs, ys []float64) {
	s.updatePrimitives()
	xs = make([]float64, s.ni)
	ys = make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		xs[i] = s.G.X[i][s.nj]
		ys[i] = s.G.Y[i][s.nj]
		for j := s.nj - 1; j >= 0; j-- {
			if s.prim[s.idx(i, j)].P > threshold*s.pInf.P {
				k := s.idx(i, j)
				xs[i], ys[i] = s.met.Cx[k], s.met.Cy[k]
				break
			}
		}
	}
	return xs, ys
}

// WallPressure returns p along the wall (cell row j=0).
func (s *Solver) WallPressure() []float64 {
	out := make([]float64, s.ni)
	for i := 0; i < s.ni; i++ {
		out[i] = s.Primitive(i, 0).P
	}
	return out
}

// WallHeatFlux returns the wall heat flux (W/m^2) for viscous runs.
func (s *Solver) WallHeatFlux() []float64 {
	out := make([]float64, s.ni)
	if !s.Opts.Viscous {
		return out
	}
	for i := 0; i < s.ni; i++ {
		q := s.Primitive(i, 0)
		dn := s.met.WallHalf[i]
		kth := s.Opts.K(0.5 * (q.T + s.Opts.TWall))
		out[i] = kth * (q.T - s.Opts.TWall) / dn
	}
	return out
}
