package fvm

import (
	"context"
	"math"
	"testing"

	"cataero/internal/gas"
)

func TestImplicitSweepRegistry(t *testing.T) {
	names := ImplicitSweeps()
	want := map[string]bool{ImplicitSweepJLine: false, ImplicitSweepADI: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("sweep %q not enumerated (have %v)", n, names)
		}
	}
	if DefaultImplicitSweep != ImplicitSweepJLine {
		t.Errorf("default sweep %q, want %q", DefaultImplicitSweep, ImplicitSweepJLine)
	}
	// An unknown sweep fails at construction, and only the implicit
	// integrator consults the knob at all.
	g, o, err := ReferenceViscousCase(8, 12, TimeSteppingImplicit)
	if err != nil {
		t.Fatal(err)
	}
	o.ImplicitSweep = "diagonal"
	if _, err := New(g, o); err == nil {
		t.Error("New accepted an unknown ImplicitSweep")
	}
	for _, sweep := range []string{"", ImplicitSweepJLine, ImplicitSweepADI} {
		g, o, err := ReferenceViscousCase(8, 12, TimeSteppingImplicit)
		if err != nil {
			t.Fatal(err)
		}
		o.ImplicitSweep = sweep
		s, err := New(g, o)
		if err != nil {
			t.Fatalf("sweep %q rejected: %v", sweep, err)
		}
		s.Close()
	}
}

// TestStreamwiseBoundaryLinearizationFD verifies the two boundary
// linearizations the streamwise (i-line) pass folds into its end blocks
// against central finite differences:
//
//   - outflow (i = ni): the zero-gradient ghost makes the exit flux
//     Flux(q, q) = S·F(q), whose derivative is exactly the full Jacobian
//     S·A(q) — the kernel's upwind dissipation cancels at L == R;
//   - symmetry mirror (i = 0): the central half of the mirrored-ghost flux
//     ½(F(mirror(q)) + F(q)) linearizes to ½(A(mirror(q))·M + A(q)), with
//     M the conserved-variable reflection (mirrorCols).
func TestStreamwiseBoundaryLinearizationFD(t *testing.T) {
	g := gas.NewIdealAir()
	nx, ny := 0.92, -0.392 // a representative unit exit normal
	const area = 1.7
	k, err := FluxKernelFor(DefaultFlux)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range jacStates() {
		u0 := consOf(q)
		fluxScale := q.Rho * (q.A + math.Hypot(q.U, q.V))

		// Outflow: FD of q -> Flux(q, q) against the full jacN.
		var jac [16]float64
		jacN(jac[:], q, nx, ny, area)
		for col := 0; col < 4; col++ {
			h := 1e-6 * (math.Abs(u0[col]) + 1e-6*fluxScale)
			up, um := u0, u0
			up[col] += h
			um[col] -= h
			qp, qm := idealDecode(g, up), idealDecode(g, um)
			fp := k.Flux(qp, qp, nx, ny, area)
			fm := k.Flux(qm, qm, nx, ny, area)
			for row := 0; row < 4; row++ {
				fd := (fp[row] - fm[row]) / (2 * h)
				an := jac[row*4+col]
				scale := area * (math.Abs(q.U) + math.Abs(q.V) + q.A) * rowScale(q, row) / colScale(q, col)
				if math.Abs(fd-an) > 2e-3*scale {
					t.Errorf("outflow state u=%g v=%g: dF[%d]/dU[%d] = %g, linearization %g",
						q.U, q.V, row, col, fd, an)
				}
			}
		}

		// Mirror: FD of q -> ½(F(mirror(q)) + F(q)) against
		// ½(A(mirror(q))·M + A(q)).
		var jm, jp [16]float64
		jacN(jm[:], mirror(q, nx, ny), nx, ny, area)
		mirrorCols(jm[:], nx, ny)
		jacN(jp[:], q, nx, ny, area)
		for col := 0; col < 4; col++ {
			h := 1e-6 * (math.Abs(u0[col]) + 1e-6*fluxScale)
			up, um := u0, u0
			up[col] += h
			um[col] -= h
			qp, qm := idealDecode(g, up), idealDecode(g, um)
			for row := 0; row < 4; row++ {
				fpv := 0.5 * area * (physFlux(mirror(qp, nx, ny), nx, ny)[row] + physFlux(qp, nx, ny)[row])
				fmv := 0.5 * area * (physFlux(mirror(qm, nx, ny), nx, ny)[row] + physFlux(qm, nx, ny)[row])
				fd := (fpv - fmv) / (2 * h)
				an := 0.5 * (jm[row*4+col] + jp[row*4+col])
				scale := area * (math.Abs(q.U) + math.Abs(q.V) + q.A) * rowScale(q, row) / colScale(q, col)
				if math.Abs(fd-an) > 2e-3*scale {
					t.Errorf("mirror state u=%g v=%g: dF[%d]/dU[%d] = %g, linearization %g",
						q.U, q.V, row, col, fd, an)
				}
			}
		}
	}
}

// adiCase builds the reference viscous solver with the given implicit sweep.
func adiCase(t testing.TB, sweep string) *Solver {
	t.Helper()
	g, o, err := ReferenceViscousCase(20, 32, TimeSteppingImplicit)
	if err != nil {
		t.Fatal(err)
	}
	o.ImplicitSweep = sweep
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestADIJlineEquivalence converges the reference viscous case to the same
// absolute residual under both sweep schedules and requires the converged
// states to agree: the sweeps share one discrete steady problem, so the
// wall pressures and the shock standoff must match within the
// leftover-transient tolerance.
func TestADIJlineEquivalence(t *testing.T) {
	ref := adiCase(t, ImplicitSweepJLine)
	r0 := ref.Step()
	ref.Close()
	if math.IsNaN(r0) || r0 <= 0 {
		t.Fatalf("calibration residual %g", r0)
	}
	target := r0 * 5e-4

	ctx := context.Background()
	sj := adiCase(t, ImplicitSweepJLine)
	defer sj.Close()
	if res, err := sj.RunToCtx(ctx, 8000, target); err != nil || res > target {
		t.Fatalf("jline: res=%g err=%v", res, err)
	}
	sa := adiCase(t, ImplicitSweepADI)
	defer sa.Close()
	if res, err := sa.RunToCtx(ctx, 8000, target); err != nil || res > target {
		t.Fatalf("adi: res=%g err=%v", res, err)
	}

	pj := sj.WallPressure()
	pa := sa.WallPressure()
	for i := range pj {
		if rel := math.Abs(pj[i]-pa[i]) / pj[i]; rel > 0.02 {
			t.Errorf("wall pressure station %d: jline %g, adi %g (rel %.3f)", i, pj[i], pa[i], rel)
		}
	}
	xj, yj := sj.ShockLocus(2.5)
	xa, ya := sa.ShockLocus(2.5)
	dj := math.Hypot(xj[0]-sj.G.X[0][0], yj[0]-sj.G.Y[0][0])
	da := math.Hypot(xa[0]-sa.G.X[0][0], ya[0]-sa.G.Y[0][0])
	if rel := math.Abs(dj-da) / dj; rel > 0.05 {
		t.Errorf("standoff: jline %g, adi %g", dj, da)
	}
}

// TestADIStepCountAdvantageSlender runs the high-aspect-ratio slender case
// under both sweeps: streamwise coupling limits the relaxation there, so
// wall-normal-only stalls its CFL ramp while the alternating-direction
// schedule converges in a fraction of the steps — the case the ADI sweep
// exists for.
func TestADIStepCountAdvantageSlender(t *testing.T) {
	run := func(sweep string) int {
		g, o, err := ReferenceSlenderCase(64, 12, sweep)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { steps = step }
		s, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(2000, 5e-4); err != nil {
			t.Fatalf("%s: %v", sweep, err)
		}
		return steps
	}
	jline := run(ImplicitSweepJLine)
	adi := run(ImplicitSweepADI)
	t.Logf("slender 64x12: jline %d steps, adi %d steps", jline, adi)
	if 2*adi >= jline {
		t.Errorf("adi took %d steps on the slender case, want < jline/2 = %d", adi, jline/2)
	}
}

// TestADIStepZeroAlloc verifies the alternating-direction step allocates
// nothing per op: the i-line pencils, block planes and workspaces are all
// hoisted to construction, exactly like the j-line pass.
func TestADIStepZeroAlloc(t *testing.T) {
	s := adiCase(t, ImplicitSweepADI)
	defer s.Close()
	s.Step() // warm up lazy growth inside gas tables etc.
	allocs := testing.AllocsPerRun(10, func() {
		if r := s.Step(); math.IsNaN(r) {
			t.Fatal("NaN residual")
		}
	})
	if allocs > 0.5 {
		t.Errorf("adi Step: %.1f allocs/op, want 0", allocs)
	}
}
