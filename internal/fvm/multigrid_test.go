package fvm

import (
	"context"
	"math"
	"strings"
	"testing"
)

// A multilevel cascade must land on the same physics as a fine-grid-only
// solve, at every depth and with the V-cycle schedule.
func TestSolveMultilevelMatchesFine(t *testing.T) {
	g, o := seqCase(t)
	fine, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer fine.Close()
	if _, err := fine.Run(4000, 1e-3); err != nil {
		t.Fatal(err)
	}
	qf := fine.Primitive(0, 0)
	xf, _ := fine.ShockLocus(2)
	for _, sq := range []SequenceOptions{
		{Levels: 3},
		{Levels: 3, Cycle: "v"},
		{Levels: 2, Cycle: "cascade"},
	} {
		ml, res, err := SolveMultilevel(context.Background(), g, o, 4000, 1e-3, sq)
		if err != nil {
			t.Fatalf("levels=%d cycle=%q: %v", sq.Levels, sq.Cycle, err)
		}
		if math.IsNaN(res) || res <= 0 {
			t.Fatalf("levels=%d cycle=%q: residual %g", sq.Levels, sq.Cycle, res)
		}
		qs := ml.Primitive(0, 0)
		if math.Abs(qs.P-qf.P)/qf.P > 0.05 {
			t.Errorf("levels=%d cycle=%q: stagnation pressure %g vs fine %g", sq.Levels, sq.Cycle, qs.P, qf.P)
		}
		xs, _ := ml.ShockLocus(2)
		if math.Abs(xs[0]-xf[0]) > 0.06 {
			t.Errorf("levels=%d cycle=%q: standoff %g vs fine %g", sq.Levels, sq.Cycle, -xs[0], -xf[0])
		}
		ml.Close()
	}
}

// The multilevel driver reports per-level phases level0 (finest) .. levelN,
// and unreachable levels are dropped instead of failing the solve: a 16x24
// grid halves to 8x12 and 4x6 but no further, so Levels=5 runs 3 levels.
func TestSolveMultilevelPhasesAndAutoDrop(t *testing.T) {
	g, o := seqCase(t)
	phases := map[string]bool{}
	o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { phases[phase] = true }
	s, _, err := SolveMultilevel(context.Background(), g, o, 4000, 1e-3, SequenceOptions{Levels: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, want := range []string{"level0", "level1", "level2"} {
		if !phases[want] {
			t.Errorf("phase %q never reported (got %v)", want, phases)
		}
	}
	if phases["level3"] || phases["level4"] {
		t.Errorf("unreachable level phases reported: %v", phases)
	}
}

// SolveSequenced with multilevel knobs routes through the multilevel driver;
// with the legacy options it must keep the two-level "coarse"/"fine" phases
// unchanged.
func TestSolveSequencedDispatch(t *testing.T) {
	g, o := seqCase(t)
	phases := map[string]bool{}
	o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { phases[phase] = true }
	s, _, err := SolveSequenced(context.Background(), g, o, 4000, 1e-3, SequenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !phases["coarse"] || !phases["fine"] || phases["level0"] {
		t.Errorf("legacy sequenced phases %v, want coarse+fine only", phases)
	}
	phases = map[string]bool{}
	s, _, err = SolveSequenced(context.Background(), g, o, 4000, 1e-3, SequenceOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !phases["level0"] || !phases["level2"] || phases["coarse"] {
		t.Errorf("multilevel phases %v, want level0..level2", phases)
	}
}

// Unknown cycles and negative knobs fail fast with descriptive errors.
func TestSolveMultilevelValidation(t *testing.T) {
	g, o := seqCase(t)
	if _, _, err := SolveMultilevel(context.Background(), g, o, 100, 1e-3,
		SequenceOptions{Cycle: "w"}); err == nil || !strings.Contains(err.Error(), "cascade") {
		t.Errorf("unknown cycle error %v, want the valid list", err)
	}
	if _, _, err := SolveMultilevel(context.Background(), g, o, 100, 1e-3,
		SequenceOptions{Levels: -1, Cycle: "v"}); err == nil {
		t.Error("negative Levels accepted")
	}
	if _, _, err := SolveMultilevel(context.Background(), g, o, 100, 1e-3,
		SequenceOptions{SmoothSteps: -2, Cycle: "v"}); err == nil {
		t.Error("negative SmoothSteps accepted")
	}
	if _, _, err := SolveMultilevel(context.Background(), g, o, 100, 1e-3,
		SequenceOptions{RefitEvery: -5}); err == nil {
		t.Error("negative RefitEvery accepted")
	}
}

// Conservative restriction: the volume-weighted average over the index
// partition preserves the total conserved content — computed with the
// agglomerated partition volumes — to roundoff, for an arbitrary
// manufactured field.
func TestRestrictStateConservation(t *testing.T) {
	g, o := seqCase(t)
	fine, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer fine.Close()
	cg, err := g.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := New(cg, o)
	if err != nil {
		t.Fatal(err)
	}
	defer coarse.Close()
	// Manufactured field: smooth but thoroughly non-uniform.
	for i := 0; i < fine.ni; i++ {
		for j := 0; j < fine.nj; j++ {
			k := fine.idx(i, j)
			x := float64(i) / float64(fine.ni)
			y := float64(j) / float64(fine.nj)
			fine.U[k] = Cons{
				1 + 0.5*math.Sin(7*x)*math.Cos(3*y),
				200 * (x - 0.5) * y,
				-150 * y * (1 - x),
				2e5 * (1 + 0.3*x*y),
			}
		}
	}
	restrictState(fine, coarse)
	// Fine totals, and coarse totals over the agglomerated partition
	// volumes.
	var fineTot, coarseTot Cons
	aggVol := make([]float64, coarse.ni*coarse.nj)
	for i := 0; i < fine.ni; i++ {
		ic := i * coarse.ni / fine.ni
		for j := 0; j < fine.nj; j++ {
			jc := j * coarse.nj / fine.nj
			k := fine.idx(i, j)
			v := fine.met.Vol[k]
			aggVol[coarse.idx(ic, jc)] += v
			for c := 0; c < 4; c++ {
				fineTot[c] += v * fine.U[k][c]
			}
		}
	}
	for k := range aggVol {
		for c := 0; c < 4; c++ {
			coarseTot[c] += aggVol[k] * coarse.U[k][c]
		}
	}
	for c := 0; c < 4; c++ {
		if rel := math.Abs(coarseTot[c]-fineTot[c]) / math.Max(math.Abs(fineTot[c]), 1e-300); rel > 1e-12 {
			t.Errorf("component %d: restricted total %g vs fine %g (rel %g)", c, coarseTot[c], fineTot[c], rel)
		}
	}
}

// Mid-march refit transfer: a march that re-fits the grid onto the shock
// locus and transfers the solution must land on the same wall pressures a
// freestream-started solve on the final (refitted) grid reaches — within 1%
// on the M6 hemisphere case. A single-worker pool keeps the comparison
// deterministic.
func TestRefitTransferWallPressure(t *testing.T) {
	g, o := seqCase(t)
	pool := NewPool(1)
	defer pool.Close()
	o.Pool = pool
	o.TimeStepping = "implicit"
	ml, _, err := SolveMultilevel(context.Background(), g, o, 4000, 3e-4,
		SequenceOptions{Levels: 2, RefitEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	if ml.G == g {
		t.Fatal("mid-march refit never replaced the grid")
	}
	if d, d0 := ml.G.WallDistance(0), g.WallDistance(0); d >= d0 {
		t.Errorf("refit outer boundary %g not inside original %g", d, d0)
	}
	// From-scratch reference on the refit-final grid.
	ref, err := New(ml.G, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(4000, 3e-4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ml.ni; i++ {
		a := ref.Primitive(i, 0).P
		b := ml.Primitive(i, 0).P
		if d := math.Abs(b-a) / a; d > 0.01 {
			t.Errorf("wall pressure station %d: refit-transfer %g vs from-scratch %g (%.2f%%)", i, b, a, 100*d)
		}
	}
}

// RefitTo transfers an already-converged field onto a re-fitted grid without
// disturbing the wall row: the clustered wall cells are far inside the old
// profile span, so the interpolated transfer reproduces them nearly exactly.
func TestRefitToTransfersWallRow(t *testing.T) {
	g, o := seqCase(t)
	s, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(4000, 1e-3); err != nil {
		t.Fatal(err)
	}
	wall := s.WallPressure()
	ng, err := refitToShock(s, s.G, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RefitTo(ng); err != nil {
		t.Fatal(err)
	}
	if s.G != ng {
		t.Fatal("RefitTo did not swap the grid")
	}
	for i, p0 := range wall {
		if p := s.Primitive(i, 0).P; math.Abs(p-p0)/p0 > 0.02 {
			t.Errorf("wall pressure station %d moved %g -> %g across the transfer", i, p0, p)
		}
	}
	// Mismatched cell counts are rejected.
	cg, err := s.G.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RefitTo(cg); err == nil {
		t.Error("RefitTo accepted a grid with different cell counts")
	}
}

// A V-cycle solve that exhausts its fine-step budget must report the last
// measured residual, not converge-by-sentinel: with a budget too small to
// converge, the returned residual stays well above the drop target.
func TestVCycleBudgetExhaustionNotConverged(t *testing.T) {
	g, o := seqCase(t)
	s, res, err := SolveMultilevel(context.Background(), g, o, 30, 1e-9,
		SequenceOptions{Levels: 3, Cycle: "v"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if res <= 0 || math.IsInf(res, 1) || math.IsNaN(res) {
		t.Fatalf("budget-exhausted residual %g, want a real (unconverged) value", res)
	}
}
