package fvm

// Exported registry name constants. Code outside this package must use
// these instead of bare string literals when naming a flux kernel, time
// integrator, limiter, multilevel cycle or implicit sweep — the catlint
// registry analyzer enforces it, so a renamed registry entry fails the
// build-time lint instead of a runtime lookup.
const (
	// Flux kernels (Options.Flux, CaseSpec "flux").
	FluxHLLE       = "hlle"
	FluxHLLEEF     = "hlle-ef"
	FluxHLLC       = "hllc"
	FluxAUSMPlus   = "ausm+"
	FluxAUSMPlusUp = "ausm+up"

	// Time integrators (Options.TimeStepping, CaseSpec "time_stepping").
	TimeSteppingExplicit = "explicit"
	TimeSteppingImplicit = "implicit"

	// Slope limiters (Options.Limiter, CaseSpec "limiter").
	LimiterMinmod    = "minmod"
	LimiterVanAlbada = "vanalbada"

	// Multilevel cycles (SequenceOptions.Cycle, CaseSpec "cycle").
	CycleCascade = "cascade"
	CycleV       = "v"

	// Implicit sweep schedules (Options.ImplicitSweep, CaseSpec
	// "implicit_sweep").
	ImplicitSweepJLine = "jline"
	ImplicitSweepADI   = "adi"
)
