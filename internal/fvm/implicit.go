package fvm

import (
	"fmt"
	"math"

	"cataero/internal/numerics"
)

// CFLRamp is the implicit integrator's CFL schedule: start low while the
// transient establishes the shock, grow geometrically as the solution
// settles, and cap at the relaxation limit. A diverging line halves the
// ramp (never below Start) before it resumes growing.
type CFLRamp struct {
	// Start is the initial CFL number (default 2).
	Start float64
	// Growth is the geometric per-step growth factor (default 1.25).
	// Values below 1 are floored at 1 — the ramp never shrinks the CFL on
	// its own; 1 holds it constant at Start.
	Growth float64
	// Max caps the ramp (default 200; floored at Start).
	Max float64
}

// DefaultCFLRamp is the schedule used for zero-valued CFLRamp fields.
var DefaultCFLRamp = CFLRamp{Start: 2, Growth: 1.25, Max: 200}

// withDefaults fills zero-valued fields from DefaultCFLRamp — explicitly
// set values are respected: Growth 1 holds the CFL constant, and a Max
// below Start is floored at Start (not replaced).
func (r CFLRamp) withDefaults() CFLRamp {
	if r.Start <= 0 {
		r.Start = DefaultCFLRamp.Start
	}
	if r.Growth == 0 {
		r.Growth = DefaultCFLRamp.Growth
	} else if r.Growth < 1 {
		r.Growth = 1
	}
	if r.Max == 0 {
		r.Max = DefaultCFLRamp.Max
	}
	if r.Max < r.Start {
		r.Max = r.Start
	}
	return r
}

// DefaultImplicitSweep is the sweep schedule used when Options.ImplicitSweep
// is empty.
const DefaultImplicitSweep = ImplicitSweepJLine

// ImplicitSweeps returns the registered implicit sweep schedules in
// ascending order — the valid values of Options.ImplicitSweep.
func ImplicitSweeps() []string { return []string{ImplicitSweepADI, ImplicitSweepJLine} }

// --- implicit: DPLR-style line-implicit relaxation ---
//
// The explicit scheme is CFL-bound by the finest wall-normal spacing, which
// on clustered viscous grids means thousands of steps per solve. The
// implicit integrator removes exactly that restriction: per i-station it
// solves a block-tridiagonal 4×4 system along the wall-normal j-line,
// linearizing the j-face fluxes to first order (exact convective Jacobian of
// the physical flux plus spectral-radius dissipation — the Jacobian-free
// lower-order LHS of the DPLR/US3D lineage) and folding the i-direction and
// boundary couplings into the diagonal by their spectral radii
// (point-implicit, unconditionally stable in the scalar model). The RHS is
// the full (optionally MUSCL) residual, so the converged state is identical
// to the explicit scheme's.
//
// Under the "adi" sweep schedule each step follows the wall-normal pass
// with a streamwise pass: the same block-tridiagonal relaxation along
// i-lines (constant j), with the i-face fluxes linearized and the j-faces
// folded point-implicit. The wall-normal pass alone propagates corrections
// one cell per step along the body, so high-aspect-ratio grids (long
// slender afterbodies) converge at a rate set by the streamwise cell count;
// the alternating sweep carries them the length of the line in one solve.
//
// Both passes assemble their systems the SoA way the residual sweeps do:
// the line's cell states are gathered once into a structure-of-arrays
// pencil, a batched Jacobian fill (jacPlanes) writes each cell's two
// face-normal Jacobian blocks in a straight-line loop, and the
// block-tridiagonal solver equilibrates and factors the plane in a single
// fused traversal (numerics.SolveFlatScaled).

type implicitIntegrator struct{}

func (implicitIntegrator) Name() string { return TimeSteppingImplicit }

func (implicitIntegrator) NewStepper(s *Solver) (Stepper, error) {
	st := &implicitStepper{
		s:    s,
		ramp: s.Opts.CFLRamp.withDefaults(),
	}
	switch s.Opts.ImplicitSweep {
	case "", ImplicitSweepJLine:
	case ImplicitSweepADI:
		st.adi = true
	default:
		return nil, fmt.Errorf("fvm: no implicit sweep %q (have %v)", s.Opts.ImplicitSweep, ImplicitSweeps())
	}
	st.cfl = st.ramp.Start
	vs := s.pInf.A + math.Hypot(s.pInf.U, s.pInf.V)
	st.scl = [4]float64{1, vs, vs, vs * vs}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			st.rat[r*4+c] = st.scl[c] / st.scl[r]
		}
	}
	// Workspace sizing: the wall-normal pass runs lines of nj cells in
	// chunkCount(ni) chunks; the streamwise pass (adi) runs lines of ni
	// cells in chunkCount(nj) chunks. One workspace pool serves both.
	maxLine := s.nj
	nws := s.pool.chunkCount(s.ni)
	if st.adi {
		if s.ni > maxLine {
			maxLine = s.ni
		}
		if c := s.pool.chunkCount(s.nj); c > nws {
			nws = c
		}
	}
	st.ws = make([]*implicitLineWS, nws)
	for i := range st.ws {
		st.ws[i] = &implicitLineWS{
			A:    make([]float64, maxLine*16),
			B:    make([]float64, maxLine*16),
			C:    make([]float64, maxLine*16),
			D:    make([]float64, maxLine*4),
			u:    make([]float64, maxLine),
			v:    make([]float64, maxLine),
			a:    make([]float64, maxLine),
			g1:   make([]float64, maxLine),
			h:    make([]float64, maxLine),
			nrm:  make([]float64, 3*(maxLine+1)),
			lam:  make([]float64, maxLine+1),
			visc: make([]float64, maxLine+1),
			jlo:  make([]float64, maxLine*16),
			jhi:  make([]float64, maxLine*16),
			bt:   numerics.NewBlockTridiagWorkspace(4),
		}
	}
	st.sweepJ = st.lineRangeJ
	st.sweepI = st.lineRangeI
	return st, nil
}

// implicitLineWS is the per-worker-chunk workspace of the line sweeps: one
// block-tridiagonal system (reused by every line the chunk owns), the SoA
// pencil of the line's cell states, the batched Jacobian planes, the
// factorization scratch and the chunk's partial results. Allocated once per
// solver so stepping is allocation-free; sized for the longer of the two
// sweep directions so both passes share it.
type implicitLineWS struct {
	A, B, C []float64 // line 4×4 blocks, flat row-major
	D       []float64 // right-hand 4-vectors / solution
	// SoA pencil of the line's cells: velocity, sound speed, clamped
	// effective gamma minus one, and total enthalpy — everything the
	// batched Jacobian fill reads, gathered once per line.
	u, v, a, g1, h []float64
	nrm            []float64 // (nx, ny, area) per face, gathered for strided sweeps
	lam            []float64 // per-face spectral-radius dissipation bound
	visc           []float64 // per-face viscous identity-coupling coefficient
	jlo, jhi       []float64 // per-cell Jacobian blocks at the cell's lo/hi face
	jm, jp         [16]float64
	bt             *numerics.BlockTridiagWorkspace
	sum            float64 // chunk's share of the squared density residual
	fell           int     // lines that fell back to the explicit stage this step
}

type implicitStepper struct {
	s    *Solver
	ramp CFLRamp
	cfl  float64
	// adi enables the streamwise (i-line) pass after each wall-normal pass
	// (Options.ImplicitSweep "adi").
	adi            bool
	ws             []*implicitLineWS
	sweepJ, sweepI func(ci, lo, hi int)
	// scl/rat equilibrate the line systems before factorization: conserved
	// variables mix mass, momentum and energy scales spanning many orders of
	// magnitude, and the block elimination loses the solution to
	// cancellation without row/column scaling. scl is the per-component
	// variable scale (1, v, v, v²); rat[r*4+c] = scl[c]/scl[r] maps a block
	// entry into the scaled system.
	scl [4]float64
	rat [16]float64
	// fallbacks counts diverged-line explicit fallbacks over the whole run
	// (observable by tests and divergence diagnostics).
	fallbacks int
	// best/stall/cap gate the ramp on convergence: the CFL grows only while
	// the residual keeps making new lows, and is halved when it limit-cycles
	// (stallWindow steps without a new low). The plateau level of the
	// limiter/defect-correction cycle scales with the CFL, so after a stall
	// the dynamic cap keeps the ramp from climbing straight back to the
	// level that stalled; sustained descent relaxes the cap again.
	best  float64
	stall int
	cap   float64
	lows  int
}

// stallWindow is how many steps without a new residual low the ramp
// tolerates before halving the CFL.
const stallWindow = 12

// carryCFL seeds the ramp from another solver's integrator state at a
// multilevel transition: a coarser level that has already relaxed the
// transient proves a high CFL is safe, so the finer level starts there
// instead of re-climbing from Start. The convergence bookkeeping re-latches
// fresh (the levels' residual scales differ).
func (st *implicitStepper) carryCFL(from Stepper) {
	src, ok := from.(*implicitStepper)
	if !ok {
		return
	}
	cfl := src.cfl
	if cfl > st.ramp.Max {
		cfl = st.ramp.Max
	}
	if cfl > st.cfl {
		st.cfl = cfl
	}
	st.best, st.stall, st.lows = 0, 0, 0
	st.cap = st.ramp.Max
}

// resetRamp re-latches the convergence bookkeeping after a grid change
// (mid-march refit): the transferred state makes the retained residual lows
// meaningless, and the refit transient should not read as a limit-cycle
// stall.
func (st *implicitStepper) resetRamp() {
	st.best, st.stall, st.lows = 0, 0, 0
	st.cap = st.ramp.Max
}

// Step advances one line-implicit time step: full residual evaluation at the
// ramped CFL, one block-tridiagonal solve per wall-normal line (parallel
// across lines on the worker pool), an explicit fallback on any line whose
// update leaves the physical state space, and a CFL ramp update. Under the
// "adi" schedule the wall-normal pass is followed by a streamwise pass on a
// freshly evaluated residual. Returns the RMS density residual of the
// step-entry RHS (the wall-normal pass's), so the two schedules report the
// same convergence measure.
//
//cataero:hotpath
func (st *implicitStepper) Step() float64 {
	s := st.s
	s.cfl = st.cfl
	s.updatePrimitives()
	s.timeSteps()
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, st.sweepJ)
	sum := 0.0
	fell := 0
	for _, w := range st.ws[:s.pool.chunkCount(s.ni)] {
		sum += w.sum
		fell += w.fell
	}
	if st.adi {
		// Streamwise pass: the wall-normal updates are already applied, so
		// refresh the primitives and residual before sweeping the i-lines.
		// The local time steps are reused — dt is a relaxation parameter
		// and the state moved by one under-resolved transient increment.
		s.updatePrimitives()
		s.computeResidual()
		s.pool.sweep(s.nj, &s.sweepWG, st.sweepI)
		for _, w := range st.ws[:s.pool.chunkCount(s.nj)] {
			fell += w.fell
		}
	}
	st.fallbacks += fell
	r := math.Sqrt(sum / float64(s.ni*s.nj))
	if st.cap == 0 {
		st.cap = st.ramp.Max
	}
	switch {
	case fell > 0:
		// A diverging line means the linearization overstepped: back the
		// ramp off (and hold it there) before growing again.
		st.cfl = math.Max(st.ramp.Start, 0.5*st.cfl)
		st.cap = math.Max(st.ramp.Start, st.cfl)
		st.stall, st.lows = 0, 0
	case st.best == 0 || r < 0.98*st.best:
		if st.lows++; st.lows >= 2*stallWindow && st.cap < st.ramp.Max {
			// Sustained descent: let the cap recover.
			st.cap = math.Min(st.ramp.Max, 1.5*st.cap)
			st.lows = 0
		}
		st.cfl = math.Min(st.cap, st.cfl*st.ramp.Growth)
		st.stall = 0
	default:
		st.lows = 0
		if st.stall++; st.stall >= stallWindow {
			st.cfl = math.Max(st.ramp.Start, 0.5*st.cfl)
			st.cap = math.Max(st.ramp.Start, st.cfl)
			st.stall = 0
		}
	}
	if r > 0 && (st.best == 0 || r < st.best) {
		st.best = r
	}
	return r
}

// lineRangeJ assembles and solves the wall-normal systems for i-lines
// [lo, hi) — one sweep chunk, using that chunk's private workspace.
//
//cataero:hotpath
func (st *implicitStepper) lineRangeJ(ci, lo, hi int) {
	w := st.ws[ci]
	w.sum, w.fell = 0, 0
	for i := lo; i < hi; i++ {
		st.solveLineJ(i, w)
	}
}

// lineRangeI assembles and solves the streamwise systems for j-lines
// [lo, hi) — the adi pass's sweep chunk.
//
//cataero:hotpath
func (st *implicitStepper) lineRangeI(ci, lo, hi int) {
	w := st.ws[ci]
	w.sum, w.fell = 0, 0
	for j := lo; j < hi; j++ {
		st.solveLineI(j, w)
	}
}

// addScaledIdent adds c*I to the 4×4 block at dst.
func addScaledIdent(dst []float64, c float64) {
	dst[0] += c
	dst[5] += c
	dst[10] += c
	dst[15] += c
}

// addScaled adds c*src to the 4×4 block at dst.
func addScaled(dst, src []float64, c float64) {
	for k := 0; k < 16; k++ {
		dst[k] += c * src[k]
	}
}

// mirrorCols right-multiplies the 4×4 block by the conserved-variable
// reflection matrix M = diag(1, I − 2nnᵀ, 1): the Jacobian of the mirrored
// ghost state with respect to the interior state.
func mirrorCols(x []float64, nx, ny float64) {
	for r := 0; r < 4; r++ {
		dot := x[r*4+1]*nx + x[r*4+2]*ny
		x[r*4+1] -= 2 * dot * nx
		x[r*4+2] -= 2 * dot * ny
	}
}

// jacN writes scale times the inviscid flux Jacobian ∂F_n/∂U at state q
// into dst (4×4 row-major), using the cell's effective gamma
// (rho a²/p) so the linearization tracks a general equation of state.
func jacN(dst []float64, q Prim, nx, ny, scale float64) {
	g := q.A * q.A * q.Rho / q.P
	if g < 1.05 {
		g = 1.05
	} else if g > 1.8 {
		g = 1.8
	}
	g1 := g - 1
	u, v := q.U, q.V
	un := u*nx + v*ny
	q2 := u*u + v*v
	phi := 0.5 * g1 * q2
	H := q.E + q.P/q.Rho + 0.5*q2
	dst[0], dst[1], dst[2], dst[3] = 0, scale*nx, scale*ny, 0
	dst[4] = scale * (phi*nx - u*un)
	dst[5] = scale * (un + (2-g)*u*nx)
	dst[6] = scale * (u*ny - g1*v*nx)
	dst[7] = scale * (g1 * nx)
	dst[8] = scale * (phi*ny - v*un)
	dst[9] = scale * (v*nx - g1*u*ny)
	dst[10] = scale * (un + (2-g)*v*ny)
	dst[11] = scale * (g1 * ny)
	dst[12] = scale * ((phi - H) * un)
	dst[13] = scale * (H*nx - g1*u*un)
	dst[14] = scale * (H*ny - g1*v*un)
	dst[15] = scale * (g * un)
}

// jacPlanes is the batched Jacobian fill of the line assembly: for every
// cell c of the pencil it writes the area-scaled inviscid flux Jacobian at
// the cell's low face (normal nrm[3c..]) into jlo and at its high face
// (normal nrm[3(c+1)..]) into jhi, in one straight-line loop over the SoA
// slices. The per-cell invariants (velocity, clamped g−1, total enthalpy)
// are loaded once and shared by both blocks, and the arithmetic matches
// jacN entry for entry — the finite-difference Jacobian tests pin both.
//
//cataero:hotpath
func jacPlanes(jlo, jhi, u, v, g1, h, nrm []float64, n int) {
	for c := 0; c < n; c++ {
		uu, vv := u[c], v[c]
		g1c, H := g1[c], h[c]
		q2 := uu*uu + vv*vv
		phi := 0.5 * g1c * q2
		g2 := 1 - g1c // == 2 − g
		g := g1c + 1

		nx, ny, scale := nrm[3*c], nrm[3*c+1], nrm[3*c+2]
		un := uu*nx + vv*ny
		lo := jlo[c*16 : c*16+16 : c*16+16]
		lo[0], lo[1], lo[2], lo[3] = 0, scale*nx, scale*ny, 0
		lo[4] = scale * (phi*nx - uu*un)
		lo[5] = scale * (un + g2*uu*nx)
		lo[6] = scale * (uu*ny - g1c*vv*nx)
		lo[7] = scale * (g1c * nx)
		lo[8] = scale * (phi*ny - vv*un)
		lo[9] = scale * (vv*nx - g1c*uu*ny)
		lo[10] = scale * (un + g2*vv*ny)
		lo[11] = scale * (g1c * ny)
		lo[12] = scale * ((phi - H) * un)
		lo[13] = scale * (H*nx - g1c*uu*un)
		lo[14] = scale * (H*ny - g1c*vv*un)
		lo[15] = scale * (g * un)

		nx, ny, scale = nrm[3*c+3], nrm[3*c+4], nrm[3*c+5]
		un = uu*nx + vv*ny
		hi := jhi[c*16 : c*16+16 : c*16+16]
		hi[0], hi[1], hi[2], hi[3] = 0, scale*nx, scale*ny, 0
		hi[4] = scale * (phi*nx - uu*un)
		hi[5] = scale * (un + g2*uu*nx)
		hi[6] = scale * (uu*ny - g1c*vv*nx)
		hi[7] = scale * (g1c * nx)
		hi[8] = scale * (phi*ny - vv*un)
		hi[9] = scale * (vv*nx - g1c*uu*ny)
		hi[10] = scale * (un + g2*vv*ny)
		hi[11] = scale * (g1c * ny)
		hi[12] = scale * ((phi - H) * un)
		hi[13] = scale * (H*nx - g1c*uu*un)
		hi[14] = scale * (H*ny - g1c*vv*un)
		hi[15] = scale * (g * un)
	}
}

// interiorFaces folds the interior-face linearizations of a line of n cells
// into the assembled system from the precomputed Jacobian planes and
// per-face dissipation/viscous coefficients: face f couples cells f−1 and f
// with ∂F/∂U_m ≈ ½(S·A(m) + λI) and ∂F/∂U_p ≈ ½(S·A(p) − λI), plus the
// identity viscous coupling. The off-diagonal blocks A[f] and C[f−1] are
// each written by exactly one face, so they are assigned (no zeroing
// pre-pass); the diagonal blocks accumulate onto the V/Δt + point-implicit
// fold the gather pass left there.
//
//cataero:hotpath
func (st *implicitStepper) interiorFaces(w *implicitLineWS, n int) {
	for f := 1; f < n; f++ {
		jm := w.jhi[(f-1)*16 : (f-1)*16+16 : (f-1)*16+16]
		jp := w.jlo[f*16 : f*16+16 : f*16+16]
		Bm := w.B[(f-1)*16 : f*16]
		Cm := w.C[(f-1)*16 : f*16]
		Af := w.A[f*16 : (f+1)*16]
		Bf := w.B[f*16 : (f+1)*16]
		for k := 0; k < 16; k++ {
			hm := 0.5 * jm[k]
			hp := 0.5 * jp[k]
			Bm[k] += hm
			Cm[k] = hp
			Af[k] = -hm
			Bf[k] -= hp
		}
		d := 0.5*w.lam[f] + w.visc[f]
		Bm[0] += d
		Bm[5] += d
		Bm[10] += d
		Bm[15] += d
		Cm[0] -= d
		Cm[5] -= d
		Cm[10] -= d
		Cm[15] -= d
		Af[0] -= d
		Af[5] -= d
		Af[10] -= d
		Af[15] -= d
		Bf[0] += d
		Bf[5] += d
		Bf[10] += d
		Bf[15] += d
	}
}

// gatherCell stores cell state q into pencil slot c: velocity, sound speed,
// the clamped effective gamma minus one, and total enthalpy.
//
//cataero:hotpath
func (w *implicitLineWS) gatherCell(c int, q Prim) {
	g := q.A * q.A * q.Rho / q.P
	if g < 1.05 {
		g = 1.05
	} else if g > 1.8 {
		g = 1.8
	}
	w.u[c], w.v[c], w.a[c] = q.U, q.V, q.A
	w.g1[c] = g - 1
	w.h[c] = q.E + q.P/q.Rho + 0.5*(q.U*q.U+q.V*q.V)
}

// faceLams fills the interior-face dissipation bounds of a line of n cells
// from the pencil states and face normals: λ_f = max of the two straddling
// cells' |u·n| + a, times the face area.
//
//cataero:hotpath
func (w *implicitLineWS) faceLams(nrm []float64, n int) {
	for f := 1; f < n; f++ {
		nx, ny, area := nrm[3*f], nrm[3*f+1], nrm[3*f+2]
		lm := math.Abs(w.u[f-1]*nx+w.v[f-1]*ny) + w.a[f-1]
		lp := math.Abs(w.u[f]*nx+w.v[f]*ny) + w.a[f]
		w.lam[f] = math.Max(lm, lp) * area
	}
}

// solveLineJ assembles and solves the block-tridiagonal system of
// wall-normal line i and applies the update, falling back to a one-stage
// explicit update at the explicit CFL when the line solve diverges
// (singular system, or an update that leaves the physical state space). It
// also accumulates the chunk's share of the step-entry density residual.
//
//cataero:hotpath
func (st *implicitStepper) solveLineJ(i int, w *implicitLineWS) {
	s := st.s
	nj := s.nj
	st.assembleLineJ(i, w)
	st.solveApply(i*nj, 1, nj, w)
	met := s.met
	for j := 0; j < nj; j++ {
		k := i*nj + j
		r := s.res[k][0] / met.Vol[k]
		w.sum += r * r
	}
}

// solveLineI assembles and solves the block-tridiagonal system of
// streamwise line j (the adi pass) and applies the update, with the same
// explicit fallback as the wall-normal pass.
//
//cataero:hotpath
func (st *implicitStepper) solveLineI(j int, w *implicitLineWS) {
	s := st.s
	st.assembleLineI(j, w)
	st.solveApply(j, s.nj, s.ni, w)
}

// solveApply factors the assembled line system through the fused
// equilibrate+factor path, validates the solved increments and applies them
// to the n cells at base, base+stride, ... — or falls back to the explicit
// stage when the solve diverges.
//
//cataero:hotpath
func (st *implicitStepper) solveApply(base, stride, n int, w *implicitLineWS) {
	s := st.s
	ok := w.bt.SolveFlatScaled(w.A, w.B, w.C, w.D, n, st.rat[:], st.scl[:]) == nil
	if ok {
		for c := 0; c < n; c++ {
			for r := 0; r < 4; r++ {
				w.D[c*4+r] *= st.scl[r]
			}
		}
		ok = st.lineUpdateValid(base, stride, n, w)
	}
	if ok {
		for c := 0; c < n; c++ {
			k := base + c*stride
			for r := 0; r < 4; r++ {
				s.U[k][r] += w.D[c*4+r]
			}
		}
	} else {
		st.fallbackLine(base, stride, n)
		w.fell++
	}
}

// assembleLineJ fills the workspace with wall-normal line i's
// block-tridiagonal system (V/Δt I + ∂res/∂U)ΔU = −res: the line's cells
// are gathered into the SoA pencil, the j-face Jacobian planes are filled
// batched, the i-direction is folded into the diagonal by spectral radius,
// and the wall/outer boundary linearizations close the line.
//
//cataero:hotpath
func (st *implicitStepper) assembleLineJ(i int, w *implicitLineWS) {
	s := st.s
	nj := s.nj
	met := s.met
	base := i * nj
	// Gather pass: pencil states, diagonal blocks (V/Δt plus the i-face
	// spectral radii, point-implicit) and the RHS. A and C need no zeroing
	// — every interior off-diagonal block is assigned exactly once by
	// interiorFaces and the boundary blocks are ignored by the solver.
	for j := 0; j < nj; j++ {
		k := base + j
		q := s.prim[k]
		w.gatherCell(j, q)
		fw := 3 * (i*nj + j)
		fe := 3 * ((i+1)*nj + j)
		lamW := (math.Abs(q.U*met.FaceIN[fw]+q.V*met.FaceIN[fw+1]) + q.A) * met.FaceIN[fw+2]
		lamE := (math.Abs(q.U*met.FaceIN[fe]+q.V*met.FaceIN[fe+1]) + q.A) * met.FaceIN[fe+2]
		setDiagBlock(w.B[j*16:j*16+16:j*16+16], met.Vol[k]/s.dt[k]+0.5*(lamW+lamE))
		r := s.res[k]
		w.D[j*4], w.D[j*4+1], w.D[j*4+2], w.D[j*4+3] = -r[0], -r[1], -r[2], -r[3]
	}
	nrm := met.FaceJN[3*i*(nj+1) : 3*(i+1)*(nj+1)]
	jacPlanes(w.jlo, w.jhi, w.u, w.v, w.g1, w.h, nrm, nj)
	w.faceLams(nrm, nj)
	if s.Opts.Viscous {
		for f := 1; f < nj; f++ {
			w.visc[f] = 0
			if dn := met.JDist[i*(nj+1)+f]; dn > 0 && nrm[3*f+2] > 0 {
				m, p := s.prim[base+f-1], s.prim[base+f]
				w.visc[f] = s.Opts.Mu(0.5*(m.T+p.T)) * nrm[3*f+2] / (dn * 0.5 * (m.Rho + p.Rho))
			}
		}
	} else {
		for f := 1; f < nj; f++ {
			w.visc[f] = 0
		}
	}
	st.interiorFaces(w, nj)
	// Wall face f=0: the flux is Flux(mirror(q), q). Linearize both
	// arguments — the ghost through the reflection matrix — so the
	// convective Jacobian block cancels against the f=1 face's instead of
	// leaving a large uncancelled (non-normal) block on the wall row.
	if nx, ny, area := nrm[0], nrm[1], nrm[2]; area > 0 {
		q := s.prim[base]
		lam := (math.Abs(q.U*nx+q.V*ny) + q.A) * area
		B0 := w.B[0:16]
		// res[0] -= F_w, so subtract dF_w/dU0 =
		// ½(S·A(g)+λI)·M + ½(S·A(q)−λI) with g = mirror(q).
		jacN(w.jm[:], mirror(q, nx, ny), nx, ny, area)
		mirrorCols(w.jm[:], nx, ny)
		addScaled(B0, w.jm[:], -0.5)
		jacN(w.jp[:], q, nx, ny, area)
		addScaled(B0, w.jp[:], -0.5)
		// −½λM − (−½λI): M has unit spectral radius, fold both into a
		// single dissipation bound.
		addScaledIdent(B0, lam)
		if s.Opts.Viscous && s.Opts.Wall == NoSlipIsothermal {
			mu := s.Opts.Mu(0.5 * (q.T + s.Opts.TWall))
			addScaledIdent(B0, mu*area/(met.WallHalf[i]*q.Rho))
		}
	}
	// Outer boundary f=nj: the flux is Flux(q_in, q_inf); the freestream
	// argument is constant, so only the interior-side upwind Jacobian
	// ½(S·A+λI) enters — which cancels the f=nj−1 face's −½S·A block on
	// the outer row.
	if nx, ny, area := nrm[3*nj], nrm[3*nj+1], nrm[3*nj+2]; area > 0 {
		q := s.prim[base+nj-1]
		lam := (math.Abs(q.U*nx+q.V*ny) + q.A) * area
		Bn := w.B[(nj-1)*16 : nj*16]
		jacN(w.jm[:], q, nx, ny, area)
		addScaled(Bn, w.jm[:], 0.5)
		addScaledIdent(Bn, 0.5*lam)
	}
}

// assembleLineI fills the workspace with streamwise line j's
// block-tridiagonal system: the i-face fluxes are linearized to first order
// (batched, like the wall-normal pass) and the j-direction — including the
// wall-normal viscous couplings, the dominant stiffness near the wall — is
// folded into the diagonal by spectral radius. The boundary linearizations
// are the streamwise ones: symmetry mirror at i=0 (the stagnation line) and
// zero-gradient outflow at i=ni, whose exit flux Flux(q, q) has the exact
// derivative S·A(q).
//
//cataero:hotpath
func (st *implicitStepper) assembleLineI(j int, w *implicitLineWS) {
	s := st.s
	ni, nj := s.ni, s.nj
	met := s.met
	viscous := s.Opts.Viscous
	for i := 0; i < ni; i++ {
		k := i*nj + j
		q := s.prim[k]
		w.gatherCell(i, q)
		// Face normals are strided along an i-line; gather them so the
		// batched fills below run on contiguous triplets.
		fw := 3 * (i*nj + j)
		w.nrm[3*i], w.nrm[3*i+1], w.nrm[3*i+2] = met.FaceIN[fw], met.FaceIN[fw+1], met.FaceIN[fw+2]
		fs := 3 * (i*(nj+1) + j)
		fn := fs + 3
		lamS := (math.Abs(q.U*met.FaceJN[fs]+q.V*met.FaceJN[fs+1]) + q.A) * met.FaceJN[fs+2]
		lamN := (math.Abs(q.U*met.FaceJN[fn]+q.V*met.FaceJN[fn+1]) + q.A) * met.FaceJN[fn+2]
		diag := met.Vol[k]/s.dt[k] + 0.5*(lamS+lamN)
		if viscous {
			// Fold the wall-normal viscous couplings into the diagonal:
			// they are what makes near-wall cells stiff, and the j-line
			// pass carries them implicitly — leaving them out here would
			// let the streamwise solve overstep the boundary layer.
			if areaS := met.FaceJN[fs+2]; areaS > 0 {
				if j == 0 {
					if s.Opts.Wall == NoSlipIsothermal {
						diag += s.Opts.Mu(0.5*(q.T+s.Opts.TWall)) * areaS / (met.WallHalf[i] * q.Rho)
					}
				} else if dn := met.JDist[i*(nj+1)+j]; dn > 0 {
					m := s.prim[k-1]
					diag += s.Opts.Mu(0.5*(m.T+q.T)) * areaS / (dn * 0.5 * (m.Rho + q.Rho))
				}
			}
			if j < nj-1 {
				if dn, areaN := met.JDist[i*(nj+1)+j+1], met.FaceJN[fn+2]; dn > 0 && areaN > 0 {
					p := s.prim[k+1]
					diag += s.Opts.Mu(0.5*(q.T+p.T)) * areaN / (dn * 0.5 * (q.Rho + p.Rho))
				}
			}
		}
		setDiagBlock(w.B[i*16:i*16+16:i*16+16], diag)
		r := s.res[k]
		w.D[i*4], w.D[i*4+1], w.D[i*4+2], w.D[i*4+3] = -r[0], -r[1], -r[2], -r[3]
	}
	fe := 3 * (ni*nj + j)
	w.nrm[3*ni], w.nrm[3*ni+1], w.nrm[3*ni+2] = met.FaceIN[fe], met.FaceIN[fe+1], met.FaceIN[fe+2]
	jacPlanes(w.jlo, w.jhi, w.u, w.v, w.g1, w.h, w.nrm, ni)
	w.faceLams(w.nrm, ni)
	for f := 1; f < ni; f++ {
		// No streamwise viscous coupling in the thin-layer model.
		w.visc[f] = 0
	}
	st.interiorFaces(w, ni)
	// Inflow face i=0: the symmetry plane (stagnation line). The flux is
	// Flux(mirror(q), q) — the same mirror linearization as the wall, minus
	// the conduction term (no wall here).
	if nx, ny, area := w.nrm[0], w.nrm[1], w.nrm[2]; area > 0 {
		q := s.prim[j]
		lam := (math.Abs(q.U*nx+q.V*ny) + q.A) * area
		B0 := w.B[0:16]
		jacN(w.jm[:], mirror(q, nx, ny), nx, ny, area)
		mirrorCols(w.jm[:], nx, ny)
		addScaled(B0, w.jm[:], -0.5)
		jacN(w.jp[:], q, nx, ny, area)
		addScaled(B0, w.jp[:], -0.5)
		addScaledIdent(B0, lam)
	}
	// Outflow face i=ni: zero-gradient ghost, flux Flux(q, q) = S·F(q).
	// Both upwind halves see the same state, so the dissipation cancels and
	// the derivative is exactly the full Jacobian S·A(q) — at the (mostly
	// supersonic) exit its eigenvalues are positive and strengthen the
	// last diagonal block.
	if nx, ny, area := w.nrm[3*ni], w.nrm[3*ni+1], w.nrm[3*ni+2]; area > 0 {
		q := s.prim[(ni-1)*nj+j]
		Bn := w.B[(ni-1)*16 : ni*16]
		jacN(w.jm[:], q, nx, ny, area)
		addScaled(Bn, w.jm[:], 1)
	}
}

// setDiagBlock writes d·I over the 4×4 block at dst (all 16 entries).
//
//cataero:hotpath
func setDiagBlock(dst []float64, d float64) {
	dst[0], dst[1], dst[2], dst[3] = d, 0, 0, 0
	dst[4], dst[5], dst[6], dst[7] = 0, d, 0, 0
	dst[8], dst[9], dst[10], dst[11] = 0, 0, d, 0
	dst[12], dst[13], dst[14], dst[15] = 0, 0, 0, d
}

// lineUpdateValid reports whether applying the line's solved increments
// keeps every cell physical (see Solver.physicalState); the line's cells
// sit at base, base+stride, ....
func (st *implicitStepper) lineUpdateValid(base, stride, n int, w *implicitLineWS) bool {
	s := st.s
	for c := 0; c < n; c++ {
		k := base + c*stride
		var cand Cons
		for r := 0; r < 4; r++ {
			cand[r] = s.U[k][r] + w.D[c*4+r]
		}
		if !s.physicalState(cand) {
			return false
		}
	}
	return true
}

// fallbackLine applies a one-stage explicit update to the line's cells at
// the explicit CFL (the local time steps were built at the ramped CFL, so
// they are rescaled by Opts.CFL/cfl) — the diverging-line escape hatch.
func (st *implicitStepper) fallbackLine(base, stride, n int) {
	s := st.s
	scale := s.Opts.CFL / st.cfl
	met := s.met
	for c := 0; c < n; c++ {
		k := base + c*stride
		dtv := scale * s.dt[k] / met.Vol[k]
		for r := 0; r < 4; r++ {
			s.U[k][r] -= dtv * s.res[k][r]
		}
	}
}
